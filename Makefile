# CI/dev entry points for the ACBM reproduction.
#
#   make build        — vet + compile everything
#   make test         — full test suite, plus the codec/server packages
#                       under the race detector (certifies the wavefront
#                       encoder and the multi-session serving layer)
#   make bench-smoke  — 1-iteration pass over every benchmark so bench
#                       code cannot rot, plus the perf-trajectory artifact
#   make bench-speed  — regenerate BENCH_speed.json (ns/frame, fps,
#                       points/block for each searcher × worker count)
#   make serve-smoke  — boot vcodecd on a random port, run a verified
#                       vload burst, require a clean SIGTERM drain
#   make bench-serve  — regenerate BENCH_serve.json (throughput and
#                       first-packet/per-frame latency × session count)

GO ?= go

.PHONY: build test bench-smoke bench-speed serve-smoke bench-serve ci

build:
	$(GO) vet ./...
	$(GO) build ./...

test: build
	$(GO) test ./...
	$(GO) test -race ./internal/codec/ ./internal/core/ ./internal/search/ ./internal/server/

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench-speed:
	$(GO) run ./cmd/acbmbench -experiment speed -frames 30 -json BENCH_speed.json

serve-smoke:
	mkdir -p bin
	$(GO) build -o bin/vcodecd ./cmd/vcodecd
	$(GO) build -o bin/vload ./cmd/vload
	BIN=bin sh scripts/serve_smoke.sh

bench-serve:
	$(GO) run ./cmd/vload -selfhost -sessions 1,4,8 -frames 30 -size qcif -qp 16 -me acbm -verify -json BENCH_serve.json

ci: test bench-smoke serve-smoke
