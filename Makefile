# CI/dev entry points for the ACBM reproduction.
#
#   make build        — vet + compile everything
#   make test         — full test suite, plus the codec package under the
#                       race detector (certifies the wavefront encoder)
#   make bench-smoke  — 1-iteration pass over every benchmark so bench
#                       code cannot rot, plus the perf-trajectory artifact
#   make bench-speed  — regenerate BENCH_speed.json (ns/frame, fps,
#                       points/block for each searcher × worker count)

GO ?= go

.PHONY: build test bench-smoke bench-speed ci

build:
	$(GO) vet ./...
	$(GO) build ./...

test: build
	$(GO) test ./...
	$(GO) test -race ./internal/codec/ ./internal/core/ ./internal/search/

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench-speed:
	$(GO) run ./cmd/acbmbench -experiment speed -frames 30 -json BENCH_speed.json

ci: test bench-smoke
