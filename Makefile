# CI/dev entry points for the ACBM reproduction.
#
#   make build        — vet + compile everything
#   make test         — full test suite, plus the codec/server packages
#                       under the race detector (certifies the wavefront
#                       encoder and the multi-session serving layer)
#   make bench-smoke  — 1-iteration pass over every benchmark so bench
#                       code cannot rot, the SAD kernel dispatch sanity
#                       check (logs the detected ISA, probes every tier
#                       for bit-identity with scalar), the perf ratchet
#                       (serial ns/frame vs BENCH_ratchet.json — fails
#                       on a step regression), a quick rate-experiment
#                       run (compiles and exercises the frame-lag
#                       controller on every push), and the
#                       allocation-regression check (fails loudly if
#                       EncodeFrame allocs/frame climb above the ceiling
#                       pinned in internal/codec/alloc_test.go)
#   make bench-speed  — regenerate BENCH_speed.json (ns/frame, fps,
#                       points/block for each searcher × worker count)
#   make bench-matrix — regenerate BENCH_speed.json with the full
#                       GOMAXPROCS × workers × pipeline scaling matrix
#                       (same artifact, explicit sweep axes)
#   make ratchet-pin  — re-pin BENCH_ratchet.json baselines on this host
#                       (run after a deliberate perf change, commit the
#                       result)
#   make bench-rate   — regenerate BENCH_rate.json (kbps tracking error +
#                       ns/frame for rate-controlled encodes: serial vs
#                       workers vs pipelined vs shared pool, per searcher)
#   make serve-smoke  — boot vcodecd on a random port, run a verified
#                       vload burst, require a clean SIGTERM drain
#   make bench-serve  — regenerate BENCH_serve.json (throughput and
#                       first-packet/per-frame latency × session count)
#   make cluster-smoke— boot 2 vcodecd + vcodec-gateway on random ports,
#                       verified vload burst, kill one backend mid-run,
#                       burst again (must still verify), clean drain
#   make bench-cluster— regenerate BENCH_cluster.json (chaos scenarios
#                       against a self-hosted gateway topology, every
#                       session byte-verified)
#   make qos-smoke    — boot vcodecd with a tight QoS loop, byte-verify
#                       the pinned degradation rungs, overload it with a
#                       mixed-priority burst (must degrade, not truncate
#                       or 503), require restore to level 0, clean drain
#   make bench-qos    — regenerate BENCH_qos.json (per-level cost table +
#                       overload ramp under the closed-loop controller)
#   make obs-smoke    — boot vcodecd, run a vload burst, fetch a session's
#                       flight-recorder trace by its trailer ID, assert
#                       the per-frame timeline matches the stream, check
#                       the /metrics histograms, clean drain
#   make ladder-smoke — boot vcodecd, run one /encode?ladder= session,
#                       split the interleaved stream and require every
#                       rung to byte-match a pinned offline
#                       `vcodec encode -ladder` run and decode cleanly,
#                       check the plane-pool counters, clean drain
#   make bench-ladder — regenerate BENCH_ladder.json (simulcast ladder
#                       vs N independent encodes: wall-clock speedup,
#                       per-rung points/MB with and without cross-layer
#                       seeding, rung-0 bit-identity gate)

GO ?= go

.PHONY: build test bench-smoke bench-speed bench-matrix bench-rate ratchet-pin serve-smoke bench-serve cluster-smoke bench-cluster qos-smoke bench-qos obs-smoke ladder-smoke bench-ladder ci

build:
	$(GO) vet ./...
	$(GO) build ./...

test: build
	$(GO) test ./...
	$(GO) test -race ./internal/metrics/ ./internal/codec/ ./internal/core/ ./internal/search/ ./internal/server/ ./internal/gateway/ ./internal/obs/

bench-smoke:
	$(GO) run ./cmd/acbmbench -experiment dispatch
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/acbmbench -experiment ratchet -frames 30
	$(GO) run ./cmd/acbmbench -experiment rate -frames 6 -size sqcif
	$(GO) test -run TestEncodeFrameAllocCeiling -count=1 -v ./internal/codec/
	$(GO) test -run TestRecorderOverheadGuard -count=1 -v ./internal/codec/

bench-speed:
	$(GO) run ./cmd/acbmbench -experiment speed -frames 30 -json BENCH_speed.json

bench-matrix:
	$(GO) run ./cmd/acbmbench -experiment speed -frames 30 -json BENCH_speed.json

ratchet-pin:
	$(GO) run ./cmd/acbmbench -experiment ratchet -frames 30 -update-ratchet

bench-rate:
	$(GO) run ./cmd/acbmbench -experiment rate -frames 30 -json BENCH_rate.json

serve-smoke:
	mkdir -p bin
	$(GO) build -o bin/vcodecd ./cmd/vcodecd
	$(GO) build -o bin/vload ./cmd/vload
	BIN=bin sh scripts/serve_smoke.sh

bench-serve:
	$(GO) run ./cmd/vload -selfhost -sessions 1,4,8 -frames 30 -size qcif -qp 16 -me acbm -verify -json BENCH_serve.json

cluster-smoke:
	mkdir -p bin
	$(GO) build -o bin/vcodecd ./cmd/vcodecd
	$(GO) build -o bin/vcodec-gateway ./cmd/vcodec-gateway
	$(GO) build -o bin/vload ./cmd/vload
	BIN=bin sh scripts/cluster_smoke.sh

bench-cluster:
	$(GO) run ./cmd/vload -chaos -sessions 8 -frames 24 -size qcif -qp 16 -me acbm -backends 2 -json BENCH_cluster.json

qos-smoke:
	mkdir -p bin
	$(GO) build -o bin/vcodecd ./cmd/vcodecd
	$(GO) build -o bin/vload ./cmd/vload
	BIN=bin sh scripts/qos_smoke.sh

bench-qos:
	mkdir -p bin
	$(GO) build -o bin/vcodecd ./cmd/vcodecd
	$(GO) run ./cmd/vload -qos -qp 16 -me acbm -daemon bin/vcodecd -json BENCH_qos.json

obs-smoke:
	mkdir -p bin
	$(GO) build -o bin/vcodecd ./cmd/vcodecd
	$(GO) build -o bin/vload ./cmd/vload
	BIN=bin sh scripts/obs_smoke.sh

ladder-smoke:
	mkdir -p bin
	$(GO) build -o bin/vcodecd ./cmd/vcodecd
	$(GO) build -o bin/vcodec ./cmd/vcodec
	$(GO) build -o bin/seqgen ./cmd/seqgen
	BIN=bin sh scripts/ladder_smoke.sh

bench-ladder:
	$(GO) run ./cmd/vload -ladder -json BENCH_ladder.json

ci: test bench-smoke serve-smoke cluster-smoke qos-smoke obs-smoke ladder-smoke
