package repro

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks for the hot kernels and ablations of ACBM's design
// choices. The macro benchmarks run reduced-size versions of the full
// experiments (fewer frames/Qps than cmd/acbmbench) so `go test -bench .`
// completes in minutes; the reported custom metrics — positions/MB,
// PSNR, rate savings — are the quantities the paper tabulates.

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dct"
	"repro/internal/experiment"
	"repro/internal/frame"
	"repro/internal/hwmodel"
	"repro/internal/metrics"
	"repro/internal/ratedist"
	"repro/internal/search"
	"repro/internal/video"
)

// benchQps is the reduced quantiser sweep used by the macro benchmarks.
var benchQps = []int{30, 24, 18}

const benchFrames = 24 // at 30 fps

// --- Table 1: ACBM complexity per sequence × frame rate × Qp ---------------

func benchmarkTable1(b *testing.B, prof video.Profile, dec int) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable1(experiment.Table1Config{
			Profiles:    []video.Profile{prof},
			Frames:      benchFrames,
			Qps:         benchQps,
			Decimations: []int{dec},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanPoints(prof, dec), "positions/MB")
		lo, _ := res.Cell(prof, dec, benchQps[len(benchQps)-1])
		b.ReportMetric(100*lo.FSBMRate, "critical%")
	}
}

func BenchmarkTable1_Carphone_30fps(b *testing.B)    { benchmarkTable1(b, video.Carphone, 1) }
func BenchmarkTable1_Carphone_10fps(b *testing.B)    { benchmarkTable1(b, video.Carphone, 3) }
func BenchmarkTable1_Foreman_30fps(b *testing.B)     { benchmarkTable1(b, video.Foreman, 1) }
func BenchmarkTable1_Foreman_10fps(b *testing.B)     { benchmarkTable1(b, video.Foreman, 3) }
func BenchmarkTable1_MissAmerica_30fps(b *testing.B) { benchmarkTable1(b, video.MissAmerica, 1) }
func BenchmarkTable1_MissAmerica_10fps(b *testing.B) { benchmarkTable1(b, video.MissAmerica, 3) }
func BenchmarkTable1_Table_30fps(b *testing.B)       { benchmarkTable1(b, video.TableTennis, 1) }
func BenchmarkTable1_Table_10fps(b *testing.B)       { benchmarkTable1(b, video.TableTennis, 3) }

// --- Figures 5 and 6: rate-distortion curves -------------------------------

func benchmarkRDFigure(b *testing.B, prof video.Profile, dec int) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.RDConfig{
			Profile: prof, Frames: benchFrames, Decimation: dec, Qps: benchQps,
		}
		curves, err := experiment.RDSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		acbm, _ := experiment.FindCurve(curves, "ACBM")
		fsbm, _ := experiment.FindCurve(curves, "FSBM")
		pbm, _ := experiment.FindCurve(curves, "PBM")
		if s, err := ratedist.AvgRateSavings(acbm, fsbm); err == nil {
			b.ReportMetric(100*s, "rate-savings-vs-FSBM%")
		}
		if s, err := ratedist.AvgRateSavings(acbm, pbm); err == nil {
			b.ReportMetric(100*s, "rate-savings-vs-PBM%")
		}
		b.ReportMetric(acbm.Points[len(acbm.Points)-1].PSNR, "ACBM-maxPSNR-dB")
	}
}

func BenchmarkFigure5_Carphone(b *testing.B)    { benchmarkRDFigure(b, video.Carphone, 1) }
func BenchmarkFigure5_Foreman(b *testing.B)     { benchmarkRDFigure(b, video.Foreman, 1) }
func BenchmarkFigure5_MissAmerica(b *testing.B) { benchmarkRDFigure(b, video.MissAmerica, 1) }
func BenchmarkFigure5_Table(b *testing.B)       { benchmarkRDFigure(b, video.TableTennis, 1) }
func BenchmarkFigure6_Carphone(b *testing.B)    { benchmarkRDFigure(b, video.Carphone, 3) }
func BenchmarkFigure6_Foreman(b *testing.B)     { benchmarkRDFigure(b, video.Foreman, 3) }
func BenchmarkFigure6_MissAmerica(b *testing.B) { benchmarkRDFigure(b, video.MissAmerica, 3) }
func BenchmarkFigure6_Table(b *testing.B)       { benchmarkRDFigure(b, video.TableTennis, 3) }

// --- Figure 4: the MV-error preliminary study ------------------------------

func BenchmarkFigure4_MVStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunMVStudy(experiment.MVStudyConfig{
			Size: frame.QCIF,
			MVs:  video.DefaultGlobalMVs[:4],
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.TrueVectorRate(), "true-MV%")
		high, low := res.HighTextureTrueRate()
		b.ReportMetric(100*(high-low), "texture-gap-pp")
	}
}

// --- Ablations: the design choices DESIGN.md calls out ---------------------

// ablationEncode encodes a fixed hard sequence and reports complexity and
// quality for one searcher configuration.
func ablationEncode(b *testing.B, s func() search.Searcher) {
	base := video.Generate(video.Foreman, frame.QCIF, benchFrames, experiment.DefaultSeed)
	frames := video.Decimate(base, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, _, err := codec.EncodeSequence(codec.Config{Qp: 18, Searcher: s(), FPS: 10}, frames)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.AvgSearchPointsPerMB(), "positions/MB")
		b.ReportMetric(stats.AvgPSNRY(), "PSNR-dB")
		b.ReportMetric(stats.BitrateKbps(), "kbit/s")
	}
}

func BenchmarkAblation_ACBM_BothConditions(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return core.New(core.DefaultParams) })
}

func BenchmarkAblation_ACBM_Condition1Only(b *testing.B) {
	// γ=0 disables the texture-relative acceptance.
	ablationEncode(b, func() search.Searcher {
		return core.New(core.Params{Alpha: 1000, Beta: 8, GammaNum: 0, GammaDen: 1})
	})
}

func BenchmarkAblation_ACBM_Condition2Only(b *testing.B) {
	// α=β=0 disables the quantiser-dependent acceptance.
	ablationEncode(b, func() search.Searcher {
		return core.New(core.Params{Alpha: 0, Beta: 0, GammaNum: 1, GammaDen: 4})
	})
}

func BenchmarkAblation_PBM_RefineBudget1(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.PBM{MaxRefineSteps: 1} })
}

func BenchmarkAblation_PBM_RefineBudget8(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.PBM{MaxRefineSteps: 8} })
}

func BenchmarkAblation_FSBM_NoHalfPel(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.FSBM{NoHalfPel: true} })
}

func BenchmarkAblation_FastSearch_TSS(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.TSS{} })
}

func BenchmarkAblation_FastSearch_Diamond(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.Diamond{} })
}

func BenchmarkAblation_FastSearch_CrossDiamond(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.CrossDiamond{} })
}

func BenchmarkAblation_FastSearch_FourStep(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.FSS{} })
}

// --- Micro-benchmarks: the hot kernels -------------------------------------

func benchPlanes() (cur, ref *frame.Plane, ip *frame.Interpolated) {
	f := video.Generate(video.Foreman, frame.QCIF, 2, 1)
	cur, ref = f[1].Y, f[0].Y
	return cur, ref, frame.Interpolate(ref)
}

func BenchmarkSAD16x16(b *testing.B) {
	cur, ref, _ := benchPlanes()
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.SAD(cur, 80, 64, ref, 77+i%5, 66, 16, 16)
	}
}

func BenchmarkSADHalfPel16x16(b *testing.B) {
	cur, _, ip := benchPlanes()
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.SADHalfPel(cur, 80, 64, ip, 155+i%3, 131, 16, 16)
	}
}

func BenchmarkIntraSAD16x16(b *testing.B) {
	cur, _, _ := benchPlanes()
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.IntraSAD(cur, 80, 64, 16, 16)
	}
}

func BenchmarkInterpolateQCIF(b *testing.B) {
	_, ref, _ := benchPlanes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame.Interpolate(ref)
	}
}

func BenchmarkDCT8x8Forward(b *testing.B) {
	var src, dst dct.Block
	for i := range src {
		src[i] = int32(i*7%255 - 128)
	}
	for i := 0; i < b.N; i++ {
		dct.Forward(&dst, &src)
	}
}

func BenchmarkDCT8x8Inverse(b *testing.B) {
	var src, dst dct.Block
	for i := range src {
		src[i] = int32(i*7%255 - 128)
	}
	for i := 0; i < b.N; i++ {
		dct.Inverse(&dst, &src)
	}
}

func benchSearchBlock(b *testing.B, s search.Searcher) {
	cur, ref, ip := benchPlanes()
	in := &search.Input{
		Cur: cur, Ref: ref, RefI: ip,
		BX: 80, BY: 64, W: 16, H: 16, Range: 15, Qp: 16,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(in)
	}
}

func BenchmarkSearchBlock_FSBM(b *testing.B) { benchSearchBlock(b, &search.FSBM{}) }
func BenchmarkSearchBlock_PBM(b *testing.B)  { benchSearchBlock(b, &search.PBM{}) }
func BenchmarkSearchBlock_ACBM(b *testing.B) { benchSearchBlock(b, core.New(core.DefaultParams)) }
func BenchmarkSearchBlock_TSS(b *testing.B)  { benchSearchBlock(b, &search.TSS{}) }

func benchEncodeFrame(b *testing.B, s func() search.Searcher) {
	frames := video.Generate(video.Carphone, frame.QCIF, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := codec.EncodeSequence(codec.Config{Qp: 16, Searcher: s()}, frames); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeFrame_FSBM(b *testing.B) {
	benchEncodeFrame(b, func() search.Searcher { return &search.FSBM{} })
}

func BenchmarkEncodeFrame_ACBM(b *testing.B) {
	benchEncodeFrame(b, func() search.Searcher { return core.New(core.DefaultParams) })
}

func BenchmarkEncodeFrame_PBM(b *testing.B) {
	benchEncodeFrame(b, func() search.Searcher { return &search.PBM{} })
}

// benchEncodeFrameWorkers measures the wavefront-parallel encoder at a
// fixed worker count, reporting encode throughput in MB/s (luma source
// bytes per wall-clock second) and the Table 1 points/block metric —
// which must not move with the worker count.
func benchEncodeFrameWorkers(b *testing.B, workers int) {
	frames := video.Generate(video.Carphone, frame.QCIF, 4, 1)
	lumaBytes := float64(len(frames)) * float64(frame.QCIF.W*frame.QCIF.H)
	var stats *codec.SequenceStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		stats, _, err = codec.EncodeSequence(codec.Config{
			Qp: 16, Searcher: core.New(core.DefaultParams), Workers: workers,
		}, frames)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.AvgSearchPointsPerMB(), "points/block")
	b.ReportMetric(lumaBytes*float64(b.N)/1e6/b.Elapsed().Seconds(), "MB/s")
}

func BenchmarkEncodeFrame_Workers1(b *testing.B) { benchEncodeFrameWorkers(b, 1) }
func BenchmarkEncodeFrame_Workers4(b *testing.B) { benchEncodeFrameWorkers(b, 4) }

// benchEncodeSequence compares the serial EncodeFrame loop with the
// cross-frame pipeline (entropy coding of frame n overlapped with
// analysis of frame n+1). Both produce byte-identical streams; only the
// wall clock may differ, reported as frames per second.
func benchEncodeSequence(b *testing.B, workers int, pipeline bool) {
	frames := video.Generate(video.Carphone, frame.QCIF, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := codec.EncodeSequence(codec.Config{
			Qp: 16, Searcher: core.New(core.DefaultParams),
			Workers: workers, Pipeline: pipeline,
		}, frames)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkEncodeSequence_Serial(b *testing.B)            { benchEncodeSequence(b, 1, false) }
func BenchmarkEncodeSequence_Pipeline(b *testing.B)          { benchEncodeSequence(b, 1, true) }
func BenchmarkEncodeSequence_Workers4(b *testing.B)          { benchEncodeSequence(b, 4, false) }
func BenchmarkEncodeSequence_Workers4_Pipeline(b *testing.B) { benchEncodeSequence(b, 4, true) }

// BenchmarkEncodeStream measures the streaming session (packet per frame,
// pipeline overlap) with allocation tracking: the per-frame steady state
// is pinned low by the size-bucketed plane/frame pools and the lazy
// half-pel substrate, which is what keeps concurrent vcodecd sessions
// from thrashing each other's working sets.
func BenchmarkEncodeStream(b *testing.B) {
	frames := video.Generate(video.Carphone, frame.QCIF, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := codec.NewEncodeStream(codec.Config{
			Qp: 16, Searcher: core.New(core.DefaultParams), Workers: 1, Pipeline: true,
		}, func(codec.Packet) error { return nil })
		for _, f := range frames {
			if err := s.EncodeFrame(f); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkInterpolateLazyFirstTouch measures the lazy substrate's cost
// for a typical compensation pattern: one half-pel block fetched per
// macroblock position (the worst case fills every tile once; the common
// case touches far fewer).
func BenchmarkInterpolateLazyFirstTouch(b *testing.B) {
	_, ref, _ := benchPlanes()
	dst := make([]uint8, 16*16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := frame.InterpolateLazy(ref)
		for y := 0; y+16 <= ref.H; y += 16 {
			for x := 0; x+16 <= ref.W; x += 16 {
				ip.Block(dst, 2*x+1, 2*y+1, 16, 16)
			}
		}
		ip.Release()
	}
}

// BenchmarkSADCapped_Spiral measures the full search with the
// centre-outward scan: the spiral visits near-zero vectors first, so
// SADCapped's cap is near-minimal for almost all of the (2p+1)²
// candidates and losing candidates abort within a few rows. Reports
// effective throughput over all candidate block bytes.
func BenchmarkSADCapped_Spiral(b *testing.B) {
	cur, ref, ip := benchPlanes()
	in := &search.Input{
		Cur: cur, Ref: ref, RefI: ip,
		BX: 80, BY: 64, W: 16, H: 16, Range: 15, Qp: 16,
	}
	f := &search.FSBM{NoHalfPel: true}
	b.ResetTimer()
	var pts int
	for i := 0; i < b.N; i++ {
		pts = f.Search(in).Points
	}
	b.ReportMetric(float64(pts), "points/block")
	// Bytes a raster scan would read if no candidate terminated early.
	b.ReportMetric(float64(pts)*256*float64(b.N)/1e6/b.Elapsed().Seconds(), "candidate-MB/s")
}

func BenchmarkDecodeSequence(b *testing.B) {
	frames := video.Generate(video.Carphone, frame.QCIF, 4, 1)
	_, bs, err := codec.EncodeSequence(codec.Config{Qp: 16}, frames)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(bs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decode(bs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSceneRenderQCIF(b *testing.B) {
	sc := video.Foreman.Scene(1)
	for i := 0; i < b.N; i++ {
		sc.Render(frame.QCIF, i)
	}
}

// Example of regenerating a full paper artifact inside a test binary; kept
// as a benchmark so its cost is opt-in.
func BenchmarkHeadline_Foreman10fps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.RDConfig{
			Profile: video.Foreman, Frames: benchFrames, Decimation: 3, Qps: benchQps,
		}
		curves, err := experiment.RDSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		t1, err := experiment.RunTable1(experiment.Table1Config{
			Profiles: []video.Profile{video.Foreman},
			Frames:   benchFrames, Qps: benchQps, Decimations: []int{3},
		})
		if err != nil {
			b.Fatal(err)
		}
		h, err := experiment.ComputeHeadline(cfg, curves, t1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.AvgPoints, "positions/MB")
		b.ReportMetric(100*h.Reduction, "reduction%")
		if i == 0 {
			b.Log(fmt.Sprint(h))
		}
	}
}

// --- Extension benchmarks: systems beyond the paper's core evaluation ------

func BenchmarkAblation_RCFSBM(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.RCFSBM{} })
}

func BenchmarkAblation_FastSearch_NTSS(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.NTSS{} })
}

func BenchmarkAblation_FastSearch_HEXBS(b *testing.B) {
	ablationEncode(b, func() search.Searcher { return &search.HEXBS{} })
}

func BenchmarkAblation_ACBM_Budgeted150(b *testing.B) {
	ablationEncode(b, func() search.Searcher {
		bd, err := core.NewBudgeted(150, core.DefaultParams)
		if err != nil {
			b.Fatal(err)
		}
		return bd
	})
}

// BenchmarkEntropyBackends compares stream sizes of the two entropy modes
// on identical content.
func benchmarkEntropy(b *testing.B, mode codec.EntropyMode) {
	frames := video.Generate(video.Carphone, frame.QCIF, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, bs, err := codec.EncodeSequence(codec.Config{Qp: 12, Entropy: mode}, frames)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(bs)), "bytes")
		b.ReportMetric(stats.AvgPSNRY(), "PSNR-dB")
	}
}

func BenchmarkEntropy_ExpGolomb(b *testing.B)  { benchmarkEntropy(b, codec.EntropyExpGolomb) }
func BenchmarkEntropy_Arithmetic(b *testing.B) { benchmarkEntropy(b, codec.EntropyArith) }

func BenchmarkAblation_PixelDecimation(b *testing.B) {
	base := video.Generate(video.Foreman, frame.QCIF, benchFrames, experiment.DefaultSeed)
	frames := video.Decimate(base, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, _, err := codec.EncodeSequence(codec.Config{
			Qp: 18, FPS: 10, PixelDecimation: true,
		}, frames)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.AvgPSNRY(), "PSNR-dB")
		b.ReportMetric(stats.BitrateKbps(), "kbit/s")
	}
}

func BenchmarkAblation_SensorNoiseMissAmerica(b *testing.B) {
	// The realism knob: camera noise raises the SAD floor and with it
	// ACBM's complexity on easy content (toward the paper's numbers).
	sc := video.WithSensorNoise(video.MissAmerica.Scene(experiment.DefaultSeed), 2.0, 3)
	frames := make([]*frame.Frame, 16)
	for t := range frames {
		frames[t] = sc.Render(frame.QCIF, t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acbm := core.New(core.DefaultParams)
		stats, _, err := codec.EncodeSequence(codec.Config{Qp: 16, Searcher: acbm}, frames)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.AvgSearchPointsPerMB(), "positions/MB")
		b.ReportMetric(100*acbm.Stats().FSBMRate(), "critical%")
	}
}

func BenchmarkSATD16x16(b *testing.B) {
	cur, ref, _ := benchPlanes()
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.SATD(cur, 80, 64, ref, 77+i%5, 66, 16, 16)
	}
}

func BenchmarkRateControlEncode(b *testing.B) {
	frames := video.Generate(video.Carphone, frame.QCIF, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, _, err := codec.EncodeSequence(codec.Config{
			Qp: 16, FPS: 30, TargetKbps: 48,
		}, frames)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.BitrateKbps(), "kbit/s")
	}
}

func BenchmarkHardwareModel(b *testing.B) {
	w := hwmodel.Workload{MBsPerFrame: 99, FPS: 30, AvgPoints: 300, CriticalRate: 0.3, PBMPoints: 15}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hwmodel.Compare(w, hwmodel.DefaultTech, 15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParetoSweepMini(b *testing.B) {
	grid := experiment.DefaultParamGrid()[:4]
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunPareto(experiment.ParetoConfig{
			Profile: video.TableTennis, Size: frame.SQCIF, Frames: 8, Qp: 16, Grid: grid,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].AvgPoints, "cheapest-positions/MB")
	}
}

func BenchmarkAblation_AdvancedPrediction(b *testing.B) {
	// Four-vector prediction on the zoom/divergent-motion sequence.
	frames := video.Generate(video.TableTennis, frame.QCIF, 12, experiment.DefaultSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, _, err := codec.EncodeSequence(codec.Config{
			Qp: 10, AdvancedPrediction: true,
		}, frames)
		if err != nil {
			b.Fatal(err)
		}
		used := 0
		for _, f := range stats.Frames {
			used += f.Inter4VMBs
		}
		b.ReportMetric(stats.AvgPSNRY(), "PSNR-dB")
		b.ReportMetric(stats.BitrateKbps(), "kbit/s")
		b.ReportMetric(float64(used), "4V-MBs")
	}
}

func BenchmarkMultiSeedMissAmerica(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := experiment.MultiSeedTable1(video.MissAmerica, 1, 16, 10, []uint64{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.Mean, "mean-positions/MB")
		b.ReportMetric(st.StdDev, "stddev")
	}
}

func BenchmarkAblation_Deblocking(b *testing.B) {
	frames := video.Generate(video.Foreman, frame.QCIF, 10, experiment.DefaultSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, _, err := codec.EncodeSequence(codec.Config{Qp: 24, Deblock: true}, frames)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.AvgPSNRY(), "PSNR-dB")
	}
}
