package repro

// End-to-end tests of the command-line tools: each binary is built once
// and driven through its primary flows against a temp directory.

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codec"
)

// buildTool compiles one cmd into a temp dir and returns the binary path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipelineSeqgenVcodec(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seqgen := buildTool(t, "seqgen")
	vcodec := buildTool(t, "vcodec")
	dir := t.TempDir()
	y4m := filepath.Join(dir, "clip.y4m")
	acbm := filepath.Join(dir, "clip.acbm")
	dec := filepath.Join(dir, "dec.y4m")

	out := runTool(t, seqgen, "-profile", "foreman", "-frames", "8", "-size", "sqcif", "-o", y4m)
	if !strings.Contains(out, "wrote 8 frames") {
		t.Fatalf("seqgen output: %s", out)
	}
	out = runTool(t, vcodec, "encode", "-i", y4m, "-o", acbm, "-qp", "14", "-me", "acbm", "-entropy", "arith")
	if !strings.Contains(out, "encoded 8 frames") || !strings.Contains(out, "ACBM/arith") {
		t.Fatalf("vcodec encode output: %s", out)
	}
	out = runTool(t, vcodec, "info", "-i", acbm)
	if !strings.Contains(out, "8 frames") || !strings.Contains(out, "arith") {
		t.Fatalf("vcodec info output: %s", out)
	}
	out = runTool(t, vcodec, "decode", "-i", acbm, "-o", dec)
	if !strings.Contains(out, "decoded 8 frames") {
		t.Fatalf("vcodec decode output: %s", out)
	}
	// The decoded file must be a valid Y4M of the right size.
	fi, err := os.Stat(dec)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := int64(8 * (128*96 + 2*64*48)) // raw 4:2:0 payload
	if fi.Size() < wantMin {
		t.Fatalf("decoded y4m only %d bytes, want > %d", fi.Size(), wantMin)
	}
}

func TestCLISeqgenSingleFramePGM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seqgen := buildTool(t, "seqgen")
	pgm := filepath.Join(t.TempDir(), "f.pgm")
	runTool(t, seqgen, "-profile", "missamerica", "-frame", "3", "-size", "sqcif", "-o", pgm)
	data, err := os.ReadFile(pgm)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "P5\n128 96\n255\n") {
		t.Fatalf("not a PGM header: %q", data[:20])
	}
}

func TestCLIMvstudyCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mvstudy := buildTool(t, "mvstudy")
	csv := filepath.Join(t.TempDir(), "fig4.csv")
	out := runTool(t, mvstudy, "-profile", "foreman", "-csv", csv)
	if !strings.Contains(out, "Figure 4 study") {
		t.Fatalf("mvstudy output: %s", out)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "profile,intra_sad,sad_deviation,sad_min,error" {
		t.Fatalf("csv header: %q", lines[0])
	}
	if len(lines) < 100 {
		t.Fatalf("csv has only %d rows", len(lines))
	}
}

func TestCLIAcbmbenchMiniExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	acbmbench := buildTool(t, "acbmbench")
	out := runTool(t, acbmbench, "-experiment", "table1", "-size", "sqcif", "-frames", "8", "-qps", "30,16")
	for _, want := range []string{"Table 1", "Foreman", "reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
	out = runTool(t, acbmbench, "-experiment", "map", "-size", "sqcif")
	if !strings.Contains(out, "critical/FSBM") {
		t.Fatalf("map output:\n%s", out)
	}
}

func TestCLIRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	acbmbench := buildTool(t, "acbmbench")
	if out, err := exec.Command(acbmbench, "-experiment", "nope").CombinedOutput(); err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
	if out, err := exec.Command(acbmbench, "-qps", "99").CombinedOutput(); err == nil {
		t.Fatalf("illegal Qp accepted:\n%s", out)
	}
	vcodec := buildTool(t, "vcodec")
	if out, err := exec.Command(vcodec, "encode").CombinedOutput(); err == nil {
		t.Fatalf("missing -i/-o accepted:\n%s", out)
	}
	// Flag validation must be the failure, not the (nonexistent) input
	// file — assert on the specific message.
	rejects := func(wantMsg string, args ...string) {
		t.Helper()
		out, err := exec.Command(vcodec, args...).CombinedOutput()
		if err == nil {
			t.Fatalf("%v accepted:\n%s", args, out)
		}
		if !strings.Contains(string(out), wantMsg) {
			t.Fatalf("%v failed without %q:\n%s", args, wantMsg, out)
		}
	}
	rejects("-kbps must be positive", "encode", "-i", "x.y4m", "-o", "x.acbm", "-kbps", "-5")
	rejects("-budget must be positive", "encode", "-i", "x.y4m", "-o", "x.acbm", "-budget", "-1")
	rejects("-budget requires -me acbm", "encode", "-i", "x.y4m", "-o", "x.acbm", "-budget", "150", "-me", "fsbm")
}

// TestCLIRateControlComposesWithParallelism drives the refactored rate
// path end to end: -kbps together with -workers/-pipeline (historically
// silently serialised) must encode, report the target, and produce a file
// byte-identical to the single-threaded rate-controlled encode.
func TestCLIRateControlComposesWithParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seqgen := buildTool(t, "seqgen")
	vcodec := buildTool(t, "vcodec")
	dir := t.TempDir()
	y4m := filepath.Join(dir, "clip.y4m")
	serial := filepath.Join(dir, "serial.acbm")
	par := filepath.Join(dir, "par.acbm")

	runTool(t, seqgen, "-profile", "foreman", "-frames", "8", "-size", "sqcif", "-o", y4m)
	runTool(t, vcodec, "encode", "-i", y4m, "-o", serial, "-qp", "16", "-kbps", "60", "-workers", "1")
	out := runTool(t, vcodec, "encode", "-i", y4m, "-o", par, "-qp", "16", "-kbps", "60", "-workers", "4", "-pipeline")
	if !strings.Contains(out, "rate control: target 60.0 kbit/s") {
		t.Fatalf("vcodec encode output missing rate line: %s", out)
	}
	a, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("rate-controlled parallel encode differs from serial (%d vs %d bytes)", len(b), len(a))
	}
	dec := filepath.Join(dir, "dec.y4m")
	runTool(t, vcodec, "decode", "-i", par, "-o", dec)
}

// TestCLIPacketizedLossConcealment drives the -packets transport end to
// end: encode, drop a P-frame record from the file (a lossy channel),
// and check decode conceals the hole instead of erroring while info
// reports the drop.
func TestCLIPacketizedLossConcealment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seqgen := buildTool(t, "seqgen")
	vcodec := buildTool(t, "vcodec")
	dir := t.TempDir()
	y4m := filepath.Join(dir, "clip.y4m")
	pkt := filepath.Join(dir, "clip.pkt")
	lossy := filepath.Join(dir, "lossy.pkt")
	dec := filepath.Join(dir, "dec.y4m")

	runTool(t, seqgen, "-profile", "carphone", "-frames", "9", "-size", "sqcif", "-o", y4m)
	out := runTool(t, vcodec, "encode", "-i", y4m, "-o", pkt, "-qp", "14", "-gop", "4", "-packets", "-workers", "2", "-pipeline")
	if !strings.Contains(out, "(packets)") {
		t.Fatalf("vcodec encode output: %s", out)
	}

	// Rewrite the file without frame packet 2 (record index 2), duplicate
	// record 4 (a relay hiccup) and splice in a record with an absurd
	// index (a corrupted index varint) — decode must conceal the drop and
	// discard the untrustworthy records, never error or balloon output.
	data, err := os.ReadFile(pkt)
	if err != nil {
		t.Fatal(err)
	}
	pr := codec.NewPacketReader(bytes.NewReader(data))
	var buf bytes.Buffer
	pw := codec.NewPacketWriter(&buf)
	for {
		idx, payload, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if idx == 2 {
			continue // the channel ate this one
		}
		if err := pw.WritePacket(idx, payload); err != nil {
			t.Fatal(err)
		}
		if idx == 4 {
			if err := pw.WritePacket(idx, payload); err != nil { // duplicate
				t.Fatal(err)
			}
			if err := pw.WritePacket(1<<30, payload); err != nil { // corrupt index
				t.Fatal(err)
			}
		}
	}
	if err := os.WriteFile(lossy, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	out = runTool(t, vcodec, "info", "-i", lossy, "-packets")
	if !strings.Contains(out, "8 frame packets (1 dropped, 2 untrustworthy records ignored)") {
		t.Fatalf("vcodec info output: %s", out)
	}
	out = runTool(t, vcodec, "decode", "-i", lossy, "-o", dec, "-packets")
	if !strings.Contains(out, "decoded 9 frames") || !strings.Contains(out, "1 concealed") {
		t.Fatalf("vcodec decode output: %s", out)
	}
}
