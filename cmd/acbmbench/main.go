// Command acbmbench regenerates the paper's evaluation artifacts: the
// Fig. 4 preliminary study, the Figs. 5/6 rate-distortion curves and the
// Table 1 complexity numbers, plus the §4 headline summary.
//
// Usage:
//
//	acbmbench -experiment all            # everything (a few minutes)
//	acbmbench -experiment table1         # Table 1 only
//	acbmbench -experiment fig5           # RD curves, QCIF@30fps
//	acbmbench -experiment fig6           # RD curves, QCIF@10fps
//	acbmbench -experiment fig4           # the MV-error study
//	acbmbench -experiment headline       # §4 claims
//	acbmbench -frames 30 -qps 30,24,18   # reduced sweep for quick runs
//	acbmbench -alpha 2000 -beta 4        # explore the quality/cost knobs
//	acbmbench -experiment speed -json BENCH_speed.json
//	                                     # encoder wall-clock: ns/frame, fps,
//	                                     # the analysis/entropy phase split and
//	                                     # points/MB per searcher × GOMAXPROCS ×
//	                                     # workers × pipeline on/off, with the
//	                                     # host CPU + active SAD kernel ISA
//	acbmbench -experiment dispatch       # kernel dispatch sanity: detected CPU
//	                                     # features, registered tiers, one-shot
//	                                     # bit-identity probe per tier
//	acbmbench -experiment ratchet        # serial ns/frame vs the checked-in
//	                                     # BENCH_ratchet.json band (CI gate);
//	                                     # -update-ratchet re-pins the baselines
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/frame"
	"repro/internal/video"
)

func main() {
	var (
		expName       = flag.String("experiment", "all", "experiment to run: fig4|fig5|fig6|table1|headline|map|hw|pareto|loss|seeds|speed|rate|dispatch|ratchet|all")
		frames        = flag.Int("frames", experiment.DefaultFrames, "sequence length at 30 fps")
		sizeName      = flag.String("size", "qcif", "frame format: sqcif|qcif|cif")
		seed          = flag.Uint64("seed", experiment.DefaultSeed, "texture seed")
		qpsArg        = flag.String("qps", "", "comma-separated Qp list (default 30,28,...,16)")
		alpha         = flag.Int("alpha", core.DefaultParams.Alpha, "ACBM α parameter")
		beta          = flag.Int("beta", core.DefaultParams.Beta, "ACBM β parameter")
		gammaNum      = flag.Int("gamma-num", core.DefaultParams.GammaNum, "ACBM γ numerator")
		gammaDen      = flag.Int("gamma-den", core.DefaultParams.GammaDen, "ACBM γ denominator")
		workers       = flag.Int("workers", 0, "encoder worker goroutines for the speed/rate experiments (0 = default sweep)")
		gmps          = flag.Int("gomaxprocs", 0, "speed experiment: sweep GOMAXPROCS {1, n} (0 = default {1, NumCPU})")
		ratchetPath   = flag.String("ratchet", experiment.DefaultRatchetPath, "ratchet experiment: path of the checked-in baseline file")
		updateRatchet = flag.Bool("update-ratchet", false, "ratchet experiment: re-pin the baselines from this run instead of checking")
		kbps          = flag.Float64("kbps", 0, "rate experiment: target bitrate in kbit/s (0 = default 80)")
		jsonPath      = flag.String("json", "", "write the speed/rate experiment result to this JSON file (e.g. BENCH_speed.json, BENCH_rate.json)")
		cpuProf       = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (go tool pprof)")
		memProf       = flag.String("memprofile", "", "write a heap profile (after the experiments) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() exits through os.Exit, so the flush must run on the
		// error path too — otherwise the profile is left truncated.
		flushProfiles = append(flushProfiles, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
		defer runFlushProfiles()
	}
	if *memProf != "" {
		path := *memProf
		flushProfiles = append(flushProfiles, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acbmbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the pools so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "acbmbench: memprofile:", err)
			}
		})
		defer runFlushProfiles()
	}

	size, err := frame.SizeByName(*sizeName)
	if err != nil {
		fatal(err)
	}
	qps, err := parseQps(*qpsArg)
	if err != nil {
		fatal(err)
	}
	params := core.Params{Alpha: *alpha, Beta: *beta, GammaNum: *gammaNum, GammaDen: *gammaDen}
	if err := params.Validate(); err != nil {
		fatal(err)
	}

	run := func(name string, f func() error) {
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	want := func(name string) bool { return *expName == "all" || *expName == name }
	ran := false
	if want("fig4") {
		ran = true
		run("Figure 4: MV-error study", func() error {
			res, err := experiment.RunMVStudy(experiment.MVStudyConfig{Size: size, Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatMVStudy(res))
			fmt.Println()
			fmt.Print(experiment.FormatMVStudyPanels(res, 56, 10))
			return nil
		})
	}
	if want("map") {
		ran = true
		run("ACBM decision maps (frame 50, Qp 16)", func() error {
			for _, prof := range video.Profiles {
				dm, err := experiment.RunDecisionMap(prof, size, 50, params, *seed)
				if err != nil {
					return err
				}
				fmt.Printf("%s ('.'=easy, 'g'=good-match, 'C'=critical/FSBM):\n%s\n", prof, dm)
			}
			return nil
		})
	}
	var t1 *experiment.Table1Result
	if want("table1") || want("headline") || want("hw") {
		ran = true
		run("Table 1: ACBM complexity", func() error {
			t1, err = experiment.RunTable1(experiment.Table1Config{
				Size: size, Frames: *frames, Qps: qps, Params: params, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatTable1(t1))
			return nil
		})
	}
	if want("pareto") {
		ran = true
		run("ACBM parameter sensitivity (Pareto sweep)", func() error {
			for _, prof := range []video.Profile{video.Foreman, video.MissAmerica} {
				cfg := experiment.ParetoConfig{
					Profile: prof, Size: size, Frames: *frames, Qp: 16, Seed: *seed,
				}
				points, err := experiment.RunPareto(cfg)
				if err != nil {
					return err
				}
				fmt.Print(experiment.FormatPareto(cfg, points))
				fmt.Println()
			}
			return nil
		})
	}
	if want("seeds") {
		ran = true
		run("Table 1 replication across texture seeds", func() error {
			out, err := experiment.FormatMultiSeed(1, 16, *frames, nil)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	}
	if want("loss") {
		ran = true
		run("Loss resilience (packetized transport, temporal concealment)", func() error {
			cfg := experiment.ResilienceConfig{
				Profile: video.Foreman, Size: size, Frames: *frames, Seed: *seed,
			}
			points, err := experiment.RunResilience(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatResilience(cfg, points))
			return nil
		})
	}
	if want("hw") {
		ran = true
		run("§5 hardware architecture comparison", func() error {
			hwQp := 16
			if len(qps) > 0 {
				hwQp = qps[len(qps)-1]
			}
			out, err := experiment.HardwareReport(t1, hwQp)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
	}
	for figName, dec := range map[string]int{"fig5": 1, "fig6": 3} {
		if !want(figName) && !want("headline") {
			continue
		}
		ran = true
		label := map[int]string{1: "Figure 5: RD curves, QCIF@30fps", 3: "Figure 6: RD curves, QCIF@10fps"}[dec]
		run(label, func() error {
			for _, prof := range video.Profiles {
				cfg := experiment.RDConfig{
					Profile: prof, Size: size, Frames: *frames,
					Decimation: dec, Qps: qps, Params: params, Seed: *seed,
				}
				curves, err := experiment.RDSweep(cfg, nil)
				if err != nil {
					return err
				}
				fmt.Print(experiment.FormatRDCurves(experiment.ProfileTitle(prof, dec), curves))
				fmt.Println()
				if want("headline") || *expName == "all" {
					if h, err := experiment.ComputeHeadline(cfg, curves, t1); err == nil {
						fmt.Println("headline:", h)
					} else {
						fmt.Println("headline: n/a:", err)
					}
					fmt.Println()
				}
			}
			return nil
		})
	}
	if want("speed") {
		ran = true
		run("Encoder speed (GOMAXPROCS × workers × pipeline matrix, SIMD SAD)", func() error {
			cfg := experiment.SpeedConfig{
				Profile: video.Foreman, Size: size, Frames: *frames, Seed: *seed,
			}
			if *workers > 0 {
				cfg.Workers = []int{1, *workers}
				if *workers == 1 {
					cfg.Workers = []int{1}
				}
			}
			if *gmps > 0 {
				cfg.GoMaxProcs = []int{1, *gmps}
				if *gmps == 1 {
					cfg.GoMaxProcs = []int{1}
				}
			}
			res, err := experiment.RunSpeed(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatSpeed(res))
			if *jsonPath != "" {
				if err := res.WriteJSON(*jsonPath); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *jsonPath)
			}
			return nil
		})
	}
	if want("rate") {
		ran = true
		run("Rate control under parallelism (frame-lag controller)", func() error {
			res, err := experiment.RunRate(experiment.RateConfig{
				Profile: video.Foreman, Size: size, Frames: *frames, Seed: *seed,
				TargetKbps: *kbps, Workers: *workers,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatRate(res))
			// Only the dedicated invocation writes the artifact, so an
			// `-experiment all -json …` run cannot clobber BENCH_speed.json.
			if *jsonPath != "" && *expName == "rate" {
				if err := res.WriteJSON(*jsonPath); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *jsonPath)
			}
			return nil
		})
	}
	if want("dispatch") {
		ran = true
		run("SAD kernel dispatch sanity", func() error {
			report, err := experiment.DispatchReport()
			fmt.Print(report)
			return err
		})
	}
	// The ratchet is a CI gate, not a report: it exits non-zero on a
	// perf regression, so it only runs when asked for by name — an
	// `-experiment all` run must not fail on a slow machine.
	if *expName == "ratchet" {
		ran = true
		title := "Perf ratchet: serial ns/frame vs " + *ratchetPath
		if *updateRatchet {
			title = "Perf ratchet: re-pinning " + *ratchetPath
		}
		run(title, func() error {
			cfg := experiment.SpeedConfig{
				Profile: video.Foreman, Size: size, Frames: *frames, Seed: *seed,
				GoMaxProcs: []int{1}, Workers: []int{1},
			}
			res, err := experiment.RunSpeed(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatSpeed(res))
			if *updateRatchet {
				r, err := experiment.RatchetFromSpeed(res, cfg)
				if err != nil {
					return err
				}
				if err := r.WriteJSON(*ratchetPath); err != nil {
					return err
				}
				fmt.Printf("wrote %s (tolerance %.0f%%, cross-host ×%.1f)\n",
					*ratchetPath, 100*r.Tolerance, r.CrossHostMultiplier)
				return nil
			}
			r, err := experiment.LoadRatchet(*ratchetPath)
			if err != nil {
				return err
			}
			outcomes, err := r.Check(res)
			if err != nil {
				return err
			}
			failed := 0
			for _, o := range outcomes {
				fmt.Println(o)
				if !o.OK {
					failed++
				}
			}
			if len(outcomes) > 0 && outcomes[0].CrossHost {
				fmt.Printf("warning: baselines were pinned on %q (ISA %s), this host is %q (ISA %s) — band widened ×%.1f\n",
					r.Host.CPUModel, r.Host.KernelISA, res.Host.CPUModel, res.Host.KernelISA, r.CrossHostMultiplier)
			}
			if failed > 0 {
				return fmt.Errorf("%d searcher(s) regressed past the ratchet band", failed)
			}
			return nil
		})
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *expName))
	}
}

func parseQps(arg string) ([]int, error) {
	if arg == "" {
		return nil, nil // experiment defaults
	}
	var qps []int
	for _, part := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad Qp %q: %w", part, err)
		}
		if v < 1 || v > 31 {
			return nil, fmt.Errorf("Qp %d out of range 1..31", v)
		}
		qps = append(qps, v)
	}
	return qps, nil
}

// flushProfiles finalises any -cpuprofile/-memprofile outputs. It runs
// both on normal return (deferred in main) and from fatal, since os.Exit
// skips defers; runFlushProfiles makes the second invocation a no-op.
var flushProfiles []func()

func runFlushProfiles() {
	fs := flushProfiles
	flushProfiles = nil
	for _, f := range fs {
		f()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acbmbench:", err)
	runFlushProfiles()
	os.Exit(1)
}
