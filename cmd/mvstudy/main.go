// Command mvstudy runs the paper's Fig. 4 preliminary experiment and can
// dump the raw (Intra_SAD, SAD_deviation, error) scatter points as CSV for
// external plotting.
//
// Usage:
//
//	mvstudy                     # per-class summary, all profiles
//	mvstudy -profile foreman    # one source sequence
//	mvstudy -csv points.csv     # also write the raw scatter data
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/frame"
	"repro/internal/video"
)

func main() {
	var (
		profName = flag.String("profile", "", "restrict to one sequence: carphone|foreman|missamerica|table")
		csvPath  = flag.String("csv", "", "write raw scatter points to this CSV file")
		seed     = flag.Uint64("seed", experiment.DefaultSeed, "texture seed")
	)
	flag.Parse()

	cfg := experiment.MVStudyConfig{Size: frame.QCIF, Seed: *seed}
	if *profName != "" {
		p, err := video.ProfileByName(*profName)
		if err != nil {
			fatal(err)
		}
		cfg.Profiles = []video.Profile{p}
	}
	res, err := experiment.RunMVStudy(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.FormatMVStudy(res))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fmt.Fprintln(f, "profile,intra_sad,sad_deviation,sad_min,error")
		for _, s := range res.Samples {
			fmt.Fprintf(f, "%s,%d,%d,%d,%d\n",
				strings.ReplaceAll(s.Profile.String(), " ", ""), s.IntraSAD, s.Deviation, s.SADMin, s.Err)
		}
		fmt.Printf("\nwrote %d scatter points to %s\n", len(res.Samples), *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mvstudy:", err)
	os.Exit(1)
}
