// Command seqgen renders the synthetic stand-in sequences to standard
// formats (YUV4MPEG2 for playback, PGM for single frames) so the
// substitution for the paper's test clips can be inspected visually.
//
// Usage:
//
//	seqgen -profile foreman -frames 90 -o foreman.y4m
//	seqgen -profile missamerica -frame 0 -o miss.pgm   # single luma frame
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/frame"
	"repro/internal/video"
)

func main() {
	var (
		profName = flag.String("profile", "carphone", "carphone|foreman|missamerica|table")
		frames   = flag.Int("frames", 90, "frames to render at 30 fps")
		oneFrame = flag.Int("frame", -1, "render a single luma frame as PGM instead")
		sizeName = flag.String("size", "qcif", "sqcif|qcif|cif")
		seed     = flag.Uint64("seed", 2005, "texture seed")
		out      = flag.String("o", "", "output path (required)")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-o output path is required"))
	}
	prof, err := video.ProfileByName(*profName)
	if err != nil {
		fatal(err)
	}
	size, err := frame.SizeByName(*sizeName)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	if *oneFrame >= 0 {
		sc := prof.Scene(*seed)
		img := sc.Render(size, *oneFrame)
		if err := frame.WritePGM(f, img.Y); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote frame %d of %v (%v) to %s\n", *oneFrame, prof, size, *out)
		return
	}
	seq := video.Generate(prof, size, *frames, *seed)
	if err := frame.WriteY4M(f, seq, 30, 1); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d frames of %v (%v) to %s\n", len(seq), prof, size, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqgen:", err)
	os.Exit(1)
}
