// Command vcodec-gateway is the fleet front for vcodecd: one /encode
// endpoint that routes sessions across N encode backends with
// health-aware least-loaded selection, bounded retries with capped
// exponential backoff, per-backend circuit breaking, and drain-aware
// rebalancing (internal/gateway).
//
// Usage:
//
//	vcodec-gateway -addr :8320 \
//	    -backends http://10.0.0.7:8323,http://10.0.0.8:8323
//
// Endpoints:
//
//	POST /encode?...   exactly vcodecd's contract, fleet-routed
//	GET  /healthz      gateway + per-backend health view (JSON)
//	GET  /metrics      Prometheus text (routing, retries, breakers)
//
// A session is retried on another backend only while zero response bytes
// have reached the client (the upload is replayed from a buffer); once
// committed, a backend failure surfaces as an explicit X-Vcodec-Error
// trailer — never a truncated stream dressed up as a complete one. The
// X-Vcodec-Backend and X-Vcodec-Attempts trailers say where the session
// ran and how hard it was to place.
//
// SIGINT/SIGTERM trigger graceful shutdown in gateway-then-backend
// order: new sessions get 503 + Retry-After while in-flight streams run
// to completion (bounded by -drain-timeout); backends are untouched —
// drain them afterwards, and their own draining state reroutes new work
// here in the meantime.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	var (
		addr     = flag.String("addr", ":8320", "listen address")
		addrfile = flag.String("addrfile", "", "write the bound address to this file once listening")
		backends = flag.String("backends", "", "comma-separated vcodecd base URLs (required)")
		maxSess  = flag.Int("max-sessions", 64, "concurrent sessions at the gateway")
		attempts = flag.Int("max-attempts", 4, "dispatch attempts per session")
		pollI    = flag.Duration("poll-interval", 250*time.Millisecond, "backend health poll cadence")
		connT    = flag.Duration("connect-timeout", 2*time.Second, "per-attempt dial + response header budget")
		firstT   = flag.Duration("first-packet-timeout", 15*time.Second, "per-attempt budget for the first response byte")
		idleT    = flag.Duration("stream-idle-timeout", 60*time.Second, "max silence on a committed stream before it fails")
		breakN   = flag.Int("breaker-threshold", 3, "consecutive attempt failures that open a backend's breaker")
		breakT   = flag.Duration("breaker-cooldown", 2*time.Second, "how long an open breaker rejects a backend")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight sessions")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	g, err := gateway.New(gateway.Config{
		Backends:           urls,
		PollInterval:       *pollI,
		ConnectTimeout:     *connT,
		FirstPacketTimeout: *firstT,
		StreamIdleTimeout:  *idleT,
		MaxAttempts:        *attempts,
		BreakerThreshold:   *breakN,
		BreakerCooldown:    *breakT,
		MaxSessions:        *maxSess,
	})
	if err != nil {
		log.Fatalf("vcodec-gateway: %v (pass -backends)", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vcodec-gateway: %v", err)
	}
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("vcodec-gateway: %v", err)
		}
	}

	hs := &http.Server{
		Handler: g.Handler(),
		// No WriteTimeout: sessions are long-lived streams; the gateway's
		// own StreamIdleTimeout is the stall detector.
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	log.Printf("vcodec-gateway: listening on %s, %d backends: %s",
		ln.Addr(), len(urls), strings.Join(urls, ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("vcodec-gateway: %v — draining", s)
	case err := <-errCh:
		log.Fatalf("vcodec-gateway: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		log.Printf("vcodec-gateway: drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vcodec-gateway: shutdown: %v", err)
	}
	g.Close()
	fmt.Println("vcodec-gateway: drained, bye")
}
