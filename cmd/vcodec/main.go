// Command vcodec is the end-user tool of the codec substrate: it encodes
// YUV4MPEG2 video into the repository's bitstream format with a selectable
// motion estimator (including ACBM), and decodes such streams back to
// YUV4MPEG2.
//
// Usage:
//
//	vcodec encode -i in.y4m -o out.acbm -qp 16 -me acbm -entropy arith
//	vcodec encode -i in.y4m -o out.acbm -workers 4 -pipeline
//	vcodec encode -i in.y4m -o out.acbm -kbps 80 -workers 4 -pipeline
//	vcodec encode -i in.y4m -o out.acbm -ladder 128x96@300,64x48@100
//	vcodec decode -i out.acbm -o roundtrip.y4m
//	vcodec info   -i out.acbm
//	vcodec ladder-split -i session.bin -o out.acbm
//
// ladder-split demultiplexes a saved /encode?ladder= session stream
// (interleaved per-rung records) into one plain packetized artifact per
// rung — byte-identical to what `encode -ladder` writes offline.
//
// -workers spreads macroblock analysis across a wavefront worker pool and
// -pipeline overlaps entropy coding of each frame with analysis of the
// next; both produce bitstreams byte-identical to the single-threaded
// encoder (only wall-clock changes).
//
// -kbps enables frame-level rate control (the quantiser tracks the
// target bitrate) and -budget caps the motion-search cost (positions/MB,
// ACBM only). Both compose with -workers and -pipeline: the frame-lag
// controllers decide each frame's parameters before analysis and observe
// results after entropy coding, so rate- and budget-controlled encodes
// parallelise fully and the bits are identical for every such setting.
// Invalid combinations (negative targets, -budget with a non-ACBM
// estimator) are rejected up front.
//
// -packets (all three subcommands) switches to the packetized transport:
// each frame is an independently parseable record (uvarint index, uvarint
// length, payload — the same framing vcodecd streams over HTTP), so a
// lossy channel can drop packets without desynchronising the parser.
// `decode -packets` conceals dropped or corrupt frame packets by
// repeating the previous reconstruction instead of erroring, recovering
// fully at the next intra frame (use -gop at encode time); a stream cut
// mid-record (truncated download, crashed relay) just ends the clip at
// the damage instead of failing (codec.DecodePacketStream).
//
// Synthetic input for a self-contained demo:
//
//	go run ./cmd/seqgen -profile foreman -o f.y4m
//	go run ./cmd/vcodec encode -i f.y4m -o f.acbm -qp 14 -me acbm
//	go run ./cmd/vcodec decode -i f.acbm -o f_dec.y4m
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: vcodec encode|decode|info [flags]"))
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = runEncode(os.Args[2:])
	case "decode":
		err = runDecode(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "ladder-split":
		err = runLadderSplit(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (want encode, decode, info or ladder-split)", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

func runEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	var (
		in      = fs.String("i", "", "input .y4m path")
		out     = fs.String("o", "", "output bitstream path")
		qp      = fs.Int("qp", 16, "quantiser parameter (1..31)")
		me      = fs.String("me", "acbm", "motion estimator: acbm|fsbm|pbm|rcfsbm|tss|ntss|4ss|ds|cds|hexbs")
		rng     = fs.Int("range", 15, "search range p in full pels")
		entropy = fs.String("entropy", "expgolomb", "entropy backend: expgolomb|arith")
		gop     = fs.Int("gop", 0, "intra period (0 = first frame only)")
		alpha   = fs.Int("alpha", core.DefaultParams.Alpha, "ACBM α")
		beta    = fs.Int("beta", core.DefaultParams.Beta, "ACBM β")
		workers = fs.Int("workers", 0, "macroblock-analysis goroutines (0 = GOMAXPROCS, 1 = sequential; output is identical for every value, including rate-controlled encodes)")
		pipe    = fs.Bool("pipeline", false, "overlap entropy coding of frame n with analysis of frame n+1 (byte-identical output; composes with -kbps/-budget)")
		kbps    = fs.Float64("kbps", 0, "target bitrate in kbit/s (0 = constant -qp; frame-lag rate control, composes with -workers/-pipeline)")
		budget  = fs.Float64("budget", 0, "target motion-search positions/MB (0 = off; ACBM only, composes with -workers/-pipeline)")
		packets = fs.Bool("packets", false, "write the packetized transport (independently parseable frame records) instead of the contiguous stream")
		ladder  = fs.String("ladder", "", "simulcast ladder spec WxH@kbps,... (top rung first, each rung half the previous; writes one packetized artifact per rung, -o gaining a .rN suffix)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("encode: -i and -o are required")
	}
	if *kbps < 0 {
		return fmt.Errorf("encode: -kbps must be positive (got %g)", *kbps)
	}
	if *budget < 0 {
		return fmt.Errorf("encode: -budget must be positive (got %g)", *budget)
	}
	searcher, err := makeSearcher(*me, *alpha, *beta, *budget)
	if err != nil {
		return err
	}
	mode, err := parseEntropy(*entropy)
	if err != nil {
		return err
	}

	inF, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer inF.Close()
	stream, err := frame.ReadY4M(inF)
	if err != nil {
		return err
	}
	if len(stream.Frames) == 0 {
		return fmt.Errorf("encode: %s contains no frames", *in)
	}
	fps := stream.FPS()
	if fps == 0 {
		fps = 30
	}
	cfg := codec.Config{
		Qp: *qp, SearchRange: *rng, Searcher: searcher,
		FPS: fps, IntraPeriod: *gop, Entropy: mode,
		Workers: *workers, Pipeline: *pipe, TargetKbps: *kbps,
	}
	if *ladder != "" {
		if *kbps > 0 {
			return fmt.Errorf("encode: -kbps is per-rung in a ladder (use -ladder WxH@kbps)")
		}
		return encodeLadder(cfg, *ladder, *out, stream.Frames, func() (search.Searcher, error) {
			return makeSearcher(*me, *alpha, *beta, *budget)
		})
	}
	var (
		stats *codec.SequenceStats
		bs    []byte
	)
	if *packets {
		pkts, st, err := codec.EncodePackets(cfg, stream.Frames)
		if err != nil {
			return err
		}
		stats = st
		var buf bytes.Buffer
		pw := codec.NewPacketWriter(&buf)
		for i, pkt := range pkts {
			if err := pw.WritePacket(i, pkt); err != nil {
				return err
			}
		}
		bs = buf.Bytes()
	} else {
		st, b, err := codec.EncodeSequence(cfg, stream.Frames)
		if err != nil {
			return err
		}
		stats, bs = st, b
	}
	if err := os.WriteFile(*out, bs, 0o644); err != nil {
		return err
	}
	format := "stream"
	if *packets {
		format = "packets"
	}
	fmt.Printf("encoded %d frames (%v) with %s/%s at Qp %d (%s)\n",
		len(stream.Frames), stream.Frames[0].Size(), searcher.Name(), mode, *qp, format)
	fmt.Printf("  %d bytes, %.1f kbit/s @ %.3g fps, PSNR-Y %.2f dB, %.0f search positions/MB\n",
		len(bs), stats.BitrateKbps(), fps, stats.AvgPSNRY(), stats.AvgSearchPointsPerMB())
	if *kbps > 0 {
		fmt.Printf("  rate control: target %.1f kbit/s (%.0f%% achieved)\n",
			*kbps, 100*stats.BitrateKbps() / *kbps)
	}
	return nil
}

// encodeLadder runs the simulcast path: one EncodeLadder pass over the
// source, one packetized artifact per rung (out.rN.ext), each decodable
// by `vcodec decode -packets` with no ladder awareness.
func encodeLadder(cfg codec.Config, spec, out string, frames []*frame.Frame, newSearcher func() (search.Searcher, error)) error {
	specs, err := codec.ParseLadderSpec(spec)
	if err != nil {
		return err
	}
	if sz := frames[0].Size(); sz != specs[0].Size {
		return fmt.Errorf("encode: source is %v but ladder top rung is %v", sz, specs[0].Size)
	}
	rungs := make([]codec.Rung, len(specs))
	for i, s := range specs {
		rcfg := cfg
		rcfg.TargetKbps = s.TargetKbps
		// Fresh searcher per rung: the rungs analyse concurrently and
		// stateful searchers (budgeted ACBM) must not be shared.
		if rcfg.Searcher, err = newSearcher(); err != nil {
			return err
		}
		rungs[i] = codec.Rung{Size: s.Size, Cfg: rcfg}
	}
	packets, stats, err := codec.EncodeLadder(rungs, frames)
	if err != nil {
		return err
	}
	fmt.Printf("encoded %d frames into a %d-rung ladder\n", len(frames), len(specs))
	for r, pkts := range packets {
		var buf bytes.Buffer
		pw := codec.NewPacketWriter(&buf)
		for i, pkt := range pkts {
			if err := pw.WritePacket(i, pkt); err != nil {
				return err
			}
		}
		path := rungPath(out, r)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
		target := ""
		if specs[r].TargetKbps > 0 {
			target = fmt.Sprintf(", target %.1f kbit/s", specs[r].TargetKbps)
		}
		fmt.Printf("  rung %d %v: %s, %d bytes, %.1f kbit/s%s, PSNR-Y %.2f dB, %.0f positions/MB\n",
			r, specs[r].Size, path, buf.Len(), stats[r].BitrateKbps(), target,
			stats[r].AvgPSNRY(), stats[r].AvgSearchPointsPerMB())
	}
	return nil
}

// rungPath derives rung r's artifact path from the -o path: the ".rN"
// tag slots in ahead of the extension (out.acbm → out.r1.acbm).
func rungPath(out string, r int) string {
	if dot := strings.LastIndexByte(out, '.'); dot > strings.LastIndexByte(out, '/') {
		return fmt.Sprintf("%s.r%d%s", out[:dot], r, out[dot:])
	}
	return fmt.Sprintf("%s.r%d", out, r)
}

// runLadderSplit demultiplexes an interleaved ladder stream (the wire
// format vcodecd's /encode?ladder= sessions emit: uvarint rung, index,
// length, payload) into one plain packetized artifact per rung — byte
// for byte what `encode -ladder` writes, so a saved session can be
// compared against or decoded by the offline tools.
func runLadderSplit(args []string) error {
	fs := flag.NewFlagSet("ladder-split", flag.ExitOnError)
	var (
		in  = fs.String("i", "", "input interleaved ladder stream path")
		out = fs.String("o", "", "output path stem (rung r lands at stem.rN.ext)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("ladder-split: -i and -o are required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	type rungOut struct {
		buf  bytes.Buffer
		pw   *codec.PacketWriter
		next int
	}
	var rungs []*rungOut
	pr := codec.NewLadderPacketReader(bytes.NewReader(data))
	for {
		rung, idx, pkt, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("ladder-split: %w", err)
		}
		for len(rungs) <= rung {
			r := &rungOut{}
			r.pw = codec.NewPacketWriter(&r.buf)
			rungs = append(rungs, r)
		}
		ro := rungs[rung]
		// Rungs interleave freely, but within one rung the stream is
		// strictly in order — a gap means the capture lost data, which
		// a split must refuse rather than silently paper over.
		if idx != ro.next {
			return fmt.Errorf("ladder-split: rung %d packet index %d, want %d", rung, idx, ro.next)
		}
		if err := ro.pw.WritePacket(idx, pkt); err != nil {
			return err
		}
		ro.next++
	}
	if len(rungs) == 0 {
		return fmt.Errorf("ladder-split: %s contains no packets", *in)
	}
	for r, ro := range rungs {
		path := rungPath(*out, r)
		if err := os.WriteFile(path, ro.buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("rung %d: %d packets, %d bytes → %s\n", r, ro.next, ro.buf.Len(), path)
	}
	return nil
}

func runDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	var (
		in      = fs.String("i", "", "input bitstream path")
		out     = fs.String("o", "", "output .y4m path")
		fps     = fs.Int("fps", 30, "frame rate tag for the output Y4M")
		packets = fs.Bool("packets", false, "input is the packetized transport; dropped or corrupt frame packets are concealed, not fatal")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decode: -i and -o are required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var frames []*frame.Frame
	concealed := 0
	if *packets {
		frames, concealed, err = decodePacketFile(data)
	} else {
		frames, err = codec.Decode(data)
	}
	if err != nil {
		return err
	}
	if len(frames) == 0 {
		return fmt.Errorf("decode: empty stream")
	}
	outF, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer outF.Close()
	if err := frame.WriteY4M(outF, frames, *fps, 1); err != nil {
		return err
	}
	if concealed > 0 {
		fmt.Printf("decoded %d frames (%v, %d concealed) to %s\n", len(frames), frames[0].Size(), concealed, *out)
	} else {
		fmt.Printf("decoded %d frames (%v) to %s\n", len(frames), frames[0].Size(), *out)
	}
	return nil
}

// decodePacketFile reconstructs a packetized file, concealing dropped
// (missing index) and corrupt frame packets by repeating the previous
// reconstruction — the loss behaviour of the paper's variable-bandwidth
// channel, applied to a file a lossy relay already chewed on. The fault
// policy (codec.DecodePacketStream) makes every mid-stream damage mode
// non-fatal: untrustworthy records are discarded, a truncated tail just
// ends the clip early, and the predictive stream resynchronises at the
// next intra frame — decode degrades, it does not error.
func decodePacketFile(data []byte) ([]*frame.Frame, int, error) {
	res, err := codec.DecodePacketStream(bytes.NewReader(data))
	if err != nil {
		return nil, 0, fmt.Errorf("decode: %w", err)
	}
	if res.Truncated != nil {
		fmt.Fprintf(os.Stderr, "decode: stream truncated mid-record, kept %d frames (%v)\n",
			len(res.Frames), res.Truncated)
	}
	return res.Frames, res.Concealed, nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	var (
		in      = fs.String("i", "", "input bitstream path")
		packets = fs.Bool("packets", false, "input is the packetized transport")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -i is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	if *packets {
		return packetInfo(*in, data)
	}
	d, err := codec.NewDecoder(data)
	if err != nil {
		return err
	}
	n := 0
	for d.More() {
		if _, err := d.DecodeFrame(); err != nil {
			return fmt.Errorf("info: frame %d: %w", n, err)
		}
		n++
	}
	fmt.Printf("%s: %v, entropy %v, %d frames, %d bytes\n",
		*in, d.Size(), d.EntropyMode(), n, len(data))
	return nil
}

// packetInfo summarises a packetized file without reconstructing pixels:
// record count, payload bytes, missing frame indices, and records whose
// indices cannot be trusted (same policy as decodePacketFile).
func packetInfo(name string, data []byte) error {
	pr := codec.NewPacketReader(bytes.NewReader(data))
	idx, hdr, err := pr.ReadPacket()
	if err != nil {
		return fmt.Errorf("info: reading header packet: %w", err)
	}
	if idx != 0 {
		return fmt.Errorf("info: header packet missing (first record has index %d)", idx)
	}
	dec, err := codec.NewPacketDecoder(hdr)
	if err != nil {
		return err
	}
	frames, dropped, ignored, payload := 0, 0, 0, len(hdr)
	truncated := false
	next := 1
	for {
		idx, pkt, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Same policy as decode: a broken record ends the stream,
			// the records before it still count.
			truncated = true
			break
		}
		if idx < next || idx-next > codec.MaxConcealGap {
			ignored++
			continue
		}
		dropped += idx - next
		frames++
		payload += len(pkt)
		next = idx + 1
	}
	extra := ""
	if ignored > 0 {
		extra = fmt.Sprintf(", %d untrustworthy records ignored", ignored)
	}
	if truncated {
		extra += ", truncated mid-record"
	}
	fmt.Printf("%s: %v, packets, %d frame packets (%d dropped%s), %d payload bytes, %d bytes\n",
		name, dec.Size(), frames, dropped, extra, payload, len(data))
	return nil
}

// makeSearcher resolves -me via the shared name table; only ACBM takes
// the CLI's α/β overrides and the -budget complexity cap, so it is
// special-cased ahead of the lookup.
func makeSearcher(name string, alpha, beta int, budget float64) (search.Searcher, error) {
	if strings.ToLower(name) == "acbm" {
		p := core.DefaultParams
		p.Alpha, p.Beta = alpha, beta
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if budget > 0 {
			return core.NewBudgeted(budget, p)
		}
		return core.New(p), nil
	}
	if budget > 0 {
		return nil, fmt.Errorf("-budget requires -me acbm (the budget servos ACBM's thresholds; got -me %s)", name)
	}
	return core.SearcherByName(name)
}

func parseEntropy(name string) (codec.EntropyMode, error) {
	switch strings.ToLower(name) {
	case "expgolomb", "eg", "":
		return codec.EntropyExpGolomb, nil
	case "arith", "arithmetic", "sac":
		return codec.EntropyArith, nil
	}
	return 0, fmt.Errorf("unknown entropy backend %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcodec:", err)
	os.Exit(1)
}
