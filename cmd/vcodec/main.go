// Command vcodec is the end-user tool of the codec substrate: it encodes
// YUV4MPEG2 video into the repository's bitstream format with a selectable
// motion estimator (including ACBM), and decodes such streams back to
// YUV4MPEG2.
//
// Usage:
//
//	vcodec encode -i in.y4m -o out.acbm -qp 16 -me acbm -entropy arith
//	vcodec encode -i in.y4m -o out.acbm -workers 4 -pipeline
//	vcodec decode -i out.acbm -o roundtrip.y4m
//	vcodec info   -i out.acbm
//
// -workers spreads macroblock analysis across a wavefront worker pool and
// -pipeline overlaps entropy coding of each frame with analysis of the
// next; both produce bitstreams byte-identical to the single-threaded
// encoder (only wall-clock changes).
//
// Synthetic input for a self-contained demo:
//
//	go run ./cmd/seqgen -profile foreman -o f.y4m
//	go run ./cmd/vcodec encode -i f.y4m -o f.acbm -qp 14 -me acbm
//	go run ./cmd/vcodec decode -i f.acbm -o f_dec.y4m
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: vcodec encode|decode|info [flags]"))
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = runEncode(os.Args[2:])
	case "decode":
		err = runDecode(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (want encode, decode or info)", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

func runEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	var (
		in      = fs.String("i", "", "input .y4m path")
		out     = fs.String("o", "", "output bitstream path")
		qp      = fs.Int("qp", 16, "quantiser parameter (1..31)")
		me      = fs.String("me", "acbm", "motion estimator: acbm|fsbm|pbm|rcfsbm|tss|ntss|4ss|ds|cds|hexbs")
		rng     = fs.Int("range", 15, "search range p in full pels")
		entropy = fs.String("entropy", "expgolomb", "entropy backend: expgolomb|arith")
		gop     = fs.Int("gop", 0, "intra period (0 = first frame only)")
		alpha   = fs.Int("alpha", core.DefaultParams.Alpha, "ACBM α")
		beta    = fs.Int("beta", core.DefaultParams.Beta, "ACBM β")
		workers = fs.Int("workers", 0, "macroblock-analysis goroutines (0 = GOMAXPROCS, 1 = sequential; output is identical for every value)")
		pipe    = fs.Bool("pipeline", false, "overlap entropy coding of frame n with analysis of frame n+1 (byte-identical output)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("encode: -i and -o are required")
	}
	searcher, err := makeSearcher(*me, *alpha, *beta)
	if err != nil {
		return err
	}
	mode, err := parseEntropy(*entropy)
	if err != nil {
		return err
	}

	inF, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer inF.Close()
	stream, err := frame.ReadY4M(inF)
	if err != nil {
		return err
	}
	if len(stream.Frames) == 0 {
		return fmt.Errorf("encode: %s contains no frames", *in)
	}
	fps := stream.FPS()
	if fps == 0 {
		fps = 30
	}
	stats, bs, err := codec.EncodeSequence(codec.Config{
		Qp: *qp, SearchRange: *rng, Searcher: searcher,
		FPS: fps, IntraPeriod: *gop, Entropy: mode,
		Workers: *workers, Pipeline: *pipe,
	}, stream.Frames)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, bs, 0o644); err != nil {
		return err
	}
	fmt.Printf("encoded %d frames (%v) with %s/%s at Qp %d\n",
		len(stream.Frames), stream.Frames[0].Size(), searcher.Name(), mode, *qp)
	fmt.Printf("  %d bytes, %.1f kbit/s @ %.3g fps, PSNR-Y %.2f dB, %.0f search positions/MB\n",
		len(bs), stats.BitrateKbps(), fps, stats.AvgPSNRY(), stats.AvgSearchPointsPerMB())
	return nil
}

func runDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	var (
		in  = fs.String("i", "", "input bitstream path")
		out = fs.String("o", "", "output .y4m path")
		fps = fs.Int("fps", 30, "frame rate tag for the output Y4M")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decode: -i and -o are required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	frames, err := codec.Decode(data)
	if err != nil {
		return err
	}
	if len(frames) == 0 {
		return fmt.Errorf("decode: empty stream")
	}
	outF, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer outF.Close()
	if err := frame.WriteY4M(outF, frames, *fps, 1); err != nil {
		return err
	}
	fmt.Printf("decoded %d frames (%v) to %s\n", len(frames), frames[0].Size(), *out)
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input bitstream path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -i is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	d, err := codec.NewDecoder(data)
	if err != nil {
		return err
	}
	n := 0
	for d.More() {
		if _, err := d.DecodeFrame(); err != nil {
			return fmt.Errorf("info: frame %d: %w", n, err)
		}
		n++
	}
	fmt.Printf("%s: %v, entropy %v, %d frames, %d bytes\n",
		*in, d.Size(), d.EntropyMode(), n, len(data))
	return nil
}

func makeSearcher(name string, alpha, beta int) (search.Searcher, error) {
	switch strings.ToLower(name) {
	case "acbm":
		p := core.DefaultParams
		p.Alpha, p.Beta = alpha, beta
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return core.New(p), nil
	case "fsbm":
		return &search.FSBM{}, nil
	case "rcfsbm":
		return &search.RCFSBM{}, nil
	case "pbm":
		return &search.PBM{}, nil
	case "tss":
		return &search.TSS{}, nil
	case "ntss":
		return &search.NTSS{}, nil
	case "4ss", "fss":
		return &search.FSS{}, nil
	case "ds", "diamond":
		return &search.Diamond{}, nil
	case "cds":
		return &search.CrossDiamond{}, nil
	case "hexbs", "hex":
		return &search.HEXBS{}, nil
	}
	return nil, fmt.Errorf("unknown motion estimator %q", name)
}

func parseEntropy(name string) (codec.EntropyMode, error) {
	switch strings.ToLower(name) {
	case "expgolomb", "eg", "":
		return codec.EntropyExpGolomb, nil
	case "arith", "arithmetic", "sac":
		return codec.EntropyArith, nil
	}
	return 0, fmt.Errorf("unknown entropy backend %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcodec:", err)
	os.Exit(1)
}
