// Command vcodecd is the encode-as-a-service daemon: it accepts raw
// YUV4MPEG2 video over chunked HTTP POST and streams the packetized
// bitstream back as frames complete, with N concurrent sessions sharing
// one machine-sized analysis worker pool (internal/server).
//
// Usage:
//
//	vcodecd -addr :8323 -pool 8 -max-sessions 8 -max-queued 32
//
// Endpoints:
//
//	POST /encode?qp=16&me=acbm&entropy=arith&gop=30   Y4M in, packets out
//	GET  /healthz                                     liveness + occupancy
//	GET  /metrics                                     Prometheus text + latency histograms
//	GET  /debug/vcodec/sessions                       live + completed session summaries
//	GET  /debug/vcodec/trace?id=TRACE                 one session's per-frame timeline
//	GET  /debug/vcodec/qos                            QoS controller decision audit
//
// The response body is a stream of codec.PacketWriter records (uvarint
// index, uvarint length, payload), flushed per packet; decode it with
// `vcodec decode -packets` or codec.PacketReader + codec.PacketDecoder.
// Session statistics arrive as X-Vcodec-* trailers.
//
// Every session carries a trace ID — accepted from an inbound
// X-Vcodec-Trace header (a fronting gateway sets one per session) or
// minted locally — under which an always-on flight recorder keeps a
// per-frame timeline of phase latencies (read, queue wait, analysis,
// entropy, emit), bits, Qp, and QoS actuations. The ID is echoed in the
// X-Vcodec-Trace trailer and keys /debug/vcodec/trace.
//
// A closed-loop QoS controller ticks every -qos-interval, compares the
// observed per-frame analysis latency against -qos-target-ms, and under
// sustained overload steps sessions down a degradation ladder (higher
// Qp, cheaper motion search, smaller complexity budget) instead of
// letting latency grow without bound; quality is restored with
// hysteresis once load subsides. Batch-priority sessions
// (?priority=batch) degrade first and are scheduled behind live work;
// ?qoslevel=N pins a session at a fixed level, exempt from the
// controller and byte-reproducible offline. /healthz and /metrics
// report the current degradation level.
//
// SIGINT/SIGTERM trigger graceful shutdown: new sessions get 503, the
// /healthz status flips to "draining", and in-flight sessions stream to
// completion (bounded by -drain-timeout) before the process exits.
//
// -addrfile writes the bound address (useful with -addr 127.0.0.1:0) so
// scripts can discover the random port; see `make serve-smoke`.
//
// -pprof 127.0.0.1:6060 serves the net/http/pprof endpoints on a
// separate debug listener (never on the serving address), so live
// sessions can be CPU/heap-profiled in production. Session goroutines
// carry pprof labels (vcodec_session = trace ID, vcodec_priority,
// vcodec_searcher), so profiles slice by session. The flight-recorder
// debug endpoints are mounted on the same listener:
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//	go tool pprof http://127.0.0.1:6060/debug/pprof/heap
//	curl http://127.0.0.1:6060/debug/vcodec/sessions
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8323", "listen address")
		addrfile = flag.String("addrfile", "", "write the bound address to this file once listening")
		pool     = flag.Int("pool", 0, "shared analysis pool workers (0 = GOMAXPROCS)")
		maxSess  = flag.Int("max-sessions", 8, "concurrent encode sessions")
		maxQueue = flag.Int("max-queued", 32, "sessions allowed to wait for admission")
		maxFrame = flag.Int("max-frames", 0, "per-session frame cap (0 = unlimited)")
		qosTick  = flag.Duration("qos-interval", 0, "QoS control loop tick (0 = default 250ms)")
		qosTgt   = flag.Float64("qos-target-ms", 0, "QoS per-frame analysis latency target in ms (0 = default 75)")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight sessions")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this debug address (e.g. 127.0.0.1:6060); empty disables")
	)
	flag.Parse()

	srv := server.New(server.Config{
		PoolWorkers:         *pool,
		MaxSessions:         *maxSess,
		MaxQueued:           *maxQueue,
		MaxFramesPerSession: *maxFrame,
		QosInterval:         *qosTick,
		QosTargetFrameMs:    *qosTgt,
	})

	if *pprofA != "" {
		// The profiling endpoints live on their own mux and listener so
		// they are never exposed on the serving address and cannot contend
		// with session admission. net/http/pprof registers its handlers on
		// http.DefaultServeMux; the flight-recorder debug endpoints mount
		// beside them so one debug listener answers both.
		http.Handle("/debug/vcodec/", srv.Handler())
		dln, err := net.Listen("tcp", *pprofA)
		if err != nil {
			log.Fatalf("vcodecd: pprof listen: %v", err)
		}
		go func() {
			log.Printf("vcodecd: pprof debug mux on http://%s/debug/pprof/", dln.Addr())
			if err := http.Serve(dln, http.DefaultServeMux); err != nil {
				log.Printf("vcodecd: pprof server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vcodecd: %v", err)
	}
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("vcodecd: %v", err)
		}
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// No WriteTimeout: sessions are long-lived streams whose pace the
		// client controls (backpressure is the feature, not a hang).
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	log.Printf("vcodecd: listening on %s (pool %d, %d sessions + %d queued)",
		ln.Addr(), *pool, *maxSess, *maxQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("vcodecd: %v — draining", s)
	case err := <-errCh:
		log.Fatalf("vcodecd: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("vcodecd: drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vcodecd: shutdown: %v", err)
	}
	srv.Close()
	fmt.Println("vcodecd: drained, bye")
}
