// Command vload is the load generator for vcodecd and vcodec-gateway: it
// drives M concurrent encode sessions against one or more endpoints
// (uploading a synthetic Y4M clip, streaming the packet response) across
// a sweep of session counts and reports aggregate throughput plus
// first-packet and per-frame latency percentiles — the numbers behind
// BENCH_serve.json.
//
// Usage:
//
//	vload -url http://127.0.0.1:8323 -sessions 1,4,8 -frames 30 -json BENCH_serve.json
//	vload -selfhost -sessions 1,4,8 -verify -json BENCH_serve.json
//	vload -url http://gw-a:8320,http://gw-b:8320 -sessions 8 -verify
//	vload -chaos -json BENCH_cluster.json
//	vload -qos -json BENCH_qos.json
//
// -url accepts multiple comma-separated endpoints; sessions round-robin
// across them (several gateways, or backends driven directly).
//
// -selfhost boots an in-process vcodecd on a loopback port and drives it
// over real HTTP — the one-command way to regenerate the artifact.
// -verify additionally byte-compares one session per point against the
// offline EncodePackets output, turning the throughput claim into a
// correctness claim.
//
// -retry-after makes a session honor a 503's Retry-After header: sleep
// the advertised delay and re-submit (bounded retries). Off by default
// so admission behavior stays visible in the report.
//
// -chaos switches to the cluster chaos benchmark: a self-hosted
// vcodec-gateway topology (N backends behind fault-injecting proxies) is
// run through the named scenarios — baseline, degraded-latency,
// backend-crash, partition, high-load — while every session byte-verifies
// its stream end to end; the aggregate lands in BENCH_cluster.json. With
// -url, only the no-fault-injection scenarios (baseline, high-load) can
// run against the remote endpoints. -scenarios picks a subset.
//
// -priority tags the sweep's sessions with a scheduling tier: live,
// batch, or mixed (sessions alternate — the shape that shows the QoS
// controller degrading batch before live). -qoslevel pins every session
// at a fixed degradation level; the default is adaptive, under the
// daemon's closed-loop controller, and the report's "qos levels" column
// histograms where each session's stream ended up.
//
// -qos switches to the closed-loop QoS benchmark: a self-hosted vcodecd
// with a fast control loop is ramped past saturation with mixed-priority
// sessions; each degradation level is first byte-verified through a
// pinned session against the offline encoder, and every ramp step must
// end with zero truncated sessions and the controller restored to level
// 0. The aggregate lands in BENCH_qos.json.
//
// Every report names each point's slowest session by its trace ID (the
// X-Vcodec-Trace trailer) and dumps that session's per-frame timeline —
// read, queue wait, analysis, entropy and emit latency, bits, Qp, QoS
// level — pulled from the serving node's flight recorder via
// /debug/vcodec/trace (through the gateway's fleet-wide proxy on -chaos
// runs). A tail-latency investigation starts from that ID, not from a
// percentile.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/frame"
	"repro/internal/server"
	"repro/internal/video"
)

func main() {
	var (
		url       = flag.String("url", "", "endpoint base URL(s), comma-separated (e.g. http://127.0.0.1:8323)")
		selfhost  = flag.Bool("selfhost", false, "boot an in-process daemon on a loopback port and drive it")
		pool      = flag.Int("pool", 0, "selfhost: analysis pool workers (0 = GOMAXPROCS)")
		sessions  = flag.String("sessions", "1,4,8", "comma-separated session counts to sweep")
		frames    = flag.Int("frames", 30, "frames per session")
		sizeName  = flag.String("size", "qcif", "clip size: sqcif|qcif|cif")
		profName  = flag.String("profile", "foreman", "clip profile: carphone|foreman|missamerica|table")
		qp        = flag.Int("qp", 16, "quantiser parameter")
		me        = flag.String("me", "acbm", "motion estimator")
		entropy   = flag.String("entropy", "", "entropy backend: expgolomb|arith")
		kbps      = flag.Float64("kbps", 0, "per-session rate-control target in kbit/s (0 = constant Qp)")
		seed      = flag.Uint64("seed", 0, "clip seed (0 = experiment default)")
		verify    = flag.Bool("verify", false, "byte-compare one session per point against the offline encoder")
		retryA    = flag.Bool("retry-after", false, "on 503, honor Retry-After and re-submit (bounded)")
		retryMax  = flag.Int("retry-max", 4, "max 503 re-submissions per session with -retry-after")
		priority  = flag.String("priority", "", "session scheduling tier: live|batch|mixed (default live)")
		qosPin    = flag.String("qoslevel", "", "pin sessions at this QoS level 0..3 (default adaptive)")
		chaosRun  = flag.Bool("chaos", false, "run the cluster chaos benchmark instead of the serve sweep")
		ladderRun = flag.Bool("ladder", false, "run the simulcast ladder benchmark (offline EncodeLadder vs independent encodes) instead of the serve sweep")
		rungs     = flag.Int("rungs", 0, "ladder: rung count (default 3)")
		qosRun    = flag.Bool("qos", false, "run the closed-loop QoS overload benchmark instead of the serve sweep")
		qosBin    = flag.String("daemon", "", "qos: exec this vcodecd binary as a separate process (honest gap percentiles on a saturated machine)")
		scens     = flag.String("scenarios", "", "chaos: comma-separated scenario subset (default all)")
		backends  = flag.Int("backends", 2, "chaos: self-hosted backend count")
		jsonPath  = flag.String("json", "", "write the report to this path (BENCH_serve.json / BENCH_cluster.json)")
		wait      = flag.Duration("wait", 10*time.Second, "how long to wait for /healthz before starting")
	)
	flag.Parse()

	counts, err := parseSessions(*sessions)
	if err != nil {
		fatal(err)
	}
	size, err := frame.SizeByName(*sizeName)
	if err != nil {
		fatal(err)
	}
	prof, err := video.ProfileByName(*profName)
	if err != nil {
		fatal(err)
	}
	var urls []string
	for _, u := range strings.Split(*url, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	switch *priority {
	case "", "live", "batch", "mixed":
	default:
		fatal(fmt.Errorf("bad -priority %q (want live, batch or mixed)", *priority))
	}

	if *ladderRun {
		if *selfhost || len(urls) > 0 {
			fatal(fmt.Errorf("-ladder is an offline benchmark; drop -selfhost/-url"))
		}
		// Ladder defaults differ from the serve sweep's (TableTennis for
		// its seeding-friendly motion, a 16-aligned 2:1 top size): honor a
		// flag only when the user set it explicitly.
		lcfg := experiment.LadderConfig{Profile: video.TableTennis, Rungs: *rungs, Seed: *seed}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "frames":
				lcfg.Frames = *frames
			case "qp":
				lcfg.Qp = *qp
			case "size":
				lcfg.Size = size
			case "profile":
				lcfg.Profile = prof
			}
		})
		res, err := experiment.RunLadder(lcfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiment.FormatLadder(res))
		if *jsonPath != "" {
			if err := res.WriteJSON(*jsonPath); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return
	}

	if *qosRun {
		if *selfhost || len(urls) > 0 {
			fatal(fmt.Errorf("-qos self-hosts its own daemon; drop -selfhost/-url"))
		}
		// The serve sweep's defaults stop below saturation; leave the ramp
		// and clip length to RunQos unless set explicitly.
		qosCounts, qosFrames := []int(nil), 0
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "sessions":
				qosCounts = counts
			case "frames":
				qosFrames = *frames
			}
		})
		res, err := experiment.RunQos(experiment.QosConfig{
			Sessions:  qosCounts,
			Frames:    qosFrames,
			Size:      size,
			Profile:   prof,
			Qp:        *qp,
			Seed:      *seed,
			Searcher:  *me,
			Entropy:   *entropy,
			DaemonBin: *qosBin,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiment.FormatQos(res))
		if *jsonPath != "" {
			if err := res.WriteJSON(*jsonPath); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return
	}

	if *chaosRun {
		if *selfhost {
			fatal(fmt.Errorf("-chaos self-hosts its own topology; drop -selfhost"))
		}
		var scenarios []string
		for _, s := range strings.Split(*scens, ",") {
			if s = strings.TrimSpace(s); s != "" {
				scenarios = append(scenarios, s)
			}
		}
		res, err := experiment.RunCluster(experiment.ClusterConfig{
			URLs:      urls,
			Backends:  *backends,
			Scenarios: scenarios,
			Sessions:  counts[len(counts)-1],
			Frames:    *frames,
			Size:      size,
			Profile:   prof,
			Qp:        *qp,
			Seed:      *seed,
			Searcher:  *me,
			Entropy:   *entropy,
			Retry503:  *retryA,
			RetryMax:  *retryMax,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiment.FormatCluster(res))
		if *jsonPath != "" {
			if err := res.WriteJSON(*jsonPath); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return
	}

	if *selfhost {
		if len(urls) > 0 {
			fatal(fmt.Errorf("-url and -selfhost are mutually exclusive"))
		}
		maxSess := 0
		for _, n := range counts {
			if n > maxSess {
				maxSess = n
			}
		}
		srv := server.New(server.Config{PoolWorkers: *pool, MaxSessions: maxSess})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go http.Serve(ln, srv.Handler())
		urls = []string{"http://" + ln.Addr().String()}
		fmt.Printf("vload: self-hosted daemon on %s\n", urls[0])
	}
	if len(urls) == 0 {
		fatal(fmt.Errorf("-url is required (or use -selfhost)"))
	}
	for _, u := range urls {
		if err := waitHealthy(u, *wait); err != nil {
			fatal(err)
		}
	}

	res, err := experiment.RunServe(experiment.ServeConfig{
		URLs:     urls,
		Sessions: counts,
		Frames:   *frames,
		Size:     size,
		Profile:  prof,
		Qp:       *qp,
		Seed:     *seed,
		Searcher: *me,
		Entropy:  *entropy,
		Kbps:     *kbps,
		Priority: *priority,
		QosPin:   *qosPin,
		Verify:   *verify,
		Retry503: *retryA,
		RetryMax: *retryMax,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.FormatServe(res))
	if *jsonPath != "" {
		if err := res.WriteJSON(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// waitHealthy polls /healthz until the daemon answers 200.
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %v: %w", base, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func parseSessions(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad session count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no session counts in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vload:", err)
	os.Exit(1)
}
