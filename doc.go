// Package repro is a from-scratch Go reproduction of "A High Quality/Low
// Computational Cost Technique for Block Matching Motion Estimation"
// (López, Callicó, López, Sarmiento — DATE 2005): the ACBM adaptive-cost
// motion estimation algorithm, the full/predictive block-matching
// algorithms it hybridises, an H.263-style codec substrate, synthetic
// stand-ins for the paper's test sequences, and harnesses that regenerate
// every table and figure of the evaluation.
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are the examples/ programs and the
// cmd/acbmbench, cmd/mvstudy, cmd/seqgen, cmd/vcodec, cmd/vcodecd and
// cmd/vload tools. The benchmarks in bench_test.go regenerate the paper's
// Table 1 and Figures 4-6.
//
// # Performance architecture
//
// The encode hot path is optimised at several layers, none of which
// change a single output bit (the golden bitstream tests and the parallel
// equivalence tests in internal/codec pin this):
//
//   - internal/frame pads every reference/reconstruction plane with a
//     replicated apron sized to the motion range plus the half-pel margin
//     (padded stride, Pix windowed into the padded buffer). The apron is
//     replicated exactly once per frame, when a reconstruction becomes
//     the prediction reference (refreshReference, after deblocking), so
//     every position a legal candidate or a chroma-derived vector can
//     reach is backed by real edge-replicated memory and no hot loop
//     branches on the frame border.
//   - The half-pel view (frame.Interpolated) is phase-split and lazily
//     materialised: the integer phase is the source plane itself, and the
//     b/c/d half-pel phases live in contiguous per-phase planes computed
//     tile by tile (frame.TileSize² samples) on first touch, guarded by
//     an atomic per-tile claim state. Wavefront workers first-touching
//     the same tile are race-clean — one claims and fills (the fill is
//     idempotent: a pure function of the source), the rest spin until the
//     fill is published; nothing may read a tile's samples except through
//     the claiming protocol (At/Block/PhaseRect). Output bits cannot
//     change because lazily computed samples are byte-equal to the eager
//     grid (differential tests pin this) and SAD probes/compensation read
//     the same values either way, in the same order.
//   - internal/metrics runs the SAD family through a runtime-dispatched
//     kernel table with four tiers: scalar (the differential-test
//     reference), SWAR (8 pixels per uint64 load, split into 16-bit
//     lanes), and on amd64 two Go-assembly tiers — SSE2 (PSADBW sums 16
//     absolute differences per instruction into qword lanes; PAVGB is
//     the exact H.263 (a+b+1)>>1 for straight half-pel phases; the
//     diagonal (a+b+c+d+2)>>2 widens to words because no PAVGB
//     composition reproduces its rounding) and AVX2 (32-pixel rows per
//     VPSADBW step, 16-wide macroblocks packed two rows per YMM
//     register). CPUID feature detection (OSXSAVE + XGETBV before any
//     AVX2 claim) picks the best tier at init; VCODEC_SAD_KERNEL=
//     scalar|swar|sse2|avx2 overrides it, and SetKernelISA swaps tiers
//     at runtime for tests. The dispatch contract is that every tier is
//     bit-identical — SADCapped's per-row early-termination values
//     included — so the active ISA can never change an encoded bit,
//     only ns/frame; the per-ISA differential+fuzz suite, the encoder
//     bitstream-identity test, and the bench-smoke dispatch probe all
//     pin this. Half-pel candidates are evaluated by fused kernels
//     (SADHalfPelPlane, and the SADHalfPelRing batch that scores all 8
//     neighbour phases in one pass) that apply the H.263 bilinear
//     rounding inside the difference loop, directly against the integer
//     reference plane: searcher refinement never materialises half-pel
//     storage at all, so the tiles that do get filled are only those
//     motion compensation actually lands on — and full-pel compensation
//     (every skip block, most chroma vectors) copies plane rows without
//     touching the half-pel substrate either.
//   - Reconstruction frames, half-pel phase planes and their buffers
//     recycle through size-bucketed pools (one bucket per exact
//     dimensions × apron class), so concurrent vcodecd sessions at mixed
//     resolutions stop thrashing each other's buffers. A reference frame
//     is retired to its pool at the frame hand-off — the first point
//     where both of its readers (the next frame's analysis and the
//     previous frame's PSNR statistics) are provably done; the steady
//     state is ~10 heap allocations per encoded frame, and `make
//     bench-smoke` fails if the pinned ceiling regresses.
//   - search.FSBM scans candidates centre-outward ("spiral", sorted by L1
//     then raster order), so the SADCapped early-termination cap is
//     near-minimal after the first ring; the visit order is chosen so the
//     winner is identical to the raster scan's under the shorter-vector
//     tie-break.
//   - internal/bitstream runs word-at-a-time: the Writer gathers bits in
//     a 64-bit accumulator and the entropy layer packs whole syntax
//     elements — Exp-Golomb codes, (run, level, last) TCOEF events, MVD
//     pairs — into single WriteBits calls. The original per-bit engine is
//     kept as the differential/fuzz-test reference.
//   - internal/dct restructures the separable float DCT around hoisted
//     row conversion and contiguous basis tables, with a DC-only inverse
//     fast path; every reordering preserves the reference kernels'
//     floating-point operation order, so int32(math.Round) outputs are
//     bit-identical (enforced by differential tests against the kept
//     reference kernels). All-zero residual blocks skip the transform and
//     quantiser entirely, and uncoded blocks reconstruct by copying their
//     prediction — exact by construction.
//   - internal/codec analyses macroblocks on a wavefront worker pool
//     (codec.Config.Workers): motion estimation, mode decision,
//     transform/quantisation and reconstruction are scheduled per
//     anti-diagonal d = x + 2y, because the predictive searchers read
//     only the left/up-left/up/up-right motion-field neighbours. Each
//     worker owns a forked searcher (search.Forker; core.ACBM is not
//     concurrency-safe and merges its stats additively in Join), scratch
//     is recycled through sync.Pools, and entropy coding stays serial —
//     bitstreams are bit-identical for every worker count.
//   - codec.Pipeline (codec.Config.Pipeline in EncodeSequence) overlaps
//     the serial entropy coding of frame n with the analysis of frame
//     n+1: analysis of n+1 needs only frame n's reconstruction and motion
//     field, both final when frame n's analysis ends, while the entropy
//     coder — whose (arithmetic) state spans frames — consumes jobs
//     strictly in frame order on one writer goroutine. One frame is in
//     flight; output stays byte-identical for every worker count.
//   - Rate and complexity control are frame-lag controllers that compose
//     with all of the above instead of forcing the encoder serial. The
//     TargetKbps quantiser servo decides frame n+1's Qp at frame n's
//     hand-off — from the actual sizes of frames 0..n-1 plus a predicted
//     size for the frame in flight (bits-per-coefficient model over the
//     worker-invariant analysis results) — and corrects the prediction
//     one frame later. core.Budgeted freezes its α/γ thresholds at frame
//     start, accounts consumed search points per worker fork, merges
//     them additively in Join and servos once per frame. Both therefore
//     keep the wavefront, the pipeline and the shared pool fully
//     parallel, with bitstreams pinned byte-identical across Workers ×
//     Pipeline × Pool by golden -race tests; `make bench-rate` writes
//     BENCH_rate.json (kbps tracking error, ns/frame per mode).
//
// `make bench-speed` / `make bench-matrix` (or `acbmbench -experiment
// speed -json BENCH_speed.json`) record the encoder's speed trajectory —
// ns/frame, fps, the analysis/entropy phase split, points/block,
// allocs/frame and the half-pel bytes actually materialised per frame —
// across the full GOMAXPROCS × workers × pipeline matrix, per searcher.
// Each point carries the GOMAXPROCS and kernel ISA it ran under, and the
// artifact embeds the host (CPU model, core count, registered kernel
// tiers), so a number is never divorced from the machine that produced
// it. BENCH_ratchet.json pins per-searcher serial ns/frame baselines;
// `make bench-smoke` re-measures and fails CI past a tolerance band
// (widened automatically on a different CPU), and `make ratchet-pin`
// re-pins after a deliberate perf change. For ad-hoc investigation,
// `acbmbench -cpuprofile/-memprofile` write pprof profiles of any
// experiment, and `vcodecd -pprof addr` serves net/http/pprof for live
// sessions.
//
// # Serving architecture
//
// On top of the engine sits an encode-as-a-service layer, the
// "variable bandwidth channel" deployment the paper targets:
//
//   - codec.EncodeStream is the streaming session API: frames in one at
//     a time, each finished frame out immediately as an independently
//     parseable packet (first-byte latency of one frame, not one
//     sequence). It reuses the analyzeFrameJob/writeFrameBody split and
//     the pipeline overlap; a slow consumer throttles the encode (one
//     frame in flight behind a blocked emit) instead of growing a queue.
//     codec.EncodePackets is its batch wrapper, and the uvarint
//     record framing (codec.PacketWriter/PacketReader) carries packet
//     streams over files and HTTP alike — with explicit indices, so a
//     lossy channel's drops are visible and concealable.
//   - codec.Pool is the multi-session scheduler's substrate: one
//     machine-sized analysis worker pool shared by every concurrent
//     session (Config.Pool replaces per-session Config.Workers), with
//     sessions interleaving at macroblock granularity on a FIFO queue —
//     fair-share without oversubscription, bitstreams still
//     bit-identical to the sequential encoder.
//   - internal/server (cmd/vcodecd) serves POST /encode: chunked Y4M
//     upload in, flushed packet records out, session stats in HTTP
//     trailers; admission control (session cap + bounded queue, 503
//     beyond), /healthz and /metrics (sessions, frames/s, per-phase
//     latency), and graceful SIGTERM drain that completes in-flight
//     streams while rejecting new ones.
//   - cmd/vload is the load generator: M concurrent sessions across a
//     sweep of session counts and one or more endpoints (comma-separated
//     -url round-robins), reporting aggregate throughput plus
//     first-packet and per-frame latency percentiles, optionally
//     byte-verifying the served stream against the offline encoder and
//     optionally honoring 503 Retry-After (-retry-after).
//     `make bench-serve` writes the artifact (BENCH_serve.json) and
//     `make serve-smoke` gates CI on boot → verified burst → clean
//     drain. See examples/serve for the walkthrough.
//   - internal/gateway (cmd/vcodec-gateway) makes N vcodecd backends one
//     system: health-aware least-loaded routing off each backend's
//     /healthz + /metrics, bounded retries with capped-exponential
//     jittered backoff, per-backend circuit breakers, and drain-aware
//     rebalancing. The delivery contract is commit-point retry: a
//     session may be re-dispatched (upload replayed from a buffer) only
//     while zero response bytes have reached the client; after the first
//     byte, a backend failure surfaces as an explicit X-Vcodec-Error
//     trailer — never a truncated stream with a 200. The gateway
//     re-exposes /healthz and /metrics (per-backend breaker/routing
//     state) and drains gracefully on SIGTERM, gateway before backends.
//   - internal/gateway/chaos is the fault injector behind the cluster
//     benchmark: TCP proxies in front of each backend inject latency,
//     stalls, connection resets and mid-stream kills. `vload -chaos`
//     (make bench-cluster → BENCH_cluster.json) runs the named scenarios
//     — baseline, degraded-latency, backend-crash, partition, high-load
//     — against a self-hosted gateway topology with every session
//     byte-verified end to end, and `make cluster-smoke` gates CI on
//     boot → verified burst → kill a backend mid-run → still-verified
//     burst → clean drain.
//   - internal/server/qos.go closes the loop under overload: a
//     controller ticks every Config.QosInterval, folds per-phase
//     latency EWMAs, queue depth and session counts into one load
//     score, and steps sessions down an explicit degradation ladder —
//     Qp up, ACBM swapped for the cheap PBM searcher at the next intra
//     boundary, complexity budget shrunk — instead of letting latency
//     grow without bound; hysteresis (consecutive calm ticks, a dwell
//     time, and a cost projection) restores quality without
//     oscillating. Actuations apply at frame hand-off on the session
//     goroutine, so every stream stays deterministic under Workers ×
//     Pipeline × Pool; a session's actual level travels in the
//     X-Vcodec-Qos-Level/-Transitions trailers. ?priority=batch
//     sessions degrade one level deeper and are scheduled behind live
//     work (with an anti-starvation share); ?qoslevel=N pins a session
//     at a fixed rung, exempt from the controller and byte-identical to
//     the offline encoder under server.ApplyQosLevel — the hook the
//     verified benchmarks use. Admission 503s scale Retry-After with
//     queue depth and degradation level, the gateway's poller prefers
//     less-degraded backends on load ties, and `vload -qos` (make
//     bench-qos → BENCH_qos.json) prices each rung offline (PSNR, kbps,
//     encode time) then ramps mixed-priority sessions past saturation —
//     zero truncated streams, full quality restored after the ramp;
//     `make qos-smoke` gates CI on the same contract.
//   - internal/obs is the always-on flight recorder behind the serving
//     layer's observability: every session gets a trace ID (minted at
//     the gateway — or accepted from the client's X-Vcodec-Trace header
//     — propagated to the backend and echoed in both sides' trailers)
//     and a lock-free per-frame event ring recording each frame's phase
//     breakdown — Y4M read, pool-queue wait, max preemption stall,
//     analysis, entropy, emit — plus bits, Qp, QoS level and actuation
//     marks, written from the existing phase boundaries via the
//     codec.Config.Observer hook. The recorder observes and never
//     actuates: byte-identity and the per-frame allocation ceiling hold
//     with it on, and `make bench-smoke` guards its overhead. Exposure:
//     log-bucketed latency histograms on both /metrics endpoints
//     (vcodecd per-phase, gateway route/relay-gap), /debug/vcodec/
//     sessions + trace?id= + qos JSON endpoints (the gateway proxies
//     trace lookups fleet-wide), and pprof labels (vcodec_session/
//     priority/searcher) on session goroutines so live profiles slice
//     by session. vload names each point's slowest session by trace ID
//     and dumps its timeline; `make obs-smoke` gates CI on burst →
//     fetch-trace-by-ID → timeline-matches-stream → clean drain.
//   - codec.EncodeLadder (vcodecd /encode?ladder=WxH@kbps,..., vcodec
//     encode -ladder) is the simulcast ABR path: one upload fans out to
//     N renditions that share ingest, the 2:1 downscale chain
//     (frame.Downscale — exact box filter, SWAR fast path pinned to the
//     scalar reference by differential+fuzz tests, pooled outputs) and
//     cross-layer motion analysis. Rungs encode concurrently, one
//     goroutine per rung chained by cap-1 channels with a one-frame lag:
//     each lower rung's searcher receives the rung above's final motion
//     field scaled down as a search.LayerSeed — up to four extra
//     candidate probes on the PBM predictor path, replacing the temporal
//     predictors. Seeds never constrain the search, so every rung is
//     independently decodable, rung 0 (never seeded) is byte-identical
//     to a plain single encode, and the whole ladder is byte-identical
//     across Workers × Pipeline × Pool (pinned under -race). Per-rung
//     TargetKbps reuses the frame-lag rate controller unchanged. On the
//     wire, sessions interleave uvarint (rung, index, length, payload)
//     records; `vcodec ladder-split` demultiplexes a saved session into
//     per-rung packet artifacts, the X-Vcodec-Rungs trailer carries
//     per-rung frames/PSNR/kbps, the flight recorder tags events by
//     rung, and /metrics exports plane-pool hit/miss counters per size
//     class (ladder sessions churn downscaled planes hardest). `make
//     bench-ladder` writes BENCH_ladder.json — ladder vs N independent
//     encodes (wall-clock speedup, bounded by 1 + Σ4⁻ʳ on one core;
//     rung concurrency lifts it on multicore hosts) plus per-rung
//     seeded-vs-unseeded points/MB — and `make ladder-smoke` gates CI
//     on serve → split → byte-match the offline ladder → decode every
//     rung → clean drain.
package repro
