// Package repro is a from-scratch Go reproduction of "A High Quality/Low
// Computational Cost Technique for Block Matching Motion Estimation"
// (López, Callicó, López, Sarmiento — DATE 2005): the ACBM adaptive-cost
// motion estimation algorithm, the full/predictive block-matching
// algorithms it hybridises, an H.263-style codec substrate, synthetic
// stand-ins for the paper's test sequences, and harnesses that regenerate
// every table and figure of the evaluation.
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are the examples/ programs and the
// cmd/acbmbench, cmd/mvstudy and cmd/seqgen tools. The benchmarks in
// bench_test.go regenerate the paper's Table 1 and Figures 4-6.
package repro
