// Broadcast: hostile content for predictive search. The Foreman stand-in
// (heavy texture, camera shake, an abrupt pan) is encoded at 10 fps, the
// regime where the paper shows PBM degrading while ACBM escalates critical
// blocks to full search and keeps FSBM-level quality.
//
// Run with:
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

func main() {
	// 90 frames at 30 fps decimated ×3 → 30 frames at 10 fps, spanning
	// the abrupt pan that starts at frame 40.
	base := video.Generate(video.Foreman, frame.QCIF, 90, 3)
	frames := video.Decimate(base, 3)

	acbm := core.New(core.DefaultParams)
	algos := []struct {
		name     string
		searcher search.Searcher
	}{
		{"PBM", &search.PBM{}},
		{"ACBM", acbm},
		{"FSBM", &search.FSBM{}},
	}

	fmt.Println("Foreman stand-in, QCIF@10fps, Qp=14 (broadcast quality point)")
	fmt.Printf("%-6s %12s %12s %14s\n", "algo", "PSNR-Y (dB)", "kbit/s", "positions/MB")
	for _, a := range algos {
		stats, _, err := codec.EncodeSequence(codec.Config{
			Qp: 14, Searcher: a.searcher, FPS: 10,
		}, frames)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %12.2f %12.1f %14.0f\n",
			a.name, stats.AvgPSNRY(), stats.BitrateKbps(), stats.AvgSearchPointsPerMB())
	}

	st := acbm.Stats()
	fmt.Printf("\nACBM classified %.0f%% of blocks as critical (ran FSBM on them),\n", 100*st.FSBMRate())
	fmt.Printf("%.0f%% as easy and %.0f%% as textured-but-well-matched.\n",
		100*float64(st.Easy)/float64(st.Blocks), 100*float64(st.GoodMatch)/float64(st.Blocks))
}
