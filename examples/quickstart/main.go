// Quickstart: encode a short synthetic sequence with the ACBM motion
// estimator, decode the bitstream back, and print quality, rate and
// search-complexity numbers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

func main() {
	// 1. A test sequence: 30 QCIF frames of the Carphone stand-in.
	frames := video.Generate(video.Carphone, frame.QCIF, 30, 1)

	// 2. The paper's algorithm with its calibrated parameters
	//    (α=1000, β=8, γ=1/4).
	acbm := core.New(core.DefaultParams)

	// 3. Encode with the H.263-style codec substrate.
	stats, bitstream, err := codec.EncodeSequence(codec.Config{
		Qp:       16,
		Searcher: acbm,
		FPS:      30,
	}, frames)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Decode and verify the round trip.
	decoded, err := codec.Decode(bitstream)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("encoded %d frames to %d bytes (%.1f kbit/s at 30 fps)\n",
		len(frames), len(bitstream), stats.BitrateKbps())
	fmt.Printf("average luma PSNR: %.2f dB\n", stats.AvgPSNRY())
	fmt.Printf("decoded %d frames; first luma PSNR vs source: ", len(decoded))
	psnr, _ := frame.PSNR(frames[0].Y, decoded[0].Y)
	fmt.Printf("%.2f dB\n\n", psnr)

	// 5. The paper's headline metric: search positions per macroblock.
	st := acbm.Stats()
	fmt.Printf("ACBM searched %.0f positions/MB on average (FSBM would use 969)\n", st.AvgPoints())
	fmt.Printf("decision mix: %.0f%% easy, %.0f%% good-match, %.0f%% critical (FSBM fallback)\n",
		100*float64(st.Easy)/float64(st.Blocks),
		100*float64(st.GoodMatch)/float64(st.Blocks),
		100*st.FSBMRate())
}
