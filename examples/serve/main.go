// Serve walkthrough: the encode-as-a-service flow end to end, in one
// process — boot the vcodecd serving layer on a loopback port, upload a
// synthetic clip over HTTP, decode the packet stream as it arrives (note
// the first packet lands after one frame, not one sequence), and verify
// the streamed bits match the offline encoder exactly.
//
// Run with:
//
//	go run ./examples/serve
//
// The same flow with the installed tools and a real daemon:
//
//	go run ./cmd/vcodecd -addr :8323 &
//	go run ./cmd/seqgen -profile foreman -frames 30 -o f.y4m
//	curl -sN --data-binary @f.y4m 'http://localhost:8323/encode?qp=16&me=acbm' > f.pkt
//	go run ./cmd/vcodec decode -i f.pkt -o f_dec.y4m -packets
//	curl -s http://localhost:8323/metrics | grep vcodecd_frames
//	kill -TERM %1     # graceful drain
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/server"
	"repro/internal/video"
)

func main() {
	// 1. The serving layer: a shared analysis pool sized to the machine,
	//    8 concurrent sessions, listening on a random loopback port.
	srv := server.New(server.Config{MaxSessions: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("vcodecd serving on %s\n\n", base)

	// 2. A client: 30 QCIF frames of the Foreman stand-in, serialised as
	//    the Y4M upload body.
	frames := video.Generate(video.Foreman, frame.QCIF, 30, 1)
	var upload bytes.Buffer
	if err := frame.WriteY4M(&upload, frames, 30, 1); err != nil {
		log.Fatal(err)
	}

	// 3. POST the clip and decode the response as it streams: packet 0 is
	//    the sequence header, packet i+1 carries frame i.
	start := time.Now()
	resp, err := http.Post(base+"/encode?qp=16&me=acbm", "video/x-yuv4mpeg", &upload)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("server: %s: %s", resp.Status, msg)
	}
	pr := codec.NewPacketReader(resp.Body)
	var (
		dec      *codec.PacketDecoder
		received [][]byte
		sumPSNR  float64
		decoded  int
	)
	for {
		idx, pkt, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		received = append(received, pkt)
		switch {
		case idx == 0:
			if dec, err = codec.NewPacketDecoder(pkt); err != nil {
				log.Fatal(err)
			}
		default:
			f, err := dec.DecodePacket(pkt)
			if err != nil {
				log.Fatal(err)
			}
			if decoded == 0 {
				fmt.Printf("first frame decoded %.0f ms after the request — a live stream,\n"+
					"not a batch job (the upload is still in flight)\n\n", time.Since(start).Seconds()*1e3)
			}
			p, _ := frame.PSNR(frames[decoded].Y, f.Y)
			sumPSNR += p
			decoded++
		}
	}
	fmt.Printf("streamed %d packets, decoded %d frames, PSNR-Y %.2f dB\n",
		len(received), decoded, sumPSNR/float64(decoded))
	fmt.Printf("session trailers: frames=%s psnr=%s kbps=%s\n\n",
		resp.Trailer.Get(server.TrailerFrames),
		resp.Trailer.Get(server.TrailerPSNRY),
		resp.Trailer.Get(server.TrailerKbps))

	// 4. The serving guarantee: the streamed packets are byte-identical
	//    to the offline encoder's.
	offline, _, err := codec.EncodePackets(codec.Config{
		Qp: 16, FPS: 30, Searcher: core.New(core.DefaultParams),
	}, frames)
	if err != nil {
		log.Fatal(err)
	}
	if len(offline) != len(received) {
		log.Fatalf("packet count differs: served %d, offline %d", len(received), len(offline))
	}
	for i := range offline {
		if !bytes.Equal(offline[i], received[i]) {
			log.Fatalf("packet %d differs from the offline encoder", i)
		}
	}
	fmt.Println("served bitstream is byte-identical to the offline encoder ✓")
}
