// Serve walkthrough: the encode-as-a-service flow end to end, in one
// process — boot the vcodecd serving layer on a loopback port, upload a
// synthetic clip over HTTP, decode the packet stream as it arrives (note
// the first packet lands after one frame, not one sequence), verify the
// streamed bits match the offline encoder exactly, put a vcodec-gateway
// in front of two backends and run the same verified session through the
// fleet, then exercise the QoS degradation ladder: a session pinned at a
// degraded level still streams exactly what the offline encoder produces
// at that level.
//
// Run with:
//
//	go run ./examples/serve
//
// The same flow with the installed tools and a real daemon:
//
//	go run ./cmd/vcodecd -addr :8323 &
//	go run ./cmd/seqgen -profile foreman -frames 30 -o f.y4m
//	curl -sN --data-binary @f.y4m 'http://localhost:8323/encode?qp=16&me=acbm' > f.pkt
//	go run ./cmd/vcodec decode -i f.pkt -o f_dec.y4m -packets
//	curl -s http://localhost:8323/metrics | grep vcodecd_frames
//	kill -TERM %1     # graceful drain
//
// And the fleet topology — N encode backends behind one gateway, which
// routes sessions health-aware least-loaded, retries placement while no
// response byte has been committed, circuit-breaks sick backends, and
// drains gateway-first on SIGTERM:
//
//	go run ./cmd/vcodecd -addr :8323 &
//	go run ./cmd/vcodecd -addr :8324 &
//	go run ./cmd/vcodec-gateway -addr :8320 \
//	    -backends http://localhost:8323,http://localhost:8324 &
//	curl -sN --data-binary @f.y4m 'http://localhost:8320/encode?qp=16&me=acbm' > f.pkt
//	curl -s http://localhost:8320/healthz          # per-backend view
//	curl -s http://localhost:8320/metrics | grep gateway_backend_up
//	go run ./cmd/vload -url http://localhost:8320 -sessions 8 -verify
//	go run ./cmd/vload -chaos -json BENCH_cluster.json   # chaos scenarios
//	kill -TERM %3 && kill -TERM %1 %2             # gateway, then backends
//
// Under overload the daemon does not let latency grow without bound: a
// closed-loop controller steps sessions down a degradation ladder
// (higher Qp, cheaper motion search, smaller complexity budget) and
// restores them with hysteresis once load subsides. Batch-priority
// sessions degrade first and queue behind live ones; a pinned session
// is exempt and byte-reproducible:
//
//	curl -sN --data-binary @f.y4m \
//	    'http://localhost:8323/encode?qp=16&me=acbm&priority=batch' > f.pkt
//	curl -sN --data-binary @f.y4m \
//	    'http://localhost:8323/encode?qp=16&me=acbm&qoslevel=2' > f2.pkt
//	curl -s http://localhost:8323/healthz | grep -o '"qos_level":[0-9]*'
//	go run ./cmd/vload -qos -json BENCH_qos.json    # overload ramp
//
// One upload can also fan out to a simulcast ABR ladder — N renditions
// from one ingest, each lower rung's motion search seeded from the rung
// above's scaled motion field, per-rung records interleaved on the wire
// and every rung independently decodable:
//
//	go run ./cmd/seqgen -profile foreman -size 128x128 -frames 30 -o l.y4m
//	curl -sN --data-binary @l.y4m \
//	    'http://localhost:8323/encode?qp=16&me=pbm&ladder=128x128@300,64x64@100,32x32@40' > l.bin
//	go run ./cmd/vcodec ladder-split -i l.bin -o l.acbm   # → l.r0..r2.acbm
//	go run ./cmd/vcodec decode -packets -i l.r1.acbm -o l_mid.y4m
//
// Every session also leaves a flight record: the X-Vcodec-Trace trailer
// names it (mint your own by sending the header), and the debug
// endpoints replay its per-frame phase timeline — through the gateway,
// which proxies the lookup across the fleet, or against a backend
// directly:
//
//	id=$(curl -sN --data-binary @f.y4m -D - \
//	    'http://localhost:8320/encode?qp=16&me=acbm' -o /dev/null \
//	    | grep -i x-vcodec-trace | tr -d '\r' | cut -d' ' -f2)
//	curl -s "http://localhost:8320/debug/vcodec/trace?id=$id"
//	curl -s http://localhost:8323/debug/vcodec/sessions
//	curl -s http://localhost:8323/debug/vcodec/qos
//	curl -s http://localhost:8323/metrics | grep analysis_seconds_bucket
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/video"
)

func main() {
	// 1. The serving layer: a shared analysis pool sized to the machine,
	//    8 concurrent sessions, listening on a random loopback port.
	srv := server.New(server.Config{MaxSessions: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("vcodecd serving on %s\n\n", base)

	// 2. A client: 30 QCIF frames of the Foreman stand-in, serialised as
	//    the Y4M upload body.
	frames := video.Generate(video.Foreman, frame.QCIF, 30, 1)
	var upload bytes.Buffer
	if err := frame.WriteY4M(&upload, frames, 30, 1); err != nil {
		log.Fatal(err)
	}

	// 3. POST the clip and decode the response as it streams: packet 0 is
	//    the sequence header, packet i+1 carries frame i.
	start := time.Now()
	resp, err := http.Post(base+"/encode?qp=16&me=acbm", "video/x-yuv4mpeg", &upload)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("server: %s: %s", resp.Status, msg)
	}
	pr := codec.NewPacketReader(resp.Body)
	var (
		dec      *codec.PacketDecoder
		received [][]byte
		sumPSNR  float64
		decoded  int
	)
	for {
		idx, pkt, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		received = append(received, pkt)
		switch {
		case idx == 0:
			if dec, err = codec.NewPacketDecoder(pkt); err != nil {
				log.Fatal(err)
			}
		default:
			f, err := dec.DecodePacket(pkt)
			if err != nil {
				log.Fatal(err)
			}
			if decoded == 0 {
				fmt.Printf("first frame decoded %.0f ms after the request — a live stream,\n"+
					"not a batch job (the upload is still in flight)\n\n", time.Since(start).Seconds()*1e3)
			}
			p, _ := frame.PSNR(frames[decoded].Y, f.Y)
			sumPSNR += p
			decoded++
		}
	}
	fmt.Printf("streamed %d packets, decoded %d frames, PSNR-Y %.2f dB\n",
		len(received), decoded, sumPSNR/float64(decoded))
	fmt.Printf("session trailers: frames=%s psnr=%s kbps=%s\n\n",
		resp.Trailer.Get(server.TrailerFrames),
		resp.Trailer.Get(server.TrailerPSNRY),
		resp.Trailer.Get(server.TrailerKbps))

	// 4. The serving guarantee: the streamed packets are byte-identical
	//    to the offline encoder's.
	offline, _, err := codec.EncodePackets(codec.Config{
		Qp: 16, FPS: 30, Searcher: core.New(core.DefaultParams),
	}, frames)
	if err != nil {
		log.Fatal(err)
	}
	if len(offline) != len(received) {
		log.Fatalf("packet count differs: served %d, offline %d", len(received), len(offline))
	}
	for i := range offline {
		if !bytes.Equal(offline[i], received[i]) {
			log.Fatalf("packet %d differs from the offline encoder", i)
		}
	}
	fmt.Println("served bitstream is byte-identical to the offline encoder ✓")

	// 5. The fleet topology: a second backend and a vcodec-gateway in
	//    front of both. The gateway polls each backend's /healthz and
	//    /metrics, routes sessions least-loaded, and retries placement as
	//    long as zero response bytes have been committed to the client —
	//    so the same byte-identity claim holds through the fleet. The
	//    X-Vcodec-Backend / X-Vcodec-Attempts trailers say where the
	//    session ran and how many dispatch attempts it took.
	srv2 := server.New(server.Config{MaxSessions: 8})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln2, srv2.Handler())
	gw, err := gateway.New(gateway.Config{
		Backends:     []string{base, "http://" + ln2.Addr().String()},
		PollInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	lnGw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(lnGw, gw.Handler())
	gwBase := "http://" + lnGw.Addr().String()
	fmt.Printf("\nvcodec-gateway on %s fronting 2 backends\n", gwBase)

	// Wait for the gateway's first health polls: /healthz answers 200
	// once at least one backend is eligible.
	for {
		hr, err := http.Get(gwBase + "/healthz")
		if err == nil {
			hr.Body.Close()
			if hr.StatusCode == http.StatusOK {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := frame.WriteY4M(&upload, frames, 30, 1); err != nil {
		log.Fatal(err)
	}
	resp2, err := http.Post(gwBase+"/encode?qp=16&me=acbm", "video/x-yuv4mpeg", &upload)
	if err != nil {
		log.Fatal(err)
	}
	defer resp2.Body.Close()
	routed, err := io.ReadAll(resp2.Body)
	if err != nil {
		log.Fatal(err)
	}
	if e := resp2.Trailer.Get(gateway.TrailerError); e != "" {
		log.Fatalf("gateway session failed mid-stream: %s", e)
	}
	var flat bytes.Buffer
	pw := codec.NewPacketWriter(&flat)
	for i, pkt := range offline {
		if err := pw.WritePacket(i, pkt); err != nil {
			log.Fatal(err)
		}
	}
	if !bytes.Equal(routed, flat.Bytes()) {
		log.Fatal("gateway-routed stream differs from the offline encoder")
	}
	fmt.Printf("fleet-routed session verified ✓ (backend=%s attempts=%s)\n",
		resp2.Trailer.Get(gateway.TrailerBackend),
		resp2.Trailer.Get(gateway.TrailerAttempts))

	// 6. The QoS ladder: ?qoslevel=2 pins this session two rungs down
	//    (higher Qp, the cheap PBM searcher, a shrunken complexity
	//    budget). The pin exempts it from the closed-loop controller, so
	//    its bytes are exactly the offline encoder's at that level — the
	//    same determinism claim as step 4, one degradation rung lower.
	//    Adaptive sessions get the same treatment dynamically: under
	//    overload the controller steps them down (batch priority first),
	//    the X-Vcodec-Qos-Level trailer reports where each stream ended,
	//    and quality is restored once load subsides.
	if err := frame.WriteY4M(&upload, frames, 30, 1); err != nil {
		log.Fatal(err)
	}
	resp3, err := http.Post(base+"/encode?qp=16&me=acbm&qoslevel=2", "video/x-yuv4mpeg", &upload)
	if err != nil {
		log.Fatal(err)
	}
	defer resp3.Body.Close()
	pinned, err := io.ReadAll(resp3.Body)
	if err != nil {
		log.Fatal(err)
	}
	degraded, _, err := codec.EncodePackets(server.ApplyQosLevel(codec.Config{
		Qp: 16, FPS: 30, Searcher: core.New(core.DefaultParams),
	}, 2), frames)
	if err != nil {
		log.Fatal(err)
	}
	flat.Reset()
	pw = codec.NewPacketWriter(&flat)
	for i, pkt := range degraded {
		if err := pw.WritePacket(i, pkt); err != nil {
			log.Fatal(err)
		}
	}
	if !bytes.Equal(pinned, flat.Bytes()) {
		log.Fatal("pinned degraded stream differs from the offline encoder")
	}
	fmt.Printf("\nsession pinned at QoS level %s verified against ApplyQosLevel ✓\n"+
		"(%d bytes at level 2 vs %d at level 0 — quality traded for cycles)\n",
		resp3.Trailer.Get(server.TrailerQosLevel), flat.Len(), len(routed))

	// 7. The flight recorder: the fleet session's X-Vcodec-Trace trailer
	//    keys a per-frame phase timeline on whichever backend served it;
	//    the gateway proxies the lookup so the client needs no routing
	//    knowledge. This is the handle a tail-latency investigation
	//    starts from — vload prints it for each point's slowest session.
	traceID := resp2.Trailer.Get(gateway.TrailerTrace)
	tr, err := http.Get(gwBase + "/debug/vcodec/trace?id=" + traceID)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Body.Close()
	var rec obs.Record
	if err := json.NewDecoder(tr.Body).Decode(&rec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflight record %s (%d frames, served by %s):\n",
		rec.TraceID, rec.Frames, tr.Header.Get(gateway.TrailerBackend))
	for _, ev := range rec.Events[:3] {
		fmt.Printf("  frame %d: read %.2f  wait %.2f  analysis %.2f  entropy %.2f  emit %.2f ms  %d bits\n",
			ev.Index, ev.ReadMs, ev.QueueWaitMs, ev.AnalysisMs, ev.EntropyMs, ev.EmitMs, ev.Bits)
	}
	fmt.Printf("  ... %d more frames in the ring\n", len(rec.Events)-3)

	// 8. The simulcast ladder: one upload, three renditions. The server
	//    ingests the clip once, downscales 2:1 per rung through the
	//    pooled frame substrate, and seeds each lower rung's motion
	//    search from the rung above's scaled motion field — far cheaper
	//    than three independent encodes, while every rung stays
	//    independently decodable and byte-identical to the offline
	//    codec.EncodeLadder. Records interleave on the wire (uvarint
	//    rung, index, length, payload); the X-Vcodec-Rungs trailer
	//    summarises frames/PSNR/kbps per rung.
	lframes := video.Generate(video.Foreman, frame.Size{W: 128, H: 128}, 12, 1)
	if err := frame.WriteY4M(&upload, lframes, 30, 1); err != nil {
		log.Fatal(err)
	}
	resp5, err := http.Post(base+"/encode?qp=16&me=pbm&ladder=128x128,64x64,32x32",
		"video/x-yuv4mpeg", &upload)
	if err != nil {
		log.Fatal(err)
	}
	defer resp5.Body.Close()
	lpr := codec.NewLadderPacketReader(resp5.Body)
	served := make([][][]byte, 3)
	for {
		rung, idx, pkt, err := lpr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if idx != len(served[rung]) {
			log.Fatalf("rung %d packet %d arrived out of order", rung, idx)
		}
		served[rung] = append(served[rung], pkt)
	}
	rungs := make([]codec.Rung, 3)
	for i, sz := range []frame.Size{{W: 128, H: 128}, {W: 64, H: 64}, {W: 32, H: 32}} {
		rungs[i] = codec.Rung{Size: sz, Cfg: codec.Config{Qp: 16, FPS: 30, Searcher: &search.PBM{}}}
	}
	offlineRungs, _, err := codec.EncodeLadder(rungs, lframes)
	if err != nil {
		log.Fatal(err)
	}
	for r := range offlineRungs {
		if len(served[r]) != len(offlineRungs[r]) {
			log.Fatalf("rung %d: served %d packets, offline %d", r, len(served[r]), len(offlineRungs[r]))
		}
		for i := range offlineRungs[r] {
			if !bytes.Equal(served[r][i], offlineRungs[r][i]) {
				log.Fatalf("rung %d packet %d differs from the offline ladder", r, i)
			}
		}
		dec, err := codec.NewPacketDecoder(served[r][0])
		if err != nil {
			log.Fatal(err)
		}
		for _, pkt := range served[r][1:] {
			if _, err := dec.DecodePacket(pkt); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nsimulcast ladder: 3 rungs from one upload, every rung decodable and\n"+
		"byte-identical to the offline EncodeLadder ✓\nper-rung trailer: %s\n",
		resp5.Trailer.Get(server.TrailerRungs))
}
