// Tuning: the α/β/γ knobs. The paper advertises ACBM as a flexible
// quality/complexity dial; this example sweeps the parameters on one
// sequence and prints the resulting operating points, from "always
// predictive" to "always full search".
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

func main() {
	frames := video.Generate(video.TableTennis, frame.QCIF, 30, 11)

	type point struct {
		label  string
		params core.Params
	}
	points := []point{
		{"always-PBM (α→∞)", core.Params{Alpha: 1 << 30, Beta: 0, GammaNum: 0, GammaDen: 1}},
		{"loose (α=4000 β=16 γ=1/2)", core.Params{Alpha: 4000, Beta: 16, GammaNum: 1, GammaDen: 2}},
		{"paper (α=1000 β=8 γ=1/4)", core.DefaultParams},
		{"tight (α=250 β=2 γ=1/8)", core.Params{Alpha: 250, Beta: 2, GammaNum: 1, GammaDen: 8}},
		{"always-FSBM (all zero)", core.Params{Alpha: 0, Beta: 0, GammaNum: 0, GammaDen: 1}},
	}

	fmt.Println("Table stand-in, QCIF@30fps, Qp=16 — ACBM parameter sweep")
	fmt.Printf("%-28s %12s %12s %14s %10s\n", "setting", "PSNR-Y (dB)", "kbit/s", "positions/MB", "critical")
	for _, pt := range points {
		acbm := core.New(pt.params)
		stats, _, err := codec.EncodeSequence(codec.Config{
			Qp: 16, Searcher: acbm, FPS: 30,
		}, frames)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.2f %12.1f %14.0f %9.0f%%\n",
			pt.label, stats.AvgPSNRY(), stats.BitrateKbps(),
			stats.AvgSearchPointsPerMB(), 100*acbm.Stats().FSBMRate())
	}
	fmt.Println("\nTightening the thresholds trades search positions for quality;")
	fmt.Println("the paper's values sit at the knee of that curve.")
}
