// Videoconference: the paper's motivating low-bitrate scenario. A smooth
// head-and-shoulders sequence (the Miss America stand-in) is encoded with
// PBM, ACBM and FSBM at a conferencing quantiser, showing that ACBM keeps
// PBM's tiny complexity on easy content while matching full-search
// quality.
//
// Run with:
//
//	go run ./examples/videoconference
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

func main() {
	frames := video.Generate(video.MissAmerica, frame.QCIF, 45, 7)

	type row struct {
		name     string
		searcher search.Searcher
	}
	rows := []row{
		{"PBM", &search.PBM{}},
		{"ACBM", core.New(core.DefaultParams)},
		{"FSBM", &search.FSBM{}},
	}

	fmt.Println("Miss America stand-in, QCIF@30fps, Qp=20 (videoconferencing point)")
	fmt.Printf("%-6s %12s %12s %14s\n", "algo", "PSNR-Y (dB)", "kbit/s", "positions/MB")
	for _, r := range rows {
		stats, _, err := codec.EncodeSequence(codec.Config{
			Qp: 20, Searcher: r.searcher, FPS: 30,
		}, frames)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %12.2f %12.1f %14.0f\n",
			r.name, stats.AvgPSNRY(), stats.BitrateKbps(), stats.AvgSearchPointsPerMB())
	}
	fmt.Println("\nACBM should sit at PBM-level complexity here: a talking head is")
	fmt.Println("exactly the content where full search is wasted effort.")
}
