package repro

// Cross-module integration tests: these exercise the full pipeline
// (sequence generation → motion search → codec → decoder → metrics) and
// assert the paper-level behaviours that no single package can verify
// alone.

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/ratedist"
	"repro/internal/search"
	"repro/internal/video"
)

func encodeWith(t *testing.T, s search.Searcher, frames []*frame.Frame, qp int, fps float64) *codec.SequenceStats {
	t.Helper()
	stats, bs, err := codec.EncodeSequence(codec.Config{Qp: qp, Searcher: s, FPS: fps}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decode(bs); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return stats
}

func TestACBMComplexityBetweenPBMAndFSBM(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.QCIF, 12, 1)
	pbm := encodeWith(t, &search.PBM{}, frames, 16, 30)
	acbm := encodeWith(t, core.New(core.DefaultParams), frames, 16, 30)
	fsbm := encodeWith(t, &search.FSBM{}, frames, 16, 30)
	p, a, f := pbm.AvgSearchPointsPerMB(), acbm.AvgSearchPointsPerMB(), fsbm.AvgSearchPointsPerMB()
	if !(p <= a && a <= f) {
		t.Fatalf("complexity ordering violated: PBM %.0f, ACBM %.0f, FSBM %.0f", p, a, f)
	}
	if a > f/2 {
		t.Fatalf("ACBM %.0f points/MB, expected well below FSBM's %.0f on Carphone", a, f)
	}
}

func TestACBMQualityTracksFSBMOnHardContent(t *testing.T) {
	// Foreman at 10 fps, low Qp: the regime where PBM degrades. ACBM must
	// stay close to FSBM in both PSNR and rate.
	base := video.Generate(video.Foreman, frame.QCIF, 36, 1)
	frames := video.Decimate(base, 3)
	acbm := encodeWith(t, core.New(core.DefaultParams), frames, 14, 10)
	fsbm := encodeWith(t, &search.FSBM{}, frames, 14, 10)
	if acbm.AvgPSNRY() < fsbm.AvgPSNRY()-0.15 {
		t.Fatalf("ACBM PSNR %.2f more than 0.15 dB below FSBM %.2f", acbm.AvgPSNRY(), fsbm.AvgPSNRY())
	}
	if acbm.BitrateKbps() > fsbm.BitrateKbps()*1.05 {
		t.Fatalf("ACBM rate %.1f more than 5%% above FSBM %.1f", acbm.BitrateKbps(), fsbm.BitrateKbps())
	}
}

func TestPBMPaysRateOnAbruptMotion(t *testing.T) {
	// The paper's Fig. 6 gap: on Foreman at 10 fps PBM must be strictly
	// worse than ACBM in rate-distortion terms.
	base := video.Generate(video.Foreman, frame.QCIF, 36, 1)
	frames := video.Decimate(base, 3)
	var acbmCurve, pbmCurve ratedist.Curve
	acbmCurve.Name, pbmCurve.Name = "ACBM", "PBM"
	for _, qp := range []int{26, 20, 14} {
		a := encodeWith(t, core.New(core.DefaultParams), frames, qp, 10)
		p := encodeWith(t, &search.PBM{}, frames, qp, 10)
		acbmCurve.Points = append(acbmCurve.Points, ratedist.Point{RateKbps: a.BitrateKbps(), PSNR: a.AvgPSNRY(), Qp: qp})
		pbmCurve.Points = append(pbmCurve.Points, ratedist.Point{RateKbps: p.BitrateKbps(), PSNR: p.AvgPSNRY(), Qp: qp})
	}
	savings, err := ratedist.AvgRateSavings(&acbmCurve, &pbmCurve)
	if err != nil {
		t.Fatal(err)
	}
	if savings <= 0 {
		t.Fatalf("ACBM rate savings vs PBM = %.2f%%, expected positive on Foreman@10fps", 100*savings)
	}
}

func TestFSBMFieldLessCoherentThanACBM(t *testing.T) {
	// §2.3: FSBM's motion field is incoherent relative to predictive
	// methods. Measure field smoothness directly on a textured sequence.
	frames := video.Generate(video.Foreman, frame.QCIF, 3, 1)
	cols, rows := frame.QCIF.MacroblockCols(), frame.QCIF.MacroblockRows()
	run := func(s search.Searcher) float64 {
		ref := frames[1]
		cur := frames[2]
		ip := frame.Interpolate(ref.Y)
		fld := mvfield.NewField(cols, rows)
		for mby := 0; mby < rows; mby++ {
			for mbx := 0; mbx < cols; mbx++ {
				in := &search.Input{
					Cur: cur.Y, Ref: ref.Y, RefI: ip,
					BX: 16 * mbx, BY: 16 * mby, W: 16, H: 16,
					Range: 15, Qp: 16,
					CurField: fld, MBX: mbx, MBY: mby,
				}
				fld.Set(mbx, mby, s.Search(in).MV)
			}
		}
		return fld.Smoothness()
	}
	fsbmSmooth := run(&search.FSBM{})
	acbmSmooth := run(core.New(core.DefaultParams))
	if acbmSmooth > fsbmSmooth {
		t.Fatalf("ACBM field rougher (%.2f) than FSBM (%.2f)", acbmSmooth, fsbmSmooth)
	}
}

func TestFastSearchBaselinesAreCheaperThanFSBM(t *testing.T) {
	frames := video.Generate(video.TableTennis, frame.QCIF, 6, 1)
	fsbm := encodeWith(t, &search.FSBM{}, frames, 16, 30)
	for _, s := range []search.Searcher{&search.TSS{}, &search.FSS{}, &search.Diamond{}, &search.CrossDiamond{}} {
		st := encodeWith(t, s, frames, 16, 30)
		if st.AvgSearchPointsPerMB() >= fsbm.AvgSearchPointsPerMB()/5 {
			t.Errorf("%s: %.0f points/MB, expected <1/5 of FSBM's %.0f",
				s.Name(), st.AvgSearchPointsPerMB(), fsbm.AvgSearchPointsPerMB())
		}
		if st.AvgPSNRY() < fsbm.AvgPSNRY()-1.5 {
			t.Errorf("%s: PSNR %.2f more than 1.5 dB below FSBM %.2f", s.Name(), st.AvgPSNRY(), fsbm.AvgPSNRY())
		}
	}
}

func TestEndToEndReproPipelineSmoke(t *testing.T) {
	// A miniature version of `acbmbench -experiment all` must run clean.
	if testing.Short() {
		t.Skip("short mode")
	}
	study, err := experiment.RunMVStudy(experiment.MVStudyConfig{
		Size: frame.SQCIF, MVs: video.DefaultGlobalMVs[:3],
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := study.ConclusionsHold(); err != nil {
		t.Fatal(err)
	}
	t1, err := experiment.RunTable1(experiment.Table1Config{
		Size: frame.SQCIF, Frames: 10, Qps: []int{30, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if t1.MaxReduction() < 0.5 {
		t.Fatalf("max reduction %.2f implausibly low", t1.MaxReduction())
	}
	cfg := experiment.RDConfig{Profile: video.Foreman, Size: frame.SQCIF, Frames: 10, Qps: []int{30, 22, 16}}
	curves, err := experiment.RDSweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := experiment.ComputeHeadline(cfg, curves, t1); err != nil {
		t.Fatal(err)
	}
}
