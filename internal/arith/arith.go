// Package arith implements an adaptive binary arithmetic coder (an
// LZMA-style range coder with 11-bit adaptive probabilities). It backs the
// codec's optional arithmetic entropy mode, the counterpart of H.263's
// Annex E syntax-based arithmetic coding: same syntax elements as the
// baseline Exp-Golomb mode, coded with adaptive contexts instead of
// static codes.
//
// Probabilities are stored per context as P(bit=0) in units of 1/2048 and
// adapt with shift-5 exponential decay, the scheme used by LZMA and
// similar coders. Encoder and decoder adapt identically, so streams are
// self-describing given the same context allocation.
package arith

import (
	"errors"
	"fmt"
)

const (
	probBits = 11
	probOne  = 1 << probBits // 2048
	probInit = probOne / 2
	moveBits = 5
	topValue = 1 << 24
)

// Model is one adaptive binary context. The zero value is invalid; use
// NewModels or Reset.
type Model struct {
	p0 uint16 // probability of bit 0 in [1, 2047]
}

// Reset returns the model to the uninformed state.
func (m *Model) Reset() { m.p0 = probInit }

// NewModels allocates n freshly initialised contexts.
func NewModels(n int) []Model {
	ms := make([]Model, n)
	for i := range ms {
		ms[i].Reset()
	}
	return ms
}

func (m *Model) update(bit uint) {
	if bit == 0 {
		m.p0 += (probOne - m.p0) >> moveBits
	} else {
		m.p0 -= m.p0 >> moveBits
	}
}

// Encoder is a range encoder. Create with NewEncoder; call Close before
// reading Bytes.
type Encoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
	closed    bool
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xFFFFFFFF, cacheSize: 1}
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		c := e.cache
		for {
			e.out = append(e.out, c+byte(e.low>>32))
			c = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// EncodeBit codes bit with the adaptive context m.
func (e *Encoder) EncodeBit(m *Model, bit uint) {
	if e.closed {
		panic("arith: EncodeBit after Close")
	}
	bound := (e.rng >> probBits) * uint32(m.p0)
	if bit == 0 {
		e.rng = bound
	} else {
		e.low += uint64(bound)
		e.rng -= bound
	}
	m.update(bit)
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeBypass codes bit with a fixed 1/2 probability and no adaptation
// (for near-uniform bits such as Exp-Golomb suffixes and signs).
func (e *Encoder) EncodeBypass(bit uint) {
	if e.closed {
		panic("arith: EncodeBypass after Close")
	}
	e.rng >>= 1
	if bit != 0 {
		e.low += uint64(e.rng)
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// BitsEmitted returns (an upper bound on) the number of output bits
// produced so far, including buffered renormalisation state. Used for
// per-frame rate accounting.
func (e *Encoder) BitsEmitted() int {
	return 8 * (len(e.out) + int(e.cacheSize))
}

// Close flushes the final range state. The encoder cannot be used after.
func (e *Encoder) Close() {
	if e.closed {
		return
	}
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	e.closed = true
}

// Bytes returns the encoded stream. Close must have been called.
func (e *Encoder) Bytes() []byte {
	if !e.closed {
		panic("arith: Bytes before Close")
	}
	return e.out
}

// ErrTruncated is returned when the decoder runs out of input.
var ErrTruncated = errors.New("arith: truncated stream")

// Decoder mirrors Encoder over a byte slice.
type Decoder struct {
	rng     uint32
	code    uint32
	in      []byte
	pos     int
	overrun int // bytes read past the end of the input
}

// NewDecoder primes a decoder with the first five bytes of the stream
// (range-coder convention: the first byte is always zero).
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("arith: stream too short (%d bytes)", len(data))
	}
	d := &Decoder{rng: 0xFFFFFFFF, in: data, pos: 1}
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.in[d.pos])
		d.pos++
	}
	return d, nil
}

func (d *Decoder) nextByte() uint32 {
	if d.pos >= len(d.in) {
		// The encoder's Close pads with five flush bytes, so a few reads
		// past the end are legal at the very end of a stream; count them
		// so grossly truncated streams still fail via Err.
		d.overrun++
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return uint32(b)
}

// Err reports whether the decoder consumed more bytes than were present,
// beyond the flush padding tolerance.
func (d *Decoder) Err() error {
	if d.overrun > 5 {
		return ErrTruncated
	}
	return nil
}

// DecodeBit decodes one bit with the adaptive context m.
func (d *Decoder) DecodeBit(m *Model) uint {
	bound := (d.rng >> probBits) * uint32(m.p0)
	var bit uint
	if d.code < bound {
		d.rng = bound
		bit = 0
	} else {
		d.code -= bound
		d.rng -= bound
		bit = 1
	}
	m.update(bit)
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | d.nextByte()
	}
	return bit
}

// DecodeBypass decodes one fixed-probability bit.
func (d *Decoder) DecodeBypass() uint {
	d.rng >>= 1
	var bit uint
	if d.code >= d.rng {
		d.code -= d.rng
		bit = 1
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | d.nextByte()
	}
	return bit
}
