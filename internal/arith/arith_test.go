package arith

import (
	"testing"
	"testing/quick"
)

type xorshift struct{ s uint64 }

func (r *xorshift) next() uint64 {
	if r.s == 0 {
		r.s = 1
	}
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

func TestRoundTripUniformBits(t *testing.T) {
	rng := &xorshift{7}
	bits := make([]uint, 4096)
	for i := range bits {
		bits[i] = uint(rng.next() & 1)
	}
	enc := NewEncoder()
	ms := NewModels(1)
	for _, b := range bits {
		enc.EncodeBit(&ms[0], b)
	}
	enc.Close()
	dec, err := NewDecoder(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	md := NewModels(1)
	for i, want := range bits {
		if got := dec.DecodeBit(&md[0]); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
}

func TestRoundTripMixedContextsAndBypass(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := &xorshift{seed}
		count := int(n)%2000 + 10
		type ev struct {
			ctx int // -1 = bypass
			bit uint
		}
		evs := make([]ev, count)
		for i := range evs {
			v := rng.next()
			ctx := int(v % 8)
			if v%16 >= 8 {
				ctx = -1
			}
			// Skew bits per context so adaptation matters.
			var bit uint
			if ctx >= 0 {
				if v>>16%uint64(ctx+2) == 0 {
					bit = 1
				}
			} else {
				bit = uint(v >> 17 & 1)
			}
			evs[i] = ev{ctx, bit}
		}
		enc := NewEncoder()
		ms := NewModels(8)
		for _, e := range evs {
			if e.ctx < 0 {
				enc.EncodeBypass(e.bit)
			} else {
				enc.EncodeBit(&ms[e.ctx], e.bit)
			}
		}
		enc.Close()
		dec, err := NewDecoder(enc.Bytes())
		if err != nil {
			return false
		}
		md := NewModels(8)
		for _, e := range evs {
			var got uint
			if e.ctx < 0 {
				got = dec.DecodeBypass()
			} else {
				got = dec.DecodeBit(&md[e.ctx])
			}
			if got != e.bit {
				return false
			}
		}
		return dec.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveCompressionOnSkewedData(t *testing.T) {
	// 95% zero bits: an adaptive coder must compress well below 1
	// bit/symbol; bypass coding cannot.
	rng := &xorshift{42}
	const n = 20000
	enc := NewEncoder()
	ms := NewModels(1)
	for i := 0; i < n; i++ {
		var bit uint
		if rng.next()%100 < 5 {
			bit = 1
		}
		enc.EncodeBit(&ms[0], bit)
	}
	enc.Close()
	bits := 8 * len(enc.Bytes())
	if bits > n/2 {
		t.Fatalf("skewed data compressed to %d bits for %d symbols (> 0.5 b/sym)", bits, n)
	}
}

func TestBypassCostsOneBitPerSymbol(t *testing.T) {
	rng := &xorshift{13}
	const n = 8000
	enc := NewEncoder()
	for i := 0; i < n; i++ {
		enc.EncodeBypass(uint(rng.next() & 1))
	}
	enc.Close()
	bits := 8 * len(enc.Bytes())
	if bits < n-64 || bits > n+64 {
		t.Fatalf("bypass coded %d bits for %d symbols", bits, n)
	}
}

func TestBitsEmittedMonotone(t *testing.T) {
	enc := NewEncoder()
	ms := NewModels(1)
	prev := enc.BitsEmitted()
	for i := 0; i < 1000; i++ {
		enc.EncodeBit(&ms[0], uint(i&1))
		if got := enc.BitsEmitted(); got < prev {
			t.Fatalf("BitsEmitted decreased: %d -> %d", prev, got)
		} else {
			prev = got
		}
	}
}

func TestEncoderMisuse(t *testing.T) {
	enc := NewEncoder()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Bytes before Close did not panic")
			}
		}()
		enc.Bytes()
	}()
	enc.Close()
	enc.Close() // idempotent
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EncodeBit after Close did not panic")
			}
		}()
		ms := NewModels(1)
		enc.EncodeBit(&ms[0], 1)
	}()
}

func TestDecoderRejectsShortStream(t *testing.T) {
	if _, err := NewDecoder([]byte{1, 2, 3}); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestDecoderTruncationDetected(t *testing.T) {
	// Encode enough data that truncating the stream forces reads past the
	// flush padding.
	enc := NewEncoder()
	ms := NewModels(1)
	rng := &xorshift{3}
	for i := 0; i < 4000; i++ {
		enc.EncodeBit(&ms[0], uint(rng.next()&1))
	}
	enc.Close()
	data := enc.Bytes()
	dec, err := NewDecoder(data[:len(data)/4])
	if err != nil {
		t.Fatal(err)
	}
	md := NewModels(1)
	for i := 0; i < 4000; i++ {
		dec.DecodeBit(&md[0])
	}
	if dec.Err() == nil {
		t.Fatal("deep truncation not detected")
	}
}

func TestModelReset(t *testing.T) {
	ms := NewModels(2)
	ms[0].update(1)
	ms[0].update(1)
	if ms[0].p0 == ms[1].p0 {
		t.Fatal("update had no effect")
	}
	ms[0].Reset()
	if ms[0].p0 != ms[1].p0 {
		t.Fatal("Reset did not restore the initial state")
	}
}
