// Package bitstream provides MSB-first bit-level I/O used by the entropy
// layer (internal/entropy) and the hybrid codec (internal/codec). Writers
// accumulate into an internal buffer; readers consume a byte slice.
//
// Both sides run word-at-a-time: the Writer gathers bits into a 64-bit
// accumulator and flushes eight bytes at once, and the Reader extracts
// whole fields with one or two word loads, so WriteBits/ReadBits cost is
// independent of the field width instead of linear in it. The original
// per-bit implementations are kept in reference.go and pinned against
// this engine by differential and fuzz tests.
package bitstream

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrOutOfBits is returned when a reader runs past the end of its input.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Writer accumulates bits MSB-first. The zero value is ready to use.
//
// Pending bits live right-aligned in a 64-bit accumulator; WriteBits
// appends a whole field with one shift-or and the accumulator is flushed
// to the byte buffer eight bytes at a time when it fills.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, right-aligned (bit nAcc-1 is the oldest)
	nAcc uint   // bits currently held in acc (0..63)
	n    int    // total bits written
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.acc = w.acc<<1 | uint64(b&1)
	w.nAcc++
	w.n++
	if w.nAcc == 64 {
		w.flushAcc()
	}
}

// WriteBits appends the n least-significant bits of v, most significant
// first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d", n))
	}
	v &= uint64(1)<<n - 1 // n==64: shift yields 0, mask is all ones
	free := 64 - w.nAcc
	if n < free {
		w.acc = w.acc<<n | v
		w.nAcc += n
	} else {
		spill := n - free
		w.acc = w.acc<<(free&63) | v>>spill // acc now holds exactly 64 bits
		w.nAcc = 64
		w.flushAcc()
		w.acc = v & (uint64(1)<<spill - 1)
		w.nAcc = spill
	}
	w.n += int(n)
}

// flushAcc drains a full 64-bit accumulator into the byte buffer.
func (w *Writer) flushAcc() {
	w.buf = binary.BigEndian.AppendUint64(w.buf, w.acc)
	w.acc, w.nAcc = 0, 0
}

// Len returns the total number of bits written so far.
func (w *Writer) Len() int { return w.n }

// Bytes returns the written bits padded with zero bits to a byte boundary.
// The writer remains usable; Bytes may be called repeatedly.
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.buf), len(w.buf)+8)
	copy(out, w.buf)
	if w.nAcc > 0 {
		var tail [8]byte
		binary.BigEndian.PutUint64(tail[:], w.acc<<(64-w.nAcc))
		out = append(out, tail[:(w.nAcc+7)/8]...)
	}
	return out
}

// Reset discards all written bits.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc, w.nAcc, w.n = 0, 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	data []byte
	pos  int // bit position
}

// NewReader returns a reader over data. The slice is not copied.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= 8*len(r.data) {
		return 0, ErrOutOfBits
	}
	b := r.data[r.pos>>3] >> (7 - uint(r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits returns the next n bits as an unsigned integer, MSB first.
// n must be in [0, 64]. On ErrOutOfBits the position is left unchanged.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d", n))
	}
	if r.pos+int(n) > 8*len(r.data) {
		return 0, ErrOutOfBits
	}
	i := r.pos >> 3
	off := uint(r.pos & 7)
	if i+8 <= len(r.data) {
		// One aligned-enough word load covers the field; a field that
		// straddles the ninth byte takes its low bits from data[i+8]
		// (which the length check above guarantees exists).
		word := binary.BigEndian.Uint64(r.data[i:])
		v := word << off >> (64 - n) // n==0: shift by 64 yields 0
		if spill := off + n; spill > 64 {
			v |= uint64(r.data[i+8] >> (72 - spill))
		}
		r.pos += int(n)
		return v, nil
	}
	// Tail path (fewer than 8 bytes remain): assemble byte by byte.
	var v uint64
	pos := r.pos
	if off != 0 && n > 0 {
		take := 8 - off
		if take > n {
			take = n
		}
		v = uint64(r.data[pos>>3]>>(8-off-take)) & (uint64(1)<<take - 1)
		n -= take
		pos += int(take)
	}
	for n >= 8 {
		v = v<<8 | uint64(r.data[pos>>3])
		n -= 8
		pos += 8
	}
	if n > 0 {
		v = v<<n | uint64(r.data[pos>>3]>>(8-n))
		pos += int(n)
	}
	r.pos = pos
	return v, nil
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits (including padding bits).
func (r *Reader) Remaining() int { return 8*len(r.data) - r.pos }
