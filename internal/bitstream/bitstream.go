// Package bitstream provides MSB-first bit-level I/O used by the entropy
// layer (internal/entropy) and the hybrid codec (internal/codec). Writers
// accumulate into an internal buffer; readers consume a byte slice.
package bitstream

import (
	"errors"
	"fmt"
)

// ErrOutOfBits is returned when a reader runs past the end of its input.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Writer accumulates bits MSB-first. The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint8
	nCur uint // bits currently held in cur (0..7)
	n    int  // total bits written
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint8(b&1)
	w.nCur++
	w.n++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the n least-significant bits of v, most significant
// first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i) & 1))
	}
}

// Len returns the total number of bits written so far.
func (w *Writer) Len() int { return w.n }

// Bytes returns the written bits padded with zero bits to a byte boundary.
// The writer remains usable; Bytes may be called repeatedly.
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	if w.nCur > 0 {
		out = append(out, w.cur<<(8-w.nCur))
	}
	return out
}

// Reset discards all written bits.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur, w.n = 0, 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	data []byte
	pos  int // bit position
}

// NewReader returns a reader over data. The slice is not copied.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= 8*len(r.data) {
		return 0, ErrOutOfBits
	}
	b := r.data[r.pos>>3] >> (7 - uint(r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits returns the next n bits as an unsigned integer, MSB first.
// n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d", n))
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits (including padding bits).
func (r *Reader) Remaining() int { return 8*len(r.data) - r.pos }
