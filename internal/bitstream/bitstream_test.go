package bitstream

import (
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	var w Writer
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestBytesPadding(t *testing.T) {
	var w Writer
	w.WriteBit(1)
	out := w.Bytes()
	if len(out) != 1 || out[0] != 0x80 {
		t.Fatalf("Bytes = %v, want [0x80]", out)
	}
	// Writer must stay usable after Bytes.
	w.WriteBits(0x7F, 7)
	out = w.Bytes()
	if len(out) != 1 || out[0] != 0xFF {
		t.Fatalf("Bytes = %v, want [0xFF]", out)
	}
}

func TestWriteBitsMSBFirst(t *testing.T) {
	var w Writer
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b0010, 4)
	out := w.Bytes()
	if len(out) != 1 || out[0] != 0b10110010 {
		t.Fatalf("Bytes = %08b", out[0])
	}
}

func TestReadBitsValue(t *testing.T) {
	r := NewReader([]byte{0xA5, 0xF0})
	v, err := r.ReadBits(12)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xA5F {
		t.Fatalf("ReadBits(12) = %#x, want 0xa5f", v)
	}
	if r.Remaining() != 4 {
		t.Fatalf("Remaining = %d, want 4", r.Remaining())
	}
}

func TestReaderExhaustion(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
	if _, err := r.ReadBits(3); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xDEAD, 16)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("Reset did not clear writer")
	}
	w.WriteBits(0b101, 3)
	if w.Bytes()[0] != 0b10100000 {
		t.Fatal("writer unusable after Reset")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []uint32, widthsRaw []uint8) bool {
		if len(vals) > len(widthsRaw) {
			vals = vals[:len(widthsRaw)]
		} else {
			widthsRaw = widthsRaw[:len(vals)]
		}
		var w Writer
		widths := make([]uint, len(vals))
		for i := range vals {
			widths[i] = uint(widthsRaw[i])%32 + 1
			w.WriteBits(uint64(vals[i]), widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				return false
			}
			mask := uint64(1)<<widths[i] - 1
			if got != uint64(vals[i])&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBitsPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBits(_, 65) did not panic")
		}
	}()
	var w Writer
	w.WriteBits(0, 65)
}
