package bitstream

// Reference per-bit engine: the original bit-at-a-time Writer/Reader this
// package shipped before the word-based rewrite. It is kept as the oracle
// for the differential and fuzz tests in reference_test.go, exactly like
// the scalar SAD kernels kept next to the SWAR ones in internal/metrics.
// It must not be used on hot paths.

// RefWriter is the per-bit reference implementation of Writer.
type RefWriter struct {
	buf  []byte
	cur  uint8
	nCur uint // bits currently held in cur (0..7)
	n    int  // total bits written
}

// WriteBit appends a single bit (0 or 1).
func (w *RefWriter) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint8(b&1)
	w.nCur++
	w.n++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the n least-significant bits of v, most significant
// first, one bit at a time. n must be in [0, 64].
func (w *RefWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i) & 1))
	}
}

// Len returns the total number of bits written so far.
func (w *RefWriter) Len() int { return w.n }

// Bytes returns the written bits padded with zero bits to a byte boundary.
func (w *RefWriter) Bytes() []byte {
	out := make([]byte, len(w.buf), len(w.buf)+1)
	copy(out, w.buf)
	if w.nCur > 0 {
		out = append(out, w.cur<<(8-w.nCur))
	}
	return out
}

// RefReader is the per-bit reference implementation of Reader.
type RefReader struct {
	data []byte
	pos  int
}

// NewRefReader returns a per-bit reference reader over data.
func NewRefReader(data []byte) *RefReader { return &RefReader{data: data} }

// ReadBit returns the next bit.
func (r *RefReader) ReadBit() (uint, error) {
	if r.pos >= 8*len(r.data) {
		return 0, ErrOutOfBits
	}
	b := r.data[r.pos>>3] >> (7 - uint(r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits returns the next n bits, assembled one bit at a time.
func (r *RefReader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Pos returns the current bit position.
func (r *RefReader) Pos() int { return r.pos }
