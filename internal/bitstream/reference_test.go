package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
)

// opStream derives a deterministic sequence of (value, width) write
// operations from a byte string, covering widths 0..64.
func opStream(seed []byte, maxOps int) (vals []uint64, widths []uint) {
	rng := rand.New(rand.NewSource(int64(len(seed))))
	for i := 0; i < maxOps && i < len(seed); i++ {
		w := uint(seed[i]) % 65
		v := rng.Uint64()
		if i%3 == 0 { // mix in small values, the entropy layer's common case
			v &= 0xFF
		}
		vals = append(vals, v)
		widths = append(widths, w)
	}
	return vals, widths
}

// TestWriterMatchesReference drives the word-based Writer and the per-bit
// RefWriter through identical operation sequences — every width 0..64,
// boundary-straddling accumulator states, interleaved WriteBit calls —
// and demands identical Len and Bytes at every step.
func TestWriterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var w Writer
		var ref RefWriter
		ops := rng.Intn(60) + 1
		for op := 0; op < ops; op++ {
			if rng.Intn(4) == 0 {
				b := uint(rng.Intn(2))
				w.WriteBit(b)
				ref.WriteBit(b)
			} else {
				n := uint(rng.Intn(65))
				v := rng.Uint64()
				w.WriteBits(v, n)
				ref.WriteBits(v, n)
			}
			if w.Len() != ref.Len() {
				t.Fatalf("trial %d op %d: Len %d != ref %d", trial, op, w.Len(), ref.Len())
			}
			if !bytes.Equal(w.Bytes(), ref.Bytes()) {
				t.Fatalf("trial %d op %d: Bytes diverge\n got  %x\n want %x",
					trial, op, w.Bytes(), ref.Bytes())
			}
		}
	}
}

// TestWriterAccumulatorBoundaries pins the exact accumulator-full cases:
// writes that land on, just before and just after the 64-bit boundary.
func TestWriterAccumulatorBoundaries(t *testing.T) {
	for _, pre := range []uint{0, 1, 7, 8, 62, 63} {
		for _, n := range []uint{0, 1, 2, 63, 64} {
			var w Writer
			var ref RefWriter
			w.WriteBits(^uint64(0), pre)
			ref.WriteBits(^uint64(0), pre)
			w.WriteBits(0xA5A5A5A5DEADBEEF, n)
			ref.WriteBits(0xA5A5A5A5DEADBEEF, n)
			w.WriteBits(1, 3)
			ref.WriteBits(1, 3)
			if !bytes.Equal(w.Bytes(), ref.Bytes()) {
				t.Errorf("pre=%d n=%d: %x != ref %x", pre, n, w.Bytes(), ref.Bytes())
			}
		}
	}
}

// TestReaderMatchesReference reads identical field sequences through the
// word-based Reader and the per-bit RefReader over shared random data,
// including the out-of-bits boundary.
func TestReaderMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, rng.Intn(40))
		rng.Read(data)
		r := NewReader(data)
		ref := NewRefReader(data)
		for op := 0; op < 30; op++ {
			n := uint(rng.Intn(65))
			got, errGot := r.ReadBits(n)
			want, errWant := ref.ReadBits(n)
			if (errGot == nil) != (errWant == nil) {
				t.Fatalf("trial %d op %d n=%d: err %v vs ref %v", trial, op, n, errGot, errWant)
			}
			if errGot != nil {
				break // positions may differ after a failed read; stop here
			}
			if got != want {
				t.Fatalf("trial %d op %d n=%d: %#x != ref %#x", trial, op, n, got, want)
			}
			if r.Pos() != ref.Pos() {
				t.Fatalf("trial %d op %d: Pos %d != ref %d", trial, op, r.Pos(), ref.Pos())
			}
		}
	}
}

// FuzzWriterReaderRoundTrip fuzzes arbitrary write sequences through both
// engines and then reads everything back through both readers: the four
// corners (word writer × word reader, word × ref, ref × word, ref × ref)
// must all agree.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add([]byte{64, 1, 0, 33, 8, 17})
	f.Add([]byte{63, 63, 63, 2})
	f.Add([]byte("bitstream"))
	f.Fuzz(func(t *testing.T, seed []byte) {
		vals, widths := opStream(seed, 64)
		var w Writer
		var ref RefWriter
		for i := range vals {
			w.WriteBits(vals[i], widths[i])
			ref.WriteBits(vals[i], widths[i])
		}
		if !bytes.Equal(w.Bytes(), ref.Bytes()) {
			t.Fatalf("writer bytes diverge: %x vs %x", w.Bytes(), ref.Bytes())
		}
		r := NewReader(w.Bytes())
		rr := NewRefReader(ref.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			want, err := rr.ReadBits(widths[i])
			if err != nil {
				t.Fatalf("op %d (ref): %v", i, err)
			}
			if got != want {
				t.Fatalf("op %d width %d: %#x != ref %#x", i, widths[i], got, want)
			}
			mask := uint64(1)<<widths[i] - 1
			if widths[i] == 64 {
				mask = ^uint64(0)
			}
			if got != vals[i]&mask {
				t.Fatalf("op %d width %d: read %#x, wrote %#x", i, widths[i], got, vals[i]&mask)
			}
		}
	})
}

func BenchmarkWriteBits(b *testing.B) {
	// The entropy layer's realistic mix: many short fields, a few long.
	widths := [8]uint{3, 5, 1, 9, 7, 2, 13, 32}
	b.SetBytes(9) // 72 bits per inner loop
	b.ReportAllocs()
	var w Writer
	for i := 0; i < b.N; i++ {
		w.Reset()
		for j, n := range widths {
			w.WriteBits(uint64(j)*0x9E3779B97F4A7C15, n)
		}
	}
}

func BenchmarkWriteBitsRef(b *testing.B) {
	widths := [8]uint{3, 5, 1, 9, 7, 2, 13, 32}
	b.SetBytes(9)
	for i := 0; i < b.N; i++ {
		var w RefWriter
		for j, n := range widths {
			w.WriteBits(uint64(j)*0x9E3779B97F4A7C15, n)
		}
	}
}

func BenchmarkReadBits(b *testing.B) {
	var w Writer
	for i := 0; i < 1000; i++ {
		w.WriteBits(uint64(i)*0x9E3779B97F4A7C15, uint(i%33)+1)
	}
	data := w.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(data)
		for j := 0; j < 1000; j++ {
			if _, err := r.ReadBits(uint(j%33) + 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}
