package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// encodeFrameAllocCeiling is the pinned per-frame allocation budget for a
// serial P-frame encode. The padded-apron/lazy-tile substrate brought the
// steady state to ~10 allocations per frame (motion field, frame job,
// statistics growth); the ceiling leaves headroom for noise while failing
// loudly on a regression to per-macroblock or per-probe allocation
// (a single reintroduced per-MB map or escaping search input costs ~100
// allocations per QCIF frame). Run by `make bench-smoke` and the regular
// test suite.
const encodeFrameAllocCeiling = 40

// TestEncodeFrameAllocCeiling measures steady-state allocations per
// encoded P-frame (Workers=1: goroutine machinery would otherwise count)
// with the pools warm.
func TestEncodeFrameAllocCeiling(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.QCIF, 12, 77)
	run := func() float64 {
		e := NewEncoder(Config{Qp: 16, Searcher: &search.PBM{}, Workers: 1})
		for _, f := range frames {
			if _, err := e.EncodeFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		e.Bitstream()
		return float64(len(frames))
	}
	run() // warm the size-bucketed pools

	n := testing.AllocsPerRun(3, func() { run() })
	perFrame := n / float64(len(frames))
	t.Logf("allocs/frame = %.1f (ceiling %d)", perFrame, encodeFrameAllocCeiling)
	if perFrame > encodeFrameAllocCeiling {
		t.Fatalf("EncodeFrame allocates %.1f objects/frame, above the pinned ceiling of %d — "+
			"a pooled buffer or scratch reuse has regressed", perFrame, encodeFrameAllocCeiling)
	}
}
