package codec

import (
	"repro/internal/dct"
	"repro/internal/frame"
	"repro/internal/mvfield"
)

// Block-level coding primitives shared by the encoder and decoder. The
// reconstruction functions here are the single source of truth for both
// sides, which is what makes the decoder bit-identical to the encoder's
// reference loop.

// loadBlock copies the 8×8 samples of p anchored at (x, y) into b.
func loadBlock(b *dct.Block, p *frame.Plane, x, y int) {
	for r := 0; r < 8; r++ {
		row := p.Pix[(y+r)*p.Stride+x : (y+r)*p.Stride+x+8]
		for c := 0; c < 8; c++ {
			b[r*8+c] = int32(row[c])
		}
	}
}

// storeBlock writes b (clamped to 8-bit) into p at (x, y).
func storeBlock(p *frame.Plane, x, y int, b *dct.Block) {
	for r := 0; r < 8; r++ {
		row := p.Pix[(y+r)*p.Stride+x : (y+r)*p.Stride+x+8]
		for c := 0; c < 8; c++ {
			row[c] = frame.ClampU8(int(b[r*8+c]))
		}
	}
}

// predBlock fetches the 8×8 motion-compensated prediction for the block
// anchored at (x, y) with vector mv (half-pel units). Full-pel vectors
// (both components even — which includes every skip block and most chroma
// vectors) read the integer reference plane directly; true half-pel
// vectors read one phase of the lazily interpolated view.
func predBlock(b *dct.Block, ref *frame.Interpolated, x, y int, mv mvfield.MV) {
	if mv.X&1 == 0 && mv.Y&1 == 0 {
		src := ref.Src()
		sx, sy := x+mv.X/2, y+mv.Y/2
		if src.InBounds(sx, sy, 8, 8) {
			for r := 0; r < 8; r++ {
				row := src.Pix[(sy+r)*src.Stride+sx : (sy+r)*src.Stride+sx+8]
				for c := 0; c < 8; c++ {
					b[r*8+c] = int32(row[c])
				}
			}
			return
		}
	}
	var tmp [64]uint8
	ref.Block(tmp[:], 2*x+mv.X, 2*y+mv.Y, 8, 8)
	for i := range tmp {
		b[i] = int32(tmp[i])
	}
}

// storePredBlock writes the motion-compensated prediction for an uncoded
// block straight into p as bytes. The reconstruction of an uncoded block
// is exactly its prediction and prediction samples are already 8-bit, so
// this equals predBlock + reconInterBlock(coded=false) + storeBlock while
// skipping both int32 conversions and the clamp. Full-pel vectors copy
// plane rows directly, touching no half-pel state at all.
func storePredBlock(p *frame.Plane, x, y int, ref *frame.Interpolated, mv mvfield.MV) {
	if mv.X&1 == 0 && mv.Y&1 == 0 {
		src := ref.Src()
		sx, sy := x+mv.X/2, y+mv.Y/2
		if src.InBounds(sx, sy, 8, 8) {
			for r := 0; r < 8; r++ {
				copy(p.Pix[(y+r)*p.Stride+x:(y+r)*p.Stride+x+8],
					src.Pix[(sy+r)*src.Stride+sx:(sy+r)*src.Stride+sx+8])
			}
			return
		}
	}
	var tmp [64]uint8
	ref.Block(tmp[:], 2*x+mv.X, 2*y+mv.Y, 8, 8)
	for r := 0; r < 8; r++ {
		copy(p.Pix[(y+r)*p.Stride+x:(y+r)*p.Stride+x+8], tmp[r*8:r*8+8])
	}
}

// encodeInterBlock transforms and quantises the residual cur−pred.
// It returns the quantised levels and whether any level is non-zero.
// A perfect prediction (all-zero residual, common on static content)
// skips the transform and quantiser entirely: the DCT of a zero block is
// zero and the dead-zone quantiser maps zero to zero, so the outcome is
// exact by construction.
func encodeInterBlock(levels *dct.Block, cur, pred *dct.Block, qp int) bool {
	var resid dct.Block
	zero := true
	for i := range resid {
		d := cur[i] - pred[i]
		resid[i] = d
		zero = zero && d == 0
	}
	if zero {
		*levels = dct.Block{}
		return false
	}
	dct.Forward(&resid, &resid)
	dct.QuantizeInter(levels, &resid, qp)
	for _, l := range levels {
		if l != 0 {
			return true
		}
	}
	return false
}

// reconInterBlock reconstructs an inter block from its prediction and
// quantised levels (coded == false means all-zero levels).
func reconInterBlock(out, pred, levels *dct.Block, coded bool, qp int) {
	if !coded {
		*out = *pred
		return
	}
	var coef dct.Block
	dct.DequantizeInter(&coef, levels, qp)
	dct.Inverse(&coef, &coef)
	for i := range out {
		out[i] = pred[i] + coef[i]
	}
}

// encodeIntraBlock transforms and quantises raw samples.
func encodeIntraBlock(levels *dct.Block, cur *dct.Block, qp int) {
	var coef dct.Block
	dct.Forward(&coef, cur)
	dct.QuantizeIntra(levels, &coef, qp)
}

// reconIntraBlock reconstructs an intra block from quantised levels.
func reconIntraBlock(out, levels *dct.Block, qp int) {
	var coef dct.Block
	dct.DequantizeIntra(&coef, levels, qp)
	dct.Inverse(out, &coef)
}

// acCoded reports whether any AC coefficient (index > 0) is non-zero.
func acCoded(levels *dct.Block) bool {
	for i := 1; i < len(levels); i++ {
		if levels[i] != 0 {
			return true
		}
	}
	return false
}

// chromaMV derives the chroma-plane motion vector from a luma vector,
// halving each component and rounding away from zero to the nearest
// half-pel position (the H.263 derivation up to rounding convention).
func chromaMV(mv mvfield.MV) mvfield.MV {
	h := func(v int) int {
		switch {
		case v > 0:
			return (v + 1) / 2
		case v < 0:
			return -((-v + 1) / 2)
		}
		return 0
	}
	return mvfield.MV{X: h(mv.X), Y: h(mv.Y)}
}

// lumaBlockOffsets are the four 8×8 luma blocks of a macroblock in coding
// order (top-left, top-right, bottom-left, bottom-right).
var lumaBlockOffsets = [4][2]int{{0, 0}, {8, 0}, {0, 8}, {8, 8}}
