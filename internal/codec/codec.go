// Package codec implements the hybrid DPCM/DCT video codec substrate the
// paper's evaluation runs on: an H.263-style encoder (16×16 macroblocks,
// 8×8 DCT, H.263 uniform quantiser, half-pel motion compensation, median
// MV prediction, intra/inter/skip macroblock modes) with a pluggable
// motion estimator, plus the matching decoder.
//
// The bitstream is a compact custom format over the internal/entropy
// layer; it is fully decodable and the decoder's output is bit-identical
// to the encoder's reconstruction loop, which the tests verify. Rates and
// PSNRs measured here stand in for the paper's TMN5 (H.263) numbers — see
// DESIGN.md for the substitution rationale.
package codec

import (
	"fmt"
	"runtime"

	"repro/internal/dct"
	"repro/internal/frame"
	"repro/internal/search"
)

// Magic identifies the bitstream format ("AB01" = ACBM repro v1).
const Magic = 0x41423031

// DefaultIntraBias is the TMN-style margin used in the inter/intra mode
// decision: intra wins when IntraSAD < interSAD − DefaultIntraBias.
const DefaultIntraBias = 500

// DefaultSearchRange is the paper's p=15.
const DefaultSearchRange = 15

// Config controls one encode.
type Config struct {
	// Qp is the H.263 quantiser parameter (1..31).
	Qp int
	// SearchRange is the motion search range p in full pels (default 15).
	SearchRange int
	// Searcher performs motion estimation (default: full search).
	Searcher search.Searcher
	// IntraBias is the inter/intra decision margin (default 500).
	IntraBias int
	// FPS is the source frame rate, used only for bitrate reporting.
	FPS float64
	// IntraPeriod, when positive, forces an I-frame every IntraPeriod
	// frames (GOP structure for error resilience / channel adaptation).
	// 0 means only the first frame is intra, as in the paper's setup.
	IntraPeriod int
	// Entropy selects the entropy backend: baseline Exp-Golomb codes
	// (default) or adaptive binary arithmetic coding (the counterpart of
	// H.263 Annex E).
	Entropy EntropyMode
	// AdvancedPrediction enables the four-vector inter mode (one motion
	// vector per 8×8 luma block, as in H.263 Annex F without OBMC): the
	// encoder refines four sub-block vectors around the macroblock vector
	// and uses them when they beat the single vector by Inter4VBias.
	AdvancedPrediction bool
	// Inter4VBias is the SAD margin the four-vector mode must win by
	// (default 300, covering the three extra MVD costs).
	Inter4VBias int
	// PixelDecimation evaluates motion search candidates on a 4:1
	// subsampled grid (the fast-ME family of the paper's refs [6-8]);
	// it composes with any Searcher.
	PixelDecimation bool
	// Deblock enables the in-loop deblocking filter (an H.263 Annex J
	// counterpart) applied to every reconstruction before it becomes a
	// reference. The flag is carried in each frame header, so the decoder
	// follows automatically.
	Deblock bool
	// TargetKbps, when positive, enables frame-level rate control: the
	// quantiser is servoed around Config.Qp so the output rate tracks
	// this target at Config.FPS. 0 keeps the constant Qp of the paper's
	// experiments. The controller is frame-lagged (see rateController):
	// each frame's quantiser is decided before its analysis from the
	// actual sizes of all fully written frames plus a predicted size for
	// the one frame in flight, so rate control composes with Workers,
	// Pipeline and Pool — same bits in every mode, full parallelism.
	TargetKbps float64
	// Pipeline makes EncodeSequence overlap the serial entropy coding of
	// frame n with the analysis of frame n+1 (one frame in flight; see
	// codec.Pipeline). The bitstream and statistics are byte-identical to
	// a serial encode for every Workers value, with or without rate
	// control (the frame-lag controller never waits on the in-flight
	// frame's bits).
	Pipeline bool
	// Pool, when non-nil, runs macroblock analysis on a shared worker
	// pool instead of Workers frame-private goroutines. This is the
	// multi-session serving mode (cmd/vcodecd): N concurrent encoder
	// sessions share one machine-sized pool, interleaving at macroblock
	// granularity, instead of oversubscribing the host with N×Workers
	// goroutines. The wavefront schedule, its invariants and the output
	// bits are identical to the private-worker path; Workers is ignored
	// while Pool is set. The Searcher must implement search.Forker (all
	// searchers this module provides do); otherwise the pool is dropped
	// and the session analyses sequentially on its own goroutine.
	Pool *Pool
	// Priority is the session's scheduling class on a shared Pool: live
	// (the zero value) macroblock tasks dispatch ahead of batch tasks, so
	// a live session preempts batch sessions at the anti-diagonal
	// boundary while batch retains an anti-starvation share (see Pool).
	// Priority never reaches the analysis results, so it cannot change a
	// single output bit. Ignored without Pool.
	Priority Priority
	// Observer, when non-nil, receives per-frame phase timings (analysis
	// wall clock, shared-pool queue wait, entropy wall clock, encoded
	// size) as the encode progresses — the serving layer's flight
	// recorder attaches here; see FrameObserver for the callback and
	// concurrency contract. Observation is strictly one-way: the codec
	// never reads anything back from the Observer, so attaching one
	// cannot change a single output bit, and the nil path is exactly the
	// pre-observer code (the alloc-ceiling and overhead-guard tests pin
	// both properties).
	Observer FrameObserver
	// Workers sets how many goroutines analyse macroblocks concurrently
	// (motion estimation, mode decision, transform/quantisation and
	// reconstruction, scheduled per anti-diagonal wavefront; entropy
	// coding stays serial, so the bitstream and all statistics are
	// bit-identical for every worker count). 0 selects GOMAXPROCS, 1
	// forces sequential analysis. Parallel analysis requires the Searcher
	// to implement search.Forker — its frame-granular fork/join protocol
	// runs at every worker count, so stateful searchers (core.Budgeted)
	// stay deterministic; searchers without it are clamped to 1.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.SearchRange <= 0 {
		c.SearchRange = DefaultSearchRange
	}
	if c.Searcher == nil {
		c.Searcher = &search.FSBM{}
	}
	if c.IntraBias == 0 {
		c.IntraBias = DefaultIntraBias
	}
	if c.Inter4VBias == 0 {
		c.Inter4VBias = 300
	}
	if c.FPS <= 0 {
		c.FPS = 30
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if _, ok := c.Searcher.(search.Forker); !ok {
		// A searcher that cannot fork cannot be scheduled across workers
		// or a shared pool; it analyses sequentially on the session's own
		// goroutine. Every searcher this module provides implements
		// search.Forker, so this only guards external implementations.
		c.Workers = 1
		c.Pool = nil
	}
	c.Qp = dct.ClampQp(c.Qp)
	return c
}

// FrameType distinguishes intra and predicted frames.
type FrameType int

const (
	// IFrame is intra-coded (no reference).
	IFrame FrameType = iota
	// PFrame is predicted from the previous reconstructed frame.
	PFrame
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	if t == IFrame {
		return "I"
	}
	return "P"
}

// FrameStats reports one encoded frame.
type FrameStats struct {
	Type         FrameType
	Qp           int     // quantiser used for this frame
	Bits         int     // bits this frame contributed to the stream
	PSNRY        float64 // luma PSNR of the reconstruction vs the source
	PSNRCb       float64
	PSNRCr       float64
	SearchPoints int // candidate positions evaluated by motion search
	Macroblocks  int
	IntraMBs     int
	InterMBs     int
	Inter4VMBs   int // inter MBs that used four-vector prediction
	SkipMBs      int
}

// SequenceStats aggregates an encoded sequence.
type SequenceStats struct {
	Frames []FrameStats
	FPS    float64
}

// AvgPSNRY returns the mean luma PSNR across all frames.
func (s *SequenceStats) AvgPSNRY() float64 {
	if len(s.Frames) == 0 {
		return 0
	}
	var sum float64
	for _, f := range s.Frames {
		sum += f.PSNRY
	}
	return sum / float64(len(s.Frames))
}

// TotalBits returns the bitstream length in bits.
func (s *SequenceStats) TotalBits() int {
	total := 0
	for _, f := range s.Frames {
		total += f.Bits
	}
	return total
}

// BitrateKbps returns the average rate in kbit/s at the configured frame
// rate, the x-axis of the paper's Figs. 5 and 6.
func (s *SequenceStats) BitrateKbps() float64 {
	if len(s.Frames) == 0 {
		return 0
	}
	fps := s.FPS
	if fps <= 0 {
		fps = 30
	}
	return float64(s.TotalBits()) * fps / float64(len(s.Frames)) / 1000
}

// AvgSearchPointsPerMB returns the mean candidate positions per macroblock
// over P-frames — the paper's Table 1 metric.
func (s *SequenceStats) AvgSearchPointsPerMB() float64 {
	pts, mbs := 0, 0
	for _, f := range s.Frames {
		if f.Type != PFrame {
			continue
		}
		pts += f.SearchPoints
		mbs += f.Macroblocks
	}
	if mbs == 0 {
		return 0
	}
	return float64(pts) / float64(mbs)
}

// validateSize checks the frame format is codable (16-divisible luma).
func validateSize(s frame.Size) error {
	if s.W%16 != 0 || s.H%16 != 0 {
		return fmt.Errorf("codec: luma size %v not divisible into 16x16 macroblocks", s)
	}
	if s.W == 0 || s.H == 0 {
		return fmt.Errorf("codec: empty frame size")
	}
	return nil
}
