package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/search"
	"repro/internal/video"
)

func testFrames(p video.Profile, n int) []*frame.Frame {
	return video.Generate(p, frame.SQCIF, n, 1)
}

func TestEncodeDecodeRoundTripMatchesReconstruction(t *testing.T) {
	// The decoder must reproduce the encoder's reference loop exactly,
	// for every profile and for both low and high Qp.
	for _, p := range video.Profiles {
		for _, qp := range []int{4, 16, 30} {
			frames := testFrames(p, 4)
			enc := NewEncoder(Config{Qp: qp})
			var recons []*frame.Frame
			for _, f := range frames {
				if _, err := enc.EncodeFrame(f); err != nil {
					t.Fatalf("%v qp%d: %v", p, qp, err)
				}
				recons = append(recons, enc.Reconstruction())
			}
			decoded, err := Decode(enc.Bitstream())
			if err != nil {
				t.Fatalf("%v qp%d: decode: %v", p, qp, err)
			}
			if len(decoded) != len(frames) {
				t.Fatalf("%v qp%d: decoded %d frames, want %d", p, qp, len(decoded), len(frames))
			}
			for i := range decoded {
				if !decoded[i].Equal(recons[i]) {
					t.Fatalf("%v qp%d: frame %d decoder output differs from encoder reconstruction", p, qp, i)
				}
			}
		}
	}
}

func TestFirstFrameIsIntraRestArePredicted(t *testing.T) {
	frames := testFrames(video.Carphone, 3)
	stats, _, err := EncodeSequence(Config{Qp: 16}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames[0].Type != IFrame {
		t.Fatal("first frame not intra")
	}
	for i := 1; i < len(stats.Frames); i++ {
		if stats.Frames[i].Type != PFrame {
			t.Fatalf("frame %d not predicted", i)
		}
	}
	if stats.Frames[0].IntraMBs != stats.Frames[0].Macroblocks {
		t.Fatal("I-frame must be all intra MBs")
	}
	if stats.Frames[0].SearchPoints != 0 {
		t.Fatal("I-frame must not search")
	}
}

func TestQualityIncreasesAsQpDecreases(t *testing.T) {
	frames := testFrames(video.Carphone, 3)
	var prevPSNR, prevRate float64
	for i, qp := range []int{30, 16, 8} {
		stats, _, err := EncodeSequence(Config{Qp: qp}, frames)
		if err != nil {
			t.Fatal(err)
		}
		psnr, rate := stats.AvgPSNRY(), stats.BitrateKbps()
		if i > 0 {
			if psnr <= prevPSNR {
				t.Fatalf("PSNR not increasing: qp%d %.2f <= %.2f", qp, psnr, prevPSNR)
			}
			if rate <= prevRate {
				t.Fatalf("rate not increasing: qp%d %.2f <= %.2f", qp, rate, prevRate)
			}
		}
		prevPSNR, prevRate = psnr, rate
	}
}

func TestReasonableReconstructionQuality(t *testing.T) {
	frames := testFrames(video.MissAmerica, 3)
	stats, _, err := EncodeSequence(Config{Qp: 8}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := stats.AvgPSNRY(); psnr < 30 {
		t.Fatalf("luma PSNR %.2f dB too low at Qp 8", psnr)
	}
}

func TestStaticSceneConvergesToSkip(t *testing.T) {
	// Repeating one frame: the first P-frame still refines the I-frame's
	// quantisation error, but the loop converges and later P-frames must
	// be (almost) all skip at ~1 bit per macroblock.
	f := testFrames(video.Foreman, 1)[0]
	enc := NewEncoder(Config{Qp: 16})
	var fs FrameStats
	for i := 0; i < 4; i++ {
		var err error
		fs, err = enc.EncodeFrame(f.Clone())
		if err != nil {
			t.Fatal(err)
		}
	}
	// A few MBs may keep oscillating around the quantiser dead zone, so
	// require a large majority rather than all of them.
	if fs.SkipMBs < fs.Macroblocks*8/10 {
		t.Fatalf("converged static frame: only %d/%d MBs skipped", fs.SkipMBs, fs.Macroblocks)
	}
	if fs.Bits > 40*fs.Macroblocks {
		t.Fatalf("converged static frame cost %d bits", fs.Bits)
	}
	if fs.PSNRY < 28 {
		t.Fatalf("static frame PSNR %.2f", fs.PSNRY)
	}
}

func TestGlobalTranslationCodedCheaply(t *testing.T) {
	// A pure global shift must cost far fewer bits than an I-frame: the
	// whole point of motion compensation.
	base := testFrames(video.Foreman, 1)[0]
	shifted := base.Clone()
	shifted.Y = base.Y.Shift(4, 2)
	shifted.Cb = base.Cb.Shift(2, 1)
	shifted.Cr = base.Cr.Shift(2, 1)
	enc := NewEncoder(Config{Qp: 10})
	s0, err := enc.EncodeFrame(base)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := enc.EncodeFrame(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Bits*3 > s0.Bits {
		t.Fatalf("shifted P-frame %d bits vs I-frame %d bits", s1.Bits, s0.Bits)
	}
	if s1.InterMBs == 0 {
		t.Fatal("no inter MBs on a translated frame")
	}
}

func TestSearcherPluggability(t *testing.T) {
	frames := testFrames(video.Carphone, 3)
	for _, s := range []search.Searcher{&search.FSBM{}, &search.PBM{}, &search.TSS{}} {
		stats, bs, err := EncodeSequence(Config{Qp: 16, Searcher: s}, frames)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if _, err := Decode(bs); err != nil {
			t.Fatalf("%s: decode: %v", s.Name(), err)
		}
		if stats.AvgSearchPointsPerMB() <= 0 {
			t.Fatalf("%s: no search points recorded", s.Name())
		}
	}
}

func TestFSBMSearchPointsPerMB(t *testing.T) {
	// With p=15 on SQCIF (8x6 MBs), interior MBs cost 969; border MBs
	// fewer. The average must sit between half and the full count.
	frames := testFrames(video.MissAmerica, 2)
	stats, _, err := EncodeSequence(Config{Qp: 16, Searcher: &search.FSBM{}}, frames)
	if err != nil {
		t.Fatal(err)
	}
	avg := stats.AvgSearchPointsPerMB()
	if avg < 500 || avg > 969 {
		t.Fatalf("FSBM avg points/MB = %.0f", avg)
	}
}

func TestEncoderRejectsBadInput(t *testing.T) {
	enc := NewEncoder(Config{Qp: 16})
	odd := frame.NewFrame(frame.Size{W: 24, H: 24}) // not 16-divisible
	if _, err := enc.EncodeFrame(odd); err == nil {
		t.Fatal("24x24 frame accepted")
	}
	ok := frame.NewFrame(frame.SQCIF)
	if _, err := enc.EncodeFrame(ok); err != nil {
		t.Fatal(err)
	}
	other := frame.NewFrame(frame.QCIF)
	if _, err := enc.EncodeFrame(other); err == nil {
		t.Fatal("size change accepted")
	}
	if _, _, err := EncodeSequence(Config{}, nil); err == nil {
		t.Fatal("empty sequence accepted")
	}
}

func TestDecoderRejectsCorruptStreams(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Valid header then truncation mid-frame.
	frames := testFrames(video.Carphone, 2)
	_, bs, err := EncodeSequence(Config{Qp: 16}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bs[:len(bs)/2]); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Flip a bit deep in the stream: decode must either error or at least
	// not panic.
	corrupt := make([]byte, len(bs))
	copy(corrupt, bs)
	corrupt[len(corrupt)/2] ^= 0x10
	_, _ = Decode(corrupt)
}

func TestChromaMVDerivation(t *testing.T) {
	cases := []struct {
		luma, chroma mvfield.MV
	}{
		{mvfield.Zero, mvfield.Zero},
		{mvfield.MV{X: 2, Y: 2}, mvfield.MV{X: 1, Y: 1}},   // 1 pel → 0.5 chroma pel
		{mvfield.MV{X: 4, Y: -4}, mvfield.MV{X: 2, Y: -2}}, // 2 pel → 1 chroma pel
		{mvfield.MV{X: 3, Y: -3}, mvfield.MV{X: 2, Y: -2}}, // 1.5 pel → rounds away
		{mvfield.MV{X: 1, Y: -1}, mvfield.MV{X: 1, Y: -1}}, // 0.5 pel → 0.5 chroma pel
	}
	for _, c := range cases {
		if got := chromaMV(c.luma); got != c.chroma {
			t.Errorf("chromaMV(%v) = %v, want %v", c.luma, got, c.chroma)
		}
	}
}

func TestFrameTypeString(t *testing.T) {
	if IFrame.String() != "I" || PFrame.String() != "P" {
		t.Fatal("frame type names wrong")
	}
}

func TestSequenceStatsZeroValues(t *testing.T) {
	var s SequenceStats
	if s.AvgPSNRY() != 0 || s.BitrateKbps() != 0 || s.AvgSearchPointsPerMB() != 0 || s.TotalBits() != 0 {
		t.Fatal("empty stats must be zero")
	}
}

func TestBitrateUsesFPS(t *testing.T) {
	frames := testFrames(video.Carphone, 3)
	s30, _, err := EncodeSequence(Config{Qp: 16, FPS: 30}, frames)
	if err != nil {
		t.Fatal(err)
	}
	s10, _, err := EncodeSequence(Config{Qp: 16, FPS: 10}, frames)
	if err != nil {
		t.Fatal(err)
	}
	r30, r10 := s30.BitrateKbps(), s10.BitrateKbps()
	if r30 <= 0 || r10 <= 0 {
		t.Fatal("rates must be positive")
	}
	ratio := r30 / r10
	if ratio < 2.9 || ratio > 3.1 {
		t.Fatalf("rate ratio %.3f, want 3.0 (same bits, 3x fps)", ratio)
	}
}

func TestMBModeCountsArePartition(t *testing.T) {
	frames := testFrames(video.TableTennis, 4)
	stats, _, err := EncodeSequence(Config{Qp: 16}, frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range stats.Frames {
		if f.IntraMBs+f.InterMBs+f.SkipMBs != f.Macroblocks {
			t.Fatalf("frame %d: %d+%d+%d != %d", i, f.IntraMBs, f.InterMBs, f.SkipMBs, f.Macroblocks)
		}
	}
}

func TestPixelDecimationEncodePath(t *testing.T) {
	frames := testFrames(video.Carphone, 4)
	full, _, err := EncodeSequence(Config{Qp: 16}, frames)
	if err != nil {
		t.Fatal(err)
	}
	deci, bs, err := EncodeSequence(Config{Qp: 16, PixelDecimation: true}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bs); err != nil {
		t.Fatal(err)
	}
	// Decimated search picks worse vectors (especially at half-pel, where
	// the subsampled grid sees only a quarter of the interpolation); the
	// literature reports up to ~1 dB loss and so do we.
	if deci.AvgPSNRY() < full.AvgPSNRY()-1.0 {
		t.Fatalf("decimated PSNR %.2f vs full %.2f", deci.AvgPSNRY(), full.AvgPSNRY())
	}
}
