package codec

import "repro/internal/frame"

// In-loop deblocking (the counterpart of H.263 Annex J): a light 1-D
// filter across 8×8 block edges of the reconstruction, applied identically
// by encoder and decoder before the frame becomes a prediction reference.
// Strong edges (likely real content) are left untouched; soft block
// discontinuities (likely quantisation artefacts) are smoothed with a
// quantiser-scaled correction.

// deblockThreshold returns the edge-difference ceiling above which the
// filter leaves the edge alone.
func deblockThreshold(qp int) int { return 3 * qp }

// deblockPair filters the two samples straddling a block edge.
func deblockPair(b, c uint8, qp int) (uint8, uint8) {
	diff := int(c) - int(b)
	if diff == 0 {
		return b, c
	}
	if diff > deblockThreshold(qp) || diff < -deblockThreshold(qp) {
		return b, c // a real edge: do not smooth
	}
	d := diff / 4
	limit := qp / 2
	if d > limit {
		d = limit
	}
	if d < -limit {
		d = -limit
	}
	return frame.ClampU8(int(b) + d), frame.ClampU8(int(c) - d)
}

// deblockPlane filters all interior 8×8 block edges of p in place:
// vertical edges first, then horizontal, as in the H.263 filter order.
func deblockPlane(p *frame.Plane, qp int) {
	// Vertical edges (filter across columns x-1 | x).
	for x := 8; x < p.W; x += 8 {
		for y := 0; y < p.H; y++ {
			b, c := deblockPair(p.At(x-1, y), p.At(x, y), qp)
			p.Set(x-1, y, b)
			p.Set(x, y, c)
		}
	}
	// Horizontal edges (filter across rows y-1 | y).
	for y := 8; y < p.H; y += 8 {
		for x := 0; x < p.W; x++ {
			b, c := deblockPair(p.At(x, y-1), p.At(x, y), qp)
			p.Set(x, y-1, b)
			p.Set(x, y, c)
		}
	}
}

// deblockFrame filters every component of the reconstruction.
func deblockFrame(f *frame.Frame, qp int) {
	deblockPlane(f.Y, qp)
	deblockPlane(f.Cb, qp)
	deblockPlane(f.Cr, qp)
}

// Blockiness measures the mean absolute luma step across 8×8 block edges
// minus the mean step one pixel inside them — a positive value indicates
// visible blocking structure. Exported for tests and experiments.
func Blockiness(p *frame.Plane) float64 {
	var edge, inner, n int64
	for x := 8; x < p.W; x += 8 {
		for y := 0; y < p.H; y++ {
			e := int(p.At(x, y)) - int(p.At(x-1, y))
			i := int(p.At(x-1, y)) - int(p.At(x-2, y))
			if e < 0 {
				e = -e
			}
			if i < 0 {
				i = -i
			}
			edge += int64(e)
			inner += int64(i)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(edge-inner) / float64(n)
}
