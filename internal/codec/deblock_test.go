package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/video"
)

func TestDeblockPairBehaviour(t *testing.T) {
	// Soft discontinuity: smoothed toward each other.
	b, c := deblockPair(100, 112, 16)
	if !(b > 100 && c < 112) {
		t.Fatalf("soft edge not smoothed: %d %d", b, c)
	}
	// Strong edge: untouched (real content).
	b, c = deblockPair(50, 200, 16)
	if b != 50 || c != 200 {
		t.Fatalf("strong edge altered: %d %d", b, c)
	}
	// Equal samples: untouched.
	b, c = deblockPair(128, 128, 16)
	if b != 128 || c != 128 {
		t.Fatal("flat pair altered")
	}
	// Correction bounded by qp/2.
	b, c = deblockPair(100, 140, 31)
	if int(b)-100 > 15 || 140-int(c) > 15 {
		t.Fatalf("correction exceeded qp/2: %d %d", b, c)
	}
}

func TestDeblockReducesBlockiness(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 3, 1)
	plain := NewEncoder(Config{Qp: 24})
	filtered := NewEncoder(Config{Qp: 24, Deblock: true})
	for _, f := range frames {
		if _, err := plain.EncodeFrame(f.Clone()); err != nil {
			t.Fatal(err)
		}
		if _, err := filtered.EncodeFrame(f.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	bp := Blockiness(plain.Reconstruction().Y)
	bf := Blockiness(filtered.Reconstruction().Y)
	if bf >= bp {
		t.Fatalf("deblocking did not reduce blockiness: %.2f vs %.2f", bf, bp)
	}
}

func TestDeblockRoundTripBothModes(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 4, 2)
	for _, mode := range []EntropyMode{EntropyExpGolomb, EntropyArith} {
		enc := NewEncoder(Config{Qp: 20, Deblock: true, Entropy: mode})
		var recons []*frame.Frame
		for _, f := range frames {
			if _, err := enc.EncodeFrame(f); err != nil {
				t.Fatal(err)
			}
			recons = append(recons, enc.Reconstruction())
		}
		decoded, err := Decode(enc.Bitstream())
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for i := range decoded {
			if !decoded[i].Equal(recons[i]) {
				t.Fatalf("mode %v: frame %d mismatch with deblocking", mode, i)
			}
		}
	}
}

func TestBlockinessMetric(t *testing.T) {
	// A plane with hard 8x8 DC steps has positive blockiness; a smooth
	// ramp has ~none.
	blocky := frame.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			blocky.Set(x, y, uint8(((x/8)+(y/8))%2*40+100))
		}
	}
	smooth := frame.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			smooth.Set(x, y, uint8(100+x))
		}
	}
	if Blockiness(blocky) <= Blockiness(smooth) {
		t.Fatalf("metric broken: blocky %.2f <= smooth %.2f", Blockiness(blocky), Blockiness(smooth))
	}
}
