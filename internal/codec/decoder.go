package codec

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/dct"
	"repro/internal/frame"
	"repro/internal/mvfield"
)

// Decoder reconstructs frames from a bitstream produced by Encoder. Its
// output is bit-identical to the encoder's reconstruction loop.
type Decoder struct {
	sr      symReader
	size    frame.Size
	mode    EntropyMode
	pending bool // a continuation flag has been consumed and a frame follows
	eos     bool
	deblock bool // current frame's in-loop filter flag
	err     error

	recon   *frame.Frame
	reconY  *frame.Interpolated
	reconCb *frame.Interpolated
	reconCr *frame.Interpolated
}

// NewDecoder parses the sequence header of data.
func NewDecoder(data []byte) (*Decoder, error) {
	r := bitstream.NewReader(data)
	magic, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("codec: bad magic %#x", magic)
	}
	var sr symReader
	// Peek the header with a shared bitstream reader; the backend is
	// selected by the mode bit that terminates the header.
	eg := &egReader{r: r}
	cols, err := eg.UEHeader()
	if err != nil {
		return nil, fmt.Errorf("codec: reading width: %w", err)
	}
	rows, err := eg.UEHeader()
	if err != nil {
		return nil, fmt.Errorf("codec: reading height: %w", err)
	}
	modeBit, err := r.ReadBits(1)
	if err != nil {
		return nil, fmt.Errorf("codec: reading entropy mode: %w", err)
	}
	if cols == 0 || rows == 0 || cols > 1<<10 || rows > 1<<10 {
		return nil, fmt.Errorf("codec: implausible size %dx%d macroblocks", cols, rows)
	}
	mode := EntropyMode(modeBit)
	switch mode {
	case EntropyExpGolomb:
		sr = eg
	case EntropyArith:
		ar := &arithReader{r: r, data: data}
		if err := ar.BeginData(); err != nil {
			return nil, err
		}
		sr = ar
	}
	return &Decoder{
		sr:   sr,
		mode: mode,
		size: frame.Size{W: 16 * int(cols), H: 16 * int(rows)},
	}, nil
}

// Size returns the decoded frame format.
func (d *Decoder) Size() frame.Size { return d.size }

// EntropyMode returns the stream's entropy backend.
func (d *Decoder) EntropyMode() EntropyMode { return d.mode }

// More reports whether another frame follows (consuming the continuation
// flag). Errors while reading the flag surface from the next DecodeFrame.
func (d *Decoder) More() bool {
	if d.eos || d.err != nil {
		return false
	}
	if d.pending {
		return true
	}
	more, err := d.sr.Flag(sctxMore)
	if err != nil {
		d.err = fmt.Errorf("codec: reading continuation flag: %w", err)
		return false
	}
	if !more {
		d.eos = true
		return false
	}
	d.pending = true
	return true
}

// DecodeFrame reconstructs the next frame.
func (d *Decoder) DecodeFrame() (*frame.Frame, error) {
	if !d.More() {
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("codec: no more frames")
	}
	d.pending = false
	tbit, err := d.sr.Bits(1)
	if err != nil {
		return nil, fmt.Errorf("codec: reading frame type: %w", err)
	}
	qpBits, err := d.sr.Bits(5)
	if err != nil {
		return nil, fmt.Errorf("codec: reading Qp: %w", err)
	}
	qp := int(qpBits)
	if qp < dct.MinQp || qp > dct.MaxQp {
		return nil, fmt.Errorf("codec: illegal Qp %d", qp)
	}
	dbBit, err := d.sr.Bits(1)
	if err != nil {
		return nil, fmt.Errorf("codec: reading deblock flag: %w", err)
	}
	d.deblock = dbBit == 1
	if tbit == 0 {
		return d.decodeIntraFrame(qp)
	}
	if d.recon == nil {
		return nil, fmt.Errorf("codec: P-frame before any I-frame")
	}
	return d.decodeInterFrame(qp)
}

// DecodeAll reconstructs every remaining frame.
func (d *Decoder) DecodeAll() ([]*frame.Frame, error) {
	var out []*frame.Frame
	for d.More() {
		f, err := d.DecodeFrame()
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
	if d.err != nil {
		return out, d.err
	}
	return out, nil
}

// Decode is a convenience wrapper decoding a whole stream.
func Decode(data []byte) ([]*frame.Frame, error) {
	d, err := NewDecoder(data)
	if err != nil {
		return nil, err
	}
	return d.DecodeAll()
}

// newRecon draws a reconstruction frame for decoding from the
// size-bucketed pool. The decoder writes every visible sample before the
// frame is read (every macroblock mode stores its full reconstruction),
// so the unspecified pool contents never leak into output. The apron is
// the minimum the half-pel interpolation needs: the decoder performs no
// motion search.
func (d *Decoder) newRecon() *frame.Frame {
	return frame.GetFramePadded(d.size, frame.MinInterpApron, frame.MinInterpApron)
}

// refreshReference mirrors the encoder: deblock, replicate the plane
// aprons, install the frame as the reference with a fresh lazy half-pel
// view, and retire the previous reference to the frame pool (callers only
// ever receive clones, so nothing references it).
func (d *Decoder) refreshReference(recon *frame.Frame, qp int) {
	if d.deblock {
		deblockFrame(recon, qp)
	}
	recon.ReplicateAprons()
	old := d.recon
	d.recon = recon
	d.reconY.Release()
	d.reconCb.Release()
	d.reconCr.Release()
	d.reconY = frame.InterpolateLazy(recon.Y)
	d.reconCb = frame.InterpolateLazy(recon.Cb)
	d.reconCr = frame.InterpolateLazy(recon.Cr)
	old.Release()
}

// readCoeffs parses (run, level, last) events into b (raster order).
func readCoeffs(sr symReader, b *dct.Block) error {
	var scan [64]int32
	pos := 0
	for {
		run, err := sr.UE(sctxRun)
		if err != nil {
			return err
		}
		level, err := sr.SE(sctxLevel)
		if err != nil {
			return err
		}
		last, err := sr.Flag(sctxLast)
		if err != nil {
			return err
		}
		pos += int(run)
		if pos >= 64 {
			return fmt.Errorf("codec: TCOEF run overflows block (pos %d)", pos)
		}
		if level == 0 {
			return fmt.Errorf("codec: zero level in TCOEF event")
		}
		scan[pos] = level
		pos++
		if last {
			break
		}
	}
	dct.Unscan(b, &scan)
	return nil
}

func (d *Decoder) decodeIntraFrame(qp int) (*frame.Frame, error) {
	recon := d.newRecon()
	cols, rows := d.size.MacroblockCols(), d.size.MacroblockRows()
	for mby := 0; mby < rows; mby++ {
		for mbx := 0; mbx < cols; mbx++ {
			if err := d.decodeIntraMB(recon, qp, mbx, mby); err != nil {
				recon.Release() // partially decoded, never escapes
				return nil, fmt.Errorf("codec: intra MB (%d,%d): %w", mbx, mby, err)
			}
		}
	}
	d.refreshReference(recon, qp)
	return recon.Clone(), nil
}

func (d *Decoder) decodeIntraMB(recon *frame.Frame, qp, mbx, mby int) error {
	x, y := 16*mbx, 16*mby
	var levels, rec dct.Block
	decode := func(p *frame.Plane, bx, by int) error {
		if err := d.readIntraBlock(&levels); err != nil {
			return err
		}
		reconIntraBlock(&rec, &levels, qp)
		storeBlock(p, bx, by, &rec)
		return nil
	}
	for _, off := range lumaBlockOffsets {
		if err := decode(recon.Y, x+off[0], y+off[1]); err != nil {
			return err
		}
	}
	if err := decode(recon.Cb, 8*mbx, 8*mby); err != nil {
		return err
	}
	return decode(recon.Cr, 8*mbx, 8*mby)
}

func (d *Decoder) readIntraBlock(levels *dct.Block) error {
	dc, err := d.sr.Bits(8)
	if err != nil {
		return err
	}
	acFlag, err := d.sr.Flag(sctxACFlag)
	if err != nil {
		return err
	}
	*levels = dct.Block{}
	if acFlag {
		if err := readCoeffs(d.sr, levels); err != nil {
			return err
		}
		if levels[0] != 0 {
			return fmt.Errorf("codec: intra AC events set the DC coefficient")
		}
	}
	levels[0] = int32(dc)
	return nil
}

func (d *Decoder) decodeInterFrame(qp int) (*frame.Frame, error) {
	recon := d.newRecon()
	cols, rows := d.size.MacroblockCols(), d.size.MacroblockRows()
	curField := mvfield.NewField(cols, rows)
	for mby := 0; mby < rows; mby++ {
		for mbx := 0; mbx < cols; mbx++ {
			if err := d.decodeInterMB(recon, curField, qp, mbx, mby); err != nil {
				recon.Release() // partially decoded, never escapes
				return nil, fmt.Errorf("codec: inter MB (%d,%d): %w", mbx, mby, err)
			}
		}
	}
	d.refreshReference(recon, qp)
	return recon.Clone(), nil
}

func (d *Decoder) decodeInterMB(recon *frame.Frame, curField *mvfield.Field, qp, mbx, mby int) error {
	x, y := 16*mbx, 16*mby
	cx, cy := 8*mbx, 8*mby
	cod, err := d.sr.Flag(sctxCOD)
	if err != nil {
		return err
	}
	if cod { // skip: the reconstruction is the zero-MV prediction, copied as bytes
		for _, off := range lumaBlockOffsets {
			storePredBlock(recon.Y, x+off[0], y+off[1], d.reconY, mvfield.Zero)
		}
		storePredBlock(recon.Cb, cx, cy, d.reconCb, mvfield.Zero)
		storePredBlock(recon.Cr, cx, cy, d.reconCr, mvfield.Zero)
		curField.Set(mbx, mby, mvfield.Zero)
		return nil
	}
	intraBit, err := d.sr.Flag(sctxMode)
	if err != nil {
		return err
	}
	if intraBit {
		curField.Set(mbx, mby, mvfield.Zero)
		return d.decodeIntraMB(recon, qp, mbx, mby)
	}
	fourV, err := d.sr.Flag(sctxInter4V)
	if err != nil {
		return err
	}
	if fourV {
		return d.decodeInter4VMB(recon, curField, qp, mbx, mby)
	}

	// Inter: MVD against the median predictor, CBP, coefficients.
	predMV := curField.MedianPredictor(mbx, mby)
	dx, err := d.sr.SE(sctxMVX)
	if err != nil {
		return err
	}
	dy, err := d.sr.SE(sctxMVY)
	if err != nil {
		return err
	}
	mv := predMV.Add(mvfield.MV{X: int(dx), Y: int(dy)})
	var coded [6]bool
	for i := range coded {
		coded[i], err = d.sr.Flag(sctxCBP)
		if err != nil {
			return err
		}
	}
	cmv := chromaMV(mv)
	var levels, pred, rec dct.Block
	codeBlock := func(p *frame.Plane, bx, by int, ip *frame.Interpolated, bmv mvfield.MV, c bool) error {
		if !c { // uncoded: reconstruction = prediction, copied as bytes
			storePredBlock(p, bx, by, ip, bmv)
			return nil
		}
		if err := readCoeffs(d.sr, &levels); err != nil {
			return err
		}
		predBlock(&pred, ip, bx, by, bmv)
		reconInterBlock(&rec, &pred, &levels, true, qp)
		storeBlock(p, bx, by, &rec)
		return nil
	}
	for i, off := range lumaBlockOffsets {
		levels = dct.Block{}
		if err := codeBlock(recon.Y, x+off[0], y+off[1], d.reconY, mv, coded[i]); err != nil {
			return err
		}
	}
	levels = dct.Block{}
	if err := codeBlock(recon.Cb, cx, cy, d.reconCb, cmv, coded[4]); err != nil {
		return err
	}
	levels = dct.Block{}
	if err := codeBlock(recon.Cr, cx, cy, d.reconCr, cmv, coded[5]); err != nil {
		return err
	}

	curField.Set(mbx, mby, mv)
	return nil
}
