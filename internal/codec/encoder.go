package codec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dct"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/mvfield"
	"repro/internal/search"
)

// mbMode is a macroblock coding mode.
type mbMode int

const (
	mbSkip mbMode = iota // COD=1: copy collocated block, zero MV
	mbInter
	mbIntra
)

// The encoder runs every frame in two phases:
//
//  1. analyze — motion estimation, mode decision, transform/quantisation
//     and reconstruction per macroblock. Results land in an mbResult per
//     MB and reconstructed pixels go straight into the (disjoint) MB
//     regions of the recon frame. This phase touches no entropy state, so
//     it can run across a worker pool (see parallel.go): macroblocks are
//     scheduled per anti-diagonal because the PBM/ACBM predictors read
//     only the left, up-left, up and up-right neighbours of the current
//     motion field.
//  2. write — serial raster-order serialisation of the stored results.
//     The entropy coder (including the adaptive arithmetic contexts) sees
//     exactly the sequence of symbols the seed's interleaved encoder
//     produced, so bitstreams are bit-identical for every worker count.
//
// mbResult captures everything phase 2 needs from phase 1.
type mbResult struct {
	mode   mbMode
	four   bool       // inter: four-vector (Annex F) macroblock
	mv     mvfield.MV // inter 1V: the macroblock vector
	subMV  [4]mvfield.MV
	points int     // candidate positions evaluated (Table 1 metric)
	coded  [6]bool // inter: per-block coded flags (Y0..Y3, Cb, Cr)
	// levels holds the quantised coefficients in coding order: the four
	// luma blocks, then Cb, then Cr — intra and inter modes both use it.
	levels [6]dct.Block
}

// mbResultsPool recycles the per-frame result slabs (~1.6 KiB per MB)
// across frames and encoder instances.
var mbResultsPool sync.Pool // stores *[]mbResult

func getMBResults(n int) []mbResult {
	if v, _ := mbResultsPool.Get().(*[]mbResult); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]mbResult, n)
}

func putMBResults(rs []mbResult) {
	mbResultsPool.Put(&rs)
}

// Encoder encodes a sequence of equally sized frames: the first as an
// I-frame, the rest as P-frames referencing the previous reconstruction
// (plus periodic I-frames when Config.IntraPeriod is set).
//
// The bitstream is finalised by the first call to Bitstream; frames cannot
// be added afterwards.
type Encoder struct {
	cfg  Config
	size frame.Size
	// forker is cfg.Searcher's frame-granular fork/join capability. Every
	// searcher this module provides implements it; withDefaults forces
	// Workers=1 and Pool=nil for external ones that do not, so a nil
	// forker only ever reaches the plain sequential loop.
	forker search.Forker

	sw       symWriter
	out      []byte
	finished bool

	curQp int             // quantiser for the current frame
	rc    *rateController // nil unless Config.TargetKbps > 0
	// qpOffset is the QoS degradation offset added on top of the base
	// quantiser (cfg.Qp or the rate controller's plan) each frame; it and
	// pendingSearcher are written only by applyActuation on the session
	// goroutine between frames (see Actuation).
	qpOffset int
	// pendingSearcher, when non-nil, replaces cfg.Searcher at the next
	// frame's analysis, forcing that frame intra so the swap never reads
	// another searcher's motion-field assumptions.
	pendingSearcher search.Searcher
	// curSeed is the cross-layer motion seed for the current frame's
	// analysis (simulcast ladder: the rung above's scaled field). Set by
	// the ladder driver on the analysis goroutine before analyzeFrameJob
	// and cleared after; nil everywhere else, so single-rung encodes are
	// untouched. Workers read it only through the per-MB scratch Input.
	curSeed search.LayerSeed
	// rcPrevJob is the last job whose write phase began: frameHandoff
	// settles its wroteBits at the next hand-off. One field serves the
	// serial and pipelined drivers alike (see frameHandoff for the memory
	// ordering in the pipelined case).
	rcPrevJob *frameJob

	// lumaApron/chromaApron are the replicated borders carried by every
	// reconstruction plane: the motion range plus the half-pel margin for
	// luma, so any position a searcher or the interpolation may read is
	// backed by real edge-replicated memory.
	lumaApron   int
	chromaApron int

	recon     *frame.Frame // reference: last reconstructed frame
	reconY    *frame.Interpolated
	reconCb   *frame.Interpolated
	reconCr   *frame.Interpolated
	prevField *mvfield.Field
	frames    int

	// Cumulative wall clock per phase. In pipelined encodes the two
	// fields are owned by different goroutines (analysis by the caller,
	// entropy by the writer) and only read after Flush.
	analysisTime time.Duration
	entropyTime  time.Duration

	// obsWaitNs/obsStallNs accumulate the current frame's shared-pool
	// queue wait (summed across MB tasks, and the worst single task).
	// Pool workers add via noteQueueWait; the session goroutine drains
	// both with Swap(0) when it reports the frame to cfg.Observer. Only
	// touched when an Observer is attached.
	obsWaitNs  atomic.Int64
	obsStallNs atomic.Int64

	stats SequenceStats
}

// PhaseTimes returns the cumulative wall clock spent in phase 1
// (macroblock analysis: motion search, transforms, reconstruction) and
// phase 2 (entropy coding and statistics). In pipeline mode the phases
// overlap, so the sum can exceed the encode's wall-clock time.
func (e *Encoder) PhaseTimes() (analysis, entropy time.Duration) {
	return e.analysisTime, e.entropyTime
}

// NewEncoder returns an encoder for the given configuration.
func NewEncoder(cfg Config) *Encoder {
	cfg = cfg.withDefaults()
	e := &Encoder{
		cfg:   cfg,
		sw:    newSymWriter(cfg.Entropy),
		curQp: cfg.Qp,
		stats: SequenceStats{FPS: cfg.FPS},
	}
	e.forker, _ = cfg.Searcher.(search.Forker)
	if cfg.TargetKbps > 0 {
		e.rc = newRateController(cfg.TargetKbps, cfg.FPS, cfg.Qp)
	}
	e.lumaApron, e.chromaApron = refAprons(cfg.SearchRange)
	return e
}

// refAprons sizes the reconstruction-plane borders for a motion search
// range: the luma apron covers the full range plus the half-pel margin,
// the chroma apron the halved range — both at least the minimum the
// half-pel interpolation needs to fill its own border without clamping.
func refAprons(searchRange int) (luma, chroma int) {
	luma = searchRange + 1
	if luma < frame.MinInterpApron {
		luma = frame.MinInterpApron
	}
	chroma = luma / 2
	if chroma < frame.MinInterpApron {
		chroma = frame.MinInterpApron
	}
	return luma, chroma
}

// workerCount resolves how many goroutines may analyse macroblocks
// concurrently. withDefaults has already forced 1 for searchers that
// cannot fork, so this is purely the configured width.
func (e *Encoder) workerCount() int {
	if e.cfg.Workers <= 1 {
		return 1
	}
	return e.cfg.Workers
}

// Stats returns per-frame statistics for everything encoded so far. In
// arithmetic entropy mode the per-frame bit counts are approximate (the
// range coder buffers up to a few bytes across frame boundaries); totals
// are exact.
func (e *Encoder) Stats() *SequenceStats { return &e.stats }

// Bitstream finalises and returns the encoded stream. The first call ends
// the sequence; subsequent EncodeFrame calls fail.
func (e *Encoder) Bitstream() []byte {
	if !e.finished {
		if e.frames > 0 {
			e.sw.Flag(sctxMore, false)
			e.out = e.sw.Finish()
		}
		e.finished = true
		e.rcPrevJob = nil // release the last retained frame pair
	}
	return e.out
}

// Reconstruction returns the most recent reconstructed frame (the decoder
// will produce exactly this), or nil before any frame is encoded.
func (e *Encoder) Reconstruction() *frame.Frame {
	if e.recon == nil {
		return nil
	}
	return e.recon.Clone()
}

// frameJob carries one analysed frame from phase 1 (analysis) to phase 2
// (entropy coding). Everything the write phase needs is captured here, so
// the two phases can run on different goroutines for *different* frames:
// entropy coding of frame n only reads its job, while analysis of frame
// n+1 reads the encoder's reference state — which is final once the job
// for frame n has been built (see pipeline.go for the overlap contract).
type frameJob struct {
	index    int            // frame number within the sequence
	src      *frame.Frame   // source frame (PSNR); must not change until written
	recon    *frame.Frame   // this frame's deblocked reconstruction (PSNR)
	results  []mbResult     // per-macroblock analysis output (pooled)
	curField *mvfield.Field // P-frames: final motion field for MVD prediction
	intra    bool
	qp       int
	// prevRef is the reference frame this job's analysis read (the
	// previous reconstruction), retired to the frame pool at this job's
	// hand-off — the first point where both its readers are provably done:
	// this job's analysis, and the previous job's write phase (PSNR).
	prevRef *frame.Frame
	// cost is the rate controller's complexity proxy (jobCost), computed
	// from the analysis results before the slab returns to the pool. It is
	// worker-invariant, so predicted bits — and with them every quantiser
	// decision — are identical for every Workers/Pool/Pipeline setting.
	cost int
	// wroteBits is the frame's actual encoded size, filled in by the write
	// phase. In pipelined encodes it is owned by the writer goroutine and
	// may be read by the analysis side only after the *next* job's hand-off
	// (the channel send establishes the happens-before edge).
	wroteBits int
}

// jobCost computes the rate controller's complexity proxy for an analysed
// frame: the number of nonzero quantised coefficients plus small fixed
// charges for headers, modes and motion vectors. It is a pure function of
// the (worker-invariant) analysis results, never of scheduling, which is
// what keeps rate-controlled bitstreams byte-identical across every
// Workers, Pool and Pipeline configuration.
func jobCost(results []mbResult) int {
	cost := 0
	for i := range results {
		r := &results[i]
		switch r.mode {
		case mbSkip:
			cost++
			continue
		case mbIntra:
			cost += 8 // mode flags + six 8-bit DC terms
		case mbInter:
			cost += 4 // COD/mode flags + CBP
			if r.four {
				cost += 12 // three extra MVD pairs
			} else {
				cost += 4
			}
		}
		for b := range r.levels {
			if !r.coded[b] {
				continue
			}
			for _, c := range r.levels[b] {
				if c != 0 {
					cost++
				}
			}
		}
	}
	return cost
}

// analyzeFrameJob runs phase 1 for f: motion estimation, mode decision,
// transform/quantisation and reconstruction for every macroblock, then
// installs the new reconstruction as the prediction reference. It touches
// no entropy state.
func (e *Encoder) analyzeFrameJob(f *frame.Frame) (*frameJob, error) {
	if e.finished {
		return nil, fmt.Errorf("codec: encoder finalised by Bitstream; cannot add frames")
	}
	if e.frames == 0 {
		if err := validateSize(f.Size()); err != nil {
			return nil, err
		}
		e.size = f.Size()
	} else if f.Size() != e.size {
		return nil, fmt.Errorf("codec: frame size changed from %v to %v", e.size, f.Size())
	}
	base := e.cfg.Qp
	if e.rc != nil {
		base = e.rc.currentQp()
	}
	e.curQp = dct.ClampQp(base + e.qpOffset)
	start := time.Now()
	intra := e.frames == 0 ||
		(e.cfg.IntraPeriod > 0 && e.frames%e.cfg.IntraPeriod == 0)
	if e.pendingSearcher != nil {
		// An actuated searcher swap lands here: the frame is forced intra
		// (no motion search, motion field reset), so the incoming searcher
		// never observes state the outgoing one produced.
		intra = true
		e.cfg.Searcher = e.pendingSearcher
		e.forker, _ = e.cfg.Searcher.(search.Forker)
		if e.forker == nil {
			e.cfg.Workers = 1
			e.cfg.Pool = nil
		}
		e.pendingSearcher = nil
	}
	cols, rows := e.size.MacroblockCols(), e.size.MacroblockRows()
	j := &frameJob{index: e.frames, src: f, intra: intra, qp: e.curQp, prevRef: e.recon}
	// The reconstruction is drawn (unzeroed) from the size-bucketed frame
	// pool: analysis writes every visible sample macroblock by macroblock,
	// and refreshReference replicates the apron, so no stale byte survives.
	recon := frame.GetFramePadded(e.size, e.lumaApron, e.chromaApron)
	j.results = getMBResults(cols * rows)
	if intra {
		e.analyzeFrame(f, recon, nil, j.results, true)
		e.refreshReference(recon)
		e.prevField = mvfield.NewField(cols, rows) // all-zero motion
	} else {
		j.curField = mvfield.NewField(cols, rows)
		e.analyzeFrame(f, recon, j.curField, j.results, false)
		e.refreshReference(recon)
		e.prevField = j.curField
	}
	j.recon = e.recon // the deblocked reconstruction
	if e.rc != nil {
		j.cost = jobCost(j.results)
	}
	e.frames++
	wall := time.Since(start)
	e.analysisTime += wall
	if ob := e.cfg.Observer; ob != nil {
		ob.FrameAnalyzed(j.index, wall,
			time.Duration(e.obsWaitNs.Swap(0)), time.Duration(e.obsStallNs.Swap(0)),
			j.intra, j.qp)
	}
	return j, nil
}

// frameHandoff runs the per-frame hand-off protocol for job j — the
// moment j's entropy write begins (pipelined drivers: call it on the
// submitting goroutine immediately after j's channel send completes) or
// has just finished (serial drivers: after writing j). Two things happen
// here, both relying on the same guarantee — that the previously handed
// job's write phase is complete by now:
//
//   - The reference frame j's analysis read (j.prevRef) is retired to the
//     frame pool: its last readers were j's analysis (done before the
//     hand-off) and the previous job's PSNR statistics (done when the
//     writer accepted j).
//   - The frame-lag rate controller settles the previous job's actual
//     size and plans the next quantiser. Calling it at the same point of
//     the frame sequence in every driver is what keeps rate-controlled
//     output byte-identical across all of them.
//
// Memory ordering (pipelined): the unbuffered channel send completing
// means the writer accepted j, having finished — and published, via the
// happens-before edge of the hand-off — the previous job's wroteBits and
// its last reads of the retired reference.
func (e *Encoder) frameHandoff(j *frameJob) {
	if j.prevRef != nil {
		j.prevRef.Release()
		j.prevRef = nil
	}
	if e.rc == nil {
		return
	}
	if j.index > 0 {
		prevBits := 0
		if e.rcPrevJob != nil {
			prevBits = e.rcPrevJob.wroteBits
		}
		e.rc.settle(prevBits)
	}
	e.rc.plan(j.intra, j.cost)
	e.rcPrevJob = j
}

// writeFrameJob runs phase 2 for an analysed frame: the serial entropy
// coding of the stored results, plus bit accounting and PSNR statistics.
// Jobs must be written in frame order (the entropy coder is stateful).
func (e *Encoder) writeFrameJob(j *frameJob) FrameStats {
	start := time.Now()
	if j.index == 0 {
		e.writeSequenceHeader()
	}
	startBits := e.sw.Len()
	e.sw.Flag(sctxMore, true)
	fs := e.writeFrameBody(j)
	fs.Bits = e.sw.Len() - startBits
	fs.Qp = j.qp
	j.wroteBits = fs.Bits
	wall := time.Since(start)
	e.entropyTime += wall
	if ob := e.cfg.Observer; ob != nil {
		ob.FrameWritten(j.index, wall, fs.Bits)
	}

	py, _ := frame.PSNR(j.src.Y, j.recon.Y)
	pcb, _ := frame.PSNR(j.src.Cb, j.recon.Cb)
	pcr, _ := frame.PSNR(j.src.Cr, j.recon.Cr)
	fs.PSNRY, fs.PSNRCb, fs.PSNRCr = py, pcb, pcr

	e.stats.Frames = append(e.stats.Frames, fs)
	return fs
}

// writeFrameBody serialises the frame header and every macroblock of j,
// returning the type and macroblock-mode statistics. The results slab is
// returned to the pool. Shared by the stream writer (writeFrameJob) and
// the packetized transport (EncodePackets), which frame the body
// differently.
func (e *Encoder) writeFrameBody(j *frameJob) FrameStats {
	cols, rows := e.size.MacroblockCols(), e.size.MacroblockRows()
	fs := FrameStats{Macroblocks: cols * rows}
	if j.intra {
		fs.Type = IFrame
		fs.IntraMBs = cols * rows
		e.writeFrameHeader(IFrame, j.qp)
		for i := range j.results {
			e.writeIntraMB(&j.results[i])
		}
	} else {
		fs.Type = PFrame
		e.writeFrameHeader(PFrame, j.qp)
		for mby := 0; mby < rows; mby++ {
			for mbx := 0; mbx < cols; mbx++ {
				r := &j.results[mby*cols+mbx]
				e.writeInterMB(r, j.curField, mbx, mby)
				fs.SearchPoints += r.points
				switch r.mode {
				case mbSkip:
					fs.SkipMBs++
				case mbInter:
					fs.InterMBs++
					if r.four {
						fs.Inter4VMBs++
					}
				case mbIntra:
					fs.IntraMBs++
				}
			}
		}
	}
	putMBResults(j.results)
	j.results = nil
	return fs
}

// EncodeFrame appends one frame to the stream and returns its statistics.
// Rate control runs the frame-lag protocol even though the actual bit
// count is already known here: the controller must see exactly the
// information a pipelined encode would, so serial and pipelined
// rate-controlled bitstreams stay byte-identical.
func (e *Encoder) EncodeFrame(f *frame.Frame) (FrameStats, error) {
	j, err := e.analyzeFrameJob(f)
	if err != nil {
		return FrameStats{}, err
	}
	fs := e.writeFrameJob(j)
	e.frameHandoff(j)
	return fs, nil
}

func (e *Encoder) writeSequenceHeader() {
	e.sw.RawHeader(Magic, 32)
	e.sw.UEHeader(uint32(e.size.W / 16))
	e.sw.UEHeader(uint32(e.size.H / 16))
	e.sw.RawHeader(uint64(e.cfg.Entropy), 1)
	e.sw.BeginData()
}

func (e *Encoder) writeFrameHeader(t FrameType, qp int) {
	if t == IFrame {
		e.sw.Bits(0, 1)
	} else {
		e.sw.Bits(1, 1)
	}
	e.sw.Bits(uint64(qp), 5)
	if e.cfg.Deblock {
		e.sw.Bits(1, 1)
	} else {
		e.sw.Bits(0, 1)
	}
}

// writeCoeffs serialises a block's quantised levels as (run, level, last)
// events over the zig-zag scan. The block must have ≥1 non-zero level.
func writeCoeffs(sw symWriter, b *dct.Block) {
	var scan [64]int32
	dct.Scan(&scan, b)
	lastNZ := -1
	for i, c := range scan {
		if c != 0 {
			lastNZ = i
		}
	}
	if lastNZ < 0 {
		panic("codec: writeCoeffs on an all-zero block")
	}
	run := 0
	for i := 0; i <= lastNZ; i++ {
		c := scan[i]
		if c == 0 {
			run++
			continue
		}
		sw.RunLevelLast(uint32(run), c, i == lastNZ)
		run = 0
	}
}

// refreshReference installs recon as the prediction reference: the
// in-loop filter runs first, then the plane aprons are replicated (the
// once-per-frame moment border memory is refreshed — analysis of the next
// frame may read the apron freely), and the half-pel view is reset to
// lazy: no half-pel sample is computed until refinement or compensation
// actually lands on its tile. The previous frame's view returns to the
// size-bucketed pool.
func (e *Encoder) refreshReference(recon *frame.Frame) {
	if e.cfg.Deblock {
		deblockFrame(recon, e.curQp)
	}
	recon.ReplicateAprons()
	e.recon = recon
	e.reconY.Release()
	e.reconCb.Release()
	e.reconCr.Release()
	e.reconY = frame.InterpolateLazy(recon.Y)
	e.reconCb = frame.InterpolateLazy(recon.Cb)
	e.reconCr = frame.InterpolateLazy(recon.Cr)
}

// analyzeIntraMB transforms, quantises and reconstructs the six intra
// blocks of MB (mbx, mby), leaving the levels — and the per-block AC-coded
// flags, so the write phase never re-scans the coefficients — in r.
func (e *Encoder) analyzeIntraMB(src, recon *frame.Frame, mbx, mby int, r *mbResult) {
	r.mode = mbIntra
	r.four = false
	r.points = 0
	x, y := 16*mbx, 16*mby
	var cur, rec dct.Block
	code := func(p, rp *frame.Plane, bx, by int, levels *dct.Block) bool {
		loadBlock(&cur, p, bx, by)
		encodeIntraBlock(levels, &cur, e.curQp)
		reconIntraBlock(&rec, levels, e.curQp)
		storeBlock(rp, bx, by, &rec)
		return acCoded(levels)
	}
	for i, off := range lumaBlockOffsets {
		r.coded[i] = code(src.Y, recon.Y, x+off[0], y+off[1], &r.levels[i])
	}
	r.coded[4] = code(src.Cb, recon.Cb, 8*mbx, 8*mby, &r.levels[4])
	r.coded[5] = code(src.Cr, recon.Cr, 8*mbx, 8*mby, &r.levels[5])
}

// writeIntraMB serialises the six intra blocks analysed into r. DC is an
// 8-bit FLC and AC are TCOEF events behind a coded flag, mirroring the
// H.263 INTRADC + TCOEF structure. The AC-coded flags were computed during
// analysis (r.coded).
func (e *Encoder) writeIntraMB(r *mbResult) {
	for i := range r.levels {
		levels := &r.levels[i]
		e.sw.Bits(uint64(levels[0]), 8)
		if r.coded[i] {
			e.sw.Flag(sctxACFlag, true)
			ac := *levels
			ac[0] = 0
			writeCoeffs(e.sw, &ac)
		} else {
			e.sw.Flag(sctxACFlag, false)
		}
	}
}

// analyzeInterMB performs motion estimation, mode decision, residual
// coding and reconstruction for one P-frame macroblock, recording the
// outcome in r. It must observe only the left/up-left/up/up-right
// neighbours of curField (the wavefront invariant parallel.go schedules
// around) and may write solely to its own MB region of recon, its own
// curField entry, and r. The caller supplies a per-worker scratch Input
// (in), reused across macroblocks so the search problem never allocates.
func (e *Encoder) analyzeInterMB(s search.Searcher, in *search.Input, src, recon *frame.Frame, curField *mvfield.Field, mbx, mby int, r *mbResult) {
	x, y := 16*mbx, 16*mby
	*in = search.Input{
		Cur: src.Y, Ref: e.recon.Y, RefI: e.reconY,
		BX: x, BY: y, W: 16, H: 16,
		Range: e.cfg.SearchRange, Qp: e.curQp,
		CurField: curField, PrevField: e.prevField,
		MBX: mbx, MBY: mby,
		Seed:            e.curSeed,
		PixelDecimation: e.cfg.PixelDecimation,
	}
	res := s.Search(in)

	// Mode decision (TMN-style): intra wins when the block's internal
	// variation is clearly below the best matching error.
	intraSAD := metrics.IntraSAD(src.Y, x, y, 16, 16)
	if intraSAD < res.SAD-e.cfg.IntraBias {
		e.analyzeIntraMB(src, recon, mbx, mby, r)
		r.points = res.Points
		curField.Set(mbx, mby, mvfield.Zero)
		return
	}

	mv := res.MV
	pts := res.Points

	// Advanced prediction: refine one vector per 8×8 luma block around
	// the macroblock vector and take the four-vector mode when the summed
	// matching error wins by the configured bias.
	if e.cfg.AdvancedPrediction {
		var subMV [4]mvfield.MV
		sum8 := 0
		for i, off := range lumaBlockOffsets {
			// The macroblock search result is already extracted, so the
			// scratch Input is free to describe the 8×8 sub-problems.
			*in = search.Input{
				Cur: src.Y, Ref: e.recon.Y, RefI: e.reconY,
				BX: x + off[0], BY: y + off[1], W: 8, H: 8,
				Range: e.cfg.SearchRange, Qp: e.curQp,
				PixelDecimation: e.cfg.PixelDecimation,
			}
			smv, ssad, spts := refineSubBlock(in, mv)
			subMV[i], pts = smv, pts+spts
			sum8 += ssad
		}
		if sum8 < res.SAD-e.cfg.Inter4VBias {
			e.analyzeInter4VMB(src, recon, mbx, mby, subMV, r)
			r.points = pts
			curField.Set(mbx, mby, avgMV(subMV))
			return
		}
	}

	cmv := chromaMV(mv)

	// Transform and quantise all six blocks first so the skip decision
	// can see the coded-block pattern.
	var lumaPred [4]dct.Block
	var cur dct.Block
	for i, off := range lumaBlockOffsets {
		loadBlock(&cur, src.Y, x+off[0], y+off[1])
		predBlock(&lumaPred[i], e.reconY, x+off[0], y+off[1], mv)
		r.coded[i] = encodeInterBlock(&r.levels[i], &cur, &lumaPred[i], e.curQp)
	}
	var cbPred, crPred dct.Block
	cx, cy := 8*mbx, 8*mby
	loadBlock(&cur, src.Cb, cx, cy)
	predBlock(&cbPred, e.reconCb, cx, cy, cmv)
	r.coded[4] = encodeInterBlock(&r.levels[4], &cur, &cbPred, e.curQp)
	loadBlock(&cur, src.Cr, cx, cy)
	predBlock(&crPred, e.reconCr, cx, cy, cmv)
	r.coded[5] = encodeInterBlock(&r.levels[5], &cur, &crPred, e.curQp)

	anyCoded := false
	for _, c := range r.coded {
		anyCoded = anyCoded || c
	}

	r.points = pts
	r.four = false
	r.mv = mv
	if mv == mvfield.Zero && !anyCoded {
		r.mode = mbSkip
	} else {
		r.mode = mbInter
	}

	// Reconstruction: coded blocks run dequant + inverse DCT + add; an
	// uncoded block's reconstruction IS its prediction, so it stores
	// directly without the inverse-transform round trip.
	var rec dct.Block
	for i, off := range lumaBlockOffsets {
		if r.mode == mbInter && r.coded[i] {
			reconInterBlock(&rec, &lumaPred[i], &r.levels[i], true, e.curQp)
			storeBlock(recon.Y, x+off[0], y+off[1], &rec)
		} else {
			storeBlock(recon.Y, x+off[0], y+off[1], &lumaPred[i])
		}
	}
	if r.mode == mbInter && r.coded[4] {
		reconInterBlock(&rec, &cbPred, &r.levels[4], true, e.curQp)
		storeBlock(recon.Cb, cx, cy, &rec)
	} else {
		storeBlock(recon.Cb, cx, cy, &cbPred)
	}
	if r.mode == mbInter && r.coded[5] {
		reconInterBlock(&rec, &crPred, &r.levels[5], true, e.curQp)
		storeBlock(recon.Cr, cx, cy, &rec)
	} else {
		storeBlock(recon.Cr, cx, cy, &crPred)
	}

	curField.Set(mbx, mby, r.mv)
}

// writeInterMB serialises one analysed P-frame macroblock. The median MV
// predictor reads only causal (left/up/up-right) field entries, whose
// values are final after analysis, so the emitted symbols match the
// seed's interleaved encoder exactly.
func (e *Encoder) writeInterMB(r *mbResult, curField *mvfield.Field, mbx, mby int) {
	switch r.mode {
	case mbSkip:
		e.sw.Flag(sctxCOD, true)
		return
	case mbIntra:
		e.sw.Flag(sctxCOD, false) // coded
		e.sw.Flag(sctxMode, true) // intra
		e.writeIntraMB(r)
		return
	}
	e.sw.Flag(sctxCOD, false)      // coded
	e.sw.Flag(sctxMode, false)     // inter
	e.sw.Flag(sctxInter4V, r.four) // one or four vectors
	pred := curField.MedianPredictor(mbx, mby)
	if r.four {
		for _, mv := range r.subMV {
			d := mv.Sub(pred)
			e.sw.MVD(int32(d.X), int32(d.Y))
		}
	} else {
		d := r.mv.Sub(pred)
		e.sw.MVD(int32(d.X), int32(d.Y))
	}
	for _, c := range r.coded {
		e.sw.Flag(sctxCBP, c)
	}
	for i := range r.levels {
		if r.coded[i] {
			writeCoeffs(e.sw, &r.levels[i])
		}
	}
}

// EncodeSequence encodes frames with cfg and returns the statistics and
// the finalised bitstream. With cfg.Pipeline set it drives the
// cross-frame pipeline (pipeline.go); the output is byte-identical either
// way.
func EncodeSequence(cfg Config, frames []*frame.Frame) (*SequenceStats, []byte, error) {
	if len(frames) == 0 {
		return nil, nil, fmt.Errorf("codec: no frames to encode")
	}
	if cfg.Pipeline {
		p := NewPipeline(cfg)
		for i, f := range frames {
			if err := p.EncodeFrame(f); err != nil {
				p.Flush() // drain the writer goroutine before bailing
				return nil, nil, fmt.Errorf("codec: frame %d: %w", i, err)
			}
		}
		return p.Flush()
	}
	e := NewEncoder(cfg)
	for i, f := range frames {
		if _, err := e.EncodeFrame(f); err != nil {
			return nil, nil, fmt.Errorf("codec: frame %d: %w", i, err)
		}
	}
	return e.Stats(), e.Bitstream(), nil
}
