package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/video"
)

func TestArithmeticRoundTripAllProfiles(t *testing.T) {
	for _, p := range video.Profiles {
		frames := video.Generate(p, frame.SQCIF, 4, 1)
		enc := NewEncoder(Config{Qp: 12, Entropy: EntropyArith})
		var recons []*frame.Frame
		for _, f := range frames {
			if _, err := enc.EncodeFrame(f); err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			recons = append(recons, enc.Reconstruction())
		}
		bs := enc.Bitstream()
		dec, err := NewDecoder(bs)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if dec.EntropyMode() != EntropyArith {
			t.Fatalf("%v: stream mode = %v", p, dec.EntropyMode())
		}
		decoded, err := dec.DecodeAll()
		if err != nil {
			t.Fatalf("%v: decode: %v", p, err)
		}
		if len(decoded) != len(frames) {
			t.Fatalf("%v: decoded %d frames, want %d", p, len(decoded), len(frames))
		}
		for i := range decoded {
			if !decoded[i].Equal(recons[i]) {
				t.Fatalf("%v: frame %d mismatch in arithmetic mode", p, i)
			}
		}
	}
}

func TestArithmeticReconstructionIdenticalToExpGolomb(t *testing.T) {
	// The entropy backend must not change the reconstruction, only the
	// stream size: both modes code identical levels and vectors.
	frames := video.Generate(video.Carphone, frame.SQCIF, 4, 3)
	encE := NewEncoder(Config{Qp: 16})
	encA := NewEncoder(Config{Qp: 16, Entropy: EntropyArith})
	for _, f := range frames {
		if _, err := encE.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		if _, err := encA.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		if !encE.Reconstruction().Equal(encA.Reconstruction()) {
			t.Fatal("reconstructions diverge between entropy modes")
		}
	}
}

func TestArithmeticCompressesBetterThanExpGolomb(t *testing.T) {
	// Adaptive coding must beat the static codes on real content — this
	// is the point of the Annex-E-style mode.
	for _, p := range []video.Profile{video.Carphone, video.Foreman} {
		frames := video.Generate(p, frame.SQCIF, 6, 5)
		_, bsE, err := EncodeSequence(Config{Qp: 10}, frames)
		if err != nil {
			t.Fatal(err)
		}
		_, bsA, err := EncodeSequence(Config{Qp: 10, Entropy: EntropyArith}, frames)
		if err != nil {
			t.Fatal(err)
		}
		if len(bsA) >= len(bsE) {
			t.Fatalf("%v: arithmetic %d bytes >= exp-golomb %d bytes", p, len(bsA), len(bsE))
		}
		t.Logf("%v: exp-golomb %d bytes, arithmetic %d bytes (%.1f%% smaller)",
			p, len(bsE), len(bsA), 100*(1-float64(len(bsA))/float64(len(bsE))))
	}
}

func TestEncoderFinalisedByBitstream(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 2, 1)
	for _, mode := range []EntropyMode{EntropyExpGolomb, EntropyArith} {
		enc := NewEncoder(Config{Qp: 16, Entropy: mode})
		if _, err := enc.EncodeFrame(frames[0]); err != nil {
			t.Fatal(err)
		}
		a := enc.Bitstream()
		b := enc.Bitstream() // idempotent
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("mode %v: unstable bitstream", mode)
		}
		if _, err := enc.EncodeFrame(frames[1]); err == nil {
			t.Fatalf("mode %v: EncodeFrame accepted after finalise", mode)
		}
	}
}

func TestEmptyEncoderBitstream(t *testing.T) {
	enc := NewEncoder(Config{Qp: 16})
	if bs := enc.Bitstream(); len(bs) != 0 {
		t.Fatalf("empty encoder produced %d bytes", len(bs))
	}
}

func TestArithmeticTruncationDetected(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 3, 1)
	_, bs, err := EncodeSequence(Config{Qp: 8, Entropy: EntropyArith}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bs[:len(bs)/3]); err == nil {
		t.Fatal("deeply truncated arithmetic stream accepted")
	}
}

func TestEntropyModeString(t *testing.T) {
	if EntropyExpGolomb.String() != "expgolomb" || EntropyArith.String() != "arith" {
		t.Fatal("entropy mode names wrong")
	}
}
