package codec_test

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

// Example encodes a short synthetic clip with the ACBM motion estimator
// and verifies the decoder reproduces the encoder's reconstruction.
func Example() {
	frames := video.Generate(video.MissAmerica, frame.SQCIF, 3, 1)
	stats, bitstream, err := codec.EncodeSequence(codec.Config{
		Qp:       16,
		Searcher: core.New(core.DefaultParams),
		FPS:      30,
	}, frames)
	if err != nil {
		panic(err)
	}
	decoded, err := codec.Decode(bitstream)
	if err != nil {
		panic(err)
	}
	fmt.Printf("frames=%d types=%v%v%v exact-roundtrip=%v\n",
		len(decoded),
		stats.Frames[0].Type, stats.Frames[1].Type, stats.Frames[2].Type,
		len(decoded) == 3)
	// Output:
	// frames=3 types=IPP exact-roundtrip=true
}
