package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/video"
)

// Failure injection: the decoder must reject or survive arbitrary
// corruption without panicking, for both entropy backends. This is the
// deterministic stand-in for a fuzzer.

func mutateAndDecode(t *testing.T, bs []byte, seed uint64) {
	t.Helper()
	s := seed | 1
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 2685821657736338717
	}
	for i := 0; i < 300; i++ {
		kind := next() % 3
		corrupt := make([]byte, len(bs))
		copy(corrupt, bs)
		switch kind {
		case 0: // single bit flip
			pos := int(next() % uint64(len(corrupt)))
			corrupt[pos] ^= byte(1 << (next() % 8))
		case 1: // truncate
			corrupt = corrupt[:int(next()%uint64(len(corrupt)))]
		case 2: // byte splice
			pos := int(next() % uint64(len(corrupt)))
			corrupt[pos] = byte(next())
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on mutation %d (kind %d): %v", i, kind, r)
				}
			}()
			frames, err := Decode(corrupt)
			// Either an error or some decoded frames is acceptable; a
			// panic or unbounded output is not.
			if err == nil && len(frames) > 10 {
				t.Fatalf("mutation %d decoded %d frames from a 3-frame stream", i, len(frames))
			}
		}()
	}
}

func TestDecoderSurvivesCorruptionExpGolomb(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 3, 1)
	_, bs, err := EncodeSequence(Config{Qp: 16}, frames)
	if err != nil {
		t.Fatal(err)
	}
	mutateAndDecode(t, bs, 1)
}

func TestDecoderSurvivesCorruptionArith(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 3, 1)
	_, bs, err := EncodeSequence(Config{Qp: 16, Entropy: EntropyArith}, frames)
	if err != nil {
		t.Fatal(err)
	}
	mutateAndDecode(t, bs, 2)
}

func TestDecoderSurvivesRandomGarbage(t *testing.T) {
	s := uint64(99)
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 2685821657736338717
	}
	for i := 0; i < 200; i++ {
		n := int(next() % 512)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(next())
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on garbage %d: %v", i, r)
				}
			}()
			_, _ = Decode(data)
		}()
	}
}

func TestDecoderSurvivesValidHeaderGarbageBody(t *testing.T) {
	// A correct sequence header followed by noise exercises the MB parse
	// paths with maximally confusing input.
	frames := video.Generate(video.Foreman, frame.SQCIF, 2, 1)
	for _, mode := range []EntropyMode{EntropyExpGolomb, EntropyArith} {
		_, bs, err := EncodeSequence(Config{Qp: 16, Entropy: mode}, frames)
		if err != nil {
			t.Fatal(err)
		}
		s := uint64(7)
		for i := 0; i < 100; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			data := make([]byte, len(bs))
			copy(data, bs[:8]) // keep header bytes
			for j := 8; j < len(data); j++ {
				s = s*6364136223846793005 + 1442695040888963407
				data[j] = byte(s >> 33)
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("mode %v: panicked on garbage body %d: %v", mode, i, r)
					}
				}()
				_, _ = Decode(data)
			}()
		}
	}
}
