package codec

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/frame"
)

// goldenFrames builds a fixed synthetic input that depends only on this
// function (not on the scene engine), so the hashes below pin the
// bitstream *format*: any unintended change to the DCT, quantiser,
// entropy layer or syntax ordering breaks these tests loudly.
func goldenFrames() []*frame.Frame {
	mk := func(phase int) *frame.Frame {
		f := frame.NewFrame(frame.SQCIF)
		for y := 0; y < f.Y.H; y++ {
			for x := 0; x < f.Y.W; x++ {
				f.Y.Set(x, y, uint8((x*3+y*5+phase*7)%251))
			}
		}
		for y := 0; y < f.Cb.H; y++ {
			for x := 0; x < f.Cb.W; x++ {
				f.Cb.Set(x, y, uint8(120+(x+phase)%16))
				f.Cr.Set(x, y, uint8(136-(y+phase)%16))
			}
		}
		return f
	}
	return []*frame.Frame{mk(0), mk(1), mk(2)}
}

// Golden digests. If a change is *intentional* (a deliberate format
// revision), update these values and note the format break in the README.
const (
	goldenExpGolomb = "56e88c9fa05c261072ab8fbb477a6cd8db9947983fc2679a5e7e2c289dae1e93"
	goldenArith     = "819a219500fdcabddd4f62b00e3a0bd66902d00ccdd4c73502890d633251f547"
)

func TestGoldenBitstreamExpGolomb(t *testing.T) {
	_, bs, err := EncodeSequence(Config{Qp: 12}, goldenFrames())
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(bs)
	if got := hex.EncodeToString(sum[:]); got != goldenExpGolomb {
		t.Fatalf("exp-golomb bitstream digest changed:\n got  %s\n want %s\n"+
			"(format change? update the golden value only if intentional)", got, goldenExpGolomb)
	}
}

func TestGoldenBitstreamArith(t *testing.T) {
	_, bs, err := EncodeSequence(Config{Qp: 12, Entropy: EntropyArith}, goldenFrames())
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(bs)
	if got := hex.EncodeToString(sum[:]); got != goldenArith {
		t.Fatalf("arithmetic bitstream digest changed:\n got  %s\n want %s", got, goldenArith)
	}
}

func TestGoldenStreamsDecode(t *testing.T) {
	for _, mode := range []EntropyMode{EntropyExpGolomb, EntropyArith} {
		_, bs, err := EncodeSequence(Config{Qp: 12, Entropy: mode}, goldenFrames())
		if err != nil {
			t.Fatal(err)
		}
		frames, err := Decode(bs)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(frames) != 3 {
			t.Fatalf("mode %v: decoded %d frames", mode, len(frames))
		}
	}
}
