package codec

import (
	"fmt"

	"repro/internal/dct"
	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/search"
)

// Four-vector (advanced prediction) inter macroblocks: one motion vector
// per 8×8 luma block, following H.263 Annex F's motion model (without
// OBMC). The chroma vector derives from the rounded average of the four
// luma vectors, and the macroblock contributes that average to the motion
// field used for prediction — the encoder and decoder share these rules.

// refineSubBlock finds an 8×8 vector by a short integer-pel descent from
// the macroblock vector followed by a half-pel ring, mirroring Annex F
// encoders that only refine around the 16×16 result.
func refineSubBlock(in *search.Input, start mvfield.MV) (mvfield.MV, int, int) {
	best := in.ClampMV(start)
	bestSAD := in.SAD(best)
	pts := 1
	visited := map[mvfield.MV]bool{best: true}
	for step := 0; step < 2; step++ {
		improved := false
		for _, d := range [4]mvfield.MV{{X: 2}, {X: -2}, {Y: 2}, {Y: -2}} {
			mv := best.Add(d)
			if visited[mv] || !in.Legal(mv) || mv.Linf() > 2*in.Range {
				continue
			}
			visited[mv] = true
			pts++
			if s := in.SAD(mv); s < bestSAD {
				best, bestSAD, improved = mv, s, true
			}
		}
		if !improved {
			break
		}
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			mv := best.Add(mvfield.MV{X: dx, Y: dy})
			if visited[mv] || !in.Legal(mv) {
				continue
			}
			visited[mv] = true
			pts++
			if s := in.SAD(mv); s < bestSAD {
				best, bestSAD = mv, s
			}
		}
	}
	return best, bestSAD, pts
}

// avgMV is the rounded (away from zero) component-wise average of the
// four sub-block vectors; it feeds both the chroma derivation and the
// motion field entry.
func avgMV(mvs [4]mvfield.MV) mvfield.MV {
	div4 := func(v int) int {
		switch {
		case v > 0:
			return (v + 2) / 4
		case v < 0:
			return -((-v + 2) / 4)
		}
		return 0
	}
	var sx, sy int
	for _, m := range mvs {
		sx += m.X
		sy += m.Y
	}
	return mvfield.MV{X: div4(sx), Y: div4(sy)}
}

// codeInter4VMB serialises and reconstructs a four-vector macroblock. The
// COD/mode/inter4v flags are written here.
func (e *Encoder) codeInter4VMB(src, recon *frame.Frame, curField *mvfield.Field, mbx, mby int, subMV [4]mvfield.MV) {
	x, y := 16*mbx, 16*mby
	cx, cy := 8*mbx, 8*mby
	e.sw.Flag(sctxCOD, false)    // coded
	e.sw.Flag(sctxMode, false)   // inter
	e.sw.Flag(sctxInter4V, true) // four vectors

	pred := curField.MedianPredictor(mbx, mby)
	for _, mv := range subMV {
		d := mv.Sub(pred)
		e.sw.SE(sctxMVX, int32(d.X))
		e.sw.SE(sctxMVY, int32(d.Y))
	}

	avg := avgMV(subMV)
	cmv := chromaMV(avg)

	var lumaLv, lumaPred [4]dct.Block
	var coded [6]bool
	var cur dct.Block
	for i, off := range lumaBlockOffsets {
		loadBlock(&cur, src.Y, x+off[0], y+off[1])
		predBlock(&lumaPred[i], e.reconY, x+off[0], y+off[1], subMV[i])
		coded[i] = encodeInterBlock(&lumaLv[i], &cur, &lumaPred[i], e.curQp)
	}
	var cbLv, crLv, cbPred, crPred dct.Block
	loadBlock(&cur, src.Cb, cx, cy)
	predBlock(&cbPred, e.reconCb, cx, cy, cmv)
	coded[4] = encodeInterBlock(&cbLv, &cur, &cbPred, e.curQp)
	loadBlock(&cur, src.Cr, cx, cy)
	predBlock(&crPred, e.reconCr, cx, cy, cmv)
	coded[5] = encodeInterBlock(&crLv, &cur, &crPred, e.curQp)

	for _, c := range coded {
		e.sw.Flag(sctxCBP, c)
	}
	var rec dct.Block
	for i, off := range lumaBlockOffsets {
		if coded[i] {
			writeCoeffs(e.sw, &lumaLv[i])
		}
		reconInterBlock(&rec, &lumaPred[i], &lumaLv[i], coded[i], e.curQp)
		storeBlock(recon.Y, x+off[0], y+off[1], &rec)
	}
	if coded[4] {
		writeCoeffs(e.sw, &cbLv)
	}
	reconInterBlock(&rec, &cbPred, &cbLv, coded[4], e.curQp)
	storeBlock(recon.Cb, cx, cy, &rec)
	if coded[5] {
		writeCoeffs(e.sw, &crLv)
	}
	reconInterBlock(&rec, &crPred, &crLv, coded[5], e.curQp)
	storeBlock(recon.Cr, cx, cy, &rec)

	curField.Set(mbx, mby, avg)
}

// decodeInter4VMB mirrors codeInter4VMB after the inter4v flag has been
// consumed.
func (d *Decoder) decodeInter4VMB(recon *frame.Frame, curField *mvfield.Field, qp, mbx, mby int) error {
	x, y := 16*mbx, 16*mby
	cx, cy := 8*mbx, 8*mby
	pred := curField.MedianPredictor(mbx, mby)
	var subMV [4]mvfield.MV
	for i := range subMV {
		dx, err := d.sr.SE(sctxMVX)
		if err != nil {
			return err
		}
		dy, err := d.sr.SE(sctxMVY)
		if err != nil {
			return err
		}
		subMV[i] = pred.Add(mvfield.MV{X: int(dx), Y: int(dy)})
	}
	var coded [6]bool
	for i := range coded {
		var err error
		coded[i], err = d.sr.Flag(sctxCBP)
		if err != nil {
			return err
		}
	}
	avg := avgMV(subMV)
	cmv := chromaMV(avg)
	var levels, pred8, rec dct.Block
	for i, off := range lumaBlockOffsets {
		levels = dct.Block{}
		if coded[i] {
			if err := readCoeffs(d.sr, &levels); err != nil {
				return fmt.Errorf("codec: 4v luma block %d: %w", i, err)
			}
		}
		predBlock(&pred8, d.reconY, x+off[0], y+off[1], subMV[i])
		reconInterBlock(&rec, &pred8, &levels, coded[i], qp)
		storeBlock(recon.Y, x+off[0], y+off[1], &rec)
	}
	levels = dct.Block{}
	if coded[4] {
		if err := readCoeffs(d.sr, &levels); err != nil {
			return err
		}
	}
	predBlock(&pred8, d.reconCb, cx, cy, cmv)
	reconInterBlock(&rec, &pred8, &levels, coded[4], qp)
	storeBlock(recon.Cb, cx, cy, &rec)
	levels = dct.Block{}
	if coded[5] {
		if err := readCoeffs(d.sr, &levels); err != nil {
			return err
		}
	}
	predBlock(&pred8, d.reconCr, cx, cy, cmv)
	reconInterBlock(&rec, &pred8, &levels, coded[5], qp)
	storeBlock(recon.Cr, cx, cy, &rec)

	curField.Set(mbx, mby, avg)
	return nil
}
