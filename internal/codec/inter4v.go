package codec

import (
	"fmt"

	"repro/internal/dct"
	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/search"
)

// Four-vector (advanced prediction) inter macroblocks: one motion vector
// per 8×8 luma block, following H.263 Annex F's motion model (without
// OBMC). The chroma vector derives from the rounded average of the four
// luma vectors, and the macroblock contributes that average to the motion
// field used for prediction — the encoder and decoder share these rules.

// refineSubBlock finds an 8×8 vector by a short integer-pel descent from
// the macroblock vector followed by a half-pel ring, mirroring Annex F
// encoders that only refine around the 16×16 result.
func refineSubBlock(in *search.Input, start mvfield.MV) (mvfield.MV, int, int) {
	best := in.ClampMV(start)
	bestSAD := in.SAD(best)
	pts := 1
	// The probe budget is ≤ 17 positions: dedup with a linear scan over a
	// stack-allocated list instead of a per-block map.
	var visited [18]mvfield.MV
	visited[0] = best
	nv := 1
	seen := func(mv mvfield.MV) bool {
		for i := 0; i < nv; i++ {
			if visited[i] == mv {
				return true
			}
		}
		return false
	}
	for step := 0; step < 2; step++ {
		improved := false
		for _, d := range [4]mvfield.MV{{X: 2}, {X: -2}, {Y: 2}, {Y: -2}} {
			mv := best.Add(d)
			if seen(mv) || !in.Legal(mv) || mv.Linf() > 2*in.Range {
				continue
			}
			visited[nv] = mv
			nv++
			pts++
			if s := in.SADCapped(mv, bestSAD); s < bestSAD {
				best, bestSAD, improved = mv, s, true
			}
		}
		if !improved {
			break
		}
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			mv := best.Add(mvfield.MV{X: dx, Y: dy})
			if seen(mv) || !in.Legal(mv) {
				continue
			}
			visited[nv] = mv
			nv++
			pts++
			if s := in.SADCapped(mv, bestSAD); s < bestSAD {
				best, bestSAD = mv, s
			}
		}
	}
	return best, bestSAD, pts
}

// avgMV is the rounded (away from zero) component-wise average of the
// four sub-block vectors; it feeds both the chroma derivation and the
// motion field entry.
func avgMV(mvs [4]mvfield.MV) mvfield.MV {
	div4 := func(v int) int {
		switch {
		case v > 0:
			return (v + 2) / 4
		case v < 0:
			return -((-v + 2) / 4)
		}
		return 0
	}
	var sx, sy int
	for _, m := range mvs {
		sx += m.X
		sy += m.Y
	}
	return mvfield.MV{X: div4(sx), Y: div4(sy)}
}

// analyzeInter4VMB transforms, quantises and reconstructs a four-vector
// macroblock, recording levels and coded flags in r for the write phase
// (writeInterMB emits the flags, the four MVDs against the shared median
// predictor, the CBP and the coefficients).
func (e *Encoder) analyzeInter4VMB(src, recon *frame.Frame, mbx, mby int, subMV [4]mvfield.MV, r *mbResult) {
	x, y := 16*mbx, 16*mby
	cx, cy := 8*mbx, 8*mby
	r.mode = mbInter
	r.four = true
	r.subMV = subMV

	avg := avgMV(subMV)
	cmv := chromaMV(avg)

	var lumaPred [4]dct.Block
	var cur dct.Block
	for i, off := range lumaBlockOffsets {
		loadBlock(&cur, src.Y, x+off[0], y+off[1])
		predBlock(&lumaPred[i], e.reconY, x+off[0], y+off[1], subMV[i])
		r.coded[i] = encodeInterBlock(&r.levels[i], &cur, &lumaPred[i], e.curQp)
	}
	var cbPred, crPred dct.Block
	loadBlock(&cur, src.Cb, cx, cy)
	predBlock(&cbPred, e.reconCb, cx, cy, cmv)
	r.coded[4] = encodeInterBlock(&r.levels[4], &cur, &cbPred, e.curQp)
	loadBlock(&cur, src.Cr, cx, cy)
	predBlock(&crPred, e.reconCr, cx, cy, cmv)
	r.coded[5] = encodeInterBlock(&r.levels[5], &cur, &crPred, e.curQp)

	// As in analyzeInterMB, uncoded blocks reconstruct to their prediction
	// and store it directly, skipping the inverse transform round trip.
	var rec dct.Block
	for i, off := range lumaBlockOffsets {
		if r.coded[i] {
			reconInterBlock(&rec, &lumaPred[i], &r.levels[i], true, e.curQp)
			storeBlock(recon.Y, x+off[0], y+off[1], &rec)
		} else {
			storeBlock(recon.Y, x+off[0], y+off[1], &lumaPred[i])
		}
	}
	if r.coded[4] {
		reconInterBlock(&rec, &cbPred, &r.levels[4], true, e.curQp)
		storeBlock(recon.Cb, cx, cy, &rec)
	} else {
		storeBlock(recon.Cb, cx, cy, &cbPred)
	}
	if r.coded[5] {
		reconInterBlock(&rec, &crPred, &r.levels[5], true, e.curQp)
		storeBlock(recon.Cr, cx, cy, &rec)
	} else {
		storeBlock(recon.Cr, cx, cy, &crPred)
	}
}

// decodeInter4VMB mirrors codeInter4VMB after the inter4v flag has been
// consumed.
func (d *Decoder) decodeInter4VMB(recon *frame.Frame, curField *mvfield.Field, qp, mbx, mby int) error {
	x, y := 16*mbx, 16*mby
	cx, cy := 8*mbx, 8*mby
	pred := curField.MedianPredictor(mbx, mby)
	var subMV [4]mvfield.MV
	for i := range subMV {
		dx, err := d.sr.SE(sctxMVX)
		if err != nil {
			return err
		}
		dy, err := d.sr.SE(sctxMVY)
		if err != nil {
			return err
		}
		subMV[i] = pred.Add(mvfield.MV{X: int(dx), Y: int(dy)})
	}
	var coded [6]bool
	for i := range coded {
		var err error
		coded[i], err = d.sr.Flag(sctxCBP)
		if err != nil {
			return err
		}
	}
	avg := avgMV(subMV)
	cmv := chromaMV(avg)
	var levels, pred8, rec dct.Block
	codeBlock := func(p *frame.Plane, bx, by int, ip *frame.Interpolated, bmv mvfield.MV, c bool) error {
		if !c { // uncoded: reconstruction = prediction, copied as bytes
			storePredBlock(p, bx, by, ip, bmv)
			return nil
		}
		if err := readCoeffs(d.sr, &levels); err != nil {
			return err
		}
		predBlock(&pred8, ip, bx, by, bmv)
		reconInterBlock(&rec, &pred8, &levels, true, qp)
		storeBlock(p, bx, by, &rec)
		return nil
	}
	for i, off := range lumaBlockOffsets {
		levels = dct.Block{}
		if err := codeBlock(recon.Y, x+off[0], y+off[1], d.reconY, subMV[i], coded[i]); err != nil {
			return fmt.Errorf("codec: 4v luma block %d: %w", i, err)
		}
	}
	levels = dct.Block{}
	if err := codeBlock(recon.Cb, cx, cy, d.reconCb, cmv, coded[4]); err != nil {
		return err
	}
	levels = dct.Block{}
	if err := codeBlock(recon.Cr, cx, cy, d.reconCr, cmv, coded[5]); err != nil {
		return err
	}

	curField.Set(mbx, mby, avg)
	return nil
}
