package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/video"
)

func TestAvgMV(t *testing.T) {
	cases := []struct {
		in   [4]mvfield.MV
		want mvfield.MV
	}{
		{[4]mvfield.MV{{}, {}, {}, {}}, mvfield.Zero},
		{[4]mvfield.MV{{X: 4, Y: 4}, {X: 4, Y: 4}, {X: 4, Y: 4}, {X: 4, Y: 4}}, mvfield.MV{X: 4, Y: 4}},
		{[4]mvfield.MV{{X: 1}, {X: 1}, {X: 1}, {X: 1}}, mvfield.MV{X: 1}},
		// Sum 1: (1+2)/4 truncates to 0 — sub-half-pel averages round in.
		{[4]mvfield.MV{{X: 1}, {}, {}, {}}, mvfield.Zero},
		{[4]mvfield.MV{{X: -4, Y: 8}, {X: -4, Y: 8}, {X: -4, Y: 8}, {X: -4, Y: 8}}, mvfield.MV{X: -4, Y: 8}},
	}
	for _, c := range cases {
		if got := avgMV(c.in); got != c.want {
			t.Errorf("avgMV(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Sign symmetry.
	a := avgMV([4]mvfield.MV{{X: 5}, {X: 5}, {X: 6}, {X: 6}})
	b := avgMV([4]mvfield.MV{{X: -5}, {X: -5}, {X: -6}, {X: -6}})
	if a.X != -b.X {
		t.Fatalf("avgMV not sign-symmetric: %v vs %v", a, b)
	}
}

func TestAdvancedPredictionRoundTrip(t *testing.T) {
	// Table has divergent motion inside MBs (zoom + ball): 4V triggers.
	frames := video.Generate(video.TableTennis, frame.SQCIF, 5, 1)
	for _, mode := range []EntropyMode{EntropyExpGolomb, EntropyArith} {
		enc := NewEncoder(Config{Qp: 8, AdvancedPrediction: true, Entropy: mode})
		var recons []*frame.Frame
		for _, f := range frames {
			if _, err := enc.EncodeFrame(f); err != nil {
				t.Fatal(err)
			}
			recons = append(recons, enc.Reconstruction())
		}
		decoded, err := Decode(enc.Bitstream())
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for i := range decoded {
			if !decoded[i].Equal(recons[i]) {
				t.Fatalf("mode %v: frame %d mismatch with advanced prediction", mode, i)
			}
		}
	}
}

func TestAdvancedPredictionTriggersOnDivergentMotion(t *testing.T) {
	// Build a frame pair where the four quadrants of one MB move in four
	// different directions: the 4V mode must win there.
	ref := frame.NewFrame(frame.SQCIF)
	for y := 0; y < ref.Y.H; y++ {
		for x := 0; x < ref.Y.W; x++ {
			ref.Y.Set(x, y, uint8((x*7+y*13)%241))
		}
	}
	cur := ref.Clone()
	// Quadrants of the MB at (32..48, 32..48) shifted differently.
	shifts := [4][2]int{{2, 0}, {-2, 0}, {0, 2}, {0, -2}}
	for i, off := range lumaBlockOffsets {
		dx, dy := shifts[i][0], shifts[i][1]
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				sx, sy := 32+off[0]+x-dx, 32+off[1]+y-dy
				cur.Y.Set(32+off[0]+x, 32+off[1]+y, ref.Y.AtClamped(sx, sy))
			}
		}
	}
	enc := NewEncoder(Config{Qp: 8, AdvancedPrediction: true})
	if _, err := enc.EncodeFrame(ref); err != nil {
		t.Fatal(err)
	}
	fs, err := enc.EncodeFrame(cur)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Inter4VMBs == 0 {
		t.Fatal("no four-vector macroblocks on divergent motion")
	}
	decoded, err := Decode(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	if !decoded[1].Equal(enc.Reconstruction()) {
		t.Fatal("4V reconstruction mismatch")
	}
}

func TestAdvancedPredictionDisabledNeverUses4V(t *testing.T) {
	frames := video.Generate(video.TableTennis, frame.SQCIF, 4, 1)
	stats, _, err := EncodeSequence(Config{Qp: 8}, frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range stats.Frames {
		if f.Inter4VMBs != 0 {
			t.Fatalf("frame %d used 4V without AdvancedPrediction", i)
		}
	}
}

func TestAdvancedPredictionImprovesRDOnDivergentContent(t *testing.T) {
	// On the zooming Table sequence the 4V mode should not lose quality
	// and should reduce residual rate at equal Qp (or at worst tie).
	frames := video.Generate(video.TableTennis, frame.QCIF, 10, 3)
	plain, _, err := EncodeSequence(Config{Qp: 10}, frames)
	if err != nil {
		t.Fatal(err)
	}
	ap, _, err := EncodeSequence(Config{Qp: 10, AdvancedPrediction: true}, frames)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for _, f := range ap.Frames {
		used += f.Inter4VMBs
	}
	if used == 0 {
		t.Skip("4V never chosen on this content at this Qp")
	}
	if ap.AvgPSNRY() < plain.AvgPSNRY()-0.05 {
		t.Fatalf("4V lost quality: %.2f vs %.2f", ap.AvgPSNRY(), plain.AvgPSNRY())
	}
	if ap.BitrateKbps() > plain.BitrateKbps()*1.02 {
		t.Fatalf("4V raised rate: %.1f vs %.1f", ap.BitrateKbps(), plain.BitrateKbps())
	}
}
