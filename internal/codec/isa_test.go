package codec

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestBitstreamIdenticalAcrossKernelISAs is the end-to-end form of the
// dispatch invariant: which SAD kernel tier is active (scalar, SWAR, or
// the amd64 assembly) must never change a single encoded bit. Encodes
// the mode-diverse parallel test sequence under every registered ISA —
// serially and with the wavefront at Workers=4 — and requires the exact
// bitstream the scalar tier produces.
func TestBitstreamIdenticalAcrossKernelISAs(t *testing.T) {
	frames := parallelFrames(4)
	encode := func(workers int) []byte {
		acbm := core.New(core.DefaultParams)
		cfg := Config{Qp: 14, AdvancedPrediction: true, IntraPeriod: 3,
			Searcher: acbm, Workers: workers}
		_, bs, err := EncodeSequence(cfg, frames)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return bs
	}

	restore, err := metrics.SetKernelISA("scalar")
	if err != nil {
		t.Fatal(err)
	}
	ref := encode(1)
	restore()

	for _, isa := range metrics.KernelISAs() {
		if isa == "scalar" {
			continue
		}
		restore, err := metrics.SetKernelISA(isa)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			if bs := encode(workers); !bytes.Equal(bs, ref) {
				t.Errorf("isa=%s workers=%d: bitstream differs from scalar serial reference (%d vs %d bytes)",
					isa, workers, len(bs), len(ref))
			}
		}
		restore()
	}
}
