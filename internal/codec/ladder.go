package codec

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/search"
)

// Simulcast ladder: one source ingested once, encoded into N renditions
// (rungs) halving in each dimension, with each lower rung's motion search
// seeded from the rung above's scaled motion field (search.LayerSeed on
// the PBM predictor path).
//
// Topology: one goroutine per rung, chained by capacity-1 channels. Rung
// r's goroutine analyses frame n, then downscales its source frame
// (frame.DownscaleFrame, pooled output) and hands {frame, motion field}
// to rung r+1 — so rung r+1 analyses frame n while rung r is already on
// frame n+1: a one-frame lag between adjacent rungs, pipelined exactly
// like the phase overlap of PR 2. The hand-off rides the frame hand-off
// point: EncodeFrameSeeded returns only after the frame's analysis is
// complete, so the field a lower rung receives is final — never a
// partially computed wavefront.
//
// Determinism: a rung's seed for frame n is a pure function of the rung
// above's (worker-invariant) field for frame n, and seeds are evaluated
// as ordinary predictor probes. By induction every rung's bitstream is
// byte-identical across Workers × Pipeline × Pool, and — the seeds only
// ever influence which motion vectors are *chosen*, never how they are
// *coded* — each rung is independently decodable by the unmodified
// decoder (TestLadderBitIdenticalAcrossModes pins both).

// RungSpec is one rendition of a ladder: its frame format and, when
// non-zero, the bitrate target its frame-lag rate controller steers to.
type RungSpec struct {
	Size       frame.Size
	TargetKbps float64
}

// ParseLadderSpec parses the "WxH@kbps,WxH@kbps,..." vocabulary shared by
// /encode?ladder= and the CLI -ladder flags. The @kbps part is optional
// (constant-quantiser rung). The parsed chain is validated: top rung
// first, each rung exactly half the previous in both dimensions, all
// macroblock-aligned.
func ParseLadderSpec(s string) ([]RungSpec, error) {
	var specs []RungSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		dim, kbpsStr, hasKbps := strings.Cut(part, "@")
		wStr, hStr, ok := strings.Cut(dim, "x")
		if !ok {
			return nil, fmt.Errorf("codec: bad ladder rung %q (want WxH or WxH@kbps)", part)
		}
		w, err1 := strconv.Atoi(wStr)
		h, err2 := strconv.Atoi(hStr)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("codec: bad ladder rung size %q", dim)
		}
		spec := RungSpec{Size: frame.Size{W: w, H: h}}
		if hasKbps {
			kbps, err := strconv.ParseFloat(kbpsStr, 64)
			if err != nil || kbps < 0 {
				return nil, fmt.Errorf("codec: bad ladder rung bitrate %q", kbpsStr)
			}
			spec.TargetKbps = kbps
		}
		specs = append(specs, spec)
	}
	if err := ValidateLadder(specs); err != nil {
		return nil, err
	}
	return specs, nil
}

// ValidateLadder checks a rung chain: at least one rung, every size
// divisible into 16×16 macroblocks, and each rung exactly half the
// previous in both dimensions (the 2:1 relation frame.Downscale and
// search.FieldSeed assume).
func ValidateLadder(specs []RungSpec) error {
	if len(specs) == 0 {
		return fmt.Errorf("codec: empty ladder")
	}
	for i, spec := range specs {
		if err := validateSize(spec.Size); err != nil {
			return fmt.Errorf("codec: ladder rung %d: %w", i, err)
		}
		if i > 0 {
			up := specs[i-1].Size
			if spec.Size.W != up.W/2 || spec.Size.H != up.H/2 {
				return fmt.Errorf("codec: ladder rung %d (%v) is not half of rung %d (%v)",
					i, spec.Size, i-1, up)
			}
		}
	}
	return nil
}

// Rung pairs a rendition's frame format with its complete encoder
// configuration. Each rung needs its OWN Searcher instance (never share
// one across rungs — stateful searchers like the budgeted ACBM servo
// would race); Workers/Pool/Pipeline/TargetKbps compose per rung exactly
// as for a single EncodeStream.
type Rung struct {
	Size frame.Size
	Cfg  Config
}

// ladderItem is one frame travelling down the rung chain: the rung's
// (downscaled, pooled) source and the motion field the rung above found
// for it — nil for intra frames, where the lower rung simply falls back
// to its ordinary predictor set.
type ladderItem struct {
	f    *frame.Frame
	seed *mvfield.Field
}

type ladderRung struct {
	size  frame.Size
	es    *EncodeStream
	in    chan ladderItem
	done  chan struct{}
	stats *SequenceStats
}

// LadderStream is the streaming simulcast session: source frames go in
// one at a time, and every rung's packets come out through emit, tagged
// with the rung index. Per-rung packets arrive in order; the interleaving
// across rungs is arbitrary (emit is serialised internally, so it is
// never called concurrently).
//
// The source frame passed to EncodeFrame is read by rung 0's analysis,
// its PSNR statistics and the rung-1 downscale; it must not be mutated
// until Close returns.
type LadderStream struct {
	rungs []*ladderRung
	last  int

	emitFn func(rung int, p Packet) error
	emitMu sync.Mutex

	errMu  sync.Mutex
	err    error
	closed bool
	frames int
}

// NewLadderStream starts one encode session per rung and the goroutine
// chain connecting them. The caller must call Close to drain the chain
// and collect per-rung statistics.
func NewLadderStream(rungs []Rung, emit func(rung int, p Packet) error) (*LadderStream, error) {
	specs := make([]RungSpec, len(rungs))
	for i, r := range rungs {
		specs[i] = RungSpec{Size: r.Size, TargetKbps: r.Cfg.TargetKbps}
	}
	if err := ValidateLadder(specs); err != nil {
		return nil, err
	}
	l := &LadderStream{emitFn: emit, last: len(rungs) - 1}
	for i, r := range rungs {
		rung := &ladderRung{
			size: r.Size,
			in:   make(chan ladderItem, 1), // one-frame lag between adjacent rungs
			done: make(chan struct{}),
		}
		idx := i
		rung.es = NewEncodeStream(r.Cfg, func(p Packet) error {
			l.emitMu.Lock()
			defer l.emitMu.Unlock()
			return l.emitFn(idx, p)
		})
		l.rungs = append(l.rungs, rung)
	}
	for i := range l.rungs {
		go l.runRung(i)
	}
	return l, nil
}

// Err returns the first error any rung hit, or nil.
func (l *LadderStream) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

func (l *LadderStream) setErr(err error) {
	l.errMu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.errMu.Unlock()
}

// EncodeFrame feeds one source frame (the top rung's format) into the
// ladder. It returns once the top rung can accept the frame; encoding
// proceeds down the chain asynchronously.
func (l *LadderStream) EncodeFrame(f *frame.Frame) error {
	if l.closed {
		return fmt.Errorf("codec: ladder stream closed")
	}
	if err := l.Err(); err != nil {
		return err
	}
	if f.Size() != l.rungs[0].size {
		return fmt.Errorf("codec: ladder source is %v, top rung wants %v", f.Size(), l.rungs[0].size)
	}
	l.rungs[0].in <- ladderItem{f: f}
	l.frames++
	return nil
}

// runRung is rung r's encode loop: seed from the upper field, encode,
// downscale and hand down, recycle the previous downscaled source.
func (l *LadderStream) runRung(r int) {
	rung := l.rungs[r]
	// prev is the rung's previous (downscaled, ladder-owned) source frame.
	// Its last readers are its own packet write (PSNR) and the downscale
	// for the rung below — both complete by the time the *next* frame's
	// EncodeFrameSeeded returns (the pipeline writer accepts frame n+1's
	// job only after finishing frame n), so it is recycled one frame late.
	// Rung 0 sources are caller-owned and never released here.
	var prev *frame.Frame
	poisoned := false
	for item := range rung.in {
		if poisoned || l.Err() != nil {
			poisoned = true
			if r > 0 {
				item.f.Release()
			}
			continue
		}
		var seed search.LayerSeed
		if item.seed != nil {
			seed = &search.FieldSeed{Field: item.seed, Shift: 1}
		}
		field, err := rung.es.EncodeFrameSeeded(item.f, seed)
		if err != nil {
			l.setErr(fmt.Errorf("codec: ladder rung %d: %w", r, err))
			poisoned = true
			if r > 0 {
				item.f.Release()
			}
			continue
		}
		if r < l.last {
			down := frame.DownscaleFrame(item.f)
			l.rungs[r+1].in <- ladderItem{f: down, seed: field}
		}
		if r > 0 {
			prev.Release()
			prev = item.f
		}
	}
	if r < l.last {
		close(l.rungs[r+1].in)
	}
	stats, err := rung.es.Close()
	rung.stats = stats
	if err != nil {
		l.setErr(fmt.Errorf("codec: ladder rung %d: %w", r, err))
	}
	if r > 0 {
		// Safe only now: Close drained the rung's pipeline writer, so the
		// last frame's packet (and its PSNR read) is done.
		prev.Release()
	}
	close(rung.done)
}

// Close drains the rung chain and returns per-rung sequence statistics
// (indexed like the rung specs) plus the first error any rung hit.
// Idempotent.
func (l *LadderStream) Close() ([]*SequenceStats, error) {
	if !l.closed {
		l.closed = true
		close(l.rungs[0].in)
		for _, rung := range l.rungs {
			<-rung.done
		}
	}
	stats := make([]*SequenceStats, len(l.rungs))
	for i, rung := range l.rungs {
		stats[i] = rung.stats
	}
	return stats, l.Err()
}

// EncodeLadder is the batch form: frames in, one packet list per rung
// out (packets[r][i] is rung r's packet i, header included), plus
// per-rung statistics. The workhorse behind `vcodec encode -ladder`, the
// ladder experiment and the smoke test's offline pin.
func EncodeLadder(rungs []Rung, frames []*frame.Frame) ([][][]byte, []*SequenceStats, error) {
	if len(frames) == 0 {
		return nil, nil, fmt.Errorf("codec: no frames to encode")
	}
	packets := make([][][]byte, len(rungs))
	l, err := NewLadderStream(rungs, func(r int, p Packet) error {
		packets[r] = append(packets[r], p.Data)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, f := range frames {
		if err := l.EncodeFrame(f); err != nil {
			l.Close()
			return nil, nil, fmt.Errorf("codec: ladder frame %d: %w", i, err)
		}
	}
	stats, err := l.Close()
	if err != nil {
		return nil, nil, err
	}
	return packets, stats, nil
}
