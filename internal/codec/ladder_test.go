package codec

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// ladderTestRungs builds a 3-rung 64x64 → 32x32 → 16x16 chain with fresh
// searcher instances per rung (the Rung contract).
func ladderTestRungs(mut func(*Config)) []Rung {
	sizes := []frame.Size{{W: 64, H: 64}, {W: 32, H: 32}, {W: 16, H: 16}}
	rungs := make([]Rung, len(sizes))
	for i, sz := range sizes {
		cfg := Config{Qp: 14, SearchRange: 7, IntraPeriod: 4, Searcher: &search.PBM{}}
		if mut != nil {
			mut(&cfg)
		}
		rungs[i] = Rung{Size: sz, Cfg: cfg}
	}
	return rungs
}

// TestLadderBitIdenticalAcrossModes pins the ladder determinism contract:
// every rung's packet stream is byte-identical whether the rungs analyse
// serially, on private wavefront workers, with the cross-frame pipeline,
// or on a shared cross-session pool — and each rung decodes independently
// with the unmodified packet decoder.
func TestLadderBitIdenticalAcrossModes(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.Size{W: 64, H: 64}, 8, 5)

	pool := NewPool(3)
	defer pool.Close()
	modes := []struct {
		name string
		mut  func(*Config)
	}{
		{"serial", nil},
		{"workers", func(c *Config) { c.Workers = 4 }},
		{"pipeline", func(c *Config) { c.Pipeline = true }},
		{"pool", func(c *Config) { c.Pool = pool; c.Pipeline = true }},
	}

	var base [][][]byte
	for _, m := range modes {
		packets, stats, err := EncodeLadder(ladderTestRungs(m.mut), frames)
		if err != nil {
			t.Fatalf("%s: EncodeLadder: %v", m.name, err)
		}
		if len(packets) != 3 {
			t.Fatalf("%s: %d rungs, want 3", m.name, len(packets))
		}
		for r, pkts := range packets {
			if len(pkts) != len(frames)+1 {
				t.Fatalf("%s rung %d: %d packets, want %d", m.name, r, len(pkts), len(frames)+1)
			}
			if stats[r] == nil || len(stats[r].Frames) != len(frames) {
				t.Fatalf("%s rung %d: missing stats", m.name, r)
			}
		}
		if base == nil {
			base = packets
			continue
		}
		for r := range packets {
			for i := range packets[r] {
				if !bytes.Equal(packets[r][i], base[r][i]) {
					t.Fatalf("%s rung %d packet %d differs from serial", m.name, r, i)
				}
			}
		}
	}

	// Every rung decodes independently with the unmodified decoder.
	wantSizes := []frame.Size{{W: 64, H: 64}, {W: 32, H: 32}, {W: 16, H: 16}}
	for r, pkts := range base {
		dec, err := NewPacketDecoder(pkts[0])
		if err != nil {
			t.Fatalf("rung %d: header: %v", r, err)
		}
		if dec.Size() != wantSizes[r] {
			t.Fatalf("rung %d: decodes as %v, want %v", r, dec.Size(), wantSizes[r])
		}
		for i, pkt := range pkts[1:] {
			f, err := dec.DecodePacket(pkt)
			if err != nil {
				t.Fatalf("rung %d frame %d: decode: %v", r, i, err)
			}
			if f.Size() != wantSizes[r] {
				t.Fatalf("rung %d frame %d: size %v", r, i, f.Size())
			}
		}
	}
}

// TestLadderSingleRungMatchesEncodePackets: a 1-rung ladder is exactly
// the plain packet encode — no seed ever reaches rung 0, so the ladder
// path cannot disturb single-rendition output.
func TestLadderSingleRungMatchesEncodePackets(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 6, 9)
	cfg := Config{Qp: 16, SearchRange: 7, Searcher: &search.PBM{}}
	want, _, err := EncodePackets(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := EncodeLadder([]Rung{{Size: frame.SQCIF, Cfg: Config{Qp: 16, SearchRange: 7, Searcher: &search.PBM{}}}}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != len(want) {
		t.Fatalf("packet count %d vs %d", len(got[0]), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[0][i], want[i]) {
			t.Fatalf("packet %d differs", i)
		}
	}
}

// TestLadderSeedingSavesPoints: on content with a spatially diverse
// motion field (TableTennis pans and zooms, so temporal neighbourhoods
// hold distinct vectors) the seeded lower rung must evaluate fewer
// candidates per macroblock than the same rung encoded independently —
// ≤ 4 seeds replace ≤ 9 temporal probes.
func TestLadderSeedingSavesPoints(t *testing.T) {
	top := frame.Size{W: 128, H: 128}
	frames := video.Generate(video.TableTennis, top, 10, 5)
	rungs := []Rung{
		{Size: top, Cfg: Config{Qp: 14, SearchRange: 15, Searcher: &search.PBM{}}},
		{Size: frame.Size{W: 64, H: 64}, Cfg: Config{Qp: 14, SearchRange: 15, Searcher: &search.PBM{}}},
	}
	_, stats, err := EncodeLadder(rungs, frames)
	if err != nil {
		t.Fatal(err)
	}
	// Independent encode of the same downscaled content.
	down1 := make([]*frame.Frame, len(frames))
	for i, f := range frames {
		down1[i] = frame.DownscaleFrame(f)
	}
	_, solo, err := EncodePackets(Config{Qp: 14, SearchRange: 15, Searcher: &search.PBM{}}, down1)
	if err != nil {
		t.Fatal(err)
	}
	if ladder, ind := stats[1].AvgSearchPointsPerMB(), solo.AvgSearchPointsPerMB(); ladder >= ind {
		t.Errorf("seeded rung 1 points/MB = %.2f, independent = %.2f (want saving)", ladder, ind)
	}
}

func TestParseLadderSpec(t *testing.T) {
	specs, err := ParseLadderSpec("64x64@300,32x32@120,16x16")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].TargetKbps != 300 || specs[2].TargetKbps != 0 {
		t.Fatalf("parsed %+v", specs)
	}
	if specs[1].Size != (frame.Size{W: 32, H: 32}) {
		t.Fatalf("rung 1 size %v", specs[1].Size)
	}
	for _, bad := range []string{
		"",
		"64x64,48x48",   // not a 2:1 chain
		"64x64,32x32@x", // bad bitrate
		"65x64",         // not macroblock-aligned
		"64",            // not WxH
	} {
		if _, err := ParseLadderSpec(bad); err == nil {
			t.Errorf("ParseLadderSpec(%q) accepted", bad)
		}
	}
}

// TestLadderPacketFraming round-trips rung-tagged records.
func TestLadderPacketFraming(t *testing.T) {
	var buf bytes.Buffer
	pw := NewLadderPacketWriter(&buf)
	type rec struct {
		rung, index int
		data        []byte
	}
	recs := []rec{
		{0, 0, []byte("hdr0")}, {1, 0, []byte("hdr1")},
		{0, 1, []byte("f0r0")}, {1, 1, []byte{}}, {0, 2, []byte("f1r0")},
	}
	for _, r := range recs {
		if err := pw.WritePacket(r.rung, r.index, r.data); err != nil {
			t.Fatal(err)
		}
	}
	pr := NewLadderPacketReader(&buf)
	for i, want := range recs {
		rung, idx, data, err := pr.ReadPacket()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rung != want.rung || idx != want.index || !bytes.Equal(data, want.data) {
			t.Fatalf("record %d: got (%d,%d,%q)", i, rung, idx, data)
		}
	}
	if _, _, _, err := pr.ReadPacket(); err == nil {
		t.Fatal("expected EOF")
	}
	// A corrupt rung index is rejected, not trusted.
	var b2 bytes.Buffer
	NewLadderPacketWriter(&b2).WritePacket(maxLadderRung+1, 0, nil)
	if _, _, _, err := NewLadderPacketReader(&b2).ReadPacket(); err == nil {
		t.Fatal("implausible rung accepted")
	}
}

func TestValidateLadder(t *testing.T) {
	ok := []RungSpec{{Size: frame.Size{W: 128, H: 96}}, {Size: frame.Size{W: 64, H: 48}}}
	if err := ValidateLadder(ok); err != nil {
		t.Fatal(err)
	}
	if err := ValidateLadder(nil); err == nil {
		t.Error("empty ladder accepted")
	}
}

// TestLadderStreamSizeMismatch: a source that is not the top rung's
// format fails fast instead of poisoning the chain mid-flight.
func TestLadderStreamSizeMismatch(t *testing.T) {
	l, err := NewLadderStream(ladderTestRungs(nil), func(int, Packet) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	bad := frame.NewFrame(frame.SQCIF)
	if err := l.EncodeFrame(bad); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// TestLadderEmitErrorPoisons: an emit failure on any rung surfaces on
// EncodeFrame/Close and the chain still drains cleanly.
func TestLadderEmitErrorPoisons(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.Size{W: 64, H: 64}, 6, 3)
	boom := fmt.Errorf("sink full")
	n := 0
	l, err := NewLadderStream(ladderTestRungs(nil), func(r int, p Packet) error {
		n++
		if n > 4 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var encErr error
	for _, f := range frames {
		if encErr = l.EncodeFrame(f); encErr != nil {
			break
		}
	}
	_, closeErr := l.Close()
	if closeErr == nil {
		t.Fatal("emit error did not surface")
	}
}
