package codec

import "time"

// FrameObserver receives per-frame phase timings as an encode progresses.
// It is the codec-side attachment point for the serving layer's flight
// recorder (internal/obs): the codec reports what happened and when,
// never asks the observer anything, so attaching or detaching an
// observer cannot change a single output bit — the byte-identity tests
// pin this with a recorder attached in every Workers/Pipeline/Pool mode.
//
// Concurrency: FrameAnalyzed is called on the session goroutine at the
// end of each frame's analysis. FrameWritten is called wherever phase 2
// runs — the session goroutine in serial encodes, the writer goroutine
// in pipelined ones — so implementations must tolerate the two methods
// racing for different frames. Both are called at phase boundaries that
// already pay a time.Since, so a nil-cheap implementation keeps the
// overhead below measurement noise (the bench-smoke guard enforces it).
type FrameObserver interface {
	// FrameAnalyzed reports frame index's phase-1 outcome: analysis wall
	// clock, the summed shared-pool queue wait across the frame's
	// macroblock tasks and the worst single task's wait (both zero
	// outside Pool mode), whether the frame was coded intra, and the
	// quantiser used.
	FrameAnalyzed(index int, wall, queueWait, maxStall time.Duration, intra bool, qp int)
	// FrameWritten reports frame index's phase-2 outcome: entropy-coding
	// wall clock and encoded size in bits.
	FrameWritten(index int, wall time.Duration, bits int)
}

// noteQueueWait accumulates one pool task's queue wait into the current
// frame's counters: the sum, and a CAS-max for the worst single task
// (the preemption-stall signal). Called concurrently by pool workers;
// drained by Swap(0) at the frame's FrameAnalyzed callback.
func (e *Encoder) noteQueueWait(d time.Duration) {
	ns := int64(d)
	e.obsWaitNs.Add(ns)
	for {
		cur := e.obsStallNs.Load()
		if ns <= cur || e.obsStallNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}
