package codec

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/video"
)

// TestObserverByteIdentity is the flight recorder's core invariant:
// attaching an observer (a real obs.FlightRecorder) must not change a
// single output bit in any Workers/Pipeline/Pool mode — the recorder
// observes phase boundaries, it never participates in a decision.
func TestObserverByteIdentity(t *testing.T) {
	frames := parallelFrames(6)
	cfgs := []Config{
		{Qp: 14, AdvancedPrediction: true, IntraPeriod: 3},
		{Qp: 16, TargetKbps: 80, FPS: 30},
	}
	for _, base := range cfgs {
		ref := base
		ref.Workers = 1
		ref.Searcher = core.New(core.DefaultParams)
		_, refBS, err := EncodeSequence(ref, frames)
		if err != nil {
			t.Fatal(err)
		}
		pool := NewPool(4)
		modes := []struct {
			name string
			mut  func(*Config)
		}{
			{"serial", func(c *Config) { c.Workers = 1 }},
			{"workers", func(c *Config) { c.Workers = 4 }},
			{"pipeline", func(c *Config) { c.Workers = 4; c.Pipeline = true }},
			{"pool", func(c *Config) { c.Pool = pool }},
			{"pool+pipeline", func(c *Config) { c.Pool = pool; c.Pipeline = true }},
		}
		for _, m := range modes {
			rec := obs.NewFlightRecorder("t", obs.Meta{}, 0)
			cfg := base
			cfg.Searcher = core.New(core.DefaultParams)
			cfg.Observer = rec
			m.mut(&cfg)
			stats, bs, err := EncodeSequence(cfg, frames)
			if err != nil {
				t.Fatalf("%s: %v", m.name, err)
			}
			if !bytes.Equal(bs, refBS) {
				t.Errorf("cfg=%+v %s: bitstream differs with observer attached (%d vs %d bytes)",
					base, m.name, len(bs), len(refBS))
			}
			// The recorder saw every frame, with the true per-frame sizes.
			snap := rec.Snapshot()
			if snap.Frames != len(frames) {
				t.Errorf("%s: recorder saw %d frames, want %d", m.name, snap.Frames, len(frames))
			}
			for i, ev := range snap.Events {
				if ev.Bits != stats.Frames[i].Bits || ev.Qp != stats.Frames[i].Qp {
					t.Errorf("%s frame %d: recorder bits/qp %d/%d, stats %d/%d",
						m.name, i, ev.Bits, ev.Qp, stats.Frames[i].Bits, stats.Frames[i].Qp)
				}
				if (ev.Index == 0) != ev.Intra && base.IntraPeriod == 0 {
					t.Errorf("%s frame %d: intra flag %v", m.name, i, ev.Intra)
				}
			}
		}
		pool.Close()
	}
}

// TestObserverQueueWaitOnPool checks the shared-pool queue-wait channel:
// pool-mode frames report a queue wait (tasks always spend some
// measurable time between submit and pickup) and private-worker frames
// report exactly zero (the signal only exists under a shared pool).
func TestObserverQueueWaitOnPool(t *testing.T) {
	frames := parallelFrames(3)
	pool := NewPool(2)
	defer pool.Close()

	rec := obs.NewFlightRecorder("pool", obs.Meta{}, 0)
	_, _, err := EncodeSequence(Config{
		Qp: 16, Searcher: core.New(core.DefaultParams), Pool: pool, Observer: rec,
	}, frames)
	if err != nil {
		t.Fatal(err)
	}
	var sawWait bool
	for _, ev := range rec.Snapshot().Events {
		if ev.QueueWaitMs > 0 {
			sawWait = true
		}
		if ev.StallMs > ev.QueueWaitMs {
			t.Errorf("frame %d: max stall %v exceeds summed wait %v", ev.Index, ev.StallMs, ev.QueueWaitMs)
		}
	}
	if !sawWait {
		t.Error("pool-mode encode reported zero queue wait on every frame")
	}

	rec = obs.NewFlightRecorder("private", obs.Meta{}, 0)
	_, _, err = EncodeSequence(Config{
		Qp: 16, Searcher: core.New(core.DefaultParams), Workers: 2, Observer: rec,
	}, frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range rec.Snapshot().Events {
		if ev.QueueWaitMs != 0 || ev.StallMs != 0 {
			t.Errorf("private-worker frame %d reports pool wait %v/%v", ev.Index, ev.QueueWaitMs, ev.StallMs)
		}
	}
}

// TestRecorderOverheadGuard bounds the flight recorder's cost: the
// best-of-3 per-frame encode time with a live recorder attached must be
// within 1ms/frame of the nil-observer baseline. The recorder does a
// handful of atomic stores per frame (~tens of ns), so this absolute
// bound holds with orders of magnitude to spare while staying immune to
// scheduler noise; it exists to catch an accidental allocation or lock
// creeping into the observe path. Run by make bench-smoke.
func TestRecorderOverheadGuard(t *testing.T) {
	if raceEnabled {
		// The race detector slows the encoder ~20x and adds several ms of
		// per-run jitter, swamping the 1ms absolute bound. The guard is a
		// perf check, not a correctness check — TestObserverByteIdentity
		// and TestRecorderConcurrent cover the raced paths.
		t.Skip("wall-clock overhead bound is noise under -race")
	}
	frames := video.Generate(video.Foreman, frame.SQCIF, 8, 7)
	encode := func(ob FrameObserver) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, _, err := EncodeSequence(Config{
				Qp: 16, Searcher: core.New(core.DefaultParams), Workers: 2, Observer: ob,
			}, frames); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best / time.Duration(len(frames))
	}
	baseline := encode(nil)
	recorded := encode(obs.NewFlightRecorder("guard", obs.Meta{}, 0))
	if overhead := recorded - baseline; overhead > time.Millisecond {
		t.Errorf("recorder overhead %v/frame exceeds 1ms bound (nil %v, recorder %v)",
			overhead, baseline, recorded)
	}
}
