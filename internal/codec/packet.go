package codec

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/entropy"
	"repro/internal/frame"
)

// Packetized transport: each frame is an independently parseable unit so
// a lossy channel can drop frames without desynchronising the parser. The
// decoder conceals a lost packet by repeating the reference frame and
// recovers from the drift at the next intra frame — the error-resilience
// mode a "variable bandwidth channel" deployment (§5) needs.
//
// Packet 0 is the sequence header (size + entropy mode); packet i+1
// carries frame i. In arithmetic mode each packet has its own coder state
// and contexts, trading a little compression for independence.

// EncodePackets encodes frames as independent packets. It is the batch
// wrapper around EncodeStream, so the full PR 1/PR 2 machinery applies:
// analysis honours Config.Workers (wavefront) or Config.Pool (shared
// pool), and Config.Pipeline overlaps entropy coding of frame n with
// analysis of frame n+1. The packet bytes are identical for every such
// setting (TestPacketsPipelineBitIdentical pins it).
func EncodePackets(cfg Config, frames []*frame.Frame) ([][]byte, *SequenceStats, error) {
	if len(frames) == 0 {
		return nil, nil, fmt.Errorf("codec: no frames to encode")
	}
	if err := validateSize(frames[0].Size()); err != nil {
		return nil, nil, err
	}
	var packets [][]byte
	s := NewEncodeStream(cfg, func(p Packet) error {
		packets = append(packets, p.Data)
		return nil
	})
	for i, f := range frames {
		if err := s.EncodeFrame(f); err != nil {
			s.Close() // drain the writer goroutine before bailing
			return nil, nil, fmt.Errorf("codec: frame %d: %w", i, err)
		}
	}
	stats, err := s.Close()
	if err != nil {
		return nil, nil, err
	}
	return packets, stats, nil
}

// PacketDecoder reconstructs a packetized stream, tolerating lost frame
// packets via concealment.
type PacketDecoder struct {
	d    *Decoder
	mode EntropyMode
}

// NewPacketDecoder parses the sequence header packet.
func NewPacketDecoder(header []byte) (*PacketDecoder, error) {
	r := bitstream.NewReader(header)
	magic, err := r.ReadBits(32)
	if err != nil || magic != Magic {
		return nil, fmt.Errorf("codec: bad packet-stream header")
	}
	cols, err := entropy.ReadUE(r)
	if err != nil {
		return nil, err
	}
	rows, err := entropy.ReadUE(r)
	if err != nil {
		return nil, err
	}
	modeBit, err := r.ReadBits(1)
	if err != nil {
		return nil, err
	}
	if cols == 0 || rows == 0 || cols > 1<<10 || rows > 1<<10 {
		return nil, fmt.Errorf("codec: implausible size %dx%d macroblocks", cols, rows)
	}
	return &PacketDecoder{
		d: &Decoder{
			size: frame.Size{W: 16 * int(cols), H: 16 * int(rows)},
			mode: EntropyMode(modeBit),
		},
		mode: EntropyMode(modeBit),
	}, nil
}

// Size returns the stream's frame format.
func (p *PacketDecoder) Size() frame.Size { return p.d.size }

// DecodePacket reconstructs one frame packet.
func (p *PacketDecoder) DecodePacket(pkt []byte) (*frame.Frame, error) {
	switch p.mode {
	case EntropyArith:
		ar := &arithReader{r: bitstream.NewReader(pkt), data: pkt}
		if err := ar.BeginData(); err != nil {
			return nil, err
		}
		p.d.sr = ar
	default:
		p.d.sr = &egReader{r: bitstream.NewReader(pkt)}
	}
	// Frame packets carry the frame header directly (no continuation
	// flag): mark one frame as pending.
	p.d.pending = true
	p.d.eos = false
	return p.d.DecodeFrame()
}

// ConcealLoss handles a dropped frame packet: the previous reconstruction
// is repeated (simple temporal concealment). Returns nil before the first
// successfully decoded frame.
func (p *PacketDecoder) ConcealLoss() *frame.Frame {
	if p.d.recon == nil {
		return nil
	}
	// The repeated frame also becomes the reference for what follows,
	// which is exactly the drift a real decoder suffers.
	return p.d.recon.Clone()
}
