package codec

import (
	"fmt"
	"io"

	"repro/internal/bitstream"
	"repro/internal/entropy"
	"repro/internal/frame"
)

// Packetized transport: each frame is an independently parseable unit so
// a lossy channel can drop frames without desynchronising the parser. The
// decoder conceals a lost packet by repeating the reference frame and
// recovers from the drift at the next intra frame — the error-resilience
// mode a "variable bandwidth channel" deployment (§5) needs.
//
// Packet 0 is the sequence header (size + entropy mode); packet i+1
// carries frame i. In arithmetic mode each packet has its own coder state
// and contexts, trading a little compression for independence.

// EncodePackets encodes frames as independent packets. It is the batch
// wrapper around EncodeStream, so the full PR 1/PR 2 machinery applies:
// analysis honours Config.Workers (wavefront) or Config.Pool (shared
// pool), and Config.Pipeline overlaps entropy coding of frame n with
// analysis of frame n+1. The packet bytes are identical for every such
// setting (TestPacketsPipelineBitIdentical pins it).
func EncodePackets(cfg Config, frames []*frame.Frame) ([][]byte, *SequenceStats, error) {
	if len(frames) == 0 {
		return nil, nil, fmt.Errorf("codec: no frames to encode")
	}
	if err := validateSize(frames[0].Size()); err != nil {
		return nil, nil, err
	}
	var packets [][]byte
	s := NewEncodeStream(cfg, func(p Packet) error {
		packets = append(packets, p.Data)
		return nil
	})
	for i, f := range frames {
		if err := s.EncodeFrame(f); err != nil {
			s.Close() // drain the writer goroutine before bailing
			return nil, nil, fmt.Errorf("codec: frame %d: %w", i, err)
		}
	}
	stats, err := s.Close()
	if err != nil {
		return nil, nil, err
	}
	return packets, stats, nil
}

// PacketDecoder reconstructs a packetized stream, tolerating lost frame
// packets via concealment.
type PacketDecoder struct {
	d    *Decoder
	mode EntropyMode
}

// NewPacketDecoder parses the sequence header packet.
func NewPacketDecoder(header []byte) (*PacketDecoder, error) {
	r := bitstream.NewReader(header)
	magic, err := r.ReadBits(32)
	if err != nil || magic != Magic {
		return nil, fmt.Errorf("codec: bad packet-stream header")
	}
	cols, err := entropy.ReadUE(r)
	if err != nil {
		return nil, err
	}
	rows, err := entropy.ReadUE(r)
	if err != nil {
		return nil, err
	}
	modeBit, err := r.ReadBits(1)
	if err != nil {
		return nil, err
	}
	if cols == 0 || rows == 0 || cols > 1<<10 || rows > 1<<10 {
		return nil, fmt.Errorf("codec: implausible size %dx%d macroblocks", cols, rows)
	}
	return &PacketDecoder{
		d: &Decoder{
			size: frame.Size{W: 16 * int(cols), H: 16 * int(rows)},
			mode: EntropyMode(modeBit),
		},
		mode: EntropyMode(modeBit),
	}, nil
}

// Size returns the stream's frame format.
func (p *PacketDecoder) Size() frame.Size { return p.d.size }

// DecodePacket reconstructs one frame packet.
func (p *PacketDecoder) DecodePacket(pkt []byte) (*frame.Frame, error) {
	switch p.mode {
	case EntropyArith:
		ar := &arithReader{r: bitstream.NewReader(pkt), data: pkt}
		if err := ar.BeginData(); err != nil {
			return nil, err
		}
		p.d.sr = ar
	default:
		p.d.sr = &egReader{r: bitstream.NewReader(pkt)}
	}
	// Frame packets carry the frame header directly (no continuation
	// flag): mark one frame as pending.
	p.d.pending = true
	p.d.eos = false
	return p.d.DecodeFrame()
}

// ConcealLoss handles a dropped frame packet: the previous reconstruction
// is repeated (simple temporal concealment). Returns nil before the first
// successfully decoded frame.
func (p *PacketDecoder) ConcealLoss() *frame.Frame {
	if p.d.recon == nil {
		return nil
	}
	// The repeated frame also becomes the reference for what follows,
	// which is exactly the drift a real decoder suffers.
	return p.d.recon.Clone()
}

// MaxConcealGap bounds how many consecutive missing frame packets
// DecodePacketStream will conceal for one gap. A larger jump in record
// indices is far more likely a corrupted index varint than a half-minute
// drop burst, and trusting it would clone up to 2^32 concealment frames;
// such records are discarded as corrupt instead.
const MaxConcealGap = 1024

// PacketStreamResult is what DecodePacketStream salvaged from a framed
// packet stream a lossy channel (or a crashed relay) already chewed on.
type PacketStreamResult struct {
	// Frames holds every reconstructed frame, concealed ones included.
	Frames []*frame.Frame
	// Concealed counts frames synthesised for dropped or corrupt frame
	// packets (the previous reconstruction repeated).
	Concealed int
	// Ignored counts records whose indices could not be trusted
	// (duplicate, reordered, or implausibly far ahead) and were discarded.
	Ignored int
	// Truncated is non-nil when the byte stream itself ended mid-record
	// (a cut connection, a corrupt length varint): everything decodable
	// before the damage is in Frames, nothing after it is recoverable —
	// uvarint framing cannot resynchronise past a broken length field.
	Truncated error
}

// DecodePacketStream reconstructs a framed packet stream (PacketWriter
// records) end to end, tolerating the damage a real transport inflicts.
// Fault policy, from outermost layer in:
//
//   - A missing or corrupt header packet is fatal: nothing downstream is
//     decodable without the sequence parameters.
//   - A record framing error mid-stream (truncated final record, corrupt
//     length varint) ends the stream early: the error lands in
//     Truncated, the frames already decoded are returned, and no error
//     is reported — degradation, not failure.
//   - Records with untrustworthy indices (out-of-order, duplicate, or
//     jumping ahead by more than MaxConcealGap) are discarded and
//     counted in Ignored; the record framing is intact, so decoding
//     continues with the next record.
//   - An index gap (packets dropped in transit) or a corrupt payload is
//     concealed by repeating the previous reconstruction. The predictive
//     stream then drifts until the next intra frame resynchronises it —
//     the decoder's recovery guarantee (TestPacketStreamFaultTolerance).
//
// An error is returned only when not a single frame packet could be
// decoded or concealed.
func DecodePacketStream(r io.Reader) (*PacketStreamResult, error) {
	pr := NewPacketReader(r)
	idx, hdr, err := pr.ReadPacket()
	if err != nil {
		return nil, fmt.Errorf("codec: reading header packet: %w", err)
	}
	if idx != 0 {
		return nil, fmt.Errorf("codec: header packet missing (first record has index %d)", idx)
	}
	dec, err := NewPacketDecoder(hdr)
	if err != nil {
		return nil, err
	}
	res := &PacketStreamResult{}
	conceal := func() {
		if f := dec.ConcealLoss(); f != nil {
			res.Frames = append(res.Frames, f)
			res.Concealed++
		}
		// A loss before the first decoded frame has nothing to repeat;
		// the frame is skipped entirely.
	}
	next := 1
	for {
		idx, pkt, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			// The framing itself is damaged; everything beyond this point
			// is unrecoverable, everything before it already decoded.
			res.Truncated = err
			break
		}
		if idx < next || idx-next > MaxConcealGap {
			res.Ignored++
			continue
		}
		for ; next < idx; next++ { // gap: packets dropped in transit
			conceal()
		}
		f, err := dec.DecodePacket(pkt)
		if err != nil { // corrupt payload: treat as lost
			conceal()
		} else {
			res.Frames = append(res.Frames, f)
		}
		next = idx + 1
	}
	if len(res.Frames) == 0 {
		return nil, fmt.Errorf("codec: no decodable frame packets (stream fully lost?)")
	}
	return res, nil
}
