package codec

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/frame"
	"repro/internal/video"
)

// faultClip encodes a small clip with a short GOP so every damage test
// has intra frames (0, 4, 8) to resynchronise at, and returns both the
// packets and the framed byte stream a transport would carry.
func faultClip(t *testing.T) (pkts [][]byte, stream []byte) {
	t.Helper()
	frames := video.Generate(video.Foreman, frame.SQCIF, 12, 2)
	pkts, _, err := EncodePackets(Config{Qp: 10, IntraPeriod: 4}, frames)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	pw := NewPacketWriter(&buf)
	for i, p := range pkts {
		if err := pw.WritePacket(i, p); err != nil {
			t.Fatal(err)
		}
	}
	return pkts, buf.Bytes()
}

// cleanDecode is the loss-free reference reconstruction.
func cleanDecode(t *testing.T, pkts [][]byte) []*frame.Frame {
	t.Helper()
	dec, err := NewPacketDecoder(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*frame.Frame, 0, len(pkts)-1)
	for _, p := range pkts[1:] {
		f, err := dec.DecodePacket(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}

// frameRecord locates the framed record carrying packet index idx inside
// the stream (start offset and length), by re-walking the framing.
func frameRecord(t *testing.T, stream []byte, idx int) (start, length int) {
	t.Helper()
	r := bytes.NewReader(stream)
	pr := NewPacketReader(r)
	off := 0
	for {
		i, data, err := pr.ReadPacket()
		if err != nil {
			t.Fatalf("walking stream: %v", err)
		}
		// Recompute this record's framed length from its payload.
		var hdr bytes.Buffer
		if err := NewPacketWriter(&hdr).WritePacket(i, data); err != nil {
			t.Fatal(err)
		}
		if i == idx {
			return off, hdr.Len()
		}
		off += hdr.Len()
	}
}

func TestPacketReaderTruncatedFinalRecord(t *testing.T) {
	_, stream := faultClip(t)
	// Cut mid-payload of the final record and mid-varint of its header:
	// ReadPacket must fail cleanly (no panic, no silent short read).
	for _, cut := range []int{1, 3, len(stream) / 2} {
		pr := NewPacketReader(bytes.NewReader(stream[:len(stream)-cut]))
		var lastErr error
		for {
			_, _, err := pr.ReadPacket()
			if err != nil {
				lastErr = err
				break
			}
		}
		if lastErr == io.EOF {
			t.Fatalf("cut %d: truncation reported as clean EOF", cut)
		}
	}
}

func TestPacketReaderCorruptLength(t *testing.T) {
	// An overlong uvarint (11 continuation bytes) overflows 64 bits.
	over := bytes.Repeat([]byte{0x80}, 11)
	pr := NewPacketReader(bytes.NewReader(append([]byte{0x00}, over...)))
	if _, _, err := pr.ReadPacket(); err == nil {
		t.Fatal("overlong length varint accepted")
	}
	// An implausibly large length must be rejected before allocation.
	var rec bytes.Buffer
	rec.WriteByte(0x00)                                         // index 0
	rec.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // ~2^48 bytes
	pr = NewPacketReader(bytes.NewReader(rec.Bytes()))
	if _, _, err := pr.ReadPacket(); err == nil {
		t.Fatal("implausible record length accepted")
	}
}

// TestPacketStreamFaultTolerance is the decoder-side contract the
// gateway's chaos scenarios rely on: whatever a transport does to the
// framed stream — truncate the final record, corrupt a length varint
// mid-stream, reorder records, drop records — DecodePacketStream never
// panics, salvages everything decodable, conceals what it can, and
// resynchronises exactly at the next intra frame.
func TestPacketStreamFaultTolerance(t *testing.T) {
	pkts, stream := faultClip(t)
	clean := cleanDecode(t, pkts)

	t.Run("clean", func(t *testing.T) {
		res, err := DecodePacketStream(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		if res.Concealed != 0 || res.Ignored != 0 || res.Truncated != nil {
			t.Fatalf("clean stream reported damage: %+v", res)
		}
		if len(res.Frames) != len(clean) {
			t.Fatalf("%d frames, want %d", len(res.Frames), len(clean))
		}
		for i := range clean {
			if !res.Frames[i].Equal(clean[i]) {
				t.Fatalf("frame %d differs from per-packet decode", i)
			}
		}
	})

	t.Run("truncated-final-record", func(t *testing.T) {
		// Cut mid-payload of the last record: the clip just ends early.
		res, err := DecodePacketStream(bytes.NewReader(stream[:len(stream)-5]))
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated == nil {
			t.Fatal("truncation not reported")
		}
		if len(res.Frames) != len(clean)-1 {
			t.Fatalf("%d frames, want %d", len(res.Frames), len(clean)-1)
		}
		for i := range res.Frames {
			if !res.Frames[i].Equal(clean[i]) {
				t.Fatalf("frame %d differs before the damage", i)
			}
		}
	})

	t.Run("corrupt-length-varint", func(t *testing.T) {
		// Overwrite frame 6's record header with a forever-continuing
		// varint: frames 0..5 survive, the rest is unrecoverable.
		start, _ := frameRecord(t, stream, 7) // record index 7 = frame 6
		damaged := append([]byte(nil), stream[:start]...)
		damaged = append(damaged, bytes.Repeat([]byte{0x80}, 16)...)
		damaged = append(damaged, stream[start:]...)
		res, err := DecodePacketStream(bytes.NewReader(damaged))
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated == nil {
			t.Fatal("corrupt varint not reported as truncation")
		}
		if len(res.Frames) != 6 {
			t.Fatalf("%d frames salvaged, want 6", len(res.Frames))
		}
		for i := range res.Frames {
			if !res.Frames[i].Equal(clean[i]) {
				t.Fatalf("frame %d differs before the damage", i)
			}
		}
	})

	t.Run("out-of-order-index", func(t *testing.T) {
		// Swap the records of frames 1 and 2 (indices 2 and 3): the
		// early-arriving 3 opens a one-frame gap (concealed), the late 2
		// is untrustworthy (ignored), and the intra frame at 4 resyncs.
		s2, l2 := frameRecord(t, stream, 2)
		s3, l3 := frameRecord(t, stream, 3)
		var swapped bytes.Buffer
		swapped.Write(stream[:s2])
		swapped.Write(stream[s3 : s3+l3])
		swapped.Write(stream[s2 : s2+l2])
		swapped.Write(stream[s3+l3:])
		res, err := DecodePacketStream(bytes.NewReader(swapped.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Concealed != 1 || res.Ignored != 1 {
			t.Fatalf("concealed %d ignored %d, want 1 and 1", res.Concealed, res.Ignored)
		}
		if len(res.Frames) != len(clean) {
			t.Fatalf("%d frames, want %d", len(res.Frames), len(clean))
		}
		assertResyncAtIntra(t, res.Frames, clean, 1, 4)
	})

	t.Run("dropped-record", func(t *testing.T) {
		// Remove frame 5's record (index 6) entirely: concealed, drift
		// until the intra frame at 8 restores bit-exact reconstruction.
		s, l := frameRecord(t, stream, 6)
		dropped := append([]byte(nil), stream[:s]...)
		dropped = append(dropped, stream[s+l:]...)
		res, err := DecodePacketStream(bytes.NewReader(dropped))
		if err != nil {
			t.Fatal(err)
		}
		if res.Concealed != 1 {
			t.Fatalf("concealed %d, want 1", res.Concealed)
		}
		if len(res.Frames) != len(clean) {
			t.Fatalf("%d frames, want %d", len(res.Frames), len(clean))
		}
		assertResyncAtIntra(t, res.Frames, clean, 5, 8)
	})
}

// assertResyncAtIntra checks the concealment contract around one damaged
// frame: the damaged frame must differ from the loss-free decode (drift
// is real), and every frame from the next intra on must be bit-exact.
func assertResyncAtIntra(t *testing.T, got, clean []*frame.Frame, damaged, intra int) {
	t.Helper()
	if got[damaged].Equal(clean[damaged]) {
		t.Fatalf("frame %d identical despite damage (test is vacuous)", damaged)
	}
	for i := intra; i < len(clean); i++ {
		if !got[i].Equal(clean[i]) {
			t.Fatalf("frame %d not resynchronised after intra frame %d", i, intra)
		}
	}
}
