package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/video"
)

func TestPacketRoundTripMatchesStreamMode(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 5, 1)
	for _, mode := range []EntropyMode{EntropyExpGolomb, EntropyArith} {
		pkts, stats, err := EncodePackets(Config{Qp: 16, Entropy: mode}, frames)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(pkts) != len(frames)+1 {
			t.Fatalf("mode %v: %d packets, want %d", mode, len(pkts), len(frames)+1)
		}
		if len(stats.Frames) != len(frames) {
			t.Fatalf("mode %v: stats for %d frames", mode, len(stats.Frames))
		}
		dec, err := NewPacketDecoder(pkts[0])
		if err != nil {
			t.Fatal(err)
		}
		if dec.Size() != frame.SQCIF {
			t.Fatalf("mode %v: size %v", mode, dec.Size())
		}
		// Packetized reconstruction must equal the stream-mode encoder's
		// reconstruction (the prediction loop is identical).
		enc := NewEncoder(Config{Qp: 16, Entropy: mode})
		for i, f := range frames {
			if _, err := enc.EncodeFrame(f); err != nil {
				t.Fatal(err)
			}
			got, err := dec.DecodePacket(pkts[i+1])
			if err != nil {
				t.Fatalf("mode %v: packet %d: %v", mode, i, err)
			}
			if !got.Equal(enc.Reconstruction()) {
				t.Fatalf("mode %v: frame %d differs from stream-mode reconstruction", mode, i)
			}
		}
	}
}

func TestPacketLossConcealmentAndRecovery(t *testing.T) {
	// Drop one P-frame packet: quality dips from drift, then a later
	// I-frame (IntraPeriod) must fully resynchronise the decoder.
	frames := video.Generate(video.Foreman, frame.SQCIF, 9, 2)
	pkts, _, err := EncodePackets(Config{Qp: 10, IntraPeriod: 4}, frames)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewPacketDecoder(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewPacketDecoder(pkts[0]) // loss-free reference decode
	if err != nil {
		t.Fatal(err)
	}
	lost := 2 // drop frame 2 (a P-frame; frames 0 and 4 and 8 are intra)
	var psnrLossy, psnrRef []float64
	resyncOK := false
	for i := 1; i < len(pkts); i++ {
		want, err := ref.DecodePacket(pkts[i])
		if err != nil {
			t.Fatal(err)
		}
		var got *frame.Frame
		if i-1 == lost {
			got = dec.ConcealLoss()
			if got == nil {
				t.Fatal("concealment before any frame")
			}
		} else {
			got, err = dec.DecodePacket(pkts[i])
			if err != nil {
				t.Fatalf("packet %d after loss: %v", i, err)
			}
		}
		p1, _ := frame.PSNR(frames[i-1].Y, got.Y)
		p2, _ := frame.PSNR(frames[i-1].Y, want.Y)
		psnrLossy = append(psnrLossy, p1)
		psnrRef = append(psnrRef, p2)
		if i-1 >= 4 && got.Equal(want) {
			resyncOK = true
		}
	}
	// Drift: the frame after the loss must be worse than loss-free.
	if psnrLossy[lost+1] >= psnrRef[lost+1] {
		t.Fatalf("no drift after loss: %.2f vs %.2f", psnrLossy[lost+1], psnrRef[lost+1])
	}
	if !resyncOK {
		t.Fatal("decoder did not resynchronise at the next I-frame")
	}
}

func TestPacketDecoderRejectsBadHeader(t *testing.T) {
	if _, err := NewPacketDecoder([]byte{1, 2, 3, 4, 5, 6}); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := NewPacketDecoder(nil); err == nil {
		t.Fatal("empty header accepted")
	}
}

func TestPacketLossBeforeFirstFrame(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 2, 1)
	pkts, _, err := EncodePackets(Config{Qp: 16}, frames)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewPacketDecoder(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if dec.ConcealLoss() != nil {
		t.Fatal("concealment produced a frame before any decode")
	}
}

func TestPacketModeWithRateControl(t *testing.T) {
	frames := video.Generate(video.TableTennis, frame.SQCIF, 12, 3)
	pkts, stats, err := EncodePackets(Config{Qp: 14, FPS: 30, TargetKbps: 40}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitrateKbps() <= 0 {
		t.Fatal("no rate recorded")
	}
	dec, err := NewPacketDecoder(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pkts); i++ {
		if _, err := dec.DecodePacket(pkts[i]); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
}
