package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Packet framing: the packetized transport needs a container when packets
// travel over a byte stream (an HTTP response body, a file on disk). Each
// record is
//
//	uvarint packet index | uvarint payload length | payload bytes
//
// concatenated with no trailer — streaming-friendly (a consumer can act on
// each record as it arrives) and gap-tolerant (indices are explicit, so a
// file or relay that dropped packets still identifies every survivor and
// the decoder conceals the holes). Index 0 is the sequence header packet;
// frame i travels as index i+1, matching Packet.Index.

// maxFramedPacket caps a record's payload so a corrupt length field
// cannot force a multi-gigabyte allocation.
const maxFramedPacket = 1 << 28

// PacketWriter frames packets onto an io.Writer.
type PacketWriter struct {
	w io.Writer
}

// NewPacketWriter returns a writer framing onto w. Writes are not
// buffered: one WritePacket is at most two Write calls on w, so a
// flushing transport (http.Flusher) can forward each packet immediately.
func NewPacketWriter(w io.Writer) *PacketWriter {
	return &PacketWriter{w: w}
}

// WritePacket appends one framed record.
func (pw *PacketWriter) WritePacket(index int, data []byte) error {
	if index < 0 {
		return fmt.Errorf("codec: negative packet index %d", index)
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(index))
	n += binary.PutUvarint(hdr[n:], uint64(len(data)))
	if _, err := pw.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := pw.w.Write(data)
	return err
}

// PacketReader parses a framed packet stream.
type PacketReader struct {
	br *bufio.Reader
}

// NewPacketReader returns a reader over r.
func NewPacketReader(r io.Reader) *PacketReader {
	return &PacketReader{br: bufio.NewReader(r)}
}

// ReadPacket returns the next record, or io.EOF at a clean end of stream.
func (pr *PacketReader) ReadPacket() (index int, data []byte, err error) {
	idx, err := binary.ReadUvarint(pr.br)
	if err == io.EOF {
		return 0, nil, io.EOF
	}
	if err != nil {
		return 0, nil, fmt.Errorf("codec: reading packet index: %w", err)
	}
	size, err := binary.ReadUvarint(pr.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("codec: reading packet length: %w", err)
	}
	if idx > 1<<32 || size > maxFramedPacket {
		return 0, nil, fmt.Errorf("codec: implausible packet record (index %d, %d bytes)", idx, size)
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(pr.br, data); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("codec: reading packet payload: %w", err)
	}
	return int(idx), data, nil
}

// Ladder framing: a simulcast session interleaves the packet streams of
// its rungs over one byte stream, so each record carries the rung index
// up front:
//
//	uvarint rung | uvarint packet index | uvarint payload length | payload
//
// Per-rung records appear in packet order; the interleaving across rungs
// is arbitrary. Splitting a ladder stream back into per-rung plain packet
// streams is a pure reframing — payloads are identical to what the rung's
// standalone PacketWriter would carry.

// maxLadderRung bounds the rung index a reader trusts: real ladders halve
// per rung, so even 4CIF bottoms out after a handful.
const maxLadderRung = 1 << 10

// LadderPacketWriter frames rung-tagged packets onto an io.Writer. Like
// PacketWriter it never buffers: one record is at most two Write calls.
type LadderPacketWriter struct {
	w io.Writer
}

// NewLadderPacketWriter returns a ladder-framing writer onto w.
func NewLadderPacketWriter(w io.Writer) *LadderPacketWriter {
	return &LadderPacketWriter{w: w}
}

// WritePacket appends one rung-tagged record.
func (pw *LadderPacketWriter) WritePacket(rung, index int, data []byte) error {
	if rung < 0 || index < 0 {
		return fmt.Errorf("codec: negative ladder record coordinates (%d, %d)", rung, index)
	}
	var hdr [3 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(rung))
	n += binary.PutUvarint(hdr[n:], uint64(index))
	n += binary.PutUvarint(hdr[n:], uint64(len(data)))
	if _, err := pw.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := pw.w.Write(data)
	return err
}

// LadderPacketReader parses a ladder-framed packet stream.
type LadderPacketReader struct {
	br *bufio.Reader
}

// NewLadderPacketReader returns a reader over r.
func NewLadderPacketReader(r io.Reader) *LadderPacketReader {
	return &LadderPacketReader{br: bufio.NewReader(r)}
}

// ReadPacket returns the next rung-tagged record, or io.EOF at a clean
// end of stream.
func (pr *LadderPacketReader) ReadPacket() (rung, index int, data []byte, err error) {
	rg, err := binary.ReadUvarint(pr.br)
	if err == io.EOF {
		return 0, 0, nil, io.EOF
	}
	if err != nil {
		return 0, 0, nil, fmt.Errorf("codec: reading ladder rung: %w", err)
	}
	idx, err := binary.ReadUvarint(pr.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, fmt.Errorf("codec: reading ladder packet index: %w", err)
	}
	size, err := binary.ReadUvarint(pr.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, fmt.Errorf("codec: reading ladder packet length: %w", err)
	}
	if rg > maxLadderRung || idx > 1<<32 || size > maxFramedPacket {
		return 0, 0, nil, fmt.Errorf("codec: implausible ladder record (rung %d, index %d, %d bytes)", rg, idx, size)
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(pr.br, data); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, fmt.Errorf("codec: reading ladder packet payload: %w", err)
	}
	return int(rg), int(idx), data, nil
}
