package codec

import (
	"sync"
	"time"

	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/search"
)

// Wavefront-parallel macroblock analysis.
//
// The only cross-macroblock dependency in the analysis phase is the
// motion-field neighbourhood the predictive searchers read: PBM (and so
// ACBM) gathers candidates from the left (x−1,y), up-left (x−1,y−1), up
// (x,y−1) and up-right (x+1,y−1) entries of the current field. Under the
// anti-diagonal index d = x + 2y those neighbours live on diagonals d−1,
// d−3, d−2 and d−1 — all strictly earlier — so every macroblock of one
// diagonal can be analysed concurrently once the previous diagonal is
// complete. This is the same wavefront H.264/HEVC encoders use, adapted
// to this field's up-right (rather than up-left-only) reach.
//
// Each worker owns a forked Searcher (search.Forker) for the frame;
// core.ACBM documents that it is not concurrency-safe, so every worker
// gets its own instance and the additive Stats merge back in Join. All
// other shared writes are disjoint: each macroblock touches only its own
// 16×16 (8×8 chroma) region of the reconstruction, its own motion-field
// entry and its own mbResult slot. The WaitGroup barrier between
// diagonals publishes those writes to the workers of later diagonals.
//
// Determinism: the set of field entries visible to a macroblock equals
// exactly the causal set the sequential raster scan would have computed
// (Candidates reads only the four neighbours above), so every mbResult —
// and with it the serial entropy pass — is bit-identical for any worker
// count ≥ 1.

// analyzeFrame fills results (and recon, and curField for P-frames) for
// every macroblock of src, using the configured number of workers — or,
// when Config.Pool is set, the shared cross-session worker pool. Intra
// frames have no cross-MB dependencies and skip the wavefront barriers.
func (e *Encoder) analyzeFrame(src, recon *frame.Frame, curField *mvfield.Field, results []mbResult, intra bool) {
	if e.cfg.Pool != nil {
		e.analyzeFramePool(src, recon, curField, results, intra)
		return
	}
	cols, rows := e.size.MacroblockCols(), e.size.MacroblockRows()
	nw := e.workerCount()
	if nw > rows*cols {
		nw = rows * cols
	}
	if nw <= 1 {
		// Sequential analysis still runs the frame-granular fork/join
		// protocol: searchers with per-frame control state (core.Budgeted
		// freezes its thresholds per frame and servos them at the last
		// Join) must see the same frame boundaries at every worker count,
		// or the bitstream would depend on Config.Workers.
		s := e.cfg.Searcher
		var forked search.Searcher
		if !intra && e.forker != nil {
			forked = e.forker.Fork()
			s = forked
		}
		var scratch search.Input
		for mby := 0; mby < rows; mby++ {
			for mbx := 0; mbx < cols; mbx++ {
				if intra {
					e.analyzeIntraMB(src, recon, mbx, mby, &results[mby*cols+mbx])
				} else {
					e.analyzeInterMB(s, &scratch, src, recon, curField, mbx, mby, &results[mby*cols+mbx])
				}
			}
		}
		if forked != nil {
			e.forker.Join(forked)
		}
		return
	}

	// Fork one searcher per worker for the duration of the frame.
	searchers := make([]search.Searcher, nw)
	if intra {
		// Intra analysis never runs motion search.
	} else {
		for i := range searchers {
			searchers[i] = e.forker.Fork()
		}
	}

	jobs := make(chan int, cols+rows)
	var wg sync.WaitGroup
	var workers sync.WaitGroup
	for w := 0; w < nw; w++ {
		workers.Add(1)
		go func(s search.Searcher) {
			defer workers.Done()
			var scratch search.Input
			for idx := range jobs {
				mbx, mby := idx%cols, idx/cols
				if intra {
					e.analyzeIntraMB(src, recon, mbx, mby, &results[idx])
				} else {
					e.analyzeInterMB(s, &scratch, src, recon, curField, mbx, mby, &results[idx])
				}
				wg.Done()
			}
		}(searchers[w])
	}

	if intra {
		wg.Add(rows * cols)
		for idx := 0; idx < rows*cols; idx++ {
			jobs <- idx
		}
		wg.Wait()
	} else {
		for d := 0; d <= (cols-1)+2*(rows-1); d++ {
			n := 0
			loY := (d - (cols - 1) + 1) / 2
			if loY < 0 {
				loY = 0
			}
			hiY := d / 2
			if hiY > rows-1 {
				hiY = rows - 1
			}
			n = hiY - loY + 1
			if n <= 0 {
				continue
			}
			wg.Add(n)
			for mby := loY; mby <= hiY; mby++ {
				mbx := d - 2*mby
				jobs <- mby*cols + mbx
			}
			wg.Wait() // barrier: diagonal complete, writes published
		}
	}
	close(jobs)
	workers.Wait()

	if !intra {
		for _, s := range searchers {
			e.forker.Join(s)
		}
	}
}

// analyzeFramePool is analyzeFrame's shared-pool variant: identical
// wavefront schedule and invariants, but the per-macroblock tasks run on
// Config.Pool's cross-session workers instead of frame-private
// goroutines. Forked searchers are borrowed from a buffered channel by
// whichever pool worker picks the task up; the set is sized to the
// largest possible concurrent task count (one anti-diagonal, itself
// capped by the pool size), so borrowing never blocks. Searcher identity
// does not affect the search result — forks share the parent's
// parameters and differ only in their (additively merged) statistics — so
// bitstreams stay bit-identical to the sequential encoder, exactly as in
// the private-worker path.
func (e *Encoder) analyzeFramePool(src, recon *frame.Frame, curField *mvfield.Field, results []mbResult, intra bool) {
	pool := e.cfg.Pool
	cols, rows := e.size.MacroblockCols(), e.size.MacroblockRows()
	var wg sync.WaitGroup

	// With an Observer attached each task additionally records how long
	// it sat in the pool queue (the cross-session contention /
	// preemption-stall signal). The timestamp capture and atomic adds
	// observe scheduling, never influence it, so results are unchanged;
	// the nil-observer closures below stay literally the pre-observer
	// code so the hot path and its allocation profile are untouched.
	observe := e.cfg.Observer != nil

	if intra {
		wg.Add(rows * cols)
		for idx := 0; idx < rows*cols; idx++ {
			idx := idx
			if observe {
				submitT := time.Now()
				pool.submit(e.cfg.Priority, func() {
					e.noteQueueWait(time.Since(submitT))
					e.analyzeIntraMB(src, recon, idx%cols, idx/cols, &results[idx])
					wg.Done()
				})
			} else {
				pool.submit(e.cfg.Priority, func() {
					e.analyzeIntraMB(src, recon, idx%cols, idx/cols, &results[idx])
					wg.Done()
				})
			}
		}
		wg.Wait()
		return
	}

	// One anti-diagonal has at most min(rows, cols/2+1) macroblocks, and
	// the pool runs at most pool.Size() tasks at once; forking the smaller
	// count guarantees a searcher is always available to a running task.
	// Each fork travels with its own scratch search.Input, so pool tasks
	// allocate nothing per macroblock.
	type analysisCtx struct {
		s  search.Searcher
		in search.Input
	}
	f := e.forker
	nf := rows
	if c := cols/2 + 1; c < nf {
		nf = c
	}
	if pool.Size() < nf {
		nf = pool.Size()
	}
	searchers := make(chan *analysisCtx, nf)
	for i := 0; i < nf; i++ {
		searchers <- &analysisCtx{s: f.Fork()}
	}

	for d := 0; d <= (cols-1)+2*(rows-1); d++ {
		loY := (d - (cols - 1) + 1) / 2
		if loY < 0 {
			loY = 0
		}
		hiY := d / 2
		if hiY > rows-1 {
			hiY = rows - 1
		}
		if hiY < loY {
			continue
		}
		wg.Add(hiY - loY + 1)
		for mby := loY; mby <= hiY; mby++ {
			mbx := d - 2*mby
			idx := mby*cols + mbx
			mbx, mby := mbx, mby
			if observe {
				submitT := time.Now()
				pool.submit(e.cfg.Priority, func() {
					e.noteQueueWait(time.Since(submitT))
					c := <-searchers
					e.analyzeInterMB(c.s, &c.in, src, recon, curField, mbx, mby, &results[idx])
					searchers <- c
					wg.Done()
				})
			} else {
				pool.submit(e.cfg.Priority, func() {
					c := <-searchers
					e.analyzeInterMB(c.s, &c.in, src, recon, curField, mbx, mby, &results[idx])
					searchers <- c
					wg.Done()
				})
			}
		}
		wg.Wait() // barrier: diagonal complete, writes published
	}

	for i := 0; i < nf; i++ {
		f.Join((<-searchers).s)
	}
}
