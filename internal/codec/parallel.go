package codec

import (
	"sync"

	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/search"
)

// Wavefront-parallel macroblock analysis.
//
// The only cross-macroblock dependency in the analysis phase is the
// motion-field neighbourhood the predictive searchers read: PBM (and so
// ACBM) gathers candidates from the left (x−1,y), up-left (x−1,y−1), up
// (x,y−1) and up-right (x+1,y−1) entries of the current field. Under the
// anti-diagonal index d = x + 2y those neighbours live on diagonals d−1,
// d−3, d−2 and d−1 — all strictly earlier — so every macroblock of one
// diagonal can be analysed concurrently once the previous diagonal is
// complete. This is the same wavefront H.264/HEVC encoders use, adapted
// to this field's up-right (rather than up-left-only) reach.
//
// Each worker owns a forked Searcher (search.Forker) for the frame;
// core.ACBM documents that it is not concurrency-safe, so every worker
// gets its own instance and the additive Stats merge back in Join. All
// other shared writes are disjoint: each macroblock touches only its own
// 16×16 (8×8 chroma) region of the reconstruction, its own motion-field
// entry and its own mbResult slot. The WaitGroup barrier between
// diagonals publishes those writes to the workers of later diagonals.
//
// Determinism: the set of field entries visible to a macroblock equals
// exactly the causal set the sequential raster scan would have computed
// (Candidates reads only the four neighbours above), so every mbResult —
// and with it the serial entropy pass — is bit-identical for any worker
// count ≥ 1.

// analyzeFrame fills results (and recon, and curField for P-frames) for
// every macroblock of src, using the configured number of workers. Intra
// frames have no cross-MB dependencies and skip the wavefront barriers.
func (e *Encoder) analyzeFrame(src, recon *frame.Frame, curField *mvfield.Field, results []mbResult, intra bool) {
	cols, rows := e.size.MacroblockCols(), e.size.MacroblockRows()
	nw := e.workerCount()
	if nw > rows*cols {
		nw = rows * cols
	}
	if nw <= 1 {
		for mby := 0; mby < rows; mby++ {
			for mbx := 0; mbx < cols; mbx++ {
				if intra {
					e.analyzeIntraMB(src, recon, mbx, mby, &results[mby*cols+mbx])
				} else {
					e.analyzeInterMB(e.cfg.Searcher, src, recon, curField, mbx, mby, &results[mby*cols+mbx])
				}
			}
		}
		return
	}

	// Fork one searcher per worker for the duration of the frame.
	searchers := make([]search.Searcher, nw)
	if intra {
		// Intra analysis never runs motion search.
	} else {
		f := e.cfg.Searcher.(search.Forker)
		for i := range searchers {
			searchers[i] = f.Fork()
		}
	}

	jobs := make(chan int, cols+rows)
	var wg sync.WaitGroup
	var workers sync.WaitGroup
	for w := 0; w < nw; w++ {
		workers.Add(1)
		go func(s search.Searcher) {
			defer workers.Done()
			for idx := range jobs {
				mbx, mby := idx%cols, idx/cols
				if intra {
					e.analyzeIntraMB(src, recon, mbx, mby, &results[idx])
				} else {
					e.analyzeInterMB(s, src, recon, curField, mbx, mby, &results[idx])
				}
				wg.Done()
			}
		}(searchers[w])
	}

	if intra {
		wg.Add(rows * cols)
		for idx := 0; idx < rows*cols; idx++ {
			jobs <- idx
		}
		wg.Wait()
	} else {
		for d := 0; d <= (cols-1)+2*(rows-1); d++ {
			n := 0
			loY := (d - (cols - 1) + 1) / 2
			if loY < 0 {
				loY = 0
			}
			hiY := d / 2
			if hiY > rows-1 {
				hiY = rows - 1
			}
			n = hiY - loY + 1
			if n <= 0 {
				continue
			}
			wg.Add(n)
			for mby := loY; mby <= hiY; mby++ {
				mbx := d - 2*mby
				jobs <- mby*cols + mbx
			}
			wg.Wait() // barrier: diagonal complete, writes published
		}
	}
	close(jobs)
	workers.Wait()

	if !intra {
		f := e.cfg.Searcher.(search.Forker)
		for _, s := range searchers {
			f.Join(s)
		}
	}
}
