package codec

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// parallelFrames builds a seeded synthetic sequence with real motion, some
// flat (skip-prone) area and a texture step, so every macroblock mode —
// skip, inter, inter-4V, intra — shows up in the P-frames.
func parallelFrames(n int) []*frame.Frame {
	mk := func(t int) *frame.Frame {
		f := frame.NewFrame(frame.QCIF)
		for y := 0; y < f.Y.H; y++ {
			for x := 0; x < f.Y.W; x++ {
				switch {
				case y < 48: // translating texture
					f.Y.Set(x, y, uint8((x+2*t)*5+(y+t)*3))
				case x < 80: // flat, static
					f.Y.Set(x, y, 96)
				default: // flickering texture: drives intra decisions
					f.Y.Set(x, y, uint8((x*x+y*y*7+t*61)%253))
				}
			}
		}
		for y := 0; y < f.Cb.H; y++ {
			for x := 0; x < f.Cb.W; x++ {
				f.Cb.Set(x, y, uint8(118+(x+t)%20))
				f.Cr.Set(x, y, uint8(140-(y+2*t)%20))
			}
		}
		return f
	}
	out := make([]*frame.Frame, n)
	for t := range out {
		out[t] = mk(t)
	}
	return out
}

// encodeWith encodes the shared sequence with the given worker count and
// returns bitstream, sequence stats and ACBM stats.
func encodeWith(t *testing.T, workers int, cfg Config) ([]byte, *SequenceStats, core.Stats) {
	t.Helper()
	acbm := core.New(core.DefaultParams)
	cfg.Searcher = acbm
	cfg.Workers = workers
	stats, bs, err := EncodeSequence(cfg, parallelFrames(6))
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return bs, stats, acbm.Stats()
}

// TestParallelEncoderBitIdentical is the golden guarantee of the wavefront
// design: for every worker count the bitstream, the per-frame statistics
// and the merged ACBM statistics must be byte-for-byte what the
// sequential encoder produces. Run with -race in CI (see Makefile) to
// also certify the scheduling.
func TestParallelEncoderBitIdentical(t *testing.T) {
	for _, cfg := range []Config{
		{Qp: 14, AdvancedPrediction: true, IntraPeriod: 3},
		{Qp: 22, Entropy: EntropyArith, Deblock: true},
	} {
		refBS, refStats, refACBM := encodeWith(t, 1, cfg)
		for _, workers := range []int{2, 4, 7} {
			bs, stats, acbm := encodeWith(t, workers, cfg)
			if !bytes.Equal(bs, refBS) {
				t.Errorf("cfg=%+v workers=%d: bitstream differs from sequential (%d vs %d bytes)",
					cfg, workers, len(bs), len(refBS))
			}
			if !reflect.DeepEqual(stats, refStats) {
				t.Errorf("cfg=%+v workers=%d: sequence stats differ\n got %+v\nwant %+v", cfg, workers, stats, refStats)
			}
			if acbm != refACBM {
				t.Errorf("cfg=%+v workers=%d: ACBM stats differ\n got %+v\nwant %+v", cfg, workers, acbm, refACBM)
			}
		}
	}
}

// TestParallelDecodesToSameFrames checks the parallel encoder's stream
// stays decodable and reconstructs exactly the encoder's reference loop.
func TestParallelDecodesToSameFrames(t *testing.T) {
	acbm := core.New(core.DefaultParams)
	e := NewEncoder(Config{Qp: 16, Searcher: acbm, Workers: 4})
	var lastRecon *frame.Frame
	for _, f := range parallelFrames(4) {
		if _, err := e.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		lastRecon = e.Reconstruction()
	}
	frames, err := Decode(e.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("decoded %d frames, want 4", len(frames))
	}
	if !frames[3].Equal(lastRecon) {
		t.Error("decoded frame 3 differs from encoder reconstruction")
	}
}

// TestPipelineBitIdentical is the golden guarantee of the cross-frame
// pipeline: for every Table 1 profile and for Workers ∈ {1, 4}, the
// pipelined EncodeSequence must produce the byte-for-byte bitstream and
// statistics of a sequential EncodeFrame loop. Run with -race in CI (see
// Makefile) to also certify the analysis/entropy overlap.
func TestPipelineBitIdentical(t *testing.T) {
	for _, prof := range video.Profiles {
		frames := video.Generate(prof, frame.QCIF, 4, 7)
		// Serial reference: an explicit EncodeFrame loop.
		ref := NewEncoder(Config{Qp: 16, Searcher: core.New(core.DefaultParams), Workers: 1})
		for _, f := range frames {
			if _, err := ref.EncodeFrame(f); err != nil {
				t.Fatalf("%v: %v", prof, err)
			}
		}
		refBS := ref.Bitstream()
		refStats := ref.Stats()
		for _, workers := range []int{1, 4} {
			stats, bs, err := EncodeSequence(Config{
				Qp: 16, Searcher: core.New(core.DefaultParams),
				Workers: workers, Pipeline: true,
			}, frames)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", prof, workers, err)
			}
			if !bytes.Equal(bs, refBS) {
				t.Errorf("%v workers=%d: pipelined bitstream differs from serial (%d vs %d bytes)",
					prof, workers, len(bs), len(refBS))
			}
			if !reflect.DeepEqual(stats, refStats) {
				t.Errorf("%v workers=%d: pipelined stats differ\n got %+v\nwant %+v",
					prof, workers, stats, refStats)
			}
		}
	}
}

// TestPipelineModesAndRateControl covers the pipeline's edge configs: the
// arithmetic entropy backend (whose coder state spans frame boundaries),
// intra periods, deblocking — and rate control, where the pipeline must
// degrade to serial and still match exactly.
func TestPipelineModesAndRateControl(t *testing.T) {
	frames := parallelFrames(6)
	for _, cfg := range []Config{
		{Qp: 14, AdvancedPrediction: true, IntraPeriod: 3},
		{Qp: 22, Entropy: EntropyArith, Deblock: true},
		{Qp: 16, TargetKbps: 80, FPS: 30},
	} {
		serial := cfg
		serial.Workers = 1
		_, refBS, err := EncodeSequence(serial, frames)
		if err != nil {
			t.Fatal(err)
		}
		piped := cfg
		piped.Pipeline = true
		piped.Workers = 4
		_, bs, err := EncodeSequence(piped, frames)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bs, refBS) {
			t.Errorf("cfg=%+v: pipelined bitstream differs (%d vs %d bytes)", cfg, len(bs), len(refBS))
		}
	}
}

// TestPipelineFlushSemantics pins the driver API: Flush is idempotent,
// EncodeFrame after Flush fails, and the decoder reconstructs a pipelined
// stream exactly.
func TestPipelineFlushSemantics(t *testing.T) {
	frames := parallelFrames(3)
	p := NewPipeline(Config{Qp: 16, Workers: 2})
	for _, f := range frames {
		if err := p.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	stats, bs, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Frames) != 3 {
		t.Fatalf("stats cover %d frames, want 3", len(stats.Frames))
	}
	_, bs2, err := p.Flush()
	if err != nil || !bytes.Equal(bs, bs2) {
		t.Fatalf("Flush not idempotent: %v", err)
	}
	if err := p.EncodeFrame(frames[0]); err == nil {
		t.Fatal("EncodeFrame after Flush did not fail")
	}
	decoded, err := Decode(bs)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(decoded))
	}
}

// noForkSearcher is a minimal external searcher that does not implement
// search.Forker, standing in for out-of-module implementations. (No
// embedding: promoted FSBM methods would satisfy Forker.)
type noForkSearcher struct{ f search.FSBM }

func (n *noForkSearcher) Name() string { return "no-fork" }

func (n *noForkSearcher) Search(in *search.Input) search.Result { return n.f.Search(in) }

// TestWorkerCountForkers verifies that every searcher the module provides
// — including the stateful core.Budgeted, whose per-frame servo now forks
// — analyses in parallel, while an external searcher without Fork/Join is
// normalised to sequential analysis (Workers=1, no shared pool) at config
// time.
func TestWorkerCountForkers(t *testing.T) {
	bd, err := core.NewBudgeted(150, core.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		s    search.Searcher
		want int
	}{
		{bd, 5},
		{core.New(core.DefaultParams), 5},
		{&search.FSBM{}, 5},
		{&search.PBM{}, 5},
		{&search.TSS{}, 5},
		{&search.Diamond{}, 5},
		{&search.RCFSBM{}, 5},
		{&noForkSearcher{}, 1},
	} {
		e := NewEncoder(Config{Qp: 16, Searcher: tc.s, Workers: 5})
		if got := e.workerCount(); got != tc.want {
			t.Errorf("%s: workerCount=%d, want %d", tc.s.Name(), got, tc.want)
		}
	}
	// The pool is likewise dropped for non-Forker searchers: the session
	// encodes sequentially on its own goroutine instead.
	pool := NewPool(2)
	defer pool.Close()
	e := NewEncoder(Config{Qp: 16, Searcher: &noForkSearcher{}, Pool: pool, Workers: 5})
	if e.cfg.Pool != nil {
		t.Error("non-Forker searcher kept the shared pool")
	}
	frames := parallelFrames(2)
	for _, f := range frames {
		if _, err := e.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Decode(e.Bitstream()); err != nil {
		t.Fatalf("sequential non-Forker encode undecodable: %v", err)
	}
}
