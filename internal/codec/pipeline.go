package codec

import (
	"fmt"
	"time"

	"repro/internal/frame"
)

// Pipeline is the cross-frame two-phase encode driver: it overlaps the
// serial entropy coding (phase 2) of frame n with the — possibly
// wavefront-parallel — macroblock analysis (phase 1) of frame n+1.
//
// The overlap is legal because the two phases touch disjoint state for
// different frames:
//
//   - entropy coding of frame n reads only its frameJob (results slab,
//     motion field, source and reconstruction) plus the entropy coder,
//     which no analysis step ever touches;
//   - analysis of frame n+1 needs only frame n's reconstruction and
//     motion field as prediction context, and both are final when
//     analyzeFrameJob for frame n returns — before its job is handed to
//     the writer.
//
// Exactly one frame is in flight: EncodeFrame hands the analysed job to
// the writer goroutine over an unbuffered channel, so analysis of the
// next frame proceeds while the previous frame is serialised. Jobs reach
// the writer in frame order, which keeps the (stateful) entropy coder —
// in particular the adaptive arithmetic contexts — seeing the exact
// symbol sequence of a serial encode: bitstreams are byte-identical to an
// EncodeFrame loop for every Config.Workers value, which
// TestPipelineBitIdentical enforces.
//
// Buffer safety: the mbResult slabs and half-pel reference grids are
// pooled (sync.Pool), and the pipeline naturally double-buffers them —
// frame n's slab is returned to the pool only after phase 2 finishes, by
// which time frame n+1's analysis has already drawn a fresh one. The
// source frame passed to EncodeFrame must not be mutated until Flush (or
// the next EncodeFrame call) returns, since PSNR statistics read it on
// the writer goroutine.
//
// Rate control (Config.TargetKbps > 0) keeps the full overlap: the
// quantiser for frame n+1 is chosen by the frame-lag controller
// (rateController) at frame n's hand-off, from the actual bit counts of
// frames 0..n-1 — which the writer has finished by then, the unbuffered
// channel being exactly that synchronisation point — plus a predicted
// size for frame n computed from its worker-invariant analysis results.
// The serial EncodeFrame loop runs the identical plan/settle sequence, so
// rate-controlled bitstreams stay byte-identical to it too.
type Pipeline struct {
	e       *Encoder
	jobs    chan *frameJob
	done    chan struct{}
	flushed bool
}

// NewPipeline returns a pipelined encoder for cfg. Frames are submitted
// with EncodeFrame; Flush finalises the stream.
func NewPipeline(cfg Config) *Pipeline {
	p := &Pipeline{
		e:    NewEncoder(cfg),
		jobs: make(chan *frameJob), // unbuffered: exactly one frame in flight
		done: make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		for j := range p.jobs {
			p.e.writeFrameJob(j)
		}
	}()
	return p
}

// EncodeFrame analyses f and queues it for entropy coding. It returns
// once the analysis phase is complete; the frame's bits may still be in
// flight on the writer goroutine (per-frame statistics are therefore
// available only from Stats after Flush).
func (p *Pipeline) EncodeFrame(f *frame.Frame) error {
	if p.flushed {
		return fmt.Errorf("codec: pipeline already flushed")
	}
	j, err := p.e.analyzeFrameJob(f)
	if err != nil {
		return err
	}
	p.jobs <- j
	p.e.frameHandoff(j)
	return nil
}

// Flush drains the writer, finalises the bitstream and returns the
// sequence statistics and encoded bytes. It is idempotent; EncodeFrame
// must not be called afterwards.
func (p *Pipeline) Flush() (*SequenceStats, []byte, error) {
	if !p.flushed {
		close(p.jobs)
		<-p.done
		p.flushed = true
	}
	return p.e.Stats(), p.e.Bitstream(), nil
}

// PhaseTimes returns the cumulative per-phase wall clock (see
// Encoder.PhaseTimes). Valid only after Flush: before that the writer
// goroutine still owns the entropy counter.
func (p *Pipeline) PhaseTimes() (analysis, entropy time.Duration) {
	if !p.flushed {
		panic("codec: Pipeline.PhaseTimes before Flush")
	}
	return p.e.PhaseTimes()
}
