package codec

import (
	"runtime"
	"sync"
)

// Pool is a shared macroblock-analysis worker pool: a fixed set of
// goroutines that execute analysis tasks for any number of concurrent
// encoder sessions. It exists so a serving process (cmd/vcodecd) can cap
// total analysis parallelism at the machine's core count instead of
// letting every session spin up Config.Workers goroutines of its own —
// N sessions share one pool rather than oversubscribing N×GOMAXPROCS.
//
// Scheduling and fairness: sessions submit one task per macroblock into a
// single FIFO queue, so concurrent sessions interleave at macroblock
// granularity — a session never holds a worker longer than one block's
// analysis, and a newly admitted session starts drawing workers within
// one macroblock's latency of every other session (fair-share by queue
// position, not by priority). The wavefront barriers mean a session has
// at most one anti-diagonal of tasks outstanding, which bounds how far
// any session can run ahead in the queue.
//
// Deadlock freedom: pool workers never submit tasks and tasks never block
// on other tasks (the per-frame searcher set is sized so a borrowed
// searcher is always available; see analyzeFramePool), so every submitted
// task eventually runs even when sessions outnumber workers.
type Pool struct {
	tasks chan func()
	size  int

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with the given number of workers (0 or negative
// selects GOMAXPROCS). Close releases the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		// A small buffer lets a session stage the next few macroblocks of
		// a diagonal while workers finish the current ones; keeping it
		// shallow is what preserves macroblock-level interleaving across
		// sessions.
		tasks: make(chan func(), workers),
		size:  workers,
	}
	for i := 0; i < workers; i++ {
		go func() {
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Size returns the worker count.
func (p *Pool) Size() int { return p.size }

// submit enqueues one task; it blocks while the queue is full, which is
// the fair-share backpressure between sessions.
func (p *Pool) submit(fn func()) { p.tasks <- fn }

// Close stops the workers once the queue drains. It must only be called
// after every session using the pool has finished; it is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}
