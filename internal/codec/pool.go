package codec

import (
	"runtime"
	"sync"
)

// Priority is a session's scheduling class on a shared Pool. The zero
// value is PriorityLive, so single-session and test configurations need
// not mention it.
type Priority int

const (
	// PriorityLive is the interactive class: its macroblock tasks are
	// dispatched ahead of batch tasks.
	PriorityLive Priority = iota
	// PriorityBatch is the throughput class: it yields workers to live
	// sessions at the anti-diagonal boundary but is never starved
	// entirely (see the anti-starvation share below).
	PriorityBatch
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	if p == PriorityBatch {
		return "batch"
	}
	return "live"
}

// batchShare is the anti-starvation quota: after batchShare consecutive
// live dispatches while batch work is waiting, one batch task is
// dispatched regardless. Batch therefore always receives at least
// 1/(batchShare+1) of the pool's dispatches under a sustained live
// flood.
const batchShare = 8

// Pool is a shared macroblock-analysis worker pool: a fixed set of
// goroutines that execute analysis tasks for any number of concurrent
// encoder sessions. It exists so a serving process (cmd/vcodecd) can cap
// total analysis parallelism at the machine's core count instead of
// letting every session spin up Config.Workers goroutines of its own —
// N sessions share one pool rather than oversubscribing N×GOMAXPROCS.
//
// Scheduling and fairness: sessions submit one task per macroblock, so
// concurrent sessions interleave at macroblock granularity — a session
// never holds a worker longer than one block's analysis, and a newly
// admitted session starts drawing workers within one macroblock's
// latency of every other session of its class. Two priority tiers sit
// above that FIFO fairness: live tasks (Config.Priority) are dispatched
// before batch tasks, which means a live session preempts batch sessions
// at the anti-diagonal boundary — batch macroblocks already running
// finish (preemption is cooperative, at task granularity), but the
// batch session's next diagonal waits behind the live wavefront. Batch
// is never starved outright: after batchShare consecutive live
// dispatches with batch work queued, one batch task runs. Within a
// class, order remains strictly FIFO, which preserves the bounded
// run-ahead argument: the wavefront barriers mean a session has at most
// one anti-diagonal of tasks outstanding.
//
// Deadlock freedom: pool workers never submit tasks and tasks never block
// on other tasks (the per-frame searcher set is sized so a borrowed
// searcher is always available; see analyzeFramePool), so every submitted
// task eventually runs even when sessions outnumber workers — the
// priority tiers reorder dispatch but never withhold it.
type Pool struct {
	size int

	mu     sync.Mutex
	cond   *sync.Cond
	live   []func()
	batch  []func()
	// liveRun counts consecutive live dispatches while batch work waited;
	// at batchShare the next dispatch is forced to the batch queue.
	liveRun int
	closed  bool
}

// NewPool starts a pool with the given number of workers (0 or negative
// selects GOMAXPROCS). Close releases the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{size: workers}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for {
		p.mu.Lock()
		for len(p.live) == 0 && len(p.batch) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.live) == 0 && len(p.batch) == 0 {
			p.mu.Unlock()
			return // closed and drained
		}
		var fn func()
		// Dispatch: live first, except when the anti-starvation share is
		// owed to a waiting batch task.
		if len(p.live) > 0 && (len(p.batch) == 0 || p.liveRun < batchShare) {
			fn, p.live = p.live[0], p.live[1:]
			if len(p.batch) > 0 {
				p.liveRun++
			} else {
				p.liveRun = 0
			}
		} else {
			fn, p.batch = p.batch[0], p.batch[1:]
			p.liveRun = 0
		}
		p.mu.Unlock()
		fn()
	}
}

// Size returns the worker count.
func (p *Pool) Size() int { return p.size }

// submit enqueues one task in its class's FIFO queue. The queues are
// unbounded, but the wavefront barriers bound each session to one
// anti-diagonal of outstanding tasks, so total queue depth is bounded by
// the session count times the widest diagonal — the same bound the old
// single-channel pool enforced through blocking.
func (p *Pool) submit(pri Priority, fn func()) {
	p.mu.Lock()
	if pri == PriorityBatch {
		p.batch = append(p.batch, fn)
	} else {
		p.live = append(p.live, fn)
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// Close stops the workers once the queues drain. It must only be called
// after every session using the pool has finished; it is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}
