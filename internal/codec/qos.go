package codec

import (
	"sync/atomic"

	"repro/internal/search"
)

// budgetScaler is implemented by searchers whose complexity budget can be
// rescaled between frames (core.Budgeted). Declared structurally so codec
// does not depend on core.
type budgetScaler interface {
	ScaleBudget(scale float64)
}

// Actuation is one quality-of-service adjustment to a running stream —
// the degradation (or restoration) step a serving-layer QoS controller
// applies when load changes. It rides the frame-lag control contract:
// everything here decides analysis inputs only, is applied on the
// session goroutine at the start of the next EncodeFrame (the same point
// the rate controller's planned quantiser is read), and never touches
// entropy state — so an actuated stream stays deterministic for a given
// actuation-by-frame-index schedule and byte-identical across Workers ×
// Pipeline × Pool, and race-clean against the pipeline writer goroutine.
type Actuation struct {
	// QpOffset is added to the session's base quantiser (Config.Qp, or
	// the rate controller's planned value) from the next frame on,
	// clamped to the legal range. It is absolute, not cumulative:
	// restoring quality means actuating a smaller offset.
	QpOffset int
	// Searcher, when non-nil, replaces the motion estimator. The swap is
	// only state-clean at an intra boundary — intra frames run no motion
	// search and reset the motion field — so the next frame is forced
	// intra when the searcher actually changes. Passing the currently
	// installed searcher is a no-op (no forced intra), which lets a
	// controller state its target tier every actuation without caring
	// what is installed. The frame header is self-describing, so the
	// stream stays decodable.
	Searcher search.Searcher
	// BudgetScale, when positive, rescales the complexity budget of a
	// budget-controlled searcher (core.Budgeted) to BudgetScale × its
	// constructed target. Safe between frames: the budget thresholds are
	// frozen per frame at Fork. Ignored for searchers without a budget.
	BudgetScale float64
}

// Actuate schedules a to be applied before the next frame's analysis.
// It may be called from any goroutine; if called more than once between
// frames the last call wins. The stream's output bits from the next
// EncodeFrame on reflect the actuation.
func (s *EncodeStream) Actuate(a Actuation) {
	s.pending.Store(&a)
}

// applyActuation installs a on the encoder. Must run on the session
// goroutine between frames (EncodeFrame calls it before analysis).
func (e *Encoder) applyActuation(a Actuation) {
	e.qpOffset = a.QpOffset
	target := e.cfg.Searcher
	if a.Searcher != nil {
		if a.Searcher != e.cfg.Searcher {
			e.pendingSearcher = a.Searcher
		}
		target = a.Searcher
	}
	if a.BudgetScale > 0 {
		if bs, ok := target.(budgetScaler); ok {
			bs.ScaleBudget(a.BudgetScale)
		}
	}
}

// pendingActuation is the lock-free mailbox EncodeFrame drains; a plain
// field would race with Actuate callers on other goroutines.
type pendingActuation = atomic.Pointer[Actuation]
