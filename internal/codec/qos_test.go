package codec

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/search"
)

// encodeActuatedPackets encodes a fixed sequence through EncodeStream with
// a fixed actuation-by-frame-index schedule — the determinism contract a
// serving-layer QoS controller relies on. The schedule exercises every
// Actuation field: a budget rescale with no searcher change (frame 2), a
// swap to the cheap searcher tier (frame 4, forces intra), and a full
// restoration (frame 7, forces intra again).
func encodeActuatedPackets(t *testing.T, mut func(cfg *Config)) ([][]byte, *SequenceStats) {
	t.Helper()
	orig, err := core.NewBudgeted(150, core.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	cheap := &search.PBM{}
	cfg := Config{Qp: 14, Searcher: orig, Workers: 1}
	mut(&cfg)
	sched := map[int]Actuation{
		2: {QpOffset: 2, Searcher: orig, BudgetScale: 0.5},
		4: {QpOffset: 4, Searcher: cheap},
		7: {QpOffset: 0, Searcher: orig, BudgetScale: 1},
	}
	var pkts [][]byte
	es := NewEncodeStream(cfg, func(p Packet) error {
		pkts = append(pkts, p.Data)
		return nil
	})
	for i, f := range parallelFrames(10) {
		if a, ok := sched[i]; ok {
			es.Actuate(a)
		}
		if err := es.EncodeFrame(f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	stats, err := es.Close()
	if err != nil {
		t.Fatal(err)
	}
	return pkts, stats
}

// TestActuationByteIdenticalAcrossModes pins the QoS determinism
// guarantee: the same actuation-by-frame-index schedule produces
// byte-identical packets for every Workers × Pipeline × Pool setting,
// because actuations are consumed at frame hand-off on the session
// goroutine — never mid-frame, never on a worker.
func TestActuationByteIdenticalAcrossModes(t *testing.T) {
	refPkts, refStats := encodeActuatedPackets(t, func(cfg *Config) {})

	// The schedule's observable shape on the reference: the searcher swap
	// (frame 4) and the restoration (frame 7) force intra frames; the
	// same-searcher budget rescale (frame 2) does not. QpOffset is
	// absolute on top of the base quantiser.
	wantQp := []int{14, 14, 16, 16, 18, 18, 18, 14, 14, 14}
	for i, fs := range refStats.Frames {
		wantType := PFrame
		if i == 0 || i == 4 || i == 7 {
			wantType = IFrame
		}
		if fs.Type != wantType {
			t.Errorf("frame %d: type %v, want %v", i, fs.Type, wantType)
		}
		if fs.Qp != wantQp[i] {
			t.Errorf("frame %d: qp %d, want %d", i, fs.Qp, wantQp[i])
		}
	}

	// The actuated packet stream stays decodable end to end.
	dec, err := NewPacketDecoder(refPkts[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, pkt := range refPkts[1:] {
		if _, err := dec.DecodePacket(pkt); err != nil {
			t.Fatalf("decoding actuated frame %d: %v", i, err)
		}
	}

	pool := NewPool(3)
	defer pool.Close()
	for _, mode := range []struct {
		name string
		mut  func(cfg *Config)
	}{
		{"workers=4", func(cfg *Config) { cfg.Workers = 4 }},
		{"pipeline", func(cfg *Config) { cfg.Workers = 4; cfg.Pipeline = true }},
		{"pool", func(cfg *Config) { cfg.Workers = 4; cfg.Pool = pool }},
		{"pool+pipeline+batch", func(cfg *Config) {
			cfg.Workers = 4
			cfg.Pool = pool
			cfg.Pipeline = true
			cfg.Priority = PriorityBatch
		}},
	} {
		pkts, _ := encodeActuatedPackets(t, mode.mut)
		if len(pkts) != len(refPkts) {
			t.Errorf("%s: %d packets, want %d", mode.name, len(pkts), len(refPkts))
			continue
		}
		for i := range pkts {
			if !bytes.Equal(pkts[i], refPkts[i]) {
				t.Errorf("%s: packet %d differs from serial reference (%d vs %d bytes)",
					mode.name, i, len(pkts[i]), len(refPkts[i]))
			}
		}
	}
}

// TestActuationLastWriteWins pins the mailbox semantics: multiple
// Actuate calls between frames collapse to the last one.
func TestActuationLastWriteWins(t *testing.T) {
	acbm := core.New(core.DefaultParams)
	var pkts [][]byte
	es := NewEncodeStream(Config{Qp: 16, Searcher: acbm}, func(p Packet) error {
		pkts = append(pkts, p.Data)
		return nil
	})
	frames := parallelFrames(3)
	if err := es.EncodeFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	es.Actuate(Actuation{QpOffset: 10, Searcher: &search.PBM{}})
	es.Actuate(Actuation{QpOffset: 3, Searcher: acbm}) // wins
	for _, f := range frames[1:] {
		if err := es.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := es.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Frames[1].Qp; got != 19 {
		t.Errorf("frame 1 qp %d, want 19 (last actuation wins)", got)
	}
	if stats.Frames[1].Type != PFrame {
		t.Error("frame 1 forced intra: the winning actuation kept the installed searcher")
	}
}

// gatedPool starts a one-worker pool whose worker is parked on a blocker
// task, so tests can enqueue a full task mix and then observe the exact
// dispatch order when the worker is released. order blocks until every
// recorded task has run, then returns the dispatch sequence.
func gatedPool(t *testing.T) (p *Pool, release func(), order func() []string, record func(string) func()) {
	t.Helper()
	p = NewPool(1)
	t.Cleanup(p.Close)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var seq []string
	record = func(name string) func() {
		wg.Add(1) // before release: the worker is parked, Wait not yet racing
		return func() {
			mu.Lock()
			seq = append(seq, name)
			mu.Unlock()
			wg.Done()
		}
	}
	running := make(chan struct{})
	gate := make(chan struct{})
	p.submit(PriorityLive, func() {
		close(running)
		<-gate
	})
	<-running // the worker is parked; later submits only enqueue
	order = func() []string {
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), seq...)
	}
	return p, func() { close(gate) }, order, record
}

// TestPoolLivePreemptsBatch: with batch tasks queued first, a live task
// still dispatches ahead of all of them — preemption at the task (i.e.
// anti-diagonal) boundary.
func TestPoolLivePreemptsBatch(t *testing.T) {
	p, release, order, record := gatedPool(t)
	for i := 0; i < 4; i++ {
		p.submit(PriorityBatch, record(fmt.Sprintf("B%d", i)))
	}
	p.submit(PriorityLive, record("L0"))
	release()
	got := order()
	want := []string{"L0", "B0", "B1", "B2", "B3"}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestPoolBatchNeverStarves: under a sustained live flood, a waiting
// batch task is dispatched after at most batchShare live dispatches, and
// order within each class stays FIFO. The expected sequence is exact
// because the pool has one worker and every task is enqueued before the
// worker is released.
func TestPoolBatchNeverStarves(t *testing.T) {
	p, release, order, record := gatedPool(t)
	var want []string
	for i := 0; i < 3; i++ {
		p.submit(PriorityBatch, record(fmt.Sprintf("B%d", i)))
	}
	for i := 0; i < 30; i++ {
		p.submit(PriorityLive, record(fmt.Sprintf("L%d", i)))
	}
	// liveRun counts live dispatches while batch waits; at batchShare the
	// next dispatch is forced to batch: 8 live, B0, 8 live, B1, ...
	li := 0
	for _, b := range []string{"B0", "B1", "B2"} {
		for i := 0; i < batchShare; i++ {
			want = append(want, fmt.Sprintf("L%d", li))
			li++
		}
		want = append(want, b)
	}
	for ; li < 30; li++ {
		want = append(want, fmt.Sprintf("L%d", li))
	}
	release()
	got := order()
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("dispatch %d = %s, want %s (full order %v)", i, got[i], name, got)
		}
	}
}

// TestPoolPriorityDoesNotChangeBits: Config.Priority is pure scheduling —
// a batch-priority encode on a shared pool emits the bytes of a serial
// live encode.
func TestPoolPriorityDoesNotChangeBits(t *testing.T) {
	frames := parallelFrames(5)
	_, refBS, err := EncodeSequence(Config{Qp: 16, Searcher: core.New(core.DefaultParams), Workers: 1}, frames)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(3)
	defer pool.Close()
	for _, pri := range []Priority{PriorityLive, PriorityBatch} {
		_, bs, err := EncodeSequence(Config{
			Qp: 16, Searcher: core.New(core.DefaultParams),
			Workers: 4, Pool: pool, Priority: pri,
		}, frames)
		if err != nil {
			t.Fatalf("priority=%v: %v", pri, err)
		}
		if !bytes.Equal(bs, refBS) {
			t.Errorf("priority=%v: bitstream differs from serial reference", pri)
		}
	}
}

// TestPriorityString covers the Stringer.
func TestPriorityString(t *testing.T) {
	if PriorityLive.String() != "live" || PriorityBatch.String() != "batch" {
		t.Errorf("Priority strings: %q, %q", PriorityLive, PriorityBatch)
	}
}
