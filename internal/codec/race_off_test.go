//go:build !race

package codec

const raceEnabled = false
