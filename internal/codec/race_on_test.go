//go:build race

package codec

// raceEnabled reports whether this test binary was built with the race
// detector, whose ~20x slowdown makes wall-clock perf bounds
// noise-dominated.
const raceEnabled = true
