package codec

import "repro/internal/dct"

// rateController is a TMN-style frame-level rate control: a proportional
// controller on a virtual buffer that nudges the quantiser so the average
// output rate tracks Config.TargetKbps. Each frame header carries its own
// Qp, so the decoder needs no side information.
//
// The controller is frame-lagged so rate-controlled encodes keep the full
// wavefront + pipeline parallelism. The classic servo reads frame n's
// exact bit count before choosing frame n+1's quantiser, which couples
// entropy coding (phase 2) back into analysis (phase 1) and forces the
// cross-frame pipeline serial. Here the exact in-loop constraint is
// relaxed to a one-frame-lag estimated constraint (the rCLS idea of the
// related linear-equality-constrained-LS work): the quantiser for frame
// n+1 is chosen when frame n's write phase *begins* — from the actual bit
// counts of frames 0..n-1, which the writer has finished by then, plus a
// predicted bit count for frame n derived from its analysis results. When
// frame n's actual size arrives one hand-off later, settle replaces the
// prediction with the truth, so the buffer never accumulates model error;
// only the single in-flight decision ever acts on an estimate, and the
// steady-state tracking error is the (small) per-frame prediction error.
//
// The protocol is two calls per frame, driven at deterministic points of
// the encode loop (identical in serial, pipelined and pooled encodes, so
// rate-controlled bitstreams stay byte-identical across all of them):
//
//	plan(intra, cost)  — frame n's analysis is done, its write is in
//	                     flight: charge the buffer with the predicted
//	                     size and step the quantiser for frame n+1.
//	settle(actualBits) — frame n's write finished (observed at the next
//	                     hand-off): swap the prediction for the actual
//	                     size and update the predictor.
//
// The prediction model is deliberately cheap and worker-invariant: bits
// per nonzero quantised coefficient (one EWMA per frame type), applied to
// the jobCost complexity proxy computed from the analysis results.
type rateController struct {
	bitsPerFrame float64 // target
	buffer       float64 // accumulated surplus bits (can go negative)
	qp           int

	// The in-flight frame: exactly one prediction may be outstanding
	// between plan and settle.
	pending      bool
	predicted    float64
	pendingIntra bool
	pendingCost  int

	// Predicted-bits model: output bits per cost unit, one running
	// estimate per frame type (intra frames cost several times more per
	// coefficient budget than predicted frames). Zero until the first
	// frame of that type settles.
	bpcIntra float64
	bpcInter float64
}

func newRateController(targetKbps, fps float64, startQp int) *rateController {
	return &rateController{
		bitsPerFrame: targetKbps * 1000 / fps,
		qp:           dct.ClampQp(startQp),
	}
}

// currentQp returns the quantiser for the next frame.
func (rc *rateController) currentQp() int { return rc.qp }

// predictBits estimates a frame's encoded size from its complexity proxy.
// Before the first frame of a type has settled there is no model; the
// frame is assumed on target, and the error is corrected one hand-off
// later by settle.
func (rc *rateController) predictBits(intra bool, cost int) float64 {
	bpc := rc.bpcInter
	if intra {
		bpc = rc.bpcIntra
	}
	if bpc <= 0 || cost <= 0 {
		return rc.bitsPerFrame
	}
	return bpc * float64(cost)
}

// plan charges the virtual buffer with the in-flight frame's predicted
// size and steps the quantiser for the next frame. It must be called
// exactly once per frame, after settle of the previous frame.
func (rc *rateController) plan(intra bool, cost int) {
	pred := rc.predictBits(intra, cost)
	rc.pending = true
	rc.predicted = pred
	rc.pendingIntra = intra
	rc.pendingCost = cost

	rc.buffer += pred - rc.bitsPerFrame
	// Dead zone of ±¼ frame budget, then at most ±2 Qp steps per frame.
	switch {
	case rc.buffer > rc.bitsPerFrame:
		rc.qp += 2
	case rc.buffer > rc.bitsPerFrame/4:
		rc.qp++
	case rc.buffer < -rc.bitsPerFrame:
		rc.qp -= 2
	case rc.buffer < -rc.bitsPerFrame/4:
		rc.qp--
	}
	rc.qp = dct.ClampQp(rc.qp)
	// Leak the buffer slowly so a one-off large I-frame does not depress
	// quality forever.
	rc.buffer *= 0.95
}

// settle replaces the outstanding prediction with the frame's actual bit
// count and refreshes the per-type bits-per-cost estimate. Quantiser
// decisions already taken are not revisited — that is the one-frame-lag
// relaxation; the buffer correction steers every later decision.
func (rc *rateController) settle(actualBits int) {
	if !rc.pending {
		return
	}
	rc.pending = false
	rc.buffer += float64(actualBits) - rc.predicted
	if rc.pendingCost > 0 && actualBits > 0 {
		obs := float64(actualBits) / float64(rc.pendingCost)
		p := &rc.bpcInter
		if rc.pendingIntra {
			p = &rc.bpcIntra
		}
		if *p <= 0 {
			*p = obs
		} else {
			*p = 0.5**p + 0.5*obs
		}
	}
}
