package codec

import "repro/internal/dct"

// rateController is a TMN-style frame-level rate control: a proportional
// controller on a virtual buffer that nudges the quantiser so the average
// output rate tracks Config.TargetKbps. Each frame header carries its own
// Qp, so the decoder needs no side information.
type rateController struct {
	bitsPerFrame float64 // target
	buffer       float64 // accumulated surplus bits (can go negative)
	qp           int
}

func newRateController(targetKbps, fps float64, startQp int) *rateController {
	return &rateController{
		bitsPerFrame: targetKbps * 1000 / fps,
		qp:           dct.ClampQp(startQp),
	}
}

// currentQp returns the quantiser for the next frame.
func (rc *rateController) currentQp() int { return rc.qp }

// observe updates the controller with the actual size of the last frame.
func (rc *rateController) observe(bits int) {
	rc.buffer += float64(bits) - rc.bitsPerFrame
	// Dead zone of ±¼ frame budget, then at most ±2 Qp steps per frame.
	switch {
	case rc.buffer > rc.bitsPerFrame:
		rc.qp += 2
	case rc.buffer > rc.bitsPerFrame/4:
		rc.qp++
	case rc.buffer < -rc.bitsPerFrame:
		rc.qp -= 2
	case rc.buffer < -rc.bitsPerFrame/4:
		rc.qp--
	}
	rc.qp = dct.ClampQp(rc.qp)
	// Leak the buffer slowly so a one-off large I-frame does not depress
	// quality forever.
	rc.buffer *= 0.95
}
