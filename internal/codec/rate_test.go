package codec

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

func TestRateControlTracksTarget(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.QCIF, 40, 1)
	for _, target := range []float64{30, 80} {
		stats, bs, err := EncodeSequence(Config{
			Qp: 16, FPS: 30, TargetKbps: target,
		}, frames)
		if err != nil {
			t.Fatal(err)
		}
		got := stats.BitrateKbps()
		// The I-frame cannot be rate-controlled away, so allow a wide but
		// meaningful band.
		if got < target*0.6 || got > target*1.6 {
			t.Errorf("target %.0f kbit/s: achieved %.1f", target, got)
		}
		if _, err := Decode(bs); err != nil {
			t.Errorf("target %.0f: decode: %v", target, err)
		}
	}
}

func TestRateControlSeparatesTargets(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.QCIF, 30, 2)
	lo, _, err := EncodeSequence(Config{Qp: 16, FPS: 30, TargetKbps: 25}, frames)
	if err != nil {
		t.Fatal(err)
	}
	hi, _, err := EncodeSequence(Config{Qp: 16, FPS: 30, TargetKbps: 120}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if lo.BitrateKbps() >= hi.BitrateKbps() {
		t.Fatalf("rates not separated: %.1f vs %.1f", lo.BitrateKbps(), hi.BitrateKbps())
	}
	if lo.AvgPSNRY() >= hi.AvgPSNRY() {
		t.Fatalf("quality not separated: %.2f vs %.2f dB", lo.AvgPSNRY(), hi.AvgPSNRY())
	}
}

func TestRateControlVariesQp(t *testing.T) {
	// A hard sequence at a tight budget must move the quantiser.
	frames := video.Generate(video.Foreman, frame.QCIF, 20, 3)
	stats, _, err := EncodeSequence(Config{Qp: 10, FPS: 30, TargetKbps: 25}, frames)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range stats.Frames {
		if f.Qp < 1 || f.Qp > 31 {
			t.Fatalf("illegal frame Qp %d", f.Qp)
		}
		seen[f.Qp] = true
	}
	if len(seen) < 2 {
		t.Fatalf("rate control never moved Qp: %v", seen)
	}
}

func TestConstantQpUnaffectedByRateField(t *testing.T) {
	// Without TargetKbps every frame reports the configured Qp.
	frames := video.Generate(video.MissAmerica, frame.SQCIF, 4, 1)
	stats, _, err := EncodeSequence(Config{Qp: 22}, frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range stats.Frames {
		if f.Qp != 22 {
			t.Fatalf("frame %d Qp = %d, want 22", i, f.Qp)
		}
	}
}

func TestRateControlledStreamDecodesExactly(t *testing.T) {
	frames := video.Generate(video.TableTennis, frame.SQCIF, 10, 5)
	enc := NewEncoder(Config{Qp: 14, FPS: 30, TargetKbps: 40})
	var recons []*frame.Frame
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		recons = append(recons, enc.Reconstruction())
	}
	decoded, err := Decode(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	for i := range decoded {
		if !decoded[i].Equal(recons[i]) {
			t.Fatalf("frame %d mismatch under rate control", i)
		}
	}
}

func TestRateControllerUnit(t *testing.T) {
	rc := newRateController(30, 30, 16) // 1000 bits/frame
	if rc.currentQp() != 16 {
		t.Fatal("start Qp wrong")
	}
	// Drive the frame-lag protocol: plan charges the predicted size and
	// steps the quantiser, settle swaps in the actual size one frame
	// later. Sustained overshoot must raise Qp; undershoot must lower it.
	for i := 0; i < 10; i++ {
		rc.plan(false, 100)
		rc.settle(5000)
	}
	if rc.currentQp() <= 16 {
		t.Fatalf("Qp %d did not rise under overshoot", rc.currentQp())
	}
	rc2 := newRateController(30, 30, 16)
	for i := 0; i < 10; i++ {
		rc2.plan(false, 100)
		rc2.settle(10)
	}
	if rc2.currentQp() >= 16 {
		t.Fatalf("Qp %d did not fall under undershoot", rc2.currentQp())
	}
	// Qp always stays legal.
	for i := 0; i < 100; i++ {
		rc.plan(false, 100)
		rc.settle(1 << 20)
	}
	if rc.currentQp() > 31 {
		t.Fatal("Qp exceeded 31")
	}
}

func TestRateControllerFrameLagCorrection(t *testing.T) {
	// The first frame of a type has no model: its prediction is the target
	// itself, so plan must not move the quantiser — and settle must inject
	// the full prediction error into the buffer so the *next* plan reacts.
	rc := newRateController(30, 30, 16) // 1000 bits/frame
	rc.plan(true, 500)
	if rc.currentQp() != 16 {
		t.Fatalf("Qp moved to %d on an unmodelled prediction", rc.currentQp())
	}
	rc.settle(8000) // I-frame blow-up arrives one hand-off later
	rc.plan(false, 500)
	if rc.currentQp() <= 16 {
		t.Fatalf("Qp %d did not react to the settled overshoot", rc.currentQp())
	}
	// Once settled, the model predicts from cost: a second frame of the
	// same type must be charged at the learned bits-per-cost rate.
	if rc.bpcIntra <= 0 {
		t.Fatal("intra bits-per-cost model not learned")
	}
	if got := rc.predictBits(true, 500); got != 8000/500.0*500 {
		t.Fatalf("predictBits = %g, want 8000", got)
	}
	// A settle without an outstanding plan is ignored.
	rc.settle(900)
	buf := rc.buffer
	rc.settle(1 << 20)
	if rc.buffer != buf {
		t.Fatal("settle without an outstanding plan moved the buffer")
	}
}

// rateProfiles are encode configurations whose controllers historically
// forced the encoder serial: the TargetKbps quantiser servo, the
// core.Budgeted complexity servo, and both at once. Each entry builds a
// fresh Config per encode (the searchers are stateful).
var rateProfiles = []struct {
	name string
	mk   func(t *testing.T) Config
}{
	{"kbps", func(t *testing.T) Config {
		return Config{Qp: 16, FPS: 30, TargetKbps: 60, Searcher: core.New(core.DefaultParams)}
	}},
	{"kbps-arith-gop", func(t *testing.T) Config {
		return Config{Qp: 14, FPS: 30, TargetKbps: 90, Entropy: EntropyArith, IntraPeriod: 4,
			Searcher: core.New(core.DefaultParams)}
	}},
	{"budget", func(t *testing.T) Config {
		s, err := core.NewBudgeted(150, core.DefaultParams)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Qp: 14, Searcher: s}
	}},
	{"kbps+budget", func(t *testing.T) Config {
		s, err := core.NewBudgeted(150, core.DefaultParams)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Qp: 14, FPS: 30, TargetKbps: 60, Searcher: s}
	}},
}

// TestRateControlBitIdenticalAcrossParallelism is the golden guarantee of
// the frame-lag controllers: with rate control active (TargetKbps, the
// Budgeted complexity servo, or both) the bitstream AND the per-frame
// statistics — including every quantiser decision — must be byte-for-byte
// identical across Workers ∈ {1, 4} × Pipeline on/off × shared Pool. Run
// under -race by make test to also certify the scheduling.
func TestRateControlBitIdenticalAcrossParallelism(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 8, 3)
	for _, p := range rateProfiles {
		ref := p.mk(t)
		ref.Workers = 1
		refStats, refBS, err := EncodeSequence(ref, frames)
		if err != nil {
			t.Fatalf("%s serial: %v", p.name, err)
		}
		for _, workers := range []int{1, 4} {
			for _, pipeline := range []bool{false, true} {
				cfg := p.mk(t)
				cfg.Workers = workers
				cfg.Pipeline = pipeline
				stats, bs, err := EncodeSequence(cfg, frames)
				if err != nil {
					t.Fatalf("%s workers=%d pipeline=%v: %v", p.name, workers, pipeline, err)
				}
				if !bytes.Equal(bs, refBS) {
					t.Errorf("%s workers=%d pipeline=%v: bitstream differs from serial (%d vs %d bytes)",
						p.name, workers, pipeline, len(bs), len(refBS))
				}
				if !reflect.DeepEqual(stats, refStats) {
					t.Errorf("%s workers=%d pipeline=%v: stats differ\n got %+v\nwant %+v",
						p.name, workers, pipeline, stats, refStats)
				}
			}
		}
		// Shared-pool analysis (the vcodecd serving mode) must match too.
		pool := NewPool(3)
		cfg := p.mk(t)
		cfg.Pool = pool
		cfg.Pipeline = true
		stats, bs, err := EncodeSequence(cfg, frames)
		pool.Close()
		if err != nil {
			t.Fatalf("%s pool: %v", p.name, err)
		}
		if !bytes.Equal(bs, refBS) {
			t.Errorf("%s: shared-pool bitstream differs from serial", p.name)
		}
		if !reflect.DeepEqual(stats, refStats) {
			t.Errorf("%s: shared-pool stats differ", p.name)
		}
	}
}

// TestRateControlPacketsBitIdentical is the packet-transport counterpart:
// rate-controlled EncodePackets output is pinned byte-identical across the
// same Workers × Pipeline × Pool grid (the per-session serving path).
func TestRateControlPacketsBitIdentical(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 8, 5)
	for _, p := range rateProfiles {
		ref := p.mk(t)
		ref.Workers = 1
		refPkts, _, err := EncodePackets(ref, frames)
		if err != nil {
			t.Fatalf("%s serial: %v", p.name, err)
		}
		run := func(label string, cfg Config) {
			pkts, _, err := EncodePackets(cfg, frames)
			if err != nil {
				t.Fatalf("%s %s: %v", p.name, label, err)
			}
			if !packetsEqual(refPkts, pkts) {
				t.Errorf("%s %s: packets differ from serial", p.name, label)
			}
		}
		w4 := p.mk(t)
		w4.Workers = 4
		run("workers=4", w4)
		piped := p.mk(t)
		piped.Workers = 4
		piped.Pipeline = true
		run("workers=4 pipeline", piped)
		pool := NewPool(3)
		pooled := p.mk(t)
		pooled.Pool = pool
		pooled.Pipeline = true
		run("pool pipeline", pooled)
		pool.Close()
	}
}
