package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/video"
)

func TestRateControlTracksTarget(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.QCIF, 40, 1)
	for _, target := range []float64{30, 80} {
		stats, bs, err := EncodeSequence(Config{
			Qp: 16, FPS: 30, TargetKbps: target,
		}, frames)
		if err != nil {
			t.Fatal(err)
		}
		got := stats.BitrateKbps()
		// The I-frame cannot be rate-controlled away, so allow a wide but
		// meaningful band.
		if got < target*0.6 || got > target*1.6 {
			t.Errorf("target %.0f kbit/s: achieved %.1f", target, got)
		}
		if _, err := Decode(bs); err != nil {
			t.Errorf("target %.0f: decode: %v", target, err)
		}
	}
}

func TestRateControlSeparatesTargets(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.QCIF, 30, 2)
	lo, _, err := EncodeSequence(Config{Qp: 16, FPS: 30, TargetKbps: 25}, frames)
	if err != nil {
		t.Fatal(err)
	}
	hi, _, err := EncodeSequence(Config{Qp: 16, FPS: 30, TargetKbps: 120}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if lo.BitrateKbps() >= hi.BitrateKbps() {
		t.Fatalf("rates not separated: %.1f vs %.1f", lo.BitrateKbps(), hi.BitrateKbps())
	}
	if lo.AvgPSNRY() >= hi.AvgPSNRY() {
		t.Fatalf("quality not separated: %.2f vs %.2f dB", lo.AvgPSNRY(), hi.AvgPSNRY())
	}
}

func TestRateControlVariesQp(t *testing.T) {
	// A hard sequence at a tight budget must move the quantiser.
	frames := video.Generate(video.Foreman, frame.QCIF, 20, 3)
	stats, _, err := EncodeSequence(Config{Qp: 10, FPS: 30, TargetKbps: 25}, frames)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range stats.Frames {
		if f.Qp < 1 || f.Qp > 31 {
			t.Fatalf("illegal frame Qp %d", f.Qp)
		}
		seen[f.Qp] = true
	}
	if len(seen) < 2 {
		t.Fatalf("rate control never moved Qp: %v", seen)
	}
}

func TestConstantQpUnaffectedByRateField(t *testing.T) {
	// Without TargetKbps every frame reports the configured Qp.
	frames := video.Generate(video.MissAmerica, frame.SQCIF, 4, 1)
	stats, _, err := EncodeSequence(Config{Qp: 22}, frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range stats.Frames {
		if f.Qp != 22 {
			t.Fatalf("frame %d Qp = %d, want 22", i, f.Qp)
		}
	}
}

func TestRateControlledStreamDecodesExactly(t *testing.T) {
	frames := video.Generate(video.TableTennis, frame.SQCIF, 10, 5)
	enc := NewEncoder(Config{Qp: 14, FPS: 30, TargetKbps: 40})
	var recons []*frame.Frame
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		recons = append(recons, enc.Reconstruction())
	}
	decoded, err := Decode(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	for i := range decoded {
		if !decoded[i].Equal(recons[i]) {
			t.Fatalf("frame %d mismatch under rate control", i)
		}
	}
}

func TestRateControllerUnit(t *testing.T) {
	rc := newRateController(30, 30, 16) // 1000 bits/frame
	if rc.currentQp() != 16 {
		t.Fatal("start Qp wrong")
	}
	// Sustained overshoot must raise Qp; sustained undershoot lower it.
	for i := 0; i < 10; i++ {
		rc.observe(5000)
	}
	if rc.currentQp() <= 16 {
		t.Fatalf("Qp %d did not rise under overshoot", rc.currentQp())
	}
	rc2 := newRateController(30, 30, 16)
	for i := 0; i < 10; i++ {
		rc2.observe(10)
	}
	if rc2.currentQp() >= 16 {
		t.Fatalf("Qp %d did not fall under undershoot", rc2.currentQp())
	}
	// Qp always stays legal.
	for i := 0; i < 100; i++ {
		rc.observe(1 << 20)
	}
	if rc.currentQp() > 31 {
		t.Fatal("Qp exceeded 31")
	}
}
