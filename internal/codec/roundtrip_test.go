package codec

import (
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// noiseFrame builds a random (but seeded) frame for property tests.
func noiseFrame(size frame.Size, seed uint64) *frame.Frame {
	f := frame.NewFrame(size)
	s := seed | 1
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 2685821657736338717
	}
	for _, p := range []*frame.Plane{f.Y, f.Cb, f.Cr} {
		for i := range p.Pix {
			p.Pix[i] = uint8(next() >> 56)
		}
	}
	return f
}

func TestRoundTripPropertyRandomFrames(t *testing.T) {
	// Even on pure noise (worst case for prediction) the decoder must
	// track the encoder exactly at arbitrary Qp.
	f := func(seed uint64, qpRaw uint8) bool {
		qp := int(qpRaw)%31 + 1
		frames := []*frame.Frame{
			noiseFrame(frame.Size{W: 32, H: 32}, seed),
			noiseFrame(frame.Size{W: 32, H: 32}, seed+1),
			noiseFrame(frame.Size{W: 32, H: 32}, seed+2),
		}
		enc := NewEncoder(Config{Qp: qp})
		var recons []*frame.Frame
		for _, fr := range frames {
			if _, err := enc.EncodeFrame(fr); err != nil {
				return false
			}
			recons = append(recons, enc.Reconstruction())
		}
		decoded, err := Decode(enc.Bitstream())
		if err != nil || len(decoded) != len(frames) {
			return false
		}
		for i := range decoded {
			if !decoded[i].Equal(recons[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIntraPeriodProducesGOPs(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 7, 1)
	stats, bs, err := EncodeSequence(Config{Qp: 16, IntraPeriod: 3}, frames)
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []FrameType{IFrame, PFrame, PFrame, IFrame, PFrame, PFrame, IFrame}
	for i, fs := range stats.Frames {
		if fs.Type != wantTypes[i] {
			t.Fatalf("frame %d type %v, want %v", i, fs.Type, wantTypes[i])
		}
	}
	decoded, err := Decode(bs)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(decoded), len(frames))
	}
}

func TestIntraPeriodCostsMoreBits(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 9, 1)
	gop, _, err := EncodeSequence(Config{Qp: 16, IntraPeriod: 3}, frames)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := EncodeSequence(Config{Qp: 16}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if gop.TotalBits() <= plain.TotalBits() {
		t.Fatalf("GOP stream %d bits not above P-only %d bits", gop.TotalBits(), plain.TotalBits())
	}
}

func TestReconstructionMatchesDecoderWithGOP(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 6, 2)
	enc := NewEncoder(Config{Qp: 12, IntraPeriod: 2, Searcher: &search.PBM{}})
	var recons []*frame.Frame
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		recons = append(recons, enc.Reconstruction())
	}
	decoded, err := Decode(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	for i := range decoded {
		if !decoded[i].Equal(recons[i]) {
			t.Fatalf("frame %d mismatch with IntraPeriod", i)
		}
	}
}

func TestReconstructionBeforeEncodeIsNil(t *testing.T) {
	enc := NewEncoder(Config{Qp: 16})
	if enc.Reconstruction() != nil {
		t.Fatal("Reconstruction before first frame must be nil")
	}
}

func TestBitstreamStableAcrossCalls(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 2, 1)
	enc := NewEncoder(Config{Qp: 16})
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	a := enc.Bitstream()
	b := enc.Bitstream()
	if len(a) != len(b) {
		t.Fatal("Bitstream length changed between calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Bitstream content changed between calls")
		}
	}
}

func TestDeterministicEncoding(t *testing.T) {
	frames := video.Generate(video.TableTennis, frame.SQCIF, 3, 9)
	_, bs1, err := EncodeSequence(Config{Qp: 14}, frames)
	if err != nil {
		t.Fatal(err)
	}
	_, bs2, err := EncodeSequence(Config{Qp: 14}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if string(bs1) != string(bs2) {
		t.Fatal("encoding not deterministic")
	}
}
