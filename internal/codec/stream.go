package codec

import (
	"fmt"
	"time"

	"repro/internal/bitstream"
	"repro/internal/entropy"
	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/search"
)

// Packet is one unit of the packetized transport: Index 0 carries the
// sequence header, Index i+1 carries frame i. Stats is the zero value for
// the header packet.
type Packet struct {
	Index int
	Data  []byte
	Stats FrameStats
}

// EncodeStream is the streaming encode session: frames go in one at a
// time and each finished frame comes out immediately as an independent
// packet through the emit callback — the first-byte latency of a consumer
// is one frame, not one sequence. It is the unit cmd/vcodecd serves; the
// batch EncodePackets is a thin wrapper around it.
//
// Emit ordering and backpressure: emit is called strictly in packet order
// (header, frame 0, frame 1, …) and synchronously with respect to the
// stream — the next packet is not produced until emit returns. A slow
// consumer therefore throttles the encode instead of growing an unbounded
// queue: in pipeline mode exactly one analysed frame can be in flight
// behind a blocked emit, and in serial mode none.
//
// Pipelining: with Config.Pipeline set, entropy coding of frame n
// overlaps analysis of frame n+1 exactly as in
// codec.Pipeline — EncodeFrame returns once analysis completes and a
// writer goroutine serialises + emits the packet. Packets are
// byte-identical to the serial path for every Workers/Pool setting: each
// packet has private entropy state, and analysis results are worker-count
// invariant (the wavefront guarantee).
//
// Rate control (Config.TargetKbps > 0) composes with all of it: the
// frame-lag controller chooses frame n+1's quantiser at frame n's
// hand-off, from the actual packet sizes of frames 0..n-1 plus a
// predicted size for frame n (see rateController), so rate-controlled
// sessions keep the pipeline overlap and the shared-pool parallelism —
// and emit byte-identical packets in every mode.
//
// An emit error poisons the stream: the pending frame is discarded, every
// later EncodeFrame returns the error, and Close returns it too. The
// source frame passed to EncodeFrame must not be mutated until the frame's
// packet has been emitted (Close at the latest) — PSNR statistics read it
// on the writer goroutine.
type EncodeStream struct {
	e       *Encoder
	emit    func(Packet) error
	overlap bool
	closed  bool

	// pending is the QoS actuation mailbox (see Actuate): drained on the
	// session goroutine at the top of EncodeFrame, so every actuated
	// parameter is fixed before the frame's analysis begins.
	pending pendingActuation

	// Pipeline-mode plumbing. werr is written only by the writer
	// goroutine, before it closes failed; readers observe it through
	// <-failed or <-done.
	jobs   chan *frameJob
	done   chan struct{}
	failed chan struct{}
	werr   error
}

// NewEncodeStream starts a streaming session for cfg; packets are
// delivered to emit. The caller must call Close to release the writer
// goroutine and collect the final statistics.
func NewEncodeStream(cfg Config, emit func(Packet) error) *EncodeStream {
	e := NewEncoder(cfg)
	s := &EncodeStream{e: e, emit: emit, overlap: cfg.Pipeline}
	if s.overlap {
		s.jobs = make(chan *frameJob) // unbuffered: one frame in flight
		s.done = make(chan struct{})
		s.failed = make(chan struct{})
		go func() {
			defer close(s.done)
			for j := range s.jobs {
				if s.werr != nil {
					// Poisoned: drop the frame, recycle its slab.
					putMBResults(j.results)
					j.results = nil
					continue
				}
				if _, err := s.emitJob(j); err != nil {
					s.werr = err
					close(s.failed)
				}
			}
		}()
	}
	return s
}

// EncodeFrame analyses f and queues (pipeline mode) or emits (serial
// mode) its packet. In pipeline mode it returns when analysis is done;
// the packet may still be in flight on the writer goroutine.
func (s *EncodeStream) EncodeFrame(f *frame.Frame) error {
	_, err := s.encodeFrame(f, nil)
	return err
}

// EncodeFrameSeeded is EncodeFrame with a cross-layer motion seed for
// this frame's analysis, returning the frame's final motion field (nil
// for intra frames) so a ladder driver can seed the rung below. The
// returned field is read-only and remains valid: the encoder only ever
// reads it (as the next frame's PrevField) after this call returns.
func (s *EncodeStream) EncodeFrameSeeded(f *frame.Frame, seed search.LayerSeed) (*mvfield.Field, error) {
	return s.encodeFrame(f, seed)
}

func (s *EncodeStream) encodeFrame(f *frame.Frame, seed search.LayerSeed) (*mvfield.Field, error) {
	if s.closed {
		return nil, fmt.Errorf("codec: encode stream closed")
	}
	if s.overlap {
		select {
		case <-s.failed:
			return nil, s.werr
		default:
		}
	}
	if a := s.pending.Swap(nil); a != nil {
		s.e.applyActuation(*a)
	}
	s.e.curSeed = seed
	j, err := s.e.analyzeFrameJob(f)
	s.e.curSeed = nil
	if err != nil {
		return nil, err
	}
	if !s.overlap {
		if s.werr != nil {
			putMBResults(j.results)
			j.results = nil
			return nil, s.werr
		}
		if _, err := s.emitJob(j); err != nil {
			s.werr = err
			return nil, err
		}
		// Frame-lag protocol even though j's bits are already known: the
		// controller must see exactly what a pipelined session would.
		s.e.frameHandoff(j)
		return j.curField, nil
	}
	select {
	case s.jobs <- j:
		s.e.frameHandoff(j)
		return j.curField, nil
	case <-s.failed:
		putMBResults(j.results)
		j.results = nil
		return nil, s.werr
	}
}

// emitJob serialises one analysed frame into its packet and hands it (and,
// first, the header packet before frame 0) to emit.
func (s *EncodeStream) emitJob(j *frameJob) (FrameStats, error) {
	if j.index == 0 {
		if err := s.emit(Packet{Index: 0, Data: s.e.headerPacket()}); err != nil {
			return FrameStats{}, err
		}
	}
	pkt, fs := s.e.writeFramePacket(j)
	return fs, s.emit(Packet{Index: j.index + 1, Data: pkt, Stats: fs})
}

// Close drains the writer goroutine, finalises the session and returns
// the sequence statistics, plus the first emit error if any packet could
// not be delivered. It is idempotent; EncodeFrame must not be called
// afterwards.
func (s *EncodeStream) Close() (*SequenceStats, error) {
	if !s.closed {
		s.closed = true
		if s.overlap {
			close(s.jobs)
			<-s.done
		}
		s.e.rcPrevJob = nil // release the last retained frame pair
	}
	return s.e.Stats(), s.werr
}

// PhaseTimes returns the cumulative analysis/entropy wall clock (see
// Encoder.PhaseTimes). Valid only after Close — before that the writer
// goroutine still owns the entropy counter.
func (s *EncodeStream) PhaseTimes() (analysis, entropy time.Duration) {
	if !s.closed {
		panic("codec: EncodeStream.PhaseTimes before Close")
	}
	return s.e.PhaseTimes()
}

// headerPacket builds packet 0: the sequence header (size + entropy
// mode). Valid once the first frame has been analysed (e.size is set).
func (e *Encoder) headerPacket() []byte {
	var hw bitstream.Writer
	hw.WriteBits(Magic, 32)
	entropy.WriteUE(&hw, uint32(e.size.W/16))
	entropy.WriteUE(&hw, uint32(e.size.H/16))
	hw.WriteBits(uint64(e.cfg.Entropy), 1)
	return hw.Bytes()
}

// writeFramePacket runs phase 2 for an analysed frame in packet mode: a
// fresh per-packet syntax writer — no sequence header, no continuation
// flags — serialises the frame body, so every packet is independently
// parseable. Statistics (bit count, PSNR) are appended to the sequence
// stats, exactly as writeFrameJob does for the contiguous stream.
func (e *Encoder) writeFramePacket(j *frameJob) ([]byte, FrameStats) {
	start := time.Now()
	e.sw = newSymWriter(e.cfg.Entropy)
	e.sw.BeginData()
	fs := e.writeFrameBody(j)
	pkt := e.sw.Finish()
	fs.Bits = 8 * len(pkt)
	fs.Qp = j.qp
	j.wroteBits = fs.Bits
	wall := time.Since(start)
	e.entropyTime += wall
	if ob := e.cfg.Observer; ob != nil {
		ob.FrameWritten(j.index, wall, fs.Bits)
	}

	py, _ := frame.PSNR(j.src.Y, j.recon.Y)
	pcb, _ := frame.PSNR(j.src.Cb, j.recon.Cb)
	pcr, _ := frame.PSNR(j.src.Cr, j.recon.Cr)
	fs.PSNRY, fs.PSNRCb, fs.PSNRCr = py, pcb, pcr

	e.stats.Frames = append(e.stats.Frames, fs)
	return pkt, fs
}
