package codec

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// packetsEqual reports whether two packet sequences are byte-identical.
func packetsEqual(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestPacketsPipelineBitIdentical pins the packet path to the PR 1/PR 2
// machinery: EncodePackets must produce byte-identical packets for every
// Workers count, with and without the cross-frame pipeline, and on a
// shared Pool — the packets counterpart of TestPipelineBitIdentical.
func TestPacketsPipelineBitIdentical(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 8, 3)
	profiles := []struct {
		name string
		cfg  Config
	}{
		{"acbm", Config{Qp: 14, Searcher: core.New(core.DefaultParams)}},
		{"fsbm-arith", Config{Qp: 16, Searcher: &search.FSBM{}, Entropy: EntropyArith}},
		{"pbm-ap-deblock", Config{Qp: 12, Searcher: &search.PBM{}, AdvancedPrediction: true, Deblock: true, IntraPeriod: 4}},
	}
	for _, p := range profiles {
		cfg := p.cfg
		cfg.Workers = 1
		cfg.Searcher = reforge(t, p.cfg)
		ref, refStats, err := EncodePackets(cfg, frames)
		if err != nil {
			t.Fatalf("%s serial: %v", p.name, err)
		}
		for _, workers := range []int{1, 4} {
			for _, pipeline := range []bool{false, true} {
				cfg := p.cfg
				cfg.Workers = workers
				cfg.Pipeline = pipeline
				cfg.Searcher = reforge(t, p.cfg)
				got, stats, err := EncodePackets(cfg, frames)
				if err != nil {
					t.Fatalf("%s workers=%d pipeline=%v: %v", p.name, workers, pipeline, err)
				}
				if !packetsEqual(ref, got) {
					t.Fatalf("%s workers=%d pipeline=%v: packets differ from serial", p.name, workers, pipeline)
				}
				if len(stats.Frames) != len(refStats.Frames) {
					t.Fatalf("%s workers=%d pipeline=%v: %d frame stats, want %d",
						p.name, workers, pipeline, len(stats.Frames), len(refStats.Frames))
				}
			}
		}
		// Shared-pool analysis (the vcodecd serving mode) must match too.
		pool := NewPool(3)
		cfg = p.cfg
		cfg.Pool = pool
		cfg.Pipeline = true
		cfg.Searcher = reforge(t, p.cfg)
		got, _, err := EncodePackets(cfg, frames)
		pool.Close()
		if err != nil {
			t.Fatalf("%s pool: %v", p.name, err)
		}
		if !packetsEqual(ref, got) {
			t.Fatalf("%s: shared-pool packets differ from serial", p.name)
		}
	}
}

// reforge returns a fresh searcher equivalent to the profile's (encoders
// must not share a stateful searcher across runs).
func reforge(t *testing.T, cfg Config) search.Searcher {
	t.Helper()
	switch s := cfg.Searcher.(type) {
	case *core.ACBM:
		return core.New(s.Params)
	case *search.FSBM:
		return &search.FSBM{}
	case *search.PBM:
		return &search.PBM{}
	}
	t.Fatalf("unknown searcher %T", cfg.Searcher)
	return nil
}

// TestEncodeStreamIncremental drives the session API directly: packets
// must arrive in order, one per EncodeFrame (serial mode), each decodable
// the moment it is emitted — the property the serving layer's first-packet
// latency rests on.
func TestEncodeStreamIncremental(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 5, 1)
	var (
		dec     *PacketDecoder
		decoded int
		emitted []int
	)
	s := NewEncodeStream(Config{Qp: 16}, func(p Packet) error {
		emitted = append(emitted, p.Index)
		if p.Index == 0 {
			d, err := NewPacketDecoder(p.Data)
			if err != nil {
				return err
			}
			dec = d
			return nil
		}
		if p.Stats.Bits != 8*len(p.Data) {
			return fmt.Errorf("packet %d: stats bits %d for %d bytes", p.Index, p.Stats.Bits, len(p.Data))
		}
		f, err := dec.DecodePacket(p.Data)
		if err != nil {
			return err
		}
		if f.Size() != frame.SQCIF {
			return fmt.Errorf("packet %d: decoded size %v", p.Index, f.Size())
		}
		decoded++
		return nil
	})
	for i, f := range frames {
		if err := s.EncodeFrame(f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// Serial mode: the packet (and, first, the header) must have been
		// emitted before EncodeFrame returned.
		if want := i + 2; len(emitted) != want {
			t.Fatalf("after frame %d: %d packets emitted, want %d", i, len(emitted), want)
		}
	}
	stats, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if decoded != len(frames) || len(stats.Frames) != len(frames) {
		t.Fatalf("decoded %d, stats %d, want %d", decoded, len(stats.Frames), len(frames))
	}
	for i, idx := range emitted {
		if idx != i {
			t.Fatalf("emit order %v", emitted)
		}
	}
	if _, err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.EncodeFrame(frames[0]); err == nil {
		t.Fatal("EncodeFrame accepted after Close")
	}
}

// TestEncodeStreamEmitError checks an emit failure poisons the stream in
// both serial and pipeline mode: later EncodeFrames and Close surface it.
func TestEncodeStreamEmitError(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 6, 2)
	boom := fmt.Errorf("consumer gone")
	for _, pipeline := range []bool{false, true} {
		n := 0
		s := NewEncodeStream(Config{Qp: 16, Pipeline: pipeline}, func(p Packet) error {
			n++
			if n > 3 {
				return boom
			}
			return nil
		})
		var encodeErr error
		for _, f := range frames {
			if err := s.EncodeFrame(f); err != nil {
				encodeErr = err
				break
			}
		}
		_, closeErr := s.Close()
		if closeErr != boom {
			t.Fatalf("pipeline=%v: Close error %v, want %v", pipeline, closeErr, boom)
		}
		if !pipeline && encodeErr != boom {
			t.Fatalf("serial: EncodeFrame error %v, want %v", encodeErr, boom)
		}
	}
}

// TestEncodeStreamRateControl: the frame-lag rate controller must keep
// the pipeline overlap through the streaming API — no serial degradation
// — while the packets stay decodable and byte-identical to a serial
// rate-controlled stream.
func TestEncodeStreamRateControl(t *testing.T) {
	frames := video.Generate(video.TableTennis, frame.SQCIF, 10, 3)
	var ref [][]byte
	serial := NewEncodeStream(Config{Qp: 14, FPS: 30, TargetKbps: 40}, func(p Packet) error {
		ref = append(ref, p.Data)
		return nil
	})
	for i, f := range frames {
		if err := serial.EncodeFrame(f); err != nil {
			t.Fatalf("serial frame %d: %v", i, err)
		}
	}
	if _, err := serial.Close(); err != nil {
		t.Fatal(err)
	}

	var pkts [][]byte
	s := NewEncodeStream(Config{Qp: 14, FPS: 30, TargetKbps: 40, Pipeline: true}, func(p Packet) error {
		pkts = append(pkts, p.Data)
		return nil
	})
	if !s.overlap {
		t.Fatal("rate-controlled stream degraded to serial")
	}
	for i, f := range frames {
		if err := s.EncodeFrame(f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	stats, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitrateKbps() <= 0 {
		t.Fatal("no rate recorded")
	}
	if !packetsEqual(ref, pkts) {
		t.Fatal("pipelined rate-controlled packets differ from serial")
	}
	dec, err := NewPacketDecoder(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pkts); i++ {
		if _, err := dec.DecodePacket(pkts[i]); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
}

// TestSharedPoolConcurrentSessions runs several sessions on one Pool at
// once (the vcodecd scheduling model) and checks every session's packets
// are byte-identical to the serial encode. Run under -race by make test.
func TestSharedPoolConcurrentSessions(t *testing.T) {
	const sessions = 4
	frames := video.Generate(video.Foreman, frame.SQCIF, 6, 5)
	ref, _, err := EncodePackets(Config{Qp: 14, Workers: 1, Searcher: core.New(core.DefaultParams)}, frames)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(3)
	defer pool.Close()
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := EncodePackets(Config{
				Qp: 14, Pool: pool, Pipeline: true,
				Searcher: core.New(core.DefaultParams),
			}, frames)
			if err != nil {
				errs[i] = err
				return
			}
			if !packetsEqual(ref, got) {
				errs[i] = fmt.Errorf("session %d: packets differ from serial", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPacketFramingRoundTrip: the uvarint container must reproduce index
// and payload exactly, tolerate gaps, and reject implausible records.
func TestPacketFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPacketWriter(&buf)
	payloads := map[int][]byte{0: {1, 2, 3}, 1: {}, 3: bytes.Repeat([]byte{0xAB}, 300)}
	for _, idx := range []int{0, 1, 3} { // index 2 deliberately missing
		if err := pw.WritePacket(idx, payloads[idx]); err != nil {
			t.Fatal(err)
		}
	}
	pr := NewPacketReader(&buf)
	var got []int
	for {
		idx, data, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, payloads[idx]) {
			t.Fatalf("index %d: payload mismatch", idx)
		}
		got = append(got, idx)
	}
	if fmt.Sprint(got) != "[0 1 3]" {
		t.Fatalf("indices %v", got)
	}

	// Truncated payload must not be a clean EOF.
	var trunc bytes.Buffer
	if err := NewPacketWriter(&trunc).WritePacket(0, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	b := trunc.Bytes()[:trunc.Len()-1]
	pr = NewPacketReader(bytes.NewReader(b))
	if _, _, err := pr.ReadPacket(); err == nil || err == io.EOF {
		t.Fatalf("truncated payload: err = %v", err)
	}

	// A record claiming a huge payload must be rejected before allocating.
	pr = NewPacketReader(bytes.NewReader([]byte{
		0x00,                               // index 0
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, // length ≫ maxFramedPacket
	}))
	if _, _, err := pr.ReadPacket(); err == nil {
		t.Fatal("implausible length accepted")
	}
	if err := NewPacketWriter(io.Discard).WritePacket(-1, nil); err == nil {
		t.Fatal("negative index accepted")
	}
}
