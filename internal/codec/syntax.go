package codec

import (
	"fmt"
	"math/bits"

	"repro/internal/arith"
	"repro/internal/bitstream"
	"repro/internal/entropy"
)

// EntropyMode selects the entropy backend for everything after the
// sequence header.
type EntropyMode int

const (
	// EntropyExpGolomb is the baseline static-code mode (the default).
	EntropyExpGolomb EntropyMode = iota
	// EntropyArith codes the same syntax elements with the adaptive
	// binary arithmetic coder — the counterpart of H.263 Annex E.
	EntropyArith
)

// String implements fmt.Stringer.
func (m EntropyMode) String() string {
	if m == EntropyArith {
		return "arith"
	}
	return "expgolomb"
}

// Syntax element contexts. The Exp-Golomb backend ignores them; the
// arithmetic backend allocates adaptive probability models per context.
const (
	sctxMore    = iota // another-frame-follows flag
	sctxCOD            // macroblock skip flag
	sctxMode           // intra/inter flag
	sctxCBP            // coded-block-pattern flags
	sctxACFlag         // intra AC-coded flag
	sctxLast           // TCOEF last flag
	sctxRun            // TCOEF run (UE)
	sctxLevel          // TCOEF level (SE)
	sctxMVX            // MV difference x (SE)
	sctxMVY            // MV difference y (SE)
	sctxInter4V        // advanced-prediction (four-vector) flag
	numSctx
)

// prefixModelsPerCtx bounds the per-position models of the unary-ish
// Exp-Golomb prefix in arithmetic mode.
const prefixModelsPerCtx = 8

// symWriter serialises syntax elements. Raw bits are only legal before
// BeginData (the sequence header).
type symWriter interface {
	// RawHeader appends plain bits (sequence header only).
	RawHeader(v uint64, n uint)
	// UEHeader appends an Exp-Golomb value to the header.
	UEHeader(v uint32)
	// BeginData marks the end of the raw header.
	BeginData()
	Flag(ctx int, b bool)
	UE(ctx int, v uint32)
	SE(ctx int, v int32)
	Bits(v uint64, n uint) // fixed-length field (intra DC)
	// RunLevelLast emits one TCOEF event — UE(sctxRun), SE(sctxLevel),
	// Flag(sctxLast) — letting the Exp-Golomb backend pack all three
	// codes into a single word write.
	RunLevelLast(run uint32, level int32, last bool)
	// MVD emits a motion-vector difference — SE(sctxMVX), SE(sctxMVY) —
	// again packed into one word write by the Exp-Golomb backend.
	MVD(dx, dy int32)
	Len() int       // bits so far (approximate in arithmetic mode)
	Finish() []byte // finalise and return the stream
}

// symReader mirrors symWriter.
type symReader interface {
	RawHeader(n uint) (uint64, error)
	UEHeader() (uint32, error)
	BeginData() error
	Flag(ctx int) (bool, error)
	UE(ctx int) (uint32, error)
	SE(ctx int) (int32, error)
	Bits(n uint) (uint64, error)
}

// newSymWriter builds the backend for mode.
func newSymWriter(mode EntropyMode) symWriter {
	switch mode {
	case EntropyArith:
		return &arithWriter{}
	default:
		return &egWriter{}
	}
}

// --- Exp-Golomb backend -----------------------------------------------------

type egWriter struct {
	w bitstream.Writer
}

func (e *egWriter) RawHeader(v uint64, n uint) { e.w.WriteBits(v, n) }
func (e *egWriter) UEHeader(v uint32)          { entropy.WriteUE(&e.w, v) }
func (e *egWriter) BeginData()                 {}
func (e *egWriter) Flag(_ int, b bool) {
	if b {
		e.w.WriteBit(1)
	} else {
		e.w.WriteBit(0)
	}
}
func (e *egWriter) UE(_ int, v uint32)    { entropy.WriteUE(&e.w, v) }
func (e *egWriter) SE(_ int, v int32)     { entropy.WriteSE(&e.w, v) }
func (e *egWriter) Bits(v uint64, n uint) { e.w.WriteBits(v, n) }
func (e *egWriter) RunLevelLast(run uint32, level int32, last bool) {
	entropy.WriteRunLevelLast(&e.w, run, level, last)
}
func (e *egWriter) MVD(dx, dy int32) { entropy.WriteSEPair(&e.w, dx, dy) }
func (e *egWriter) Len() int         { return e.w.Len() }
func (e *egWriter) Finish() []byte   { return e.w.Bytes() }

type egReader struct {
	r *bitstream.Reader
}

func (e *egReader) RawHeader(n uint) (uint64, error) { return e.r.ReadBits(n) }
func (e *egReader) UEHeader() (uint32, error)        { return entropy.ReadUE(e.r) }
func (e *egReader) BeginData() error                 { return nil }
func (e *egReader) Flag(_ int) (bool, error) {
	b, err := e.r.ReadBit()
	return b == 1, err
}
func (e *egReader) UE(_ int) (uint32, error)    { return entropy.ReadUE(e.r) }
func (e *egReader) SE(_ int) (int32, error)     { return entropy.ReadSE(e.r) }
func (e *egReader) Bits(n uint) (uint64, error) { return e.r.ReadBits(n) }

// --- Arithmetic backend -----------------------------------------------------

type arithWriter struct {
	header bitstream.Writer
	ae     *arith.Encoder
	models []arith.Model
	done   bool
}

func (a *arithWriter) RawHeader(v uint64, n uint) { a.header.WriteBits(v, n) }
func (a *arithWriter) UEHeader(v uint32)          { entropy.WriteUE(&a.header, v) }

func (a *arithWriter) BeginData() {
	if a.ae != nil {
		panic("codec: BeginData called twice")
	}
	a.ae = arith.NewEncoder()
	a.models = arith.NewModels(numSctx * prefixModelsPerCtx)
}

func (a *arithWriter) model(ctx, pos int) *arith.Model {
	if pos >= prefixModelsPerCtx {
		pos = prefixModelsPerCtx - 1
	}
	return &a.models[ctx*prefixModelsPerCtx+pos]
}

func (a *arithWriter) Flag(ctx int, b bool) {
	var bit uint
	if b {
		bit = 1
	}
	a.ae.EncodeBit(a.model(ctx, 0), bit)
}

// UE codes the Exp-Golomb binarisation of v: the prefix "continue" bits
// with per-position adaptive models, the suffix bits as bypass.
func (a *arithWriter) UE(ctx int, v uint32) {
	x := uint64(v) + 1
	k := bits.Len64(x) // number of significant bits; prefix has k-1 zeros
	for i := 0; i < k-1; i++ {
		a.ae.EncodeBit(a.model(ctx, i), 1) // 1 = prefix continues
	}
	a.ae.EncodeBit(a.model(ctx, k-1), 0) // 0 = prefix terminates
	for i := k - 2; i >= 0; i-- {
		a.ae.EncodeBypass(uint(x >> uint(i) & 1))
	}
}

func (a *arithWriter) SE(ctx int, v int32) { a.UE(ctx, entropy.MapSigned(v)) }

// RunLevelLast and MVD have no word path in arithmetic mode: they emit the
// exact per-context symbol sequence, so the adaptive models see precisely
// the bits the unbatched writer produced.
func (a *arithWriter) RunLevelLast(run uint32, level int32, last bool) {
	a.UE(sctxRun, run)
	a.SE(sctxLevel, level)
	a.Flag(sctxLast, last)
}

func (a *arithWriter) MVD(dx, dy int32) {
	a.SE(sctxMVX, dx)
	a.SE(sctxMVY, dy)
}

func (a *arithWriter) Bits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		a.ae.EncodeBypass(uint(v >> uint(i) & 1))
	}
}

func (a *arithWriter) Len() int {
	n := a.header.Len()
	if a.ae != nil {
		n = 8*len(a.header.Bytes()) + a.ae.BitsEmitted()
	}
	return n
}

func (a *arithWriter) Finish() []byte {
	if a.ae == nil {
		return a.header.Bytes()
	}
	if !a.done {
		a.ae.Close()
		a.done = true
	}
	return append(a.header.Bytes(), a.ae.Bytes()...)
}

type arithReader struct {
	r      *bitstream.Reader
	data   []byte
	ad     *arith.Decoder
	models []arith.Model
}

func (a *arithReader) RawHeader(n uint) (uint64, error) { return a.r.ReadBits(n) }
func (a *arithReader) UEHeader() (uint32, error)        { return entropy.ReadUE(a.r) }

func (a *arithReader) BeginData() error {
	// The encoder byte-aligns the header (bitstream padding), so the
	// arithmetic payload starts at the next byte boundary.
	start := (a.r.Pos() + 7) / 8
	if start > len(a.data) {
		return fmt.Errorf("codec: header overruns stream")
	}
	ad, err := arith.NewDecoder(a.data[start:])
	if err != nil {
		return err
	}
	a.ad = ad
	a.models = arith.NewModels(numSctx * prefixModelsPerCtx)
	return nil
}

func (a *arithReader) model(ctx, pos int) *arith.Model {
	if pos >= prefixModelsPerCtx {
		pos = prefixModelsPerCtx - 1
	}
	return &a.models[ctx*prefixModelsPerCtx+pos]
}

func (a *arithReader) Flag(ctx int) (bool, error) {
	b := a.ad.DecodeBit(a.model(ctx, 0))
	return b == 1, a.ad.Err()
}

func (a *arithReader) UE(ctx int) (uint32, error) {
	k := 1
	for a.ad.DecodeBit(a.model(ctx, k-1)) == 1 {
		k++
		if k > 32 {
			return 0, fmt.Errorf("codec: arithmetic UE prefix too long")
		}
	}
	x := uint64(1)
	for i := 0; i < k-1; i++ {
		x = x<<1 | uint64(a.ad.DecodeBypass())
	}
	if err := a.ad.Err(); err != nil {
		return 0, err
	}
	return uint32(x - 1), nil
}

func (a *arithReader) SE(ctx int) (int32, error) {
	u, err := a.UE(ctx)
	if err != nil {
		return 0, err
	}
	return entropy.UnmapSigned(u), nil
}

func (a *arithReader) Bits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		v = v<<1 | uint64(a.ad.DecodeBypass())
	}
	return v, a.ad.Err()
}
