// Package core implements the paper's primary contribution: the Adaptive
// Cost Block Matching (ACBM) motion estimation algorithm (§3).
//
// ACBM always runs the cheap predictive search (PBM) and escalates to full
// search (FSBM) only on blocks classified as critical. A block avoids full
// search when either
//
//	condition 1:  Intra_SAD + SAD_PBM < α + β·Qp²
//
// (the block is smooth and predictively matched well enough for the
// current quantiser — any extra matching gain would be quantised away), or
//
//	condition 2:  SAD_PBM < γ·Intra_SAD
//
// (the block is textured but the predictive match is already near-minimal,
// because a matching error well below the block's own internal variation
// cannot be improved much). Otherwise the block is critical and FSBM runs.
//
// α, β and γ are the paper's quality/cost knobs; the defaults below are
// the values the paper calibrates for FSBM-equivalent quality
// (α=1000, β=8, γ=1/4).
package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/search"
)

// Params are the ACBM threshold parameters.
type Params struct {
	Alpha int // additive quality threshold (α)
	Beta  int // quantiser-dependent threshold weight (β, multiplies Qp²)
	// GammaNum/GammaDen form the texture-relative threshold γ as a
	// rational so the decision stays in integer arithmetic (¼ by default).
	GammaNum, GammaDen int
}

// DefaultParams are the paper's calibrated values: α=1000, β=8, γ=1/4.
var DefaultParams = Params{Alpha: 1000, Beta: 8, GammaNum: 1, GammaDen: 4}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.GammaDen <= 0 {
		return fmt.Errorf("core: GammaDen must be positive, got %d", p.GammaDen)
	}
	if p.Alpha < 0 || p.Beta < 0 || p.GammaNum < 0 {
		return fmt.Errorf("core: negative ACBM parameter (α=%d β=%d γnum=%d)", p.Alpha, p.Beta, p.GammaNum)
	}
	return nil
}

// Decision classifies how ACBM resolved one block.
type Decision int

const (
	// AcceptedEasy: condition 1 held — the block is smooth/well matched
	// for the current quantiser; the PBM vector was accepted.
	AcceptedEasy Decision = iota
	// AcceptedGoodMatch: condition 2 held — the block is textured but the
	// PBM match is near-minimal; the PBM vector was accepted.
	AcceptedGoodMatch
	// Critical: both conditions failed; FSBM was run.
	Critical
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case AcceptedEasy:
		return "easy"
	case AcceptedGoodMatch:
		return "good-match"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// Trace records the decision evidence for one block, for the experiment
// harness and for debugging parameter choices.
type Trace struct {
	IntraSAD   int
	PBMSAD     int
	Threshold1 int // α + β·Qp²
	Cond1      bool
	Cond2      bool
	Decision   Decision
	PBMPoints  int
	FSBMPoints int // 0 when FSBM was skipped
}

// Stats aggregates ACBM behaviour over many blocks.
type Stats struct {
	Blocks      int
	Easy        int
	GoodMatch   int
	CriticalCnt int
	Points      int64 // total candidate positions searched
}

// AvgPoints returns the average number of candidate positions searched per
// block — the metric of the paper's Table 1.
func (s Stats) AvgPoints() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.Points) / float64(s.Blocks)
}

// FSBMRate returns the fraction of blocks classified critical.
func (s Stats) FSBMRate() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.CriticalCnt) / float64(s.Blocks)
}

// Add merges o into s.
func (s *Stats) Add(o Stats) {
	s.Blocks += o.Blocks
	s.Easy += o.Easy
	s.GoodMatch += o.GoodMatch
	s.CriticalCnt += o.CriticalCnt
	s.Points += o.Points
}

// ACBM is the adaptive cost block matching searcher. It implements
// search.Searcher and accumulates Stats across calls; it is not safe for
// concurrent use (give each goroutine its own instance).
type ACBM struct {
	Params Params
	PBM    search.PBM
	FSBM   search.FSBM

	stats Stats
}

// New returns an ACBM searcher with the given parameters (zero Params
// fields fall back to DefaultParams).
func New(p Params) *ACBM {
	if p == (Params{}) {
		p = DefaultParams
	}
	return &ACBM{Params: p}
}

// Name implements search.Searcher.
func (a *ACBM) Name() string { return "ACBM" }

// Stats returns the accumulated per-block statistics.
func (a *ACBM) Stats() Stats { return a.stats }

// ResetStats clears the accumulated statistics.
func (a *ACBM) ResetStats() { a.stats = Stats{} }

// Search implements search.Searcher.
func (a *ACBM) Search(in *search.Input) search.Result {
	r, _ := a.SearchTrace(in)
	return r
}

// Fork implements search.Forker: the returned instance shares the parent's
// parameters but owns its statistics, so each encoder worker can run ACBM
// without synchronisation.
func (a *ACBM) Fork() search.Searcher {
	return &ACBM{Params: a.Params, PBM: a.PBM, FSBM: a.FSBM}
}

// Join implements search.Forker: it adds a forked instance's statistics
// back into the parent. Stats fields are plain sums, so the merged totals
// are independent of worker scheduling.
func (a *ACBM) Join(w search.Searcher) {
	if f, ok := w.(*ACBM); ok && f != a {
		a.stats.Add(f.stats)
	}
}

// SearchTrace runs ACBM on one block and returns the decision evidence
// alongside the result.
func (a *ACBM) SearchTrace(in *search.Input) (search.Result, Trace) {
	p := a.Params
	if p.GammaDen == 0 {
		p = DefaultParams
	}
	intra := metrics.IntraSAD(in.Cur, in.BX, in.BY, in.W, in.H)
	pbmRes := a.PBM.Search(in)

	tr := Trace{
		IntraSAD:   intra,
		PBMSAD:     pbmRes.SAD,
		Threshold1: p.Alpha + p.Beta*in.Qp*in.Qp,
		PBMPoints:  pbmRes.Points,
	}
	tr.Cond1 = intra+pbmRes.SAD < tr.Threshold1
	tr.Cond2 = pbmRes.SAD*p.GammaDen < p.GammaNum*intra

	a.stats.Blocks++
	switch {
	case tr.Cond1:
		tr.Decision = AcceptedEasy
		a.stats.Easy++
	case tr.Cond2:
		tr.Decision = AcceptedGoodMatch
		a.stats.GoodMatch++
	default:
		tr.Decision = Critical
		a.stats.CriticalCnt++
	}
	if tr.Decision != Critical {
		a.stats.Points += int64(pbmRes.Points)
		return pbmRes, tr
	}

	fsbmRes := a.FSBM.Search(in)
	tr.FSBMPoints = fsbmRes.Points
	total := pbmRes.Points + fsbmRes.Points
	a.stats.Points += int64(total)
	// Keep the better of the two vectors; PBM's half-pel position can in
	// rare cases beat FSBM's refinement of a different integer minimum.
	best := fsbmRes
	if pbmRes.SAD < fsbmRes.SAD {
		best = pbmRes
	}
	best.Points = total
	return best, tr
}
