package core

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/search"
	"repro/internal/video"
)

func texturedPlane(w, h int, seed uint64, scale float64, amp int) *frame.Plane {
	n := video.Noise{Seed: seed, Scale: scale, Octaves: 3}
	p := frame.NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p.Set(x, y, frame.ClampU8(128+int(float64(amp)*(n.At(float64(x), float64(y))-0.5))))
		}
	}
	return p
}

func newInput(cur, ref *frame.Plane, bx, by, qp int) *search.Input {
	in := &search.Input{
		Cur: cur, Ref: ref, RefI: frame.Interpolate(ref),
		BX: bx, BY: by, W: 16, H: 16, Range: 15, Qp: qp,
		CurField: mvfield.NewField(6, 6), MBX: 2, MBY: 2,
	}
	return in
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams
	if p.Alpha != 1000 || p.Beta != 8 || p.GammaNum != 1 || p.GammaDen != 4 {
		t.Fatalf("defaults %+v do not match the paper's α=1000 β=8 γ=1/4", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Alpha: 1000, Beta: 8, GammaNum: 1, GammaDen: 0},
		{Alpha: -1, Beta: 8, GammaNum: 1, GammaDen: 4},
		{Alpha: 1000, Beta: -2, GammaNum: 1, GammaDen: 4},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
}

func TestNewZeroParamsFallsBackToDefaults(t *testing.T) {
	a := New(Params{})
	if a.Params != DefaultParams {
		t.Fatalf("New(Params{}).Params = %+v", a.Params)
	}
	if a.Name() != "ACBM" {
		t.Fatal("name wrong")
	}
}

func TestSmoothWellMatchedBlockIsEasy(t *testing.T) {
	// A smooth static block at high Qp: condition 1 must accept the PBM
	// vector and skip FSBM entirely.
	ref := texturedPlane(96, 96, 3, 40, 10) // gentle texture
	cur := ref.Clone()
	in := newInput(cur, ref, 40, 40, 30)
	a := New(DefaultParams)
	res, tr := a.SearchTrace(in)
	if tr.Decision != AcceptedEasy {
		t.Fatalf("decision = %v (intra=%d pbm=%d thr=%d)", tr.Decision, tr.IntraSAD, tr.PBMSAD, tr.Threshold1)
	}
	if tr.FSBMPoints != 0 {
		t.Fatal("FSBM ran on an easy block")
	}
	if res.Points >= 100 {
		t.Fatalf("easy block cost %d points", res.Points)
	}
	if res.MV != mvfield.Zero {
		t.Fatalf("MV = %v, want zero", res.MV)
	}
}

func TestTexturedWellMatchedBlockIsGoodMatch(t *testing.T) {
	// Heavy texture (condition 1 fails at low Qp) but a perfect temporal
	// predictor: condition 2 accepts the PBM match.
	ref := texturedPlane(96, 96, 7, 4, 160)
	cur := ref.Shift(5, 4)
	in := newInput(cur, ref, 40, 40, 4) // low Qp → tight threshold 1
	prev := mvfield.NewField(6, 6)
	for by := 0; by < 6; by++ {
		for bx := 0; bx < 6; bx++ {
			prev.Set(bx, by, mvfield.FromFullPel(-5, -4))
		}
	}
	in.PrevField = prev
	a := New(DefaultParams)
	res, tr := a.SearchTrace(in)
	if tr.Decision != AcceptedGoodMatch {
		t.Fatalf("decision = %v (intra=%d pbm=%d thr1=%d)", tr.Decision, tr.IntraSAD, tr.PBMSAD, tr.Threshold1)
	}
	if res.MV != mvfield.FromFullPel(-5, -4) {
		t.Fatalf("MV = %v", res.MV)
	}
	if tr.FSBMPoints != 0 {
		t.Fatal("FSBM ran on a good-match block")
	}
}

func TestUnmatchedTexturedBlockIsCritical(t *testing.T) {
	// Unrelated textured frames at low Qp: both conditions fail, FSBM runs.
	ref := texturedPlane(96, 96, 11, 4, 160)
	cur := texturedPlane(96, 96, 12, 4, 160)
	in := newInput(cur, ref, 40, 40, 4)
	a := New(DefaultParams)
	res, tr := a.SearchTrace(in)
	if tr.Decision != Critical {
		t.Fatalf("decision = %v (intra=%d pbm=%d)", tr.Decision, tr.IntraSAD, tr.PBMSAD)
	}
	if tr.FSBMPoints < 900 {
		t.Fatalf("FSBM points = %d, expected full search", tr.FSBMPoints)
	}
	if res.Points != tr.PBMPoints+tr.FSBMPoints {
		t.Fatalf("points %d != pbm %d + fsbm %d", res.Points, tr.PBMPoints, tr.FSBMPoints)
	}
	if res.SAD > tr.PBMSAD {
		t.Fatal("critical path returned a worse match than PBM")
	}
}

func TestACBMNeverWorseThanPBM(t *testing.T) {
	// On every decision path the returned SAD is ≤ the PBM SAD.
	seeds := []uint64{1, 2, 3, 4, 5}
	a := New(DefaultParams)
	for _, s := range seeds {
		ref := texturedPlane(96, 96, s, 6, 120)
		cur := texturedPlane(96, 96, s+100, 6, 120)
		in := newInput(cur, ref, 40, 40, 16)
		res, tr := a.SearchTrace(in)
		if res.SAD > tr.PBMSAD {
			t.Fatalf("seed %d: ACBM SAD %d > PBM SAD %d", s, res.SAD, tr.PBMSAD)
		}
	}
}

func TestQpControlsEscalation(t *testing.T) {
	// The same moderately mismatched block must escalate at low Qp and be
	// accepted at high Qp — the adaptive-cost property of §3.2.
	ref := texturedPlane(96, 96, 21, 8, 60)
	cur := ref.Shift(3, 2)
	// Perturb the block so the PBM match is imperfect.
	for y := 40; y < 56; y++ {
		for x := 40; x < 56; x++ {
			cur.Set(x, y, frame.ClampU8(int(cur.At(x, y))+int(3*((x+y)%3))))
		}
	}
	runAt := func(qp int) Decision {
		in := newInput(cur, ref, 40, 40, qp)
		a := New(DefaultParams)
		_, tr := a.SearchTrace(in)
		return tr.Decision
	}
	if runAt(30) == Critical {
		t.Fatal("block critical even at Qp 30")
	}
	if runAt(1) != Critical {
		t.Fatal("block not critical at Qp 1")
	}
}

func TestGammaKnob(t *testing.T) {
	// γ=0 disables condition 2; a huge γ accepts any textured match.
	ref := texturedPlane(96, 96, 31, 4, 160)
	cur := ref.Shift(2, 2)
	in := func() *search.Input { return newInput(cur, ref, 40, 40, 1) }
	strict := New(Params{Alpha: 0, Beta: 0, GammaNum: 0, GammaDen: 1})
	_, tr := strict.SearchTrace(in())
	if tr.Decision != Critical {
		t.Fatalf("γ=0, α=β=0 should force FSBM everywhere, got %v", tr.Decision)
	}
	loose := New(Params{Alpha: 0, Beta: 0, GammaNum: 100, GammaDen: 1})
	_, tr = loose.SearchTrace(in())
	if tr.Decision != AcceptedGoodMatch {
		t.Fatalf("huge γ should accept, got %v", tr.Decision)
	}
}

func TestStatsAccumulation(t *testing.T) {
	a := New(DefaultParams)
	ref := texturedPlane(96, 96, 41, 6, 120)
	cur := ref.Clone()
	for i := 0; i < 3; i++ {
		a.Search(newInput(cur, ref, 40, 40, 30))
	}
	st := a.Stats()
	if st.Blocks != 3 {
		t.Fatalf("Blocks = %d", st.Blocks)
	}
	if st.Easy+st.GoodMatch+st.CriticalCnt != st.Blocks {
		t.Fatal("decision counts do not partition blocks")
	}
	if st.AvgPoints() <= 0 {
		t.Fatal("AvgPoints must be positive")
	}
	a.ResetStats()
	if a.Stats().Blocks != 0 {
		t.Fatal("ResetStats did not clear")
	}

	var merged Stats
	merged.Add(st)
	merged.Add(st)
	if merged.Blocks != 6 || merged.Points != 2*st.Points {
		t.Fatal("Stats.Add wrong")
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.AvgPoints() != 0 || s.FSBMRate() != 0 {
		t.Fatal("empty stats must report zeros")
	}
}

func TestDecisionString(t *testing.T) {
	if AcceptedEasy.String() != "easy" || AcceptedGoodMatch.String() != "good-match" || Critical.String() != "critical" {
		t.Fatal("decision names wrong")
	}
	if Decision(9).String() == "" {
		t.Fatal("unknown decision must format")
	}
}

func TestForceFullSearchParams(t *testing.T) {
	// The paper notes the algorithm can be adjusted to avoid FSBM for all
	// blocks: with α huge every block is easy.
	a := New(Params{Alpha: 1 << 30, Beta: 0, GammaNum: 0, GammaDen: 1})
	ref := texturedPlane(96, 96, 51, 4, 160)
	cur := texturedPlane(96, 96, 52, 4, 160)
	_, tr := a.SearchTrace(newInput(cur, ref, 40, 40, 1))
	if tr.Decision != AcceptedEasy {
		t.Fatalf("huge α: decision %v", tr.Decision)
	}
	if a.Stats().FSBMRate() != 0 {
		t.Fatal("FSBM rate must be zero")
	}
}
