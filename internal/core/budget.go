package core

import (
	"fmt"
	"math"

	"repro/internal/search"
)

// Budgeted is a complexity-controlled ACBM: it adjusts the α/γ thresholds
// with a multiplicative feedback loop so the running average of search
// positions per macroblock tracks a target. This realises the paper's
// claim that the parameters form a knob "to control, depending on the
// potential application, the weight given to video quality or
// computational load" — here the knob is servoed automatically, which is
// what a rate/complexity-constrained product encoder needs (the paper's
// "variable bandwidth channel conditions").
//
// The controller is frame-granular so it composes with the wavefront
// encoder's worker model (search.Forker):
//
//   - The budget *decision* — the scaled α/γ thresholds — is frozen at
//     frame start: Fork snapshots the current scale, so every macroblock
//     of a frame is classified under the same thresholds no matter which
//     worker analyses it.
//   - The point *accounting* is per worker: each fork counts the
//     positions its blocks consumed, and Join merges the counts
//     additively (order-independent sums).
//   - The *servo* runs once per frame, when the last fork joins: one
//     multiplicative threshold step proportional to the frame's measured
//     points-per-block overshoot. Because its input is a sum over the
//     whole frame, the step — and therefore every later decision — is
//     identical for every worker count, shared pool or pipeline setting;
//     bitstreams are byte-identical across all of them.
//
// Calling Search directly on a Budgeted (outside the encoder's fork/join
// protocol) keeps the scan-order update cadence — the servo steps once
// per Window blocks — but uses the same proportional step law as the
// per-frame servo.
type Budgeted struct {
	// Target is the desired long-run average of candidate positions per
	// block. Must be positive.
	Target float64
	// Base supplies the initial thresholds (DefaultParams if zero).
	Base Params
	// Window is the number of blocks between controller updates when
	// Search is called directly, outside the per-frame fork/join protocol
	// (default 32).
	Window int

	inner  ACBM
	scale  float64 // multiplies α and γ; larger = fewer critical blocks
	winPts int64
	winCnt int

	// Per-frame fork/join accounting. outstanding counts live forks; the
	// frame totals accumulate across Joins and feed one servo step when
	// the count returns to zero.
	outstanding int
	framePts    int64
	frameBlocks int

	// baseTarget remembers the constructed Target so ScaleBudget is
	// absolute (scale × original), not cumulative.
	baseTarget float64
}

// NewBudgeted returns a controller targeting the given positions/MB.
func NewBudgeted(target float64, base Params) (*Budgeted, error) {
	if target <= 0 {
		return nil, fmt.Errorf("core: budget target must be positive, got %g", target)
	}
	if base == (Params{}) {
		base = DefaultParams
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	b := &Budgeted{Target: target, Base: base, scale: 1, baseTarget: target}
	b.apply()
	return b, nil
}

// ScaleBudget retargets the controller to scale × the constructed
// budget (a QoS degradation shrinks it, restoration brings it back; the
// call is absolute, so repeated actuations do not compound). It must be
// called between frames — outside the Fork/Join window — where it is
// safe by the same argument that makes the servo frame-granular: each
// frame's thresholds are frozen at Fork, and the servo reads Target only
// when the last fork joins. Non-positive scales are ignored.
func (b *Budgeted) ScaleBudget(scale float64) {
	if scale <= 0 {
		return
	}
	if b.baseTarget <= 0 { // literal-constructed Budgeted: adopt Target
		b.baseTarget = b.Target
	}
	b.Target = b.baseTarget * scale
}

// Name implements search.Searcher.
func (b *Budgeted) Name() string { return "ACBM-budget" }

// Stats exposes the merged ACBM statistics (fork statistics are added
// back in Join).
func (b *Budgeted) Stats() Stats { return b.inner.Stats() }

// Scale returns the current threshold multiplier (diagnostic).
func (b *Budgeted) Scale() float64 { return b.scale }

func (b *Budgeted) window() int {
	if b.Window > 0 {
		return b.Window
	}
	return 32
}

// apply rebuilds the inner ACBM parameters from Base and scale.
func (b *Budgeted) apply() {
	p := b.Base
	p.Alpha = int(float64(p.Alpha) * b.scale)
	// Scale γ by adjusting the numerator; keep the denominator to retain
	// precision for scales < 1.
	p.GammaNum = int(float64(p.GammaNum*16) * b.scale)
	p.GammaDen *= 16
	b.inner.Params = p
}

// adjust applies one multiplicative servo step from a measured
// points-per-block average. The step is proportional to the overshoot
// (√(avg/Target), clamped) rather than a fixed factor: the frame-granular
// controller updates far less often than the old per-32-blocks loop, so
// it must cover the same ground in fewer steps. Over budget reacts up to
// ×4 per update (the budget is the hard constraint); under budget tightens
// at most ÷2 (spending quality can afford to be gradual).
func (b *Budgeted) adjust(avg float64) {
	if avg >= b.Target*0.9 && avg <= b.Target*1.1 {
		return // dead zone
	}
	r := math.Sqrt(avg / b.Target)
	if r > 4 {
		r = 4
	}
	if r < 0.5 {
		r = 0.5
	}
	b.scale *= r
	if b.scale > 64 {
		b.scale = 64
	}
	if b.scale < 1.0/64 {
		b.scale = 1.0 / 64
	}
	b.apply()
}

// Search implements search.Searcher for direct (non-forked) use: the
// servo steps once per Window blocks, in scan order, with the same
// proportional step the per-frame path uses.
func (b *Budgeted) Search(in *search.Input) search.Result {
	res := b.inner.Search(in)
	b.winPts += int64(res.Points)
	b.winCnt++
	if b.winCnt >= b.window() {
		b.adjust(float64(b.winPts) / float64(b.winCnt))
		b.winPts, b.winCnt = 0, 0
	}
	return res
}

// budgetedFork is one worker's view of a Budgeted for one frame: an ACBM
// with the thresholds frozen at fork time plus private point accounting.
type budgetedFork struct {
	inner  ACBM
	pts    int64
	blocks int
}

// Name implements search.Searcher.
func (f *budgetedFork) Name() string { return "ACBM-budget" }

// Search implements search.Searcher.
func (f *budgetedFork) Search(in *search.Input) search.Result {
	res := f.inner.Search(in)
	f.pts += int64(res.Points)
	f.blocks++
	return res
}

// Fork implements search.Forker: the returned instance snapshots the
// current thresholds — the frame's frozen budget decision — and owns its
// own point accounting.
func (b *Budgeted) Fork() search.Searcher {
	b.outstanding++
	return &budgetedFork{inner: ACBM{Params: b.inner.Params}}
}

// Join implements search.Forker: fork statistics and consumed points
// merge additively, and when the last outstanding fork joins — the
// frame's analysis is complete — the α/γ servo steps once from the
// frame's aggregate points-per-block.
func (b *Budgeted) Join(s search.Searcher) {
	f, ok := s.(*budgetedFork)
	if !ok {
		return
	}
	b.inner.stats.Add(f.inner.stats)
	b.framePts += f.pts
	b.frameBlocks += f.blocks
	b.outstanding--
	if b.outstanding > 0 {
		return
	}
	if b.frameBlocks > 0 {
		b.adjust(float64(b.framePts) / float64(b.frameBlocks))
	}
	b.framePts, b.frameBlocks = 0, 0
}
