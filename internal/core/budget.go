package core

import (
	"fmt"

	"repro/internal/search"
)

// Budgeted is a complexity-controlled ACBM: it adjusts the α/γ thresholds
// online with a multiplicative feedback loop so the running average of
// search positions per macroblock tracks a target. This realises the
// paper's claim that the parameters form a knob "to control, depending on
// the potential application, the weight given to video quality or
// computational load" — here the knob is servoed automatically, which is
// what a rate/complexity-constrained product encoder needs (the paper's
// "variable bandwidth channel conditions").
//
// Not safe for concurrent use.
type Budgeted struct {
	// Target is the desired long-run average of candidate positions per
	// block. Must be positive.
	Target float64
	// Base supplies the initial thresholds (DefaultParams if zero).
	Base Params
	// Window is the number of blocks between controller updates
	// (default 32).
	Window int

	inner  ACBM
	scale  float64 // multiplies α and γ; larger = fewer critical blocks
	winPts int64
	winCnt int
}

// NewBudgeted returns a controller targeting the given positions/MB.
func NewBudgeted(target float64, base Params) (*Budgeted, error) {
	if target <= 0 {
		return nil, fmt.Errorf("core: budget target must be positive, got %g", target)
	}
	if base == (Params{}) {
		base = DefaultParams
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	b := &Budgeted{Target: target, Base: base, scale: 1}
	b.apply()
	return b, nil
}

// Name implements search.Searcher.
func (b *Budgeted) Name() string { return "ACBM-budget" }

// Stats exposes the wrapped ACBM statistics.
func (b *Budgeted) Stats() Stats { return b.inner.Stats() }

// Scale returns the current threshold multiplier (diagnostic).
func (b *Budgeted) Scale() float64 { return b.scale }

func (b *Budgeted) window() int {
	if b.Window > 0 {
		return b.Window
	}
	return 32
}

// apply rebuilds the inner ACBM parameters from Base and scale.
func (b *Budgeted) apply() {
	p := b.Base
	p.Alpha = int(float64(p.Alpha) * b.scale)
	// Scale γ by adjusting the numerator; keep the denominator to retain
	// precision for scales < 1.
	p.GammaNum = int(float64(p.GammaNum*16) * b.scale)
	p.GammaDen *= 16
	b.inner.Params = p
}

// Search implements search.Searcher.
func (b *Budgeted) Search(in *search.Input) search.Result {
	res := b.inner.Search(in)
	b.winPts += int64(res.Points)
	b.winCnt++
	if b.winCnt >= b.window() {
		avg := float64(b.winPts) / float64(b.winCnt)
		switch {
		case avg > b.Target*1.1:
			b.scale *= 1.3 // over budget: accept more PBM results
		case avg < b.Target*0.9:
			b.scale /= 1.3 // under budget: spend quality
		}
		if b.scale > 64 {
			b.scale = 64
		}
		if b.scale < 1.0/64 {
			b.scale = 1.0 / 64
		}
		b.apply()
		b.winPts, b.winCnt = 0, 0
	}
	return res
}
