package core

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/video"
)

func TestNewBudgetedValidation(t *testing.T) {
	if _, err := NewBudgeted(0, Params{}); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := NewBudgeted(-5, Params{}); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := NewBudgeted(100, Params{Alpha: -1, GammaDen: 1}); err == nil {
		t.Fatal("invalid base params accepted")
	}
	b, err := NewBudgeted(100, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "ACBM-budget" {
		t.Fatal("name wrong")
	}
	if b.Scale() != 1 {
		t.Fatal("initial scale must be 1")
	}
}

func TestBudgetedTracksTargetOnHardContent(t *testing.T) {
	// Plain ACBM on this clip runs ~700+ positions/MB at low Qp; a 150
	// positions/MB budget must pull the average down near the target.
	base := video.Generate(video.Foreman, frame.QCIF, 24, 3)
	frames := video.Decimate(base, 3)

	plain := New(DefaultParams)
	ps, _, err := codec.EncodeSequence(codec.Config{Qp: 14, Searcher: plain, FPS: 10}, frames)
	if err != nil {
		t.Fatal(err)
	}
	budget, err := NewBudgeted(150, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	bs, _, err := codec.EncodeSequence(codec.Config{Qp: 14, Searcher: budget, FPS: 10}, frames)
	if err != nil {
		t.Fatal(err)
	}
	plainAvg, budgetAvg := ps.AvgSearchPointsPerMB(), bs.AvgSearchPointsPerMB()
	if plainAvg < 300 {
		t.Skipf("content unexpectedly easy (plain ACBM %.0f pts/MB)", plainAvg)
	}
	if budgetAvg >= plainAvg/2 {
		t.Fatalf("budgeted %.0f pts/MB not well below plain %.0f", budgetAvg, plainAvg)
	}
	if budgetAvg > 450 {
		t.Fatalf("budgeted %.0f pts/MB far above 150 target", budgetAvg)
	}
	// Quality cannot collapse: the budgeted encoder still beats plain PBM
	// by construction and must stay within 1 dB of unbudgeted ACBM here.
	if bs.AvgPSNRY() < ps.AvgPSNRY()-1.0 {
		t.Fatalf("budgeted PSNR %.2f more than 1 dB below plain %.2f", bs.AvgPSNRY(), ps.AvgPSNRY())
	}
}

func TestBudgetedGenerousTargetActsLikePlainACBM(t *testing.T) {
	frames := video.Generate(video.MissAmerica, frame.SQCIF, 8, 3)
	budget, err := NewBudgeted(969, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	bs, _, err := codec.EncodeSequence(codec.Config{Qp: 20, Searcher: budget, FPS: 30}, frames)
	if err != nil {
		t.Fatal(err)
	}
	plain := New(DefaultParams)
	ps, _, err := codec.EncodeSequence(codec.Config{Qp: 20, Searcher: plain, FPS: 30}, frames)
	if err != nil {
		t.Fatal(err)
	}
	// Easy content is already far under budget; the controller may tighten
	// the thresholds (spending quality) but must not exceed FSBM cost.
	if bs.AvgSearchPointsPerMB() > 969 {
		t.Fatalf("budgeted exceeded FSBM cost: %.0f", bs.AvgSearchPointsPerMB())
	}
	if bs.AvgPSNRY() < ps.AvgPSNRY()-0.3 {
		t.Fatalf("budgeted PSNR %.2f below plain %.2f on easy content", bs.AvgPSNRY(), ps.AvgPSNRY())
	}
}

// TestBudgetedForkJoinDifferential pins the frame-granular fork/join
// contract on Foreman-class content: per-frame budget decisions frozen at
// frame start and point accounting merged additively across workers must
// consume exactly the points of the sequential (Workers=1) reference —
// same merged statistics, same final threshold scale, same bitstream.
func TestBudgetedForkJoinDifferential(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.QCIF, 10, 3)
	encode := func(workers int, pipeline bool) (*Budgeted, *codec.SequenceStats, []byte) {
		t.Helper()
		b, err := NewBudgeted(150, DefaultParams)
		if err != nil {
			t.Fatal(err)
		}
		stats, bs, err := codec.EncodeSequence(codec.Config{
			Qp: 14, FPS: 30, Searcher: b, Workers: workers, Pipeline: pipeline,
		}, frames)
		if err != nil {
			t.Fatalf("workers=%d pipeline=%v: %v", workers, pipeline, err)
		}
		return b, stats, bs
	}
	refB, refStats, refBS := encode(1, false)
	for _, tc := range []struct {
		workers  int
		pipeline bool
	}{{4, false}, {4, true}, {7, true}} {
		b, stats, bs := encode(tc.workers, tc.pipeline)
		if b.Stats() != refB.Stats() {
			t.Errorf("workers=%d pipeline=%v: merged stats differ\n got %+v\nwant %+v",
				tc.workers, tc.pipeline, b.Stats(), refB.Stats())
		}
		if b.Stats().Points != refB.Stats().Points {
			t.Errorf("workers=%d pipeline=%v: consumed points %d, sequential reference %d",
				tc.workers, tc.pipeline, b.Stats().Points, refB.Stats().Points)
		}
		if b.Scale() != refB.Scale() {
			t.Errorf("workers=%d pipeline=%v: final scale %g, want %g",
				tc.workers, tc.pipeline, b.Scale(), refB.Scale())
		}
		if stats.AvgSearchPointsPerMB() != refStats.AvgSearchPointsPerMB() {
			t.Errorf("workers=%d pipeline=%v: points/MB %.2f, want %.2f",
				tc.workers, tc.pipeline, stats.AvgSearchPointsPerMB(), refStats.AvgSearchPointsPerMB())
		}
		if !bytes.Equal(bs, refBS) {
			t.Errorf("workers=%d pipeline=%v: bitstream differs from sequential", tc.workers, tc.pipeline)
		}
	}
}

func TestBudgetedScaleBounded(t *testing.T) {
	b, err := NewBudgeted(1, DefaultParams) // impossible target: always over
	if err != nil {
		t.Fatal(err)
	}
	b.Window = 4
	ref := texturedPlane(96, 96, 5, 4, 160)
	cur := texturedPlane(96, 96, 6, 4, 160)
	for i := 0; i < 400; i++ {
		b.Search(newInput(cur, ref, 40, 40, 4))
	}
	if b.Scale() > 64.001 {
		t.Fatalf("scale %v exceeded bound", b.Scale())
	}
	st := b.Stats()
	if st.Blocks != 400 {
		t.Fatalf("blocks = %d", st.Blocks)
	}
	// With the loosest thresholds everything should be accepted by now.
	if st.CriticalCnt == st.Blocks {
		t.Fatal("controller never relaxed thresholds")
	}
}
