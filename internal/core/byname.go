package core

import (
	"fmt"
	"strings"

	"repro/internal/search"
)

// SearcherByName builds a motion estimator from its CLI name — the
// shared vocabulary of cmd/vcodec's -me flag, vcodecd's ?me= query
// parameter and vload's benchmark config. ACBM uses DefaultParams;
// callers needing custom α/β construct core.New directly.
func SearcherByName(name string) (search.Searcher, error) {
	switch strings.ToLower(name) {
	case "", "acbm":
		return New(DefaultParams), nil
	case "fsbm":
		return &search.FSBM{}, nil
	case "rcfsbm":
		return &search.RCFSBM{}, nil
	case "pbm":
		return &search.PBM{}, nil
	case "tss":
		return &search.TSS{}, nil
	case "ntss":
		return &search.NTSS{}, nil
	case "4ss", "fss":
		return &search.FSS{}, nil
	case "ds", "diamond":
		return &search.Diamond{}, nil
	case "cds":
		return &search.CrossDiamond{}, nil
	case "hexbs", "hex":
		return &search.HEXBS{}, nil
	}
	return nil, fmt.Errorf("unknown motion estimator %q", name)
}
