package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/search"
)

// Example runs ACBM on a single macroblock whose content moved by a known
// displacement, showing the decision trace the algorithm exposes.
func Example() {
	// A textured reference and its copy translated 2 pels right, 1 down.
	ref := frame.NewPlane(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			ref.Set(x, y, uint8((x*x+y*3)%251))
		}
	}
	cur := ref.Shift(2, 1)

	// The previous frame's motion field supplies the temporal predictor
	// PBM starts from (Fig. 2 of the paper).
	prev := mvfield.NewField(6, 6)
	for by := 0; by < 6; by++ {
		for bx := 0; bx < 6; bx++ {
			prev.Set(bx, by, mvfield.FromFullPel(-2, -1))
		}
	}
	acbm := core.New(core.DefaultParams) // α=1000 β=8 γ=1/4
	in := &search.Input{
		Cur: cur, Ref: ref, RefI: frame.Interpolate(ref),
		BX: 40, BY: 40, W: 16, H: 16, Range: 15, Qp: 16,
		CurField: mvfield.NewField(6, 6), PrevField: prev, MBX: 2, MBY: 2,
	}
	res, tr := acbm.SearchTrace(in)
	fmt.Printf("mv=%v sad=%d decision=%v fsbm-ran=%v\n",
		res.MV, res.SAD, tr.Decision, tr.FSBMPoints > 0)
	// Output:
	// mv=(-2,-1) sad=0 decision=good-match fsbm-ran=false
}
