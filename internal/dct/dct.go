// Package dct implements the 8×8 type-II discrete cosine transform and the
// H.263 uniform quantiser used by the hybrid encoder substrate
// (internal/codec). The transform is the separable float implementation of
// the reference TMN encoders; the quantiser follows the H.263 rules: a
// dead-zone quantiser for inter and intra-AC coefficients and a fixed /8
// rule for the intra DC coefficient.
//
// Forward and Inverse are restructured for speed — hoisted row conversion,
// contiguous (transposed where needed) basis tables, a DC-only inverse
// fast path — but every restructuring preserves the reference kernels'
// floating-point operation order exactly, so the int32(math.Round) outputs
// are bit-identical to forwardRef/inverseRef (reference.go), which the
// differential tests in reference_test.go enforce.
package dct

import "math"

// BlockSize is the transform dimension (8×8 coefficients per block).
const BlockSize = 8

// Block is one 8×8 coefficient or sample-difference block in row-major
// order. Spatial-domain values are signed (residuals may be negative).
type Block [BlockSize * BlockSize]int32

// cosTable[u][x] = c(u)/2 · cos((2x+1)uπ/16), the separable DCT-II basis.
// cosTableT is its transpose, so both passes of each transform can walk a
// basis row contiguously.
var (
	cosTable  [BlockSize][BlockSize]float64
	cosTableT [BlockSize][BlockSize]float64
)

func init() {
	for u := 0; u < BlockSize; u++ {
		cu := 1.0
		if u == 0 {
			cu = math.Sqrt2 / 2
		}
		for x := 0; x < BlockSize; x++ {
			cosTable[u][x] = cu / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
	for u := 0; u < BlockSize; u++ {
		for x := 0; x < BlockSize; x++ {
			cosTableT[x][u] = cosTable[u][x]
		}
	}
}

// dot8 is the length-8 inner product accumulated left to right — the same
// association (((a0+a1)+a2)+…) the reference kernels' += loops produce, so
// results are bit-identical.
func dot8(a, b *[BlockSize]float64) float64 {
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	return s
}

// Forward computes the 2-D DCT-II of src into dst (both row-major 8×8).
// Coefficients are rounded to the nearest integer. src and dst may alias.
func Forward(dst, src *Block) {
	var tmp [BlockSize][BlockSize]float64 // tmp[y][u]
	var rowF [BlockSize]float64
	// Rows: convert each source row to float once, then eight contiguous
	// basis products.
	for y := 0; y < BlockSize; y++ {
		row := src[y*BlockSize : y*BlockSize+BlockSize]
		for x, v := range row {
			rowF[x] = float64(v)
		}
		trow := &tmp[y]
		for u := 0; u < BlockSize; u++ {
			trow[u] = dot8(&rowF, &cosTable[u])
		}
	}
	// Columns: gather one float column, then eight contiguous products
	// against the basis rows (summation order over y unchanged).
	var colF [BlockSize]float64
	for u := 0; u < BlockSize; u++ {
		for y := 0; y < BlockSize; y++ {
			colF[y] = tmp[y][u]
		}
		for v := 0; v < BlockSize; v++ {
			dst[v*BlockSize+u] = int32(math.Round(dot8(&colF, &cosTable[v])))
		}
	}
}

// Inverse computes the 2-D inverse DCT of src into dst (row-major 8×8),
// rounding to the nearest integer. src and dst may alias.
//
// Blocks whose only non-zero coefficient is the DC term — the dominant
// case for inter residuals at moderate quantisers — reconstruct to a
// constant plane, computed once with the reference kernels' exact
// floating-point association.
func Inverse(dst, src *Block) {
	dcOnly := true
	for i := 1; i < len(src); i++ {
		if src[i] != 0 {
			dcOnly = false
			break
		}
	}
	if dcOnly {
		// Reference order: tmp = 0 + dc·c, out = 0 + tmp·c; the zero
		// terms of the other basis functions never perturb the sum.
		c := cosTable[0][0]
		v := int32(math.Round(float64(src[0]) * c * c))
		for i := range dst {
			dst[i] = v
		}
		return
	}
	var tmp [BlockSize][BlockSize]float64 // tmp[y][u]
	var colF [BlockSize]float64
	// Columns (sum over v): gather each coefficient column to float once;
	// cosTableT[y] makes the v-ordered sum a contiguous product.
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			colF[v] = float64(src[v*BlockSize+u])
		}
		for y := 0; y < BlockSize; y++ {
			tmp[y][u] = dot8(&colF, &cosTableT[y])
		}
	}
	// Rows (sum over u): tmp rows and cosTableT rows are both contiguous.
	for y := 0; y < BlockSize; y++ {
		trow := &tmp[y]
		out := dst[y*BlockSize : y*BlockSize+BlockSize]
		for x := 0; x < BlockSize; x++ {
			out[x] = int32(math.Round(dot8(trow, &cosTableT[x])))
		}
	}
}
