// Package dct implements the 8×8 type-II discrete cosine transform and the
// H.263 uniform quantiser used by the hybrid encoder substrate
// (internal/codec). The transform is the separable float implementation of
// the reference TMN encoders; the quantiser follows the H.263 rules: a
// dead-zone quantiser for inter and intra-AC coefficients and a fixed /8
// rule for the intra DC coefficient.
package dct

import "math"

// BlockSize is the transform dimension (8×8 coefficients per block).
const BlockSize = 8

// Block is one 8×8 coefficient or sample-difference block in row-major
// order. Spatial-domain values are signed (residuals may be negative).
type Block [BlockSize * BlockSize]int32

// cosTable[u][x] = c(u)/2 · cos((2x+1)uπ/16), the separable DCT-II basis.
var cosTable [BlockSize][BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		cu := 1.0
		if u == 0 {
			cu = math.Sqrt2 / 2
		}
		for x := 0; x < BlockSize; x++ {
			cosTable[u][x] = cu / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
}

// Forward computes the 2-D DCT-II of src into dst (both row-major 8×8).
// Coefficients are rounded to the nearest integer. src and dst may alias.
func Forward(dst, src *Block) {
	var tmp [BlockSize][BlockSize]float64
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for u := 0; u < BlockSize; u++ {
			var s float64
			for x := 0; x < BlockSize; x++ {
				s += float64(src[y*BlockSize+x]) * cosTable[u][x]
			}
			tmp[y][u] = s
		}
	}
	// Columns.
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			var s float64
			for y := 0; y < BlockSize; y++ {
				s += tmp[y][u] * cosTable[v][y]
			}
			dst[v*BlockSize+u] = int32(math.Round(s))
		}
	}
}

// Inverse computes the 2-D inverse DCT of src into dst (row-major 8×8),
// rounding to the nearest integer. src and dst may alias.
func Inverse(dst, src *Block) {
	var tmp [BlockSize][BlockSize]float64
	// Columns (sum over v).
	for u := 0; u < BlockSize; u++ {
		for y := 0; y < BlockSize; y++ {
			var s float64
			for v := 0; v < BlockSize; v++ {
				s += float64(src[v*BlockSize+u]) * cosTable[v][y]
			}
			tmp[y][u] = s
		}
	}
	// Rows (sum over u).
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var s float64
			for u := 0; u < BlockSize; u++ {
				s += tmp[y][u] * cosTable[u][x]
			}
			dst[y*BlockSize+x] = int32(math.Round(s))
		}
	}
}
