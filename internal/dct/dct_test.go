package dct

import (
	"math"
	"testing"
	"testing/quick"
)

func randBlock(seed uint64, amp int32) *Block {
	var b Block
	s := seed | 1
	for i := range b {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		b[i] = int32(s*2685821657736338717>>33)%amp - amp/2
	}
	return &b
}

func TestForwardDCOfConstantBlock(t *testing.T) {
	var b, c Block
	for i := range b {
		b[i] = 100
	}
	Forward(&c, &b)
	// DC of a constant block v is 8·v; all AC must vanish.
	if c[0] != 800 {
		t.Fatalf("DC = %d, want 800", c[0])
	}
	for i := 1; i < 64; i++ {
		if c[i] != 0 {
			t.Fatalf("AC[%d] = %d, want 0", i, c[i])
		}
	}
}

func TestInverseOfForwardIsNearIdentity(t *testing.T) {
	src := randBlock(42, 512)
	var freq, back Block
	Forward(&freq, src)
	Inverse(&back, &freq)
	for i := range src {
		d := src[i] - back[i]
		if d < -1 || d > 1 {
			t.Fatalf("roundtrip error at %d: %d -> %d", i, src[i], back[i])
		}
	}
}

func TestForwardParsevalApprox(t *testing.T) {
	// Orthonormal DCT preserves energy up to rounding.
	src := randBlock(7, 256)
	var freq Block
	Forward(&freq, src)
	var es, ef float64
	for i := range src {
		es += float64(src[i]) * float64(src[i])
		ef += float64(freq[i]) * float64(freq[i])
	}
	if es == 0 {
		t.Skip("degenerate zero block")
	}
	ratio := ef / es
	if math.Abs(ratio-1) > 0.01 {
		t.Fatalf("energy ratio %.4f, want ≈1", ratio)
	}
}

func TestForwardLinearityProperty(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		a := randBlock(s1, 200)
		b := randBlock(s2, 200)
		var sum Block
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		var fa, fb, fs Block
		Forward(&fa, a)
		Forward(&fb, b)
		Forward(&fs, &sum)
		for i := range fs {
			d := fs[i] - (fa[i] + fb[i])
			if d < -2 || d > 2 { // rounding slack
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardAliasSafe(t *testing.T) {
	src := randBlock(9, 300)
	want := *src
	var sep Block
	Forward(&sep, &want)
	Forward(src, src) // in-place
	if *src != sep {
		t.Fatal("in-place Forward differs from separate-destination Forward")
	}
}

func TestInverseAliasSafe(t *testing.T) {
	src := randBlock(11, 300)
	var freq Block
	Forward(&freq, src)
	var sep Block
	Inverse(&sep, &freq)
	Inverse(&freq, &freq)
	if freq != sep {
		t.Fatal("in-place Inverse differs from separate-destination Inverse")
	}
}

func TestSingleBasisFunction(t *testing.T) {
	// A pure horizontal cosine should concentrate energy in one coefficient.
	var b Block
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			b[y*8+x] = int32(math.Round(100 * math.Cos(float64(2*x+1)*2*math.Pi/16)))
		}
	}
	var f Block
	Forward(&f, &b)
	// Coefficient (u=2, v=0) must dominate all others.
	peak := f[2]
	if peak < 0 {
		peak = -peak
	}
	for i, c := range f {
		if i == 2 {
			continue
		}
		if c < 0 {
			c = -c
		}
		if c*4 > peak {
			t.Fatalf("coefficient %d = %d not small vs peak %d", i, c, peak)
		}
	}
}
