package dct

// The H.263 quantiser. QUANT (Qp) ranges 1..31; the quantisation step for
// AC and inter coefficients is 2·Qp with a dead zone, and the intra DC
// coefficient uses a fixed step of 8.

// MinQp and MaxQp bound the H.263 QUANT parameter.
const (
	MinQp = 1
	MaxQp = 31
)

// ClampQp limits qp to the legal H.263 range.
func ClampQp(qp int) int {
	if qp < MinQp {
		return MinQp
	}
	if qp > MaxQp {
		return MaxQp
	}
	return qp
}

// maxLevel bounds quantised levels as in H.263 (FLC range for TCOEF).
const maxLevel = 127

func clampLevel(l int32) int32 {
	if l > maxLevel {
		return maxLevel
	}
	if l < -maxLevel {
		return -maxLevel
	}
	return l
}

// QuantizeInter quantises an inter (residual) coefficient block in place
// semantics: dst[i] = sign(c)·(|c|−Qp/2)/(2Qp), the H.263 dead-zone rule.
func QuantizeInter(dst, src *Block, qp int) {
	qp = ClampQp(qp)
	half, step := int32(qp/2), int32(2*qp)
	for i, c := range src {
		neg := c < 0
		if neg {
			c = -c
		}
		l := (c - half) / step
		if l < 0 {
			l = 0
		}
		if neg {
			l = -l
		}
		dst[i] = clampLevel(l)
	}
}

// QuantizeIntra quantises an intra coefficient block: DC uses the fixed /8
// rule (clamped to 1..254 as in H.263), AC uses |c|/(2Qp) without dead zone.
func QuantizeIntra(dst, src *Block, qp int) {
	qp = ClampQp(qp)
	step := int32(2 * qp)
	for i, c := range src {
		if i == 0 {
			dc := (c + 4) / 8
			if dc < 1 {
				dc = 1
			}
			if dc > 254 {
				dc = 254
			}
			dst[0] = dc
			continue
		}
		neg := c < 0
		if neg {
			c = -c
		}
		l := c / step
		if neg {
			l = -l
		}
		dst[i] = clampLevel(l)
	}
}

// DequantizeInter reconstructs inter coefficients from levels using the
// H.263 rule: |c| = Qp·(2|L|+1) for odd Qp, Qp·(2|L|+1)−1 for even Qp,
// zero levels stay zero.
func DequantizeInter(dst, src *Block, qp int) {
	qp = ClampQp(qp)
	for i, l := range src {
		dst[i] = dequantCoef(l, qp)
	}
}

// DequantizeIntra reconstructs intra coefficients: DC is level·8, AC uses
// the same rule as inter.
func DequantizeIntra(dst, src *Block, qp int) {
	qp = ClampQp(qp)
	for i, l := range src {
		if i == 0 {
			dst[0] = l * 8
			continue
		}
		dst[i] = dequantCoef(l, qp)
	}
}

func dequantCoef(l int32, qp int) int32 {
	if l == 0 {
		return 0
	}
	neg := l < 0
	if neg {
		l = -l
	}
	c := int32(qp) * (2*l + 1)
	if qp%2 == 0 {
		c--
	}
	// Clip to the H.263 coefficient range.
	if c > 2047 {
		c = 2047
	}
	if neg {
		c = -c
	}
	return c
}
