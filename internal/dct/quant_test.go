package dct

import (
	"testing"
	"testing/quick"
)

func TestClampQp(t *testing.T) {
	if ClampQp(0) != 1 || ClampQp(40) != 31 || ClampQp(16) != 16 {
		t.Fatal("ClampQp wrong")
	}
}

func TestQuantizeInterDeadZone(t *testing.T) {
	var src, dst Block
	qp := 8
	// |c| < Qp/2 + 2Qp ⇒ level 0 for |c| up to (Qp/2) + 2Qp - 1? Dead zone:
	// level = (|c| - Qp/2) / (2Qp); c = 19 with Qp=8: (19-4)/16 = 0.
	src[1] = 19
	src[2] = -19
	src[3] = 20 // (20-4)/16 = 1
	QuantizeInter(&dst, &src, qp)
	if dst[1] != 0 || dst[2] != 0 {
		t.Fatalf("dead zone broken: %d %d", dst[1], dst[2])
	}
	if dst[3] != 1 {
		t.Fatalf("level for 20 = %d, want 1", dst[3])
	}
}

func TestQuantizeInterSignSymmetry(t *testing.T) {
	f := func(c int16, qpRaw uint8) bool {
		qp := int(qpRaw)%31 + 1
		var src, pos, neg Block
		src[5] = int32(c)
		QuantizeInter(&pos, &src, qp)
		src[5] = -int32(c)
		QuantizeInter(&neg, &src, qp)
		return pos[5] == -neg[5]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDequantizeInterReconstructionRule(t *testing.T) {
	var lv, out Block
	lv[0] = 3
	DequantizeInter(&out, &lv, 7) // odd Qp: 7*(2*3+1) = 49
	if out[0] != 49 {
		t.Fatalf("odd-Qp recon = %d, want 49", out[0])
	}
	DequantizeInter(&out, &lv, 8) // even Qp: 8*7 - 1 = 55
	if out[0] != 55 {
		t.Fatalf("even-Qp recon = %d, want 55", out[0])
	}
	lv[0] = -3
	DequantizeInter(&out, &lv, 7)
	if out[0] != -49 {
		t.Fatalf("negative recon = %d, want -49", out[0])
	}
	lv[0] = 0
	DequantizeInter(&out, &lv, 7)
	if out[0] != 0 {
		t.Fatal("zero level must reconstruct to zero")
	}
}

func TestQuantRoundTripErrorBounded(t *testing.T) {
	// |c - recon(quant(c))| must stay within ~1.5·Qp for inter coding.
	f := func(cRaw int16, qpRaw uint8) bool {
		qp := int(qpRaw)%31 + 1
		c := int32(cRaw) % 2000
		var src, lv, rec Block
		src[9] = c
		QuantizeInter(&lv, &src, qp)
		DequantizeInter(&rec, &lv, qp)
		d := c - rec[9]
		if d < 0 {
			d = -d
		}
		// Levels saturate at 127, so very large coefficients are excluded.
		if c > 127*int32(2*qp) || c < -127*int32(2*qp) {
			return true
		}
		// Dead zone: values just below Qp/2+2Qp reconstruct to 0, so the
		// worst-case error is 2.5·Qp (plus 1 for the even-Qp −1 term).
		return d <= int32(5*qp/2+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeIntraDCRule(t *testing.T) {
	var src, dst Block
	src[0] = 800 // constant-100 block's DC
	QuantizeIntra(&dst, &src, 16)
	if dst[0] != 100 {
		t.Fatalf("intra DC level = %d, want 100", dst[0])
	}
	var rec Block
	DequantizeIntra(&rec, &dst, 16)
	if rec[0] != 800 {
		t.Fatalf("intra DC recon = %d, want 800", rec[0])
	}
	// DC level clamps to [1, 254].
	src[0] = 0
	QuantizeIntra(&dst, &src, 16)
	if dst[0] != 1 {
		t.Fatalf("DC floor = %d, want 1", dst[0])
	}
	src[0] = 100000
	QuantizeIntra(&dst, &src, 16)
	if dst[0] != 254 {
		t.Fatalf("DC ceil = %d, want 254", dst[0])
	}
}

func TestLevelSaturation(t *testing.T) {
	var src, dst Block
	src[1] = 1 << 20
	QuantizeInter(&dst, &src, 1)
	if dst[1] != 127 {
		t.Fatalf("level = %d, want saturation at 127", dst[1])
	}
	src[1] = -(1 << 20)
	QuantizeInter(&dst, &src, 1)
	if dst[1] != -127 {
		t.Fatalf("level = %d, want -127", dst[1])
	}
}

func TestCoarserQpNeverIncreasesLevelMagnitude(t *testing.T) {
	f := func(cRaw int16) bool {
		c := int32(cRaw)
		var src, l1, l2 Block
		src[3] = c
		QuantizeInter(&l1, &src, 8)
		QuantizeInter(&l2, &src, 16)
		a1, a2 := l1[3], l2[3]
		if a1 < 0 {
			a1 = -a1
		}
		if a2 < 0 {
			a2 = -a2
		}
		return a2 <= a1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
