package dct

import "math"

// Reference transform kernels: the straightforward separable loops this
// package shipped before the restructured fast paths. They are the oracle
// for the differential tests in reference_test.go; the production kernels
// must produce bit-identical int32(math.Round) outputs. Not for hot paths.

// forwardRef is the reference 2-D DCT-II.
func forwardRef(dst, src *Block) {
	var tmp [BlockSize][BlockSize]float64
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for u := 0; u < BlockSize; u++ {
			var s float64
			for x := 0; x < BlockSize; x++ {
				s += float64(src[y*BlockSize+x]) * cosTable[u][x]
			}
			tmp[y][u] = s
		}
	}
	// Columns.
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			var s float64
			for y := 0; y < BlockSize; y++ {
				s += tmp[y][u] * cosTable[v][y]
			}
			dst[v*BlockSize+u] = int32(math.Round(s))
		}
	}
}

// inverseRef is the reference 2-D inverse DCT.
func inverseRef(dst, src *Block) {
	var tmp [BlockSize][BlockSize]float64
	// Columns (sum over v).
	for u := 0; u < BlockSize; u++ {
		for y := 0; y < BlockSize; y++ {
			var s float64
			for v := 0; v < BlockSize; v++ {
				s += float64(src[v*BlockSize+u]) * cosTable[v][y]
			}
			tmp[y][u] = s
		}
	}
	// Rows (sum over u).
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var s float64
			for u := 0; u < BlockSize; u++ {
				s += tmp[y][u] * cosTable[u][x]
			}
			dst[y*BlockSize+x] = int32(math.Round(s))
		}
	}
}
