package dct

import (
	"math/rand"
	"testing"
)

// TestForwardMatchesReferenceBasis checks every single-coefficient input —
// each of the 64 positions at a sweep of magnitudes, positive and
// negative — plus constant planes, against the reference kernel.
func TestTransformsMatchReferenceBasis(t *testing.T) {
	mags := []int32{1, 2, 3, 8, 127, 255, 1024, 2047}
	for pos := 0; pos < 64; pos++ {
		for _, m := range mags {
			for _, sign := range []int32{1, -1} {
				var src Block
				src[pos] = sign * m
				var got, want Block
				Forward(&got, &src)
				forwardRef(&want, &src)
				if got != want {
					t.Fatalf("Forward basis pos=%d mag=%d: %v != ref %v", pos, sign*m, got, want)
				}
				Inverse(&got, &src)
				inverseRef(&want, &src)
				if got != want {
					t.Fatalf("Inverse basis pos=%d mag=%d: %v != ref %v", pos, sign*m, got, want)
				}
			}
		}
	}
	// Constant planes, including the all-zero block.
	for _, c := range []int32{0, 1, -1, 128, -255, 255} {
		var src, got, want Block
		for i := range src {
			src[i] = c
		}
		Forward(&got, &src)
		forwardRef(&want, &src)
		if got != want {
			t.Fatalf("Forward constant %d: %v != ref %v", c, got, want)
		}
		Inverse(&got, &src)
		inverseRef(&want, &src)
		if got != want {
			t.Fatalf("Inverse constant %d: %v != ref %v", c, got, want)
		}
	}
}

// TestTransformsMatchReferenceRandom sweeps dense random blocks over the
// codec's value ranges: residuals in [−255, 255] for the forward path and
// dequantised coefficients in [−2047, 2047] for the inverse path.
func TestTransformsMatchReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5000; trial++ {
		var resid, coef Block
		for i := range resid {
			resid[i] = int32(rng.Intn(511)) - 255
			coef[i] = int32(rng.Intn(4095)) - 2047
		}
		if trial%4 == 0 { // sparse blocks: the fast-path decision region
			for i := range coef {
				if rng.Intn(8) != 0 {
					coef[i] = 0
				}
			}
		}
		var got, want Block
		Forward(&got, &resid)
		forwardRef(&want, &resid)
		if got != want {
			t.Fatalf("Forward trial %d: %v != ref %v (src %v)", trial, got, want, resid)
		}
		Inverse(&got, &coef)
		inverseRef(&want, &coef)
		if got != want {
			t.Fatalf("Inverse trial %d: %v != ref %v (src %v)", trial, got, want, coef)
		}
	}
}

// TestInverseDCOnlyFastPath pins the DC-only fast path against the
// reference over every dequantised DC magnitude the codec can produce.
func TestInverseDCOnlyFastPath(t *testing.T) {
	for dc := int32(-2047); dc <= 2047; dc++ {
		var src Block
		src[0] = dc
		var got, want Block
		Inverse(&got, &src)
		inverseRef(&want, &src)
		if got != want {
			t.Fatalf("Inverse DC-only dc=%d: got %d, ref %d", dc, got[0], want[0])
		}
	}
}

// TestTransformsAlias checks the documented src==dst aliasing contract on
// the restructured kernels.
func TestTransformsAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		var b Block
		for i := range b {
			b[i] = int32(rng.Intn(511)) - 255
		}
		want := b
		forwardRef(&want, &want)
		got := b
		Forward(&got, &got)
		if got != want {
			t.Fatalf("aliased Forward diverges: %v != %v", got, want)
		}
		want = b
		inverseRef(&want, &want)
		got = b
		Inverse(&got, &got)
		if got != want {
			t.Fatalf("aliased Inverse diverges: %v != %v", got, want)
		}
	}
}

// FuzzTransformsMatchReference feeds arbitrary block contents through both
// kernels; any divergence from the reference operation order is a failure.
func FuzzTransformsMatchReference(f *testing.F) {
	f.Add([]byte{1, 255, 0, 3}, true)
	f.Add(make([]byte, 128), false)
	f.Fuzz(func(t *testing.T, data []byte, inv bool) {
		var src Block
		for i := range src {
			var v int32
			if 2*i+1 < len(data) {
				v = int32(data[2*i]) | int32(data[2*i+1])<<8
			}
			src[i] = v%2048 - 1024
		}
		var got, want Block
		if inv {
			Inverse(&got, &src)
			inverseRef(&want, &src)
		} else {
			Forward(&got, &src)
			forwardRef(&want, &src)
		}
		if got != want {
			t.Fatalf("inv=%v: %v != ref %v (src %v)", inv, got, want, src)
		}
	})
}

func BenchmarkForwardVsRef(b *testing.B) {
	var src, dst Block
	for i := range src {
		src[i] = int32(i*7%255 - 128)
	}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Forward(&dst, &src)
		}
	})
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			forwardRef(&dst, &src)
		}
	})
}

func BenchmarkInverseDCOnly(b *testing.B) {
	var src, dst Block
	src[0] = 355
	for i := 0; i < b.N; i++ {
		Inverse(&dst, &src)
	}
}
