package dct

// ZigZag maps scan order → raster index for the classic 8×8 zig-zag scan
// used by H.263 (and JPEG/MPEG) to order coefficients by frequency before
// run-length coding.
var ZigZag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// InvZigZag maps raster index → scan order (the inverse permutation).
var InvZigZag = func() [64]int {
	var inv [64]int
	for scan, raster := range ZigZag {
		inv[raster] = scan
	}
	return inv
}()

// Scan writes the block's coefficients in zig-zag order into out.
func Scan(out *[64]int32, b *Block) {
	for scan, raster := range ZigZag {
		out[scan] = b[raster]
	}
}

// Unscan writes zig-zag ordered coefficients back to raster order.
func Unscan(b *Block, in *[64]int32) {
	for scan, raster := range ZigZag {
		b[raster] = in[scan]
	}
}
