package dct

import "testing"

func TestZigZagIsPermutation(t *testing.T) {
	var seen [64]bool
	for _, r := range ZigZag {
		if r < 0 || r >= 64 {
			t.Fatalf("index %d out of range", r)
		}
		if seen[r] {
			t.Fatalf("index %d repeated", r)
		}
		seen[r] = true
	}
}

func TestZigZagKnownPrefix(t *testing.T) {
	want := []int{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if ZigZag[i] != w {
			t.Fatalf("ZigZag[%d] = %d, want %d", i, ZigZag[i], w)
		}
	}
	if ZigZag[63] != 63 {
		t.Fatal("scan must end at the highest frequency")
	}
}

func TestInvZigZagInverse(t *testing.T) {
	for scan, raster := range ZigZag {
		if InvZigZag[raster] != scan {
			t.Fatalf("InvZigZag[%d] = %d, want %d", raster, InvZigZag[raster], scan)
		}
	}
}

func TestScanUnscanRoundTrip(t *testing.T) {
	b := randBlock(31, 1000)
	var scanned [64]int32
	Scan(&scanned, b)
	var back Block
	Unscan(&back, &scanned)
	if back != *b {
		t.Fatal("Scan/Unscan round trip failed")
	}
}

func TestScanOrdersByFrequency(t *testing.T) {
	// The sum of (x+y) along the scan must be non-decreasing in coarse
	// steps: verify the first 10 entries are all within the first three
	// anti-diagonals.
	for scan := 0; scan < 10; scan++ {
		r := ZigZag[scan]
		if r%8+r/8 > 3 {
			t.Fatalf("scan position %d maps to high frequency %d", scan, r)
		}
	}
}
