package entropy

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/dct"
)

// Coefficient blocks are coded as (run, level, last) events over the
// zig-zag scan, the H.263 TCOEF structure: run = number of zero
// coefficients skipped, level = the non-zero value, last = whether this is
// the final non-zero coefficient of the block. Runs use unsigned and
// levels signed Exp-Golomb codes; last is one bit.

// CodedBlock reports whether the block has any non-zero coefficient. An
// uncoded block costs no TCOEF bits; its presence is signalled by the
// macroblock's coded-block pattern.
func CodedBlock(b *dct.Block) bool {
	for _, c := range b {
		if c != 0 {
			return true
		}
	}
	return false
}

// BlockBits returns the TCOEF bit cost of the block without writing it.
// A block with no non-zero coefficients costs 0 (it must be skipped via
// the coded-block pattern, not written).
func BlockBits(b *dct.Block) int {
	var scan [64]int32
	dct.Scan(&scan, b)
	bitsTotal, run := 0, 0
	lastNZ := -1
	for i, c := range scan {
		if c != 0 {
			lastNZ = i
		}
	}
	if lastNZ < 0 {
		return 0
	}
	for i := 0; i <= lastNZ; i++ {
		c := scan[i]
		if c == 0 {
			run++
			continue
		}
		// level magnitude is coded minus 1 via its sign code; run as UE.
		bitsTotal += UEBits(uint32(run)) + SEBits(c) + 1 // +1 for last flag
		run = 0
	}
	return bitsTotal
}

// WriteRunLevelLast appends one TCOEF event — UE(run), SE(level), one last
// bit — as a single packed field on the word-based writer. Every event the
// codec can produce (run ≤ 63, |level| ≤ 127) packs into at most 31 bits;
// implausibly large symbols fall back to the per-code path, so the emitted
// bits are always exactly the UE+SE+bit sequence.
func WriteRunLevelLast(w *bitstream.Writer, run uint32, level int32, last bool) {
	rp, rw := ueCode(run)
	lp, lw := ueCode(MapSigned(level))
	if total := rw + lw + 1; total <= 64 {
		p := (rp<<lw | lp) << 1
		if last {
			p |= 1
		}
		w.WriteBits(p, total)
		return
	}
	WriteUE(w, run)
	WriteSE(w, level)
	if last {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
}

// WriteBlock appends the TCOEF events of the block. The block must contain
// at least one non-zero coefficient (check CodedBlock first).
func WriteBlock(w *bitstream.Writer, b *dct.Block) error {
	var scan [64]int32
	dct.Scan(&scan, b)
	lastNZ := -1
	for i, c := range scan {
		if c != 0 {
			lastNZ = i
		}
	}
	if lastNZ < 0 {
		return fmt.Errorf("entropy: WriteBlock called on an uncoded (all-zero) block")
	}
	run := 0
	for i := 0; i <= lastNZ; i++ {
		c := scan[i]
		if c == 0 {
			run++
			continue
		}
		WriteRunLevelLast(w, uint32(run), c, i == lastNZ)
		run = 0
	}
	return nil
}

// ReadBlock decodes TCOEF events into b (raster order). The block is
// zeroed first.
func ReadBlock(r *bitstream.Reader, b *dct.Block) error {
	var scan [64]int32
	pos := 0
	for {
		run, err := ReadUE(r)
		if err != nil {
			return err
		}
		level, err := ReadSE(r)
		if err != nil {
			return err
		}
		last, err := r.ReadBit()
		if err != nil {
			return err
		}
		pos += int(run)
		if pos >= 64 {
			return fmt.Errorf("entropy: TCOEF run overflows block (pos %d)", pos)
		}
		if level == 0 {
			return fmt.Errorf("entropy: zero level in TCOEF event")
		}
		scan[pos] = level
		pos++
		if last == 1 {
			break
		}
	}
	dct.Unscan(b, &scan)
	return nil
}
