package entropy

import (
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/dct"
)

func blockFromSeed(seed uint64, density, amp int) *dct.Block {
	var b dct.Block
	s := seed | 1
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 2685821657736338717
	}
	for i := range b {
		if int(next()%100) < density {
			b[i] = int32(next()%uint64(2*amp)) - int32(amp)
		}
	}
	return &b
}

func TestCodedBlock(t *testing.T) {
	var b dct.Block
	if CodedBlock(&b) {
		t.Fatal("zero block reported coded")
	}
	b[63] = -1
	if !CodedBlock(&b) {
		t.Fatal("non-zero block reported uncoded")
	}
}

func TestBlockBitsZeroBlock(t *testing.T) {
	var b dct.Block
	if BlockBits(&b) != 0 {
		t.Fatal("zero block must cost 0 bits")
	}
	if err := WriteBlock(&bitstream.Writer{}, &b); err == nil {
		t.Fatal("WriteBlock accepted an all-zero block")
	}
}

func TestBlockRoundTripProperty(t *testing.T) {
	f := func(seed uint64, density, amp uint8) bool {
		b := blockFromSeed(seed, int(density)%60+1, int(amp)%120+1)
		if !CodedBlock(b) {
			return true
		}
		var w bitstream.Writer
		if err := WriteBlock(&w, b); err != nil {
			return false
		}
		if w.Len() != BlockBits(b) {
			return false
		}
		var got dct.Block
		if err := ReadBlock(bitstream.NewReader(w.Bytes()), &got); err != nil {
			return false
		}
		return got == *b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockBitsSparseCheaperThanDense(t *testing.T) {
	sparse := &dct.Block{}
	sparse[0] = 5
	dense := blockFromSeed(3, 50, 100)
	if !CodedBlock(dense) {
		t.Skip("degenerate dense block")
	}
	if BlockBits(sparse) >= BlockBits(dense) {
		t.Fatalf("sparse %d bits >= dense %d bits", BlockBits(sparse), BlockBits(dense))
	}
}

func TestBlockSingleTrailingCoefficient(t *testing.T) {
	var b dct.Block
	b[63] = 7 // maximal run before a last coefficient
	var w bitstream.Writer
	if err := WriteBlock(&w, &b); err != nil {
		t.Fatal(err)
	}
	var got dct.Block
	if err := ReadBlock(bitstream.NewReader(w.Bytes()), &got); err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatal("trailing coefficient round trip failed")
	}
}

func TestReadBlockMalformed(t *testing.T) {
	// run beyond 63 must be rejected.
	var w bitstream.Writer
	WriteUE(&w, 64) // run
	WriteSE(&w, 3)  // level
	w.WriteBit(1)   // last
	var b dct.Block
	if err := ReadBlock(bitstream.NewReader(w.Bytes()), &b); err == nil {
		t.Fatal("oversized run accepted")
	}
	// zero level is illegal.
	w.Reset()
	WriteUE(&w, 0)
	WriteSE(&w, 0)
	w.WriteBit(1)
	if err := ReadBlock(bitstream.NewReader(w.Bytes()), &b); err == nil {
		t.Fatal("zero level accepted")
	}
	// truncated stream.
	if err := ReadBlock(bitstream.NewReader(nil), &b); err == nil {
		t.Fatal("empty stream accepted")
	}
}
