// Package entropy implements the bit-exact entropy layer of the hybrid
// codec substrate: unsigned and signed Exp-Golomb codes, differential
// motion vector coding, and run-level-last coefficient coding.
//
// The paper's reference software (TMN5/H.263) uses fixed Huffman-style VLC
// tables. We substitute Exp-Golomb codes — fully specified, decodable and
// monotone in magnitude — which preserve the property ACBM relies on:
// larger motion vector differences and larger coefficient levels cost more
// bits, so an incoherent FSBM motion field pays a measurable rate penalty.
// See DESIGN.md §1 for the substitution rationale.
package entropy

import (
	"fmt"
	"math/bits"

	"repro/internal/bitstream"
)

// UEBits returns the length in bits of the unsigned Exp-Golomb code for v.
func UEBits(v uint32) int {
	return 2*bits.Len64(uint64(v)+1) - 1
}

// ueCode returns the Exp-Golomb bit pattern and code width for v. Because
// x = v+1 occupies exactly Len(x) significant bits, writing x with width
// 2·Len(x)−1 emits the Len(x)−1 leading zeros and the value in one field.
// The width exceeds 64 only for v = MaxUint32 (a 65-bit code); callers
// packing codes into a single word must fall back for that case.
func ueCode(v uint32) (pattern uint64, width uint) {
	x := uint64(v) + 1
	return x, uint(2*bits.Len64(x) - 1)
}

// WriteUE appends the unsigned Exp-Golomb code for v. For every value
// whose code fits a 64-bit word (all v < MaxUint32) the zeros and the
// value land in a single WriteBits call on the word-based writer.
func WriteUE(w *bitstream.Writer, v uint32) {
	x, width := ueCode(v)
	if width <= 64 {
		w.WriteBits(x, width)
		return
	}
	n := uint(bits.Len64(x))
	w.WriteBits(0, n-1) // leading zeros
	w.WriteBits(x, n)   // value with its leading one
}

// ReadUE decodes an unsigned Exp-Golomb code.
func ReadUE(r *bitstream.Reader) (uint32, error) {
	var zeros uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, fmt.Errorf("entropy: UE prefix too long")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return uint32(1<<zeros + rest - 1), nil
}

// MapSigned maps a signed value to an unsigned index using the H.264
// convention 0, 1, −1, 2, −2, ... (used by signed Exp-Golomb codes and by
// the arithmetic entropy backend's binarisation).
func MapSigned(v int32) uint32 {
	if v > 0 {
		return uint32(2*v - 1)
	}
	return uint32(-2 * v)
}

// UnmapSigned is the inverse of MapSigned.
func UnmapSigned(u uint32) int32 {
	if u%2 == 1 {
		return int32(u/2) + 1
	}
	return -int32(u / 2)
}

func seToUE(v int32) uint32 { return MapSigned(v) }

func ueToSE(u uint32) int32 { return UnmapSigned(u) }

// SEBits returns the length in bits of the signed Exp-Golomb code for v.
func SEBits(v int32) int { return UEBits(seToUE(v)) }

// WriteSE appends the signed Exp-Golomb code for v.
func WriteSE(w *bitstream.Writer, v int32) { WriteUE(w, seToUE(v)) }

// ReadSE decodes a signed Exp-Golomb code.
func ReadSE(r *bitstream.Reader) (int32, error) {
	u, err := ReadUE(r)
	if err != nil {
		return 0, err
	}
	return ueToSE(u), nil
}
