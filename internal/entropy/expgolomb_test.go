package entropy

import (
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
)

func TestUEKnownCodes(t *testing.T) {
	// Standard Exp-Golomb: 0→"1", 1→"010", 2→"011", 3→"00100".
	cases := []struct {
		v    uint32
		bits string
	}{
		{0, "1"},
		{1, "010"},
		{2, "011"},
		{3, "00100"},
		{4, "00101"},
		{7, "0001000"},
	}
	for _, c := range cases {
		var w bitstream.Writer
		WriteUE(&w, c.v)
		if w.Len() != len(c.bits) {
			t.Fatalf("UE(%d) length %d, want %d", c.v, w.Len(), len(c.bits))
		}
		if UEBits(c.v) != len(c.bits) {
			t.Fatalf("UEBits(%d) = %d, want %d", c.v, UEBits(c.v), len(c.bits))
		}
		out := w.Bytes()
		for i, ch := range c.bits {
			got := out[i/8] >> (7 - uint(i%8)) & 1
			want := uint8(0)
			if ch == '1' {
				want = 1
			}
			if got != want {
				t.Fatalf("UE(%d) bit %d = %d, want %c", c.v, i, got, ch)
			}
		}
	}
}

func TestUERoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		v %= 1 << 30
		var w bitstream.Writer
		WriteUE(&w, v)
		if w.Len() != UEBits(v) {
			return false
		}
		got, err := ReadUE(bitstream.NewReader(w.Bytes()))
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSERoundTripProperty(t *testing.T) {
	f := func(v int32) bool {
		v %= 1 << 28
		var w bitstream.Writer
		WriteSE(&w, v)
		if w.Len() != SEBits(v) {
			return false
		}
		got, err := ReadSE(bitstream.NewReader(w.Bytes()))
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSEMonotoneInMagnitude(t *testing.T) {
	// |a| < |b| ⇒ SEBits(a) <= SEBits(b): the property the rate model
	// needs so incoherent motion fields cost more bits.
	for m := int32(1); m < 1000; m *= 3 {
		if SEBits(m) > SEBits(10*m) || SEBits(-m) > SEBits(-10*m) {
			t.Fatalf("SEBits not monotone at %d", m)
		}
	}
	if SEBits(0) != 1 {
		t.Fatalf("SEBits(0) = %d, want 1", SEBits(0))
	}
}

func TestSEZigZagMapping(t *testing.T) {
	// 0→0, 1→1, −1→2, 2→3, −2→4 per the H.264 convention.
	wants := map[int32]uint32{0: 0, 1: 1, -1: 2, 2: 3, -2: 4, 3: 5}
	for v, u := range wants {
		if seToUE(v) != u {
			t.Fatalf("seToUE(%d) = %d, want %d", v, seToUE(v), u)
		}
		if ueToSE(u) != v {
			t.Fatalf("ueToSE(%d) = %d, want %d", u, ueToSE(u), v)
		}
	}
}

func TestReadUEMalformed(t *testing.T) {
	// A stream of all zeros never terminates the prefix.
	data := make([]byte, 8)
	if _, err := ReadUE(bitstream.NewReader(data)); err == nil {
		t.Fatal("all-zero prefix accepted")
	}
	// Truncated suffix.
	var w bitstream.Writer
	w.WriteBits(0b001, 3) // promises 2 suffix bits, provides none
	if _, err := ReadUE(bitstream.NewReader(w.Bytes()[:0])); err == nil {
		t.Fatal("empty stream accepted")
	}
}
