package entropy

import (
	"repro/internal/bitstream"
	"repro/internal/mvfield"
)

// Motion vector differences are coded per component with signed Exp-Golomb
// codes over half-pel units, mirroring H.263's differential MV coding
// (shorter codes for small differences from the median predictor).

// MVDBits returns the bit cost of coding the difference mv − pred.
func MVDBits(mv, pred mvfield.MV) int {
	d := mv.Sub(pred)
	return SEBits(int32(d.X)) + SEBits(int32(d.Y))
}

// WriteMVD appends the coded difference mv − pred.
func WriteMVD(w *bitstream.Writer, mv, pred mvfield.MV) {
	d := mv.Sub(pred)
	WriteSE(w, int32(d.X))
	WriteSE(w, int32(d.Y))
}

// ReadMVD decodes a motion vector difference and returns pred + difference.
func ReadMVD(r *bitstream.Reader, pred mvfield.MV) (mvfield.MV, error) {
	dx, err := ReadSE(r)
	if err != nil {
		return mvfield.Zero, err
	}
	dy, err := ReadSE(r)
	if err != nil {
		return mvfield.Zero, err
	}
	return pred.Add(mvfield.MV{X: int(dx), Y: int(dy)}), nil
}
