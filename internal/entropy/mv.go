package entropy

import (
	"repro/internal/bitstream"
	"repro/internal/mvfield"
)

// Motion vector differences are coded per component with signed Exp-Golomb
// codes over half-pel units, mirroring H.263's differential MV coding
// (shorter codes for small differences from the median predictor).

// MVDBits returns the bit cost of coding the difference mv − pred.
func MVDBits(mv, pred mvfield.MV) int {
	d := mv.Sub(pred)
	return SEBits(int32(d.X)) + SEBits(int32(d.Y))
}

// WriteSEPair appends the signed Exp-Golomb codes of a and b, packed into
// one field on the word-based writer whenever both codes fit 64 bits
// together (always true for motion vector differences within the codec's
// search ranges).
func WriteSEPair(w *bitstream.Writer, a, b int32) {
	ap, aw := ueCode(MapSigned(a))
	bp, bw := ueCode(MapSigned(b))
	if aw+bw <= 64 {
		w.WriteBits(ap<<bw|bp, aw+bw)
		return
	}
	WriteSE(w, a)
	WriteSE(w, b)
}

// WriteMVD appends the coded difference mv − pred.
func WriteMVD(w *bitstream.Writer, mv, pred mvfield.MV) {
	d := mv.Sub(pred)
	WriteSEPair(w, int32(d.X), int32(d.Y))
}

// ReadMVD decodes a motion vector difference and returns pred + difference.
func ReadMVD(r *bitstream.Reader, pred mvfield.MV) (mvfield.MV, error) {
	dx, err := ReadSE(r)
	if err != nil {
		return mvfield.Zero, err
	}
	dy, err := ReadSE(r)
	if err != nil {
		return mvfield.Zero, err
	}
	return pred.Add(mvfield.MV{X: int(dx), Y: int(dy)}), nil
}
