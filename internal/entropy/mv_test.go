package entropy

import (
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/mvfield"
)

func TestMVDRoundTrip(t *testing.T) {
	f := func(mx, my, px, py int8) bool {
		mv := mvfield.MV{X: int(mx), Y: int(my)}
		pred := mvfield.MV{X: int(px), Y: int(py)}
		var w bitstream.Writer
		WriteMVD(&w, mv, pred)
		if w.Len() != MVDBits(mv, pred) {
			return false
		}
		got, err := ReadMVD(bitstream.NewReader(w.Bytes()), pred)
		return err == nil && got == mv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMVDZeroDifferenceIsCheapest(t *testing.T) {
	pred := mvfield.MV{X: 4, Y: -2}
	zero := MVDBits(pred, pred)
	if zero != 2 { // 1 bit per component
		t.Fatalf("zero-difference cost = %d, want 2", zero)
	}
	for _, mv := range []mvfield.MV{{X: 5, Y: -2}, {X: 4, Y: 6}, {X: -20, Y: 30}} {
		if MVDBits(mv, pred) <= zero {
			t.Fatalf("non-zero difference %v cost %d not above %d", mv, MVDBits(mv, pred), zero)
		}
	}
}

func TestMVDCoherentFieldCheaperThanIncoherent(t *testing.T) {
	// Rate model sanity: vectors near their predictor cost less than
	// scattered vectors — the effect that penalises FSBM's field.
	pred := mvfield.Zero
	coherent := []mvfield.MV{{X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	scattered := []mvfield.MV{{X: 28, Y: -30}, {X: -22, Y: 14}, {X: 30, Y: 30}}
	var cb, sb int
	for i := range coherent {
		cb += MVDBits(coherent[i], pred)
		sb += MVDBits(scattered[i], pred)
	}
	if cb >= sb {
		t.Fatalf("coherent field bits %d >= scattered %d", cb, sb)
	}
}

func TestReadMVDTruncated(t *testing.T) {
	var w bitstream.Writer
	WriteSE(&w, 100) // only one component present
	if _, err := ReadMVD(bitstream.NewReader(w.Bytes()[:1]), mvfield.Zero); err == nil {
		t.Fatal("truncated MVD accepted")
	}
}
