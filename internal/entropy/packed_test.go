package entropy

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/bitstream"
)

// writeUERef emits the UE code the pre-word way: zeros, then the value.
func writeUERef(w *bitstream.RefWriter, v uint32) {
	x := uint64(v) + 1
	n := 0
	for x>>uint(n) != 0 {
		n++
	}
	w.WriteBits(0, uint(n-1))
	w.WriteBits(x, uint(n))
}

func writeSERef(w *bitstream.RefWriter, v int32) { writeUERef(w, MapSigned(v)) }

// ueBoundaryValues covers every Exp-Golomb length transition plus the
// 65-bit-code extreme.
var ueBoundaryValues = []uint32{
	0, 1, 2, 3, 4, 6, 7, 8, 14, 15, 16, 30, 31, 62, 63, 126, 127, 254, 255,
	1<<16 - 2, 1<<16 - 1, 1 << 16, 1<<31 - 2, 1<<31 - 1, 1 << 31,
	math.MaxUint32 - 1, math.MaxUint32,
}

// TestWriteUEMatchesReference pins the single-field WriteUE against the
// zeros-then-value reference across all code-length boundaries, including
// the 65-bit MaxUint32 code that cannot pack into one word.
func TestWriteUEMatchesReference(t *testing.T) {
	for _, v := range ueBoundaryValues {
		var w bitstream.Writer
		var ref bitstream.RefWriter
		WriteUE(&w, v)
		writeUERef(&ref, v)
		if w.Len() != ref.Len() || !bytes.Equal(w.Bytes(), ref.Bytes()) {
			t.Errorf("WriteUE(%d): %d bits %x, reference %d bits %x",
				v, w.Len(), w.Bytes(), ref.Len(), ref.Bytes())
		}
		if w.Len() != UEBits(v) {
			t.Errorf("WriteUE(%d): wrote %d bits, UEBits says %d", v, w.Len(), UEBits(v))
		}
	}
}

// TestWriteRunLevelLastMatchesSequence checks the packed TCOEF event
// equals the UE+SE+bit sequence for the codec's full symbol range and for
// hostile out-of-range symbols that must take the fallback path.
func TestWriteRunLevelLastMatchesSequence(t *testing.T) {
	runs := []uint32{0, 1, 5, 31, 63, 255, math.MaxUint32}
	levels := []int32{1, -1, 2, -2, 127, -127, 1 << 20, -(1 << 20), math.MaxInt32, math.MinInt32 + 1}
	for _, run := range runs {
		for _, level := range levels {
			for _, last := range []bool{false, true} {
				var w bitstream.Writer
				var ref bitstream.RefWriter
				WriteRunLevelLast(&w, run, level, last)
				writeUERef(&ref, run)
				writeSERef(&ref, level)
				if last {
					ref.WriteBit(1)
				} else {
					ref.WriteBit(0)
				}
				if !bytes.Equal(w.Bytes(), ref.Bytes()) || w.Len() != ref.Len() {
					t.Fatalf("run=%d level=%d last=%v: packed %d bits %x, sequence %d bits %x",
						run, level, last, w.Len(), w.Bytes(), ref.Len(), ref.Bytes())
				}
			}
		}
	}
}

// TestWriteSEPairMatchesSequence checks the packed signed pair against two
// sequential SE codes, including extremes that overflow the shared word.
func TestWriteSEPairMatchesSequence(t *testing.T) {
	vals := []int32{0, 1, -1, 7, -8, 62, -62, 127, -127, 1 << 15, math.MaxInt32, math.MinInt32 + 1}
	for _, a := range vals {
		for _, b := range vals {
			var w bitstream.Writer
			var ref bitstream.RefWriter
			WriteSEPair(&w, a, b)
			writeSERef(&ref, a)
			writeSERef(&ref, b)
			if !bytes.Equal(w.Bytes(), ref.Bytes()) || w.Len() != ref.Len() {
				t.Fatalf("pair(%d,%d): packed %x, sequence %x", a, b, w.Bytes(), ref.Bytes())
			}
		}
	}
}

// FuzzPackedCodesRoundTrip drives random symbols through the packed
// writers and decodes them back through the standard readers.
func FuzzPackedCodesRoundTrip(f *testing.F) {
	f.Add(uint32(3), int32(-5), int32(12), true)
	f.Add(uint32(0), int32(1), int32(0), false)
	f.Fuzz(func(t *testing.T, run uint32, level, mvd int32, last bool) {
		if level == 0 {
			level = 1
		}
		if level == math.MinInt32 || mvd == math.MinInt32 {
			return // MapSigned overflows int32 negation at MinInt32
		}
		var w bitstream.Writer
		WriteRunLevelLast(&w, run, level, last)
		WriteSEPair(&w, mvd, -mvd)
		r := bitstream.NewReader(w.Bytes())
		gotRun, err := ReadUE(r)
		if err != nil {
			t.Fatal(err)
		}
		gotLevel, err := ReadSE(r)
		if err != nil {
			t.Fatal(err)
		}
		gotLast, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		a, err := ReadSE(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ReadSE(r)
		if err != nil {
			t.Fatal(err)
		}
		if gotRun != run || gotLevel != level || (gotLast == 1) != last || a != mvd || b != -mvd {
			t.Fatalf("round trip: got (%d,%d,%d,%d,%d), want (%d,%d,%v,%d,%d)",
				gotRun, gotLevel, gotLast, a, b, run, level, last, mvd, -mvd)
		}
	})
}

func BenchmarkWriteUE(b *testing.B) {
	vals := [16]uint32{0, 1, 2, 5, 9, 3, 0, 14, 40, 2, 1, 0, 7, 130, 3, 22}
	b.ReportAllocs()
	var w bitstream.Writer
	for i := 0; i < b.N; i++ {
		w.Reset()
		for _, v := range vals {
			WriteUE(&w, v)
		}
	}
}

func BenchmarkWriteRunLevelLast(b *testing.B) {
	b.ReportAllocs()
	var w bitstream.Writer
	for i := 0; i < b.N; i++ {
		w.Reset()
		for j := 0; j < 16; j++ {
			WriteRunLevelLast(&w, uint32(j%7), int32(j-8), j == 15)
		}
	}
}
