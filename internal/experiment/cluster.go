package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/gateway"
	"repro/internal/gateway/chaos"
	"repro/internal/server"
	"repro/internal/video"
)

// ClusterConfig drives the chaos-scenario cluster benchmark behind
// BENCH_cluster.json: a vcodec-gateway fronting N vcodecd backends is put
// through named fault scenarios while every session byte-verifies its
// stream end to end. The invariant under test is the gateway's delivery
// contract: under every fault a session either completes byte-identical
// to the offline encoder (possibly after retry) or fails with an explicit
// error — never a truncated stream passed off as a complete one.
type ClusterConfig struct {
	// URLs lists the endpoints to drive (multi-endpoint targets: sessions
	// round-robin across them). Empty means self-host a full topology —
	// backends, chaos proxies, gateway — in-process.
	URLs []string
	// Backends is the self-hosted backend count (default 2).
	Backends int
	// Scenarios to run, in order (default all of Scenarios).
	Scenarios []string
	// Sessions per scenario burst (default 8).
	Sessions int
	// Frames per session (default 24) plus the clip shape, as in
	// ServeConfig.
	Frames   int
	Size     frame.Size
	Profile  video.Profile
	Qp       int
	Seed     uint64
	Searcher string
	Entropy  string
	// Retry503, when set, makes the client honor a 503's Retry-After and
	// re-submit the session (up to RetryMax times) — the load generator's
	// side of admission control.
	Retry503 bool
	RetryMax int
}

// Scenarios are the named fault plans, in escalation order.
var Scenarios = []string{"baseline", "degraded-latency", "backend-crash", "partition", "high-load"}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Backends <= 0 {
		c.Backends = 2
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = Scenarios
	}
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.Frames <= 0 {
		c.Frames = 24
	}
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Qp <= 0 {
		c.Qp = 16
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Searcher == "" {
		c.Searcher = "acbm"
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 4
	}
	return c
}

// ClusterPoint is one scenario's outcome.
type ClusterPoint struct {
	Scenario string `json:"scenario"`
	Sessions int    `json:"sessions"`
	// Completed sessions finished with a stream byte-identical to the
	// offline encoder — every one is verified, not a sample.
	Completed int `json:"completed"`
	// Retried counts completed sessions that needed more than one
	// dispatch attempt (X-Vcodec-Attempts > 1).
	Retried int `json:"retried"`
	// FailedExplicit counts sessions that failed loudly: a non-200, a
	// transport error, or an X-Vcodec-Error trailer. Under chaos these
	// are legitimate outcomes.
	FailedExplicit int `json:"failed_explicit"`
	// Truncated counts contract violations: a stream that ended cleanly,
	// claimed no error, and was not the complete byte-identical clip.
	// RunCluster fails the whole benchmark if any scenario has one.
	Truncated        int     `json:"truncated"`
	Client503Retries int     `json:"client_503_retries,omitempty"`
	WallSeconds      float64 `json:"wall_seconds"`
	FirstPacketMsP50 float64 `json:"first_packet_ms_p50"`
	FirstPacketMsP99 float64 `json:"first_packet_ms_p99"`
	// GatewayRetries/BreakerTrips are the gateway metric deltas across
	// the scenario (zero when driving bare backends).
	GatewayRetries int64 `json:"gateway_retries"`
	BreakerTrips   int64 `json:"breaker_trips"`
	// Worst names the scenario's slowest completed session by trace ID,
	// timeline fetched through the gateway's fleet-wide trace proxy.
	Worst *WorstSession `json:"worst_session,omitempty"`
}

// ClusterResult is the full chaos report, serialisable to
// BENCH_cluster.json.
type ClusterResult struct {
	URLs     []string       `json:"urls"`
	Backends int            `json:"backends"`
	Profile  string         `json:"profile"`
	Size     string         `json:"size"`
	Frames   int            `json:"frames_per_session"`
	Qp       int            `json:"qp"`
	Searcher string         `json:"searcher"`
	Entropy  string         `json:"entropy,omitempty"`
	Points   []ClusterPoint `json:"points"`
}

// selfCluster is the in-process topology: real vcodecd servers, a chaos
// proxy in front of each, and a gateway routing across the proxies.
type selfCluster struct {
	servers []*server.Server
	https   []*http.Server
	fleet   *chaos.Fleet
	gw      *gateway.Gateway
	gwSrv   *http.Server
	url     string
}

func startSelfCluster(cfg ClusterConfig) (*selfCluster, error) {
	c := &selfCluster{}
	fail := func(err error) (*selfCluster, error) {
		c.close()
		return nil, err
	}
	var targets []string
	for i := 0; i < cfg.Backends; i++ {
		// Small per-backend admission so high-load actually sheds: the
		// gateway's retry path is part of the topology under test.
		s := server.New(server.Config{MaxSessions: 4, MaxQueued: 2})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		c.servers = append(c.servers, s)
		c.https = append(c.https, hs)
		targets = append(targets, ln.Addr().String())
	}
	fleet, err := chaos.NewFleet(targets)
	if err != nil {
		return fail(err)
	}
	c.fleet = fleet
	gw, err := gateway.New(gateway.Config{
		Backends:     fleet.URLs(),
		PollInterval: 100 * time.Millisecond,
		// Short enough that a partitioned committed stream resolves within
		// the scenario window, long enough to never fire on a healthy one.
		StreamIdleTimeout: 1500 * time.Millisecond,
		BreakerCooldown:   time.Second,
		MaxSessions:       256,
	})
	if err != nil {
		return fail(err)
	}
	c.gw = gw
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	c.gwSrv = &http.Server{Handler: gw.Handler()}
	go c.gwSrv.Serve(gln)
	c.url = "http://" + gln.Addr().String()
	return c, nil
}

func (c *selfCluster) close() {
	if c == nil {
		return
	}
	if c.gwSrv != nil {
		c.gwSrv.Close()
	}
	if c.gw != nil {
		c.gw.Close()
	}
	if c.fleet != nil {
		c.fleet.Close()
	}
	for i, hs := range c.https {
		hs.Close()
		c.servers[i].Close()
	}
}

// RunCluster runs the configured chaos scenarios and aggregates the
// report. It returns an error — not a report — if any scenario produced
// a truncated-but-clean session, because that is the one outcome the
// gateway contract forbids.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	cfg = cfg.withDefaults()

	var self *selfCluster
	urls := cfg.URLs
	if len(urls) == 0 {
		var err error
		if self, err = startSelfCluster(cfg); err != nil {
			return nil, err
		}
		defer self.close()
		urls = []string{self.url}
	} else {
		for _, sc := range cfg.Scenarios {
			if sc != "baseline" && sc != "high-load" {
				return nil, fmt.Errorf("scenario %q needs fault injection: it runs self-hosted only (omit -url)", sc)
			}
		}
	}
	if err := waitEndpoints(urls, 10*time.Second); err != nil {
		return nil, err
	}

	frames := video.Generate(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	var body bytes.Buffer
	if err := frame.WriteY4M(&body, frames, 30, 1); err != nil {
		return nil, err
	}
	upload := body.Bytes()
	scfg, err := offlineConfig(ServeConfig{Qp: cfg.Qp, Searcher: cfg.Searcher, Entropy: cfg.Entropy})
	if err != nil {
		return nil, err
	}
	offline, _, err := codec.EncodePackets(scfg, frames)
	if err != nil {
		return nil, err
	}

	res := &ClusterResult{
		URLs:     urls,
		Backends: cfg.Backends,
		Profile:  cfg.Profile.String(),
		Size:     fmt.Sprintf("%dx%d", cfg.Size.W, cfg.Size.H),
		Frames:   cfg.Frames,
		Qp:       cfg.Qp,
		Searcher: cfg.Searcher,
		Entropy:  cfg.Entropy,
	}
	client := &http.Client{}
	for _, name := range cfg.Scenarios {
		pt, err := runScenario(client, name, urls, upload, offline, cfg, self)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

// runScenario fires one burst of sessions under one named fault plan.
func runScenario(client *http.Client, name string, urls []string, upload []byte, offline [][]byte, cfg ClusterConfig, self *selfCluster) (*ClusterPoint, error) {
	sessions := cfg.Sessions
	if name == "high-load" {
		// Oversubscribe the fleet: self-hosted backends admit 4+2 each, so
		// 3x the configured burst guarantees 503s and gateway retries.
		sessions = cfg.Sessions * 3
	}
	var fault func()
	if self != nil {
		proxy := self.fleet.Proxies[0] // chaos always hits the first backend
		switch name {
		case "degraded-latency":
			proxy.SetPlan(chaos.Plan{Latency: 15 * time.Millisecond})
		case "backend-crash":
			fault = func() {
				// The backend "process" dies: established connections reset,
				// new ones are refused until the restart 1.5s later.
				proxy.SetPlan(chaos.Plan{RefuseNew: true})
				proxy.KillActive()
				time.AfterFunc(1500*time.Millisecond, func() { proxy.SetPlan(chaos.Plan{}) })
			}
		case "partition":
			fault = func() {
				// Sockets stay open, bytes stop: the gateway's idle watchdog
				// has to fail committed streams; uncommitted ones fail over.
				proxy.SetPlan(chaos.Plan{Stall: true})
				time.AfterFunc(1500*time.Millisecond, func() { proxy.SetPlan(chaos.Plan{}) })
			}
		}
		defer proxy.SetPlan(chaos.Plan{})
	}

	before := scrapeGatewayCounters(client, urls)
	samples := make([]clusterSample, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples[i] = runClusterSession(client, urls[i%len(urls)], upload, offline, cfg)
		}(i)
	}
	if fault != nil {
		// Land the fault mid-burst: after the first sessions have committed
		// their streams but well before the burst drains.
		time.AfterFunc(150*time.Millisecond, fault)
	}
	wg.Wait()
	wall := time.Since(start)
	if self != nil {
		// Let breakers close and health polls settle before the next
		// scenario starts from a clean fleet.
		time.Sleep(300 * time.Millisecond)
	}
	after := scrapeGatewayCounters(client, urls)

	pt := &ClusterPoint{
		Scenario:       name,
		Sessions:       sessions,
		WallSeconds:    wall.Seconds(),
		GatewayRetries: after.retries - before.retries,
		BreakerTrips:   after.breakerTrips - before.breakerTrips,
	}
	var firsts []time.Duration
	for i := range samples {
		s := &samples[i]
		pt.Client503Retries += s.retries503
		switch s.outcome {
		case outcomeCompleted:
			pt.Completed++
			if s.attempts > 1 {
				pt.Retried++
			}
			firsts = append(firsts, s.firstPacket)
		case outcomeExplicitFail:
			pt.FailedExplicit++
		case outcomeTruncated:
			pt.Truncated++
		}
	}
	pt.FirstPacketMsP50 = quantileMs(firsts, 0.50)
	pt.FirstPacketMsP99 = quantileMs(firsts, 0.99)

	// The scenario's tail: slowest completed session, timeline resolved
	// through the gateway's trace proxy (best-effort under chaos — the
	// serving backend may be the one that just died).
	worst := -1
	for i := range samples {
		if samples[i].outcome != outcomeCompleted || samples[i].traceID == "" {
			continue
		}
		if worst < 0 || samples[i].wall > samples[worst].wall {
			worst = i
		}
	}
	if worst >= 0 {
		s := &samples[worst]
		w := &WorstSession{
			TraceID:       s.traceID,
			Backend:       s.backend,
			Attempts:      s.attempts,
			WallMs:        float64(s.wall.Nanoseconds()) / 1e6,
			FirstPacketMs: float64(s.firstPacket.Nanoseconds()) / 1e6,
		}
		w.Timeline, w.DroppedFrames = fetchTimeline(client, urls, s.traceID)
		pt.Worst = w
	}

	if pt.Truncated > 0 {
		return nil, fmt.Errorf("%d sessions returned truncated-but-clean streams (delivery contract violated)", pt.Truncated)
	}
	if pt.Completed == 0 {
		return nil, fmt.Errorf("no session completed (%d explicit failures)", pt.FailedExplicit)
	}
	if name == "baseline" && pt.FailedExplicit > 0 {
		return nil, fmt.Errorf("%d failures with no fault injected", pt.FailedExplicit)
	}
	return pt, nil
}

type clusterOutcome int

const (
	outcomeCompleted clusterOutcome = iota
	outcomeExplicitFail
	outcomeTruncated
)

type clusterSample struct {
	outcome     clusterOutcome
	attempts    int
	retries503  int
	firstPacket time.Duration
	wall        time.Duration // accepted submission → stream drained
	traceID     string        // X-Vcodec-Trace trailer
	backend     string        // X-Vcodec-Backend trailer
	err         error
}

// runClusterSession is one verifying client: it uploads the clip and
// byte-compares every received packet against the offline encoder. The
// classification is strict: a clean EOF with no error trailer must carry
// the complete, identical clip, anything else with a clean face is a
// contract violation.
func runClusterSession(client *http.Client, base string, upload []byte, offline [][]byte, cfg ClusterConfig) clusterSample {
	url := fmt.Sprintf("%s/encode?qp=%d&me=%s&entropy=%s", base, cfg.Qp, cfg.Searcher, cfg.Entropy)
	var s clusterSample
	for attempt := 0; ; attempt++ {
		begin := time.Now()
		resp, err := client.Post(url, "video/x-yuv4mpeg", bytes.NewReader(upload))
		if err != nil {
			s.outcome, s.err = outcomeExplicitFail, err
			return s
		}
		if resp.StatusCode == http.StatusServiceUnavailable && cfg.Retry503 && attempt < cfg.RetryMax {
			// Honor the advertised delay: the server said when to come back.
			delay := 200 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = time.Duration(ra) * time.Second
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			s.retries503++
			time.Sleep(delay)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			s.outcome = outcomeExplicitFail
			s.err = fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
			return s
		}

		pr := codec.NewPacketReader(resp.Body)
		n, mismatch := 0, false
		for {
			idx, data, err := pr.ReadPacket()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Cut mid-record: loud, detectable, an explicit failure.
				resp.Body.Close()
				s.outcome, s.err = outcomeExplicitFail, err
				return s
			}
			if n == 1 {
				s.firstPacket = time.Since(begin)
			}
			if idx != n || n >= len(offline) || !bytes.Equal(data, offline[n]) {
				mismatch = true
			}
			n++
		}
		resp.Body.Close()
		s.wall = time.Since(begin)
		s.traceID = resp.Trailer.Get("X-Vcodec-Trace")
		s.backend = resp.Trailer.Get("X-Vcodec-Backend")
		s.attempts = 1
		if a, err := strconv.Atoi(resp.Trailer.Get("X-Vcodec-Attempts")); err == nil {
			s.attempts = a
		}
		if errT := resp.Trailer.Get("X-Vcodec-Error"); errT != "" {
			s.outcome, s.err = outcomeExplicitFail, fmt.Errorf("server: %s", errT)
			return s
		}
		if mismatch || n != len(offline) {
			s.outcome = outcomeTruncated
			s.err = fmt.Errorf("clean stream with %d/%d packets (mismatch=%v)", n, len(offline), mismatch)
			return s
		}
		s.outcome = outcomeCompleted
		return s
	}
}

// gatewayCounters are the metric deltas a scenario reports.
type gatewayCounters struct {
	retries      int64
	breakerTrips int64
}

// scrapeGatewayCounters sums gateway_retries_total and per-backend
// breaker trips across the endpoints; endpoints without gateway metrics
// (bare vcodecd) contribute zero.
func scrapeGatewayCounters(client *http.Client, urls []string) gatewayCounters {
	var c gatewayCounters
	for _, u := range urls {
		resp, err := client.Get(u + "/metrics")
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			name, val, found := strings.Cut(line, " ")
			if !found {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				continue
			}
			switch {
			case name == "gateway_retries_total":
				c.retries += int64(v)
			case strings.HasPrefix(name, "gateway_backend_breaker_trips_total{"):
				c.breakerTrips += int64(v)
			}
		}
		resp.Body.Close()
	}
	return c
}

// waitEndpoints polls every endpoint's /healthz until it answers (any
// status: a gateway with a still-converging fleet is reachable).
func waitEndpoints(urls []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, u := range urls {
		for {
			resp, err := http.Get(u + "/healthz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("endpoint %s not healthy after %v: %w", u, timeout, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

// WriteJSON writes the result to path (pretty-printed, trailing newline).
func (r *ClusterResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatCluster renders the chaos report as an aligned text table.
func FormatCluster(r *ClusterResult) string {
	out := fmt.Sprintf("cluster: %s, %d backends, %s %s, %d frames/session, Qp %d, %s\n",
		strings.Join(r.URLs, ","), r.Backends, r.Profile, r.Size, r.Frames, r.Qp, r.Searcher)
	out += fmt.Sprintf("%-18s %9s %10s %8s %9s %10s %8s %9s %12s %12s\n",
		"scenario", "sessions", "completed", "retried", "failed", "truncated", "wall s", "gw-retry", "first p50ms", "first p99ms")
	for _, p := range r.Points {
		out += fmt.Sprintf("%-18s %9d %10d %8d %9d %10d %8.2f %9d %12.1f %12.1f\n",
			p.Scenario, p.Sessions, p.Completed, p.Retried, p.FailedExplicit, p.Truncated,
			p.WallSeconds, p.GatewayRetries, p.FirstPacketMsP50, p.FirstPacketMsP99)
		out += formatWorst(p.Worst)
	}
	return out
}
