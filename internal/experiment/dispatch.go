package experiment

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/frame"
	"repro/internal/metrics"
)

// DispatchReport renders the SAD kernel dispatch state (detected CPU
// features, registered tiers, the active tier) and runs a one-shot
// sanity probe: every registered tier computes SAD, SADCapped, IntraSAD
// and the half-pel phases on a fixed block and must agree with the
// scalar reference bit-for-bit. It is the cheap CI-time version of the
// full differential suite in internal/metrics — catching a machine
// whose dispatch picked a broken tier (or silently fell back to scalar)
// before any benchmark numbers get trusted. The returned error is
// non-nil when the dispatch state is inconsistent or a probe mismatches.
func DispatchReport() (string, error) {
	var b strings.Builder
	tiers := metrics.KernelISAs()
	active := metrics.ActiveKernelISA()
	fmt.Fprintf(&b, "cpu features: %v\n", metrics.DetectedCPUFeatures())
	fmt.Fprintf(&b, "kernel tiers: %v (fallback order, best last)\n", tiers)
	fmt.Fprintf(&b, "active tier:  %s\n", active)
	if env := os.Getenv(metrics.KernelEnvVar); env != "" {
		fmt.Fprintf(&b, "env override: %s=%s\n", metrics.KernelEnvVar, env)
	}

	var errs []string
	if note := metrics.KernelInitNote(); note != "" {
		fmt.Fprintf(&b, "init note:    %s\n", note)
		errs = append(errs, fmt.Sprintf("kernel init degraded: %s", note))
	}
	if len(tiers) < 2 || tiers[0] != "scalar" || tiers[1] != "swar" {
		errs = append(errs, fmt.Sprintf("tier list %v does not start with scalar, swar", tiers))
	}
	has := func(list []string, s string) bool {
		for _, v := range list {
			if v == s {
				return true
			}
		}
		return false
	}
	for _, feat := range metrics.DetectedCPUFeatures() {
		if (feat == "sse2" || feat == "avx2") && !has(tiers, feat) {
			errs = append(errs, fmt.Sprintf("CPU reports %s but no %s tier registered", feat, feat))
		}
	}
	if !has(tiers, active) {
		errs = append(errs, fmt.Sprintf("active tier %q not in registered tiers %v", active, tiers))
	}
	if os.Getenv(metrics.KernelEnvVar) == "" && active != tiers[len(tiers)-1] {
		errs = append(errs, fmt.Sprintf("active tier %q is not the best registered tier %q and no %s override is set",
			active, tiers[len(tiers)-1], metrics.KernelEnvVar))
	}

	if probeErrs := probeKernelTiers(&b); len(probeErrs) > 0 {
		errs = append(errs, probeErrs...)
	}
	if len(errs) > 0 {
		return b.String(), fmt.Errorf("dispatch sanity: %s", strings.Join(errs, "; "))
	}
	return b.String(), nil
}

// probeKernelTiers runs the fixed probe block through every tier and
// appends one ok/mismatch line per tier.
func probeKernelTiers(b *strings.Builder) []string {
	rng := rand.New(rand.NewSource(42))
	mk := func() *frame.Plane {
		p := &frame.Plane{W: 48, H: 32, Stride: 53, Pix: make([]uint8, 53*32)}
		rng.Read(p.Pix)
		return p
	}
	cur, ref := mk(), mk()

	type probe struct {
		name string
		fn   func() int
	}
	probes := []probe{
		{"sad16x16", func() int { return metrics.SAD(cur, 8, 8, ref, 9, 7, 16, 16) }},
		{"sad12x8", func() int { return metrics.SAD(cur, 3, 5, ref, 6, 2, 12, 8) }},
		{"sadCapped", func() int { return metrics.SADCapped(cur, 8, 8, ref, 9, 7, 16, 16, 700) }},
		{"intraSAD", func() int { return metrics.IntraSAD(cur, 8, 8, 16, 16) }},
		{"halfPelH", func() int { return metrics.SADHalfPelPlane(cur, 8, 8, ref, 19, 14, 16, 16) }},
		{"halfPelV", func() int { return metrics.SADHalfPelPlane(cur, 8, 8, ref, 18, 15, 16, 16) }},
		{"halfPelD", func() int { return metrics.SADHalfPelPlane(cur, 8, 8, ref, 19, 15, 16, 16) }},
		{"ring", func() int {
			out := [9]int{4: -1}
			metrics.SADHalfPelRing(cur, 8, 8, ref, 9, 7, 16, 16, &out)
			sum := 0
			for _, v := range out {
				sum += v
			}
			return sum
		}},
	}

	want := make([]int, len(probes))
	restore, err := metrics.SetKernelISA("scalar")
	if err != nil {
		return []string{err.Error()}
	}
	for i, p := range probes {
		want[i] = p.fn()
	}
	restore()

	var errs []string
	for _, isa := range metrics.KernelISAs() {
		restore, err := metrics.SetKernelISA(isa)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		bad := 0
		for i, p := range probes {
			if got := p.fn(); got != want[i] {
				errs = append(errs, fmt.Sprintf("%s: probe %s = %d, scalar reference %d", isa, p.name, got, want[i]))
				bad++
			}
		}
		restore()
		if bad == 0 {
			fmt.Fprintf(b, "probe %-6s ok (%d kernels bit-identical to scalar)\n", isa, len(probes))
		}
	}
	return errs
}
