// Package experiment reproduces the paper's evaluation: the Fig. 4
// preliminary study (move-then-search scatter of Intra_SAD vs
// SAD_deviation by motion vector error), Table 1 (average search positions
// per macroblock for ACBM), the Figs. 5/6 rate-distortion sweeps, and the
// §4 headline claims derived from them.
package experiment

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

// Defaults shared by the experiments; all overridable per config.
const (
	// DefaultSeed decorrelates synthetic textures; fixed for
	// reproducibility.
	DefaultSeed = 2005
	// DefaultFrames is the sequence length at 30 fps.
	DefaultFrames = 60
	// DefaultRange is the paper's search range p=15.
	DefaultRange = 15
	// FSBMPoints is the paper's FSBM complexity reference: (2·15+1)²+8.
	FSBMPoints = 969
)

// DefaultQps are the quantiser values of Table 1 (also used for the RD
// sweeps of Figs. 5 and 6).
var DefaultQps = []int{30, 28, 26, 24, 22, 20, 18, 16}

// DefaultParams returns the paper's calibrated ACBM parameters.
func DefaultParams() core.Params { return core.DefaultParams }

// cache memoizes generated sequences across experiments (the RD sweeps and
// Table 1 reuse the same frames many times).
type cacheKey struct {
	profile video.Profile
	size    frame.Size
	n       int
	seed    uint64
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey][]*frame.Frame{}
)

// Frames returns the memoized sequence for a profile at 30 fps.
func Frames(p video.Profile, size frame.Size, n int, seed uint64) []*frame.Frame {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	k := cacheKey{p, size, n, seed}
	if f, ok := cache[k]; ok {
		return f
	}
	f := video.Generate(p, size, n, seed)
	cache[k] = f
	return f
}

// ClearCache drops memoized sequences (tests use it to bound memory).
func ClearCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = map[cacheKey][]*frame.Frame{}
}

// forEachIndex runs fn(i) for i in [0, n) on a bounded worker pool and
// returns the first error (by index order). Every encode in a sweep is
// independent — each owns its searcher and encoder — so the experiments
// parallelise trivially; results stay deterministic because they are
// stored by index.
func forEachIndex(n int, fn func(i int) error) error {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
