package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/video"
)

// Small configurations keep the tests fast; the cmd tools and benches run
// the full-scale versions.

func miniTable1Config() Table1Config {
	return Table1Config{
		Size:   frame.SQCIF,
		Frames: 13,
		Qps:    []int{30, 16},
	}
}

func TestFramesCacheReturnsSameSlice(t *testing.T) {
	defer ClearCache()
	a := Frames(video.Carphone, frame.SQCIF, 3, 1)
	b := Frames(video.Carphone, frame.SQCIF, 3, 1)
	if &a[0] == nil || &a[0] != &b[0] {
		t.Fatal("cache miss on identical key")
	}
	c := Frames(video.Carphone, frame.SQCIF, 3, 2)
	if &a[0] == &c[0] {
		t.Fatal("cache hit on different seed")
	}
}

func TestRunTable1ShapeClaims(t *testing.T) {
	defer ClearCache()
	res, err := RunTable1(miniTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	// Every configured cell must exist with sane values.
	for _, p := range video.Profiles {
		for _, dec := range []int{1, 3} {
			for _, qp := range []int{30, 16} {
				cell, ok := res.Cell(p, dec, qp)
				if !ok {
					t.Fatalf("missing cell %v/%d/%d", p, dec, qp)
				}
				if cell.AvgPoints <= 0 || cell.AvgPoints > FSBMPoints {
					t.Fatalf("%v/%d/%d: avg points %.0f out of range", p, dec, qp, cell.AvgPoints)
				}
				if cell.FSBMRate < 0 || cell.FSBMRate > 1 {
					t.Fatalf("%v/%d/%d: FSBM rate %.2f", p, dec, qp, cell.FSBMRate)
				}
			}
		}
	}
	// Paper shape: Miss America is the cheapest column, Foreman the most
	// expensive.
	for _, dec := range []int{1, 3} {
		miss := res.MeanPoints(video.MissAmerica, dec)
		fore := res.MeanPoints(video.Foreman, dec)
		car := res.MeanPoints(video.Carphone, dec)
		tab := res.MeanPoints(video.TableTennis, dec)
		if !(miss < car && miss < fore && miss < tab) {
			t.Errorf("dec %d: Miss America %.0f not cheapest (car %.0f fore %.0f tab %.0f)",
				dec, miss, car, fore, tab)
		}
		if !(fore > car && fore > tab) {
			t.Errorf("dec %d: Foreman %.0f not most expensive (car %.0f tab %.0f)", dec, fore, car, tab)
		}
	}
	// Paper shape: complexity grows as Qp decreases (within a small
	// tolerance — on near-static content the costs are nearly equal).
	for _, p := range video.Profiles {
		hi, _ := res.Cell(p, 1, 30)
		lo, _ := res.Cell(p, 1, 16)
		if lo.AvgPoints < hi.AvgPoints-1 {
			t.Errorf("%v: qp16 cost %.1f below qp30 cost %.1f", p, lo.AvgPoints, hi.AvgPoints)
		}
	}
	// Paper headline: large max reduction vs FSBM.
	if res.MaxReduction() < 0.9 {
		t.Errorf("max reduction %.2f, expected >= 0.9 on easy content", res.MaxReduction())
	}
}

func TestRunTable1CellAccessors(t *testing.T) {
	res := &Table1Result{Cells: map[video.Profile]map[int]map[int]Table1Cell{}}
	if _, ok := res.Cell(video.Foreman, 1, 30); ok {
		t.Fatal("missing cell reported present")
	}
	if res.MeanPoints(video.Foreman, 1) != 0 {
		t.Fatal("empty MeanPoints must be 0")
	}
	if res.MaxReduction() != 0 {
		t.Fatal("empty MaxReduction must be 0")
	}
}

func TestRunMVStudyAndConclusions(t *testing.T) {
	defer ClearCache()
	res, err := RunMVStudy(MVStudyConfig{
		Profiles: []video.Profile{video.Foreman, video.MissAmerica},
		Size:     frame.SQCIF,
		MVs:      video.DefaultGlobalMVs[:5],
		Range:    15,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := 2 * 5 * (128 / 16) * (96 / 16)
	if len(res.Samples) != wantSamples {
		t.Fatalf("samples = %d, want %d", len(res.Samples), wantSamples)
	}
	total := 0
	for c := 0; c < ErrClasses; c++ {
		total += res.Classes[c].Count
	}
	if total != wantSamples {
		t.Fatal("class counts do not partition samples")
	}
	// Global full-pel motion on a mostly interior grid: FSBM must find the
	// true vector for a clear majority of blocks.
	if res.TrueVectorRate() < 0.6 {
		t.Fatalf("true vector rate %.2f too low", res.TrueVectorRate())
	}
	// The paper's two conclusions must hold on this data.
	if err := res.ConclusionsHold(); err != nil {
		t.Fatal(err)
	}
}

func TestMVStudyRejectsHalfPelMV(t *testing.T) {
	_, err := RunMVStudy(MVStudyConfig{
		Profiles: []video.Profile{video.Foreman},
		Size:     frame.SQCIF,
		MVs:      []mvfield.MV{{X: 1, Y: 0}},
	})
	if err == nil {
		t.Fatal("half-pel global MV accepted")
	}
}

func TestRDSweepProducesOrderedCurves(t *testing.T) {
	defer ClearCache()
	curves, err := RDSweep(RDConfig{
		Profile: video.Carphone,
		Size:    frame.SQCIF,
		Frames:  9,
		Qps:     []int{30, 22, 16},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("curves = %d, want 3 (ACBM, FSBM, PBM)", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) != 3 {
			t.Fatalf("%s: %d points", c.Name, len(c.Points))
		}
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].RateKbps < c.Points[i-1].RateKbps {
				t.Fatalf("%s: points not sorted by rate", c.Name)
			}
		}
		// Lower Qp must give higher PSNR within each curve.
		byQp := map[int]float64{}
		for _, p := range c.Points {
			byQp[p.Qp] = p.PSNR
		}
		if !(byQp[16] > byQp[22] && byQp[22] > byQp[30]) {
			t.Fatalf("%s: PSNR not monotone in Qp: %v", c.Name, byQp)
		}
	}
	if _, err := FindCurve(curves, "ACBM"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindCurve(curves, "nope"); err == nil {
		t.Fatal("unknown curve found")
	}
}

func TestComputeHeadline(t *testing.T) {
	defer ClearCache()
	cfg := RDConfig{
		Profile: video.Carphone,
		Size:    frame.SQCIF,
		Frames:  9,
		Qps:     []int{30, 22, 16},
	}
	curves, err := RDSweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := RunTable1(Table1Config{
		Profiles: []video.Profile{video.Carphone},
		Size:     frame.SQCIF, Frames: 9,
		Qps: []int{30, 22, 16}, Decimations: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ComputeHeadline(cfg, curves, t1)
	if err != nil {
		t.Fatal(err)
	}
	if h.AvgPoints <= 0 || h.Reduction <= 0 {
		t.Fatalf("headline complexity missing: %+v", h)
	}
	if !strings.Contains(h.String(), "ACBM") {
		t.Fatal("headline string malformed")
	}
	// Missing curves must error.
	if _, err := ComputeHeadline(cfg, curves[:1], t1); err == nil {
		t.Fatal("headline computed without FSBM curve")
	}
}

func TestFormatters(t *testing.T) {
	defer ClearCache()
	t1, err := RunTable1(Table1Config{
		Profiles: []video.Profile{video.MissAmerica},
		Size:     frame.SQCIF, Frames: 7, Qps: []int{30}, Decimations: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable1(t1)
	for _, want := range []string{"Table 1", "Qp", "Miss Ame", "reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}

	study, err := RunMVStudy(MVStudyConfig{
		Profiles: []video.Profile{video.Foreman},
		Size:     frame.SQCIF,
		MVs:      video.DefaultGlobalMVs[:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	out = FormatMVStudy(study)
	for _, want := range []string{"Figure 4", "error", ">=5", "err=0 rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("study missing %q:\n%s", want, out)
		}
	}

	curves, err := RDSweep(RDConfig{
		Profile: video.MissAmerica, Size: frame.SQCIF, Frames: 7, Qps: []int{30, 22},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out = FormatRDCurves(ProfileTitle(video.MissAmerica, 1), curves)
	for _, want := range []string{"Miss America sequence, QCIF@30fps", "ACBM", "FSBM", "PBM", "kbit/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("curves missing %q:\n%s", want, out)
		}
	}
	if ProfileTitle(video.Foreman, 3) != "Foreman sequence, QCIF@10fps" {
		t.Fatal("ProfileTitle wrong")
	}
}

func TestDefaultParamsAccessor(t *testing.T) {
	if DefaultParams() != core.DefaultParams {
		t.Fatal("DefaultParams mismatch")
	}
}

func TestFormatMVStudyPanels(t *testing.T) {
	defer ClearCache()
	res, err := RunMVStudy(MVStudyConfig{
		Profiles: []video.Profile{video.Foreman},
		Size:     frame.SQCIF,
		MVs:      video.DefaultGlobalMVs[:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMVStudyPanels(res, 30, 6)
	for _, want := range []string{"error=0", "error>=5", "Intra_SAD", "SAD_deviation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("panels missing %q", want)
		}
	}
}

func TestRunDecisionMap(t *testing.T) {
	dm, err := RunDecisionMap(video.Foreman, frame.SQCIF, 2, core.Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Cols != 8 || dm.Rows != 6 {
		t.Fatalf("map %dx%d", dm.Cols, dm.Rows)
	}
	if dm.Stats.Blocks != 48 {
		t.Fatalf("blocks = %d", dm.Stats.Blocks)
	}
	out := dm.String()
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 7 { // 6 rows + summary
		t.Fatalf("map rendering wrong:\n%s", out)
	}
	if _, err := RunDecisionMap(video.Foreman, frame.SQCIF, 0, core.Params{}, 0); err == nil {
		t.Fatal("idx 0 accepted")
	}
}

func TestHardwareReport(t *testing.T) {
	defer ClearCache()
	t1, err := RunTable1(Table1Config{
		Profiles: []video.Profile{video.Foreman, video.MissAmerica},
		Size:     frame.SQCIF, Frames: 10, Qps: []int{16}, Decimations: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := HardwareReport(t1, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ACBM-shared", "FSBM-systolic", "PBM-engine", "cycles/MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hardware report missing %q", want)
		}
	}
	if _, err := HardwareReport(t1, 99); err == nil {
		t.Fatal("missing Qp accepted")
	}
	// The easy sequence must save substantially more energy than hard.
	easy, err := HardwareSummary(t1, video.MissAmerica, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := HardwareSummary(t1, video.Foreman, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if easy <= hard {
		t.Fatalf("energy saving ordering violated: easy %.2f <= hard %.2f", easy, hard)
	}
	if easy < 0.5 {
		t.Fatalf("easy-content energy saving %.2f implausibly low", easy)
	}
}

func TestRunParetoSweep(t *testing.T) {
	defer ClearCache()
	cfg := ParetoConfig{
		Profile: video.Foreman, Size: frame.SQCIF, Frames: 8, Qp: 14,
		Grid: []core.Params{
			{Alpha: 0, Beta: 0, GammaNum: 0, GammaDen: 1},       // always-FSBM
			{Alpha: 1 << 30, Beta: 0, GammaNum: 0, GammaDen: 1}, // always-PBM
			core.DefaultParams,
		},
	}
	points, err := RunPareto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Sorted by complexity: PBM endpoint first, FSBM endpoint last.
	if points[0].AvgPoints >= points[len(points)-1].AvgPoints {
		t.Fatal("points not sorted by complexity")
	}
	// The endpoints bracket the paper point.
	var paper ParetoPoint
	found := false
	for _, p := range points {
		if p.Params == core.DefaultParams {
			paper, found = p, true
		}
	}
	if !found {
		t.Fatal("paper point missing")
	}
	// On this short hard clip at Qp 14 the paper point can coincide with
	// the always-FSBM endpoint; it must never fall outside the bracket.
	if paper.AvgPoints < points[0].AvgPoints || paper.AvgPoints > points[len(points)-1].AvgPoints {
		t.Fatalf("paper point %.0f outside endpoints %.0f and %.0f",
			paper.AvgPoints, points[0].AvgPoints, points[len(points)-1].AvgPoints)
	}
	// At least one point must be efficient, and the cheapest point always is.
	if !points[0].Efficient {
		t.Fatal("cheapest point must be Pareto-efficient")
	}
	out := FormatPareto(cfg, points)
	for _, want := range []string{"Pareto", "positions/MB", "inf", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pareto table missing %q:\n%s", want, out)
		}
	}
}

func TestMarkEfficient(t *testing.T) {
	pts := []ParetoPoint{
		{AvgPoints: 10, PSNRY: 30},
		{AvgPoints: 20, PSNRY: 29}, // dominated by the first
		{AvgPoints: 30, PSNRY: 32},
	}
	markEfficient(pts)
	if !pts[0].Efficient || pts[1].Efficient || !pts[2].Efficient {
		t.Fatalf("efficiency flags wrong: %+v", pts)
	}
}

func TestDefaultParamGridValid(t *testing.T) {
	for _, p := range DefaultParamGrid() {
		if err := p.Validate(); err != nil {
			t.Fatalf("grid point %+v invalid: %v", p, err)
		}
	}
	if len(DefaultParamGrid()) < 10 {
		t.Fatal("grid too small to be a sweep")
	}
}

func TestRunResilience(t *testing.T) {
	defer ClearCache()
	cfg := ResilienceConfig{
		Profile: video.Foreman, Size: frame.SQCIF, Frames: 24, Qp: 12,
		LossRates:    []float64{0, 0.15},
		IntraPeriods: []int{0, 6},
	}
	points, err := RunResilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	byKey := map[[2]int]ResiliencePoint{}
	for _, p := range points {
		byKey[[2]int{p.IntraPeriod, int(100 * p.LossRate)}] = p
	}
	// Loss hurts quality in both configurations.
	if byKey[[2]int{0, 15}].PSNRY >= byKey[[2]int{0, 0}].PSNRY {
		t.Fatal("loss did not reduce PSNR without intra refresh")
	}
	if byKey[[2]int{6, 15}].PSNRY >= byKey[[2]int{6, 0}].PSNRY {
		t.Fatal("loss did not reduce PSNR with intra refresh")
	}
	// Intra refresh costs rate but recovers quality under loss.
	if byKey[[2]int{6, 0}].RateKbps <= byKey[[2]int{0, 0}].RateKbps {
		t.Fatal("intra refresh did not cost rate")
	}
	if byKey[[2]int{6, 15}].PSNRY <= byKey[[2]int{0, 15}].PSNRY {
		t.Fatalf("intra refresh did not help under loss: %.2f vs %.2f",
			byKey[[2]int{6, 15}].PSNRY, byKey[[2]int{0, 15}].PSNRY)
	}
	out := FormatResilience(cfg, points)
	for _, want := range []string{"Loss resilience", "first-only", "lost"} {
		if !strings.Contains(out, want) {
			t.Fatalf("resilience table missing %q", want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 20, 30})
	if s.Mean != 20 || s.Min != 10 || s.Max != 30 || s.N != 3 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.StdDev < 9.9 || s.StdDev > 10.1 {
		t.Fatalf("stddev = %v, want 10", s.StdDev)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty sample not zero")
	}
	one := Summarize([]float64{5})
	if one.StdDev != 0 || one.Mean != 5 {
		t.Fatalf("single sample: %+v", one)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatal("String missing n")
	}
}

func TestMultiSeedTable1Replication(t *testing.T) {
	defer ClearCache()
	st, err := MultiSeedTable1(video.MissAmerica, 1, 30, 7, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 || st.Mean <= 0 {
		t.Fatalf("replication stats: %+v", st)
	}
	// Easy content must stay cheap for every seed.
	if st.Max > 100 {
		t.Fatalf("Miss America max %.0f positions/MB across seeds", st.Max)
	}
	if _, err := MultiSeedTable1(video.Foreman, 1, 30, 7, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	out, err := FormatMultiSeed(1, 30, 7, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"replication", "Foreman", "±"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
