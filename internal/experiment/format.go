package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plot"
	"repro/internal/ratedist"
	"repro/internal/video"
)

// FormatTable1 renders a Table1Result in the paper's layout: sequences as
// column groups (one column per decimation), Qp as rows.
func FormatTable1(r *Table1Result) string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "Table 1: average candidate positions searched per macroblock (ACBM)\n")
	fmt.Fprintf(&b, "FSBM reference: %d positions; α=%d β=%d γ=%d/%d, p=%d\n\n",
		FSBMPoints, cfg.Params.Alpha, cfg.Params.Beta, cfg.Params.GammaNum, cfg.Params.GammaDen, cfg.Range)

	fmt.Fprintf(&b, "%-4s", "Qp")
	for _, p := range cfg.Profiles {
		for _, dec := range cfg.Decimations {
			fmt.Fprintf(&b, " %14s", fmt.Sprintf("%.8s@%dfps", p.String(), 30/dec))
		}
	}
	b.WriteByte('\n')
	qps := append([]int(nil), cfg.Qps...)
	sort.Sort(sort.Reverse(sort.IntSlice(qps)))
	for _, qp := range qps {
		fmt.Fprintf(&b, "%-4d", qp)
		for _, p := range cfg.Profiles {
			for _, dec := range cfg.Decimations {
				if cell, ok := r.Cell(p, dec, qp); ok {
					fmt.Fprintf(&b, " %14.0f", cell.AvgPoints)
				} else {
					fmt.Fprintf(&b, " %14s", "-")
				}
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nmax complexity reduction vs FSBM: %.1f%%\n", 100*r.MaxReduction())
	return b.String()
}

// FormatRDCurves renders one Fig. 5/6 panel as an ASCII chart plus the raw
// (rate, PSNR) series.
func FormatRDCurves(title string, curves []ratedist.Curve) string {
	var b strings.Builder
	series := make([]plot.Series, len(curves))
	for i, c := range curves {
		series[i].Name = c.Name
		for _, p := range c.Points {
			series[i].X = append(series[i].X, p.RateKbps)
			series[i].Y = append(series[i].Y, p.PSNR)
		}
	}
	b.WriteString(plot.Chart(title, "rate (kbit/s)", "PSNR-Y (dB)", 60, 16, series))
	b.WriteByte('\n')
	for _, c := range curves {
		fmt.Fprintf(&b, "%-6s", c.Name)
		for _, p := range c.Points {
			fmt.Fprintf(&b, "  (qp%d: %.1f kbit/s, %.2f dB)", p.Qp, p.RateKbps, p.PSNR)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatMVStudy renders the Fig. 4 study: the per-error-class statistics
// that the paper's six scatter plots summarise, plus the class histogram.
func FormatMVStudy(r *MVStudyResult) string {
	var b strings.Builder
	b.WriteString("Figure 4 study: FSBM motion vector errors vs block statistics\n\n")
	fmt.Fprintf(&b, "%-8s %8s %14s %16s %12s\n", "error", "blocks", "mean IntraSAD", "mean SADdev", "mean SADmin")
	labels := make([]string, ErrClasses)
	counts := make([]int, ErrClasses)
	for c := 0; c < ErrClasses; c++ {
		name := fmt.Sprintf("=%d", c)
		if c == ErrClasses-1 {
			name = ">=5"
		}
		labels[c], counts[c] = name, r.Classes[c].Count
		fmt.Fprintf(&b, "%-8s %8d %14.0f %16.0f %12.0f\n",
			name, r.Classes[c].Count, r.Classes[c].MeanIntraSAD,
			r.Classes[c].MeanDeviation, r.Classes[c].MeanSADMin)
	}
	b.WriteByte('\n')
	b.WriteString(plot.Histogram("blocks per error class", labels, counts, 40))
	high, low := r.HighTextureTrueRate()
	fmt.Fprintf(&b, "\nerr=0 rate: %.1f%% overall; %.1f%% in high-texture half vs %.1f%% in low-texture half\n",
		100*r.TrueVectorRate(), 100*high, 100*low)
	if err := r.ConclusionsHold(); err != nil {
		fmt.Fprintf(&b, "WARNING: %v\n", err)
	} else {
		b.WriteString("both §3.1 conclusions hold on this data\n")
	}
	return b.String()
}

// ProfileTitle builds a figure panel title like the paper's captions.
func ProfileTitle(p video.Profile, dec int) string {
	return fmt.Sprintf("%s sequence, QCIF@%dfps", p, 30/dec)
}
