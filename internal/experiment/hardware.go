package experiment

import (
	"fmt"
	"strings"

	"repro/internal/hwmodel"
	"repro/internal/video"
)

// HardwareReport evaluates the §5 shared-resource architecture proposal
// under the workloads measured by Table 1: for each sequence/frame-rate it
// derives a hardware workload from the ACBM statistics and compares the
// three architecture models.
func HardwareReport(t1 *Table1Result, qp int) (string, error) {
	var b strings.Builder
	cfg := t1.Config
	mbs := cfg.Size.MacroblockCols() * cfg.Size.MacroblockRows()
	fmt.Fprintf(&b, "Hardware architecture model (first-order, %v, Qp %d)\n", cfg.Size, qp)
	fmt.Fprintf(&b, "%-14s %-5s %-14s %10s %9s %10s %8s %8s\n",
		"sequence", "fps", "architecture", "cycles/MB", "MHz(rt)", "nJ/MB", "mW", "util")
	for _, prof := range cfg.Profiles {
		for _, dec := range cfg.Decimations {
			cell, ok := t1.Cell(prof, dec, qp)
			if !ok {
				return "", fmt.Errorf("experiment: no Table 1 cell for %v dec %d qp %d", prof, dec, qp)
			}
			fsbmCand := float64(FSBMPoints)
			pbmPts := cell.AvgPoints - cell.FSBMRate*fsbmCand
			if pbmPts < 8 {
				pbmPts = 8
			}
			w := hwmodel.Workload{
				MBsPerFrame:  mbs,
				FPS:          30.0 / float64(dec),
				AvgPoints:    cell.AvgPoints,
				CriticalRate: cell.FSBMRate,
				PBMPoints:    pbmPts,
			}
			reports, err := hwmodel.Compare(w, hwmodel.DefaultTech, cfg.Range)
			if err != nil {
				return "", err
			}
			for i, r := range reports {
				name := ""
				fps := ""
				if i == 0 {
					name = prof.String()
					fps = fmt.Sprintf("%d", 30/dec)
				}
				fmt.Fprintf(&b, "%-14s %-5s %-14s %10.0f %9.2f %10.0f %8.2f %7.0f%%\n",
					name, fps, r.Arch, r.CyclesPerMB, r.MinFreqMHz,
					r.EnergyPerMB, r.PowerMW, 100*r.Utilisation)
			}
		}
	}
	b.WriteString("\nFSBM-systolic runs the same cost regardless of content; ACBM-shared\n")
	b.WriteString("tracks the content-dependent critical rate, approaching the PBM engine\n")
	b.WriteString("on easy sequences at full-search quality — the §5 architecture claim.\n")
	return b.String(), nil
}

// HardwareSummary returns ACBM-shared's energy saving vs the FSBM array
// for one cell, the headline number of the architecture comparison.
func HardwareSummary(t1 *Table1Result, prof video.Profile, dec, qp int) (float64, error) {
	cell, ok := t1.Cell(prof, dec, qp)
	if !ok {
		return 0, fmt.Errorf("experiment: no cell for %v dec %d qp %d", prof, dec, qp)
	}
	mbs := t1.Config.Size.MacroblockCols() * t1.Config.Size.MacroblockRows()
	pbmPts := cell.AvgPoints - cell.FSBMRate*float64(FSBMPoints)
	if pbmPts < 8 {
		pbmPts = 8
	}
	w := hwmodel.Workload{
		MBsPerFrame: mbs, FPS: 30.0 / float64(dec),
		AvgPoints: cell.AvgPoints, CriticalRate: cell.FSBMRate, PBMPoints: pbmPts,
	}
	shared, err := hwmodel.ACBMShared{P: t1.Config.Range}.Estimate(w, hwmodel.DefaultTech)
	if err != nil {
		return 0, err
	}
	full, err := hwmodel.FSBMSystolic{P: t1.Config.Range}.Estimate(w, hwmodel.DefaultTech)
	if err != nil {
		return 0, err
	}
	return 1 - shared.EnergyPerMB/full.EnergyPerMB, nil
}
