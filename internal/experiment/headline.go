package experiment

import (
	"fmt"
	"strings"

	"repro/internal/ratedist"
	"repro/internal/video"
)

// Headline captures the paper's §4 claims for one sequence/frame-rate:
// ACBM tracks (or slightly beats) FSBM's rate-distortion performance,
// clearly beats PBM, and does so at a large complexity reduction.
type Headline struct {
	Profile    video.Profile
	Decimation int

	// Rate savings at equal quality over the overlapping PSNR range
	// (positive = ACBM needs fewer bits). This is the robust comparison:
	// ACBM's coherent motion fields reach rates FSBM cannot, so the
	// curves may not overlap on the rate axis at all.
	ACBMvsFSBMRate float64
	ACBMvsPBMRate  float64
	AvgPoints      float64 // ACBM average positions/MB (across Qp)
	Reduction      float64 // 1 − AvgPoints/969
}

// ComputeHeadline derives the headline numbers from one RD sweep and the
// matching Table 1 slice.
func ComputeHeadline(cfg RDConfig, curves []ratedist.Curve, t1 *Table1Result) (*Headline, error) {
	cfg = cfg.withDefaults()
	acbm, err := FindCurve(curves, "ACBM")
	if err != nil {
		return nil, err
	}
	fsbm, err := FindCurve(curves, "FSBM")
	if err != nil {
		return nil, err
	}
	pbm, err := FindCurve(curves, "PBM")
	if err != nil {
		return nil, err
	}
	h := &Headline{Profile: cfg.Profile, Decimation: cfg.Decimation}
	if h.ACBMvsFSBMRate, err = ratedist.AvgRateSavings(acbm, fsbm); err != nil {
		return nil, err
	}
	if h.ACBMvsPBMRate, err = ratedist.AvgRateSavings(acbm, pbm); err != nil {
		return nil, err
	}
	if t1 != nil {
		h.AvgPoints = t1.MeanPoints(cfg.Profile, cfg.Decimation)
		if h.AvgPoints > 0 {
			h.Reduction = 1 - h.AvgPoints/FSBMPoints
		}
	}
	return h, nil
}

// String formats the headline as a one-line verdict.
func (h *Headline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%dfps: ACBM rate savings at equal PSNR: %+.1f%% vs FSBM, %+.1f%% vs PBM",
		h.Profile, 30/h.Decimation, 100*h.ACBMvsFSBMRate, 100*h.ACBMvsPBMRate)
	if h.AvgPoints > 0 {
		fmt.Fprintf(&b, ", %.0f pts/MB (%.0f%% below FSBM's %d)",
			h.AvgPoints, 100*h.Reduction, FSBMPoints)
	}
	return b.String()
}
