package experiment

import (
	"os"
	"runtime"
	"strings"

	"repro/internal/metrics"
)

// Host records the machine context a benchmark artifact was measured
// on. Speed numbers are meaningless without it: ns/frame on a laptop
// and on a CI runner are different experiments, and the active SAD
// kernel ISA (scalar / swar / sse2 / avx2) is as much a part of the
// configuration as the worker count. BENCH_speed.json embeds a Host so
// every artifact is self-describing, and the perf ratchet
// (BENCH_ratchet.json) compares its recorded Host against the current
// one to decide how much slack the tolerance band gets.
type Host struct {
	// CPUModel is the "model name" line from /proc/cpuinfo on Linux,
	// or the architecture when unavailable.
	CPUModel string `json:"cpu_model"`
	NumCPU   int    `json:"num_cpu"`
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	// KernelISA is the SAD kernel tier active when the artifact was
	// produced; KernelISAs lists every tier the dispatch table
	// registered on this machine (fallback order, best last).
	KernelISA  string   `json:"kernel_isa"`
	KernelISAs []string `json:"kernel_isas"`
	// CPUFeatures is the detected x86 feature set relevant to the
	// kernels (empty on non-amd64).
	CPUFeatures []string `json:"cpu_features,omitempty"`
}

// DetectHost snapshots the current machine and kernel-dispatch state.
func DetectHost() Host {
	return Host{
		CPUModel:    cpuModel(),
		NumCPU:      runtime.NumCPU(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		KernelISA:   metrics.ActiveKernelISA(),
		KernelISAs:  metrics.KernelISAs(),
		CPUFeatures: metrics.DetectedCPUFeatures(),
	}
}

// SameCPU reports whether two hosts are close enough that their
// ns/frame numbers are directly comparable: same CPU model and the
// same active kernel ISA.
func (h Host) SameCPU(other Host) bool {
	return h.CPUModel == other.CPUModel && h.KernelISA == other.KernelISA
}

// cpuModel returns the first "model name" from /proc/cpuinfo; on
// non-Linux platforms (or a masked procfs) it degrades to GOARCH so
// the field is never empty.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			if i := strings.IndexByte(rest, ':'); i >= 0 {
				if m := strings.TrimSpace(rest[i+1:]); m != "" {
					return m
				}
			}
		}
	}
	return runtime.GOARCH
}
