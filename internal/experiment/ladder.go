package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// The simulcast ladder benchmark behind BENCH_ladder.json: encode one
// source into an N-rung ABR ladder two ways and compare.
//
//   - Independent: each rendition encoded on its own — downscale chain
//     from the source plus a full-effort motion search (TopSearcher) at
//     every rung, which is what producing the ladder takes without
//     cross-layer sharing.
//   - Ladder: codec.EncodeLadder — the source ingested once, rungs
//     pipelined with a one-frame lag, each lower rung's searcher
//     (LowSearcher, PBM by default) seeded from the rung above's scaled
//     motion field.
//
// The report carries the wall-clock speedup, per-rung quality/bitrate of
// both modes (so the cheap seeded search is accountable for its PSNR),
// and a seeding-isolation column: the same lower-rung searcher with and
// without the cross-layer seed, points/block. Rung 0 takes no seed, so
// its ladder stream must be byte-identical to its independent encode —
// the benchmark fails rather than report a speedup over different bits.

// LadderConfig configures RunLadder.
type LadderConfig struct {
	// Profile is the synthetic clip (callers should pass
	// video.TableTennis for the headline run: its pan+zoom gives the
	// spatially diverse motion field cross-layer seeding thrives on).
	Profile video.Profile
	// Size is the top rung; each following rung halves both dimensions.
	// Every rung must stay 16-aligned (default 128x128).
	Size  frame.Size
	Rungs int
	// Frames per encode (default 30).
	Frames      int
	Qp          int
	SearchRange int
	Seed        uint64
	// TopSearcher is the full-effort estimator: the ladder's rung 0 and
	// every rung of the independent baseline (default fsbm).
	TopSearcher string
	// LowSearcher runs the ladder's lower rungs, cross-layer seeded
	// (default pbm — the predictor path the seeds feed).
	LowSearcher string
	// Repeats per timed mode; the fastest repeat is reported (default 3).
	Repeats int
}

func (c LadderConfig) withDefaults() LadderConfig {
	if c.Size == (frame.Size{}) {
		c.Size = frame.Size{W: 256, H: 256}
	}
	if c.Rungs <= 0 {
		c.Rungs = 3
	}
	if c.Frames <= 0 {
		c.Frames = 30
	}
	if c.Qp <= 0 {
		c.Qp = 16
	}
	if c.SearchRange <= 0 {
		c.SearchRange = 15
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.TopSearcher == "" {
		c.TopSearcher = "fsbm"
	}
	if c.LowSearcher == "" {
		c.LowSearcher = "pbm"
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// LadderRungReport is one rung's side-by-side comparison.
type LadderRungReport struct {
	Size string `json:"size"`
	// Searcher is the estimator the ladder ran on this rung (TopSearcher
	// on rung 0, LowSearcher+seed below).
	Searcher string `json:"searcher"`

	IndependentPointsPerMB float64 `json:"independent_points_per_block"`
	IndependentPSNRY       float64 `json:"independent_psnr_y_db"`
	IndependentKbps        float64 `json:"independent_kbps"`

	LadderPointsPerMB float64 `json:"ladder_points_per_block"`
	LadderPSNRY       float64 `json:"ladder_psnr_y_db"`
	LadderKbps        float64 `json:"ladder_kbps"`

	// Seeding isolation (lower rungs only): the ladder's own searcher on
	// the same input without the cross-layer seed, and the points/block
	// the seed saved against it.
	UnseededPointsPerMB float64 `json:"unseeded_points_per_block,omitempty"`
	SeedPointsSavedPct  float64 `json:"seed_points_saved_pct,omitempty"`
}

// LadderResult is the full report, serialisable to BENCH_ladder.json.
type LadderResult struct {
	Profile     string `json:"profile"`
	TopSize     string `json:"top_size"`
	Rungs       int    `json:"rungs"`
	Frames      int    `json:"frames"`
	Qp          int    `json:"qp"`
	SearchRange int    `json:"search_range"`
	TopSearcher string `json:"top_searcher"`
	LowSearcher string `json:"low_searcher"`
	Host        Host   `json:"host"`

	// IndependentWallNs is the fastest serial pass producing every
	// rendition independently (downscale chains included); LadderWallNs
	// the fastest EncodeLadder pass over the same frames.
	IndependentWallNs int64   `json:"independent_wall_ns"`
	LadderWallNs      int64   `json:"ladder_wall_ns"`
	Speedup           float64 `json:"speedup"`

	// Rung0BitIdentical must be true: rung 0 takes no seed, so the ladder
	// stream and the independent encode are the same bits by contract.
	Rung0BitIdentical bool `json:"rung0_bit_identical"`

	PerRung []LadderRungReport `json:"per_rung"`
}

// ladderSearcher builds a fresh named searcher (one per rung per encode —
// the Rung contract).
func ladderSearcher(name string) (search.Searcher, error) {
	return core.SearcherByName(name)
}

// downscaleChain builds rung r's input sequence from the source, paying
// the same per-level box filter the ladder pays. Intermediate levels are
// released back to the frame pool; the caller releases the returned
// frames (level 0 returns the source itself — never release that).
func downscaleChain(src []*frame.Frame, level int) []*frame.Frame {
	cur := src
	for l := 0; l < level; l++ {
		next := make([]*frame.Frame, len(cur))
		for i, f := range cur {
			next[i] = frame.DownscaleFrame(f)
		}
		if l > 0 {
			releaseFrames(cur)
		}
		cur = next
	}
	return cur
}

func releaseFrames(fs []*frame.Frame) {
	for _, f := range fs {
		f.Release()
	}
}

// RunLadder measures the ladder against per-rendition independent
// encodes and writes the honest comparison: wall clock, per-rung quality
// and the seeding isolation.
func RunLadder(cfg LadderConfig) (*LadderResult, error) {
	cfg = cfg.withDefaults()
	sizes := make([]frame.Size, cfg.Rungs)
	specs := make([]codec.RungSpec, cfg.Rungs)
	sizes[0] = cfg.Size
	for r := 1; r < cfg.Rungs; r++ {
		sizes[r] = frame.Size{W: sizes[r-1].W / 2, H: sizes[r-1].H / 2}
	}
	for r, sz := range sizes {
		specs[r] = codec.RungSpec{Size: sz}
	}
	if err := codec.ValidateLadder(specs); err != nil {
		return nil, err
	}
	frames := video.Generate(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	baseCfg := codec.Config{Qp: cfg.Qp, SearchRange: cfg.SearchRange}

	res := &LadderResult{
		Profile:     cfg.Profile.String(),
		TopSize:     fmt.Sprintf("%dx%d", cfg.Size.W, cfg.Size.H),
		Rungs:       cfg.Rungs,
		Frames:      cfg.Frames,
		Qp:          cfg.Qp,
		SearchRange: cfg.SearchRange,
		TopSearcher: cfg.TopSearcher,
		LowSearcher: cfg.LowSearcher,
		Host:        DetectHost(),
	}

	// Independent baseline: every rendition from scratch with the
	// full-effort searcher, timed as one serial pass per repeat.
	var indepPkts [][][]byte
	var indepStats []*codec.SequenceStats
	var bestIndep time.Duration
	for rep := 0; rep < cfg.Repeats; rep++ {
		pkts := make([][][]byte, cfg.Rungs)
		stats := make([]*codec.SequenceStats, cfg.Rungs)
		start := time.Now()
		for r := range sizes {
			s, err := ladderSearcher(cfg.TopSearcher)
			if err != nil {
				return nil, err
			}
			ecfg := baseCfg
			ecfg.Searcher = s
			in := downscaleChain(frames, r)
			p, st, err := codec.EncodePackets(ecfg, in)
			if r > 0 {
				releaseFrames(in)
			}
			if err != nil {
				return nil, fmt.Errorf("independent rung %d: %w", r, err)
			}
			pkts[r], stats[r] = p, st
		}
		if el := time.Since(start); rep == 0 || el < bestIndep {
			bestIndep, indepPkts, indepStats = el, pkts, stats
		}
	}

	// Ladder: rung 0 on the full-effort searcher, lower rungs on the
	// seeded cheap searcher.
	mkRungs := func() ([]codec.Rung, error) {
		rungs := make([]codec.Rung, cfg.Rungs)
		for r, sz := range sizes {
			name := cfg.TopSearcher
			if r > 0 {
				name = cfg.LowSearcher
			}
			s, err := ladderSearcher(name)
			if err != nil {
				return nil, err
			}
			ecfg := baseCfg
			ecfg.Searcher = s
			rungs[r] = codec.Rung{Size: sz, Cfg: ecfg}
		}
		return rungs, nil
	}
	var ladderPkts [][][]byte
	var ladderStats []*codec.SequenceStats
	var bestLadder time.Duration
	for rep := 0; rep < cfg.Repeats; rep++ {
		rungs, err := mkRungs()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		pkts, stats, err := codec.EncodeLadder(rungs, frames)
		if err != nil {
			return nil, err
		}
		if el := time.Since(start); rep == 0 || el < bestLadder {
			bestLadder, ladderPkts, ladderStats = el, pkts, stats
		}
	}

	// Correctness gates before any speedup claim: rung 0 byte-identity
	// and a full decode of every rung with the unmodified decoder.
	res.Rung0BitIdentical = len(ladderPkts[0]) == len(indepPkts[0])
	for i := range indepPkts[0] {
		if !res.Rung0BitIdentical || !bytes.Equal(ladderPkts[0][i], indepPkts[0][i]) {
			res.Rung0BitIdentical = false
			break
		}
	}
	if !res.Rung0BitIdentical {
		return nil, fmt.Errorf("ladder rung 0 is not byte-identical to its independent encode")
	}
	for r, pkts := range ladderPkts {
		dec, err := codec.NewPacketDecoder(pkts[0])
		if err != nil {
			return nil, fmt.Errorf("ladder rung %d header: %w", r, err)
		}
		if dec.Size() != sizes[r] {
			return nil, fmt.Errorf("ladder rung %d decodes as %v, want %v", r, dec.Size(), sizes[r])
		}
		for i, pkt := range pkts[1:] {
			if _, err := dec.DecodePacket(pkt); err != nil {
				return nil, fmt.Errorf("ladder rung %d frame %d: %w", r, i, err)
			}
		}
	}

	res.IndependentWallNs = bestIndep.Nanoseconds()
	res.LadderWallNs = bestLadder.Nanoseconds()
	res.Speedup = float64(bestIndep.Nanoseconds()) / float64(bestLadder.Nanoseconds())

	// Per-rung comparison plus the seeding isolation: the same lower-rung
	// searcher on the same input, with and without the seed.
	for r := range sizes {
		rep := LadderRungReport{
			Size:                   fmt.Sprintf("%dx%d", sizes[r].W, sizes[r].H),
			Searcher:               cfg.TopSearcher,
			IndependentPointsPerMB: indepStats[r].AvgSearchPointsPerMB(),
			IndependentPSNRY:       indepStats[r].AvgPSNRY(),
			IndependentKbps:        indepStats[r].BitrateKbps(),
			LadderPointsPerMB:      ladderStats[r].AvgSearchPointsPerMB(),
			LadderPSNRY:            ladderStats[r].AvgPSNRY(),
			LadderKbps:             ladderStats[r].BitrateKbps(),
		}
		if r > 0 {
			rep.Searcher = cfg.LowSearcher + "+seed"
			s, err := ladderSearcher(cfg.LowSearcher)
			if err != nil {
				return nil, err
			}
			ecfg := baseCfg
			ecfg.Searcher = s
			in := downscaleChain(frames, r)
			_, st, err := codec.EncodePackets(ecfg, in)
			releaseFrames(in)
			if err != nil {
				return nil, fmt.Errorf("unseeded rung %d: %w", r, err)
			}
			rep.UnseededPointsPerMB = st.AvgSearchPointsPerMB()
			if rep.UnseededPointsPerMB > 0 {
				rep.SeedPointsSavedPct = 100 * (rep.UnseededPointsPerMB - rep.LadderPointsPerMB) / rep.UnseededPointsPerMB
			}
		}
		res.PerRung = append(res.PerRung, rep)
	}
	return res, nil
}

// WriteJSON writes the result to path (pretty-printed, trailing newline).
func (r *LadderResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatLadder renders the result as an aligned text table.
func FormatLadder(r *LadderResult) string {
	out := fmt.Sprintf("simulcast ladder: %s %s, %d rungs, %d frames, Qp %d, range %d\n",
		r.Profile, r.TopSize, r.Rungs, r.Frames, r.Qp, r.SearchRange)
	out += fmt.Sprintf("host: %s (%d cpus), kernel ISA %s\n", r.Host.CPUModel, r.Host.NumCPU, r.Host.KernelISA)
	out += fmt.Sprintf("independent (%s every rung): %.1f ms   ladder (%s top, seeded %s below): %.1f ms   speedup %.2fx\n",
		r.TopSearcher, float64(r.IndependentWallNs)/1e6,
		r.TopSearcher, r.LowSearcher, float64(r.LadderWallNs)/1e6, r.Speedup)
	out += fmt.Sprintf("rung 0 bit-identical to independent encode: %v\n", r.Rung0BitIdentical)
	out += fmt.Sprintf("%-9s %-10s %12s %12s %9s %9s %9s %9s %10s %10s\n",
		"size", "searcher", "ind pts/MB", "lad pts/MB", "ind PSNR", "lad PSNR", "ind kbps", "lad kbps", "uns pts/MB", "seed saved")
	for _, p := range r.PerRung {
		saved := ""
		if p.UnseededPointsPerMB > 0 {
			saved = fmt.Sprintf("%9.1f%%", p.SeedPointsSavedPct)
		}
		uns := ""
		if p.UnseededPointsPerMB > 0 {
			uns = fmt.Sprintf("%10.1f", p.UnseededPointsPerMB)
		}
		out += fmt.Sprintf("%-9s %-10s %12.1f %12.1f %9.2f %9.2f %9.1f %9.1f %10s %10s\n",
			p.Size, p.Searcher, p.IndependentPointsPerMB, p.LadderPointsPerMB,
			p.IndependentPSNRY, p.LadderPSNRY, p.IndependentKbps, p.LadderKbps, uns, saved)
	}
	return out
}
