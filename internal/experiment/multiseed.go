package experiment

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/video"
)

// Multi-seed replication: the synthetic sequences are parameterised by a
// texture seed, so the headline numbers can be replicated across
// independent "recordings" of each scene and reported with a dispersion
// estimate — the robustness check a single-trace evaluation (the paper's
// and ours) lacks.

// SeedStats summarises one metric across seeds.
type SeedStats struct {
	Mean   float64
	StdDev float64 // sample standard deviation
	Min    float64
	Max    float64
	N      int
}

// Summarize computes SeedStats for a sample.
func Summarize(xs []float64) SeedStats {
	s := SeedStats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return SeedStats{}
	}
	for _, x := range xs {
		s.Mean += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean /= float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			ss += (x - s.Mean) * (x - s.Mean)
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String formats as "mean ± std [min, max]".
func (s SeedStats) String() string {
	return fmt.Sprintf("%.1f ± %.1f [%.1f, %.1f] (n=%d)", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}

// MultiSeedTable1 replicates the Table 1 cell (profile, dec, qp) across
// seeds and returns the distribution of ACBM's positions/MB.
func MultiSeedTable1(prof video.Profile, dec, qp, frames int, seeds []uint64) (SeedStats, error) {
	if len(seeds) == 0 {
		return SeedStats{}, fmt.Errorf("experiment: no seeds")
	}
	vals := make([]float64, len(seeds))
	err := forEachIndex(len(seeds), func(i int) error {
		res, err := RunTable1(Table1Config{
			Profiles:    []video.Profile{prof},
			Frames:      frames,
			Qps:         []int{qp},
			Decimations: []int{dec},
			Seed:        seeds[i],
		})
		if err != nil {
			return err
		}
		cell, ok := res.Cell(prof, dec, qp)
		if !ok {
			return fmt.Errorf("experiment: missing cell for seed %d", seeds[i])
		}
		vals[i] = cell.AvgPoints
		return nil
	})
	if err != nil {
		return SeedStats{}, err
	}
	return Summarize(vals), nil
}

// DefaultSeeds is the replication set used by the robustness report.
var DefaultSeeds = []uint64{2005, 7, 42, 1234, 99991}

// FormatMultiSeed renders a replication report for all profiles at one
// operating point.
func FormatMultiSeed(dec, qp, frames int, seeds []uint64) (string, error) {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 replication across %d texture seeds (Qp %d, %d fps)\n",
		len(seeds), qp, 30/dec)
	for _, prof := range video.Profiles {
		st, err := MultiSeedTable1(prof, dec, qp, frames, seeds)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-14s positions/MB: %s\n", prof.String(), st.String())
	}
	return b.String(), nil
}
