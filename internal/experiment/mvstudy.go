package experiment

import (
	"fmt"
	"sort"

	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/mvfield"
	"repro/internal/search"
	"repro/internal/video"
)

// MVStudyConfig configures the Fig. 4 preliminary study (§3.1): a sequence
// with perfectly known global motion is searched with FSBM and every
// block's (Intra_SAD, SAD_deviation) pair is recorded together with the
// motion vector error.
type MVStudyConfig struct {
	Profiles []video.Profile // source frames for the study (default: all)
	Size     frame.Size      // default QCIF
	MVs      []mvfield.MV    // known global displacements (default: the nine of video.DefaultGlobalMVs)
	Range    int             // search range p (default 15)
	Seed     uint64
}

func (c MVStudyConfig) withDefaults() MVStudyConfig {
	if len(c.Profiles) == 0 {
		c.Profiles = video.Profiles
	}
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if len(c.MVs) == 0 {
		c.MVs = video.DefaultGlobalMVs
	}
	if c.Range <= 0 {
		c.Range = DefaultRange
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// ErrClasses is the number of motion vector error classes in Fig. 4:
// 0, 1, 2, 3, 4 and ≥5 pels.
const ErrClasses = 6

// BlockSample is one scatter point of Fig. 4.
type BlockSample struct {
	Profile   video.Profile
	IntraSAD  int
	Deviation int64
	SADMin    int
	Err       int // full-pel error, clamped to 5 meaning "≥5"
}

// ClassSummary aggregates one error class.
type ClassSummary struct {
	Count         int
	MeanIntraSAD  float64
	MeanDeviation float64
	MeanSADMin    float64
}

// MVStudyResult holds the study's scatter data and per-class summaries.
type MVStudyResult struct {
	Samples []BlockSample
	Classes [ErrClasses]ClassSummary
}

// RunMVStudy reproduces the Fig. 4 experiment.
func RunMVStudy(cfg MVStudyConfig) (*MVStudyResult, error) {
	cfg = cfg.withDefaults()
	res := &MVStudyResult{}
	fsbm := &search.FSBM{NoHalfPel: true} // true vectors are full-pel
	for _, prof := range cfg.Profiles {
		ref := video.ReferenceFrame(prof, cfg.Size, cfg.Seed)
		seq, err := video.GlobalMotionSequence(ref, cfg.MVs)
		if err != nil {
			return nil, fmt.Errorf("experiment: %v: %w", prof, err)
		}
		for i, trueMV := range cfg.MVs {
			prev, cur := seq[i], seq[i+1]
			ip := frame.Interpolate(prev)
			// The content of cur moved by trueMV relative to prev, so the
			// block-matching vector is −trueMV.
			wantMV := trueMV.Neg()
			for by := 0; by+16 <= cfg.Size.H; by += 16 {
				for bx := 0; bx+16 <= cfg.Size.W; bx += 16 {
					var dev metrics.Deviation
					in := &search.Input{
						Cur: cur, Ref: prev, RefI: ip,
						BX: bx, BY: by, W: 16, H: 16,
						Range: cfg.Range, Qp: 16,
						Collect: &dev,
					}
					r := fsbm.Search(in)
					e := r.MV.ErrFullPel(wantMV)
					if e > 5 {
						e = 5
					}
					res.Samples = append(res.Samples, BlockSample{
						Profile:   prof,
						IntraSAD:  metrics.IntraSAD(cur, bx, by, 16, 16),
						Deviation: dev.Value(),
						SADMin:    dev.Min(),
						Err:       e,
					})
				}
			}
		}
	}
	res.summarize()
	return res, nil
}

func (r *MVStudyResult) summarize() {
	var cnt [ErrClasses]int
	var intra, dev, sadmin [ErrClasses]float64
	for _, s := range r.Samples {
		cnt[s.Err]++
		intra[s.Err] += float64(s.IntraSAD)
		dev[s.Err] += float64(s.Deviation)
		sadmin[s.Err] += float64(s.SADMin)
	}
	for c := 0; c < ErrClasses; c++ {
		r.Classes[c] = ClassSummary{Count: cnt[c]}
		if cnt[c] > 0 {
			r.Classes[c].MeanIntraSAD = intra[c] / float64(cnt[c])
			r.Classes[c].MeanDeviation = dev[c] / float64(cnt[c])
			r.Classes[c].MeanSADMin = sadmin[c] / float64(cnt[c])
		}
	}
}

// TrueVectorRate returns the fraction of blocks with error 0.
func (r *MVStudyResult) TrueVectorRate() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	return float64(r.Classes[0].Count) / float64(len(r.Samples))
}

// HighTextureTrueRate splits blocks at the median Intra_SAD and returns
// the err=0 fraction within the high- and low-texture halves. The paper's
// first conclusion is highRate > lowRate.
func (r *MVStudyResult) HighTextureTrueRate() (highRate, lowRate float64) {
	if len(r.Samples) == 0 {
		return 0, 0
	}
	med := medianIntraSAD(r.Samples)
	var hi, hiTrue, lo, loTrue int
	for _, s := range r.Samples {
		if s.IntraSAD > med {
			hi++
			if s.Err == 0 {
				hiTrue++
			}
		} else {
			lo++
			if s.Err == 0 {
				loTrue++
			}
		}
	}
	if hi > 0 {
		highRate = float64(hiTrue) / float64(hi)
	}
	if lo > 0 {
		lowRate = float64(loTrue) / float64(lo)
	}
	return highRate, lowRate
}

// ConclusionsHold verifies the two observations §3.1 draws from Fig. 4:
// (1) high-texture blocks are mostly assigned true motion vectors, and
// (2) true-vector blocks show higher SAD_deviation and SAD_min than
// erroneous ones.
func (r *MVStudyResult) ConclusionsHold() error {
	high, low := r.HighTextureTrueRate()
	if high <= low {
		return fmt.Errorf("experiment: conclusion 1 fails: err=0 rate %.3f (high texture) <= %.3f (low texture)", high, low)
	}
	if r.Classes[0].Count == 0 {
		return fmt.Errorf("experiment: no true-vector blocks")
	}
	var errCnt int
	var errDev float64
	for c := 1; c < ErrClasses; c++ {
		errCnt += r.Classes[c].Count
		errDev += r.Classes[c].MeanDeviation * float64(r.Classes[c].Count)
	}
	if errCnt > 0 {
		errDev /= float64(errCnt)
		if r.Classes[0].MeanDeviation <= errDev {
			return fmt.Errorf("experiment: conclusion 2 fails: deviation %.0f (err=0) <= %.0f (err>0)",
				r.Classes[0].MeanDeviation, errDev)
		}
	}
	return nil
}

func medianIntraSAD(samples []BlockSample) int {
	vals := make([]int, len(samples))
	for i, s := range samples {
		vals[i] = s.IntraSAD
	}
	sort.Ints(vals)
	return vals[len(vals)/2]
}
