package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

// The paper sells α/β/γ as a quality-versus-complexity dial and reports
// one calibrated point. This harness maps the dial: it sweeps a parameter
// grid, measures (complexity, quality, rate) for each setting and marks
// the Pareto-efficient ones.

// ParetoConfig configures a parameter sensitivity sweep.
type ParetoConfig struct {
	Profile    video.Profile
	Size       frame.Size
	Frames     int
	Decimation int
	Qp         int
	Grid       []core.Params // default: DefaultParamGrid()
	Seed       uint64
}

func (c ParetoConfig) withDefaults() ParetoConfig {
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Frames <= 0 {
		c.Frames = DefaultFrames / 2
	}
	if c.Decimation <= 0 {
		c.Decimation = 1
	}
	if c.Qp <= 0 {
		c.Qp = 16
	}
	if len(c.Grid) == 0 {
		c.Grid = DefaultParamGrid()
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// DefaultParamGrid spans the dial from always-PBM to always-FSBM around
// the paper's calibration.
func DefaultParamGrid() []core.Params {
	grid := []core.Params{
		{Alpha: 0, Beta: 0, GammaNum: 0, GammaDen: 1},       // always-FSBM endpoint
		{Alpha: 1 << 30, Beta: 0, GammaNum: 0, GammaDen: 1}, // always-PBM endpoint
	}
	for _, alpha := range []int{250, 1000, 4000} {
		for _, beta := range []int{2, 8, 16} {
			for _, gammaNum := range []int{1, 2} {
				grid = append(grid, core.Params{
					Alpha: alpha, Beta: beta, GammaNum: gammaNum, GammaDen: 4,
				})
			}
		}
	}
	return grid
}

// ParetoPoint is one measured operating point of the sweep.
type ParetoPoint struct {
	Params    core.Params
	AvgPoints float64
	PSNRY     float64
	RateKbps  float64
	Efficient bool // not dominated in (AvgPoints ↓, PSNRY ↑)
}

// RunPareto sweeps the grid. Points are returned sorted by complexity.
func RunPareto(cfg ParetoConfig) ([]ParetoPoint, error) {
	cfg = cfg.withDefaults()
	base := Frames(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	frames := video.Decimate(base, cfg.Decimation)
	if len(frames) < 2 {
		return nil, fmt.Errorf("experiment: decimation leaves %d frames", len(frames))
	}
	points := make([]ParetoPoint, len(cfg.Grid))
	err := forEachIndex(len(cfg.Grid), func(i int) error {
		p := cfg.Grid[i]
		if err := p.Validate(); err != nil {
			return err
		}
		acbm := core.New(p)
		stats, _, err := codec.EncodeSequence(codec.Config{
			Qp: cfg.Qp, Searcher: acbm, FPS: 30.0 / float64(cfg.Decimation),
		}, frames)
		if err != nil {
			return err
		}
		points[i] = ParetoPoint{
			Params:    p,
			AvgPoints: stats.AvgSearchPointsPerMB(),
			PSNRY:     stats.AvgPSNRY(),
			RateKbps:  stats.BitrateKbps(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(points, func(i, j int) bool { return points[i].AvgPoints < points[j].AvgPoints })
	markEfficient(points)
	return points, nil
}

// markEfficient flags points not dominated in (complexity ↓, quality ↑).
// A point is dominated when another has ≤ complexity and ≥ quality with
// at least one strict inequality (within a small PSNR tolerance).
func markEfficient(points []ParetoPoint) {
	const eps = 1e-9
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			if points[j].AvgPoints <= points[i].AvgPoints+eps &&
				points[j].PSNRY >= points[i].PSNRY-eps &&
				(points[j].AvgPoints < points[i].AvgPoints-eps ||
					points[j].PSNRY > points[i].PSNRY+eps) {
				dominated = true
				break
			}
		}
		points[i].Efficient = !dominated
	}
}

// FormatPareto renders the sweep as a table.
func FormatPareto(cfg ParetoConfig, points []ParetoPoint) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "ACBM parameter sensitivity: %v, %v@%dfps, Qp %d\n",
		cfg.Profile, cfg.Size, 30/cfg.Decimation, cfg.Qp)
	fmt.Fprintf(&b, "%-26s %12s %10s %10s %8s\n", "params (α β γ)", "positions/MB", "PSNR-Y", "kbit/s", "Pareto")
	for _, p := range points {
		mark := ""
		if p.Efficient {
			mark = "*"
		}
		gamma := fmt.Sprintf("%d/%d", p.Params.GammaNum, p.Params.GammaDen)
		alpha := fmt.Sprintf("%d", p.Params.Alpha)
		if p.Params.Alpha >= 1<<29 {
			alpha = "inf"
		}
		fmt.Fprintf(&b, "α=%-9s β=%-3d γ=%-6s %12.0f %10.2f %10.1f %8s\n",
			alpha, p.Params.Beta, gamma, p.AvgPoints, p.PSNRY, p.RateKbps, mark)
	}
	return b.String()
}
