package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/server"
	"repro/internal/video"
)

// QosConfig drives the closed-loop QoS benchmark behind BENCH_qos.json:
// a self-hosted vcodecd is ramped past saturation with mixed-priority
// sessions and the report shows what graceful degradation buys — frame
// latency held down by trading quality, zero truncated sessions, and the
// controller restoring full quality once the ramp ends. A per-level
// offline cost table quantifies what each degradation rung costs in
// PSNR/bitrate and buys in encode time, and every level is byte-verified
// against the offline encoder through a pinned session first.
type QosConfig struct {
	// Sessions lists the ramp's concurrency levels (default {2, 8, 12}:
	// below, at, and past the degradation point on one core).
	Sessions []int
	// Frames per session (default 200 — long enough that the degraded
	// steady state, not the overload-onset transient, sets the gap
	// percentiles).
	Frames  int
	Size    frame.Size
	Profile video.Profile
	Qp      int
	Seed    uint64
	// Searcher is the sessions' requested estimator (default acbm — the
	// expensive tier the controller degrades away from).
	Searcher string
	Entropy  string
	// MaxSessions is the self-hosted daemon's admission cap (default 16:
	// the whole ramp admits, so overload shows up as latency for the
	// controller to fix, not as 503s).
	MaxSessions int
	// Interval and TargetFrameMs tune the daemon's controller (defaults
	// 25ms / 25 — a fast tick so the ramp degrades within a few frames;
	// see withDefaults for how the target is placed).
	Interval      time.Duration
	TargetFrameMs float64
	// RestoreWait bounds how long each point waits for the controller to
	// walk back to level 0 after its sessions drain (default 30s).
	RestoreWait time.Duration
	// DaemonBin, when set, execs that vcodecd binary as a separate OS
	// process instead of self-hosting in-process. On a saturated machine
	// this is the honest measurement: co-hosted, the load generator's
	// reader goroutines starve behind the encoder's CPU-bound work in the
	// one shared runtime and packets appear in scheduler-sized bursts;
	// as separate processes the kernel timeslices encoder and client
	// fairly, so gap percentiles reflect emission cadence.
	DaemonBin string
}

func (c QosConfig) withDefaults() QosConfig {
	if len(c.Sessions) == 0 {
		c.Sessions = []int{2, 8, 12}
	}
	if c.Frames <= 0 {
		// Long enough that the degraded steady state dominates the gap
		// percentiles: the unavoidable onset transient — each session's
		// one in-flight full-cost frame when the overload hits, before
		// its next hand-off can actuate — is a handful of samples, and
		// at ~200 gaps per session it stays below the p99 rank instead
		// of defining it.
		c.Frames = 200
	}
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Qp <= 0 {
		c.Qp = 16
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Searcher == "" {
		c.Searcher = "acbm"
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.TargetFrameMs <= 0 {
		// Sits between the degraded steady state's latency (the ramp's
		// 8-way PBM sharing, batch preemption included) and the overloaded
		// full-quality one: low enough that a light load runs undegraded,
		// high enough that the restore projection holds the degraded level
		// until the ramp actually ends instead of limit-cycling.
		c.TargetFrameMs = 25
	}
	if c.RestoreWait <= 0 {
		c.RestoreWait = 30 * time.Second
	}
	return c
}

// QosPoint is one ramp step's outcome.
type QosPoint struct {
	Sessions         int     `json:"sessions"`
	TotalFrames      int     `json:"total_frames"`
	WallSeconds      float64 `json:"wall_seconds"`
	FramesPerSec     float64 `json:"frames_per_sec"`
	FirstPacketMsP50 float64 `json:"first_packet_ms_p50"`
	FirstPacketMsP99 float64 `json:"first_packet_ms_p99"`
	FrameMsP50       float64 `json:"frame_ms_p50"`
	FrameMsP99       float64 `json:"frame_ms_p99"`
	// QosFinalLevels histograms the sessions by final QoS level; under
	// overload the mass moves to the degraded rungs (batch first).
	QosFinalLevels []int `json:"qos_final_levels"`
	QosTransitions int   `json:"qos_transitions"`
	// Degrades/Restores are the controller's step deltas across this
	// point (scraped from /metrics).
	Degrades int64 `json:"degrades"`
	Restores int64 `json:"restores"`
	// Truncated counts contract violations: sessions that ended cleanly
	// with fewer frames than uploaded. RunQos fails the benchmark on any.
	Truncated int `json:"truncated"`
	// RestoredToZero records that the controller walked back to level 0
	// after the point's sessions drained — degradation is not sticky.
	RestoredToZero bool `json:"restored_to_zero"`
	// Worst names the ramp step's slowest session by trace ID, with the
	// flight-recorder timeline showing where its frames spent the time.
	Worst *WorstSession `json:"worst_session,omitempty"`
}

// QosLevelCost is one degradation rung's offline price/performance: what
// level L costs in quality and bitrate and buys in per-frame encode time.
type QosLevelCost struct {
	Level            int     `json:"level"`
	PSNRY            float64 `json:"psnr_y_db"`
	Kbps             float64 `json:"kbps"`
	EncodeMsPerFrame float64 `json:"encode_ms_per_frame"`
	// PinnedVerified: a session pinned at this level through the daemon
	// streamed bytes identical to the offline ApplyQosLevel encode.
	PinnedVerified bool `json:"pinned_verified"`
}

// QosResult is the full report, serialisable to BENCH_qos.json.
type QosResult struct {
	URL       string         `json:"url"`
	Profile   string         `json:"profile"`
	Size      string         `json:"size"`
	Frames    int            `json:"frames_per_session"`
	Qp        int            `json:"qp"`
	Searcher  string         `json:"searcher"`
	Entropy   string         `json:"entropy,omitempty"`
	GoMaxProc int            `json:"gomaxprocs"`
	Levels    []QosLevelCost `json:"levels"`
	Points    []QosPoint     `json:"points"`
}

// RunQos boots a vcodecd with a fast QoS control loop, byte-verifies
// every degradation level through a pinned session, then ramps
// mixed-priority adaptive sessions past saturation. It returns an error
// — not a report — if any session truncates or the controller fails to
// restore full quality after a ramp step.
func RunQos(cfg QosConfig) (*QosResult, error) {
	cfg = cfg.withDefaults()
	frames := video.Generate(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	var body bytes.Buffer
	if err := frame.WriteY4M(&body, frames, 30, 1); err != nil {
		return nil, err
	}
	upload := body.Bytes()

	url, stop, err := startQosDaemon(cfg)
	if err != nil {
		return nil, err
	}
	defer stop()

	res := &QosResult{
		URL:       url,
		Profile:   cfg.Profile.String(),
		Size:      fmt.Sprintf("%dx%d", cfg.Size.W, cfg.Size.H),
		Frames:    cfg.Frames,
		Qp:        cfg.Qp,
		Searcher:  cfg.Searcher,
		Entropy:   cfg.Entropy,
		GoMaxProc: runtime.GOMAXPROCS(0),
	}
	client := &http.Client{}

	// Phase 1: the ladder itself. For each level, the offline encode
	// prices the rung (PSNR/kbps/encode time) and one pinned session
	// through the daemon must reproduce it byte for byte.
	for level := 0; level <= server.MaxQosLevel; level++ {
		scfg := serveConfigFor(cfg)
		scfg.QosPin = strconv.Itoa(level)
		offCfg, err := offlineConfig(scfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		offline, stats, err := codec.EncodePackets(offCfg, frames)
		if err != nil {
			return nil, fmt.Errorf("level %d offline encode: %w", level, err)
		}
		encodeWall := time.Since(start)

		urls := []string{url + fmt.Sprintf("/encode?qp=%d&me=%s&entropy=%s&qoslevel=%d",
			cfg.Qp, cfg.Searcher, cfg.Entropy, level)}
		scfg.Verify = true
		pt, err := runServePoint(client, urls, upload, 1, scfg, offline)
		if err != nil {
			return nil, fmt.Errorf("pinned level %d: %w", level, err)
		}
		res.Levels = append(res.Levels, QosLevelCost{
			Level:            level,
			PSNRY:            stats.AvgPSNRY(),
			Kbps:             stats.BitrateKbps(),
			EncodeMsPerFrame: float64(encodeWall.Nanoseconds()) / 1e6 / float64(cfg.Frames),
			PinnedVerified:   pt.Verified,
		})
	}

	// Phase 2: the overload ramp. Adaptive mixed-priority sessions; the
	// controller is the only thing standing between the ramp and the
	// saturation latency the baseline benchmark measured.
	urls := []string{url + fmt.Sprintf("/encode?qp=%d&me=%s&entropy=%s", cfg.Qp, cfg.Searcher, cfg.Entropy)}
	for _, n := range cfg.Sessions {
		preDeg, preRes := scrapeQosCounters(client, url)
		scfg := serveConfigFor(cfg)
		scfg.Priority = "mixed"
		pt, err := runServePoint(client, urls, upload, n, scfg, nil)
		if err != nil {
			return nil, fmt.Errorf("sessions=%d: %w", n, err)
		}
		qpt := QosPoint{
			Sessions:         n,
			TotalFrames:      pt.TotalFrames,
			WallSeconds:      pt.WallSeconds,
			FramesPerSec:     pt.FramesPerSec,
			FirstPacketMsP50: pt.FirstPacketMsP50,
			FirstPacketMsP99: pt.FirstPacketMsP99,
			FrameMsP50:       pt.FrameMsP50,
			FrameMsP99:       pt.FrameMsP99,
			QosFinalLevels:   pt.QosFinalLevels,
			QosTransitions:   pt.QosTransitions,
			Worst:            pt.Worst,
		}
		// The point's load is gone; the controller must hand quality
		// back (restore hysteresis: a few ticks per step). The counter
		// deltas are read only after that walk so the point's Restores
		// include its own ramp-down.
		qpt.RestoredToZero = waitQosLevelZero(client, url, cfg.RestoreWait)
		postDeg, postRes := scrapeQosCounters(client, url)
		qpt.Degrades, qpt.Restores = postDeg-preDeg, postRes-preRes
		if !qpt.RestoredToZero {
			return nil, fmt.Errorf("sessions=%d: controller did not restore to level 0 within %v", n, cfg.RestoreWait)
		}
		res.Points = append(res.Points, qpt)
	}
	return res, nil
}

// startQosDaemon brings up the vcodecd under test — exec'd from
// cfg.DaemonBin when set (see the field comment), self-hosted in-process
// otherwise — and returns its base URL plus a shutdown func.
func startQosDaemon(cfg QosConfig) (string, func(), error) {
	if cfg.DaemonBin == "" {
		srv := server.New(server.Config{
			MaxSessions:      cfg.MaxSessions,
			MaxQueued:        64,
			QosInterval:      cfg.Interval,
			QosTargetFrameMs: cfg.TargetFrameMs,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return "http://" + ln.Addr().String(), func() {
			hs.Close()
			srv.Close()
		}, nil
	}

	tmp, err := os.MkdirTemp("", "qosbench")
	if err != nil {
		return "", nil, err
	}
	addrfile := filepath.Join(tmp, "addr")
	cmd := exec.Command(cfg.DaemonBin,
		"-addr", "127.0.0.1:0",
		"-addrfile", addrfile,
		"-max-sessions", strconv.Itoa(cfg.MaxSessions),
		"-max-queued", "64",
		"-qos-interval", cfg.Interval.String(),
		"-qos-target-ms", strconv.FormatFloat(cfg.TargetFrameMs, 'f', -1, 64),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.RemoveAll(tmp)
		return "", nil, err
	}
	stop := func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
		os.RemoveAll(tmp)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrfile); err == nil && len(b) > 0 {
			return "http://" + string(b), stop, nil
		}
		if time.Now().After(deadline) {
			stop()
			return "", nil, fmt.Errorf("daemon %s never wrote its address", cfg.DaemonBin)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// serveConfigFor maps the QoS benchmark parameters onto the serve-sweep
// plumbing it reuses.
func serveConfigFor(cfg QosConfig) ServeConfig {
	return ServeConfig{
		Frames:   cfg.Frames,
		Size:     cfg.Size,
		Profile:  cfg.Profile,
		Qp:       cfg.Qp,
		Seed:     cfg.Seed,
		Searcher: cfg.Searcher,
		Entropy:  cfg.Entropy,
	}
}

// scrapeQosCounters reads the controller's cumulative degrade/restore
// counters from /metrics (zeros when unreachable — deltas then read 0).
func scrapeQosCounters(client *http.Client, base string) (degrades, restores int64) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		name, val, found := strings.Cut(sc.Text(), " ")
		if !found {
			continue
		}
		n, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		switch name {
		case "vcodecd_qos_degrades_total":
			degrades = int64(n)
		case "vcodecd_qos_restores_total":
			restores = int64(n)
		}
	}
	return degrades, restores
}

// waitQosLevelZero polls /healthz until the daemon reports qos_level 0.
func waitQosLevelZero(client *http.Client, base string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			var hz struct {
				QosLevel int `json:"qos_level"`
			}
			ok := json.NewDecoder(resp.Body).Decode(&hz) == nil && hz.QosLevel == 0
			resp.Body.Close()
			if ok {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// WriteJSON writes the result to path (pretty-printed, trailing newline).
func (r *QosResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatQos renders the result as aligned text tables.
func FormatQos(r *QosResult) string {
	out := fmt.Sprintf("qos: %s, %s %s, %d frames/session, Qp %d, %s, GOMAXPROCS %d\n",
		r.URL, r.Profile, r.Size, r.Frames, r.Qp, r.Searcher, r.GoMaxProc)
	out += fmt.Sprintf("%6s %9s %7s %12s %9s\n", "level", "psnr-y dB", "kbps", "enc ms/frame", "verified")
	for _, l := range r.Levels {
		v := "-"
		if l.PinnedVerified {
			v = "yes"
		}
		out += fmt.Sprintf("%6d %9.2f %7.1f %12.2f %9s\n", l.Level, l.PSNRY, l.Kbps, l.EncodeMsPerFrame, v)
	}
	out += fmt.Sprintf("%8s %8s %10s %9s %10s %10s %13s %11s %8s %9s\n",
		"sessions", "frames", "wall s", "frames/s", "gap p50ms", "gap p99ms", "final levels", "transitions", "deg/res", "restored")
	for _, p := range r.Points {
		rst := "no"
		if p.RestoredToZero {
			rst = "yes"
		}
		out += fmt.Sprintf("%8d %8d %10.2f %9.1f %10.2f %10.2f %13s %11d %5d/%-3d %8s\n",
			p.Sessions, p.TotalFrames, p.WallSeconds, p.FramesPerSec,
			p.FrameMsP50, p.FrameMsP99, formatLevelHist(p.QosFinalLevels),
			p.QosTransitions, p.Degrades, p.Restores, rst)
		out += formatWorst(p.Worst)
	}
	return out
}
