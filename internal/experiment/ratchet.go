package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Ratchet is the checked-in ns/frame regression gate (BENCH_ratchet.json).
// It pins one serial baseline per searcher — GOMAXPROCS=1, Workers=1,
// pipeline off, so the number is a pure single-thread kernel+encoder
// measurement — and bench-smoke fails CI when a fresh measurement
// exceeds baseline × (1 + Tolerance). The band is deliberately wide
// (encode benchmarks on shared CI runners jitter ±10–20%); the ratchet
// exists to catch step regressions — an accidental scalar fallback, a
// quadratic slip in the hot path — not single-digit drift.
//
// The baselines are only directly meaningful on the host that recorded
// them. When the current host differs (CPU model or active kernel ISA),
// Check widens the band by CrossHostMultiplier and flags the outcome so
// the caller can warn instead of silently gating on an
// apples-to-oranges comparison. Refreshing after a deliberate perf
// change: `acbmbench -experiment ratchet -update-ratchet -json`.
type Ratchet struct {
	Host   Host   `json:"host"`
	Frames int    `json:"frames"`
	Qp     int    `json:"qp"`
	Seed   uint64 `json:"seed"`
	// Tolerance is the fractional slowdown allowed over each baseline
	// on the recording host (0.40 → fail beyond 1.40× baseline).
	Tolerance float64 `json:"tolerance"`
	// CrossHostMultiplier further scales the allowed limit when the
	// measuring host's CPU model or kernel ISA differs from Host.
	CrossHostMultiplier float64 `json:"cross_host_multiplier"`
	// Baselines maps searcher name → serial ns/frame.
	Baselines map[string]float64 `json:"ns_per_frame_baselines"`
}

// DefaultRatchetPath is where bench-smoke looks for the checked-in gate.
const DefaultRatchetPath = "BENCH_ratchet.json"

const (
	defaultRatchetTolerance = 0.40
	defaultCrossHostMult    = 2.5
)

// RatchetOutcome is the verdict for one searcher's baseline.
type RatchetOutcome struct {
	Searcher   string
	BaselineNs float64
	MeasuredNs float64
	// LimitNs is the ceiling after tolerance (and, cross-host, the
	// multiplier) is applied.
	LimitNs   float64
	CrossHost bool
	OK        bool
}

func (o RatchetOutcome) String() string {
	verdict := "ok"
	if !o.OK {
		verdict = "REGRESSION"
	}
	note := ""
	if o.CrossHost {
		note = " [cross-host band]"
	}
	return fmt.Sprintf("%-6s baseline %.0f ns/frame, measured %.0f (%.2fx), limit %.0f: %s%s",
		o.Searcher, o.BaselineNs, o.MeasuredNs, o.MeasuredNs/o.BaselineNs, o.LimitNs, verdict, note)
}

// LoadRatchet reads a checked-in ratchet file.
func LoadRatchet(path string) (*Ratchet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Ratchet
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if r.Tolerance <= 0 {
		r.Tolerance = defaultRatchetTolerance
	}
	if r.CrossHostMultiplier < 1 {
		r.CrossHostMultiplier = defaultCrossHostMult
	}
	if len(r.Baselines) == 0 {
		return nil, fmt.Errorf("%s: no ns_per_frame_baselines", path)
	}
	return &r, nil
}

// WriteJSON writes the ratchet (pretty-printed, trailing newline).
func (r *Ratchet) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RatchetFromSpeed pins a new ratchet from a speed run: one baseline
// per searcher, taken from the serial point (GOMAXPROCS=1, Workers=1,
// pipeline off). An error means the result has no such point — the
// sweep was run without the serial cell.
func RatchetFromSpeed(res *SpeedResult, cfg SpeedConfig) (*Ratchet, error) {
	cfg = cfg.withDefaults()
	r := &Ratchet{
		Host:                res.Host,
		Frames:              res.Frames,
		Qp:                  res.Qp,
		Seed:                cfg.Seed,
		Tolerance:           defaultRatchetTolerance,
		CrossHostMultiplier: defaultCrossHostMult,
		Baselines:           map[string]float64{},
	}
	for _, p := range res.Points {
		if serialPoint(p) {
			r.Baselines[p.Searcher] = p.NsPerFrame
		}
	}
	if len(r.Baselines) == 0 {
		return nil, fmt.Errorf("speed result has no serial (gomaxprocs=1, workers=1, pipeline off) points")
	}
	return r, nil
}

func serialPoint(p SpeedPoint) bool {
	return p.GoMaxProcs == 1 && p.Workers == 1 && !p.Pipeline
}

// Check compares a fresh speed result against the baselines. It returns
// one outcome per baseline searcher (sorted by name) and an error only
// when the comparison itself is impossible — a baseline searcher with
// no serial point in res. Regressions are reported through the OK
// flags, not the error, so the caller can print the full table before
// failing.
func (r *Ratchet) Check(res *SpeedResult) ([]RatchetOutcome, error) {
	cross := !r.Host.SameCPU(res.Host)
	band := 1 + r.Tolerance
	if cross {
		band *= r.CrossHostMultiplier
	}
	names := make([]string, 0, len(r.Baselines))
	for name := range r.Baselines {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []RatchetOutcome
	for _, name := range names {
		baseline := r.Baselines[name]
		measured := -1.0
		for _, p := range res.Points {
			if p.Searcher == name && serialPoint(p) {
				measured = p.NsPerFrame
				break
			}
		}
		if measured < 0 {
			return nil, fmt.Errorf("ratchet: no serial measurement for searcher %q", name)
		}
		limit := baseline * band
		out = append(out, RatchetOutcome{
			Searcher:   name,
			BaselineNs: baseline,
			MeasuredNs: measured,
			LimitNs:    limit,
			CrossHost:  cross,
			OK:         measured <= limit,
		})
	}
	return out, nil
}
