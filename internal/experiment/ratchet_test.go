package experiment

import (
	"path/filepath"
	"strings"
	"testing"
)

func speedResultFor(t *testing.T, host Host, ns map[string]float64) *SpeedResult {
	t.Helper()
	res := &SpeedResult{Profile: "Foreman", Size: "176x144", Frames: 30, Qp: 16, Host: host}
	for name, v := range ns {
		res.Points = append(res.Points,
			SpeedPoint{Searcher: name, GoMaxProcs: 1, Workers: 1, Pipeline: false, NsPerFrame: v},
			// A pipeline point with a different time must never be picked
			// as the serial baseline.
			SpeedPoint{Searcher: name, GoMaxProcs: 1, Workers: 1, Pipeline: true, NsPerFrame: v / 2})
	}
	return res
}

func TestRatchetPinAndCheck(t *testing.T) {
	host := Host{CPUModel: "cpu-A", KernelISA: "avx2"}
	pin := speedResultFor(t, host, map[string]float64{"ACBM": 1000, "PBM": 400})
	r, err := RatchetFromSpeed(pin, SpeedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Baselines["ACBM"] != 1000 || r.Baselines["PBM"] != 400 {
		t.Fatalf("baselines = %v, want serial points {ACBM:1000 PBM:400}", r.Baselines)
	}

	// Round-trip through the JSON file bench-smoke would read.
	path := filepath.Join(t.TempDir(), "BENCH_ratchet.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadRatchet(path)
	if err != nil {
		t.Fatal(err)
	}

	// Same host, inside the band: ok.
	outcomes, err := r2.Check(speedResultFor(t, host, map[string]float64{"ACBM": 1300, "PBM": 400}))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if !o.OK || o.CrossHost {
			t.Errorf("same-host in-band outcome not ok: %v", o)
		}
	}

	// Same host, past baseline×(1+tolerance): the regressed searcher
	// fails, the healthy one stays ok.
	outcomes, err = r2.Check(speedResultFor(t, host, map[string]float64{"ACBM": 1500, "PBM": 400}))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RatchetOutcome{}
	for _, o := range outcomes {
		byName[o.Searcher] = o
	}
	if byName["ACBM"].OK {
		t.Errorf("ACBM at 1.5x baseline with tolerance %.2f should regress: %v", r2.Tolerance, byName["ACBM"])
	}
	if !byName["PBM"].OK {
		t.Errorf("PBM unchanged should stay ok: %v", byName["PBM"])
	}

	// Different CPU model: the band widens by the cross-host multiplier,
	// so the same 1.5x measurement passes — flagged cross-host.
	other := Host{CPUModel: "cpu-B", KernelISA: "avx2"}
	outcomes, err = r2.Check(speedResultFor(t, other, map[string]float64{"ACBM": 1500, "PBM": 400}))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if !o.OK || !o.CrossHost {
			t.Errorf("cross-host outcome should be ok and flagged: %v", o)
		}
	}

	// A baseline searcher with no serial measurement is a hard error,
	// not a silent pass.
	if _, err := r2.Check(speedResultFor(t, host, map[string]float64{"ACBM": 1000})); err == nil {
		t.Error("Check with a missing searcher should error")
	}
}

// TestDispatchReportSane runs the CI-time dispatch sanity probe on the
// real dispatch state of the machine running the tests.
func TestDispatchReportSane(t *testing.T) {
	report, err := DispatchReport()
	if err != nil {
		t.Fatalf("DispatchReport: %v\n%s", err, report)
	}
	for _, want := range []string{"kernel tiers:", "active tier:", "probe scalar ok", "probe swar   ok"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}
