package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// RateConfig configures the rate-control benchmark: rate-controlled
// encodes (Config.TargetKbps) measured across execution modes — serial,
// wavefront workers, cross-frame pipeline, shared pool — per searcher.
// The rate servo historically collapsed all of these back to serial;
// since the frame-lag controller the modes compose, and this artifact
// (BENCH_rate.json) tracks both sides of that claim PR over PR: the kbps
// tracking error must stay tight while ns/frame drops with workers, and
// every mode's bitstream must remain byte-identical to the serial
// reference.
type RateConfig struct {
	Profile video.Profile
	Size    frame.Size
	Frames  int
	Qp      int
	// TargetKbps is the rate-control target (default 80).
	TargetKbps float64
	Seed       uint64
	// Workers is the parallel width measured against serial (default
	// min(4, GOMAXPROCS)).
	Workers int
	// Repeats is how many times each encode runs; the fastest repeat is
	// reported (default 3).
	Repeats int
}

func (c RateConfig) withDefaults() RateConfig {
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Frames <= 0 {
		c.Frames = 30
	}
	if c.Qp <= 0 {
		c.Qp = 16
	}
	if c.TargetKbps <= 0 {
		c.TargetKbps = 80
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Workers <= 0 {
		c.Workers = 4
		if n := runtime.GOMAXPROCS(0); n < c.Workers {
			c.Workers = n
		}
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// RatePoint is one (searcher, execution mode) measurement of a
// rate-controlled encode.
type RatePoint struct {
	Searcher string `json:"searcher"`
	// Mode is the execution mode: serial, workers, workers+pipeline or
	// pool+pipeline.
	Mode         string  `json:"mode"`
	Workers      int     `json:"workers"`
	NsPerFrame   float64 `json:"ns_per_frame"`
	FPS          float64 `json:"fps"`
	TargetKbps   float64 `json:"target_kbps"`
	AchievedKbps float64 `json:"achieved_kbps"`
	// TrackingErrPct is |achieved − target| / target, in percent.
	TrackingErrPct float64 `json:"tracking_err_pct"`
	PSNRY          float64 `json:"psnr_y_db"`
	// Speedup is relative to this searcher's serial point.
	Speedup float64 `json:"speedup_vs_serial"`
	// BitIdentical reports whether the mode's bitstream was byte-equal to
	// the serial reference — the frame-lag controller's core guarantee.
	BitIdentical bool `json:"bit_identical"`
}

// RateResult is the full rate-control report, serialisable to
// BENCH_rate.json.
type RateResult struct {
	Profile    string      `json:"profile"`
	Size       string      `json:"size"`
	Frames     int         `json:"frames"`
	Qp         int         `json:"qp"`
	TargetKbps float64     `json:"target_kbps"`
	GoMaxProc  int         `json:"gomaxprocs"`
	Points     []RatePoint `json:"points"`
}

// rateSearchers builds a fresh searcher per encode (they are stateful):
// plain ACBM, complexity-budgeted ACBM (the second controller that used
// to force serial analysis) and FSBM as the exhaustive baseline.
func rateSearchers() []struct {
	name string
	mk   func() (search.Searcher, error)
} {
	return []struct {
		name string
		mk   func() (search.Searcher, error)
	}{
		{"ACBM", func() (search.Searcher, error) { return core.New(core.DefaultParams), nil }},
		{"ACBM-budget", func() (search.Searcher, error) { return core.NewBudgeted(150, core.DefaultParams) }},
		{"FSBM", func() (search.Searcher, error) { return &search.FSBM{}, nil }},
	}
}

// RunRate measures rate-controlled encode wall-clock and kbps tracking
// across execution modes for each searcher.
func RunRate(cfg RateConfig) (*RateResult, error) {
	cfg = cfg.withDefaults()
	frames := video.Generate(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	res := &RateResult{
		Profile:    cfg.Profile.String(),
		Size:       fmt.Sprintf("%dx%d", cfg.Size.W, cfg.Size.H),
		Frames:     cfg.Frames,
		Qp:         cfg.Qp,
		TargetKbps: cfg.TargetKbps,
		GoMaxProc:  runtime.GOMAXPROCS(0),
	}
	modes := []struct {
		name     string
		workers  int
		pipeline bool
		pool     bool
	}{
		{"serial", 1, false, false},
		{"workers", cfg.Workers, false, false},
		{"workers+pipeline", cfg.Workers, true, false},
		{"pool+pipeline", cfg.Workers, true, true},
	}
	for _, s := range rateSearchers() {
		var refBS []byte
		var base float64
		for _, mode := range modes {
			var best time.Duration
			var stats *codec.SequenceStats
			var bs []byte
			var pool *codec.Pool
			if mode.pool {
				pool = codec.NewPool(mode.workers)
			}
			for rep := 0; rep < cfg.Repeats; rep++ {
				searcher, err := s.mk()
				if err != nil {
					if pool != nil {
						pool.Close()
					}
					return nil, err
				}
				ecfg := codec.Config{
					Qp: cfg.Qp, FPS: 30, TargetKbps: cfg.TargetKbps,
					Searcher: searcher, Pipeline: mode.pipeline,
				}
				if mode.pool {
					ecfg.Pool = pool
				} else {
					ecfg.Workers = mode.workers
				}
				start := time.Now()
				st, b, err := codec.EncodeSequence(ecfg, frames)
				el := time.Since(start)
				if err != nil {
					if pool != nil {
						pool.Close()
					}
					return nil, fmt.Errorf("rate %s %s: %w", s.name, mode.name, err)
				}
				if rep == 0 || el < best {
					best, stats, bs = el, st, b
				}
			}
			if pool != nil {
				pool.Close()
			}
			if refBS == nil {
				refBS = bs
			}
			perFrame := float64(best.Nanoseconds()) / float64(cfg.Frames)
			achieved := stats.BitrateKbps()
			pt := RatePoint{
				Searcher:       s.name,
				Mode:           mode.name,
				Workers:        mode.workers,
				NsPerFrame:     perFrame,
				FPS:            1e9 / perFrame,
				TargetKbps:     cfg.TargetKbps,
				AchievedKbps:   achieved,
				TrackingErrPct: 100 * math.Abs(achieved-cfg.TargetKbps) / cfg.TargetKbps,
				PSNRY:          stats.AvgPSNRY(),
				BitIdentical:   bytes.Equal(bs, refBS),
			}
			if base == 0 {
				base = perFrame
			}
			pt.Speedup = base / perFrame
			res.Points = append(res.Points, pt)
			if !pt.BitIdentical {
				return nil, fmt.Errorf("rate %s %s: bitstream differs from serial reference", s.name, mode.name)
			}
		}
	}
	return res, nil
}

// WriteJSON writes the result to path (pretty-printed, trailing newline).
func (r *RateResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatRate renders the result as an aligned text table.
func FormatRate(r *RateResult) string {
	out := fmt.Sprintf("rate control: %s %s, %d frames, Qp %d, target %.0f kbit/s, GOMAXPROCS %d\n",
		r.Profile, r.Size, r.Frames, r.Qp, r.TargetKbps, r.GoMaxProc)
	out += fmt.Sprintf("%-12s %-17s %8s %12s %8s %10s %8s %8s %10s\n",
		"algo", "mode", "workers", "ns/frame", "fps", "kbps", "err%", "speedup", "identical")
	for _, p := range r.Points {
		ident := "yes"
		if !p.BitIdentical {
			ident = "NO"
		}
		out += fmt.Sprintf("%-12s %-17s %8d %12.0f %8.2f %10.1f %8.1f %7.2fx %10s\n",
			p.Searcher, p.Mode, p.Workers, p.NsPerFrame, p.FPS,
			p.AchievedKbps, p.TrackingErrPct, p.Speedup, ident)
	}
	return out
}
