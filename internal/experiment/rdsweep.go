package experiment

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/ratedist"
	"repro/internal/search"
	"repro/internal/video"
)

// RDConfig configures one rate-distortion sweep (one panel of Fig. 5 or
// Fig. 6): a sequence at a frame rate, encoded across a Qp range with each
// competing motion estimator.
type RDConfig struct {
	Profile    video.Profile
	Size       frame.Size
	Frames     int // at 30 fps, before decimation
	Decimation int // 1 = 30 fps (Fig. 5), 3 = 10 fps (Fig. 6)
	Qps        []int
	Range      int
	Params     core.Params
	Seed       uint64
}

func (c RDConfig) withDefaults() RDConfig {
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Frames <= 0 {
		c.Frames = DefaultFrames
	}
	if c.Decimation <= 0 {
		c.Decimation = 1
	}
	if len(c.Qps) == 0 {
		c.Qps = DefaultQps
	}
	if c.Range <= 0 {
		c.Range = DefaultRange
	}
	if c.Params == (core.Params{}) {
		c.Params = core.DefaultParams
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// AlgorithmSpec names a motion estimator factory for a sweep. A fresh
// searcher is built per encode so per-sequence state (ACBM statistics,
// motion fields) never leaks between runs.
type AlgorithmSpec struct {
	Name string
	New  func(p core.Params) search.Searcher
}

// DefaultAlgorithms returns the three algorithms the paper compares:
// ACBM, FSBM and PBM.
func DefaultAlgorithms() []AlgorithmSpec {
	return []AlgorithmSpec{
		{Name: "ACBM", New: func(p core.Params) search.Searcher { return core.New(p) }},
		{Name: "FSBM", New: func(core.Params) search.Searcher { return &search.FSBM{} }},
		{Name: "PBM", New: func(core.Params) search.Searcher { return &search.PBM{} }},
	}
}

// RDSweep encodes the configured sequence once per (algorithm, Qp) and
// returns one rate-distortion curve per algorithm, each sorted by rate.
func RDSweep(cfg RDConfig, algs []AlgorithmSpec) ([]ratedist.Curve, error) {
	cfg = cfg.withDefaults()
	if len(algs) == 0 {
		algs = DefaultAlgorithms()
	}
	base := Frames(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	frames := video.Decimate(base, cfg.Decimation)
	if len(frames) < 2 {
		return nil, fmt.Errorf("experiment: decimation %d leaves %d frames", cfg.Decimation, len(frames))
	}
	fps := 30.0 / float64(cfg.Decimation)
	curves := make([]ratedist.Curve, len(algs))
	jobs := len(algs) * len(cfg.Qps)
	points := make([]ratedist.Point, jobs)
	err := forEachIndex(jobs, func(j int) error {
		alg := algs[j/len(cfg.Qps)]
		qp := cfg.Qps[j%len(cfg.Qps)]
		stats, _, err := codec.EncodeSequence(codec.Config{
			Qp:          qp,
			SearchRange: cfg.Range,
			Searcher:    alg.New(cfg.Params),
			FPS:         fps,
		}, frames)
		if err != nil {
			return fmt.Errorf("experiment: %s qp %d: %w", alg.Name, qp, err)
		}
		points[j] = ratedist.Point{
			RateKbps: stats.BitrateKbps(),
			PSNR:     stats.AvgPSNRY(),
			Qp:       qp,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, alg := range algs {
		curves[i].Name = alg.Name
		curves[i].Points = append(curves[i].Points, points[i*len(cfg.Qps):(i+1)*len(cfg.Qps)]...)
		curves[i].Sort()
	}
	return curves, nil
}

// FindCurve returns the curve with the given name.
func FindCurve(curves []ratedist.Curve, name string) (*ratedist.Curve, error) {
	for i := range curves {
		if curves[i].Name == name {
			return &curves[i], nil
		}
	}
	return nil, fmt.Errorf("experiment: no curve named %q", name)
}
