package experiment

import (
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

// Error-resilience experiment: packetized transport over a lossy channel,
// with temporal concealment at the decoder. It quantifies the intra-
// refresh trade-off (rate overhead vs drift recovery) that a variable-
// bandwidth deployment of ACBM (§5) has to balance.

// ResilienceConfig configures one loss sweep.
type ResilienceConfig struct {
	Profile      video.Profile
	Size         frame.Size
	Frames       int
	Qp           int
	LossRates    []float64 // default {0, 0.05, 0.10}
	IntraPeriods []int     // default {0, 15}
	Seed         uint64
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Frames <= 0 {
		c.Frames = DefaultFrames
	}
	if c.Qp <= 0 {
		c.Qp = 16
	}
	if len(c.LossRates) == 0 {
		c.LossRates = []float64{0, 0.05, 0.10}
	}
	if len(c.IntraPeriods) == 0 {
		c.IntraPeriods = []int{0, 15}
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// ResiliencePoint is one (intra period, loss rate) measurement.
type ResiliencePoint struct {
	IntraPeriod int
	LossRate    float64
	RateKbps    float64 // channel rate (loss-free)
	PSNRY       float64 // delivered quality with losses + concealment
	LostFrames  int
}

// RunResilience sweeps loss rates × intra periods on one sequence with
// the ACBM estimator and deterministic loss patterns.
func RunResilience(cfg ResilienceConfig) ([]ResiliencePoint, error) {
	cfg = cfg.withDefaults()
	frames := Frames(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	var out []ResiliencePoint
	for _, ip := range cfg.IntraPeriods {
		pkts, stats, err := codec.EncodePackets(codec.Config{
			Qp: cfg.Qp, Searcher: core.New(core.DefaultParams), FPS: 30, IntraPeriod: ip,
		}, frames)
		if err != nil {
			return nil, err
		}
		for _, lr := range cfg.LossRates {
			psnr, lost, err := decodeWithLoss(frames, pkts, lr, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("experiment: ip %d loss %.2f: %w", ip, lr, err)
			}
			out = append(out, ResiliencePoint{
				IntraPeriod: ip,
				LossRate:    lr,
				RateKbps:    stats.BitrateKbps(),
				PSNRY:       psnr,
				LostFrames:  lost,
			})
		}
	}
	return out, nil
}

// decodeWithLoss drops frame packets iid at rate lr (never the first
// frame) and returns the delivered average luma PSNR.
func decodeWithLoss(src []*frame.Frame, pkts [][]byte, lr float64, seed uint64) (float64, int, error) {
	dec, err := codec.NewPacketDecoder(pkts[0])
	if err != nil {
		return 0, 0, err
	}
	rng := seed*2654435761 + 1
	next := func() float64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return float64(rng*2685821657736338717>>11) / float64(uint64(1)<<53)
	}
	var sum float64
	lost := 0
	for i := 1; i < len(pkts); i++ {
		var got *frame.Frame
		if i > 1 && next() < lr {
			lost++
			got = dec.ConcealLoss()
		} else {
			got, err = dec.DecodePacket(pkts[i])
			if err != nil {
				return 0, lost, err
			}
		}
		p, _ := frame.PSNR(src[i-1].Y, got.Y)
		sum += p
	}
	return sum / float64(len(pkts)-1), lost, nil
}

// FormatResilience renders the sweep.
func FormatResilience(cfg ResilienceConfig, points []ResiliencePoint) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "Loss resilience: %v, %v, Qp %d, ACBM, temporal concealment\n",
		cfg.Profile, cfg.Size, cfg.Qp)
	fmt.Fprintf(&b, "%-12s %-8s %10s %12s %8s\n", "intraperiod", "loss", "kbit/s", "PSNR-Y (dB)", "lost")
	for _, p := range points {
		ipName := fmt.Sprintf("%d", p.IntraPeriod)
		if p.IntraPeriod == 0 {
			ipName = "first-only"
		}
		fmt.Fprintf(&b, "%-12s %-8s %10.1f %12.2f %8d\n",
			ipName, fmt.Sprintf("%.0f%%", 100*p.LossRate), p.RateKbps, p.PSNRY, p.LostFrames)
	}
	b.WriteString("\nintra refresh buys loss recovery with rate; without it drift persists.\n")
	return b.String()
}
