package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/video"
)

// ServeConfig configures the serving benchmark: cmd/vload drives M
// concurrent encode sessions against a running vcodecd and measures what
// a client of the "variable bandwidth channel" deployment cares about —
// time to first packet (stream startup) and per-frame packet cadence —
// across a sweep of session counts. The JSON artifact (BENCH_serve.json)
// is the serving counterpart of BENCH_speed.json.
type ServeConfig struct {
	// URL is the daemon base URL, e.g. http://127.0.0.1:8323.
	URL string
	// URLs, when non-empty, replaces URL with multi-endpoint targets:
	// sessions round-robin across them (several gateways, or backends
	// driven directly).
	URLs []string
	// Sessions lists the concurrency levels to sweep (default {1, 4, 8}).
	Sessions []int
	// Frames per session (default 30).
	Frames int
	// Size and Profile describe the synthetic upload (default QCIF
	// Foreman — the paper's hard case).
	Size    frame.Size
	Profile video.Profile
	Qp      int    // default 16
	Seed    uint64 // default DefaultSeed
	// Searcher and Entropy are passed through as /encode query params.
	Searcher string
	Entropy  string
	// Kbps, when positive, requests per-session frame-lag rate control
	// (the kbps query param); sessions then run rate-controlled on the
	// shared pool at full parallelism.
	Kbps float64
	// Priority selects the sessions' scheduling tier: "" or "live",
	// "batch", or "mixed" (sessions alternate live/batch — the overload
	// shape the QoS controller's batch-first degradation is for).
	Priority string
	// QosPin, when non-empty, pins every session at that QoS level
	// (the qoslevel query param: "0".."3"); empty runs adaptive, under
	// the server's closed-loop controller.
	QosPin string
	// Verify byte-compares one session's packets per point against the
	// offline EncodePackets output — the "it serves traffic" claim is
	// then also an "it serves the right bits" claim. An adaptive run pins
	// the verified session at level 0 (the controller could otherwise
	// legitimately change its bytes mid-stream); a QosPin run verifies at
	// the pinned level against ApplyQosLevel.
	Verify bool
	// Retry503, when set, honors a 503's Retry-After: the session sleeps
	// the advertised delay and re-submits, up to RetryMax times (default
	// 4). Off by default — a load generator that silently retries hides
	// admission behavior unless explicitly asked to cooperate with it.
	Retry503 bool
	RetryMax int
}

func (c ServeConfig) withDefaults() ServeConfig {
	if len(c.Sessions) == 0 {
		c.Sessions = []int{1, 4, 8}
	}
	if c.Frames <= 0 {
		c.Frames = 30
	}
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Qp <= 0 {
		c.Qp = 16
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Searcher == "" {
		c.Searcher = "acbm"
	}
	if len(c.URLs) == 0 && c.URL != "" {
		c.URLs = []string{c.URL}
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 4
	}
	return c
}

// ServePoint is one session-count measurement.
type ServePoint struct {
	Sessions         int     `json:"sessions"`
	FramesPerSession int     `json:"frames_per_session"`
	TotalFrames      int     `json:"total_frames"`
	WallSeconds      float64 `json:"wall_seconds"`
	// FramesPerSec is aggregate serving throughput: frames streamed by
	// all sessions over the sweep's wall clock.
	FramesPerSec float64 `json:"frames_per_sec"`
	BytesOut     int64   `json:"bytes_out"`
	// FirstPacketMs* is the time from sending the request to receiving
	// the first frame packet (stream startup latency), across sessions.
	FirstPacketMsP50 float64 `json:"first_packet_ms_p50"`
	FirstPacketMsP99 float64 `json:"first_packet_ms_p99"`
	// FrameMs* is the gap between consecutive frame packets (steady-state
	// per-frame latency), across all sessions' samples.
	FrameMsP50 float64 `json:"frame_ms_p50"`
	FrameMsP99 float64 `json:"frame_ms_p99"`
	Errors     int     `json:"errors"`
	// Retries503 counts client re-submissions after a 503, honoring its
	// Retry-After (only with ServeConfig.Retry503).
	Retries503 int  `json:"retries_503,omitempty"`
	Verified   bool `json:"verified,omitempty"`
	// QosFinalLevels histograms the sessions by the QoS level their
	// stream ended at (X-Vcodec-Qos-Level trailer): index L counts the
	// sessions that finished at level L.
	QosFinalLevels []int `json:"qos_final_levels,omitempty"`
	// QosTransitions totals the mid-stream level changes actuated across
	// all sessions (X-Vcodec-Qos-Transitions trailer).
	QosTransitions int `json:"qos_transitions,omitempty"`
	// Worst names the point's slowest session by trace ID, with its
	// per-frame timeline fetched from the flight recorder.
	Worst *WorstSession `json:"worst_session,omitempty"`
}

// ServeResult is the full serving report, serialisable to
// BENCH_serve.json.
type ServeResult struct {
	URL       string       `json:"url"`
	Profile   string       `json:"profile"`
	Size      string       `json:"size"`
	Frames    int          `json:"frames_per_session"`
	Qp        int          `json:"qp"`
	Searcher  string       `json:"searcher"`
	Entropy   string       `json:"entropy,omitempty"`
	GoMaxProc int          `json:"gomaxprocs"`
	Points    []ServePoint `json:"points"`
}

// sessionSample is one client's observations.
type sessionSample struct {
	firstPacket time.Duration
	frameGaps   []time.Duration
	wall        time.Duration // request sent → stream drained
	frames      int
	bytes       int64
	retries503  int
	qosLevel    int      // final QoS level (trailer)
	qosChanges  int      // mid-stream level transitions (trailer)
	traceID     string   // X-Vcodec-Trace trailer — flight-recorder key
	backend     string   // X-Vcodec-Backend trailer (gateway runs)
	attempts    int      // X-Vcodec-Attempts trailer (gateway runs)
	packets     [][]byte // retained only for the verified session
	err         error
}

// RunServe sweeps the configured session counts against the daemon.
func RunServe(cfg ServeConfig) (*ServeResult, error) {
	cfg = cfg.withDefaults()
	frames := video.Generate(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	var body bytes.Buffer
	if err := frame.WriteY4M(&body, frames, 30, 1); err != nil {
		return nil, err
	}
	upload := body.Bytes()
	query := fmt.Sprintf("/encode?qp=%d&me=%s&entropy=%s", cfg.Qp, cfg.Searcher, cfg.Entropy)
	if cfg.Kbps > 0 {
		// Fixed-point formatting: %g's exponent form ("1e+06") would have
		// its '+' decoded as a space in the query string.
		query += "&kbps=" + strconv.FormatFloat(cfg.Kbps, 'f', -1, 64)
	}
	if cfg.QosPin != "" {
		query += "&qoslevel=" + cfg.QosPin
	}
	urls := make([]string, len(cfg.URLs))
	for i, base := range cfg.URLs {
		urls[i] = base + query
	}

	var offline [][]byte
	if cfg.Verify {
		scfg, err := offlineConfig(cfg)
		if err != nil {
			return nil, err
		}
		offline, _, err = codec.EncodePackets(scfg, frames)
		if err != nil {
			return nil, err
		}
	}

	res := &ServeResult{
		URL:       strings.Join(cfg.URLs, ","),
		Profile:   cfg.Profile.String(),
		Size:      fmt.Sprintf("%dx%d", cfg.Size.W, cfg.Size.H),
		Frames:    cfg.Frames,
		Qp:        cfg.Qp,
		Searcher:  cfg.Searcher,
		Entropy:   cfg.Entropy,
		GoMaxProc: runtime.GOMAXPROCS(0),
	}
	client := &http.Client{} // no timeout: sessions are long-lived streams
	for _, n := range cfg.Sessions {
		pt, err := runServePoint(client, urls, upload, n, cfg, offline)
		if err != nil {
			return nil, fmt.Errorf("sessions=%d: %w", n, err)
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

// offlineConfig maps the benchmark parameters onto the library encoder
// for the verification encode (Workers=1 — identity across worker counts
// is the codec's own guarantee).
func offlineConfig(cfg ServeConfig) (codec.Config, error) {
	scfg := codec.Config{Qp: cfg.Qp, FPS: 30, Workers: 1, TargetKbps: cfg.Kbps}
	switch cfg.Entropy {
	case "", "expgolomb", "eg":
	case "arith", "arithmetic", "sac":
		scfg.Entropy = codec.EntropyArith
	default:
		return scfg, fmt.Errorf("unknown entropy %q", cfg.Entropy)
	}
	s, err := core.SearcherByName(cfg.Searcher)
	if err != nil {
		return scfg, err
	}
	scfg.Searcher = s
	if cfg.QosPin != "" {
		// A pinned session's bytes are the offline encoder's at that
		// level — the server's documented qoslevel contract.
		level, err := strconv.Atoi(cfg.QosPin)
		if err != nil || level < 0 || level > server.MaxQosLevel {
			return scfg, fmt.Errorf("bad QosPin %q (want 0..%d)", cfg.QosPin, server.MaxQosLevel)
		}
		scfg = server.ApplyQosLevel(scfg, level)
	}
	return scfg, nil
}

// sessionQuery appends session i's serving-layer parameters: its
// priority tier (under "mixed", odd sessions run batch) and, for the
// verified session of an adaptive run, the level-0 pin that keeps its
// bytes offline-comparable while the controller degrades the rest.
func sessionQuery(base string, i int, verify bool, cfg ServeConfig) string {
	switch cfg.Priority {
	case "", "live":
	case "batch":
		base += "&priority=batch"
	case "mixed":
		if i%2 == 1 {
			base += "&priority=batch"
		}
	}
	if verify && cfg.QosPin == "" {
		base += "&qoslevel=0"
	}
	return base
}

func runServePoint(client *http.Client, urls []string, upload []byte, n int, cfg ServeConfig, offline [][]byte) (*ServePoint, error) {
	samples := make([]sessionSample, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verify := cfg.Verify && i == 0
			samples[i] = runSession(client, sessionQuery(urls[i%len(urls)], i, verify, cfg), upload, verify, cfg)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	pt := &ServePoint{
		Sessions:         n,
		FramesPerSession: cfg.Frames,
		WallSeconds:      wall.Seconds(),
	}
	var firsts, gaps []time.Duration
	levels := make([]int, server.MaxQosLevel+1)
	for i := range samples {
		s := &samples[i]
		pt.Retries503 += s.retries503
		if s.err != nil {
			pt.Errors++
			continue
		}
		pt.TotalFrames += s.frames
		pt.BytesOut += s.bytes
		if s.qosLevel >= 0 && s.qosLevel <= server.MaxQosLevel {
			levels[s.qosLevel]++
		}
		pt.QosTransitions += s.qosChanges
		firsts = append(firsts, s.firstPacket)
		gaps = append(gaps, s.frameGaps...)
	}
	pt.QosFinalLevels = levels
	if wall > 0 {
		pt.FramesPerSec = float64(pt.TotalFrames) / wall.Seconds()
	}
	// The tail: name the slowest session and pull its timeline back from
	// the flight recorder before later sessions push it out of the
	// completed ring.
	worst := -1
	for i := range samples {
		if samples[i].err != nil || samples[i].traceID == "" {
			continue
		}
		if worst < 0 || samples[i].wall > samples[worst].wall {
			worst = i
		}
	}
	if worst >= 0 {
		s := &samples[worst]
		w := &WorstSession{
			TraceID:       s.traceID,
			Backend:       s.backend,
			Attempts:      s.attempts,
			WallMs:        float64(s.wall.Nanoseconds()) / 1e6,
			FirstPacketMs: float64(s.firstPacket.Nanoseconds()) / 1e6,
			GapP99Ms:      quantileMs(s.frameGaps, 0.99),
		}
		bases := make([]string, len(urls))
		for i, u := range urls {
			bases[i] = debugBase(u)
		}
		w.Timeline, w.DroppedFrames = fetchTimeline(client, bases, s.traceID)
		pt.Worst = w
	}
	pt.FirstPacketMsP50 = quantileMs(firsts, 0.50)
	pt.FirstPacketMsP99 = quantileMs(firsts, 0.99)
	pt.FrameMsP50 = quantileMs(gaps, 0.50)
	pt.FrameMsP99 = quantileMs(gaps, 0.99)
	if pt.Errors > 0 {
		var firstErr error
		for i := range samples {
			if samples[i].err != nil {
				firstErr = samples[i].err
				break
			}
		}
		return nil, fmt.Errorf("%d/%d sessions failed: %w", pt.Errors, n, firstErr)
	}
	if offline != nil {
		if len(samples[0].packets) != len(offline) {
			return nil, fmt.Errorf("verify: %d packets, offline %d", len(samples[0].packets), len(offline))
		}
		for i := range offline {
			if !bytes.Equal(samples[0].packets[i], offline[i]) {
				return nil, fmt.Errorf("verify: packet %d differs from offline encoder", i)
			}
		}
		pt.Verified = true
	}
	return pt, nil
}

// runSession is one load-generating client: upload the clip, stream the
// packets back, timestamp each arrival. With cfg.Retry503 it cooperates
// with admission control, sleeping a 503's advertised Retry-After before
// re-submitting.
func runSession(client *http.Client, url string, upload []byte, keep bool, cfg ServeConfig) sessionSample {
	var s sessionSample
	var resp *http.Response
	begin := time.Now()
	for attempt := 0; ; attempt++ {
		var err error
		resp, err = client.Post(url, "video/x-yuv4mpeg", bytes.NewReader(upload))
		if err != nil {
			s.err = err
			return s
		}
		if resp.StatusCode == http.StatusServiceUnavailable && cfg.Retry503 && attempt < cfg.RetryMax {
			delay := 200 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = time.Duration(ra) * time.Second
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			s.retries503++
			time.Sleep(delay)
			begin = time.Now() // startup latency is per accepted submission
			continue
		}
		break
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		s.err = fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		return s
	}
	pr := codec.NewPacketReader(resp.Body)
	var last time.Time
	for {
		idx, data, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.err = err
			return s
		}
		now := time.Now()
		s.bytes += int64(len(data))
		if keep {
			s.packets = append(s.packets, data)
		}
		if idx == 0 {
			continue // header packet: startup is measured to the first frame
		}
		if s.frames == 0 {
			s.firstPacket = now.Sub(begin)
		} else {
			s.frameGaps = append(s.frameGaps, now.Sub(last))
		}
		last = now
		s.frames++
	}
	s.wall = time.Since(begin)
	s.qosLevel, _ = strconv.Atoi(resp.Trailer.Get("X-Vcodec-Qos-Level"))
	s.qosChanges, _ = strconv.Atoi(resp.Trailer.Get("X-Vcodec-Qos-Transitions"))
	s.traceID = resp.Trailer.Get(obs.TraceIDHeader)
	s.backend = resp.Trailer.Get("X-Vcodec-Backend")
	s.attempts, _ = strconv.Atoi(resp.Trailer.Get("X-Vcodec-Attempts"))
	if errT := resp.Trailer.Get("X-Vcodec-Error"); errT != "" {
		s.err = fmt.Errorf("server: %s", errT)
	} else if s.frames == 0 {
		s.err = fmt.Errorf("no frame packets received")
	} else if s.frames != cfg.Frames {
		// Graceful degradation must never shorten a stream: a session that
		// ends cleanly with fewer frames than it uploaded is a truncation,
		// the contract violation the QoS design exists to avoid.
		s.err = fmt.Errorf("truncated: %d/%d frames", s.frames, cfg.Frames)
	}
	return s
}

// quantileMs returns the q-quantile of the samples in milliseconds
// (nearest-rank; 0 for an empty set).
func quantileMs(d []time.Duration, q float64) float64 {
	if len(d) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds()) / 1e6
}

// WriteJSON writes the result to path (pretty-printed, trailing newline).
func (r *ServeResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatServe renders the result as an aligned text table.
func FormatServe(r *ServeResult) string {
	out := fmt.Sprintf("serving: %s, %s %s, %d frames/session, Qp %d, %s, GOMAXPROCS %d\n",
		r.URL, r.Profile, r.Size, r.Frames, r.Qp, r.Searcher, r.GoMaxProc)
	out += fmt.Sprintf("%8s %8s %10s %9s %12s %12s %10s %10s %9s %12s\n",
		"sessions", "frames", "wall s", "frames/s", "first p50ms", "first p99ms", "gap p50ms", "gap p99ms", "verified", "qos levels")
	for _, p := range r.Points {
		v := "-"
		if p.Verified {
			v = "yes"
		}
		out += fmt.Sprintf("%8d %8d %10.2f %9.1f %12.1f %12.1f %10.2f %10.2f %9s %12s\n",
			p.Sessions, p.TotalFrames, p.WallSeconds, p.FramesPerSec,
			p.FirstPacketMsP50, p.FirstPacketMsP99, p.FrameMsP50, p.FrameMsP99, v,
			formatLevelHist(p.QosFinalLevels))
		out += formatWorst(p.Worst)
	}
	return out
}

// formatLevelHist renders a final-level histogram as "L0:8 L2:4"
// (levels with no sessions omitted; "-" when empty).
func formatLevelHist(levels []int) string {
	var parts []string
	for l, n := range levels {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("L%d:%d", l, n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}
