package experiment

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/frame"
	"repro/internal/server"
	"repro/internal/video"
)

// TestRunServeWorstSession drives the serving benchmark against an
// in-process vcodecd and pins the flight-recorder contract the reports
// depend on: every point names its slowest session by trace ID, the
// timeline fetched for that ID has one event per streamed frame, and
// the rendered report prints both.
func TestRunServeWorstSession(t *testing.T) {
	srv := server.New(server.Config{MaxSessions: 4})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	res, err := RunServe(ServeConfig{
		URL:      ts.URL,
		Sessions: []int{2},
		Frames:   4,
		Size:     frame.SQCIF,
		Profile:  video.Foreman,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("%d points, want 1", len(res.Points))
	}
	w := res.Points[0].Worst
	if w == nil {
		t.Fatal("point has no worst session")
	}
	if w.TraceID == "" {
		t.Error("worst session has no trace ID")
	}
	if w.WallMs <= 0 {
		t.Errorf("worst session wall %v ms", w.WallMs)
	}
	if len(w.Timeline) != 4 {
		t.Fatalf("worst-session timeline has %d events, want 4", len(w.Timeline))
	}
	for _, ev := range w.Timeline {
		if ev.Bits <= 0 || ev.AnalysisMs <= 0 {
			t.Errorf("frame %d: bits=%d analysis=%.3fms", ev.Index, ev.Bits, ev.AnalysisMs)
		}
	}

	report := FormatServe(res)
	if !strings.Contains(report, "trace="+w.TraceID) {
		t.Errorf("report does not name the worst session's trace ID:\n%s", report)
	}
	if !strings.Contains(report, "frame   3") {
		t.Errorf("report does not dump the per-frame timeline:\n%s", report)
	}
}
