package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// SpeedConfig configures the encoder speed benchmark: wall-clock per
// frame for each searcher across worker counts, on one synthetic
// sequence (Profile defaults to the zero value, Miss America; acbmbench
// passes Foreman). It is the reproducible counterpart of `go test -bench
// EncodeFrame` that cmd/acbmbench can emit as JSON (BENCH_speed.json),
// so the perf trajectory of the encoder is tracked PR over PR.
type SpeedConfig struct {
	Profile video.Profile
	Size    frame.Size
	Frames  int
	Qp      int
	Seed    uint64
	// Workers lists the codec.Config.Workers values to measure. Default
	// {1, GOMAXPROCS} (deduplicated).
	Workers []int
	// Repeats is how many times each encode runs; the fastest repeat is
	// reported (default 3).
	Repeats int
}

func (c SpeedConfig) withDefaults() SpeedConfig {
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Frames <= 0 {
		c.Frames = 30
	}
	if c.Qp <= 0 {
		c.Qp = 16
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1}
		if n := runtime.GOMAXPROCS(0); n > 1 {
			c.Workers = append(c.Workers, n)
		}
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// SpeedPoint is one (searcher, workers) measurement.
type SpeedPoint struct {
	Searcher    string  `json:"searcher"`
	Workers     int     `json:"workers"`
	NsPerFrame  float64 `json:"ns_per_frame"`
	FPS         float64 `json:"fps"`
	PointsPerMB float64 `json:"points_per_block"`
	PSNRY       float64 `json:"psnr_y_db"`
	// Speedup is relative to this searcher's first configured worker
	// count (the baseline row, workers=1 in the default sweeps).
	Speedup float64 `json:"speedup_vs_first"`
}

// SpeedResult is the full speed report, serialisable to BENCH_speed.json.
type SpeedResult struct {
	Profile   string       `json:"profile"`
	Size      string       `json:"size"`
	Frames    int          `json:"frames"`
	Qp        int          `json:"qp"`
	GoMaxProc int          `json:"gomaxprocs"`
	Points    []SpeedPoint `json:"points"`
}

// RunSpeed measures encode wall-clock for FSBM, PBM and ACBM across the
// configured worker counts. Bitstreams are identical across worker counts
// (the wavefront encoder guarantees it), so the numbers are directly
// comparable.
func RunSpeed(cfg SpeedConfig) (*SpeedResult, error) {
	cfg = cfg.withDefaults()
	frames := video.Generate(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	res := &SpeedResult{
		Profile:   cfg.Profile.String(),
		Size:      fmt.Sprintf("%dx%d", cfg.Size.W, cfg.Size.H),
		Frames:    cfg.Frames,
		Qp:        cfg.Qp,
		GoMaxProc: runtime.GOMAXPROCS(0),
	}
	searchers := []struct {
		name string
		mk   func() search.Searcher
	}{
		{"ACBM", func() search.Searcher { return core.New(core.DefaultParams) }},
		{"FSBM", func() search.Searcher { return &search.FSBM{} }},
		{"PBM", func() search.Searcher { return &search.PBM{} }},
	}
	for _, s := range searchers {
		base := 0.0
		for _, workers := range cfg.Workers {
			var best time.Duration
			var stats *codec.SequenceStats
			for rep := 0; rep < cfg.Repeats; rep++ {
				start := time.Now()
				st, _, err := codec.EncodeSequence(codec.Config{
					Qp: cfg.Qp, Searcher: s.mk(), Workers: workers,
				}, frames)
				el := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("speed %s workers=%d: %w", s.name, workers, err)
				}
				if rep == 0 || el < best {
					best, stats = el, st
				}
			}
			perFrame := float64(best.Nanoseconds()) / float64(cfg.Frames)
			pt := SpeedPoint{
				Searcher:    s.name,
				Workers:     workers,
				NsPerFrame:  perFrame,
				FPS:         1e9 / perFrame,
				PointsPerMB: stats.AvgSearchPointsPerMB(),
				PSNRY:       stats.AvgPSNRY(),
			}
			if base == 0 {
				base = perFrame
			}
			pt.Speedup = base / perFrame
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// WriteJSON writes the result to path (pretty-printed, trailing newline).
func (r *SpeedResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatSpeed renders the result as the aligned text table acbmbench
// prints alongside (or instead of) the JSON artifact.
func FormatSpeed(r *SpeedResult) string {
	out := fmt.Sprintf("encoder speed: %s %s, %d frames, Qp %d, GOMAXPROCS %d\n",
		r.Profile, r.Size, r.Frames, r.Qp, r.GoMaxProc)
	out += fmt.Sprintf("%-6s %8s %12s %8s %10s %9s %8s\n",
		"algo", "workers", "ns/frame", "fps", "points/MB", "PSNR-Y", "speedup")
	for _, p := range r.Points {
		out += fmt.Sprintf("%-6s %8d %12.0f %8.2f %10.1f %9.2f %7.2fx\n",
			p.Searcher, p.Workers, p.NsPerFrame, p.FPS, p.PointsPerMB, p.PSNRY, p.Speedup)
	}
	return out
}
