package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/search"
	"repro/internal/video"
)

// SpeedConfig configures the encoder speed benchmark: wall-clock per
// frame for each searcher across worker counts, on one synthetic
// sequence (Profile defaults to the zero value, Miss America; acbmbench
// passes Foreman). It is the reproducible counterpart of `go test -bench
// EncodeFrame` that cmd/acbmbench can emit as JSON (BENCH_speed.json),
// so the perf trajectory of the encoder is tracked PR over PR.
type SpeedConfig struct {
	Profile video.Profile
	Size    frame.Size
	Frames  int
	Qp      int
	Seed    uint64
	// GoMaxProcs lists the runtime.GOMAXPROCS values to sweep. Default
	// {1, NumCPU} (deduplicated), so the artifact carries a scaling
	// curve even when nobody asked for one. RunSpeed restores the
	// process value when it returns.
	GoMaxProcs []int
	// Workers lists the codec.Config.Workers values to measure. When
	// empty, each GOMAXPROCS point measures {1, gomaxprocs}
	// (deduplicated), so the matrix separates "more runnable
	// goroutines" from "more OS parallelism".
	Workers []int
	// Repeats is how many times each encode runs; the fastest repeat is
	// reported (default 3).
	Repeats int
}

func (c SpeedConfig) withDefaults() SpeedConfig {
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Frames <= 0 {
		c.Frames = 30
	}
	if c.Qp <= 0 {
		c.Qp = 16
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.GoMaxProcs) == 0 {
		c.GoMaxProcs = []int{1}
		if n := runtime.NumCPU(); n > 1 {
			c.GoMaxProcs = append(c.GoMaxProcs, n)
		}
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// workersFor expands the Workers axis for one GOMAXPROCS point.
func (c SpeedConfig) workersFor(gomaxprocs int) []int {
	if len(c.Workers) > 0 {
		return c.Workers
	}
	if gomaxprocs > 1 {
		return []int{1, gomaxprocs}
	}
	return []int{1}
}

// SpeedPoint is one (searcher, gomaxprocs, workers, pipeline)
// measurement. The phase
// split — analysis vs entropy wall clock per frame — tracks the encoder's
// serial fraction: analysis parallelises across workers and overlaps the
// entropy phase in pipeline mode, so the entropy column is the Amdahl
// ceiling the bitstream/entropy optimisations must keep shrinking.
type SpeedPoint struct {
	Searcher string `json:"searcher"`
	// GoMaxProcs is the runtime.GOMAXPROCS in force for this point;
	// KernelISA is the SAD kernel tier that produced it.
	GoMaxProcs int    `json:"gomaxprocs"`
	KernelISA  string `json:"kernel_isa"`
	Workers    int    `json:"workers"`
	// Pipeline reports whether entropy coding of frame n overlapped
	// analysis of frame n+1 (codec.Pipeline).
	Pipeline           bool    `json:"pipeline"`
	NsPerFrame         float64 `json:"ns_per_frame"`
	FPS                float64 `json:"fps"`
	AnalysisNsPerFrame float64 `json:"analysis_ns_per_frame"`
	EntropyNsPerFrame  float64 `json:"entropy_ns_per_frame"`
	PointsPerMB        float64 `json:"points_per_block"`
	PSNRY              float64 `json:"psnr_y_db"`
	// AllocsPerFrame / AllocBytesPerFrame track the encoder's steady-state
	// heap churn (runtime.MemStats deltas across the measured encode):
	// working-set relief for multi-session serving shows up here first.
	AllocsPerFrame     float64 `json:"allocs_per_frame"`
	AllocBytesPerFrame float64 `json:"alloc_bytes_per_frame"`
	// InterpBytesPerFrame is the half-pel sample bytes actually
	// materialised per frame by the lazy tiled interpolation — the
	// bytes-touched metric. An eager full-grid build would pay
	// 3×W×H + apron per reference frame regardless of where search and
	// compensation land.
	InterpBytesPerFrame float64 `json:"interp_bytes_per_frame"`
	// Speedup is relative to this searcher's first measured point
	// (workers=1, pipeline off in the default sweeps).
	Speedup float64 `json:"speedup_vs_first"`
}

// SpeedResult is the full speed report, serialisable to BENCH_speed.json.
// Host makes the artifact self-describing: the CPU model, core count
// and active SAD kernel ISA the points were measured under.
type SpeedResult struct {
	Profile string       `json:"profile"`
	Size    string       `json:"size"`
	Frames  int          `json:"frames"`
	Qp      int          `json:"qp"`
	Host    Host         `json:"host"`
	Points  []SpeedPoint `json:"points"`
}

// RunSpeed measures encode wall-clock for FSBM, PBM and ACBM across the
// GOMAXPROCS × Workers × Pipeline matrix. Bitstreams are identical
// across every cell (the wavefront encoder guarantees it), so the
// numbers are directly comparable; the matrix exists to separate the
// three scaling axes — OS parallelism, wavefront width, and
// analysis/entropy overlap. The process GOMAXPROCS is restored before
// returning.
func RunSpeed(cfg SpeedConfig) (*SpeedResult, error) {
	cfg = cfg.withDefaults()
	frames := video.Generate(cfg.Profile, cfg.Size, cfg.Frames, cfg.Seed)
	res := &SpeedResult{
		Profile: cfg.Profile.String(),
		Size:    fmt.Sprintf("%dx%d", cfg.Size.W, cfg.Size.H),
		Frames:  cfg.Frames,
		Qp:      cfg.Qp,
		Host:    DetectHost(),
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	searchers := []struct {
		name string
		mk   func() search.Searcher
	}{
		{"ACBM", func() search.Searcher { return core.New(core.DefaultParams) }},
		{"FSBM", func() search.Searcher { return &search.FSBM{} }},
		{"PBM", func() search.Searcher { return &search.PBM{} }},
	}
	for _, s := range searchers {
		base := 0.0
		for _, gmp := range cfg.GoMaxProcs {
			runtime.GOMAXPROCS(gmp)
			for _, workers := range cfg.workersFor(gmp) {
				for _, pipeline := range []bool{false, true} {
					var best time.Duration
					var stats *codec.SequenceStats
					var analysis, entropy time.Duration
					var allocs, allocBytes, interpBytes uint64
					for rep := 0; rep < cfg.Repeats; rep++ {
						ecfg := codec.Config{
							Qp: cfg.Qp, Searcher: s.mk(), Workers: workers,
						}
						var ms0, ms1 runtime.MemStats
						runtime.ReadMemStats(&ms0)
						_, ib0 := frame.InterpFillStats()
						start := time.Now()
						st, a, en, err := encodeTimed(ecfg, pipeline, frames)
						el := time.Since(start)
						if err != nil {
							return nil, fmt.Errorf("speed %s gomaxprocs=%d workers=%d pipeline=%v: %w",
								s.name, gmp, workers, pipeline, err)
						}
						runtime.ReadMemStats(&ms1)
						_, ib1 := frame.InterpFillStats()
						if rep == 0 || el < best {
							best, stats, analysis, entropy = el, st, a, en
							allocs = ms1.Mallocs - ms0.Mallocs
							allocBytes = ms1.TotalAlloc - ms0.TotalAlloc
							interpBytes = ib1 - ib0
						}
					}
					perFrame := float64(best.Nanoseconds()) / float64(cfg.Frames)
					pt := SpeedPoint{
						Searcher:            s.name,
						GoMaxProcs:          gmp,
						KernelISA:           metrics.ActiveKernelISA(),
						Workers:             workers,
						Pipeline:            pipeline,
						NsPerFrame:          perFrame,
						FPS:                 1e9 / perFrame,
						AnalysisNsPerFrame:  float64(analysis.Nanoseconds()) / float64(cfg.Frames),
						EntropyNsPerFrame:   float64(entropy.Nanoseconds()) / float64(cfg.Frames),
						PointsPerMB:         stats.AvgSearchPointsPerMB(),
						PSNRY:               stats.AvgPSNRY(),
						AllocsPerFrame:      float64(allocs) / float64(cfg.Frames),
						AllocBytesPerFrame:  float64(allocBytes) / float64(cfg.Frames),
						InterpBytesPerFrame: float64(interpBytes) / float64(cfg.Frames),
					}
					if base == 0 {
						base = perFrame
					}
					pt.Speedup = base / perFrame
					res.Points = append(res.Points, pt)
				}
			}
		}
	}
	return res, nil
}

// encodeTimed runs one encode and returns the stats plus the per-phase
// wall clock (analysis vs entropy) the encoder accumulated.
func encodeTimed(cfg codec.Config, pipeline bool, frames []*frame.Frame) (*codec.SequenceStats, time.Duration, time.Duration, error) {
	if pipeline {
		p := codec.NewPipeline(cfg)
		for i, f := range frames {
			if err := p.EncodeFrame(f); err != nil {
				p.Flush() // drain the writer goroutine before bailing
				return nil, 0, 0, fmt.Errorf("frame %d: %w", i, err)
			}
		}
		stats, _, err := p.Flush()
		if err != nil {
			return nil, 0, 0, err
		}
		a, en := p.PhaseTimes()
		return stats, a, en, nil
	}
	e := codec.NewEncoder(cfg)
	for i, f := range frames {
		if _, err := e.EncodeFrame(f); err != nil {
			return nil, 0, 0, fmt.Errorf("frame %d: %w", i, err)
		}
	}
	e.Bitstream()
	a, en := e.PhaseTimes()
	return e.Stats(), a, en, nil
}

// WriteJSON writes the result to path (pretty-printed, trailing newline).
func (r *SpeedResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatSpeed renders the result as the aligned text table acbmbench
// prints alongside (or instead of) the JSON artifact.
func FormatSpeed(r *SpeedResult) string {
	out := fmt.Sprintf("encoder speed: %s %s, %d frames, Qp %d\n",
		r.Profile, r.Size, r.Frames, r.Qp)
	out += fmt.Sprintf("host: %s (%d cpus), kernel ISA %s (of %v)\n",
		r.Host.CPUModel, r.Host.NumCPU, r.Host.KernelISA, r.Host.KernelISAs)
	out += fmt.Sprintf("%-6s %4s %8s %5s %12s %8s %12s %12s %10s %9s %9s %10s %10s %8s\n",
		"algo", "gmp", "workers", "pipe", "ns/frame", "fps", "analysis/fr", "entropy/fr", "points/MB", "PSNR-Y",
		"allocs/fr", "kB-alloc/fr", "kB-interp/fr", "speedup")
	for _, p := range r.Points {
		pipe := "off"
		if p.Pipeline {
			pipe = "on"
		}
		out += fmt.Sprintf("%-6s %4d %8d %5s %12.0f %8.2f %12.0f %12.0f %10.1f %9.2f %9.1f %10.1f %10.1f %7.2fx\n",
			p.Searcher, p.GoMaxProcs, p.Workers, pipe, p.NsPerFrame, p.FPS,
			p.AnalysisNsPerFrame, p.EntropyNsPerFrame, p.PointsPerMB, p.PSNRY,
			p.AllocsPerFrame, p.AllocBytesPerFrame/1024, p.InterpBytesPerFrame/1024, p.Speedup)
	}
	return out
}
