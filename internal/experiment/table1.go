package experiment

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

// Table1Config configures the complexity experiment of Table 1: the
// average number of candidate positions ACBM searches per macroblock, per
// sequence, frame rate and quantiser.
type Table1Config struct {
	Profiles    []video.Profile
	Size        frame.Size
	Frames      int   // sequence length at 30 fps (default 60)
	Qps         []int // default DefaultQps (30..16)
	Decimations []int // temporal subsampling factors; default {1, 3} = 30/10 fps
	Range       int
	Params      core.Params
	Seed        uint64
}

func (c Table1Config) withDefaults() Table1Config {
	if len(c.Profiles) == 0 {
		c.Profiles = video.Profiles
	}
	if c.Size == (frame.Size{}) {
		c.Size = frame.QCIF
	}
	if c.Frames <= 0 {
		c.Frames = DefaultFrames
	}
	if len(c.Qps) == 0 {
		c.Qps = DefaultQps
	}
	if len(c.Decimations) == 0 {
		c.Decimations = []int{1, 3}
	}
	if c.Range <= 0 {
		c.Range = DefaultRange
	}
	if c.Params == (core.Params{}) {
		c.Params = core.DefaultParams
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// Table1Cell is one entry of Table 1 plus its decision breakdown.
type Table1Cell struct {
	AvgPoints float64 // the paper's reported number
	FSBMRate  float64 // fraction of critical blocks
	PSNRY     float64 // reconstruction quality at this operating point
	RateKbps  float64
}

// Table1Result indexes cells by [profile][decimation][qp].
type Table1Result struct {
	Config Table1Config
	Cells  map[video.Profile]map[int]map[int]Table1Cell
}

// RunTable1 reproduces Table 1 by encoding every (sequence, fps, Qp)
// combination with the ACBM motion estimator and averaging its search
// complexity per macroblock.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	cfg = cfg.withDefaults()
	res := &Table1Result{
		Config: cfg,
		Cells:  make(map[video.Profile]map[int]map[int]Table1Cell),
	}
	for _, prof := range cfg.Profiles {
		res.Cells[prof] = make(map[int]map[int]Table1Cell)
		base := Frames(prof, cfg.Size, cfg.Frames, cfg.Seed)
		for _, dec := range cfg.Decimations {
			res.Cells[prof][dec] = make(map[int]Table1Cell)
			frames := video.Decimate(base, dec)
			if len(frames) < 2 {
				return nil, fmt.Errorf("experiment: decimation %d leaves %d frames", dec, len(frames))
			}
			cells := make([]Table1Cell, len(cfg.Qps))
			err := forEachIndex(len(cfg.Qps), func(i int) error {
				qp := cfg.Qps[i]
				acbm := core.New(cfg.Params)
				stats, _, err := codec.EncodeSequence(codec.Config{
					Qp:          qp,
					SearchRange: cfg.Range,
					Searcher:    acbm,
					FPS:         30.0 / float64(dec),
				}, frames)
				if err != nil {
					return fmt.Errorf("experiment: %v dec %d qp %d: %w", prof, dec, qp, err)
				}
				cells[i] = Table1Cell{
					AvgPoints: stats.AvgSearchPointsPerMB(),
					FSBMRate:  acbm.Stats().FSBMRate(),
					PSNRY:     stats.AvgPSNRY(),
					RateKbps:  stats.BitrateKbps(),
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			for i, qp := range cfg.Qps {
				res.Cells[prof][dec][qp] = cells[i]
			}
		}
	}
	return res, nil
}

// Cell returns one entry.
func (r *Table1Result) Cell(p video.Profile, dec, qp int) (Table1Cell, bool) {
	m1, ok := r.Cells[p]
	if !ok {
		return Table1Cell{}, false
	}
	m2, ok := m1[dec]
	if !ok {
		return Table1Cell{}, false
	}
	c, ok := m2[qp]
	return c, ok
}

// MaxReduction returns the largest complexity reduction relative to FSBM's
// 969 positions across all cells — the paper's "up to 95%" headline.
func (r *Table1Result) MaxReduction() float64 {
	best := 0.0
	for _, byDec := range r.Cells {
		for _, byQp := range byDec {
			for _, cell := range byQp {
				red := 1 - cell.AvgPoints/FSBMPoints
				if red > best {
					best = red
				}
			}
		}
	}
	return best
}

// MeanPoints averages the table for one profile and decimation across Qp.
func (r *Table1Result) MeanPoints(p video.Profile, dec int) float64 {
	byQp, ok := r.Cells[p][dec]
	if !ok || len(byQp) == 0 {
		return 0
	}
	sum := 0.0
	for _, cell := range byQp {
		sum += cell.AvgPoints
	}
	return sum / float64(len(byQp))
}
