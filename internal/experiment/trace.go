package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/mvfield"
	"repro/internal/plot"
	"repro/internal/search"
	"repro/internal/video"
)

// FormatMVStudyPanels renders the six density panels of Fig. 4: one
// (Intra_SAD, SAD_deviation) scatter per motion-vector-error class, on
// shared axes as in the paper.
func FormatMVStudyPanels(r *MVStudyResult, width, height int) string {
	var b strings.Builder
	var xmax, ymax float64
	for _, s := range r.Samples {
		if v := float64(s.IntraSAD); v > xmax {
			xmax = v
		}
		if v := float64(s.Deviation); v > ymax {
			ymax = v
		}
	}
	for c := 0; c < ErrClasses; c++ {
		var xs, ys []float64
		for _, s := range r.Samples {
			if s.Err != c {
				continue
			}
			xs = append(xs, float64(s.IntraSAD))
			ys = append(ys, float64(s.Deviation))
		}
		name := fmt.Sprintf("error=%d", c)
		if c == ErrClasses-1 {
			name = "error>=5"
		}
		title := fmt.Sprintf("%s (%d blocks) — x: Intra_SAD, y: SAD_deviation", name, len(xs))
		b.WriteString(plot.Density(title, xs, ys, width, height, xmax, ymax))
		b.WriteByte('\n')
	}
	return b.String()
}

// DecisionMap records ACBM's per-macroblock decisions over one frame pair,
// for visual inspection of where the algorithm escalates to full search.
type DecisionMap struct {
	Cols, Rows int
	Decisions  []core.Decision // raster order
	Stats      core.Stats
}

// RunDecisionMap estimates motion for every macroblock of frames[idx]
// against frames[idx-1] with a fresh ACBM instance.
func RunDecisionMap(prof video.Profile, size frame.Size, idx int, params core.Params, seed uint64) (*DecisionMap, error) {
	if idx < 1 {
		return nil, fmt.Errorf("experiment: decision map needs idx >= 1, got %d", idx)
	}
	if params == (core.Params{}) {
		params = core.DefaultParams
	}
	if seed == 0 {
		seed = DefaultSeed
	}
	sc := prof.Scene(seed)
	ref := sc.Render(size, idx-1)
	cur := sc.Render(size, idx)
	ip := frame.Interpolate(ref.Y)
	cols, rows := size.MacroblockCols(), size.MacroblockRows()
	dm := &DecisionMap{Cols: cols, Rows: rows, Decisions: make([]core.Decision, cols*rows)}
	acbm := core.New(params)
	fld := mvfield.NewField(cols, rows)
	for mby := 0; mby < rows; mby++ {
		for mbx := 0; mbx < cols; mbx++ {
			in := &search.Input{
				Cur: cur.Y, Ref: ref.Y, RefI: ip,
				BX: 16 * mbx, BY: 16 * mby, W: 16, H: 16,
				Range: DefaultRange, Qp: 16,
				CurField: fld, MBX: mbx, MBY: mby,
			}
			res, tr := acbm.SearchTrace(in)
			fld.Set(mbx, mby, res.MV)
			dm.Decisions[mby*cols+mbx] = tr.Decision
		}
	}
	dm.Stats = acbm.Stats()
	return dm, nil
}

// String renders the map: '.' easy, 'g' good-match, 'C' critical.
func (m *DecisionMap) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			switch m.Decisions[r*m.Cols+c] {
			case core.AcceptedEasy:
				b.WriteByte('.')
			case core.AcceptedGoodMatch:
				b.WriteByte('g')
			default:
				b.WriteByte('C')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "easy %d, good-match %d, critical %d (%.0f positions/MB)\n",
		m.Stats.Easy, m.Stats.GoodMatch, m.Stats.CriticalCnt, m.Stats.AvgPoints())
	return b.String()
}
