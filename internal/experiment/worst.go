package experiment

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// WorstSession identifies the slowest session of a load point — the one
// a tail-latency investigation starts from — by its fleet-wide trace ID,
// with the per-frame timeline pulled back from the serving node's flight
// recorder while the session is still in the completed ring.
type WorstSession struct {
	TraceID string `json:"trace_id"`
	// Backend is where the session ran (X-Vcodec-Backend trailer; empty
	// when the load generator talked to a vcodecd directly).
	Backend string `json:"backend,omitempty"`
	// Attempts is the gateway dispatch count (1 when direct).
	Attempts      int     `json:"attempts,omitempty"`
	WallMs        float64 `json:"wall_ms"`
	FirstPacketMs float64 `json:"first_packet_ms"`
	GapP99Ms      float64 `json:"gap_p99_ms"`
	// Timeline is the per-frame phase breakdown from
	// /debug/vcodec/trace; empty if the record had already aged out (or,
	// under chaos, the serving backend died).
	Timeline []obs.FrameEvent `json:"timeline,omitempty"`
	// DroppedFrames counts timeline entries lost to ring wrap.
	DroppedFrames int `json:"dropped_frames,omitempty"`
}

// fetchTimeline resolves a trace ID against the endpoints' debug
// handlers — a vcodecd answers for its own sessions, a gateway proxies
// the lookup across its backends. Best-effort: a dead backend or an
// aged-out record yields an empty timeline, never an error.
func fetchTimeline(client *http.Client, bases []string, id string) ([]obs.FrameEvent, int) {
	if id == "" {
		return nil, 0
	}
	for _, base := range bases {
		resp, err := client.Get(base + "/debug/vcodec/trace?id=" + id)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		var rec obs.Record
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if err != nil {
			continue
		}
		return rec.Events, rec.DroppedFrames
	}
	return nil, 0
}

// debugBase strips the /encode query suffix off a session URL, leaving
// the endpoint base the debug handlers live on.
func debugBase(sessionURL string) string {
	if i := strings.Index(sessionURL, "/encode"); i >= 0 {
		return sessionURL[:i]
	}
	return sessionURL
}

// formatWorst renders the worst session as an indented block under its
// load point: the identity line, then one line per recorded frame.
func formatWorst(w *WorstSession) string {
	if w == nil {
		return ""
	}
	out := fmt.Sprintf("  worst session: trace=%s wall=%.0fms first=%.1fms gap p99=%.2fms",
		w.TraceID, w.WallMs, w.FirstPacketMs, w.GapP99Ms)
	if w.Backend != "" {
		out += " backend=" + w.Backend
	}
	if w.Attempts > 1 {
		out += fmt.Sprintf(" attempts=%d", w.Attempts)
	}
	out += "\n"
	if len(w.Timeline) == 0 {
		return out + "    (timeline unavailable: record aged out or backend gone)\n"
	}
	if w.DroppedFrames > 0 {
		out += fmt.Sprintf("    (%d early frames aged out of the ring)\n", w.DroppedFrames)
	}
	for _, ev := range w.Timeline {
		kind := "P"
		if ev.Intra {
			kind = "I"
		}
		act := ""
		if ev.Actuated {
			act = " *qos-actuated"
		}
		out += fmt.Sprintf("    frame %3d %s: read %6.2f  wait %6.2f  stall %6.2f  analysis %7.2f  entropy %6.2f  emit %6.2f ms  %6d bits  qp %2d  L%d%s\n",
			ev.Index, kind, ev.ReadMs, ev.QueueWaitMs, ev.StallMs,
			ev.AnalysisMs, ev.EntropyMs, ev.EmitMs, ev.Bits, ev.Qp, ev.QosLevel, act)
	}
	return out
}
