package frame

import (
	"testing"
	"testing/quick"
)

// TestPaddedPlaneWindowing pins the representation contract: a padded
// plane indexes its visible samples exactly like a tight plane
// (Pix[y*Stride+x]), with the stride covering the apron.
func TestPaddedPlaneWindowing(t *testing.T) {
	p := NewPlanePadded(7, 5, 3)
	if p.Apron() != 3 {
		t.Fatalf("apron = %d, want 3", p.Apron())
	}
	if p.Stride != 7+2*3 {
		t.Fatalf("stride = %d, want %d", p.Stride, 7+2*3)
	}
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			p.Set(x, y, uint8(y*16+x))
		}
	}
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			if got := p.Pix[y*p.Stride+x]; got != uint8(y*16+x) {
				t.Fatalf("Pix[%d*Stride+%d] = %d, want %d", y, x, got, y*16+x)
			}
		}
	}
}

// TestReplicateApronProperty checks every apron sample equals the
// AtClamped value of its coordinates, for random planes and apron sizes.
func TestReplicateApronProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRNG(seed)
		w := 1 + int(rng.next()%12)
		h := 1 + int(rng.next()%12)
		a := 1 + int(rng.next()%5)
		p := NewPlanePadded(w, h, a)
		for y := 0; y < h; y++ {
			row := p.Row(y)
			for x := range row {
				row[x] = uint8(rng.next())
			}
		}
		p.ReplicateApron()
		for y := -a; y < h+a; y++ {
			row := p.padRow(y)
			for x := -a; x < w+a; x++ {
				if row[x+a] != p.AtClamped(x, y) {
					t.Logf("apron (%d,%d): got %d, want %d (plane %dx%d apron %d)",
						x, y, row[x+a], p.AtClamped(x, y), w, h, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestReplicateApronRefresh verifies a second replication after mutating
// the visible samples refreshes the border (the once-per-reference
// hand-off pattern the codec relies on).
func TestReplicateApronRefresh(t *testing.T) {
	p := NewPlanePadded(4, 4, 2)
	p.Fill(10)
	p.ReplicateApron()
	p.Fill(200)
	p.ReplicateApron()
	for _, c := range [][2]int{{-2, -2}, {-1, 0}, {0, -1}, {5, 5}, {4, 0}, {0, 4}} {
		if got := p.padRow(c[1])[c[0]+2]; got != 200 {
			t.Fatalf("apron (%d,%d) = %d after refresh, want 200", c[0], c[1], got)
		}
	}
}

// TestGetPlanePaddedRecycles pins the size-bucketed pool contract: a
// released plane with matching (W, H, apron) is reused, and mismatched
// requests get their own buffers.
func TestGetPlanePaddedRecycles(t *testing.T) {
	p := GetPlanePadded(16, 8, 4)
	if p.W != 16 || p.H != 8 || p.Apron() != 4 {
		t.Fatalf("got %dx%d apron %d", p.W, p.H, p.Apron())
	}
	p.Fill(123)
	ReleasePlane(p)
	q := GetPlanePadded(16, 8, 4)
	// Whether or not q is the recycled plane (sync.Pool may drop it), it
	// must have the right shape and be fully writable.
	if q.W != 16 || q.H != 8 || q.Apron() != 4 || q.Stride != 16+8 {
		t.Fatalf("recycled plane has wrong shape: %dx%d stride %d apron %d",
			q.W, q.H, q.Stride, q.Apron())
	}
	q.Fill(7)
	q.ReplicateApron()
	if q.AtClamped(-1, -1) != 7 {
		t.Fatal("recycled plane apron not refreshed")
	}
	r := GetPlanePadded(16, 8, 2)
	if r.Stride != 16+4 {
		t.Fatalf("different apron bucket returned stride %d", r.Stride)
	}
}

// TestGetFramePaddedShape checks the frame-level pool wrapper wires the
// per-component aprons through.
func TestGetFramePaddedShape(t *testing.T) {
	f := GetFramePadded(Size{32, 16}, 9, 5)
	if f.Y.Apron() != 9 || f.Cb.Apron() != 5 || f.Cr.Apron() != 5 {
		t.Fatalf("aprons Y=%d Cb=%d Cr=%d, want 9/5/5", f.Y.Apron(), f.Cb.Apron(), f.Cr.Apron())
	}
	if f.Cb.W != 16 || f.Cb.H != 8 {
		t.Fatalf("chroma %dx%d, want 16x8", f.Cb.W, f.Cb.H)
	}
	f.FillYUV(1, 2, 3)
	f.ReplicateAprons()
	f.Release()
	if f.Y != nil {
		t.Fatal("Release must clear the plane references")
	}
}
