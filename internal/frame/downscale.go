package frame

import "encoding/binary"

// 2:1 decimation for the simulcast ladder: each output sample is the
// rounded mean of its 2×2 source quad, (a+b+c+d+2)>>2 — the same rule the
// H.263 diagonal half-pel interpolation uses, so the SWAR lane algebra of
// the SAD kernels applies unchanged. Odd source dimensions replicate the
// last row/column (the quad clamps at the border), giving ceil(W/2) ×
// ceil(H/2) output.
//
// downscaleScalar is the exact reference; downscaleSWAR processes 8
// source bytes per uint64 load (4 output samples) and is differential- and
// fuzz-tested to be bit-identical (downscale_test.go, mirroring the
// metrics kernel tests).

// Lane constants, duplicated from internal/metrics (which imports this
// package, so the dependency cannot point the other way).
const (
	dsLaneLo   = 0x00ff00ff00ff00ff // low byte of each 16-bit lane
	dsLaneOnes = 0x0001000100010001 // 1 in each 16-bit lane
)

// Downscale returns src decimated 2:1 with the rounded box filter. The
// output plane is drawn from the size-bucketed pool (no apron); hand it
// back with ReleasePlane when done.
func Downscale(src *Plane) *Plane {
	dst := GetPlanePadded((src.W+1)/2, (src.H+1)/2, 0)
	DownscaleInto(dst, src)
	return dst
}

// DownscaleInto decimates src 2:1 into dst, which must be ceil(src.W/2) ×
// ceil(src.H/2) (any apron; only the visible area is written).
func DownscaleInto(dst, src *Plane) {
	if dst.W != (src.W+1)/2 || dst.H != (src.H+1)/2 {
		panic("frame: DownscaleInto size mismatch")
	}
	downscaleSWAR(dst, src)
}

// DownscaleFrame decimates a 4:2:0 frame 2:1 in both dimensions. The luma
// size must be divisible by 4 so the halved frame is itself a legal 4:2:0
// format (ladder rungs are macroblock-aligned, which is stricter). The
// result is pooled; release with (*Frame).Release.
func DownscaleFrame(src *Frame) *Frame {
	s := src.Size()
	if s.W%4 != 0 || s.H%4 != 0 {
		panic("frame: DownscaleFrame needs luma dimensions divisible by 4")
	}
	out := GetFramePadded(Size{W: s.W / 2, H: s.H / 2}, 0, 0)
	DownscaleInto(out.Y, src.Y)
	DownscaleInto(out.Cb, src.Cb)
	DownscaleInto(out.Cr, src.Cr)
	return out
}

// downscaleScalar is the exact scalar reference for the 2:1 box filter.
func downscaleScalar(dst, src *Plane) {
	for y := 0; y < dst.H; y++ {
		sy0 := 2 * y
		sy1 := sy0 + 1
		if sy1 >= src.H {
			sy1 = src.H - 1
		}
		top, bot := src.Row(sy0), src.Row(sy1)
		out := dst.Row(y)
		for x := 0; x < dst.W; x++ {
			sx0 := 2 * x
			sx1 := sx0 + 1
			if sx1 >= src.W {
				sx1 = src.W - 1
			}
			s := int(top[sx0]) + int(top[sx1]) + int(bot[sx0]) + int(bot[sx1])
			out[x] = uint8((s + 2) >> 2)
		}
	}
}

// downscaleSWAR computes 4 output samples per step: the even and odd bytes
// of an 8-byte load are split into 16-bit lanes, the four quad terms are
// summed per lane (≤ 1022, well inside 16 bits), and the rounded shift is
// repacked. Row pairs clamp at an odd bottom border by re-reading the last
// row; the odd-width output column falls to the scalar tail.
func downscaleSWAR(dst, src *Plane) {
	wide := src.W / 8 * 4 // output columns computable from full 8-byte loads
	for y := 0; y < dst.H; y++ {
		sy0 := 2 * y
		sy1 := sy0 + 1
		if sy1 >= src.H {
			sy1 = src.H - 1
		}
		top, bot := src.Row(sy0), src.Row(sy1)
		out := dst.Row(y)
		for x := 0; x < wide; x += 4 {
			a := binary.LittleEndian.Uint64(top[2*x:])
			b := binary.LittleEndian.Uint64(bot[2*x:])
			sum := (a & dsLaneLo) + (a >> 8 & dsLaneLo) +
				(b & dsLaneLo) + (b >> 8 & dsLaneLo) + 2*dsLaneOnes
			binary.LittleEndian.PutUint32(out[x:], pack4(sum>>2&dsLaneLo))
		}
		for x := wide; x < dst.W; x++ {
			sx0 := 2 * x
			sx1 := sx0 + 1
			if sx1 >= src.W {
				sx1 = src.W - 1
			}
			s := int(top[sx0]) + int(top[sx1]) + int(bot[sx0]) + int(bot[sx1])
			out[x] = uint8((s + 2) >> 2)
		}
	}
}

// pack4 collapses four 16-bit lanes (values ≤ 0xff) into four bytes — the
// inverse of the metrics kernels' unpack4.
func pack4(x uint64) uint32 {
	x = (x | x>>8) & 0x0000ffff0000ffff
	return uint32(x | x>>16)
}
