package frame

import (
	"math/rand"
	"testing"
)

func randomPlane(w, h int, seed int64) *Plane {
	p := NewPlane(w, h)
	r := rand.New(rand.NewSource(seed))
	for i := range p.Pix {
		p.Pix[i] = uint8(r.Intn(256))
	}
	return p
}

func TestDownscaleScalarReference(t *testing.T) {
	// 3×3 source: odd in both dimensions, so the right column and bottom
	// row quads clamp (replicate the border sample).
	src := NewPlane(3, 3)
	copy(src.Pix, []uint8{
		10, 20, 30,
		40, 50, 60,
		70, 80, 90,
	})
	dst := NewPlane(2, 2)
	downscaleScalar(dst, src)
	want := []uint8{
		uint8((10 + 20 + 40 + 50 + 2) >> 2), uint8((30 + 30 + 60 + 60 + 2) >> 2),
		uint8((70 + 80 + 70 + 80 + 2) >> 2), uint8((90 + 90 + 90 + 90 + 2) >> 2),
	}
	for i, w := range want {
		if dst.Pix[i] != w {
			t.Errorf("dst[%d] = %d, want %d", i, dst.Pix[i], w)
		}
	}
}

// TestDownscaleSWARMatchesScalar sweeps every width and height up to a few
// multiples of the 8-byte SWAR step, odd sizes included, and requires the
// fast path to match the scalar reference bit for bit.
func TestDownscaleSWARMatchesScalar(t *testing.T) {
	for h := 1; h <= 33; h++ {
		for w := 1; w <= 33; w++ {
			src := randomPlane(w, h, int64(w*100+h))
			got := NewPlane((w+1)/2, (h+1)/2)
			want := NewPlane((w+1)/2, (h+1)/2)
			downscaleSWAR(got, src)
			downscaleScalar(want, src)
			if !got.Equal(want) {
				t.Fatalf("SWAR differs from scalar at %dx%d", w, h)
			}
		}
	}
}

// TestDownscalePooled checks the exported entry points: pooled output
// planes/frames with the right geometry, matching the scalar reference.
func TestDownscalePooled(t *testing.T) {
	src := randomPlane(176, 144, 7)
	dst := Downscale(src)
	if dst.W != 88 || dst.H != 72 {
		t.Fatalf("Downscale size = %dx%d, want 88x72", dst.W, dst.H)
	}
	want := NewPlane(88, 72)
	downscaleScalar(want, src)
	if !dst.Equal(want) {
		t.Fatal("Downscale differs from scalar reference")
	}
	ReleasePlane(dst)

	f := NewFrame(Size{W: 64, H: 48})
	r := rand.New(rand.NewSource(11))
	for _, p := range []*Plane{f.Y, f.Cb, f.Cr} {
		for i := range p.Pix {
			p.Pix[i] = uint8(r.Intn(256))
		}
	}
	down := DownscaleFrame(f)
	if got := down.Size(); got != (Size{W: 32, H: 24}) {
		t.Fatalf("DownscaleFrame size = %v, want 32x24", got)
	}
	wy := NewPlane(32, 24)
	downscaleScalar(wy, f.Y)
	if !down.Y.Equal(wy) {
		t.Fatal("DownscaleFrame luma differs from scalar reference")
	}
	down.Release()
}

// TestDownscaleApron downscales into a padded plane and replicates its
// apron: every clamped read outside the visible area must equal the edge
// sample — the contract a downscaled rung's reference plane relies on.
func TestDownscaleApron(t *testing.T) {
	src := randomPlane(32, 24, 3)
	dst := NewPlanePadded(16, 12, 4)
	DownscaleInto(dst, src)
	dst.ReplicateApron()
	for _, pt := range [][2]int{{-4, -4}, {-1, 5}, {20, 5}, {5, -3}, {5, 15}, {19, 15}} {
		x, y := pt[0], pt[1]
		cx, cy := x, y
		if cx < 0 {
			cx = 0
		}
		if cx >= dst.W {
			cx = dst.W - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= dst.H {
			cy = dst.H - 1
		}
		if got, want := dst.AtClamped(x, y), dst.At(cx, cy); got != want {
			t.Errorf("AtClamped(%d,%d) = %d, want edge sample %d", x, y, got, want)
		}
	}
}

// FuzzDownscaleSWAR cross-checks the SWAR path against the scalar
// reference on fuzzer-chosen geometry and content.
func FuzzDownscaleSWAR(f *testing.F) {
	f.Add(16, 16, int64(1))
	f.Add(17, 3, int64(2))
	f.Add(1, 1, int64(3))
	f.Add(33, 9, int64(4))
	f.Fuzz(func(t *testing.T, w, h int, seed int64) {
		if w < 1 || h < 1 || w > 512 || h > 512 {
			t.Skip()
		}
		src := randomPlane(w, h, seed)
		got := NewPlane((w+1)/2, (h+1)/2)
		want := NewPlane((w+1)/2, (h+1)/2)
		downscaleSWAR(got, src)
		downscaleScalar(want, src)
		if !got.Equal(want) {
			t.Fatalf("SWAR differs from scalar at %dx%d seed %d", w, h, seed)
		}
	})
}
