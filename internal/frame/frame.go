package frame

import (
	"fmt"
	"strings"
)

// Size is a frame format (luma dimensions). Chroma planes are half size in
// each dimension (YUV 4:2:0), as in the H.263 source formats the paper uses.
type Size struct {
	W, H int
}

// Standard picture formats from H.263 / the paper's evaluation.
var (
	SQCIF   = Size{128, 96}
	QCIF    = Size{176, 144} // the format used for Figs. 5/6 and Table 1
	CIF     = Size{352, 288}
	FourCIF = Size{704, 576}
)

// SizeByName parses the CLI vocabulary shared by the tools' -size flags:
// the standard format names (the inverse of String), or an explicit
// "WxH" — ladder tooling needs power-of-two chains (128x128, …) that no
// named format covers.
func SizeByName(name string) (Size, error) {
	switch strings.ToLower(name) {
	case "sqcif":
		return SQCIF, nil
	case "qcif":
		return QCIF, nil
	case "cif":
		return CIF, nil
	case "4cif", "fourcif":
		return FourCIF, nil
	}
	var s Size
	if n, err := fmt.Sscanf(strings.ToLower(name), "%dx%d", &s.W, &s.H); n == 2 && err == nil && s.W > 0 && s.H > 0 {
		return s, nil
	}
	return Size{}, fmt.Errorf("unknown size %q (want sqcif, qcif, cif, 4cif or WxH)", name)
}

// String returns the conventional name for well-known sizes, else "WxH".
func (s Size) String() string {
	switch s {
	case SQCIF:
		return "SQCIF"
	case QCIF:
		return "QCIF"
	case CIF:
		return "CIF"
	case FourCIF:
		return "4CIF"
	}
	return fmt.Sprintf("%dx%d", s.W, s.H)
}

// MacroblockCols returns the number of 16×16 macroblock columns.
func (s Size) MacroblockCols() int { return (s.W + 15) / 16 }

// MacroblockRows returns the number of 16×16 macroblock rows.
func (s Size) MacroblockRows() int { return (s.H + 15) / 16 }

// Frame is a YUV 4:2:0 picture: full-resolution luma and quarter-size
// chroma planes.
type Frame struct {
	Y, Cb, Cr *Plane
}

// NewFrame returns a zeroed 4:2:0 frame of the given luma size. Luma
// dimensions must be even so the chroma planes are well defined.
func NewFrame(s Size) *Frame {
	if s.W%2 != 0 || s.H%2 != 0 {
		panic(fmt.Sprintf("frame: odd luma size %v for 4:2:0", s))
	}
	return &Frame{
		Y:  NewPlane(s.W, s.H),
		Cb: NewPlane(s.W/2, s.H/2),
		Cr: NewPlane(s.W/2, s.H/2),
	}
}

// Size returns the luma dimensions of the frame.
func (f *Frame) Size() Size { return Size{f.Y.W, f.Y.H} }

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	return &Frame{Y: f.Y.Clone(), Cb: f.Cb.Clone(), Cr: f.Cr.Clone()}
}

// Equal reports whether two frames are sample-identical in all components.
func (f *Frame) Equal(g *Frame) bool {
	return f.Y.Equal(g.Y) && f.Cb.Equal(g.Cb) && f.Cr.Equal(g.Cr)
}

// FillYUV sets every sample of each component to the given constants.
func (f *Frame) FillYUV(y, cb, cr uint8) {
	f.Y.Fill(y)
	f.Cb.Fill(cb)
	f.Cr.Fill(cr)
}
