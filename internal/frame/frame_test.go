package frame

import "testing"

func TestSizeNamesAndMacroblocks(t *testing.T) {
	if QCIF.String() != "QCIF" || CIF.String() != "CIF" || SQCIF.String() != "SQCIF" || FourCIF.String() != "4CIF" {
		t.Fatal("standard size names wrong")
	}
	if (Size{100, 80}).String() != "100x80" {
		t.Fatal("custom size name wrong")
	}
	if QCIF.MacroblockCols() != 11 || QCIF.MacroblockRows() != 9 {
		t.Fatalf("QCIF MBs = %dx%d, want 11x9", QCIF.MacroblockCols(), QCIF.MacroblockRows())
	}
	if CIF.MacroblockCols() != 22 || CIF.MacroblockRows() != 18 {
		t.Fatalf("CIF MBs = %dx%d, want 22x18", CIF.MacroblockCols(), CIF.MacroblockRows())
	}
}

func TestSizeByName(t *testing.T) {
	for name, want := range map[string]Size{
		"sqcif": SQCIF, "QCIF": QCIF, "cif": CIF, "4cif": FourCIF,
		"128x128": {128, 128}, "64x48": {64, 48},
	} {
		got, err := SizeByName(name)
		if err != nil || got != want {
			t.Errorf("SizeByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	for _, bad := range []string{"", "huge", "0x0", "-16x16", "x", "16x"} {
		if s, err := SizeByName(bad); err == nil {
			t.Errorf("SizeByName(%q) = %v, want error", bad, s)
		}
	}
}

func TestNewFrameChromaSubsampling(t *testing.T) {
	f := NewFrame(QCIF)
	if f.Y.W != 176 || f.Y.H != 144 {
		t.Fatal("luma size wrong")
	}
	if f.Cb.W != 88 || f.Cb.H != 72 || f.Cr.W != 88 || f.Cr.H != 72 {
		t.Fatal("chroma size wrong for 4:2:0")
	}
	if f.Size() != QCIF {
		t.Fatal("Size() wrong")
	}
}

func TestNewFramePanicsOnOddSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd-size frame did not panic")
		}
	}()
	NewFrame(Size{177, 144})
}

func TestFrameCloneEqualFill(t *testing.T) {
	f := NewFrame(SQCIF)
	f.FillYUV(16, 128, 128)
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone unequal")
	}
	g.Cr.Set(0, 0, 0)
	if f.Equal(g) {
		t.Fatal("mutated clone still equal")
	}
	if f.Y.At(5, 5) != 16 || f.Cb.At(3, 3) != 128 {
		t.Fatal("FillYUV wrong")
	}
}
