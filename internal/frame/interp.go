package frame

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
)

// Interpolated is a half-pel upsampled view of a plane, built with the
// H.263 bilinear interpolation rules (rounding up, +1 before the shift).
//
// For a source plane of size W×H the interpolated grid has (2W)×(2H)
// positions. Position (2x, 2y) equals the integer sample (x, y); odd
// coordinates are the horizontal, vertical and diagonal half-pel samples.
// Samples referenced beyond the borders replicate the edge, so motion
// vectors that keep the *integer* block inside the frame are always valid
// at half-pel precision too.
//
// Storage is phase-split: the integer phase is the source plane itself
// (never copied), and the three half-pel phases live in separate W×H
// planes (Phase b: horizontal, c: vertical, d: diagonal), each carrying a
// HalfPelApron replicated-interpolation border. A block prediction or SAD
// probe uses exactly one phase — the parity of its half-pel anchor — so
// phase planes make every half-pel access a contiguous row walk instead
// of a stride-2 gather.
//
// Views from InterpolateLazy materialise phase samples tile by tile on
// first touch: TileSize×TileSize regions (plus the adjoining apron strips
// on border tiles) are computed only when a probe or a motion-compensated
// block actually lands on them. Tile fills are idempotent — every fill of
// a tile writes the identical bytes — and guarded by an atomic claim
// state, so concurrent wavefront workers first-touching the same tile are
// race-clean: one claims and fills, the rest spin until the fill is
// published. Views from Interpolate are fully materialised up front and
// skip the claim checks.
type Interpolated struct {
	W, H int // dimensions of the half-pel grid (2× source)

	src     *Plane
	b, c, d hpPhase // phases (1,0), (0,1), (1,1)

	tcols, trows int // tile grid (shared by all three phases)
	pooled       bool
}

// hpPhase is one lazily materialised half-pel phase plane.
type hpPhase struct {
	plane *Plane
	id    int // phaseB/phaseC/phaseD: selects the fill rule
	// state holds one claim word per tile (tileEmpty/tileFilling/
	// tileReady); nil means the phase is fully materialised and needs no
	// claim checks (eager views).
	state []uint32
}

const (
	// HalfPelApron is the replicated-interpolation border carried by each
	// half-pel phase plane, in full-pel units. Any access within this
	// margin of the grid — chroma vectors derived from legal luma vectors
	// overshoot by at most one half-pel position — stays on the fast path.
	HalfPelApron = 2

	// MinInterpApron is the source-plane apron needed to fill phase
	// samples (including the HalfPelApron border) without clamping: the
	// diagonal phase at x = W-1+HalfPelApron reads source column x+1.
	// Reference planes should carry at least this much padding.
	MinInterpApron = HalfPelApron + 1

	// TileSize is the side of one lazily filled phase tile, in full-pel
	// units (so a tile covers a 16×16 macroblock footprint per phase).
	TileSize = 16
)

const (
	tileEmpty uint32 = iota
	tileFilling
	tileReady
)

// Interpolate builds the fully materialised half-pel view of p.
//
//	a = A
//	b = (A + B + 1) / 2
//	c = (A + C + 1) / 2
//	d = (A + B + C + D + 2) / 4
//
// where A is the integer sample and B, C, D its right, below and
// below-right neighbours (edge-replicated).
func Interpolate(p *Plane) *Interpolated {
	ip := newInterpolated(p, false)
	for ty := 0; ty < ip.trows; ty++ {
		for tx := 0; tx < ip.tcols; tx++ {
			ip.fillTile(&ip.b, tx, ty)
			ip.fillTile(&ip.c, tx, ty)
			ip.fillTile(&ip.d, tx, ty)
		}
	}
	// Fully materialised: drop the claim states so every access skips the
	// tile checks.
	ip.b.state, ip.c.state, ip.d.state = nil, nil, nil
	return ip
}

// interpKey buckets pooled views by source size, so concurrent sessions at
// mixed resolutions recycle only their own grids.
type interpKey struct{ w, h int }

var interpPools sync.Map // interpKey → *sync.Pool

func interpPool(k interpKey) *sync.Pool {
	if p, ok := interpPools.Load(k); ok {
		return p.(*sync.Pool)
	}
	p, _ := interpPools.LoadOrStore(k, &sync.Pool{})
	return p.(*sync.Pool)
}

// InterpolateLazy returns a lazily materialised half-pel view of p drawn
// from a size-bucketed pool: no phase sample is computed until a probe or
// block fetch first touches its tile. The caller must hand the view back
// with Release once no reference to it remains. p must stay unchanged for
// the lifetime of the view (it is read on every tile fill).
func InterpolateLazy(p *Plane) *Interpolated {
	k := interpKey{p.W, p.H}
	if v := interpPool(k).Get(); v != nil {
		ip := v.(*Interpolated)
		ip.src = p
		clear(ip.b.state)
		clear(ip.c.state)
		clear(ip.d.state)
		return ip
	}
	return newInterpolated(p, true)
}

// newInterpolated allocates the phase planes and (for lazy views) the tile
// claim states for a view of p.
func newInterpolated(p *Plane, pooled bool) *Interpolated {
	ip := &Interpolated{
		W: 2 * p.W, H: 2 * p.H,
		src:    p,
		tcols:  (p.W + TileSize - 1) / TileSize,
		trows:  (p.H + TileSize - 1) / TileSize,
		pooled: pooled,
	}
	n := ip.tcols * ip.trows
	mk := func(id int) hpPhase {
		return hpPhase{
			plane: GetPlanePadded(p.W, p.H, HalfPelApron),
			id:    id,
			state: make([]uint32, n),
		}
	}
	ip.b, ip.c, ip.d = mk(phaseB), mk(phaseC), mk(phaseD)
	return ip
}

// Release returns a view obtained from InterpolateLazy to its pool. It is
// safe to call on nil and on fully materialised views from Interpolate
// (whose phase planes then become poolable).
func (ip *Interpolated) Release() {
	if ip == nil {
		return
	}
	ip.src = nil
	if !ip.pooled {
		ReleasePlane(ip.b.plane)
		ReleasePlane(ip.c.plane)
		ReleasePlane(ip.d.plane)
		ip.b, ip.c, ip.d = hpPhase{}, hpPhase{}, hpPhase{}
		return
	}
	interpPool(interpKey{ip.W / 2, ip.H / 2}).Put(ip)
}

// Src returns the source plane the view interpolates — the integer phase
// of the half-pel grid. Nil after Release.
func (ip *Interpolated) Src() *Plane { return ip.src }

// phase identifiers, used to pick the fill rule.
const (
	phaseB = iota // (1,0): horizontal half-pel
	phaseC        // (0,1): vertical half-pel
	phaseD        // (1,1): diagonal half-pel
)

// phaseOf maps half-pel parities to the phase plane (nil for the integer
// phase).
func (ip *Interpolated) phaseOf(px, py int) *hpPhase {
	switch {
	case px == 1 && py == 0:
		return &ip.b
	case px == 0 && py == 1:
		return &ip.c
	case px == 1 && py == 1:
		return &ip.d
	}
	return nil
}

// ensure materialises every tile of ph intersecting the plane-coordinate
// rectangle [x0, x1]×[y0, y1] (inclusive; coordinates may reach into the
// apron — border tiles fill their adjoining apron strips). Concurrent
// callers are race-clean: the claim state serialises each tile's single
// idempotent fill.
func (ip *Interpolated) ensure(ph *hpPhase, x0, y0, x1, y1 int) {
	if ph.state == nil {
		return
	}
	w, h := ip.W/2, ip.H/2
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= w {
		x1 = w - 1
	}
	if y1 >= h {
		y1 = h - 1
	}
	for ty := y0 / TileSize; ty <= y1/TileSize; ty++ {
		for tx := x0 / TileSize; tx <= x1/TileSize; tx++ {
			i := ty*ip.tcols + tx
			st := &ph.state[i]
			if atomic.LoadUint32(st) == tileReady {
				continue
			}
			if atomic.CompareAndSwapUint32(st, tileEmpty, tileFilling) {
				ip.fillTile(ph, tx, ty)
				atomic.StoreUint32(st, tileReady)
				continue
			}
			for atomic.LoadUint32(st) != tileReady {
				runtime.Gosched()
			}
		}
	}
}

// fillTile computes phase samples for tile (tx, ty): its TileSize×TileSize
// interior, extended into the apron on border tiles so that apron accesses
// behave exactly like AtClamped. Every fill of a tile writes the same
// bytes (the fill is a pure function of the source plane), which is what
// makes concurrent claims safe to wait on.
func (ip *Interpolated) fillTile(ph *hpPhase, tx, ty int) {
	w, h := ip.W/2, ip.H/2
	ap := ph.plane.apron
	fx0, fx1 := tx*TileSize, tx*TileSize+TileSize
	fy0, fy1 := ty*TileSize, ty*TileSize+TileSize
	if tx == 0 {
		fx0 = -ap
	}
	if fx1 >= w {
		fx1 = w + ap
	}
	if ty == 0 {
		fy0 = -ap
	}
	if fy1 >= h {
		fy1 = h + ap
	}
	src := ip.src
	if src.apron >= MinInterpApron {
		// Padded source: the interpolation of the edge-replicated source
		// equals clamped interpolation everywhere (including the apron), so
		// the fill needs no per-sample branches.
		for y := fy0; y < fy1; y++ {
			n := fx1 - fx0
			dst := ph.plane.padRow(y)[ap+fx0 : ap+fx0+n]
			r0 := src.padRow(y)[src.apron+fx0:]
			switch ph.id {
			case phaseB:
				avgRowUp(dst, r0[:n], r0[1:n+1])
			case phaseC:
				r1 := src.padRow(y + 1)[src.apron+fx0:]
				avgRowUp(dst, r0[:n], r1[:n])
			default:
				r1 := src.padRow(y + 1)[src.apron+fx0:]
				quadRowUp(dst, r0[:n], r0[1:n+1], r1[:n], r1[1:n+1])
			}
		}
	} else {
		// Clamped fill for unpadded sources (views over tight planes):
		// rows are clamped wholesale and only the few edge columns fall
		// back to per-sample clamping; the interior span runs the same
		// word-parallel kernels as the padded path.
		clampY := func(y int) int {
			if y < 0 {
				return 0
			}
			if y >= h {
				return h - 1
			}
			return y
		}
		xi0, xi1 := fx0, fx1
		if xi0 < 0 {
			xi0 = 0
		}
		if xi1 > w-1 {
			xi1 = w - 1 // interior needs column x+1 in bounds
		}
		for y := fy0; y < fy1; y++ {
			dst := ph.plane.padRow(y)[ap+fx0 : ap+fx1]
			r0 := src.Row(clampY(y))
			r1 := src.Row(clampY(y + 1))
			if xi1 > xi0 {
				di := dst[xi0-fx0 : xi1-fx0]
				switch ph.id {
				case phaseB:
					avgRowUp(di, r0[xi0:xi1], r0[xi0+1:xi1+1])
				case phaseC:
					avgRowUp(di, r0[xi0:xi1], r1[xi0:xi1])
				default:
					quadRowUp(di, r0[xi0:xi1], r0[xi0+1:xi1+1], r1[xi0:xi1], r1[xi0+1:xi1+1])
				}
			}
			for x := fx0; x < fx1; x++ {
				if x >= xi0 && x < xi1 {
					x = xi1 - 1
					continue
				}
				a := int(src.AtClamped(x, y))
				b := int(src.AtClamped(x+1, y))
				c := int(src.AtClamped(x, y+1))
				d := int(src.AtClamped(x+1, y+1))
				switch ph.id {
				case phaseB:
					dst[x-fx0] = uint8((a + b + 1) >> 1)
				case phaseC:
					dst[x-fx0] = uint8((a + c + 1) >> 1)
				default:
					dst[x-fx0] = uint8((a + b + c + d + 2) >> 2)
				}
			}
		}
	}
	interpTiles.Add(1)
	interpBytes.Add(uint64((fx1 - fx0) * (fy1 - fy0)))
}

// avgRowUp writes the rounding-up byte average (a[i]+b[i]+1)>>1 into dst,
// eight samples per word: avg = (a|b) − ((a^b)>>1) per byte, carried out
// borrow-free with the low-7-bit mask.
func avgRowUp(dst, a, b []uint8) {
	n := len(dst)
	x := 0
	for ; x+8 <= n; x += 8 {
		va := leU64(a[x:])
		vb := leU64(b[x:])
		putLeU64(dst[x:], (va|vb)-((va^vb)>>1&0x7f7f7f7f7f7f7f7f))
	}
	for ; x < n; x++ {
		dst[x] = uint8((int(a[x]) + int(b[x]) + 1) >> 1)
	}
}

// quadRowUp writes (a+b+c+d+2)>>2 per sample into dst, eight samples per
// iteration via 16-bit lanes (sums ≤ 1022 fit a lane; the shift leak into
// the neighbouring lane is masked off before repacking).
func quadRowUp(dst, a, b, c, d []uint8) {
	const lo8 = 0x00ff00ff00ff00ff
	const ones = 0x0001000100010001
	n := len(dst)
	x := 0
	for ; x+8 <= n; x += 8 {
		va, vb := leU64(a[x:]), leU64(b[x:])
		vc, vd := leU64(c[x:]), leU64(d[x:])
		sumLo := va&lo8 + vb&lo8 + vc&lo8 + vd&lo8 + 2*ones
		sumHi := (va>>8)&lo8 + (vb>>8)&lo8 + (vc>>8)&lo8 + (vd>>8)&lo8 + 2*ones
		putLeU64(dst[x:], (sumLo>>2)&lo8|(sumHi>>2)&lo8<<8)
	}
	for ; x < n; x++ {
		dst[x] = uint8((int(a[x]) + int(b[x]) + int(c[x]) + int(d[x]) + 2) >> 2)
	}
}

// leU64/putLeU64 wrap the encoding/binary intrinsics (single MOVQ on
// amd64), matching the load idiom of internal/metrics' SWAR kernels.
func leU64(b []uint8) uint64 { return binary.LittleEndian.Uint64(b) }

func putLeU64(b []uint8, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// PhaseRect ensures the phase samples for the w×h full-pel-step block
// anchored at half-pel position (hx, hy) are materialised and returns the
// backing plane together with the block's plane-coordinate anchor. For
// integer phases the source plane is returned directly. The anchor may
// reach into the HalfPelApron border; accesses beyond it must go through
// AtClamped/Block instead.
func (ip *Interpolated) PhaseRect(hx, hy, w, h int) (p *Plane, x0, y0 int) {
	x0, y0 = hx>>1, hy>>1
	ph := ip.phaseOf(hx&1, hy&1)
	if ph == nil {
		return ip.src, x0, y0
	}
	ip.ensure(ph, x0, y0, x0+w-1, y0+h-1)
	return ph.plane, x0, y0
}

// At returns the half-pel grid sample at (hx, hy), where even coordinates
// are integer positions. Coordinates must be in [0, 2W)×[0, 2H).
func (ip *Interpolated) At(hx, hy int) uint8 {
	x, y := hx>>1, hy>>1
	ph := ip.phaseOf(hx&1, hy&1)
	if ph == nil {
		return ip.src.At(x, y)
	}
	ip.ensure(ph, x, y, x, y)
	return ph.plane.At(x, y)
}

// AtClamped is At with edge replication for out-of-range coordinates.
func (ip *Interpolated) AtClamped(hx, hy int) uint8 {
	if hx < 0 {
		hx = 0
	} else if hx >= ip.W {
		hx = ip.W - 1
	}
	if hy < 0 {
		hy = 0
	} else if hy >= ip.H {
		hy = ip.H - 1
	}
	return ip.At(hx, hy)
}

// Block copies the w×h prediction block whose top-left corner sits at
// half-pel position (hx, hy) into dst (row-major, len ≥ w*h). Successive
// block samples are one full pel apart, i.e. 2 grid positions — so the
// whole block reads a single phase, as contiguous rows. Out-of-range
// reads replicate the edge; positions within the HalfPelApron border (the
// chroma-vector overshoot) stay on the row-copy fast path.
func (ip *Interpolated) Block(dst []uint8, hx, hy, w, h int) {
	x0, y0 := hx>>1, hy>>1
	ph := ip.phaseOf(hx&1, hy&1)
	if ph == nil {
		if ip.src.InBounds(x0, y0, w, h) {
			for y := 0; y < h; y++ {
				o := (y0+y)*ip.src.Stride + x0
				copy(dst[y*w:y*w+w], ip.src.Pix[o:o+w])
			}
			return
		}
	} else {
		p := ph.plane
		pw, phh := ip.W/2, ip.H/2
		if x0 >= -p.apron && y0 >= -p.apron && x0+w <= pw+p.apron && y0+h <= phh+p.apron {
			ip.ensure(ph, x0, y0, x0+w-1, y0+h-1)
			for y := 0; y < h; y++ {
				copy(dst[y*w:y*w+w], p.padRow(y0+y)[p.apron+x0:p.apron+x0+w])
			}
			return
		}
	}
	// Far out of range (corrupt-stream motion vectors): per-sample clamp.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dst[y*w+x] = ip.AtClamped(hx+2*x, hy+2*y)
		}
	}
}
