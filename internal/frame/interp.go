package frame

import "sync"

// Interpolated is a half-pel upsampled view of a plane, built with the
// H.263 bilinear interpolation rules (rounding up, +1 before the shift).
//
// For a source plane of size W×H the interpolated grid has (2W)×(2H)
// positions. Position (2x, 2y) equals the integer sample (x, y); odd
// coordinates are the horizontal, vertical and diagonal half-pel samples.
// Samples referenced beyond the right/bottom border replicate the edge, so
// motion vectors that keep the *integer* block inside the frame are always
// valid at half-pel precision too.
type Interpolated struct {
	W, H int // dimensions of the half-pel grid (2× source)
	Pix  []uint8
}

// Interpolate builds the half-pel grid for p.
//
//	a = A
//	b = (A + B + 1) / 2
//	c = (A + C + 1) / 2
//	d = (A + B + C + D + 2) / 4
//
// where A is the integer sample and B, C, D its right, below and
// below-right neighbours (edge-replicated).
func Interpolate(p *Plane) *Interpolated {
	w2, h2 := 2*p.W, 2*p.H
	ip := &Interpolated{W: w2, H: h2, Pix: make([]uint8, w2*h2)}
	interpolateInto(ip, p)
	return ip
}

// interpPool recycles half-pel grids between frames: the encoder and
// decoder build three per frame (Y, Cb, Cr) and drop the previous frame's
// three at the same moment, so pooling removes the dominant per-frame
// allocations of the reconstruction loop.
var interpPool = sync.Pool{New: func() any { return new(Interpolated) }}

// InterpolatePooled is Interpolate drawing its grid from an internal
// sync.Pool. The caller must hand the grid back with Release once no
// reference to it (or to sub-slices of Pix) remains.
func InterpolatePooled(p *Plane) *Interpolated {
	w2, h2 := 2*p.W, 2*p.H
	ip := interpPool.Get().(*Interpolated)
	ip.W, ip.H = w2, h2
	if cap(ip.Pix) < w2*h2 {
		ip.Pix = make([]uint8, w2*h2)
	} else {
		ip.Pix = ip.Pix[:w2*h2]
	}
	interpolateInto(ip, p)
	return ip
}

// Release returns a grid obtained from InterpolatePooled to the pool. It
// is safe to call on nil and on grids from Interpolate (their buffers then
// become poolable too).
func (ip *Interpolated) Release() {
	if ip == nil {
		return
	}
	interpPool.Put(ip)
}

// interpolateInto fills ip (already sized (2W)×(2H)) from p.
func interpolateInto(ip *Interpolated, p *Plane) {
	w2 := ip.W
	for y := 0; y < p.H; y++ {
		yB := y + 1
		if yB >= p.H {
			yB = p.H - 1
		}
		rowA := p.Pix[y*p.Stride : y*p.Stride+p.W]
		rowC := p.Pix[yB*p.Stride : yB*p.Stride+p.W]
		out0 := ip.Pix[(2*y)*w2 : (2*y)*w2+w2]
		out1 := ip.Pix[(2*y+1)*w2 : (2*y+1)*w2+w2]
		for x := 0; x < p.W; x++ {
			xB := x + 1
			if xB >= p.W {
				xB = p.W - 1
			}
			a := int(rowA[x])
			b := int(rowA[xB])
			c := int(rowC[x])
			d := int(rowC[xB])
			out0[2*x] = uint8(a)
			out0[2*x+1] = uint8((a + b + 1) >> 1)
			out1[2*x] = uint8((a + c + 1) >> 1)
			out1[2*x+1] = uint8((a + b + c + d + 2) >> 2)
		}
	}
}

// At returns the half-pel grid sample at (hx, hy), where even coordinates
// are integer positions. Coordinates must be in [0, 2W)×[0, 2H).
func (ip *Interpolated) At(hx, hy int) uint8 { return ip.Pix[hy*ip.W+hx] }

// AtClamped is At with edge replication for out-of-range coordinates.
func (ip *Interpolated) AtClamped(hx, hy int) uint8 {
	if hx < 0 {
		hx = 0
	} else if hx >= ip.W {
		hx = ip.W - 1
	}
	if hy < 0 {
		hy = 0
	} else if hy >= ip.H {
		hy = ip.H - 1
	}
	return ip.Pix[hy*ip.W+hx]
}

// Block copies the w×h prediction block whose top-left corner sits at
// half-pel position (hx, hy) into dst (row-major, len ≥ w*h). Successive
// block samples are one full pel apart, i.e. 2 grid positions.
// Out-of-range reads replicate the edge.
func (ip *Interpolated) Block(dst []uint8, hx, hy, w, h int) {
	if hx >= 0 && hy >= 0 && hx+2*w-1 < ip.W && hy+2*h-1 < ip.H {
		// Fast path: fully interior.
		for y := 0; y < h; y++ {
			src := ip.Pix[(hy+2*y)*ip.W+hx:]
			drow := dst[y*w : y*w+w]
			for x := 0; x < w; x++ {
				drow[x] = src[2*x]
			}
		}
		return
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dst[y*w+x] = ip.AtClamped(hx+2*x, hy+2*y)
		}
	}
}
