package frame

import (
	"sync"
	"testing"
)

// refInterpolated is the pre-tile-substrate full-grid half-pel builder
// (the old frame.Interpolate), kept verbatim as the differential oracle:
// one (2W)×(2H) buffer holding all four phases interleaved.
type refInterpolated struct {
	W, H int
	Pix  []uint8
}

func refInterpolate(p *Plane) *refInterpolated {
	w2, h2 := 2*p.W, 2*p.H
	ip := &refInterpolated{W: w2, H: h2, Pix: make([]uint8, w2*h2)}
	for y := 0; y < p.H; y++ {
		yB := y + 1
		if yB >= p.H {
			yB = p.H - 1
		}
		rowA := p.Pix[y*p.Stride : y*p.Stride+p.W]
		rowC := p.Pix[yB*p.Stride : yB*p.Stride+p.W]
		out0 := ip.Pix[(2*y)*w2 : (2*y)*w2+w2]
		out1 := ip.Pix[(2*y+1)*w2 : (2*y+1)*w2+w2]
		for x := 0; x < p.W; x++ {
			xB := x + 1
			if xB >= p.W {
				xB = p.W - 1
			}
			a := int(rowA[x])
			b := int(rowA[xB])
			c := int(rowC[x])
			d := int(rowC[xB])
			out0[2*x] = uint8(a)
			out0[2*x+1] = uint8((a + b + 1) >> 1)
			out1[2*x] = uint8((a + c + 1) >> 1)
			out1[2*x+1] = uint8((a + b + c + d + 2) >> 2)
		}
	}
	return ip
}

func (ip *refInterpolated) atClamped(hx, hy int) uint8 {
	if hx < 0 {
		hx = 0
	} else if hx >= ip.W {
		hx = ip.W - 1
	}
	if hy < 0 {
		hy = 0
	} else if hy >= ip.H {
		hy = ip.H - 1
	}
	return ip.Pix[hy*ip.W+hx]
}

func noisyPaddedPlane(w, h, apron int, seed int64) *Plane {
	rng := newTestRNG(seed)
	p := NewPlanePadded(w, h, apron)
	for y := 0; y < h; y++ {
		row := p.Row(y)
		for x := range row {
			row[x] = uint8(rng.next())
		}
	}
	p.ReplicateApron()
	return p
}

// TestLazyMatchesFullGrid pins every lazily materialised half-pel sample
// byte-equal to the old full-grid build, over padded and tight sources,
// through At, AtClamped (including apron and far-out positions) and
// Block.
func TestLazyMatchesFullGrid(t *testing.T) {
	for _, tc := range []struct {
		w, h, apron int
	}{
		{16, 16, MinInterpApron},
		{48, 32, 8},
		{33, 17, MinInterpApron}, // not tile-aligned
		{8, 8, 0},                // tight source: clamped fill path
		{5, 3, 0},
	} {
		var src *Plane
		if tc.apron > 0 {
			src = noisyPaddedPlane(tc.w, tc.h, tc.apron, int64(tc.w*1000+tc.h))
		} else {
			src = noisyPaddedPlane(tc.w, tc.h, 0, int64(tc.w*1000+tc.h))
		}
		want := refInterpolate(src)
		ip := InterpolateLazy(src)
		for hy := -5; hy < ip.H+5; hy++ {
			for hx := -5; hx < ip.W+5; hx++ {
				if got := ip.AtClamped(hx, hy); got != want.atClamped(hx, hy) {
					t.Fatalf("%dx%d apron %d: AtClamped(%d,%d) = %d, want %d",
						tc.w, tc.h, tc.apron, hx, hy, got, want.atClamped(hx, hy))
				}
			}
		}
		ip.Release()

		// A fresh lazy view again, this time touched only through Block at
		// scattered anchors (first-touch ordering differs from the scan
		// above).
		ip = InterpolateLazy(src)
		blk := make([]uint8, 8*8)
		for _, pos := range [][2]int{
			{1, 1}, {2 * tc.w / 2, 3}, {-1, -1}, {2*tc.w - 3, 2*tc.h - 3},
			{-40, 7}, {7, -40}, {2 * tc.w, 2 * tc.h},
		} {
			ip.Block(blk, pos[0], pos[1], 8, 8)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					wantv := want.atClamped(pos[0]+2*x, pos[1]+2*y)
					if blk[y*8+x] != wantv {
						t.Fatalf("%dx%d apron %d: Block(%v) sample (%d,%d) = %d, want %d",
							tc.w, tc.h, tc.apron, pos, x, y, blk[y*8+x], wantv)
					}
				}
			}
		}
		ip.Release()
	}
}

// TestEagerMatchesFullGrid pins the fully materialised view against the
// oracle too (both access orders share the tile fill code, but the eager
// path skips the claim states).
func TestEagerMatchesFullGrid(t *testing.T) {
	src := noisyPaddedPlane(24, 20, 0, 99)
	want := refInterpolate(src)
	ip := Interpolate(src)
	for hy := 0; hy < ip.H; hy++ {
		for hx := 0; hx < ip.W; hx++ {
			if got := ip.At(hx, hy); got != want.atClamped(hx, hy) {
				t.Fatalf("At(%d,%d) = %d, want %d", hx, hy, got, want.atClamped(hx, hy))
			}
		}
	}
}

// TestLazyPooledReuse checks a released view recycled for a new source
// frame forgets the old samples (claim states reset).
func TestLazyPooledReuse(t *testing.T) {
	a := noisyPaddedPlane(32, 32, MinInterpApron, 1)
	b := noisyPaddedPlane(32, 32, MinInterpApron, 2)
	ip := InterpolateLazy(a)
	ip.Block(make([]uint8, 64), 9, 9, 8, 8) // materialise some tiles
	ip.Release()
	ip = InterpolateLazy(b)
	want := refInterpolate(b)
	for _, pos := range [][2]int{{9, 9}, {1, 0}, {0, 1}, {31, 31}} {
		if got := ip.At(pos[0], pos[1]); got != want.atClamped(pos[0], pos[1]) {
			t.Fatalf("recycled view sample (%d,%d) = %d, want %d (stale tile?)",
				pos[0], pos[1], got, want.atClamped(pos[0], pos[1]))
		}
	}
	ip.Release()
}

// TestConcurrentFirstTouch hammers concurrent first-touch of the same
// tiles from many goroutines — the wavefront pattern. Run under -race
// this certifies the claim-state protocol; the value checks certify
// idempotence.
func TestConcurrentFirstTouch(t *testing.T) {
	src := noisyPaddedPlane(64, 48, MinInterpApron, 7)
	want := refInterpolate(src)
	for round := 0; round < 4; round++ {
		ip := InterpolateLazy(src)
		const workers = 8
		var wg sync.WaitGroup
		errs := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				blk := make([]uint8, 16*16)
				// Every worker walks the whole grid, phase-striped so all
				// of them race on the same tiles in different orders.
				for i := 0; i < 2*64*2*48/64; i++ {
					hx := (i*31 + w*17) % (2*64 - 32)
					hy := (i*13 + w*7) % (2*48 - 32)
					ip.Block(blk, hx, hy, 16, 16)
					for y := 0; y < 16; y += 5 {
						for x := 0; x < 16; x += 5 {
							if blk[y*16+x] != want.atClamped(hx+2*x, hy+2*y) {
								errs <- "value mismatch under concurrent first touch"
								return
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
		ip.Release()
	}
}

// TestInterpFillStatsAdvance sanity-checks the bytes-touched counters:
// touching one block advances them by at most a few tiles, far less than
// a full-grid build.
func TestInterpFillStatsAdvance(t *testing.T) {
	src := noisyPaddedPlane(64, 64, MinInterpApron, 11)
	t0, b0 := InterpFillStats()
	ip := InterpolateLazy(src)
	ip.Block(make([]uint8, 64), 33, 33, 8, 8) // one diagonal-phase block
	t1, b1 := InterpFillStats()
	ip.Release()
	tiles, bytes := t1-t0, b1-b0
	if tiles == 0 || bytes == 0 {
		t.Fatal("fill counters did not advance")
	}
	if tiles > 4 {
		t.Fatalf("one 8x8 block filled %d tiles, want ≤ 4", tiles)
	}
	if full := uint64(3 * 2 * 64 * 2 * 64); bytes >= full/4 {
		t.Fatalf("one block touched %d bytes, suspiciously close to a full build (%d)", bytes, full)
	}
}
