package frame

import (
	"testing"
	"testing/quick"
)

func rampPlane(w, h int) *Plane {
	p := NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p.Set(x, y, uint8((x*7+y*13)%256))
		}
	}
	return p
}

func TestInterpolateIntegerPositions(t *testing.T) {
	p := rampPlane(16, 12)
	ip := Interpolate(p)
	if ip.W != 32 || ip.H != 24 {
		t.Fatalf("interp size %dx%d, want 32x24", ip.W, ip.H)
	}
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			if ip.At(2*x, 2*y) != p.At(x, y) {
				t.Fatalf("integer position (%d,%d) altered", x, y)
			}
		}
	}
}

func TestInterpolateHalfPelRules(t *testing.T) {
	p := NewPlane(2, 2)
	copy(p.Pix, []uint8{10, 20, 30, 50})
	ip := Interpolate(p)
	// b = (A+B+1)/2, c = (A+C+1)/2, d = (A+B+C+D+2)/4
	if got := ip.At(1, 0); got != (10+20+1)/2 {
		t.Errorf("horizontal half-pel = %d, want %d", got, (10+20+1)/2)
	}
	if got := ip.At(0, 1); got != (10+30+1)/2 {
		t.Errorf("vertical half-pel = %d, want %d", got, (10+30+1)/2)
	}
	if got := ip.At(1, 1); got != (10+20+30+50+2)/4 {
		t.Errorf("diagonal half-pel = %d, want %d", got, (10+20+30+50+2)/4)
	}
}

func TestInterpolateEdgeReplication(t *testing.T) {
	p := NewPlane(2, 1)
	copy(p.Pix, []uint8{100, 200})
	ip := Interpolate(p)
	// Right of the last column, B is replicated: b = (200+200+1)/2 = 200.
	if got := ip.At(3, 0); got != 200 {
		t.Errorf("edge horizontal half-pel = %d, want 200", got)
	}
	// Below the last row, C replicates A.
	if got := ip.At(0, 1); got != 100 {
		t.Errorf("edge vertical half-pel = %d, want 100", got)
	}
}

func TestInterpolateConstantPlane(t *testing.T) {
	p := NewPlane(8, 8)
	p.Fill(77)
	ip := Interpolate(p)
	for hy := 0; hy < ip.H; hy++ {
		for hx := 0; hx < ip.W; hx++ {
			if v := ip.At(hx, hy); v != 77 {
				t.Fatalf("interp sample (%d,%d) = %d, want 77", hx, hy, v)
			}
		}
	}
}

func TestInterpolatedBlockFastVsSlow(t *testing.T) {
	p := rampPlane(24, 24)
	ip := Interpolate(p)
	fast := make([]uint8, 8*8)
	slow := make([]uint8, 8*8)
	for _, pos := range [][2]int{{0, 0}, {5, 7}, {31, 31}, {33, 39}} {
		ip.Block(fast, pos[0], pos[1], 8, 8)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				slow[y*8+x] = ip.AtClamped(pos[0]+2*x, pos[1]+2*y)
			}
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("Block at %v sample %d: fast %d != slow %d", pos, i, fast[i], slow[i])
			}
		}
	}
}

func TestInterpolatedBlockIntegerMVMatchesCopy(t *testing.T) {
	p := rampPlane(32, 32)
	ip := Interpolate(p)
	blk := make([]uint8, 16*16)
	ip.Block(blk, 2*4, 2*6, 16, 16) // integer MV (4,6)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if blk[y*16+x] != p.At(4+x, 6+y) {
				t.Fatalf("integer-MV block mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestInterpolateRangeProperty(t *testing.T) {
	// Interpolated samples always lie within [min, max] of the source.
	f := func(seed int64) bool {
		rng := newTestRNG(seed)
		p := NewPlane(9, 9)
		lo, hi := uint8(255), uint8(0)
		for i := range p.Pix {
			p.Pix[i] = uint8(rng.next())
			if p.Pix[i] < lo {
				lo = p.Pix[i]
			}
			if p.Pix[i] > hi {
				hi = p.Pix[i]
			}
		}
		ip := Interpolate(p)
		for hy := 0; hy < ip.H; hy++ {
			for hx := 0; hx < ip.W; hx++ {
				if v := ip.At(hx, hy); v < lo || v > hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
