package frame

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM writes the plane as a binary (P5) PGM image, a convenient format
// for inspecting synthetic sequences with standard image viewers.
func WritePGM(w io.Writer, p *Plane) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", p.W, p.H); err != nil {
		return err
	}
	for y := 0; y < p.H; y++ {
		if _, err := bw.Write(p.Row(y)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPGM parses a binary (P5) PGM image into a plane. Only maxval 255 is
// supported; comments are accepted in the header.
func ReadPGM(r io.Reader) (*Plane, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("frame: reading PGM magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("frame: unsupported PGM magic %q", magic)
	}
	readInt := func() (int, error) {
		// Skip whitespace and comments.
		for {
			c, err := br.ReadByte()
			if err != nil {
				return 0, err
			}
			if c == '#' {
				if _, err := br.ReadString('\n'); err != nil {
					return 0, err
				}
				continue
			}
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				continue
			}
			n := 0
			for c >= '0' && c <= '9' {
				n = n*10 + int(c-'0')
				c, err = br.ReadByte()
				if err != nil {
					if err == io.EOF {
						return n, nil
					}
					return 0, err
				}
			}
			return n, nil
		}
	}
	w, err := readInt()
	if err != nil {
		return nil, fmt.Errorf("frame: reading PGM width: %w", err)
	}
	h, err := readInt()
	if err != nil {
		return nil, fmt.Errorf("frame: reading PGM height: %w", err)
	}
	maxval, err := readInt()
	if err != nil {
		return nil, fmt.Errorf("frame: reading PGM maxval: %w", err)
	}
	if maxval != 255 {
		return nil, fmt.Errorf("frame: unsupported PGM maxval %d", maxval)
	}
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("frame: implausible PGM size %dx%d", w, h)
	}
	p := NewPlane(w, h)
	if _, err := io.ReadFull(br, p.Pix); err != nil {
		return nil, fmt.Errorf("frame: reading PGM samples: %w", err)
	}
	return p, nil
}

// WriteY4M writes frames as a YUV4MPEG2 stream (C420jpeg layout) so
// generated sequences can be played with standard tools.
func WriteY4M(w io.Writer, frames []*Frame, fpsNum, fpsDen int) error {
	if len(frames) == 0 {
		return fmt.Errorf("frame: no frames to write")
	}
	s := frames[0].Size()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "YUV4MPEG2 W%d H%d F%d:%d Ip A1:1 C420jpeg\n", s.W, s.H, fpsNum, fpsDen); err != nil {
		return err
	}
	for i, f := range frames {
		if f.Size() != s {
			return fmt.Errorf("frame: frame %d size %v differs from %v", i, f.Size(), s)
		}
		if _, err := fmt.Fprintf(bw, "FRAME\n"); err != nil {
			return err
		}
		for _, p := range []*Plane{f.Y, f.Cb, f.Cr} {
			for y := 0; y < p.H; y++ {
				if _, err := bw.Write(p.Row(y)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
