package frame

import (
	"bytes"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	p := rampPlane(21, 13)
	var buf bytes.Buffer
	if err := WritePGM(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Fatal("PGM round trip altered samples")
	}
}

func TestReadPGMWithComment(t *testing.T) {
	data := "P5\n# a comment line\n2 1\n255\n\x0a\x14"
	p, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if p.W != 2 || p.H != 1 || p.At(0, 0) != 10 || p.At(1, 0) != 20 {
		t.Fatalf("parsed %dx%d %v", p.W, p.H, p.Pix)
	}
}

func TestReadPGMRejectsBadInput(t *testing.T) {
	for _, in := range []string{
		"P6\n2 2\n255\nxxxx",   // wrong magic
		"P5\n2 2\n65535\n....", // unsupported maxval
		"P5\n2 2\n255\nab",     // truncated samples
		"P5\n0 2\n255\n",       // zero dimension
	} {
		if _, err := ReadPGM(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestWriteY4M(t *testing.T) {
	f := NewFrame(SQCIF)
	f.FillYUV(100, 110, 120)
	var buf bytes.Buffer
	if err := WriteY4M(&buf, []*Frame{f, f.Clone()}, 30, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "YUV4MPEG2 W128 H96 F30:1") {
		t.Fatalf("bad Y4M header: %q", out[:40])
	}
	frameBytes := 128*96 + 2*64*48
	wantLen := len("YUV4MPEG2 W128 H96 F30:1 Ip A1:1 C420jpeg\n") + 2*(len("FRAME\n")+frameBytes)
	if buf.Len() != wantLen {
		t.Fatalf("Y4M length %d, want %d", buf.Len(), wantLen)
	}
	if err := WriteY4M(&buf, nil, 30, 1); err == nil {
		t.Fatal("empty frame list accepted")
	}
	g := NewFrame(QCIF)
	if err := WriteY4M(&buf, []*Frame{f, g}, 30, 1); err == nil {
		t.Fatal("mixed sizes accepted")
	}
}
