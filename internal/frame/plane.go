// Package frame provides the pixel-domain substrate for the ACBM
// reproduction: 8-bit luminance/chrominance planes, YUV 4:2:0 frames in the
// QCIF/CIF formats used by the paper, H.263-style half-pel interpolation,
// and quality metrics (MSE/PSNR).
//
// Planes store samples row-major with an explicit stride so that views and
// whole planes share one representation. A plane may additionally carry a
// replicated border apron (NewPlanePadded): the stride then covers the
// padding and Pix is windowed into the padded buffer so that sample (x, y)
// still lives at Pix[y*Stride+x], while coordinates up to Apron() samples
// outside the plane are backed by real memory holding the edge-replicated
// values (after ReplicateApron). Reference planes use this so block
// matching and interpolation never branch on the frame border. All
// block-matching code in internal/search and internal/codec operates on
// *Plane values from this package.
package frame

import (
	"errors"
	"fmt"
)

// Plane is a rectangular grid of 8-bit samples (one video component).
// Pix holds at least Stride*H bytes; sample (x, y) lives at Pix[y*Stride+x].
type Plane struct {
	W, H   int
	Stride int
	Pix    []uint8
	// apron is the replicated border margin available on every side; buf is
	// the full padded buffer Pix is windowed into (buf == nil when apron is
	// 0 and Pix is the whole allocation). The apron samples hold the
	// edge-replicated values only after ReplicateApron.
	apron int
	buf   []uint8
}

// NewPlane returns a zeroed w×h plane with a tight stride.
func NewPlane(w, h int) *Plane {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid plane size %dx%d", w, h))
	}
	return &Plane{W: w, H: h, Stride: w, Pix: make([]uint8, w*h)}
}

// NewPlanePadded returns a zeroed w×h plane whose storage carries an
// apron-sample replicated border on every side: Stride = w + 2*apron and
// Pix is windowed at the visible origin, so Pix[y*Stride+x] addresses the
// visible samples exactly as in a tight plane while the border memory
// stays reachable through the padded buffer. Call ReplicateApron after
// writing the visible samples to refresh the border.
func NewPlanePadded(w, h, apron int) *Plane {
	if apron <= 0 {
		return NewPlane(w, h)
	}
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid plane size %dx%d", w, h))
	}
	stride := w + 2*apron
	buf := make([]uint8, stride*(h+2*apron))
	return planeFromPadded(buf, w, h, apron)
}

// FromPix wraps an existing sample buffer as a plane. The buffer must hold
// at least w*h samples; it is used directly, not copied.
func FromPix(pix []uint8, w, h int) (*Plane, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("frame: invalid plane size %dx%d", w, h)
	}
	if len(pix) < w*h {
		return nil, fmt.Errorf("frame: buffer holds %d samples, need %d", len(pix), w*h)
	}
	return &Plane{W: w, H: h, Stride: w, Pix: pix}, nil
}

// planeFromPadded wraps a padded buffer (len ≥ (w+2a)*(h+2a)) as a plane
// windowed at the visible origin.
func planeFromPadded(buf []uint8, w, h, apron int) *Plane {
	stride := w + 2*apron
	return &Plane{
		W: w, H: h, Stride: stride,
		Pix:   buf[apron*stride+apron:],
		apron: apron,
		buf:   buf,
	}
}

// Apron returns the replicated border margin available on every side of
// the plane (0 for tight planes).
func (p *Plane) Apron() int { return p.apron }

// padRow returns the padded storage row for visible row y (which may be
// negative or ≥ H within the apron), indexed so that the returned slice's
// element apron+x is visible sample (x, y). Valid only for padded planes.
func (p *Plane) padRow(y int) []uint8 {
	off := (y + p.apron) * p.Stride
	return p.buf[off : off+p.Stride]
}

// ReplicateApron refreshes the apron samples by edge replication, making
// every coordinate within Apron() samples of the plane behave exactly like
// AtClamped. The encoder and decoder call it once per frame when a
// reconstruction becomes the prediction reference; until then the apron
// contents are unspecified. No-op for tight planes.
func (p *Plane) ReplicateApron() {
	a := p.apron
	if a == 0 {
		return
	}
	// Left/right margins of every visible row.
	for y := 0; y < p.H; y++ {
		row := p.padRow(y)
		l, r := row[a], row[a+p.W-1]
		for x := 0; x < a; x++ {
			row[x] = l
			row[a+p.W+x] = r
		}
	}
	// Top/bottom margins replicate the full padded edge rows.
	top := p.padRow(0)
	bottom := p.padRow(p.H - 1)
	for y := 1; y <= a; y++ {
		copy(p.padRow(-y), top)
		copy(p.padRow(p.H-1+y), bottom)
	}
}

// At returns the sample at (x, y). The coordinates must be in bounds.
func (p *Plane) At(x, y int) uint8 { return p.Pix[y*p.Stride+x] }

// Set stores v at (x, y). The coordinates must be in bounds.
func (p *Plane) Set(x, y int, v uint8) { p.Pix[y*p.Stride+x] = v }

// AtClamped returns the sample at (x, y) with edge replication: coordinates
// outside the plane are clamped to the nearest border sample. This is the
// access rule used when interpolating at frame borders.
func (p *Plane) AtClamped(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= p.W {
		x = p.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= p.H {
		y = p.H - 1
	}
	return p.Pix[y*p.Stride+x]
}

// Row returns the y-th row as a slice of exactly W samples.
func (p *Plane) Row(y int) []uint8 { return p.Pix[y*p.Stride : y*p.Stride+p.W] }

// Fill sets every sample to v.
func (p *Plane) Fill(v uint8) {
	for y := 0; y < p.H; y++ {
		row := p.Row(y)
		for x := range row {
			row[x] = v
		}
	}
}

// Clone returns a deep copy with a tight stride.
func (p *Plane) Clone() *Plane {
	q := NewPlane(p.W, p.H)
	for y := 0; y < p.H; y++ {
		copy(q.Row(y), p.Row(y))
	}
	return q
}

// Equal reports whether two planes have identical dimensions and samples.
func (p *Plane) Equal(q *Plane) bool {
	if p.W != q.W || p.H != q.H {
		return false
	}
	for y := 0; y < p.H; y++ {
		pr, qr := p.Row(y), q.Row(y)
		for x := range pr {
			if pr[x] != qr[x] {
				return false
			}
		}
	}
	return true
}

// CopyBlock copies a w×h block from src at (sx, sy) into p at (dx, dy).
// Both rectangles must be fully inside their planes.
func (p *Plane) CopyBlock(dx, dy int, src *Plane, sx, sy, w, h int) {
	for y := 0; y < h; y++ {
		copy(p.Pix[(dy+y)*p.Stride+dx:(dy+y)*p.Stride+dx+w],
			src.Pix[(sy+y)*src.Stride+sx:(sy+y)*src.Stride+sx+w])
	}
}

// Shift returns a copy of p translated by (dx, dy) full pels with edge
// replication for uncovered samples. Positive dx moves content right,
// positive dy moves it down; the true motion of the content is therefore
// (dx, dy). Used by the Fig. 4 move-then-search experiment.
func (p *Plane) Shift(dx, dy int) *Plane {
	q := NewPlane(p.W, p.H)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			q.Set(x, y, p.AtClamped(x-dx, y-dy))
		}
	}
	return q
}

// InBounds reports whether the w×h block anchored at (x, y) lies fully
// inside the plane.
func (p *Plane) InBounds(x, y, w, h int) bool {
	return x >= 0 && y >= 0 && x+w <= p.W && y+h <= p.H
}

// ErrSizeMismatch is returned by operations that require equally sized planes.
var ErrSizeMismatch = errors.New("frame: plane size mismatch")

// AbsDiff writes |a-b| into dst, which must match a and b in size.
func AbsDiff(dst, a, b *Plane) error {
	if a.W != b.W || a.H != b.H || dst.W != a.W || dst.H != a.H {
		return ErrSizeMismatch
	}
	for y := 0; y < a.H; y++ {
		ar, br, dr := a.Row(y), b.Row(y), dst.Row(y)
		for x := range ar {
			d := int(ar[x]) - int(br[x])
			if d < 0 {
				d = -d
			}
			dr[x] = uint8(d)
		}
	}
	return nil
}

// ClampU8 converts v to the 8-bit sample range [0, 255].
func ClampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
