package frame

import (
	"testing"
	"testing/quick"
)

func TestNewPlaneZeroed(t *testing.T) {
	p := NewPlane(8, 4)
	if p.W != 8 || p.H != 4 || p.Stride != 8 {
		t.Fatalf("got %dx%d stride %d", p.W, p.H, p.Stride)
	}
	for i, v := range p.Pix {
		if v != 0 {
			t.Fatalf("pixel %d = %d, want 0", i, v)
		}
	}
}

func TestNewPlanePanicsOnBadSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 4}, {4, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlane(%d, %d) did not panic", dims[0], dims[1])
				}
			}()
			NewPlane(dims[0], dims[1])
		}()
	}
}

func TestFromPix(t *testing.T) {
	buf := []uint8{1, 2, 3, 4, 5, 6}
	p, err := FromPix(buf, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %d, want 6", p.At(2, 1))
	}
	if _, err := FromPix(buf, 4, 2); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := FromPix(buf, 0, 2); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	p := NewPlane(5, 7)
	p.Set(3, 6, 201)
	if got := p.At(3, 6); got != 201 {
		t.Fatalf("At = %d, want 201", got)
	}
}

func TestAtClampedEdges(t *testing.T) {
	p := NewPlane(3, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			p.Set(x, y, uint8(10*y+x))
		}
	}
	cases := []struct {
		x, y int
		want uint8
	}{
		{-5, -5, 0}, // top-left corner
		{5, -1, 2},  // top-right corner
		{-1, 5, 20}, // bottom-left corner
		{9, 9, 22},  // bottom-right corner
		{1, -2, 1},  // top edge
		{-2, 1, 10}, // left edge
		{1, 1, 11},  // interior passthrough
	}
	for _, c := range cases {
		if got := p.AtClamped(c.x, c.y); got != c.want {
			t.Errorf("AtClamped(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewPlane(4, 4)
	p.Fill(7)
	q := p.Clone()
	q.Set(0, 0, 99)
	if p.At(0, 0) != 7 {
		t.Fatal("Clone shares storage with original")
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("clone not Equal to source")
	}
}

func TestEqual(t *testing.T) {
	a, b := NewPlane(4, 4), NewPlane(4, 4)
	if !a.Equal(b) {
		t.Fatal("zeroed planes unequal")
	}
	b.Set(3, 3, 1)
	if a.Equal(b) {
		t.Fatal("different planes equal")
	}
	c := NewPlane(4, 5)
	if a.Equal(c) {
		t.Fatal("different sizes equal")
	}
}

func TestCopyBlock(t *testing.T) {
	src := NewPlane(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			src.Set(x, y, uint8(y*8+x))
		}
	}
	dst := NewPlane(8, 8)
	dst.CopyBlock(2, 3, src, 4, 4, 3, 2)
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			want := src.At(4+x, 4+y)
			if got := dst.At(2+x, 3+y); got != want {
				t.Errorf("dst(%d,%d) = %d, want %d", 2+x, 3+y, got, want)
			}
		}
	}
	if dst.At(1, 3) != 0 || dst.At(5, 3) != 0 {
		t.Error("CopyBlock wrote outside the destination rectangle")
	}
}

func TestShiftKnownMotion(t *testing.T) {
	p := NewPlane(16, 16)
	p.Set(5, 5, 200)
	q := p.Shift(3, -2)
	if q.At(8, 3) != 200 {
		t.Fatalf("shifted sample not at (8,3): got %d", q.At(8, 3))
	}
	// A zero shift must be the identity.
	if !p.Shift(0, 0).Equal(p) {
		t.Fatal("Shift(0,0) is not identity")
	}
}

func TestShiftEdgeReplication(t *testing.T) {
	p := NewPlane(4, 1)
	copy(p.Pix, []uint8{10, 20, 30, 40})
	q := p.Shift(2, 0) // content moves right; left side replicates p[0]
	want := []uint8{10, 10, 10, 20}
	for x, w := range want {
		if q.At(x, 0) != w {
			t.Errorf("q[%d] = %d, want %d", x, q.At(x, 0), w)
		}
	}
}

func TestInBounds(t *testing.T) {
	p := NewPlane(16, 16)
	cases := []struct {
		x, y, w, h int
		want       bool
	}{
		{0, 0, 16, 16, true},
		{0, 0, 17, 16, false},
		{-1, 0, 4, 4, false},
		{12, 12, 4, 4, true},
		{13, 12, 4, 4, false},
	}
	for _, c := range cases {
		if got := p.InBounds(c.x, c.y, c.w, c.h); got != c.want {
			t.Errorf("InBounds(%d,%d,%d,%d) = %v, want %v", c.x, c.y, c.w, c.h, got, c.want)
		}
	}
}

func TestAbsDiff(t *testing.T) {
	a, b, d := NewPlane(2, 2), NewPlane(2, 2), NewPlane(2, 2)
	copy(a.Pix, []uint8{10, 200, 0, 50})
	copy(b.Pix, []uint8{20, 100, 5, 50})
	if err := AbsDiff(d, a, b); err != nil {
		t.Fatal(err)
	}
	want := []uint8{10, 100, 5, 0}
	for i, w := range want {
		if d.Pix[i] != w {
			t.Errorf("d[%d] = %d, want %d", i, d.Pix[i], w)
		}
	}
	if err := AbsDiff(d, a, NewPlane(3, 2)); err != ErrSizeMismatch {
		t.Fatalf("size mismatch not detected: %v", err)
	}
}

func TestClampU8(t *testing.T) {
	if ClampU8(-5) != 0 || ClampU8(300) != 255 || ClampU8(128) != 128 {
		t.Fatal("ClampU8 wrong")
	}
}

func TestShiftInverseProperty(t *testing.T) {
	// For interior samples, shifting by (dx,dy) then (-dx,-dy) is identity.
	f := func(seed int64) bool {
		rng := newTestRNG(seed)
		p := NewPlane(24, 24)
		for i := range p.Pix {
			p.Pix[i] = uint8(rng.next())
		}
		dx, dy := int(rng.next()%5)-2, int(rng.next()%5)-2
		q := p.Shift(dx, dy).Shift(-dx, -dy)
		for y := 4; y < 20; y++ {
			for x := 4; x < 20; x++ {
				if q.At(x, y) != p.At(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// testRNG is a tiny deterministic generator for tests (xorshift64*).
type testRNG struct{ s uint64 }

func newTestRNG(seed int64) *testRNG {
	if seed == 0 {
		seed = 1
	}
	return &testRNG{uint64(seed)}
}

func (r *testRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}
