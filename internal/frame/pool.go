package frame

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Size-bucketed recycling for the pixel substrate.
//
// The encoder and decoder turn over large, identically sized buffers every
// frame: reconstruction planes (one padded frame per encoded/decoded
// frame) and the half-pel phase planes of the interpolated reference view.
// A single sync.Pool mixing every size would hand a QCIF-sized buffer to a
// CIF request (forcing a reallocation) and vice versa — with concurrent
// vcodecd sessions at mixed resolutions the sessions would thrash each
// other's buffers. Buffers are therefore pooled per exact capacity class
// and planes per (W, H, apron) class; the pools are safe for concurrent
// use and never zero recycled memory (every consumer fully overwrites the
// samples it reads: reconstruction planes are written macroblock by
// macroblock, aprons are replicated at reference hand-off, and half-pel
// tiles are guarded by their claim state).

// bufPools holds one sync.Pool of []uint8 per exact capacity.
var bufPools sync.Map // int → *sync.Pool

func bufPool(n int) *sync.Pool {
	if p, ok := bufPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := bufPools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

// getBuf returns an n-byte slice with unspecified contents, recycled when
// possible.
func getBuf(n int) []uint8 {
	if v := bufPool(n).Get(); v != nil {
		return (*v.(*[]uint8))[:n]
	}
	return make([]uint8, n)
}

// putBuf recycles a buffer obtained from getBuf.
func putBuf(b []uint8) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	bufPool(len(b)).Put(&b)
}

// planeKey is the pool bucket for recycled planes.
type planeKey struct{ w, h, apron int }

// planeBucket is one size class: its pool plus hit/miss counters. The
// counters are the observable cost of pool misses (a miss is a fresh
// allocation) — mixed-resolution workloads like the simulcast ladder are
// exactly where a thrashing bucket would hide without them. One atomic add
// per plane checkout, nothing on the release path.
type planeBucket struct {
	pool   sync.Pool
	hits   atomic.Uint64
	misses atomic.Uint64
}

var planePools sync.Map // planeKey → *planeBucket

func planePool(k planeKey) *planeBucket {
	if p, ok := planePools.Load(k); ok {
		return p.(*planeBucket)
	}
	p, _ := planePools.LoadOrStore(k, &planeBucket{})
	return p.(*planeBucket)
}

// PoolClassStats is one plane-pool size class's cumulative checkout
// counters since process start.
type PoolClassStats struct {
	W, H, Apron  int
	Hits, Misses uint64
}

// PoolStats snapshots every plane-pool size class, ordered by (W, H,
// apron) so metric emission is stable between scrapes.
func PoolStats() []PoolClassStats {
	var out []PoolClassStats
	planePools.Range(func(k, v any) bool {
		key := k.(planeKey)
		b := v.(*planeBucket)
		out = append(out, PoolClassStats{
			W: key.w, H: key.h, Apron: key.apron,
			Hits: b.hits.Load(), Misses: b.misses.Load(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.W != b.W {
			return a.W < b.W
		}
		if a.H != b.H {
			return a.H < b.H
		}
		return a.Apron < b.Apron
	})
	return out
}

// GetPlanePadded returns a w×h plane with the given apron drawn from the
// size-bucketed pool. The samples (visible and apron) have unspecified
// contents: the caller must fully overwrite the visible area and call
// ReplicateApron before any clamped/apron access. Hand the plane back with
// ReleasePlane once no reference to it (or to sub-slices of its buffer)
// remains.
func GetPlanePadded(w, h, apron int) *Plane {
	b := planePool(planeKey{w, h, apron})
	if v := b.pool.Get(); v != nil {
		b.hits.Add(1)
		return v.(*Plane)
	}
	b.misses.Add(1)
	if apron <= 0 {
		return &Plane{W: w, H: h, Stride: w, Pix: getBuf(w * h)}
	}
	stride := w + 2*apron
	return planeFromPadded(getBuf(stride*(h+2*apron)), w, h, apron)
}

// ReleasePlane recycles a plane obtained from GetPlanePadded (or any plane
// whose buffer may be reused). Safe to call on nil.
func ReleasePlane(p *Plane) {
	if p == nil {
		return
	}
	planePool(planeKey{p.W, p.H, p.apron}).pool.Put(p)
}

// GetFramePadded returns a 4:2:0 frame whose luma plane carries lumaApron
// and whose chroma planes carry chromaApron, drawn from the plane pools.
// Contents are unspecified (see GetPlanePadded). Release with
// (*Frame).Release.
func GetFramePadded(s Size, lumaApron, chromaApron int) *Frame {
	if s.W%2 != 0 || s.H%2 != 0 {
		panic("frame: odd luma size for 4:2:0")
	}
	return &Frame{
		Y:  GetPlanePadded(s.W, s.H, lumaApron),
		Cb: GetPlanePadded(s.W/2, s.H/2, chromaApron),
		Cr: GetPlanePadded(s.W/2, s.H/2, chromaApron),
	}
}

// Release recycles the frame's planes into the size-bucketed pools. The
// caller must guarantee nothing still references the frame, its planes or
// their buffers. Safe to call on nil.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	ReleasePlane(f.Y)
	ReleasePlane(f.Cb)
	ReleasePlane(f.Cr)
	f.Y, f.Cb, f.Cr = nil, nil, nil
}

// ReplicateAprons refreshes the apron samples of all three planes (see
// Plane.ReplicateApron).
func (f *Frame) ReplicateAprons() {
	f.Y.ReplicateApron()
	f.Cb.ReplicateApron()
	f.Cr.ReplicateApron()
}

// Half-pel materialisation counters: how many tiles (and sample bytes) of
// half-pel phase planes were actually computed. With the lazy tiled view
// these track the working set the interpolation really touches — the
// bytes-touched metric of BENCH_speed.json — instead of the full 3×W×H a
// per-frame eager build would pay.
var (
	interpTiles atomic.Uint64
	interpBytes atomic.Uint64
)

// InterpFillStats returns the cumulative count of half-pel tiles
// materialised and the sample bytes computed for them, across all
// Interpolated views since process start. Deltas around an encode give
// the per-sequence figure.
func InterpFillStats() (tiles, bytes uint64) {
	return interpTiles.Load(), interpBytes.Load()
}
