package frame

import "math"

// MSE returns the mean squared error between two planes of equal size.
func MSE(a, b *Plane) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, ErrSizeMismatch
	}
	var sum int64
	for y := 0; y < a.H; y++ {
		ar, br := a.Row(y), b.Row(y)
		for x := range ar {
			d := int64(ar[x]) - int64(br[x])
			sum += d * d
		}
	}
	return float64(sum) / float64(a.W*a.H), nil
}

// PSNRCap is the value reported for identical planes (MSE = 0), matching
// the convention of common video quality tools.
const PSNRCap = 100.0

// PSNR returns the peak signal-to-noise ratio in dB between two planes of
// equal size, using an 8-bit peak of 255. Identical planes report PSNRCap.
func PSNR(a, b *Plane) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return PSNRCap, nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// PSNRYUV returns component PSNRs for two frames. The luma value is the
// figure the paper plots in Figs. 5 and 6.
func PSNRYUV(a, b *Frame) (y, cb, cr float64, err error) {
	if y, err = PSNR(a.Y, b.Y); err != nil {
		return
	}
	if cb, err = PSNR(a.Cb, b.Cb); err != nil {
		return
	}
	cr, err = PSNR(a.Cr, b.Cr)
	return
}
