package frame

import (
	"math"
	"testing"
)

func TestMSEIdentical(t *testing.T) {
	p := rampPlane(16, 16)
	mse, err := MSE(p, p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if mse != 0 {
		t.Fatalf("MSE of identical planes = %v", mse)
	}
}

func TestMSEKnown(t *testing.T) {
	a, b := NewPlane(2, 2), NewPlane(2, 2)
	copy(a.Pix, []uint8{0, 0, 0, 0})
	copy(b.Pix, []uint8{2, 2, 2, 2})
	mse, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mse != 4 {
		t.Fatalf("MSE = %v, want 4", mse)
	}
}

func TestPSNRCapAndValue(t *testing.T) {
	p := rampPlane(8, 8)
	v, err := PSNR(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if v != PSNRCap {
		t.Fatalf("identical PSNR = %v, want cap %v", v, PSNRCap)
	}
	a, b := NewPlane(1, 1), NewPlane(1, 1)
	b.Pix[0] = 255
	v, err = PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0) > 1e-9 { // 10*log10(255^2/255^2) = 0 dB
		t.Fatalf("max-error PSNR = %v, want 0", v)
	}
}

func TestPSNRMonotoneInError(t *testing.T) {
	base := rampPlane(16, 16)
	small, big := base.Clone(), base.Clone()
	for i := 0; i < 32; i++ {
		small.Pix[i] += 2
		big.Pix[i] += 20
	}
	ps, _ := PSNR(base, small)
	pb, _ := PSNR(base, big)
	if ps <= pb {
		t.Fatalf("PSNR not monotone: small err %v <= big err %v", ps, pb)
	}
}

func TestPSNRSizeMismatch(t *testing.T) {
	if _, err := PSNR(NewPlane(4, 4), NewPlane(4, 5)); err != ErrSizeMismatch {
		t.Fatalf("want ErrSizeMismatch, got %v", err)
	}
}

func TestPSNRYUV(t *testing.T) {
	a, b := NewFrame(QCIF), NewFrame(QCIF)
	b.Y.Fill(10)
	y, cb, cr, err := PSNRYUV(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if y >= PSNRCap {
		t.Fatal("luma PSNR should be finite")
	}
	if cb != PSNRCap || cr != PSNRCap {
		t.Fatal("chroma PSNR should be at cap for identical planes")
	}
}
