package frame

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Y4MStream holds a parsed YUV4MPEG2 sequence.
type Y4MStream struct {
	Frames []*Frame
	FPSNum int
	FPSDen int
}

// FPS returns the frame rate as a float (0 if the header omitted it).
func (s *Y4MStream) FPS() float64 {
	if s.FPSDen == 0 {
		return 0
	}
	return float64(s.FPSNum) / float64(s.FPSDen)
}

// Y4MReader parses a YUV4MPEG2 stream incrementally: the header is read
// by NewY4MReader and each ReadFrame returns the next picture as soon as
// its samples are available. This is the streaming counterpart of ReadY4M
// — a network server can start encoding frame 0 while frame 1 is still in
// flight on the wire.
type Y4MReader struct {
	br     *bufio.Reader
	size   Size
	fpsNum int
	fpsDen int
	frames int
}

// NewY4MReader parses the stream header of r. Only 4:2:0 chroma (C420,
// C420jpeg, C420mpeg2, C420paldv or no C tag) is accepted.
func NewY4MReader(r io.Reader) (*Y4MReader, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("frame: reading Y4M header: %w", err)
	}
	fields := strings.Fields(strings.TrimSpace(header))
	if len(fields) == 0 || fields[0] != "YUV4MPEG2" {
		return nil, fmt.Errorf("frame: not a YUV4MPEG2 stream")
	}
	var w, h, fn, fd int
	for _, f := range fields[1:] {
		if len(f) < 2 {
			continue
		}
		switch f[0] {
		case 'W':
			if w, err = strconv.Atoi(f[1:]); err != nil {
				return nil, fmt.Errorf("frame: bad Y4M width %q", f)
			}
		case 'H':
			if h, err = strconv.Atoi(f[1:]); err != nil {
				return nil, fmt.Errorf("frame: bad Y4M height %q", f)
			}
		case 'F':
			parts := strings.SplitN(f[1:], ":", 2)
			if len(parts) == 2 {
				fn, _ = strconv.Atoi(parts[0])
				fd, _ = strconv.Atoi(parts[1])
			}
		case 'C':
			sub := f[1:]
			if sub != "420" && sub != "420jpeg" && sub != "420mpeg2" && sub != "420paldv" {
				return nil, fmt.Errorf("frame: unsupported Y4M chroma %q (only 4:2:0)", f)
			}
		}
	}
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 || w > 1<<14 || h > 1<<14 {
		return nil, fmt.Errorf("frame: bad Y4M dimensions %dx%d", w, h)
	}
	return &Y4MReader{br: br, size: Size{W: w, H: h}, fpsNum: fn, fpsDen: fd}, nil
}

// Size returns the stream's frame format.
func (y *Y4MReader) Size() Size { return y.size }

// FPS returns the frame rate from the header (0 if omitted).
func (y *Y4MReader) FPS() float64 {
	if y.fpsDen == 0 {
		return 0
	}
	return float64(y.fpsNum) / float64(y.fpsDen)
}

// ReadFrame returns the next frame, or io.EOF at a clean end of stream.
func (y *Y4MReader) ReadFrame() (*Frame, error) {
	line, err := y.br.ReadString('\n')
	if err == io.EOF && line == "" {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("frame: reading FRAME marker: %w", err)
	}
	if !strings.HasPrefix(line, "FRAME") {
		return nil, fmt.Errorf("frame: expected FRAME marker, got %q", strings.TrimSpace(line))
	}
	f := NewFrame(y.size)
	for _, p := range []*Plane{f.Y, f.Cb, f.Cr} {
		if _, err := io.ReadFull(y.br, p.Pix); err != nil {
			return nil, fmt.Errorf("frame: reading frame %d samples: %w", y.frames, err)
		}
	}
	y.frames++
	return f, nil
}

// ReadY4M parses a YUV4MPEG2 stream with 4:2:0 chroma (C420, C420jpeg,
// C420mpeg2 or no C tag). It accepts the streams written by WriteY4M and
// by common tools (ffmpeg, x264).
func ReadY4M(r io.Reader) (*Y4MStream, error) {
	y, err := NewY4MReader(r)
	if err != nil {
		return nil, err
	}
	stream := &Y4MStream{FPSNum: y.fpsNum, FPSDen: y.fpsDen}
	for {
		f, err := y.ReadFrame()
		if err == io.EOF {
			return stream, nil
		}
		if err != nil {
			return nil, err
		}
		stream.Frames = append(stream.Frames, f)
	}
}
