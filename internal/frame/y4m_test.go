package frame

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestY4MRoundTrip(t *testing.T) {
	a := NewFrame(SQCIF)
	a.FillYUV(50, 100, 150)
	b := NewFrame(SQCIF)
	for i := range b.Y.Pix {
		b.Y.Pix[i] = uint8(i)
	}
	var buf bytes.Buffer
	if err := WriteY4M(&buf, []*Frame{a, b}, 30, 1); err != nil {
		t.Fatal(err)
	}
	s, err := ReadY4M(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Frames) != 2 {
		t.Fatalf("read %d frames", len(s.Frames))
	}
	if !s.Frames[0].Equal(a) || !s.Frames[1].Equal(b) {
		t.Fatal("Y4M round trip altered frames")
	}
	if s.FPS() != 30 {
		t.Fatalf("FPS = %v", s.FPS())
	}
}

func TestReadY4MRejectsBadInput(t *testing.T) {
	cases := []string{
		"MPEG4 W16 H16\nFRAME\n",          // bad magic
		"YUV4MPEG2 W16 H16 C444\nFRAME\n", // unsupported chroma
		"YUV4MPEG2 W15 H16\n",             // odd width
		"YUV4MPEG2 W0 H16\n",              // zero width
		"YUV4MPEG2 W16 H16\nNOTFRAME\n",   // bad marker
		"YUV4MPEG2 W16 H16\nFRAME\nshort", // truncated samples
	}
	for _, in := range cases {
		if _, err := ReadY4M(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadY4MEmptySequence(t *testing.T) {
	s, err := ReadY4M(strings.NewReader("YUV4MPEG2 W16 H16 F25:1 Ip A1:1 C420jpeg\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Frames) != 0 {
		t.Fatal("phantom frames parsed")
	}
	if s.FPS() != 25 {
		t.Fatalf("FPS = %v", s.FPS())
	}
}

func TestReadY4MNoFPS(t *testing.T) {
	s, err := ReadY4M(strings.NewReader("YUV4MPEG2 W16 H16\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.FPS() != 0 {
		t.Fatalf("FPS = %v, want 0 for missing F tag", s.FPS())
	}
}

func TestY4MReaderStreamsIncrementally(t *testing.T) {
	// Write two frames, then read them back one at a time through the
	// streaming reader; a partial pipe must deliver frame 0 before the
	// writer has produced frame 1.
	frames := []*Frame{NewFrame(Size{16, 16}), NewFrame(Size{16, 16})}
	frames[0].Y.Pix[0] = 11
	frames[1].Y.Pix[0] = 22
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(WriteY4M(pw, frames, 30, 1))
	}()
	y, err := NewY4MReader(pr)
	if err != nil {
		t.Fatal(err)
	}
	if y.Size() != (Size{16, 16}) || y.FPS() != 30 {
		t.Fatalf("header: size %v fps %v", y.Size(), y.FPS())
	}
	for i, want := range frames {
		got, err := y.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("frame %d differs", i)
		}
	}
	if _, err := y.ReadFrame(); err != io.EOF {
		t.Fatalf("EOF expected, got %v", err)
	}
}
