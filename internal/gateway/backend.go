package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// backend is the gateway's view of one vcodecd: its address, the load and
// liveness signals the health poller refreshes, the circuit breaker that
// session-attempt failures feed, and the counters /metrics exposes.
//
// Two failure detectors run side by side on purpose:
//
//   - The health poller (GET /healthz + /metrics every PollInterval)
//     catches a backend that is down, unreachable, or draining before any
//     session is risked on it.
//   - The circuit breaker catches a backend whose /healthz still answers
//     but whose /encode path fails (a half-dead process, a chewed-up
//     network path): BreakerThreshold consecutive attempt failures open
//     it for BreakerCooldown, after which one attempt may probe it again
//     (half-open); the first success closes it.
type backend struct {
	url string

	// active is the number of gateway sessions currently dispatched here
	// (attempt in flight or stream being relayed). It is the primary
	// least-loaded signal: it updates at dispatch time, not at the next
	// poll, so a burst of arrivals spreads instead of dogpiling the
	// backend that looked idle a poll ago.
	active atomic.Int64
	// sessionsRouted counts sessions whose stream was served from here
	// (committed attempts, successful or not).
	sessionsRouted atomic.Int64
	// attemptFailures counts retryable attempt failures charged here.
	attemptFailures atomic.Int64
	// breakerTrips counts transitions to the open state.
	breakerTrips atomic.Int64

	mu sync.Mutex
	// alive is the last poll's verdict: /healthz answered (200 or a
	// well-formed draining 503).
	alive bool
	// draining: the backend answers but refuses new sessions; in-flight
	// streams keep running. Routing skips it, the breaker leaves it alone.
	draining bool
	// reportedActive/reportedQueued are the backend's own occupancy from
	// /healthz (all its clients, not just this gateway) — the tiebreak
	// signal that makes least-loaded honest when several gateways or
	// direct clients share a backend.
	reportedActive int
	reportedQueued int
	// reportedQos is the backend's QoS degradation level from /healthz
	// (its batch tier — the deepest in force). On load ties the router
	// prefers the less-degraded backend: a new session placed there
	// encodes at higher quality, and the placement spreads pressure away
	// from the part of the fleet already trading quality for latency.
	reportedQos int
	lastPoll    time.Time
	// consecFails/openUntil implement the breaker (guarded by mu).
	consecFails int
	openUntil   time.Time
}

// eligible reports whether the router may dispatch a new session here.
func (b *backend) eligible(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.alive && !b.draining && !now.Before(b.openUntil)
}

// load is the least-loaded score: sessions this gateway has in flight
// here plus the backlog the backend itself reports. reportedActive is
// deliberately not added on top of active — for a single-gateway
// deployment they largely double-count the same sessions; the max of the
// two is the honest occupancy estimate.
func (b *backend) load() int64 {
	g := b.active.Load()
	b.mu.Lock()
	r := int64(b.reportedActive + b.reportedQueued)
	b.mu.Unlock()
	if r > g {
		return r
	}
	return g
}

// qosLevel is the backend's last-polled degradation level (0 when the
// backend predates the QoS field or has never been polled).
func (b *backend) qosLevel() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reportedQos
}

// noteFailure charges one retryable attempt failure and opens the breaker
// at the threshold.
func (b *backend) noteFailure(threshold int, cooldown time.Duration) {
	b.attemptFailures.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.consecFails >= threshold && time.Now().After(b.openUntil) {
		b.openUntil = time.Now().Add(cooldown)
		b.breakerTrips.Add(1)
		// Half-open probe protocol: once the cooldown expires, eligible()
		// admits attempts again; the counter stays at the threshold, so
		// the very next failure re-opens immediately while a success
		// resets everything.
		b.consecFails = threshold - 1
	}
}

// noteSuccess closes the breaker.
func (b *backend) noteSuccess() {
	b.mu.Lock()
	b.consecFails = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// breakerOpen reports whether the breaker currently rejects dispatch.
func (b *backend) breakerOpen(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Before(b.openUntil)
}

// snapshot returns the health view for /healthz and /metrics.
func (b *backend) snapshot() backendView {
	b.mu.Lock()
	defer b.mu.Unlock()
	return backendView{
		URL:            b.url,
		Alive:          b.alive,
		Draining:       b.draining,
		BreakerOpen:    time.Now().Before(b.openUntil),
		Active:         b.active.Load(),
		ReportedActive: b.reportedActive,
		ReportedQueued: b.reportedQueued,
		QosLevel:       b.reportedQos,
		Routed:         b.sessionsRouted.Load(),
		Failures:       b.attemptFailures.Load(),
	}
}

// backendView is the JSON shape of one backend in gateway /healthz.
type backendView struct {
	URL            string `json:"url"`
	Alive          bool   `json:"alive"`
	Draining       bool   `json:"draining"`
	BreakerOpen    bool   `json:"breaker_open"`
	Active         int64  `json:"sessions_active"`
	ReportedActive int    `json:"reported_active"`
	ReportedQueued int    `json:"reported_queued"`
	QosLevel       int    `json:"qos_level"`
	Routed         int64  `json:"sessions_routed"`
	Failures       int64  `json:"attempt_failures"`
}

// poll refreshes the backend's health view once: /healthz for liveness
// and drain state, /metrics for the occupancy gauges. Both ride the same
// short timeout — a backend that cannot answer its health endpoint inside
// a poll interval is not one to trust with a session.
func (b *backend) poll(ctx context.Context, client *http.Client) {
	alive, draining := false, false
	active, queued, qos := 0, 0, 0

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err == nil {
		if resp, err := client.Do(req); err == nil {
			var hz struct {
				Status         string `json:"status"`
				SessionsActive int    `json:"sessions_active"`
				SessionsQueued int    `json:"sessions_queued"`
				QosLevel       int    `json:"qos_level"`
			}
			if json.NewDecoder(resp.Body).Decode(&hz) == nil {
				switch {
				case resp.StatusCode == http.StatusOK:
					alive = true
				case hz.Status == "draining":
					// A draining backend is alive — it is finishing the
					// sessions it has — it just must not receive new ones.
					alive, draining = true, true
				}
				active, queued, qos = hz.SessionsActive, hz.SessionsQueued, hz.QosLevel
			}
			resp.Body.Close()
		}
	}
	if alive {
		// /metrics corroborates the occupancy (and exercises the scrape
		// path a real deployment monitors): prefer its gauges when they
		// parse, keep the /healthz numbers when they don't.
		if a, q, ok := b.scrapeMetrics(ctx, client); ok {
			active, queued = a, q
		}
	}

	b.mu.Lock()
	b.alive = alive
	b.draining = draining
	b.reportedActive = active
	b.reportedQueued = queued
	b.reportedQos = qos
	b.lastPoll = time.Now()
	if !alive {
		// A dead backend's breaker state is moot; reset it so recovery
		// is judged fresh once /healthz answers again.
		b.consecFails = 0
		b.openUntil = time.Time{}
	}
	b.mu.Unlock()
}

// scrapeMetrics pulls vcodecd_sessions_active/queued out of the backend's
// Prometheus text exposition.
func (b *backend) scrapeMetrics(ctx context.Context, client *http.Client) (active, queued int, ok bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/metrics", nil)
	if err != nil {
		return 0, 0, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, false
	}
	gotA, gotQ := false, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		n, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		switch name {
		case "vcodecd_sessions_active":
			active, gotA = int(n), true
		case "vcodecd_sessions_queued":
			queued, gotQ = int(n), true
		}
	}
	return active, queued, gotA && gotQ
}
