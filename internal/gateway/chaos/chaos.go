// Package chaos injects transport faults between a gateway and its
// backends. A Proxy is a TCP relay listening on a loopback port and
// forwarding to one real backend; the Plan in force — settable at
// runtime, mid-connection — decides what the relay does to the traffic:
// add latency, stall it, reset connections after a byte budget, refuse
// new ones, or go dark entirely. KillActive cuts every established
// connection at once, the mid-stream backend-crash case.
//
// The proxy operates below HTTP on purpose: the failures it produces are
// the ones a real network or a crashed peer produces (RST, silence,
// half-delivered bytes), so the gateway's retry, breaker, and idle
// timeout machinery is exercised exactly as deployed — nothing is mocked
// at the protocol level.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Plan is the fault set in force. The zero Plan forwards faithfully.
type Plan struct {
	// Latency is added before each forwarded chunk, both directions —
	// a slow, but correct, network path.
	Latency time.Duration
	// Stall freezes forwarding (established connections carry no bytes)
	// while set — a partition that keeps sockets open. Clearing the plan
	// un-freezes connections that are still alive.
	Stall bool
	// ResetAfterBytes, when positive, resets a connection (RST, not FIN)
	// once that many backend→client bytes have crossed it — a peer dying
	// mid-response.
	ResetAfterBytes int64
	// RefuseNew rejects new connections immediately — a down listener —
	// while leaving established ones alone.
	RefuseNew bool
}

// Proxy is one fault-injecting TCP relay in front of one backend.
type Proxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	plan  Plan
	conns map[net.Conn]struct{} // accepted sides, for KillActive
	done  bool

	wg sync.WaitGroup
}

// New starts a proxy on a random loopback port relaying to target
// (host:port of a real backend).
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's base URL, the form gateway Config.Backends wants.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetPlan swaps the fault plan; it applies to in-flight connections at
// their next chunk boundary and to every connection accepted after.
func (p *Proxy) SetPlan(plan Plan) {
	p.mu.Lock()
	p.plan = plan
	p.mu.Unlock()
}

// Plan returns the plan in force.
func (p *Proxy) Plan() Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.plan
}

// KillActive resets every established connection — the backend crashed
// mid-stream. New connections are still accepted (under the current
// plan), so the "backend" comes back the moment the real one answers.
func (p *Proxy) KillActive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.conns)
	for c := range p.conns {
		abort(c)
	}
	return n
}

// Close stops the listener and resets everything in flight.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.done = true
	for c := range p.conns {
		abort(c)
	}
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

// abort closes a TCP connection with linger 0 so the peer sees RST, the
// signature of a crashed process rather than a polite shutdown.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if p.Plan().RefuseNew {
			abort(client)
			continue
		}
		backend, err := net.DialTimeout("tcp", p.target, 2*time.Second)
		if err != nil {
			abort(client)
			continue
		}
		p.mu.Lock()
		if p.done {
			p.mu.Unlock()
			abort(client)
			abort(backend)
			return
		}
		p.conns[client] = struct{}{}
		p.conns[backend] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.relay(client, backend)
	}
}

// relay pumps both directions until either side dies or the plan resets
// the connection.
func (p *Proxy) relay(client, backend net.Conn) {
	defer p.wg.Done()
	defer func() {
		abort(client)
		abort(backend)
		p.mu.Lock()
		delete(p.conns, client)
		delete(p.conns, backend)
		p.mu.Unlock()
	}()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.pump(backend, client, false) }()
	go func() { defer wg.Done(); p.pump(client, backend, true) }()
	wg.Wait()
}

// pump copies src→dst chunk by chunk, applying the plan at each boundary.
// counted marks the backend→client direction, the one ResetAfterBytes
// meters.
func (p *Proxy) pump(dst, src net.Conn, counted bool) {
	buf := make([]byte, 32<<10)
	var moved int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			for {
				plan := p.Plan()
				if !plan.Stall {
					if plan.Latency > 0 {
						time.Sleep(plan.Latency)
					}
					break
				}
				// Stalled: hold the bytes, keep the sockets. Poll so a
				// cleared plan (partition healed) resumes the stream.
				time.Sleep(10 * time.Millisecond)
				if p.closedConn(src) {
					return
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			moved += int64(n)
			if counted {
				if lim := p.Plan().ResetAfterBytes; lim > 0 && moved >= lim {
					return // defer aborts both sides: RST mid-response
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// closedConn reports whether KillActive/Close already removed c.
func (p *Proxy) closedConn(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.conns[c]
	return !ok || p.done
}

// Fleet is a set of proxies fronting a set of backends, addressed by
// index — the shape chaos scenarios script against.
type Fleet struct {
	Proxies []*Proxy
}

// NewFleet builds one proxy per backend target.
func NewFleet(targets []string) (*Fleet, error) {
	f := &Fleet{}
	for _, t := range targets {
		pr, err := New(t)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("chaos: proxy for %s: %w", t, err)
		}
		f.Proxies = append(f.Proxies, pr)
	}
	return f, nil
}

// URLs lists the proxies' base URLs in target order.
func (f *Fleet) URLs() []string {
	out := make([]string, len(f.Proxies))
	for i, pr := range f.Proxies {
		out[i] = pr.URL()
	}
	return out
}

// Close shuts every proxy down.
func (f *Fleet) Close() {
	for _, pr := range f.Proxies {
		pr.Close()
	}
}
