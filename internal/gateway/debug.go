package gateway

import (
	"io"
	"net/http"

	"repro/internal/obs"
)

// handleDebugTrace resolves a trace ID fleet-wide: the gateway does not
// know which backend served a session (trailers go to the client, not
// back to the gateway state), so it fans the lookup out across its
// backends and relays the first hit. The X-Vcodec-Backend response
// header names the backend the timeline came from.
func (g *Gateway) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := obs.SanitizeTraceID(r.URL.Query().Get("id"))
	if id == "" {
		http.Error(w, "missing or malformed id parameter", http.StatusBadRequest)
		return
	}
	for _, b := range g.backends {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			b.url+"/debug/vcodec/trace?id="+id, nil)
		if err != nil {
			continue
		}
		resp, err := g.pollC.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(TrailerBackend, b.url)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	http.Error(w, "trace id unknown on every backend", http.StatusNotFound)
}
