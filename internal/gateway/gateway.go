// Package gateway is the fleet front for vcodecd: one HTTP endpoint that
// routes /encode sessions across N encode backends and keeps serving when
// a backend is slow, dead, or draining.
//
// # Routing policy
//
// Every PollInterval the gateway polls each backend's /healthz (liveness,
// drain state) and /metrics (occupancy gauges). A new session is
// dispatched to the eligible backend — alive, not draining, circuit
// breaker closed — with the least load, where load is the larger of the
// gateway's own in-flight count for that backend and the backend's
// self-reported active+queued sessions. Ties break first toward the
// backend reporting the lowest QoS degradation level (a session placed
// there encodes at higher quality, and new load steers away from the
// part of the fleet already trading quality for latency), then toward
// the backend that has served the fewest sessions.
//
// # Retry semantics
//
// A session is idempotently re-dispatchable for exactly as long as zero
// response bytes have been forwarded to the client: the upload is teed
// into a replay buffer while it streams to the backend, so an attempt
// that dies before its first packet (connect failure, 503 admission
// rejection, first-packet timeout, connection reset) is retried on
// another eligible backend after a capped exponential backoff with
// jitter (a backend's Retry-After, when longer, is honored instead).
// The moment the first response byte reaches the client the session is
// committed: a later failure is terminal and is reported explicitly in
// the X-Vcodec-Error trailer — a truncated stream is never passed off
// as a complete one. Repeated attempt failures open a backend's circuit
// breaker (see backend), taking it out of rotation for a cooldown.
//
// # Drain ordering
//
// Draining a fleet is gateway first, then backends: Gateway.Drain stops
// admitting sessions (503 + Retry-After) while in-flight streams run to
// completion — including streams on draining backends, which vcodecd
// likewise finishes. Backends observed draining stop receiving new
// sessions at the next poll at the latest (dispatch also reacts to an
// admission 503 immediately), so rolling restarts rebalance live load
// onto the rest of the fleet without killing a single stream.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config sizes the gateway.
type Config struct {
	// Backends lists the vcodecd base URLs (e.g. http://10.0.0.7:8323).
	Backends []string
	// PollInterval is the health/metrics poll cadence (default 250ms).
	PollInterval time.Duration
	// ConnectTimeout bounds one attempt's dial + response headers
	// (default 2s).
	ConnectTimeout time.Duration
	// FirstPacketTimeout bounds headers → first response byte (default
	// 15s: the first packet is one encoded frame away, but the backend
	// may queue the session behind MaxQueued others first).
	FirstPacketTimeout time.Duration
	// StreamIdleTimeout bounds the gap between response bytes after the
	// stream is committed (default 60s). A stalled backend (partition,
	// wedged process) fails the session explicitly instead of hanging it.
	StreamIdleTimeout time.Duration
	// MaxAttempts caps dispatch attempts per session (default 4).
	MaxAttempts int
	// RetryBaseDelay/RetryMaxDelay shape the capped exponential backoff
	// between attempts (defaults 50ms / 1s); full jitter is applied.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerThreshold consecutive attempt failures open a backend's
	// circuit breaker for BreakerCooldown (defaults 3 / 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxSessions caps concurrent sessions at the gateway itself
	// (default 64); beyond it /encode sheds with 503 + Retry-After.
	MaxSessions int
	// ReplayLimit caps the upload replay buffer per session (default
	// 64 MiB). A session whose upload outgrows it keeps streaming but is
	// no longer re-dispatchable.
	ReplayLimit int
}

func (c Config) withDefaults() Config {
	def := func(d *time.Duration, v time.Duration) {
		if *d <= 0 {
			*d = v
		}
	}
	def(&c.PollInterval, 250*time.Millisecond)
	def(&c.ConnectTimeout, 2*time.Second)
	def(&c.FirstPacketTimeout, 15*time.Second)
	def(&c.StreamIdleTimeout, 60*time.Second)
	def(&c.RetryBaseDelay, 50*time.Millisecond)
	def(&c.RetryMaxDelay, time.Second)
	def(&c.BreakerCooldown, 2*time.Second)
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.ReplayLimit <= 0 {
		c.ReplayLimit = 64 << 20
	}
	return c
}

// Gateway routes encode sessions across a fleet of vcodecd backends.
type Gateway struct {
	cfg      Config
	backends []*backend
	mux      *http.ServeMux
	client   *http.Client // session transport (no global timeout: streams)
	pollC    *http.Client // health transport (short timeout)
	m        metrics
	start    time.Time

	routeHist    *obs.Histogram // arrival → commit (first byte to client)
	relayGapHist *obs.Histogram // gap between committed-stream chunks

	draining atomic.Bool
	active   atomic.Int64

	pollStop chan struct{}
	pollDone sync.WaitGroup
}

// New builds the gateway and starts its health pollers. Callers must
// Close it to stop them.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	g := &Gateway{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		client: &http.Client{},
		pollC:  &http.Client{Timeout: cfg.ConnectTimeout},
		start:  time.Now(),

		routeHist:    obs.NewHistogram("gateway_route_seconds", "session arrival to backend-stream commit"),
		relayGapHist: obs.NewHistogram("gateway_relay_gap_seconds", "gap between relayed stream chunks"),

		pollStop: make(chan struct{}),
	}
	for _, u := range cfg.Backends {
		g.backends = append(g.backends, &backend{url: strings.TrimRight(u, "/")})
	}
	g.mux.HandleFunc("/encode", g.handleEncode)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/debug/vcodec/trace", g.handleDebugTrace)
	for _, b := range g.backends {
		g.pollDone.Add(1)
		go g.pollLoop(b)
	}
	return g, nil
}

// Handler returns the HTTP handler tree (/encode, /healthz, /metrics).
func (g *Gateway) Handler() http.Handler { return g.mux }

// Drain begins graceful shutdown: new sessions are shed with 503 while
// in-flight streams (wherever their backend is) run to completion, or
// until ctx expires. Safe to call more than once.
func (g *Gateway) Drain(ctx context.Context) error {
	g.draining.Store(true)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if g.active.Load() == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Close stops the health pollers and the session transport. Call after
// Drain has returned.
func (g *Gateway) Close() {
	select {
	case <-g.pollStop:
	default:
		close(g.pollStop)
	}
	g.pollDone.Wait()
	g.client.CloseIdleConnections()
	g.pollC.CloseIdleConnections()
}

// pollLoop keeps one backend's health view fresh. The first poll runs
// immediately so the gateway is routable as soon as a backend is.
func (g *Gateway) pollLoop(b *backend) {
	defer g.pollDone.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-g.pollStop
		cancel()
	}()
	tick := time.NewTicker(g.cfg.PollInterval)
	defer tick.Stop()
	for {
		b.poll(ctx, g.pollC)
		select {
		case <-tick.C:
		case <-g.pollStop:
			return
		}
	}
}

// pick selects the least-loaded eligible backend, skipping those in
// tried (this session's failed attempts) while an untried one exists.
// Load ties break toward the backend with the lowest reported QoS
// degradation level, then toward the fewest sessions routed.
func (g *Gateway) pick(tried map[*backend]bool) *backend {
	now := time.Now()
	best := func(skipTried bool) *backend {
		var sel *backend
		var selLoad, selRouted int64
		var selQos int
		for _, b := range g.backends {
			if !b.eligible(now) || (skipTried && tried[b]) {
				continue
			}
			load, routed, qos := b.load(), b.sessionsRouted.Load(), b.qosLevel()
			if sel == nil || load < selLoad ||
				(load == selLoad && (qos < selQos || (qos == selQos && routed < selRouted))) {
				sel, selLoad, selRouted, selQos = b, load, routed, qos
			}
		}
		return sel
	}
	if b := best(true); b != nil {
		return b
	}
	// Every eligible backend has already failed this session once;
	// retrying one of them (after backoff) still beats failing the
	// session while the fleet looks alive.
	return best(false)
}

// backoff returns the pre-attempt delay: capped exponential with full
// jitter, stretched to a backend-advertised Retry-After when longer.
func (g *Gateway) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := g.cfg.RetryBaseDelay << (attempt - 1)
	if d > g.cfg.RetryMaxDelay || d <= 0 {
		d = g.cfg.RetryMaxDelay
	}
	d = time.Duration(rand.Int64N(int64(d)) + 1) // full jitter in (0, d]
	if retryAfter > d {
		d = retryAfter
		if cap := 4 * g.cfg.RetryMaxDelay; d > cap {
			d = cap
		}
	}
	return d
}

// shed rejects a session at the gateway with 503 + Retry-After.
func (g *Gateway) shed(w http.ResponseWriter, msg string) {
	g.m.sessionsRejected.Add(1)
	w.Header().Set("Retry-After", "1")
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// handleEncode runs one gateway session: admit, pick a backend, relay the
// stream; retry while re-dispatch is safe, fail explicitly once it isn't.
func (g *Gateway) handleEncode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a YUV4MPEG2 stream", http.StatusMethodNotAllowed)
		return
	}
	if g.draining.Load() {
		g.shed(w, "gateway: draining, not admitting sessions")
		return
	}
	if g.active.Add(1) > int64(g.cfg.MaxSessions) {
		g.active.Add(-1)
		g.shed(w, "gateway: session limit reached")
		return
	}
	defer g.active.Add(-1)
	g.m.sessionsTotal.Add(1)
	begin := time.Now()

	// Trace identity: one ID per session, across every dispatch attempt.
	// An inbound X-Vcodec-Trace (sanitized) is honored so an upstream
	// caller can stitch its own traces through; otherwise the gateway
	// mints. The ID travels to the backend as a request header and comes
	// back to the client in both sides' trailers.
	traceID := obs.SanitizeTraceID(r.Header.Get(obs.TraceIDHeader))
	if traceID == "" {
		traceID = obs.NewTraceID()
	}

	upload := newReplayUpload(r.Body, g.cfg.ReplayLimit)
	defer upload.close()
	tried := make(map[*backend]bool)
	var lastErr error
	retryAfter := time.Duration(0)
	for attempt := 1; attempt <= g.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(g.backoff(attempt-1, retryAfter)):
			case <-r.Context().Done():
				g.m.sessionsFailed.Add(1)
				return // client gone; nothing to answer
			}
			g.m.retriesTotal.Add(1)
		}
		b := g.pick(tried)
		if b == nil {
			lastErr = errors.New("no eligible backend (all dead, draining, or breaker-open)")
			// Health may flip on the next poll; the backoff loop keeps
			// trying until attempts run out.
			retryAfter = g.cfg.PollInterval
			continue
		}
		g.m.attemptsTotal.Add(1)
		res := g.tryBackend(w, r, b, upload, begin, attempt, traceID)
		switch res.kind {
		case attemptCommitted:
			return // stream fully handled (success or explicit in-band error)
		case attemptClientError:
			return // 4xx relayed verbatim; retrying cannot fix the request
		case attemptBusy:
			// Admission 503: the backend works, it is just full — do not
			// feed the breaker, do honor its Retry-After.
			tried[b], lastErr, retryAfter = true, res.err, res.retryAfter
		case attemptFailed:
			tried[b], lastErr, retryAfter = true, res.err, 0
			b.noteFailure(g.cfg.BreakerThreshold, g.cfg.BreakerCooldown)
		}
		if !upload.replayable() {
			lastErr = fmt.Errorf("upload exceeded the %d-byte replay buffer, cannot re-dispatch (last error: %w)", g.cfg.ReplayLimit, lastErr)
			break
		}
		if r.Context().Err() != nil {
			g.m.sessionsFailed.Add(1)
			return
		}
	}
	g.m.sessionsFailed.Add(1)
	log.Printf("gateway: session %s failed after %d attempts: %v", traceID, g.cfg.MaxAttempts, lastErr)
	w.Header().Set("Retry-After", "1")
	// Terminal failure happens before any body byte, so the trace ID can
	// still ride a plain response header — load tools keep the identity
	// of sessions that never placed.
	w.Header().Set(TrailerTrace, traceID)
	http.Error(w, fmt.Sprintf("gateway: session failed after %d attempts: %v", g.cfg.MaxAttempts, lastErr),
		http.StatusServiceUnavailable)
}

// attemptResult classifies one dispatch attempt.
type attemptKind int

const (
	attemptCommitted   attemptKind = iota // response bytes reached the client
	attemptBusy                           // backend 503 (admission/draining)
	attemptFailed                         // connect/timeout/reset before commit
	attemptClientError                    // backend 4xx, relayed verbatim
)

type attemptResult struct {
	kind       attemptKind
	err        error
	retryAfter time.Duration
}

// tryBackend runs one dispatch attempt against b. It returns
// attemptCommitted once any response byte has been written to the client
// — from that point the attempt owns the session to its end, and a
// mid-stream failure is reported in the X-Vcodec-Error trailer rather
// than by retry.
func (g *Gateway) tryBackend(w http.ResponseWriter, r *http.Request, b *backend, upload *replayUpload, begin time.Time, attempt int, traceID string) attemptResult {
	b.active.Add(1)
	defer b.active.Add(-1)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	body := upload.newAttempt()
	// Closing the attempt unblocks any transport goroutine still reading
	// it (reads are buffer-backed, so no upload byte is lost) — the next
	// attempt can start immediately without racing this one.
	defer body.Close()

	u := b.url + "/encode"
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
	if err != nil {
		return attemptResult{kind: attemptFailed, err: err}
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	// Propagate the session's trace identity: the backend keys its
	// flight recorder by this ID, so the gateway trailer and the backend
	// timeline name the same session.
	req.Header.Set(obs.TraceIDHeader, traceID)

	// Phase 1: dial + response headers, bounded by ConnectTimeout.
	connT := time.AfterFunc(g.cfg.ConnectTimeout, cancel)
	resp, err := g.client.Do(req)
	connT.Stop()
	if err != nil {
		return attemptResult{kind: attemptFailed, err: fmt.Errorf("%s: %w", b.url, err)}
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return attemptResult{
			kind:       attemptBusy,
			err:        fmt.Errorf("%s: 503: %s", b.url, strings.TrimSpace(string(msg))),
			retryAfter: time.Duration(ra) * time.Second,
		}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The request itself is bad; every backend would refuse it the
		// same way. Relay the verdict verbatim.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		http.Error(w, strings.TrimSpace(string(msg)), resp.StatusCode)
		return attemptResult{kind: attemptClientError}
	case resp.StatusCode != http.StatusOK:
		return attemptResult{kind: attemptFailed, err: fmt.Errorf("%s: unexpected status %d", b.url, resp.StatusCode)}
	}

	// Phase 2: first response byte, bounded by FirstPacketTimeout. Until
	// it arrives nothing has been promised to the client and the session
	// is still re-dispatchable.
	buf := make([]byte, 32<<10)
	firstT := time.AfterFunc(g.cfg.FirstPacketTimeout, cancel)
	n, err := resp.Body.Read(buf)
	firstT.Stop()
	if n == 0 {
		if err == io.EOF {
			err = errors.New("empty response stream")
		}
		return attemptResult{kind: attemptFailed, err: fmt.Errorf("%s: awaiting first packet: %w", b.url, err)}
	}

	// Commit: relay headers and the first chunk. From here on the
	// attempt is the session.
	b.sessionsRouted.Add(1)
	routeDur := time.Since(begin)
	g.m.routeNs.Add(routeDur.Nanoseconds())
	g.routeHist.Observe(routeDur)
	g.m.sessionsRouted.Add(1)
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	// resp.Trailer is pre-populated with the backend's declared trailer
	// names at header-parse time (the client moves them out of the Trailer
	// header), so it is the declaration list to forward. The gateway's own
	// trailers ride along; TrailerError and TrailerTrace may already be
	// among the backend's, so they are deduplicated here.
	trailers := []string{TrailerBackend, TrailerAttempts, TrailerError, TrailerTrace}
	for name := range resp.Trailer {
		if name != TrailerError && name != TrailerTrace {
			trailers = append(trailers, name)
		}
	}
	w.Header().Set("Trailer", strings.Join(trailers, ", "))

	werr := g.relay(w, rc, resp, buf, n, cancel)

	// Trailers: the backend's own (available after its body is fully
	// read), plus where the session ran and how hard it was to place.
	for name, vals := range resp.Trailer {
		if len(vals) > 0 {
			w.Header().Set(name, vals[0])
		}
	}
	w.Header().Set(TrailerBackend, b.url)
	w.Header().Set(TrailerAttempts, strconv.Itoa(attempt))
	// Set explicitly (not only via the backend's echoed trailer): the
	// gateway's trailer carries the ID even against a backend build that
	// does not echo it.
	w.Header().Set(TrailerTrace, traceID)
	if werr != nil {
		// Mid-stream death: the stream is truncated and says so. The
		// brokenness is the backend's, not the request's — feed the
		// breaker so the next sessions steer away.
		b.noteFailure(g.cfg.BreakerThreshold, g.cfg.BreakerCooldown)
		g.m.sessionsFailed.Add(1)
		w.Header().Set(TrailerError, fmt.Sprintf("gateway: stream from %s died mid-session: %v", b.url, werr))
		return attemptResult{kind: attemptCommitted, err: werr}
	}
	b.noteSuccess()
	return attemptResult{kind: attemptCommitted}
}

// relay pumps the committed response stream to the client, flushing per
// chunk and failing a stall via StreamIdleTimeout. Returns nil on clean
// EOF from the backend.
func (g *Gateway) relay(w http.ResponseWriter, rc *http.ResponseController, resp *http.Response, buf []byte, n int, cancel context.CancelFunc) error {
	idleT := time.AfterFunc(g.cfg.StreamIdleTimeout, cancel)
	defer idleT.Stop()
	lastChunk := time.Now()
	for {
		if n > 0 {
			if _, err := w.Write(buf[:n]); err != nil {
				return fmt.Errorf("client write: %w", err)
			}
			_ = rc.Flush()
			g.m.bytesRelayed.Add(int64(n))
		}
		var err error
		n, err = resp.Body.Read(buf)
		idleT.Reset(g.cfg.StreamIdleTimeout)
		// Gap between successive backend chunks — the client-visible
		// stream smoothness, one observation per chunk.
		now := time.Now()
		g.relayGapHist.Observe(now.Sub(lastChunk))
		lastChunk = now
		if err == io.EOF {
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return fmt.Errorf("client write: %w", werr)
				}
				_ = rc.Flush()
				g.m.bytesRelayed.Add(int64(n))
			}
			return nil
		}
		if err != nil {
			return err
		}
	}
}
