package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/gateway/chaos"
	"repro/internal/server"
	"repro/internal/video"
)

// testConfig keeps the control loops fast enough for tests without
// changing any semantics.
func testConfig(backends ...string) Config {
	return Config{
		Backends:           backends,
		PollInterval:       25 * time.Millisecond,
		ConnectTimeout:     2 * time.Second,
		FirstPacketTimeout: 20 * time.Second,
		RetryBaseDelay:     5 * time.Millisecond,
		RetryMaxDelay:      50 * time.Millisecond,
		BreakerCooldown:    300 * time.Millisecond,
	}
}

func newBackend(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Drain(context.Background()); err != nil {
			t.Errorf("backend drain: %v", err)
		}
		s.Close()
	})
	return s, ts
}

func newGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts
}

// waitEligible blocks until the gateway's pollers have marked want
// backends routable.
func waitEligible(t *testing.T, g *Gateway, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := 0
		for _, b := range g.backends {
			if b.eligible(time.Now()) {
				n++
			}
		}
		if n == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d eligible backends, want %d", n, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func y4mBody(t *testing.T, frames []*frame.Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := frame.WriteY4M(&buf, frames, 30, 1); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func offlinePackets(t *testing.T, frames []*frame.Frame, qp int) [][]byte {
	t.Helper()
	want, _, err := codec.EncodePackets(codec.Config{
		Qp: qp, FPS: 30, Searcher: core.New(core.DefaultParams), Workers: 1,
	}, frames)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// encodeVerified runs one session through url and byte-verifies the
// stream against want, returning the response for trailer checks.
func encodeVerified(t *testing.T, url string, qp int, body []byte, want [][]byte) *http.Response {
	t.Helper()
	// qoslevel=0 pins the session out of the backend's QoS controller:
	// under -race the encoder is slow enough to trip degradation, which
	// would legitimately change the bytes being compared.
	resp, err := http.Post(fmt.Sprintf("%s/encode?qp=%d&qoslevel=0", url, qp), "video/x-yuv4mpeg", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	verifyStream(t, resp, want)
	return resp
}

// verifyStream drains resp's packet stream, byte-verifying against want
// and failing on an error trailer. It closes the body.
func verifyStream(t *testing.T, resp *http.Response, want [][]byte) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	pr := codec.NewPacketReader(resp.Body)
	for n := 0; ; n++ {
		idx, data, err := pr.ReadPacket()
		if err == io.EOF {
			if n != len(want) {
				t.Fatalf("%d packets, want %d", n, len(want))
			}
			break
		}
		if err != nil {
			t.Fatalf("packet %d: %v", n, err)
		}
		if idx != n || !bytes.Equal(data, want[n]) {
			t.Fatalf("packet %d differs from offline encoder", n)
		}
	}
	if errT := resp.Trailer.Get(TrailerError); errT != "" {
		t.Fatalf("error trailer: %s", errT)
	}
}

// TestGatewayRoutesAndVerifies is the tentpole acceptance path: concurrent
// sessions through the gateway spread across both backends, every stream
// is byte-identical to the offline encoder, and the backend's trailers
// arrive intact with the gateway's own appended.
func TestGatewayRoutesAndVerifies(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 5, 7)
	body := y4mBody(t, frames)
	want := offlinePackets(t, frames, 15)

	_, b1 := newBackend(t, server.Config{})
	_, b2 := newBackend(t, server.Config{})
	g, ts := newGateway(t, testConfig(b1.URL, b2.URL))
	waitEligible(t, g, 2)

	const sessions = 6
	var wg sync.WaitGroup
	backendsSeen := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := encodeVerified(t, ts.URL, 15, body, want)
			backendsSeen[i] = resp.Trailer.Get(TrailerBackend)
			if got := resp.Trailer.Get(server.TrailerFrames); got != "5" {
				t.Errorf("frames trailer %q, want 5", got)
			}
			if got := resp.Trailer.Get(TrailerAttempts); got != "1" {
				t.Errorf("attempts trailer %q, want 1", got)
			}
		}(i)
	}
	wg.Wait()
	seen := map[string]int{}
	for _, b := range backendsSeen {
		seen[b]++
	}
	if len(seen) != 2 {
		t.Fatalf("least-loaded routing used %d backends for %d concurrent sessions: %v", len(seen), sessions, seen)
	}
	if n := g.m.retriesTotal.Load(); n != 0 {
		t.Fatalf("%d retries on a healthy fleet", n)
	}
	if n := g.m.sessionsRouted.Load(); n != sessions {
		t.Fatalf("sessionsRouted %d, want %d", n, sessions)
	}
}

// TestGatewayRetriesBusyBackend: a backend that sheds the first attempt
// with 503 (admission control) gets the session back after the advertised
// Retry-After; the stream still verifies and the breaker stays closed —
// busy is not broken.
func TestGatewayRetriesBusyBackend(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 4, 3)
	body := y4mBody(t, frames)
	want := offlinePackets(t, frames, 18)

	_, real := newBackend(t, server.Config{})
	var rejected sync.Once
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shed := false
		if r.URL.Path == "/encode" {
			rejected.Do(func() { shed = true })
		}
		if shed {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "draining queue full", http.StatusServiceUnavailable)
			return
		}
		real.Config.Handler.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	g, ts := newGateway(t, testConfig(flaky.URL))
	waitEligible(t, g, 1)

	resp := encodeVerified(t, ts.URL, 18, body, want)
	if got := resp.Trailer.Get(TrailerAttempts); got != "2" {
		t.Fatalf("attempts trailer %q, want 2", got)
	}
	if n := g.m.retriesTotal.Load(); n != 1 {
		t.Fatalf("retriesTotal %d, want 1", n)
	}
	if g.backends[0].breakerOpen(time.Now()) {
		t.Fatal("admission 503 fed the circuit breaker")
	}
	if n := g.backends[0].attemptFailures.Load(); n != 0 {
		t.Fatalf("admission 503 charged %d attempt failures", n)
	}
}

// TestGatewayFailsOverDeadBackend: a backend that never answers health
// polls is not routed to; sessions land on the live one without retries.
func TestGatewayFailsOverDeadBackend(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 4, 5)
	body := y4mBody(t, frames)
	want := offlinePackets(t, frames, 16)

	// A port that was just listening and no longer is: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	_, live := newBackend(t, server.Config{})
	g, ts := newGateway(t, testConfig(deadURL, live.URL))
	waitEligible(t, g, 1)

	resp := encodeVerified(t, ts.URL, 16, body, want)
	if got := resp.Trailer.Get(TrailerBackend); got != live.URL {
		t.Fatalf("routed to %q, want %q", got, live.URL)
	}
	if n := g.m.retriesTotal.Load(); n != 0 {
		t.Fatalf("%d retries despite an eligible live backend", n)
	}

	// The gateway's own health view names the dead backend.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var view struct {
		Status   string        `json:"status"`
		Eligible int           `json:"backends_eligible"`
		Backends []backendView `json:"backends"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if hz.StatusCode != http.StatusOK || view.Status != "ok" || view.Eligible != 1 {
		t.Fatalf("healthz %d %q eligible=%d, want 200 ok 1", hz.StatusCode, view.Status, view.Eligible)
	}
	alive := 0
	for _, b := range view.Backends {
		if b.Alive {
			alive++
		}
	}
	if alive != 1 {
		t.Fatalf("healthz reports %d alive backends, want 1", alive)
	}
}

// rstHandler hijacks the connection and aborts it with linger 0 — the
// half-dead backend whose /healthz answers but whose /encode path resets.
func rstBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","sessions_active":0,"sessions_queued":0}`)
		case "/metrics":
			fmt.Fprint(w, "vcodecd_sessions_active 0\nvcodecd_sessions_queued 0\n")
		default:
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			conn.Close()
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestGatewayBreakerOpensOnEncodeFailures: repeated connection resets on
// /encode open the breaker even though /healthz keeps answering, the
// session fails with an explicit 503 (never a truncated 200), and the
// gateway's health flips to no-eligible-backend.
func TestGatewayBreakerOpensOnEncodeFailures(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 3, 9)
	body := y4mBody(t, frames)

	evil := rstBackend(t)
	cfg := testConfig(evil.URL)
	cfg.MaxAttempts = 4
	cfg.BreakerThreshold = 3
	g, ts := newGateway(t, cfg)
	waitEligible(t, g, 1)

	resp, err := http.Post(ts.URL+"/encode?qp=16", "video/x-yuv4mpeg", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(msg), "attempts") {
		t.Fatalf("failure not explained: %q", msg)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("terminal 503 missing Retry-After")
	}
	if n := g.backends[0].breakerTrips.Load(); n == 0 {
		t.Fatal("breaker never tripped")
	}
	if !g.backends[0].breakerOpen(time.Now()) {
		t.Fatal("breaker not open after consecutive resets")
	}
	if n := g.m.sessionsFailed.Load(); n != 1 {
		t.Fatalf("sessionsFailed %d, want 1", n)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d with breaker open on the only backend, want 503", hz.StatusCode)
	}

	// After the cooldown the half-open probe lets a session through again
	// (it still resets — the breaker must re-open immediately).
	time.Sleep(cfg.BreakerCooldown + 50*time.Millisecond)
	if !g.backends[0].eligible(time.Now()) {
		t.Fatal("backend not half-open after cooldown")
	}
	trips := g.backends[0].breakerTrips.Load()
	resp2, err := http.Post(ts.URL+"/encode?qp=16", "video/x-yuv4mpeg", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if n := g.backends[0].breakerTrips.Load(); n <= trips {
		t.Fatalf("half-open probe failure did not re-open the breaker (trips %d → %d)", trips, n)
	}
}

// y4mPrefix returns the upload bytes up to (not including) frame n — the
// lever that keeps a session provably mid-stream: the backend cannot
// finish encoding frames it has not received.
func y4mPrefix(t *testing.T, body []byte, n int) []byte {
	t.Helper()
	off := 0
	for i := 0; i <= n; i++ {
		idx := bytes.Index(body[off:], []byte("FRAME"))
		if idx < 0 {
			t.Fatalf("fewer than %d frames in upload", n)
		}
		off += idx + 1
	}
	return body[:off-1]
}

// heldSession starts a gateway session whose upload is fed through a
// pipe, sends the first nFrames frames, and returns once the response
// headers are in.
func heldSession(t *testing.T, url string, body []byte, nFrames int) (*http.Response, *io.PipeWriter) {
	t.Helper()
	rd, wr := io.Pipe()
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(url+"/encode?qp=16", "video/x-yuv4mpeg", rd)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	if _, err := wr.Write(y4mPrefix(t, body, nFrames)); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-respCh:
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, msg)
		}
		return resp, wr
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("no response while session active")
	}
	return nil, nil
}

// TestGatewayMidStreamKillExplicitError is the backend-crash contract:
// once bytes have been relayed, a killed backend must surface as an
// explicit X-Vcodec-Error trailer on the (already committed) stream — a
// truncated session is never passed off as a complete one — and the
// gateway must not retry past the commit point.
func TestGatewayMidStreamKillExplicitError(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 20, 7)
	body := y4mBody(t, frames)

	_, real := newBackend(t, server.Config{})
	proxy, err := chaos.New(strings.TrimPrefix(real.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	g, ts := newGateway(t, testConfig(proxy.URL()))
	waitEligible(t, g, 1)

	// Hold the upload at 5 frames: the backend cannot finish the clip, so
	// the kill below is guaranteed to land mid-stream.
	resp, wr := heldSession(t, ts.URL, body, 5)
	defer resp.Body.Close()
	pr := codec.NewPacketReader(resp.Body)
	for i := 0; i < 2; i++ { // commit is certain: records crossed the gateway
		if _, _, err := pr.ReadPacket(); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	if n := proxy.KillActive(); n == 0 {
		t.Fatal("no connections to kill")
	}
	wr.Close()
	// Drain what remains; the stream must end (cut mid-record or not)
	// rather than hang.
	for {
		if _, _, err := pr.ReadPacket(); err != nil {
			break
		}
	}
	io.Copy(io.Discard, resp.Body)
	if errT := resp.Trailer.Get(TrailerError); !strings.Contains(errT, "mid-session") {
		t.Fatalf("error trailer %q does not report the mid-stream death", errT)
	}
	if n := g.m.retriesTotal.Load(); n != 0 {
		t.Fatalf("%d retries after the commit point", n)
	}
	if n := g.m.sessionsFailed.Load(); n != 1 {
		t.Fatalf("sessionsFailed %d, want 1", n)
	}
}

// TestGatewayStallWatchdog is the partition contract: a committed stream
// that goes silent (sockets open, no bytes) fails via StreamIdleTimeout
// with an explicit error instead of hanging the client forever.
func TestGatewayStallWatchdog(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 20, 3)
	body := y4mBody(t, frames)

	_, real := newBackend(t, server.Config{})
	proxy, err := chaos.New(strings.TrimPrefix(real.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cfg := testConfig(proxy.URL())
	cfg.StreamIdleTimeout = 250 * time.Millisecond
	g, ts := newGateway(t, cfg)
	_ = g
	waitEligible(t, g, 1)

	// Hold the upload at 5 frames so the stream is provably unfinished
	// when the partition hits.
	resp, wr := heldSession(t, ts.URL, body, 5)
	defer resp.Body.Close()
	defer wr.Close()
	pr := codec.NewPacketReader(resp.Body)
	if _, _, err := pr.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	// Partition: sockets stay open, no bytes move in either direction.
	proxy.SetPlan(chaos.Plan{Stall: true})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, _, err := pr.ReadPacket(); err != nil {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled stream hung past the idle timeout")
	}
	io.Copy(io.Discard, resp.Body)
	if errT := resp.Trailer.Get(TrailerError); !strings.Contains(errT, "mid-session") {
		t.Fatalf("error trailer %q does not report the stall", errT)
	}
}

// TestGatewayDrainingBackendExcluded: a backend in graceful drain stops
// receiving sessions at the next poll while staying "alive" in the view.
func TestGatewayDrainingBackendExcluded(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 3, 6)
	body := y4mBody(t, frames)
	want := offlinePackets(t, frames, 17)

	s1, b1 := newBackend(t, server.Config{})
	_, b2 := newBackend(t, server.Config{})
	g, ts := newGateway(t, testConfig(b1.URL, b2.URL))
	waitEligible(t, g, 2)

	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitEligible(t, g, 1)

	for i := 0; i < 3; i++ {
		resp := encodeVerified(t, ts.URL, 17, body, want)
		if got := resp.Trailer.Get(TrailerBackend); got != b2.URL {
			t.Fatalf("session %d routed to %q during backend drain, want %q", i, got, b2.URL)
		}
	}
	// The drained backend is alive-but-draining in the health view.
	for _, b := range g.backends {
		v := b.snapshot()
		if v.URL == b1.URL && (!v.Alive || !v.Draining) {
			t.Fatalf("drained backend view %+v, want alive and draining", v)
		}
	}
}

// TestGatewayDrain: the gateway's own graceful shutdown sheds new
// sessions with 503 while the in-flight stream completes and verifies.
func TestGatewayDrain(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 3, 4)
	body := y4mBody(t, frames)
	want := offlinePackets(t, frames, 18)

	_, b1 := newBackend(t, server.Config{})
	g, ts := newGateway(t, testConfig(b1.URL))
	waitEligible(t, g, 1)

	// Hold a session open mid-upload.
	rd, wr := io.Pipe()
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		// Pinned at level 0: the stream is byte-compared below and must
		// not be degraded by a race-slowed backend's QoS controller.
		resp, err := http.Post(ts.URL+"/encode?qp=18&qoslevel=0", "video/x-yuv4mpeg", rd)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	split := bytes.Index(body, []byte("FRAME"))
	split = bytes.Index(body[split+1:], []byte("FRAME")) + split + 1
	if _, err := wr.Write(body[:split]); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("no response while session active")
	}
	defer resp.Body.Close()

	drained := make(chan error, 1)
	go func() { drained <- g.Drain(context.Background()) }()

	// New sessions are shed…
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err := http.Post(ts.URL+"/encode?qp=18", "video/x-yuv4mpeg", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode == http.StatusServiceUnavailable {
			if r2.Header.Get("Retry-After") == "" {
				t.Fatal("drain 503 missing Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("new session got %d during drain", r2.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) with a session in flight", err)
	default:
	}

	// …while the held session streams to a verified completion.
	if _, err := wr.Write(body[split:]); err != nil {
		t.Fatal(err)
	}
	wr.Close()
	pr := codec.NewPacketReader(resp.Body)
	for n := 0; ; n++ {
		idx, data, err := pr.ReadPacket()
		if err == io.EOF {
			if n != len(want) {
				t.Fatalf("%d packets, want %d", n, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if idx != n || !bytes.Equal(data, want[n]) {
			t.Fatalf("packet %d differs from offline encoder", n)
		}
	}
	if errT := resp.Trailer.Get(TrailerError); errT != "" {
		t.Fatalf("error trailer: %s", errT)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not return after the session finished")
	}
}

// TestGatewayConfig covers the configuration edges: no backends is a
// construction error; a fleet with nothing reachable fails sessions with
// 503 after bounded attempts; 4xx from a backend is relayed verbatim and
// never retried.
func TestGatewayConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty backend list")
	}

	// Nothing reachable: bounded attempts, explicit 503.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()
	cfg := testConfig(deadURL)
	cfg.MaxAttempts = 2
	g, ts := newGateway(t, cfg)
	_ = g
	resp, err := http.Post(ts.URL+"/encode?qp=16", "video/x-yuv4mpeg", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with no reachable backend, want 503", resp.StatusCode)
	}

	// 4xx relays verbatim, no retry.
	_, b1 := newBackend(t, server.Config{})
	g2, ts2 := newGateway(t, testConfig(b1.URL))
	waitEligible(t, g2, 1)
	resp2, err := http.Post(ts2.URL+"/encode?qp=99", "video/x-yuv4mpeg", strings.NewReader("YUV4MPEG2 W128 H96\n"))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want backend's 400", resp2.StatusCode)
	}
	if !strings.Contains(string(msg), "qp") {
		t.Fatalf("backend's 400 body not relayed: %q", msg)
	}
	if n := g2.m.retriesTotal.Load(); n != 0 {
		t.Fatalf("%d retries on a 4xx", n)
	}

	// Gateway metrics expose the counters.
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, wantStr := range []string{
		"gateway_sessions_total", "gateway_retries_total",
		"gateway_backend_up{backend=", "gateway_backend_breaker_open{backend=",
	} {
		if !strings.Contains(string(text), wantStr) {
			t.Fatalf("metrics missing %q:\n%s", wantStr, text)
		}
	}
}

// fakeQosBackend is a health-endpoint-only backend reporting a fixed
// occupancy and QoS degradation level (no /metrics, so the poller keeps
// the /healthz numbers).
func fakeQosBackend(t *testing.T, active, qosLevel int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":          "ok",
			"sessions_active": active,
			"sessions_queued": 0,
			"qos_level":       qosLevel,
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestGatewayPrefersLessDegradedBackend pins the QoS-aware placement
// rule: on a load tie the router picks the backend reporting the lowest
// degradation level (listed first here, so a naive first-wins scan would
// get it wrong) — but load still dominates, so an idle deeply-degraded
// backend beats a busy healthy one. The re-exported per-backend QoS
// gauge and the /healthz field ride along.
func TestGatewayPrefersLessDegradedBackend(t *testing.T) {
	degraded := fakeQosBackend(t, 1, 2)
	healthy := fakeQosBackend(t, 1, 0)
	g, ts := newGateway(t, testConfig(degraded.URL, healthy.URL))
	waitEligible(t, g, 2)

	if got := g.backends[0].qosLevel(); got != 2 {
		t.Fatalf("polled qos level %d, want 2", got)
	}
	if b := g.pick(nil); b.url != healthy.URL {
		t.Errorf("load tie routed to %s (qos 2), want %s (qos 0)", b.url, healthy.URL)
	}

	// Observability: the per-backend gauge and the healthz view.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	wantGauge := fmt.Sprintf("gateway_backend_qos_level{backend=%q} 2", degraded.URL)
	if !strings.Contains(string(text), wantGauge) {
		t.Errorf("metrics missing %q:\n%s", wantGauge, text)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(hz), `"qos_level":2`) {
		t.Errorf("healthz missing backend qos_level: %s", hz)
	}

	// Load dominates: an idle backend at the deepest level still wins
	// over a busy healthy one.
	idleDegraded := fakeQosBackend(t, 0, 3)
	g2, _ := newGateway(t, testConfig(healthy.URL, idleDegraded.URL))
	waitEligible(t, g2, 2)
	if b := g2.pick(nil); b.url != idleDegraded.URL {
		t.Errorf("routed to %s, want idle %s (QoS is a tiebreak, not primary)", b.url, idleDegraded.URL)
	}
}
