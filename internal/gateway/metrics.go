package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Trailer names the gateway adds to (or sets on) the packet stream.
const (
	// TrailerBackend names the backend that served the session.
	TrailerBackend = "X-Vcodec-Backend"
	// TrailerAttempts is how many dispatch attempts the session took.
	TrailerAttempts = "X-Vcodec-Attempts"
	// TrailerError mirrors the backend trailer name: the gateway sets it
	// itself when a committed stream dies mid-session, so a client checks
	// one trailer for both failure sources.
	TrailerError = "X-Vcodec-Error"
	// TrailerTrace is the session's trace ID: minted here per session
	// (or accepted from the inbound request), forwarded to the backend
	// as a header, and echoed in both sides' trailers — the key into the
	// backend's /debug/vcodec/trace timeline.
	TrailerTrace = obs.TraceIDHeader
)

// metrics holds the gateway-side counters. Per-backend state lives on the
// backend structs and is snapshotted at exposition time.
type metrics struct {
	sessionsTotal    atomic.Int64 // admitted into the dispatch loop
	sessionsRouted   atomic.Int64 // committed to a backend stream
	sessionsRejected atomic.Int64 // shed at the gateway (draining/full)
	sessionsFailed   atomic.Int64 // exhausted attempts or died mid-stream
	retriesTotal     atomic.Int64 // re-dispatches (attempts beyond the first)
	attemptsTotal    atomic.Int64 // dispatch attempts, first ones included
	routeNs          atomic.Int64 // cumulative arrival→commit latency
	bytesRelayed     atomic.Int64 // response bytes forwarded to clients
}

// handleHealthz reports the gateway's own health plus the per-backend
// view. 503 while draining, or when not a single backend is eligible —
// a gateway that cannot place a session is down no matter how healthy
// its own process is.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	views := make([]backendView, 0, len(g.backends))
	eligible := 0
	for _, b := range g.backends {
		if b.eligible(now) {
			eligible++
		}
		views = append(views, b.snapshot())
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case g.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case eligible == 0:
		status, code = "no-eligible-backend", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":            status,
		"sessions_active":   g.active.Load(),
		"backends_total":    len(g.backends),
		"backends_eligible": eligible,
		"uptime_seconds":    int64(time.Since(g.start).Seconds()),
		"backends":          views,
	})
}

// handleMetrics exposes Prometheus text: gateway counters plus one
// labelled series per backend.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	gauge("gateway_sessions_active", "Sessions currently in the gateway")
	fmt.Fprintf(w, "gateway_sessions_active %d\n", g.active.Load())
	gauge("gateway_draining", "1 while the gateway refuses new sessions")
	drain := 0
	if g.draining.Load() {
		drain = 1
	}
	fmt.Fprintf(w, "gateway_draining %d\n", drain)

	c("gateway_sessions_total", "Sessions admitted into dispatch", g.m.sessionsTotal.Load())
	c("gateway_sessions_routed_total", "Sessions committed to a backend stream", g.m.sessionsRouted.Load())
	c("gateway_sessions_rejected_total", "Sessions shed at the gateway", g.m.sessionsRejected.Load())
	c("gateway_sessions_failed_total", "Sessions that exhausted attempts or died mid-stream", g.m.sessionsFailed.Load())
	c("gateway_attempts_total", "Backend dispatch attempts", g.m.attemptsTotal.Load())
	c("gateway_retries_total", "Re-dispatches after a failed attempt", g.m.retriesTotal.Load())
	c("gateway_route_ns_total", "Cumulative arrival-to-commit routing latency", g.m.routeNs.Load())
	c("gateway_bytes_relayed_total", "Response bytes forwarded to clients", g.m.bytesRelayed.Load())

	gauge("gateway_backend_up", "1 if the backend's last health poll succeeded")
	gauge("gateway_backend_draining", "1 if the backend reports draining")
	gauge("gateway_backend_breaker_open", "1 if the circuit breaker rejects dispatch")
	gauge("gateway_backend_sessions_active", "Gateway sessions in flight on the backend")
	gauge("gateway_backend_reported_load", "Backend self-reported active+queued sessions")
	gauge("gateway_backend_qos_level", "Backend self-reported QoS degradation level")
	// The per-backend counter families need their metadata emitted once,
	// before the per-backend loop interleaves their samples.
	counterFamily := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	counterFamily("gateway_backend_sessions_routed_total", "Sessions committed to this backend")
	counterFamily("gateway_backend_attempt_failures_total", "Dispatch attempts this backend failed")
	counterFamily("gateway_backend_breaker_trips_total", "Times this backend's circuit breaker opened")
	for _, b := range g.backends {
		v := b.snapshot()
		bin := func(x bool) int {
			if x {
				return 1
			}
			return 0
		}
		l := fmt.Sprintf("{backend=%q}", v.URL)
		fmt.Fprintf(w, "gateway_backend_up%s %d\n", l, bin(v.Alive))
		fmt.Fprintf(w, "gateway_backend_draining%s %d\n", l, bin(v.Draining))
		fmt.Fprintf(w, "gateway_backend_breaker_open%s %d\n", l, bin(v.BreakerOpen))
		fmt.Fprintf(w, "gateway_backend_sessions_active%s %d\n", l, v.Active)
		fmt.Fprintf(w, "gateway_backend_reported_load%s %d\n", l, int64(v.ReportedActive+v.ReportedQueued))
		fmt.Fprintf(w, "gateway_backend_qos_level%s %d\n", l, v.QosLevel)
		fmt.Fprintf(w, "gateway_backend_sessions_routed_total%s %d\n", l, v.Routed)
		fmt.Fprintf(w, "gateway_backend_attempt_failures_total%s %d\n", l, v.Failures)
		fmt.Fprintf(w, "gateway_backend_breaker_trips_total%s %d\n", l, b.breakerTrips.Load())
	}

	// Routing and relay latency distributions.
	g.routeHist.WriteProm(w)
	g.relayGapHist.WriteProm(w)
}
