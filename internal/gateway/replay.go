package gateway

import (
	"errors"
	"io"
	"sync"
)

// replayUpload tees a session's upload so the gateway can retry a failed
// dispatch without asking the client to resend. One reader goroutine owns
// the client body and appends to a shared buffer on demand; attempts
// consume only from that buffer, at their own absolute offset. The first
// attempt therefore streams the body live, a later attempt replays the
// retained prefix and then continues where the stream is.
//
// Routing every byte through the buffer is what makes attempts safely
// cancellable: an aborted attempt's pending Read returns immediately
// (errAttemptClosed) instead of blocking inside the client body — a
// transport write loop stuck on an idle client can never wedge the
// session — and a byte pulled from the client on a dead attempt's behalf
// still lands in the buffer, so the next attempt gets it. Attempts are
// created sequentially and the previous one is always closed first.
//
// An upload that outgrows the limit stops being re-dispatchable: the
// consumed prefix is trimmed instead of retained (memory stays bounded,
// the stream keeps flowing) and replayable turns false.
type replayUpload struct {
	mu   sync.Mutex
	cond *sync.Cond
	src  io.Reader

	buf      []byte // retained bytes [base, base+len(buf)) of the upload
	base     int    // absolute offset of buf[0]
	limit    int
	overflow bool // trimming began; replay impossible
	srcDone  bool
	srcErr   error
	wanted   bool // a consumer is waiting for bytes the buffer lacks
	finished bool // session over: reader goroutine should exit
}

func newReplayUpload(src io.Reader, limit int) *replayUpload {
	u := &replayUpload{src: src, limit: limit}
	u.cond = sync.NewCond(&u.mu)
	go u.readLoop()
	return u
}

// readLoop is the only reader of the client body. It pulls a chunk
// whenever a consumer is starved, so upload backpressure still reaches
// the client (the reader never runs ahead of the attempt).
func (u *replayUpload) readLoop() {
	chunk := make([]byte, 32<<10)
	for {
		u.mu.Lock()
		for !u.wanted && !u.finished && !u.srcDone {
			u.cond.Wait()
		}
		if u.finished || u.srcDone {
			u.mu.Unlock()
			return
		}
		u.mu.Unlock()

		n, err := u.src.Read(chunk) // outside the lock: may block for long

		u.mu.Lock()
		if n > 0 {
			u.buf = append(u.buf, chunk[:n]...)
			if !u.overflow && u.base+len(u.buf) > u.limit {
				u.overflow = true
			}
		}
		if err != nil {
			u.srcDone, u.srcErr = true, err
		}
		u.wanted = false
		u.cond.Broadcast()
		u.mu.Unlock()
	}
}

// replayable reports whether a fresh attempt can still reproduce the full
// upload (no byte has been trimmed).
func (u *replayUpload) replayable() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return !u.overflow
}

// close ends the session: the reader goroutine exits (once any in-flight
// src read returns) and blocked consumers unwedge.
func (u *replayUpload) close() {
	u.mu.Lock()
	u.finished = true
	u.cond.Broadcast()
	u.mu.Unlock()
}

// newAttempt returns the request body for one dispatch attempt: the
// buffered prefix first, then the live tail. Close the previous attempt
// before creating the next.
func (u *replayUpload) newAttempt() *attemptBody {
	return &attemptBody{u: u}
}

// attemptBody is one attempt's view of the upload.
type attemptBody struct {
	u      *replayUpload
	off    int // absolute offset of the next byte to consume
	closed bool
}

var errAttemptClosed = errors.New("gateway: attempt body closed")

func (a *attemptBody) Read(p []byte) (int, error) {
	u := a.u
	u.mu.Lock()
	defer u.mu.Unlock()
	for {
		if a.closed || u.finished {
			return 0, errAttemptClosed
		}
		if a.off < u.base {
			// Only possible for a stale attempt racing the overflow trim;
			// stale attempts are closed, so this is a can't-happen guard.
			return 0, errAttemptClosed
		}
		if a.off < u.base+len(u.buf) {
			n := copy(p, u.buf[a.off-u.base:])
			a.off += n
			if u.overflow {
				// Replay is off; drop the consumed prefix to bound memory.
				cut := a.off - u.base
				u.buf = u.buf[cut:]
				u.base = a.off
			}
			return n, nil
		}
		if u.srcDone {
			return 0, u.srcErr
		}
		u.wanted = true
		u.cond.Broadcast() // wake the reader
		u.cond.Wait()
	}
}

// Close aborts the attempt: its pending and future Reads fail fast. Both
// the transport (honoring the RoundTripper contract) and the gateway's
// own attempt teardown call it; it is idempotent.
func (a *attemptBody) Close() error {
	a.u.mu.Lock()
	a.closed = true
	a.u.cond.Broadcast()
	a.u.mu.Unlock()
	return nil
}
