package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"testing"

	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/video"
)

// TestTracePropagation pins the fleet-wide trace contract: an inbound
// X-Vcodec-Trace header survives gateway dispatch into the backend's
// flight recorder and comes back in the gateway trailer; sessions
// without one get a minted ID; and the gateway's /debug/vcodec/trace
// proxy resolves either kind across its backends.
func TestTracePropagation(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 5, 7)
	body := y4mBody(t, frames)
	want := offlinePackets(t, frames, 16)
	_, bts := newBackend(t, server.Config{})
	g, gts := newGateway(t, testConfig(bts.URL))
	waitEligible(t, g, 1)

	// Client-supplied trace ID, honored end to end.
	const chosen = "fleet-test-trace-01"
	req, err := http.NewRequest(http.MethodPost,
		fmt.Sprintf("%s/encode?qp=16&qoslevel=0", gts.URL), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "video/x-yuv4mpeg")
	req.Header.Set(obs.TraceIDHeader, chosen)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	verifyStream(t, resp, want)
	if got := resp.Trailer.Get(TrailerTrace); got != chosen {
		t.Errorf("gateway trace trailer %q, want %q", got, chosen)
	}
	wantFrames, _ := strconv.Atoi(resp.Trailer.Get(server.TrailerFrames))

	// The gateway's debug proxy finds the backend's timeline under the
	// same ID — proof the header crossed the dispatch boundary.
	rec := fetchTrace(t, gts.URL, chosen)
	if rec.TraceID != chosen {
		t.Errorf("backend recorded trace %q, want %q", rec.TraceID, chosen)
	}
	if rec.Frames != wantFrames || rec.Frames != len(frames) {
		t.Errorf("trace has %d frames, trailer said %d, input had %d",
			rec.Frames, wantFrames, len(frames))
	}
	if !rec.Done {
		t.Error("trace not marked done after session completed")
	}

	// No inbound ID: the gateway mints one, and it resolves the same way.
	resp2 := encodeVerified(t, gts.URL, 16, body, want)
	minted := resp2.Trailer.Get(TrailerTrace)
	if obs.SanitizeTraceID(minted) != minted || minted == "" {
		t.Fatalf("minted trace trailer %q is empty or malformed", minted)
	}
	if minted == chosen {
		t.Fatalf("minted ID collided with the client-chosen one")
	}
	if rec := fetchTrace(t, gts.URL, minted); rec.TraceID != minted {
		t.Errorf("minted trace resolves to %q", rec.TraceID)
	}

	// Unknown and malformed IDs.
	for id, wantCode := range map[string]int{
		"feedfacefeedface": http.StatusNotFound,
		"bad/../id":        http.StatusBadRequest,
	} {
		r, err := http.Get(gts.URL + "/debug/vcodec/trace?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != wantCode {
			t.Errorf("trace %q: status %d, want %d", id, r.StatusCode, wantCode)
		}
	}
}

// fetchTrace pulls one flight record through the gateway's debug proxy.
func fetchTrace(t *testing.T, gatewayURL, id string) obs.Record {
	t.Helper()
	resp, err := http.Get(gatewayURL + "/debug/vcodec/trace?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: status %d", id, resp.StatusCode)
	}
	if resp.Header.Get(TrailerBackend) == "" {
		t.Errorf("trace %s: proxy did not name the serving backend", id)
	}
	var rec obs.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("trace %s: %v", id, err)
	}
	return rec
}
