package hwmodel_test

import (
	"fmt"

	"repro/internal/hwmodel"
)

// Example compares the three architecture models under an easy-content
// workload (ACBM escalating on 2% of blocks).
func Example() {
	w := hwmodel.Workload{
		MBsPerFrame:  99, // QCIF
		FPS:          30,
		AvgPoints:    34,
		CriticalRate: 0.02,
		PBMPoints:    15,
	}
	reports, err := hwmodel.Compare(w, hwmodel.DefaultTech, 15)
	if err != nil {
		panic(err)
	}
	for _, r := range reports {
		fmt.Printf("%-14s %5.0f cycles/MB %4d PEs\n", r.Arch, r.CyclesPerMB, r.PEs)
	}
	// Output:
	// FSBM-systolic    985 cycles/MB  256 PEs
	// PBM-engine       256 cycles/MB   16 PEs
	// ACBM-shared      276 cycles/MB  256 PEs
}
