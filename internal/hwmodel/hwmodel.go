// Package hwmodel is a first-order analytical hardware cost model for
// block-matching motion estimation engines, in the style of early-stage
// architecture exploration for the paper's §5 future work: "innovative
// architectural solutions ... based on sharing common resources to FSBM
// and PBM architectures applied to portable multimedia devices".
//
// Three architectures are modelled:
//
//   - FSBMSystolic: the classical 16×16 processing-element systolic array
//     (one candidate SAD per cycle once the pipeline is full), the
//     architecture family of the authors' 270 MHz processing element [2].
//   - PBMEngine: a 16-PE row engine evaluating one candidate in 16 cycles
//     — sufficient for the handful of predictive candidates per block.
//   - ACBMShared: the paper's proposal — the PBM row engine is one row of
//     the systolic array; the remaining 240 PEs wake up only for critical
//     blocks. Idle PEs pay leakage only.
//
// The energy/area constants are representative 130 nm-class numbers
// (the paper's era); they are documented knobs, not silicon measurements.
// The model's value is *relative* comparison — cycles, utilisation and
// energy ratios between the three architectures under a workload measured
// by the experiment harness.
package hwmodel

import (
	"fmt"
	"math"
)

// Tech holds the technology constants of the model. The zero value is not
// usable; start from DefaultTech.
type Tech struct {
	EnergyPerAD   float64 // pJ per absolute-difference+accumulate op
	EnergyPerByte float64 // pJ per on-chip SRAM byte read
	LeakagePerPE  float64 // pJ per idle PE per cycle
	AreaPerPE     float64 // kGE per PE (gate equivalents, thousands)
	AreaSRAMPerKB float64 // kGE per KiB of search-window SRAM
}

// DefaultTech is a representative 130 nm operating point.
var DefaultTech = Tech{
	EnergyPerAD:   0.9,
	EnergyPerByte: 1.6,
	LeakagePerPE:  0.03,
	AreaPerPE:     2.1,
	AreaSRAMPerKB: 6.5,
}

// Workload is the per-sequence load measured by the encoder: how many
// macroblocks per second, and what the adaptive algorithm did on them.
type Workload struct {
	MBsPerFrame int
	FPS         float64
	// AvgPoints is the measured average candidate positions per MB
	// (Table 1 of the paper). For FSBM hardware this is the full count.
	AvgPoints float64
	// CriticalRate is the fraction of blocks ACBM escalates (0 for pure
	// PBM, 1 for pure FSBM).
	CriticalRate float64
	// PBMPoints is the average predictive-phase candidates per MB.
	PBMPoints float64
}

// Validate reports whether the workload is well formed.
func (w Workload) Validate() error {
	if w.MBsPerFrame <= 0 || w.FPS <= 0 {
		return fmt.Errorf("hwmodel: empty workload %+v", w)
	}
	if w.AvgPoints < 0 || w.CriticalRate < 0 || w.CriticalRate > 1 || w.PBMPoints < 0 {
		return fmt.Errorf("hwmodel: implausible workload %+v", w)
	}
	return nil
}

// Report is the model output for one architecture under one workload.
type Report struct {
	Arch           string
	CyclesPerMB    float64
	MinFreqMHz     float64 // frequency needed for real-time operation
	EnergyPerMB    float64 // nJ
	PowerMW        float64 // at MinFreqMHz (dynamic + leakage)
	Utilisation    float64 // busy PE-cycles / total PE-cycles
	AreaKGE        float64
	SRAMBytesPerMB float64 // search-window traffic
	PEs            int
}

// Arch is a motion estimation hardware architecture model.
type Arch interface {
	Name() string
	Estimate(w Workload, t Tech) (Report, error)
}

// blockPels is the macroblock area (16×16).
const blockPels = 256

// windowBytes returns the incremental search-window traffic per MB for a
// row-scan schedule: 16 new columns of the (16+2p)-tall window.
func windowBytes(p int) float64 { return 16 * float64(16+2*p) }

// FSBMSystolic is the full-search 2-D systolic array.
type FSBMSystolic struct {
	P int // search range (default 15)
}

// Name implements Arch.
func (f FSBMSystolic) Name() string { return "FSBM-systolic" }

func (f FSBMSystolic) p() int {
	if f.P > 0 {
		return f.P
	}
	return 15
}

// Estimate implements Arch. The array evaluates one candidate per cycle
// after a 16-cycle fill; every cycle all 256 PEs are busy during the
// search, plus an 8-candidate half-pel pass on the row engine.
func (f FSBMSystolic) Estimate(w Workload, t Tech) (Report, error) {
	if err := w.Validate(); err != nil {
		return Report{}, err
	}
	p := f.p()
	candidates := float64((2*p+1)*(2*p+1)) + 8
	cycles := candidates + 16 // pipeline fill
	mbsPerSec := float64(w.MBsPerFrame) * w.FPS
	adOps := candidates * blockPels
	sram := windowBytes(p)
	dynamic := adOps*t.EnergyPerAD + sram*t.EnergyPerByte
	// All PEs busy while searching: utilisation ≈ candidates/cycles.
	util := candidates / cycles
	leak := (1 - util) * 256 * cycles * t.LeakagePerPE
	area := 256*t.AreaPerPE + sramKB(p)*t.AreaSRAMPerKB
	return Report{
		Arch:           f.Name(),
		CyclesPerMB:    cycles,
		MinFreqMHz:     cycles * mbsPerSec / 1e6,
		EnergyPerMB:    (dynamic + leak) / 1000, // pJ → nJ
		PowerMW:        (dynamic + leak) * mbsPerSec * 1e-9,
		Utilisation:    util,
		AreaKGE:        area,
		SRAMBytesPerMB: sram,
		PEs:            256,
	}, nil
}

// PBMEngine is the 16-PE row engine for predictive search.
type PBMEngine struct {
	P int
}

// Name implements Arch.
func (e PBMEngine) Name() string { return "PBM-engine" }

func (e PBMEngine) p() int {
	if e.P > 0 {
		return e.P
	}
	return 15
}

// Estimate implements Arch. One candidate takes 16 cycles (one block row
// per cycle across 16 PEs).
func (e PBMEngine) Estimate(w Workload, t Tech) (Report, error) {
	if err := w.Validate(); err != nil {
		return Report{}, err
	}
	points := w.PBMPoints
	if points == 0 {
		points = w.AvgPoints
	}
	cycles := points*16 + 16 // +16 predictor fetch/setup
	mbsPerSec := float64(w.MBsPerFrame) * w.FPS
	adOps := points * blockPels
	// Predictive search touches only candidate blocks, not the window:
	// ~one block read per candidate plus the current block.
	sram := (points + 1) * blockPels
	dynamic := adOps*t.EnergyPerAD + sram*t.EnergyPerByte
	util := (points * 16) / cycles
	leak := (1 - util) * 16 * cycles * t.LeakagePerPE
	area := 16*t.AreaPerPE + sramKB(e.p())*t.AreaSRAMPerKB
	return Report{
		Arch:           e.Name(),
		CyclesPerMB:    cycles,
		MinFreqMHz:     cycles * mbsPerSec / 1e6,
		EnergyPerMB:    (dynamic + leak) / 1000,
		PowerMW:        (dynamic + leak) * mbsPerSec * 1e-9,
		Utilisation:    util,
		AreaKGE:        area,
		SRAMBytesPerMB: sram,
		PEs:            16,
	}, nil
}

// ACBMShared is the shared-resource architecture: the PBM row engine is
// the first row of the FSBM array; the full array powers up only for the
// critical fraction of blocks.
type ACBMShared struct {
	P int
}

// Name implements Arch.
func (a ACBMShared) Name() string { return "ACBM-shared" }

func (a ACBMShared) p() int {
	if a.P > 0 {
		return a.P
	}
	return 15
}

// Estimate implements Arch.
func (a ACBMShared) Estimate(w Workload, t Tech) (Report, error) {
	if err := w.Validate(); err != nil {
		return Report{}, err
	}
	p := a.p()
	fsbmCand := float64((2*p+1)*(2*p+1)) + 8
	pbmPts := w.PBMPoints
	if pbmPts == 0 {
		pbmPts = math.Max(w.AvgPoints-w.CriticalRate*fsbmCand, 8)
	}
	// Every block runs the PBM phase on the row engine; critical blocks
	// add a full-array pass.
	pbmCycles := pbmPts*16 + 16
	fsbmCycles := fsbmCand + 16
	cycles := pbmCycles + w.CriticalRate*fsbmCycles
	mbsPerSec := float64(w.MBsPerFrame) * w.FPS

	adOps := pbmPts*blockPels + w.CriticalRate*fsbmCand*blockPels
	sram := (pbmPts+1)*blockPels + w.CriticalRate*windowBytes(p)
	dynamic := adOps*t.EnergyPerAD + sram*t.EnergyPerByte
	// Leakage: the 240 extra PEs idle during the PBM phase of every block
	// (power gating is imperfect: model 20% residual leakage when gated).
	busyPECycles := pbmPts*16*16 + w.CriticalRate*fsbmCand*256
	totalPECycles := 256 * cycles
	util := busyPECycles / totalPECycles
	gatedLeak := 0.2 * (totalPECycles - busyPECycles) * t.LeakagePerPE
	area := 256*t.AreaPerPE + sramKB(p)*t.AreaSRAMPerKB
	return Report{
		Arch:           a.Name(),
		CyclesPerMB:    cycles,
		MinFreqMHz:     cycles * mbsPerSec / 1e6,
		EnergyPerMB:    (dynamic + gatedLeak) / 1000,
		PowerMW:        (dynamic + gatedLeak) * mbsPerSec * 1e-9,
		Utilisation:    util,
		AreaKGE:        area,
		SRAMBytesPerMB: sram,
		PEs:            256,
	}, nil
}

// sramKB is the search-window SRAM size in KiB for range p.
func sramKB(p int) float64 {
	side := float64(16 + 2*p)
	return side * side / 1024
}

// Compare evaluates all three architectures under one workload.
func Compare(w Workload, t Tech, p int) ([]Report, error) {
	archs := []Arch{FSBMSystolic{P: p}, PBMEngine{P: p}, ACBMShared{P: p}}
	out := make([]Report, 0, len(archs))
	for _, a := range archs {
		r, err := a.Estimate(w, t)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
