package hwmodel

import (
	"math"
	"testing"
)

// qcif30 is a representative QCIF@30fps workload with ACBM statistics in
// the range the experiments measure.
func qcif30(avgPoints, criticalRate, pbmPoints float64) Workload {
	return Workload{
		MBsPerFrame:  99,
		FPS:          30,
		AvgPoints:    avgPoints,
		CriticalRate: criticalRate,
		PBMPoints:    pbmPoints,
	}
}

func TestWorkloadValidate(t *testing.T) {
	bad := []Workload{
		{},
		{MBsPerFrame: 99, FPS: 30, CriticalRate: 1.5},
		{MBsPerFrame: 99, FPS: 30, AvgPoints: -1},
		{MBsPerFrame: -1, FPS: 30},
	}
	for _, w := range bad {
		if w.Validate() == nil {
			t.Errorf("workload %+v accepted", w)
		}
	}
	if err := qcif30(100, 0.1, 15).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFSBMSystolicRealtimeFrequency(t *testing.T) {
	// (31² + 8 + 16) cycles per MB × 2970 MB/s ≈ 2.9 MHz for QCIF@30 —
	// comfortably below the 270 MHz of the authors' PE [2]; and the model
	// must scale linearly with the workload.
	r, err := FSBMSystolic{}.Estimate(qcif30(969, 1, 0), DefaultTech)
	if err != nil {
		t.Fatal(err)
	}
	wantCycles := float64(31*31 + 8 + 16)
	if r.CyclesPerMB != wantCycles {
		t.Fatalf("cycles/MB = %v, want %v", r.CyclesPerMB, wantCycles)
	}
	wantFreq := wantCycles * 99 * 30 / 1e6
	if math.Abs(r.MinFreqMHz-wantFreq) > 1e-9 {
		t.Fatalf("freq = %v, want %v", r.MinFreqMHz, wantFreq)
	}
	if r.MinFreqMHz > 270 {
		t.Fatalf("FSBM array infeasible at 270 MHz for QCIF@30: %v MHz", r.MinFreqMHz)
	}
	if r.Utilisation <= 0.9 || r.Utilisation > 1 {
		t.Fatalf("utilisation = %v", r.Utilisation)
	}
}

func TestPBMEngineFarCheaperThanFSBM(t *testing.T) {
	w := qcif30(15, 0, 15)
	pbm, err := PBMEngine{}.Estimate(w, DefaultTech)
	if err != nil {
		t.Fatal(err)
	}
	fsbm, err := FSBMSystolic{}.Estimate(qcif30(969, 1, 0), DefaultTech)
	if err != nil {
		t.Fatal(err)
	}
	if pbm.EnergyPerMB*10 > fsbm.EnergyPerMB {
		t.Fatalf("PBM energy %v nJ not ≪ FSBM %v nJ", pbm.EnergyPerMB, fsbm.EnergyPerMB)
	}
	if pbm.AreaKGE >= fsbm.AreaKGE {
		t.Fatalf("PBM area %v not below FSBM %v", pbm.AreaKGE, fsbm.AreaKGE)
	}
}

func TestACBMSharedInterpolatesBetweenEndpoints(t *testing.T) {
	// At criticalRate 0 the shared architecture costs ~PBM energy plus
	// gated leakage; at 1 it approaches FSBM + PBM. Energy must be
	// monotone in the critical rate.
	prev := -1.0
	for _, cr := range []float64{0, 0.25, 0.5, 0.75, 1} {
		r, err := ACBMShared{}.Estimate(qcif30(15+cr*969, cr, 15), DefaultTech)
		if err != nil {
			t.Fatal(err)
		}
		if r.EnergyPerMB <= prev {
			t.Fatalf("energy not monotone in critical rate at %v: %v <= %v", cr, r.EnergyPerMB, prev)
		}
		prev = r.EnergyPerMB
	}
	fsbm, _ := FSBMSystolic{}.Estimate(qcif30(969, 1, 0), DefaultTech)
	lo, _ := ACBMShared{}.Estimate(qcif30(15, 0, 15), DefaultTech)
	if lo.EnergyPerMB >= fsbm.EnergyPerMB/3 {
		t.Fatalf("shared architecture at low critical rate saves too little: %v vs %v nJ",
			lo.EnergyPerMB, fsbm.EnergyPerMB)
	}
}

func TestACBMSharedMissAmericaVsForemanOperatingPoints(t *testing.T) {
	// Using measured Table 1 style numbers: Miss America (easy) vs
	// Foreman at low Qp (mostly critical).
	easy, err := ACBMShared{}.Estimate(qcif30(15, 0.01, 14), DefaultTech)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := ACBMShared{}.Estimate(qcif30(800, 0.8, 20), DefaultTech)
	if err != nil {
		t.Fatal(err)
	}
	if easy.PowerMW >= hard.PowerMW {
		t.Fatalf("easy content power %v mW >= hard %v mW", easy.PowerMW, hard.PowerMW)
	}
	if hard.MinFreqMHz > 270 {
		t.Fatalf("hard workload infeasible at 270 MHz: %v", hard.MinFreqMHz)
	}
}

func TestCompareReturnsAllArchitectures(t *testing.T) {
	reports, err := Compare(qcif30(100, 0.1, 15), DefaultTech, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	names := map[string]bool{}
	for _, r := range reports {
		names[r.Arch] = true
		if r.CyclesPerMB <= 0 || r.EnergyPerMB <= 0 || r.AreaKGE <= 0 {
			t.Fatalf("degenerate report %+v", r)
		}
		if r.Utilisation < 0 || r.Utilisation > 1 {
			t.Fatalf("utilisation out of range: %+v", r)
		}
	}
	for _, want := range []string{"FSBM-systolic", "PBM-engine", "ACBM-shared"} {
		if !names[want] {
			t.Fatalf("missing architecture %s", want)
		}
	}
	if _, err := Compare(Workload{}, DefaultTech, 15); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestSearchRangeScalesCosts(t *testing.T) {
	small, err := FSBMSystolic{P: 7}.Estimate(qcif30(233, 1, 0), DefaultTech)
	if err != nil {
		t.Fatal(err)
	}
	big, err := FSBMSystolic{P: 15}.Estimate(qcif30(969, 1, 0), DefaultTech)
	if err != nil {
		t.Fatal(err)
	}
	if small.CyclesPerMB >= big.CyclesPerMB {
		t.Fatal("cycles not increasing in p")
	}
	if small.AreaKGE >= big.AreaKGE {
		t.Fatal("SRAM area not increasing in p")
	}
	if small.SRAMBytesPerMB >= big.SRAMBytesPerMB {
		t.Fatal("window traffic not increasing in p")
	}
}
