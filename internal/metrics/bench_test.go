package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/frame"
)

// Kernel microbenchmarks, one sub-benchmark per registered ISA tier —
// the numbers behind the "SIMD ≥1.5× over SWAR" acceptance line:
//
//	go test -run=- -bench 'Kernel' -benchmem ./internal/metrics/
//
// The 16×16 shapes are the motion-search hot path; 8×8 is the chroma /
// sub-block shape.

func benchPlanes() (cur, ref *frame.Plane) {
	rng := rand.New(rand.NewSource(1234))
	cur = paddedPlane(rng, 352, 64, 16)
	ref = paddedPlane(rng, 352, 64, 16)
	return cur, ref
}

func benchEachISA(b *testing.B, fn func(b *testing.B)) {
	b.Helper()
	for _, isa := range KernelISAs() {
		restore, err := SetKernelISA(isa)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(isa, fn)
		restore()
	}
}

func BenchmarkKernelSAD16x16(b *testing.B) {
	cur, ref := benchPlanes()
	benchEachISA(b, func(b *testing.B) {
		b.SetBytes(16 * 16)
		var sink int
		for i := 0; i < b.N; i++ {
			sink += SAD(cur, 32, 16, ref, 33+i%4, 17, 16, 16)
		}
		benchSink = sink
	})
}

func BenchmarkKernelSAD8x8(b *testing.B) {
	cur, ref := benchPlanes()
	benchEachISA(b, func(b *testing.B) {
		b.SetBytes(8 * 8)
		var sink int
		for i := 0; i < b.N; i++ {
			sink += SAD(cur, 32, 16, ref, 33+i%4, 17, 8, 8)
		}
		benchSink = sink
	})
}

func BenchmarkKernelSADCapped16x16(b *testing.B) {
	cur, ref := benchPlanes()
	benchEachISA(b, func(b *testing.B) {
		b.SetBytes(16 * 16)
		var sink int
		for i := 0; i < b.N; i++ {
			// Cap high enough to never terminate: worst-case cost.
			sink += SADCapped(cur, 32, 16, ref, 33+i%4, 17, 16, 16, 1<<30)
		}
		benchSink = sink
	})
}

func BenchmarkKernelIntraSAD16x16(b *testing.B) {
	cur, _ := benchPlanes()
	benchEachISA(b, func(b *testing.B) {
		b.SetBytes(16 * 16)
		var sink int
		for i := 0; i < b.N; i++ {
			sink += IntraSAD(cur, 32+i%4, 16, 16, 16)
		}
		benchSink = sink
	})
}

func BenchmarkKernelHalfPelH16x16(b *testing.B) {
	cur, ref := benchPlanes()
	benchEachISA(b, func(b *testing.B) {
		b.SetBytes(16 * 16)
		var sink int
		for i := 0; i < b.N; i++ {
			sink += SADHalfPelPlane(cur, 32, 16, ref, 2*(33+i%4)+1, 2*17, 16, 16)
		}
		benchSink = sink
	})
}

func BenchmarkKernelHalfPelD16x16(b *testing.B) {
	cur, ref := benchPlanes()
	benchEachISA(b, func(b *testing.B) {
		b.SetBytes(16 * 16)
		var sink int
		for i := 0; i < b.N; i++ {
			sink += SADHalfPelPlane(cur, 32, 16, ref, 2*(33+i%4)+1, 2*17+1, 16, 16)
		}
		benchSink = sink
	})
}

func BenchmarkKernelHalfPelRing16x16(b *testing.B) {
	cur, ref := benchPlanes()
	benchEachISA(b, func(b *testing.B) {
		b.SetBytes(8 * 16 * 16)
		var ring [9]int
		for i := 0; i < b.N; i++ {
			SADHalfPelRing(cur, 32, 16, ref, 33+i%4, 17, 16, 16, &ring)
		}
		benchSink = ring[0]
	})
}

// benchSink defeats dead-code elimination of the benchmark bodies.
var benchSink int
