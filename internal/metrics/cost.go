package metrics

// Lagrangian J(mv) = D(mv) + λ·R(mv) is the rate-constrained matching cost
// from §2.1 of the paper. D is a SAD-domain distortion and R a bit count,
// so λ must be calibrated for the SAD domain.

// LambdaSAD returns the Lagrange multiplier used with SAD distortion for a
// given H.263 quantiser parameter. The paper only states that λ is
// proportional to the quantisation step; we use the common SAD-domain
// choice λ = 0.85·Qp expressed in fixed point (×256) to stay integer-only.
func LambdaSAD(qp int) int {
	if qp < 1 {
		qp = 1
	}
	return (218 * qp) // 0.85 * 256 ≈ 218; cost = SAD*256 + lambda*bits later /256
}

// RDCost returns J = D + λ·R in integer arithmetic, with λ from LambdaSAD
// (fixed point ×256). D is a SAD; bits is R(mv).
func RDCost(sad, bits, qp int) int {
	return sad + (LambdaSAD(qp)*bits+128)>>8
}
