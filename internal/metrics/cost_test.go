package metrics

import "testing"

func TestLambdaSADProportionalToQp(t *testing.T) {
	if LambdaSAD(10) >= LambdaSAD(20) {
		t.Fatal("lambda must grow with Qp")
	}
	if LambdaSAD(0) != LambdaSAD(1) {
		t.Fatal("Qp below 1 must clamp to 1")
	}
}

func TestRDCostZeroBitsIsSAD(t *testing.T) {
	if RDCost(1234, 0, 16) != 1234 {
		t.Fatalf("RDCost with 0 bits = %d", RDCost(1234, 0, 16))
	}
}

func TestRDCostMonotone(t *testing.T) {
	// More bits or more SAD can never lower the cost.
	if RDCost(100, 10, 16) <= RDCost(100, 0, 16) {
		t.Fatal("cost not increasing in bits")
	}
	if RDCost(200, 5, 16) <= RDCost(100, 5, 16) {
		t.Fatal("cost not increasing in SAD")
	}
	// Higher Qp weighs bits more heavily.
	lo := RDCost(0, 100, 4)
	hi := RDCost(0, 100, 30)
	if hi <= lo {
		t.Fatal("bit penalty not increasing in Qp")
	}
}
