package metrics

// Deviation accumulates the SAD_deviation statistic from §3.1:
//
//	SAD_deviation = Σ_{u,v} (SAD(u,v) − SAD_min)
//
// over every candidate position a search evaluates. Feed each candidate's
// SAD with Add; Value folds in the final minimum. The zero value is ready
// to use.
type Deviation struct {
	sum int64
	min int
	n   int
}

// Add records one evaluated candidate's SAD.
func (d *Deviation) Add(sad int) {
	if d.n == 0 || sad < d.min {
		d.min = sad
	}
	d.sum += int64(sad)
	d.n++
}

// N returns the number of candidates recorded.
func (d *Deviation) N() int { return d.n }

// Min returns SAD_min over the recorded candidates (0 if none).
func (d *Deviation) Min() int {
	if d.n == 0 {
		return 0
	}
	return d.min
}

// Value returns Σ(SAD − SAD_min). It is 0 when fewer than two candidates
// were recorded.
func (d *Deviation) Value() int64 {
	if d.n == 0 {
		return 0
	}
	return d.sum - int64(d.n)*int64(d.min)
}

// Reset clears the accumulator for reuse.
func (d *Deviation) Reset() { *d = Deviation{} }
