package metrics

import (
	"testing"
	"testing/quick"
)

func TestDeviationEmpty(t *testing.T) {
	var d Deviation
	if d.Value() != 0 || d.N() != 0 || d.Min() != 0 {
		t.Fatal("zero-value Deviation not empty")
	}
}

func TestDeviationKnown(t *testing.T) {
	var d Deviation
	for _, s := range []int{10, 4, 7, 4, 30} {
		d.Add(s)
	}
	// min = 4, sum = 55, n = 5 → 55 - 20 = 35.
	if d.Min() != 4 {
		t.Fatalf("Min = %d", d.Min())
	}
	if d.Value() != 35 {
		t.Fatalf("Value = %d, want 35", d.Value())
	}
	if d.N() != 5 {
		t.Fatalf("N = %d", d.N())
	}
	d.Reset()
	if d.N() != 0 || d.Value() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestDeviationSingleCandidateIsZero(t *testing.T) {
	var d Deviation
	d.Add(1234)
	if d.Value() != 0 {
		t.Fatalf("single candidate deviation = %d", d.Value())
	}
}

func TestDeviationProperties(t *testing.T) {
	// Value is non-negative and invariant under adding the current minimum.
	f := func(vals []uint16) bool {
		var d Deviation
		for _, v := range vals {
			d.Add(int(v))
		}
		if d.Value() < 0 {
			return false
		}
		if d.N() > 0 {
			before := d.Value()
			d.Add(d.Min())
			if d.Value() != before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeviationOrderIndependent(t *testing.T) {
	a := []int{9, 1, 5, 5, 200, 3}
	var d1, d2 Deviation
	for _, v := range a {
		d1.Add(v)
	}
	for i := len(a) - 1; i >= 0; i-- {
		d2.Add(a[i])
	}
	if d1.Value() != d2.Value() {
		t.Fatal("Deviation depends on insertion order")
	}
}
