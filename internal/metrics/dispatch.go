package metrics

import (
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/frame"
)

// The SAD family dispatches through a package-level function-pointer
// table selected once at init from the host CPU: the fastest available
// ISA wins, and every slower tier stays registered as a fallback
// (avx2 → sse2 → swar → scalar). All tables are bit-identical by
// construction and by the differential/fuzz tests in dispatch_test.go —
// which ISA is active can never change a SAD value, a search winner or
// an encoded bit. The exported entry points in sad.go keep the guard
// conditions (width multiple of 8, lane-overflow bounds) uniform across
// ISAs, so the dispatch decision is the same on every architecture and
// the scalar tails run identically everywhere.
//
// The scalar loops remain the reference oracles; the SWAR kernels are
// the portable vector tier; per-architecture assembly (sad_amd64.s)
// plugs in above them. To add an ISA: implement the kernelTable
// contract in a dispatch_<arch>.go + .s pair, return it from
// archKernelTables (fastest last), and the differential tests pick it
// up automatically via KernelISAs.

// kernelTable is one ISA's implementation of the vector-eligible SAD
// family. Callers (the exported functions in sad.go) validate the
// geometry before dispatching:
//
//   - sad, planeSum: w%8 == 0, w ≤ 256, block in-plane
//   - sadCapped: w%8 == 0, w·h ≤ 256; must fold and early-exit on the
//     cumulative sum after every row, returning the exact per-row
//     early-termination value of sadCappedScalar
//   - intraSAD: like sad, with µ precomputed by the caller
//   - hpH/hpV/hpD (+Capped): fused half-pel probes anchored at the
//     integer position (rx, ry); phase offsets are implied by the slot.
//     w%8 == 0; uncapped w ≤ 256, capped w·h ≤ 256; rows rx..rx+w(+1)
//     and ry..ry+h(+1) in-plane per the phase
//   - ring: all 8 half-pel neighbours of (rx, ry) in one pass,
//     w%8 == 0, w·h ≤ 256, whole ring in-plane. Returns the probe
//     array BY VALUE with the centre slot zero — an out-pointer through
//     an indirect call would escape the caller's stack array to the
//     heap on every refinement; the exported SADHalfPelRing restores
//     the caller's centre slot to honour its contract
type kernelTable struct {
	name string

	sad       func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int
	sadCapped func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int
	planeSum  func(p *frame.Plane, x, y, w, h int) int
	intraSAD  func(p *frame.Plane, x, y, w, h, mu int) int

	hpH func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int
	hpV func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int
	hpD func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int

	hpHCapped func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int
	hpVCapped func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int
	hpDCapped func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int

	ring func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) [9]int
}

// activeKernels is the table every exported SAD entry point reads. It is
// an atomic pointer so tests and experiments can swap ISAs (SetKernelISA)
// while encodes run under the race detector; on amd64 the load compiles
// to a plain MOV.
var activeKernels atomic.Pointer[kernelTable]

// kernelTables holds every ISA available on this host, slowest first.
var kernelTables []*kernelTable

// kernelInitNote records anything surprising during init (an env
// override that named an unavailable ISA); surfaced by the dispatch
// sanity check.
var kernelInitNote string

// KernelEnvVar, when set to an ISA name (scalar, swar, sse2, avx2),
// overrides the automatic pick at process start — the escape hatch for
// pinning benchmarks and for triaging a suspect kernel in production.
const KernelEnvVar = "VCODEC_SAD_KERNEL"

func kernels() *kernelTable { return activeKernels.Load() }

func init() {
	kernelTables = []*kernelTable{scalarTable(), swarTable()}
	kernelTables = append(kernelTables, archKernelTables()...)
	best := kernelTables[len(kernelTables)-1]
	if env := os.Getenv(KernelEnvVar); env != "" {
		if t := kernelTableByName(env); t != nil {
			best = t
		} else {
			kernelInitNote = KernelEnvVar + "=" + env + " names an unavailable ISA; using " + best.name
		}
	}
	activeKernels.Store(best)
}

func kernelTableByName(name string) *kernelTable {
	for _, t := range kernelTables {
		if t.name == name {
			return t
		}
	}
	return nil
}

// ActiveKernelISA names the SAD kernel tier currently dispatched to:
// "scalar", "swar", or an architecture-specific tier such as "sse2" or
// "avx2".
func ActiveKernelISA() string { return kernels().name }

// KernelISAs lists the tiers available on this host in fallback order,
// slowest first; the last entry is the automatic pick.
func KernelISAs() []string {
	names := make([]string, len(kernelTables))
	for i, t := range kernelTables {
		names[i] = t.name
	}
	return names
}

// KernelInitNote reports anything surprising about kernel selection at
// process start ("" when the automatic pick ran cleanly).
func KernelInitNote() string { return kernelInitNote }

// SetKernelISA activates the named kernel tier and returns a restore
// function, or an error naming the available tiers if the ISA does not
// exist on this host. It is safe to call while encodes run (the switch
// is atomic, and every tier is bit-identical), but it is process-global:
// intended for tests, benchmarks and the acbmbench ISA sweeps, not for
// per-session tuning.
func SetKernelISA(name string) (restore func(), err error) {
	t := kernelTableByName(name)
	if t == nil {
		avail := append([]string(nil), KernelISAs()...)
		sort.Strings(avail)
		return nil, &UnknownISAError{Name: name, Available: avail}
	}
	prev := activeKernels.Swap(t)
	return func() { activeKernels.Store(prev) }, nil
}

// UnknownISAError reports a SetKernelISA name not available on this host.
type UnknownISAError struct {
	Name      string
	Available []string
}

func (e *UnknownISAError) Error() string {
	msg := "metrics: unknown SAD kernel ISA " + e.Name + " (available:"
	for _, a := range e.Available {
		msg += " " + a
	}
	return msg + ")"
}

// scalarTable adapts the reference loops to the table contract. It is
// the ground truth every other tier is differential-tested against.
func scalarTable() *kernelTable {
	return &kernelTable{
		name:      "scalar",
		sad:       sadScalar,
		sadCapped: sadCappedScalar,
		planeSum:  planeSumScalar,
		intraSAD:  intraSADMuScalar,
		hpH: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
			return sadHalfPelPlaneScalar(cur, cx, cy, ref, 2*rx+1, 2*ry, w, h)
		},
		hpV: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
			return sadHalfPelPlaneScalar(cur, cx, cy, ref, 2*rx, 2*ry+1, w, h)
		},
		hpD: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
			return sadHalfPelPlaneScalar(cur, cx, cy, ref, 2*rx+1, 2*ry+1, w, h)
		},
		hpHCapped: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
			return sadHalfPelPlaneCappedScalar(cur, cx, cy, ref, 2*rx+1, 2*ry, w, h, cap)
		},
		hpVCapped: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
			return sadHalfPelPlaneCappedScalar(cur, cx, cy, ref, 2*rx, 2*ry+1, w, h, cap)
		},
		hpDCapped: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
			return sadHalfPelPlaneCappedScalar(cur, cx, cy, ref, 2*rx+1, 2*ry+1, w, h, cap)
		},
		ring: sadHalfPelRingScalar,
	}
}

// swarTable is the portable 8-px/uint64 vector tier — the previous
// fastest path, now the universal fallback beneath the per-ISA assembly.
func swarTable() *kernelTable {
	return &kernelTable{
		name:      "swar",
		sad:       sadSWAR,
		sadCapped: sadCappedSWAR,
		planeSum:  planeSumSWAR,
		intraSAD:  intraSADSWAR,
		hpH:       sadHalfPelH,
		hpV:       sadHalfPelV,
		hpD:       sadHalfPelD,
		hpHCapped: sadHalfPelHCapped,
		hpVCapped: sadHalfPelVCapped,
		hpDCapped: sadHalfPelDCapped,
		ring:      sadHalfPelRingSWAR,
	}
}

// sadHalfPelRingScalar is the reference ring: eight independent scalar
// probes in the same slot order as the fused kernels.
func sadHalfPelRingScalar(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) (out [9]int) {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			out[(dy+1)*3+dx+1] = sadHalfPelPlaneScalar(cur, cx, cy, ref, 2*rx+dx, 2*ry+dy, w, h)
		}
	}
	return out
}
