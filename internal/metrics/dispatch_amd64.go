//go:build amd64

package metrics

import "repro/internal/frame"

// This file provides the amd64 kernel tiers: SSE2 (architectural
// baseline — every amd64 CPU has it) built on PSADBW, the packed
// absolute-difference instruction that folds 16 byte differences into
// two quadword sums, and AVX2 where the CPU and OS support it (256-bit
// VPSADBW, two rows per iteration for the dominant 16-wide macroblock).
//
// The assembly in sad_amd64.s only sees flat byte pointers and strides;
// the wrappers below resolve plane geometry, so the .s file stays free
// of Go struct offsets. Every kernel computes the mathematically exact
// sum (and for capped kernels, the exact cumulative per-row sums), so
// they are bit-identical to the scalar reference by construction — and
// pinned to it by the differential and fuzz tests in dispatch_test.go.
//
// H.263 rounding notes:
//   - horizontal/vertical half-pel (a+b+1)>>1 is exactly PAVGB
//   - diagonal (a+b+c+d+2)>>2 is NOT a PAVGB composition (PAVGB of
//     PAVGBs rounds twice); the diagonal kernels widen to 16-bit words,
//     add the bias, shift, and pack back before PSADBW

// Assembly kernels (sad_amd64.s). All pointers address the first byte
// of the block; rows advance by the stride. w%8 == 0, w ≥ 8, h ≥ 1.
//
//go:noescape
func sadBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int

//go:noescape
func sadCappedBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h, cap int) int

//go:noescape
func planeSumBlkSSE2(p *byte, stride, w, h int) int

//go:noescape
func intraSADBlkSSE2(p *byte, stride, w, h, mu int) int

//go:noescape
func sadHpHBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int

//go:noescape
func sadHpVBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int

//go:noescape
func sadHpDBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int

//go:noescape
func sadHpHCappedBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h, cap int) int

//go:noescape
func sadHpVCappedBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h, cap int) int

//go:noescape
func sadHpDCappedBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h, cap int) int

// sadHpRingBlkSSE2 takes refTop = &ref.Pix[(ry-1)*stride+rx-1] (the row
// above the anchor, one column left) and writes the eight probe SADs to
// out slots 0..8, skipping the centre slot 4.
//
//go:noescape
func sadHpRingBlkSSE2(cur *byte, curStride int, refTop *byte, refStride int, w, h int, out *[9]int)

//go:noescape
func sadBlkAVX2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int

//go:noescape
func intraSADBlkAVX2(p *byte, stride, w, h, mu int) int

//go:noescape
func sadHpHBlkAVX2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int

//go:noescape
func sadHpVBlkAVX2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int

//go:noescape
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)

// cpuFeatureSet reports the SIMD tiers this host's CPU + OS support.
type cpuFeatureSet struct {
	avx, avx2 bool
}

// cpuFeatures probes CPUID. AVX/AVX2 require the CPU flag, OSXSAVE, and
// the OS actually saving the YMM state (XGETBV XCR0 bits 1|2) — the
// standard three-part check: a hypervisor can expose AVX2 in CPUID
// while masking XSAVE, and issuing VEX ops there would fault.
func cpuFeatures() cpuFeatureSet {
	var f cpuFeatureSet
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 1 {
		return f
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit != 0 {
		xcr0, _ := xgetbvAsm()
		if xcr0&0x6 == 0x6 && ecx1&avxBit != 0 {
			f.avx = true
		}
	}
	if f.avx && maxLeaf >= 7 {
		_, ebx7, _, _ := cpuidAsm(7, 0)
		if ebx7&(1<<5) != 0 {
			f.avx2 = true
		}
	}
	return f
}

// DetectedCPUFeatures lists the SIMD feature flags relevant to kernel
// selection that the host CPU (and OS) advertise, in ascending order.
func DetectedCPUFeatures() []string {
	feats := []string{"sse2"} // architectural baseline on amd64
	f := cpuFeatures()
	if f.avx {
		feats = append(feats, "avx")
	}
	if f.avx2 {
		feats = append(feats, "avx2")
	}
	return feats
}

// archKernelTables returns the amd64 assembly tiers, slowest first:
// SSE2 unconditionally, AVX2 when the host supports it.
func archKernelTables() []*kernelTable {
	tables := []*kernelTable{sse2Table()}
	if cpuFeatures().avx2 {
		tables = append(tables, avx2Table())
	}
	return tables
}

// pix returns the address of sample (x, y) — the base pointer handed to
// the assembly. Bounds are the caller's contract (block in-plane); the
// slice index check here still guards the first byte.
func pix(p *frame.Plane, x, y int) *byte {
	return &p.Pix[y*p.Stride+x]
}

func sse2Table() *kernelTable {
	return &kernelTable{
		name: "sse2",
		sad: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
			return sadBlkSSE2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h)
		},
		sadCapped: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
			return sadCappedBlkSSE2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h, cap)
		},
		planeSum: func(p *frame.Plane, x, y, w, h int) int {
			return planeSumBlkSSE2(pix(p, x, y), p.Stride, w, h)
		},
		intraSAD: func(p *frame.Plane, x, y, w, h, mu int) int {
			return intraSADBlkSSE2(pix(p, x, y), p.Stride, w, h, mu)
		},
		hpH: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
			return sadHpHBlkSSE2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h)
		},
		hpV: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
			return sadHpVBlkSSE2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h)
		},
		hpD: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
			return sadHpDBlkSSE2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h)
		},
		hpHCapped: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
			return sadHpHCappedBlkSSE2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h, cap)
		},
		hpVCapped: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
			return sadHpVCappedBlkSSE2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h, cap)
		},
		hpDCapped: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
			return sadHpDCappedBlkSSE2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h, cap)
		},
		ring: func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) (out [9]int) {
			sadHpRingBlkSSE2(pix(cur, cx, cy), cur.Stride,
				pix(ref, rx-1, ry-1), ref.Stride, w, h, &out)
			return out
		},
	}
}

// avx2Table overrides the kernels where 256-bit lanes pay: plain SAD
// (the motion-search workhorse), IntraSAD and the H/V half-pel probes.
// The capped, diagonal and ring kernels keep the SSE2 implementations —
// their per-row folds and 16-bit widening leave little for wider lanes,
// and table entries may come from different tiers as long as each one
// is bit-exact.
func avx2Table() *kernelTable {
	t := *sse2Table()
	t.name = "avx2"
	t.sad = func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
		return sadBlkAVX2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h)
	}
	t.intraSAD = func(p *frame.Plane, x, y, w, h, mu int) int {
		return intraSADBlkAVX2(pix(p, x, y), p.Stride, w, h, mu)
	}
	t.hpH = func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
		return sadHpHBlkAVX2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h)
	}
	t.hpV = func(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
		return sadHpVBlkAVX2(pix(cur, cx, cy), cur.Stride, pix(ref, rx, ry), ref.Stride, w, h)
	}
	return &t
}
