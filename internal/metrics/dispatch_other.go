//go:build !amd64

package metrics

// archKernelTables reports no architecture-specific kernel tiers: arm64
// and unknown ISAs run the portable SWAR tier exactly as before. (An
// arm64 UABDL/UADALP tier would slot in here.)
func archKernelTables() []*kernelTable { return nil }

// DetectedCPUFeatures lists the SIMD feature flags relevant to kernel
// selection that the host CPU advertises; empty off amd64.
func DetectedCPUFeatures() []string { return nil }
