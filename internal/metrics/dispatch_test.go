package metrics

import (
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/frame"
)

// withEachISA runs fn as a subtest once per kernel tier available on
// this host, with that tier active for the duration. On amd64 this
// covers scalar, swar, sse2 and (hardware permitting) avx2 — including
// the fallback path a machine without AVX2 would take, by pinning the
// lower tiers explicitly.
func withEachISA(t *testing.T, fn func(t *testing.T, isa string)) {
	t.Helper()
	for _, isa := range KernelISAs() {
		restore, err := SetKernelISA(isa)
		if err != nil {
			t.Fatalf("SetKernelISA(%q): %v", isa, err)
		}
		t.Run(isa, func(t *testing.T) { fn(t, isa) })
		restore()
	}
}

// TestKernelISAFallbackOrder pins the dispatch contract: scalar first,
// SWAR second, architecture tiers after, and the automatic pick is the
// last entry (unless the env override redirected it).
func TestKernelISAFallbackOrder(t *testing.T) {
	isas := KernelISAs()
	if len(isas) < 2 || isas[0] != "scalar" || isas[1] != "swar" {
		t.Fatalf("KernelISAs() = %v, want scalar,swar prefix", isas)
	}
	if os.Getenv(KernelEnvVar) == "" && KernelInitNote() == "" {
		if got, want := ActiveKernelISA(), isas[len(isas)-1]; got != want {
			t.Errorf("active ISA %q, want automatic pick %q", got, want)
		}
	}
}

// TestKernelDispatchSanity is the check bench-smoke runs in one-shot
// form: the selected tier must be one the detected CPU features
// actually support, and every advertised SIMD feature must have
// produced its tier.
func TestKernelDispatchSanity(t *testing.T) {
	feats := DetectedCPUFeatures()
	isas := KernelISAs()
	have := func(list []string, s string) bool {
		for _, v := range list {
			if v == s {
				return true
			}
		}
		return false
	}
	for _, tier := range isas {
		switch tier {
		case "scalar", "swar":
		default:
			if !have(feats, tier) && !(tier == "sse2" && len(feats) == 0) {
				t.Errorf("tier %q registered but not in detected features %v", tier, feats)
			}
		}
	}
	if have(feats, "avx2") && !have(isas, "avx2") {
		t.Errorf("CPU advertises avx2 but no avx2 tier registered (isas %v)", isas)
	}
	if !have(isas, ActiveKernelISA()) {
		t.Errorf("active ISA %q not among registered tiers %v", ActiveKernelISA(), isas)
	}
}

func TestSetKernelISAUnknown(t *testing.T) {
	_, err := SetKernelISA("neon")
	if err == nil {
		t.Fatal("SetKernelISA(neon) succeeded; want error")
	}
	ue, ok := err.(*UnknownISAError)
	if !ok {
		t.Fatalf("error type %T, want *UnknownISAError", err)
	}
	if ue.Name != "neon" || !strings.Contains(err.Error(), "scalar") {
		t.Errorf("error %q should name the ISA and list the available tiers", err)
	}
	if got := ActiveKernelISA(); got == "neon" {
		t.Error("failed SetKernelISA changed the active tier")
	}
}

// TestKernelTiersMatchScalar is the central differential test: every
// registered tier must return bit-identical values to the scalar
// reference (and therefore to the SWAR tier) for the whole SAD family,
// across widths that exercise 16-byte chunks, 8-byte tails and the
// scalar trailing columns, heights including the h=1 rows the capped
// mixed-width path issues, unaligned strides, and caps that terminate
// at every possible row.
func TestKernelTiersMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cur := paddedPlane(rng, 72, 40, 5)
	ref := paddedPlane(rng, 72, 40, 11)
	withEachISA(t, func(t *testing.T, isa string) {
		for _, w := range []int{4, 8, 12, 16, 20, 24, 32, 48} {
			for _, h := range []int{1, 2, 4, 8, 16} {
				for _, off := range [][4]int{{0, 0, 1, 1}, {3, 2, 17, 9}, {21, 13, 5, 23}, {48, 24, 24, 24}} {
					cx, cy, rx, ry := off[0], off[1], off[2], off[3]
					if cx+w > cur.W || cy+h > cur.H || rx+w+1 > ref.W || ry+h+1 > ref.H {
						continue
					}
					if got, want := SAD(cur, cx, cy, ref, rx, ry, w, h), sadScalar(cur, cx, cy, ref, rx, ry, w, h); got != want {
						t.Fatalf("SAD w=%d h=%d: got %d want %d", w, h, got, want)
					}
					if got, want := Mean(cur, cx, cy, w, h), (planeSumScalar(cur, cx, cy, w, h)+w*h/2)/(w*h); got != want {
						t.Fatalf("Mean w=%d h=%d: got %d want %d", w, h, got, want)
					}
					if got, want := IntraSAD(cur, cx, cy, w, h), intraSADScalar(cur, cx, cy, w, h); got != want {
						t.Fatalf("IntraSAD w=%d h=%d: got %d want %d", w, h, got, want)
					}
					// Caps spanning "exit at first row" to "never exit",
					// pinning both the exit decision and the exact
					// cumulative value returned at the exit row.
					full := sadScalar(cur, cx, cy, ref, rx, ry, w, h)
					for _, cap := range []int{0, full / 4, full / 2, full - 1, full, 1 << 30} {
						if got, want := SADCapped(cur, cx, cy, ref, rx, ry, w, h, cap), sadCappedScalar(cur, cx, cy, ref, rx, ry, w, h, cap); got != want {
							t.Fatalf("SADCapped w=%d h=%d cap=%d: got %d want %d", w, h, cap, got, want)
						}
					}
					// All three half-pel phases, uncapped and capped —
					// H.263 rounding ((a+b+1)>>1, (a+b+c+d+2)>>2) must
					// survive each tier's arithmetic exactly.
					for _, d := range [][2]int{{1, 0}, {0, 1}, {1, 1}} {
						hx, hy := 2*rx+d[0], 2*ry+d[1]
						if got, want := SADHalfPelPlane(cur, cx, cy, ref, hx, hy, w, h), sadHalfPelPlaneScalar(cur, cx, cy, ref, hx, hy, w, h); got != want {
							t.Fatalf("SADHalfPelPlane w=%d h=%d phase=%v: got %d want %d", w, h, d, got, want)
						}
						for _, cap := range []int{0, full / 2, 1 << 30} {
							if got, want := SADHalfPelPlaneCapped(cur, cx, cy, ref, hx, hy, w, h, cap), sadHalfPelPlaneCappedScalar(cur, cx, cy, ref, hx, hy, w, h, cap); got != want {
								t.Fatalf("SADHalfPelPlaneCapped w=%d h=%d phase=%v cap=%d: got %d want %d", w, h, d, cap, got, want)
							}
						}
					}
				}
			}
		}
	})
}

// TestRingAcrossISAs checks the fused ring kernel of every tier against
// eight independent scalar probes, and that the centre slot is left
// untouched.
func TestRingAcrossISAs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cur := paddedPlane(rng, 64, 40, 7)
	ref := paddedPlane(rng, 64, 40, 3)
	withEachISA(t, func(t *testing.T, isa string) {
		for _, sz := range [][2]int{{8, 8}, {16, 16}, {16, 8}, {8, 16}, {24, 8}} {
			w, h := sz[0], sz[1]
			for _, pos := range [][4]int{{1, 1, 1, 1}, {5, 9, 11, 3}, {17, 3, 2, 19}} {
				cx, cy, rx, ry := pos[0], pos[1], pos[2], pos[3]
				if cx+w > cur.W || cy+h > cur.H || rx+w > ref.W-1 || ry+h > ref.H-1 {
					continue
				}
				ring := [9]int{4: -12345}
				SADHalfPelRing(cur, cx, cy, ref, rx, ry, w, h, &ring)
				if ring[4] != -12345 {
					t.Fatalf("ring centre slot overwritten: %d", ring[4])
				}
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						want := sadHalfPelPlaneScalar(cur, cx, cy, ref, 2*rx+dx, 2*ry+dy, w, h)
						if got := ring[(dy+1)*3+dx+1]; got != want {
							t.Fatalf("ring w=%d h=%d (%d,%d) slot(%d,%d): got %d want %d", w, h, rx, ry, dx, dy, got, want)
						}
					}
				}
			}
		}
	})
}

// TestSADCappedEarlyExitRowValues pins the early-termination value
// itself: with a constant-difference block, the cap is crossed at a
// known row and every tier must return exactly that row's cumulative
// sum.
func TestSADCappedEarlyExitRowValues(t *testing.T) {
	w, h := 16, 16
	cur := &frame.Plane{W: w, H: h, Stride: w, Pix: make([]uint8, w*h)}
	ref := &frame.Plane{W: w, H: h, Stride: w, Pix: make([]uint8, w*h)}
	for i := range cur.Pix {
		cur.Pix[i] = 10
	}
	rowSum := w * 10
	withEachISA(t, func(t *testing.T, isa string) {
		for rows := 1; rows <= h; rows++ {
			cap := rows*rowSum - 1 // crossed exactly at row `rows`
			want := rows * rowSum
			if got := SADCapped(cur, 0, 0, ref, 0, 0, w, h, cap); got != want {
				t.Fatalf("cap=%d: got %d, want cumulative row value %d", cap, got, want)
			}
		}
		if got := SADCapped(cur, 0, 0, ref, 0, 0, w, h, h*rowSum); got != h*rowSum {
			t.Fatalf("cap==total must return exact total: got %d", got)
		}
	})
}

// FuzzKernelTiersSAD drives arbitrary pixels and geometry through every
// registered tier and cross-checks the scalar reference for SAD,
// SADCapped, Mean and IntraSAD.
func FuzzKernelTiersSAD(f *testing.F) {
	f.Add([]byte("seedseedseedseedseedseedseedseed"), uint8(16), uint8(8), uint8(1), uint8(2), uint8(0), uint8(0), uint8(3), uint16(500))
	f.Add(make([]byte, 64), uint8(4), uint8(4), uint8(0), uint8(0), uint8(1), uint8(1), uint8(0), uint16(0))
	f.Fuzz(func(t *testing.T, pix []byte, wSel, hSel, cxSel, cySel, rxSel, rySel, pad8 uint8, cap16 uint16) {
		widths := []int{4, 8, 12, 16, 20, 24, 32}
		w := widths[int(wSel)%len(widths)]
		h := 1 + int(hSel)%16
		pad := int(pad8) % 9
		pw, ph := w+8, h+8
		need := (pw + pad) * ph
		buf := make([]uint8, 2*need)
		for i := range buf {
			if len(pix) > 0 {
				buf[i] = pix[i%len(pix)]
			}
		}
		cur := &frame.Plane{W: pw, H: ph, Stride: pw + pad, Pix: buf[:need]}
		ref := &frame.Plane{W: pw, H: ph, Stride: pw + pad, Pix: buf[need:]}
		cx, cy := int(cxSel)%(pw-w+1), int(cySel)%(ph-h+1)
		rx, ry := int(rxSel)%(pw-w+1), int(rySel)%(ph-h+1)
		cap := int(cap16)
		wantSAD := sadScalar(cur, cx, cy, ref, rx, ry, w, h)
		wantCapped := sadCappedScalar(cur, cx, cy, ref, rx, ry, w, h, cap)
		wantIntra := intraSADScalar(cur, cx, cy, w, h)
		for _, isa := range KernelISAs() {
			restore, err := SetKernelISA(isa)
			if err != nil {
				t.Fatal(err)
			}
			if got := SAD(cur, cx, cy, ref, rx, ry, w, h); got != wantSAD {
				t.Errorf("%s SAD w=%d h=%d: got %d want %d", isa, w, h, got, wantSAD)
			}
			if got := SADCapped(cur, cx, cy, ref, rx, ry, w, h, cap); got != wantCapped {
				t.Errorf("%s SADCapped w=%d h=%d cap=%d: got %d want %d", isa, w, h, cap, got, wantCapped)
			}
			if got := IntraSAD(cur, cx, cy, w, h); got != wantIntra {
				t.Errorf("%s IntraSAD w=%d h=%d: got %d want %d", isa, w, h, got, wantIntra)
			}
			restore()
		}
	})
}

// FuzzKernelTiersHalfPel does the same for the fused half-pel kernels:
// all three phases, capped and uncapped, plus the ring when legal.
func FuzzKernelTiersHalfPel(f *testing.F) {
	f.Add([]byte("halfpelhalfpelhalfpelhalfpel"), uint8(16), uint8(8), uint8(1), uint8(1), uint8(2), uint8(2), uint16(300))
	f.Add(make([]byte, 96), uint8(8), uint8(8), uint8(0), uint8(0), uint8(1), uint8(1), uint16(0))
	f.Fuzz(func(t *testing.T, pix []byte, wSel, hSel, cxSel, cySel, rxSel, rySel uint8, cap16 uint16) {
		widths := []int{8, 16, 24}
		w := widths[int(wSel)%len(widths)]
		h := 1 + int(hSel)%16
		pw, ph := w+10, h+10
		need := pw * ph
		buf := make([]uint8, 2*need)
		for i := range buf {
			if len(pix) > 0 {
				buf[i] = pix[i%len(pix)]
			}
		}
		cur := &frame.Plane{W: pw, H: ph, Stride: pw, Pix: buf[:need]}
		ref := &frame.Plane{W: pw, H: ph, Stride: pw, Pix: buf[need:]}
		cx, cy := int(cxSel)%(pw-w+1), int(cySel)%(ph-h+1)
		rx, ry := 1+int(rxSel)%(pw-w-1), 1+int(rySel)%(ph-h-1)
		cap := int(cap16)
		for _, isa := range KernelISAs() {
			restore, err := SetKernelISA(isa)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range [][2]int{{1, 0}, {0, 1}, {1, 1}} {
				hx, hy := 2*rx+d[0], 2*ry+d[1]
				if got, want := SADHalfPelPlane(cur, cx, cy, ref, hx, hy, w, h), sadHalfPelPlaneScalar(cur, cx, cy, ref, hx, hy, w, h); got != want {
					t.Errorf("%s hp phase=%v w=%d h=%d: got %d want %d", isa, d, w, h, got, want)
				}
				if got, want := SADHalfPelPlaneCapped(cur, cx, cy, ref, hx, hy, w, h, cap), sadHalfPelPlaneCappedScalar(cur, cx, cy, ref, hx, hy, w, h, cap); got != want {
					t.Errorf("%s hpCapped phase=%v w=%d h=%d cap=%d: got %d want %d", isa, d, w, h, cap, got, want)
				}
			}
			if w%8 == 0 && w*h <= 256 && rx+w <= ref.W-1 && ry+h <= ref.H-1 {
				var ring [9]int
				SADHalfPelRing(cur, cx, cy, ref, rx, ry, w, h, &ring)
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						want := sadHalfPelPlaneScalar(cur, cx, cy, ref, 2*rx+dx, 2*ry+dy, w, h)
						if got := ring[(dy+1)*3+dx+1]; got != want {
							t.Errorf("%s ring (%d,%d): got %d want %d", isa, dx, dy, got, want)
						}
					}
				}
			}
			restore()
		}
	})
}
