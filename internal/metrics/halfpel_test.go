package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/frame"
)

// TestAvgQuadLanes exhaustively checks the fused-interpolation lane
// helpers against the H.263 rounding rules.
func TestAvgQuadLanes(t *testing.T) {
	for x := 0; x < 256; x += 5 {
		for y := 0; y < 256; y += 7 {
			want := uint64((x+y+1)>>1) * laneOnes
			if got := avgLanes(uint64(x)*laneOnes, uint64(y)*laneOnes); got != want {
				t.Fatalf("avgLanes(%d,%d) = %#x, want %#x per lane", x, y, got, want)
			}
		}
	}
	vals := []int{0, 1, 2, 127, 128, 254, 255}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				for _, d := range vals {
					want := uint64((a+b+c+d+2)>>2) * laneOnes
					got := quadLanes(uint64(a)*laneOnes, uint64(b)*laneOnes,
						uint64(c)*laneOnes, uint64(d)*laneOnes)
					if got != want {
						t.Fatalf("quadLanes(%d,%d,%d,%d) = %#x, want %#x per lane",
							a, b, c, d, got, want)
					}
				}
			}
		}
	}
}

// TestSADHalfPelPlaneMatchesScalar sweeps phases, widths and anchors
// (interior and border) comparing the fused SWAR kernels against the
// scalar clamped reference.
func TestSADHalfPelPlaneMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cur := paddedPlane(rng, 48, 32, 3)
	ref := paddedPlane(rng, 48, 32, 5)
	for _, w := range []int{8, 16} {
		for _, h := range []int{8, 16} {
			for cy := 0; cy+h <= cur.H; cy += 5 {
				for cx := 0; cx+w <= cur.W; cx += 3 {
					for _, dh := range [][2]int{
						{0, 0}, {1, 0}, {0, 1}, {1, 1}, {-1, -1}, {3, 1}, {1, 3},
						{2*ref.W - 2*w - 1, 0}, {0, 2*ref.H - 2*h - 1},
						{2*ref.W - 2*w + 1, 2*ref.H - 2*h + 1},
						{-7, 5}, {200, 200},
					} {
						hx, hy := 2*cx+dh[0], 2*cy+dh[1]
						got := SADHalfPelPlane(cur, cx, cy, ref, hx, hy, w, h)
						want := sadHalfPelPlaneScalar(cur, cx, cy, ref, hx, hy, w, h)
						if got != want {
							t.Fatalf("SADHalfPelPlane w=%d h=%d cur(%d,%d) hp(%d,%d): got %d want %d",
								w, h, cx, cy, hx, hy, got, want)
						}
					}
				}
			}
		}
	}
}

// TestSADHalfPelPlaneMatchesGrid pins the fused kernels byte-identical to
// probing a fully materialised half-pel view — the bit-exactness claim
// that lets searchers skip the grid entirely.
func TestSADHalfPelPlaneMatchesGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cur := paddedPlane(rng, 48, 32, 0)
	ref := paddedPlane(rng, 48, 32, 0)
	ip := frame.Interpolate(ref)
	for cy := 0; cy+16 <= cur.H; cy += 7 {
		for cx := 0; cx+16 <= cur.W; cx += 5 {
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					hx, hy := 2*cx+dx, 2*cy+dy
					got := SADHalfPelPlane(cur, cx, cy, ref, hx, hy, 16, 16)
					want := SADHalfPel(cur, cx, cy, ip, hx, hy, 16, 16)
					if got != want {
						t.Fatalf("fused (%d,%d)+(%d,%d): got %d, grid %d", cx, cy, dx, dy, got, want)
					}
				}
			}
		}
	}
}

// TestSADHalfPelPlaneCappedMatchesScalar sweeps caps and phases comparing
// the capped fused kernels (including their per-row early-exit values)
// against the scalar reference.
func TestSADHalfPelPlaneCappedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	cur := paddedPlane(rng, 48, 32, 2)
	ref := paddedPlane(rng, 48, 32, 3)
	for _, w := range []int{8, 16} {
		for _, h := range []int{8, 16} {
			for cy := 0; cy+h <= cur.H; cy += 5 {
				for cx := 0; cx+w <= cur.W; cx += 7 {
					for _, dh := range [][2]int{{1, 0}, {0, 1}, {1, 1}, {-1, 3}, {3, -1}} {
						hx, hy := 2*cx+dh[0], 2*cy+dh[1]
						for _, cap := range []int{0, 17, 300, 1 << 20} {
							got := SADHalfPelPlaneCapped(cur, cx, cy, ref, hx, hy, w, h, cap)
							want := sadHalfPelPlaneCappedScalar(cur, cx, cy, ref, hx, hy, w, h, cap)
							if got != want {
								t.Fatalf("capped w=%d h=%d cur(%d,%d) hp(%d,%d) cap=%d: got %d want %d",
									w, h, cx, cy, hx, hy, cap, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestSADHalfPelRingMatchesProbes pins the fused 8-probe ring kernel
// against individual SADHalfPelPlane probes at every ring position, over
// many anchors and both block sizes.
func TestSADHalfPelRingMatchesProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	cur := paddedPlane(rng, 48, 32, 1)
	ref := paddedPlane(rng, 48, 32, 2)
	for _, wh := range [][2]int{{8, 8}, {16, 16}, {16, 8}, {8, 16}} {
		w, h := wh[0], wh[1]
		for cy := 0; cy+h <= cur.H; cy += 5 {
			for cx := 0; cx+w <= cur.W; cx += 3 {
				rx := 1 + (cx+7)%(ref.W-w-1)
				ry := 1 + (cy+3)%(ref.H-h-1)
				var ring [9]int
				SADHalfPelRing(cur, cx, cy, ref, rx, ry, w, h, &ring)
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						want := SADHalfPelPlane(cur, cx, cy, ref, 2*rx+dx, 2*ry+dy, w, h)
						if got := ring[(dy+1)*3+dx+1]; got != want {
							t.Fatalf("ring %dx%d cur(%d,%d) ref(%d,%d) probe(%d,%d): got %d want %d",
								w, h, cx, cy, rx, ry, dx, dy, got, want)
						}
					}
				}
			}
		}
	}
}

// TestHalfPelAtPlaneMatchesInterpolated pins the scalar on-the-fly sample
// rule to Interpolated.AtClamped for every position around the grid.
func TestHalfPelAtPlaneMatchesInterpolated(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ref := paddedPlane(rng, 11, 7, 0)
	ip := frame.Interpolate(ref)
	for hy := -4; hy < 2*ref.H+4; hy++ {
		for hx := -4; hx < 2*ref.W+4; hx++ {
			if got, want := halfPelAtPlane(ref, hx, hy), ip.AtClamped(hx, hy); got != want {
				t.Fatalf("halfPelAtPlane(%d,%d) = %d, want %d", hx, hy, got, want)
			}
		}
	}
}

// TestSADHalfPelPlaneDecimatedMatches pins the decimated fused variant to
// the grid-based one.
func TestSADHalfPelPlaneDecimatedMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	cur := paddedPlane(rng, 32, 32, 0)
	ref := paddedPlane(rng, 32, 32, 0)
	ip := frame.Interpolate(ref)
	for _, dh := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {-1, 2}, {33, 9}} {
		got := SADHalfPelPlaneDecimated(cur, 8, 8, ref, 16+dh[0], 16+dh[1], 16, 16)
		want := SADHalfPelDecimated(cur, 8, 8, ip, 16+dh[0], 16+dh[1], 16, 16)
		if got != want {
			t.Fatalf("decimated at %v: got %d want %d", dh, got, want)
		}
	}
}

// FuzzSADHalfPelPlane cross-checks the fused kernels against the scalar
// reference on random content, anchors and phases.
func FuzzSADHalfPelPlane(f *testing.F) {
	f.Add(int64(1), 5, 5, 1, 1)
	f.Add(int64(2), 0, 0, -1, -1)
	f.Add(int64(3), 31, 15, 3, 0)
	f.Fuzz(func(t *testing.T, seed int64, cx, cy, dx, dy int) {
		rng := rand.New(rand.NewSource(seed))
		cur := paddedPlane(rng, 40, 24, 1)
		ref := paddedPlane(rng, 40, 24, 4)
		cx = ((cx % 3) + 3) % 3 * 8
		cy = ((cy % 2) + 2) % 2 * 8
		hx := 2*cx + dx%64
		hy := 2*cy + dy%64
		got := SADHalfPelPlane(cur, cx, cy, ref, hx, hy, 16, 16)
		want := sadHalfPelPlaneScalar(cur, cx, cy, ref, hx, hy, 16, 16)
		if got != want {
			t.Fatalf("seed %d cur(%d,%d) hp(%d,%d): got %d want %d", seed, cx, cy, hx, hy, got, want)
		}
	})
}
