// Package metrics implements the block-matching distortion measures of the
// paper: the sum of absolute differences (SAD), the texture measure
// Intra_SAD (Σ|p−µ| over a block), the SAD_deviation statistic of the
// Fig. 4 study, and the Lagrangian cost J = D + λ·R used to compare motion
// estimators.
package metrics

import (
	"repro/internal/frame"
	"repro/internal/mvfield"
)

// SAD returns the sum of absolute differences between the w×h block of cur
// anchored at (cx, cy) and the block of ref anchored at (rx, ry). Both
// blocks must lie inside their planes.
func SAD(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	for y := 0; y < h; y++ {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx : (ry+y)*ref.Stride+rx+w]
		for x, cv := range c {
			d := int(cv) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// SADCapped is SAD with early termination: it returns a value > cap (not
// necessarily the exact SAD) as soon as the running sum exceeds cap. Using
// it never changes which candidate wins a minimisation, only how much work
// losing candidates cost.
func SADCapped(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
	sum := 0
	for y := 0; y < h; y++ {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx : (ry+y)*ref.Stride+rx+w]
		for x, cv := range c {
			d := int(cv) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum > cap {
			return sum
		}
	}
	return sum
}

// SADHalfPel returns the SAD between the w×h block of cur anchored at
// (cx, cy) and the prediction taken from the half-pel interpolated
// reference at grid position (hx, hy) = full-pel anchor ×2 plus the motion
// vector in half-pel units.
func SADHalfPel(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	sum := 0
	if hx >= 0 && hy >= 0 && hx+2*w-1 < ref.W && hy+2*h-1 < ref.H {
		for y := 0; y < h; y++ {
			c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
			r := ref.Pix[(hy+2*y)*ref.W+hx:]
			for x, cv := range c {
				d := int(cv) - int(r[2*x])
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		return sum
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(cur.At(cx+x, cy+y)) - int(ref.AtClamped(hx+2*x, hy+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// SADMV returns the SAD for candidate motion vector mv (half-pel units)
// applied to the w×h block of cur anchored at (bx, by), matching against
// the interpolated reference.
func SADMV(cur *frame.Plane, bx, by int, ref *frame.Interpolated, mv mvfield.MV, w, h int) int {
	return SADHalfPel(cur, bx, by, ref, 2*bx+mv.X, 2*by+mv.Y, w, h)
}

// SADDecimated returns the SAD over a 4:1 pixel-decimated grid (samples
// where x and y are both even), scaled by 4 to stay comparable with full
// SAD values — the pixel-decimation strategy of the fast-ME family the
// paper cites as [6–8]. Both blocks must lie inside their planes.
func SADDecimated(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	for y := 0; y < h; y += 2 {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx : (ry+y)*ref.Stride+rx+w]
		for x := 0; x < w; x += 2 {
			d := int(c[x]) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return 4 * sum
}

// SADHalfPelDecimated is SADDecimated against the interpolated reference.
func SADHalfPelDecimated(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	sum := 0
	for y := 0; y < h; y += 2 {
		for x := 0; x < w; x += 2 {
			d := int(cur.At(cx+x, cy+y)) - int(ref.AtClamped(hx+2*x, hy+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return 4 * sum
}

// Mean returns the average sample value of the w×h block of p anchored at
// (x, y), rounded to nearest.
func Mean(p *frame.Plane, x, y, w, h int) int {
	sum := 0
	for yy := 0; yy < h; yy++ {
		row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
		for _, v := range row {
			sum += int(v)
		}
	}
	return (sum + w*h/2) / (w * h)
}

// IntraSAD returns Σ|p−µ| over the w×h block of p anchored at (x, y),
// where µ is the block mean — the texture measure introduced in §3.1 of
// the paper. High values indicate highly textured blocks.
func IntraSAD(p *frame.Plane, x, y, w, h int) int {
	mu := Mean(p, x, y, w, h)
	sum := 0
	for yy := 0; yy < h; yy++ {
		row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
		for _, v := range row {
			d := int(v) - mu
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}
