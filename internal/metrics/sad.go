// Package metrics implements the block-matching distortion measures of the
// paper: the sum of absolute differences (SAD), the texture measure
// Intra_SAD (Σ|p−µ| over a block), the SAD_deviation statistic of the
// Fig. 4 study, and the Lagrangian cost J = D + λ·R used to compare motion
// estimators.
//
// The SAD family dispatches through a per-ISA kernel table (dispatch.go):
// architecture-specific assembly where available (PSADBW/VPSADBW on
// amd64), word-parallel SWAR kernels (8 pixels per uint64 load) as the
// portable vector tier, and the scalar loops as the reference
// implementations the differential tests in swar_test.go and
// dispatch_test.go compare every tier against. Blocks whose width is not
// a multiple of 8 run the vector kernels over the widest multiple-of-8
// body and finish the trailing columns scalar.
package metrics

import (
	"repro/internal/frame"
	"repro/internal/mvfield"
)

// swarRowGroup returns how many rows of width w can accumulate in the
// 16-bit SWAR lanes before a fold is required (worst case 255 per sample).
func swarRowGroup(w int) int {
	g := 256 / w
	if g < 1 {
		g = 1
	}
	return g
}

// SAD returns the sum of absolute differences between the w×h block of cur
// anchored at (cx, cy) and the block of ref anchored at (rx, ry). Both
// blocks must lie inside their planes.
func SAD(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	if w > 256 {
		// Beyond 256 samples a single row overflows the 16-bit lane fold.
		return sadScalar(cur, cx, cy, ref, rx, ry, w, h)
	}
	if wv := w &^ 7; wv != w {
		if wv == 0 {
			return sadScalar(cur, cx, cy, ref, rx, ry, w, h)
		}
		// Vector body over the widest multiple-of-8 prefix, scalar over
		// the trailing columns (chroma edge blocks: 4/12/20 wide). The
		// sum is exact either way, so the split cannot change values.
		return kernels().sad(cur, cx, cy, ref, rx, ry, wv, h) +
			sadScalar(cur, cx+wv, cy, ref, rx+wv, ry, w-wv, h)
	}
	return kernels().sad(cur, cx, cy, ref, rx, ry, w, h)
}

// sadSWAR is the SWAR tier of SAD: w%8 == 0, w ≤ 256.
func sadSWAR(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	group := swarRowGroup(w)
	for y0 := 0; y0 < h; y0 += group {
		y1 := y0 + group
		if y1 > h {
			y1 = h
		}
		var acc uint64
		for y := y0; y < y1; y++ {
			co := (cy+y)*cur.Stride + cx
			ro := (ry+y)*ref.Stride + rx
			c := cur.Pix[co : co+w]
			r := ref.Pix[ro : ro+w]
			for x := 0; x+8 <= w; x += 8 {
				a := load8(c[x:])
				b := load8(r[x:])
				acc += absDiffLanes(a&laneLo, b&laneLo) +
					absDiffLanes((a>>8)&laneLo, (b>>8)&laneLo)
			}
		}
		sum += foldLanes(acc)
	}
	return sum
}

// sadScalar is the scalar reference for SAD.
func sadScalar(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	for y := 0; y < h; y++ {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx : (ry+y)*ref.Stride+rx+w]
		for x, cv := range c {
			d := int(cv) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// SADCapped is SAD with early termination: it returns a value > cap (not
// necessarily the exact SAD) as soon as the running sum exceeds cap after
// any row. Using it never changes which candidate wins a minimisation,
// only how much work losing candidates cost. The early-termination value
// itself is pinned: every tier returns the exact cumulative sum at the
// row the cap was crossed, equal to sadCappedScalar's.
func SADCapped(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
	if w%8 == 0 && w*h <= 256 {
		return kernels().sadCapped(cur, cx, cy, ref, rx, ry, w, h, cap)
	}
	wv := w &^ 7
	if wv == 0 || w > 256 || wv*h > 256 {
		return sadCappedScalar(cur, cx, cy, ref, rx, ry, w, h, cap)
	}
	// Mixed width: vector body plus scalar trailing columns, row by row,
	// folding the cumulative sum at every full row — the same early-exit
	// points and values as the scalar reference.
	k := kernels()
	sum := 0
	for y := 0; y < h; y++ {
		sum += k.sad(cur, cx, cy+y, ref, rx, ry+y, wv, 1)
		c := cur.Pix[(cy+y)*cur.Stride+cx+wv : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx+wv : (ry+y)*ref.Stride+rx+w]
		for x, cv := range c {
			d := int(cv) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum > cap {
			return sum
		}
	}
	return sum
}

// sadCappedSWAR is the SWAR tier of SADCapped: w%8 == 0, w·h ≤ 256. The
// dominant 16-wide macroblock shape takes the unrolled path.
func sadCappedSWAR(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
	if w == 16 {
		return sadCapped16(cur, cx, cy, ref, rx, ry, h, cap)
	}
	// The whole block fits one lane accumulator, so the running sum is one
	// fold away at every row — same early-exit points as the scalar code.
	var acc uint64
	sum := 0
	for y := 0; y < h; y++ {
		co := (cy+y)*cur.Stride + cx
		ro := (ry+y)*ref.Stride + rx
		c := cur.Pix[co : co+w]
		r := ref.Pix[ro : ro+w]
		for x := 0; x+8 <= w; x += 8 {
			a := load8(c[x:])
			b := load8(r[x:])
			acc += absDiffLanes(a&laneLo, b&laneLo) +
				absDiffLanes((a>>8)&laneLo, (b>>8)&laneLo)
		}
		sum = foldLanes(acc)
		if sum > cap {
			return sum
		}
	}
	return sum
}

// sadCapped16 is SADCapped for the dominant 16-wide macroblock case: the
// row is fully unrolled with hoisted offsets, so the motion-search inner
// loop spends its cycles in the lane arithmetic rather than slice and
// loop bookkeeping. Early-exit points and return values are identical to
// the generic path (fold + cap check after every row).
func sadCapped16(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, h, cap int) int {
	cp, rp := cur.Pix, ref.Pix
	co := cy*cur.Stride + cx
	ro := ry*ref.Stride + rx
	var acc uint64
	sum := 0
	for y := 0; y < h; y++ {
		c := cp[co : co+16]
		r := rp[ro : ro+16]
		a, b := load8(c), load8(r)
		acc += absDiffLanes(a&laneLo, b&laneLo) +
			absDiffLanes((a>>8)&laneLo, (b>>8)&laneLo)
		a, b = load8(c[8:]), load8(r[8:])
		acc += absDiffLanes(a&laneLo, b&laneLo) +
			absDiffLanes((a>>8)&laneLo, (b>>8)&laneLo)
		sum = foldLanes(acc)
		if sum > cap {
			return sum
		}
		co += cur.Stride
		ro += ref.Stride
	}
	return sum
}

// sadCappedScalar is the scalar reference for SADCapped.
func sadCappedScalar(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
	sum := 0
	for y := 0; y < h; y++ {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx : (ry+y)*ref.Stride+rx+w]
		for x, cv := range c {
			d := int(cv) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum > cap {
			return sum
		}
	}
	return sum
}

// SADHalfPel returns the SAD between the w×h block of cur anchored at
// (cx, cy) and the prediction taken from the half-pel interpolated
// reference at grid position (hx, hy) = full-pel anchor ×2 plus the motion
// vector in half-pel units. The whole block reads one phase of the view
// (block samples are two grid positions apart), so interior positions run
// the same contiguous SWAR kernel as integer SAD over the — lazily
// materialised — phase plane.
func SADHalfPel(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	if hx >= 0 && hy >= 0 && hx+2*(w-1) < ref.W && hy+2*(h-1) < ref.H {
		p, x0, y0 := ref.PhaseRect(hx, hy, w, h)
		return SAD(cur, cx, cy, p, x0, y0, w, h)
	}
	return sadHalfPelClamped(cur, cx, cy, ref, hx, hy, w, h)
}

// sadHalfPelClamped handles positions beyond the grid, with edge
// replication. It is the scalar reference for SADHalfPel; codec search
// never reaches it (legal candidates are interior).
func sadHalfPelClamped(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	sum := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(cur.At(cx+x, cy+y)) - int(ref.AtClamped(hx+2*x, hy+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// sadHalfPelScalar is the scalar reference for SADHalfPel.
func sadHalfPelScalar(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	return sadHalfPelClamped(cur, cx, cy, ref, hx, hy, w, h)
}

// SADMV returns the SAD for candidate motion vector mv (half-pel units)
// applied to the w×h block of cur anchored at (bx, by), matching against
// the interpolated reference.
func SADMV(cur *frame.Plane, bx, by int, ref *frame.Interpolated, mv mvfield.MV, w, h int) int {
	return SADHalfPel(cur, bx, by, ref, 2*bx+mv.X, 2*by+mv.Y, w, h)
}

// SADHalfPelPlane evaluates a half-pel candidate directly against the
// integer reference plane, fusing the H.263 bilinear interpolation
// (rounding up) into the SWAR difference kernel: no half-pel sample is
// ever materialised. It is bit-identical to SADHalfPel over an
// interpolated view of ref, and it is what the searchers' refinement
// steps use — a probe costs two or four row loads instead of a grid
// build. (hx, hy) is the block's half-pel anchor; positions beyond the
// plane replicate the edge (scalar path — legal candidates never need it).
func SADHalfPelPlane(cur *frame.Plane, cx, cy int, ref *frame.Plane, hx, hy, w, h int) int {
	px, py := hx&1, hy&1
	x0, y0 := hx>>1, hy>>1
	if x0 >= 0 && y0 >= 0 && x0+w+px <= ref.W && y0+h+py <= ref.H {
		if px == 0 && py == 0 {
			return SAD(cur, cx, cy, ref, x0, y0, w, h)
		}
		if w%8 == 0 && w <= 256 {
			k := kernels()
			switch {
			case py == 0:
				return k.hpH(cur, cx, cy, ref, x0, y0, w, h)
			case px == 0:
				return k.hpV(cur, cx, cy, ref, x0, y0, w, h)
			default:
				return k.hpD(cur, cx, cy, ref, x0, y0, w, h)
			}
		}
	}
	return sadHalfPelPlaneScalar(cur, cx, cy, ref, hx, hy, w, h)
}

// sadHalfPelH fuses the horizontal half-pel interpolation b = (A+B+1)>>1
// into the SWAR SAD: per 8 pixels, two overlapping reference loads are
// averaged lane-wise against the current block.
func sadHalfPelH(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	group := swarRowGroup(w)
	for g0 := 0; g0 < h; g0 += group {
		g1 := g0 + group
		if g1 > h {
			g1 = h
		}
		var acc uint64
		for y := g0; y < g1; y++ {
			co := (cy+y)*cur.Stride + cx
			ro := (ry+y)*ref.Stride + rx
			c := cur.Pix[co : co+w]
			r := ref.Pix[ro : ro+w+1]
			for x := 0; x+8 <= w; x += 8 {
				cc := load8(c[x:])
				a := load8(r[x:])
				b := load8(r[x+1:])
				acc += absDiffLanes(cc&laneLo, avgLanes(a&laneLo, b&laneLo)) +
					absDiffLanes((cc>>8)&laneLo, avgLanes((a>>8)&laneLo, (b>>8)&laneLo))
			}
		}
		sum += foldLanes(acc)
	}
	return sum
}

// sadHalfPelV fuses the vertical half-pel interpolation c = (A+C+1)>>1.
func sadHalfPelV(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	group := swarRowGroup(w)
	for g0 := 0; g0 < h; g0 += group {
		g1 := g0 + group
		if g1 > h {
			g1 = h
		}
		var acc uint64
		for y := g0; y < g1; y++ {
			co := (cy+y)*cur.Stride + cx
			ro := (ry+y)*ref.Stride + rx
			c := cur.Pix[co : co+w]
			r0 := ref.Pix[ro : ro+w]
			r1 := ref.Pix[ro+ref.Stride : ro+ref.Stride+w]
			for x := 0; x+8 <= w; x += 8 {
				cc := load8(c[x:])
				a := load8(r0[x:])
				b := load8(r1[x:])
				acc += absDiffLanes(cc&laneLo, avgLanes(a&laneLo, b&laneLo)) +
					absDiffLanes((cc>>8)&laneLo, avgLanes((a>>8)&laneLo, (b>>8)&laneLo))
			}
		}
		sum += foldLanes(acc)
	}
	return sum
}

// sadHalfPelD fuses the diagonal interpolation d = (A+B+C+D+2)>>2.
func sadHalfPelD(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	group := swarRowGroup(w)
	for g0 := 0; g0 < h; g0 += group {
		g1 := g0 + group
		if g1 > h {
			g1 = h
		}
		var acc uint64
		for y := g0; y < g1; y++ {
			co := (cy+y)*cur.Stride + cx
			ro := (ry+y)*ref.Stride + rx
			c := cur.Pix[co : co+w]
			r0 := ref.Pix[ro : ro+w+1]
			r1 := ref.Pix[ro+ref.Stride : ro+ref.Stride+w+1]
			for x := 0; x+8 <= w; x += 8 {
				cc := load8(c[x:])
				a := load8(r0[x:])
				b := load8(r0[x+1:])
				cv := load8(r1[x:])
				dv := load8(r1[x+1:])
				acc += absDiffLanes(cc&laneLo, quadLanes(a&laneLo, b&laneLo, cv&laneLo, dv&laneLo)) +
					absDiffLanes((cc>>8)&laneLo,
						quadLanes((a>>8)&laneLo, (b>>8)&laneLo, (cv>>8)&laneLo, (dv>>8)&laneLo))
			}
		}
		sum += foldLanes(acc)
	}
	return sum
}

// SADHalfPelPlaneCapped is SADHalfPelPlane with SADCapped's early
// termination: it returns a value > cap (not necessarily the exact SAD)
// as soon as the running sum exceeds cap after any row. As with
// SADCapped, using it never changes which candidate wins a minimisation:
// truncated values already exceed the incumbent, and a candidate that
// exactly ties the cap is returned exactly (row sums are monotone, so no
// prefix exceeds the total).
func SADHalfPelPlaneCapped(cur *frame.Plane, cx, cy int, ref *frame.Plane, hx, hy, w, h, cap int) int {
	px, py := hx&1, hy&1
	x0, y0 := hx>>1, hy>>1
	if x0 >= 0 && y0 >= 0 && x0+w+px <= ref.W && y0+h+py <= ref.H {
		if px == 0 && py == 0 {
			return SADCapped(cur, cx, cy, ref, x0, y0, w, h, cap)
		}
		// The whole block fits one lane accumulator (w·h ≤ 256), so the
		// running sum is one fold away at every row — the same early-exit
		// points as the scalar reference.
		if w%8 == 0 && w*h <= 256 {
			k := kernels()
			switch {
			case py == 0:
				return k.hpHCapped(cur, cx, cy, ref, x0, y0, w, h, cap)
			case px == 0:
				return k.hpVCapped(cur, cx, cy, ref, x0, y0, w, h, cap)
			default:
				return k.hpDCapped(cur, cx, cy, ref, x0, y0, w, h, cap)
			}
		}
	}
	return sadHalfPelPlaneCappedScalar(cur, cx, cy, ref, hx, hy, w, h, cap)
}

func sadHalfPelHCapped(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
	var acc uint64
	sum := 0
	for y := 0; y < h; y++ {
		co := (cy+y)*cur.Stride + cx
		ro := (ry+y)*ref.Stride + rx
		c := cur.Pix[co : co+w]
		r := ref.Pix[ro : ro+w+1]
		for x := 0; x+8 <= w; x += 8 {
			cc := load8(c[x:])
			a := load8(r[x:])
			b := load8(r[x+1:])
			acc += absDiffLanes(cc&laneLo, avgLanes(a&laneLo, b&laneLo)) +
				absDiffLanes((cc>>8)&laneLo, avgLanes((a>>8)&laneLo, (b>>8)&laneLo))
		}
		sum = foldLanes(acc)
		if sum > cap {
			return sum
		}
	}
	return sum
}

func sadHalfPelVCapped(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
	var acc uint64
	sum := 0
	for y := 0; y < h; y++ {
		co := (cy+y)*cur.Stride + cx
		ro := (ry+y)*ref.Stride + rx
		c := cur.Pix[co : co+w]
		r0 := ref.Pix[ro : ro+w]
		r1 := ref.Pix[ro+ref.Stride : ro+ref.Stride+w]
		for x := 0; x+8 <= w; x += 8 {
			cc := load8(c[x:])
			a := load8(r0[x:])
			b := load8(r1[x:])
			acc += absDiffLanes(cc&laneLo, avgLanes(a&laneLo, b&laneLo)) +
				absDiffLanes((cc>>8)&laneLo, avgLanes((a>>8)&laneLo, (b>>8)&laneLo))
		}
		sum = foldLanes(acc)
		if sum > cap {
			return sum
		}
	}
	return sum
}

func sadHalfPelDCapped(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
	var acc uint64
	sum := 0
	for y := 0; y < h; y++ {
		co := (cy+y)*cur.Stride + cx
		ro := (ry+y)*ref.Stride + rx
		c := cur.Pix[co : co+w]
		r0 := ref.Pix[ro : ro+w+1]
		r1 := ref.Pix[ro+ref.Stride : ro+ref.Stride+w+1]
		for x := 0; x+8 <= w; x += 8 {
			cc := load8(c[x:])
			a := load8(r0[x:])
			b := load8(r0[x+1:])
			cv := load8(r1[x:])
			dv := load8(r1[x+1:])
			acc += absDiffLanes(cc&laneLo, quadLanes(a&laneLo, b&laneLo, cv&laneLo, dv&laneLo)) +
				absDiffLanes((cc>>8)&laneLo,
					quadLanes((a>>8)&laneLo, (b>>8)&laneLo, (cv>>8)&laneLo, (dv>>8)&laneLo))
		}
		sum = foldLanes(acc)
		if sum > cap {
			return sum
		}
	}
	return sum
}

// sadHalfPelPlaneCappedScalar is the scalar reference for
// SADHalfPelPlaneCapped (same per-row early-exit points).
func sadHalfPelPlaneCappedScalar(cur *frame.Plane, cx, cy int, ref *frame.Plane, hx, hy, w, h, cap int) int {
	sum := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(cur.At(cx+x, cy+y)) - int(halfPelAtPlane(ref, hx+2*x, hy+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum > cap {
			return sum
		}
	}
	return sum
}

// SADHalfPelRing computes the SADs of all 8 half-pel neighbours of the
// full-pel position (rx, ry) in one pass over the block — the half-pel
// refinement ring every integer-precision searcher evaluates. The probes
// share nearly all their input: per 8-pixel group the kernel loads the
// current block once and three reference rows at three offsets, derives
// the two horizontal, two vertical and four diagonal interpolations from
// those lanes, and accumulates eight SADs simultaneously, instead of
// rereading everything per probe. Results land in out indexed
// (dy+1)*3+(dx+1) with the centre slot left untouched — the scan order of
// the refinement loop. Values are bit-identical to SADHalfPelPlane at the
// corresponding positions.
//
// Preconditions: w%8 == 0, w*h ≤ 256, and the whole ring in-plane
// (rx ≥ 1, ry ≥ 1, rx+w ≤ ref.W-1, ry+h ≤ ref.H-1 — implied by all eight
// probes being legal).
func SADHalfPelRing(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int, out *[9]int) {
	// The table kernels return by value: passing out through the
	// indirect call would make the caller's stack array escape to the
	// heap on every refinement. Preserve the caller's centre slot.
	centre := out[4]
	*out = kernels().ring(cur, cx, cy, ref, rx, ry, w, h)
	out[4] = centre
}

// sadHalfPelRingSWAR is the SWAR tier of SADHalfPelRing.
func sadHalfPelRingSWAR(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) (out [9]int) {
	var aTL, aT, aTR, aL, aR, aBL, aB, aBR uint64
	for y := 0; y < h; y++ {
		co := (cy+y)*cur.Stride + cx
		ro := (ry+y)*ref.Stride + rx - 1
		c := cur.Pix[co : co+w]
		rm := ref.Pix[ro-ref.Stride : ro-ref.Stride+w+2]
		r0 := ref.Pix[ro : ro+w+2]
		rp := ref.Pix[ro+ref.Stride : ro+ref.Stride+w+2]
		for x := 0; x+8 <= w; x += 8 {
			cc := load8(c[x:])
			cL, cH := cc&laneLo, (cc>>8)&laneLo
			rmL, rm0, rmR := load8(rm[x:]), load8(rm[x+1:]), load8(rm[x+2:])
			r0L, r00, r0R := load8(r0[x:]), load8(r0[x+1:]), load8(r0[x+2:])
			rpL, rp0, rpR := load8(rp[x:]), load8(rp[x+1:]), load8(rp[x+2:])

			rmLl, rmLh := rmL&laneLo, (rmL>>8)&laneLo
			rm0l, rm0h := rm0&laneLo, (rm0>>8)&laneLo
			rmRl, rmRh := rmR&laneLo, (rmR>>8)&laneLo
			r0Ll, r0Lh := r0L&laneLo, (r0L>>8)&laneLo
			r00l, r00h := r00&laneLo, (r00>>8)&laneLo
			r0Rl, r0Rh := r0R&laneLo, (r0R>>8)&laneLo
			rpLl, rpLh := rpL&laneLo, (rpL>>8)&laneLo
			rp0l, rp0h := rp0&laneLo, (rp0>>8)&laneLo
			rpRl, rpRh := rpR&laneLo, (rpR>>8)&laneLo

			aL += absDiffLanes(cL, avgLanes(r0Ll, r00l)) + absDiffLanes(cH, avgLanes(r0Lh, r00h))
			aR += absDiffLanes(cL, avgLanes(r00l, r0Rl)) + absDiffLanes(cH, avgLanes(r00h, r0Rh))
			aT += absDiffLanes(cL, avgLanes(rm0l, r00l)) + absDiffLanes(cH, avgLanes(rm0h, r00h))
			aB += absDiffLanes(cL, avgLanes(r00l, rp0l)) + absDiffLanes(cH, avgLanes(r00h, rp0h))
			aTL += absDiffLanes(cL, quadLanes(rmLl, rm0l, r0Ll, r00l)) +
				absDiffLanes(cH, quadLanes(rmLh, rm0h, r0Lh, r00h))
			aTR += absDiffLanes(cL, quadLanes(rm0l, rmRl, r00l, r0Rl)) +
				absDiffLanes(cH, quadLanes(rm0h, rmRh, r00h, r0Rh))
			aBL += absDiffLanes(cL, quadLanes(r0Ll, r00l, rpLl, rp0l)) +
				absDiffLanes(cH, quadLanes(r0Lh, r00h, rpLh, rp0h))
			aBR += absDiffLanes(cL, quadLanes(r00l, r0Rl, rp0l, rpRl)) +
				absDiffLanes(cH, quadLanes(r00h, r0Rh, rp0h, rpRh))
		}
	}
	out[0], out[1], out[2] = foldLanes(aTL), foldLanes(aT), foldLanes(aTR)
	out[3], out[5] = foldLanes(aL), foldLanes(aR)
	out[6], out[7], out[8] = foldLanes(aBL), foldLanes(aB), foldLanes(aBR)
	return out
}

// halfPelAtPlane computes one half-pel grid sample directly from the
// integer plane with edge replication — the scalar reference for the
// fused kernels, matching Interpolated.AtClamped exactly.
func halfPelAtPlane(ref *frame.Plane, hx, hy int) uint8 {
	if hx < 0 {
		hx = 0
	} else if hx > 2*ref.W-1 {
		hx = 2*ref.W - 1
	}
	if hy < 0 {
		hy = 0
	} else if hy > 2*ref.H-1 {
		hy = 2*ref.H - 1
	}
	x, y := hx>>1, hy>>1
	a := int(ref.At(x, y))
	b := int(ref.AtClamped(x+1, y))
	c := int(ref.AtClamped(x, y+1))
	d := int(ref.AtClamped(x+1, y+1))
	switch {
	case hx&1 == 0 && hy&1 == 0:
		return uint8(a)
	case hy&1 == 0:
		return uint8((a + b + 1) >> 1)
	case hx&1 == 0:
		return uint8((a + c + 1) >> 1)
	}
	return uint8((a + b + c + d + 2) >> 2)
}

// sadHalfPelPlaneScalar is the scalar reference for SADHalfPelPlane.
func sadHalfPelPlaneScalar(cur *frame.Plane, cx, cy int, ref *frame.Plane, hx, hy, w, h int) int {
	sum := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(cur.At(cx+x, cy+y)) - int(halfPelAtPlane(ref, hx+2*x, hy+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// SADDecimated returns the SAD over a 4:1 pixel-decimated grid (samples
// where x and y are both even), scaled by 4 to stay comparable with full
// SAD values — the pixel-decimation strategy of the fast-ME family the
// paper cites as [6–8]. Both blocks must lie inside their planes.
func SADDecimated(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	for y := 0; y < h; y += 2 {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx : (ry+y)*ref.Stride+rx+w]
		for x := 0; x < w; x += 2 {
			d := int(c[x]) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return 4 * sum
}

// SADHalfPelDecimated is SADDecimated against the interpolated reference.
func SADHalfPelDecimated(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	sum := 0
	for y := 0; y < h; y += 2 {
		for x := 0; x < w; x += 2 {
			d := int(cur.At(cx+x, cy+y)) - int(ref.AtClamped(hx+2*x, hy+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return 4 * sum
}

// SADHalfPelPlaneDecimated is SADHalfPelDecimated with the interpolation
// fused against the integer plane (bit-identical values, no grid).
func SADHalfPelPlaneDecimated(cur *frame.Plane, cx, cy int, ref *frame.Plane, hx, hy, w, h int) int {
	sum := 0
	for y := 0; y < h; y += 2 {
		for x := 0; x < w; x += 2 {
			d := int(cur.At(cx+x, cy+y)) - int(halfPelAtPlane(ref, hx+2*x, hy+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return 4 * sum
}

// Mean returns the average sample value of the w×h block of p anchored at
// (x, y), rounded to nearest.
func Mean(p *frame.Plane, x, y, w, h int) int {
	if w%8 != 0 || w > 256 {
		return (planeSumScalar(p, x, y, w, h) + w*h/2) / (w * h)
	}
	return (kernels().planeSum(p, x, y, w, h) + w*h/2) / (w * h)
}

// planeSumScalar is the scalar reference for the block sample sum.
func planeSumScalar(p *frame.Plane, x, y, w, h int) int {
	sum := 0
	for yy := 0; yy < h; yy++ {
		row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
		for _, v := range row {
			sum += int(v)
		}
	}
	return sum
}

// planeSumSWAR is the SWAR tier of the block sample sum: w%8 == 0, w ≤ 256.
func planeSumSWAR(p *frame.Plane, x, y, w, h int) int {
	sum := 0
	group := swarRowGroup(w)
	for y0 := 0; y0 < h; y0 += group {
		y1 := y0 + group
		if y1 > h {
			y1 = h
		}
		var acc uint64
		for yy := y0; yy < y1; yy++ {
			o := (y+yy)*p.Stride + x
			c := p.Pix[o : o+w]
			for xx := 0; xx+8 <= w; xx += 8 {
				a := load8(c[xx:])
				acc += a&laneLo + (a>>8)&laneLo
			}
		}
		sum += foldLanes(acc)
	}
	return sum
}

// IntraSAD returns Σ|p−µ| over the w×h block of p anchored at (x, y),
// where µ is the block mean — the texture measure introduced in §3.1 of
// the paper. High values indicate highly textured blocks.
func IntraSAD(p *frame.Plane, x, y, w, h int) int {
	mu := Mean(p, x, y, w, h)
	if w%8 != 0 || w > 256 {
		return intraSADMuScalar(p, x, y, w, h, mu)
	}
	return kernels().intraSAD(p, x, y, w, h, mu)
}

// intraSADMuScalar is the scalar reference for Σ|p−µ| at a given µ.
func intraSADMuScalar(p *frame.Plane, x, y, w, h, mu int) int {
	sum := 0
	for yy := 0; yy < h; yy++ {
		row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
		for _, v := range row {
			d := int(v) - mu
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// intraSADSWAR is the SWAR tier of Σ|p−µ|: w%8 == 0, w ≤ 256.
func intraSADSWAR(p *frame.Plane, x, y, w, h, mu int) int {
	sum := 0
	mub := uint64(mu) * laneOnes
	group := swarRowGroup(w)
	for y0 := 0; y0 < h; y0 += group {
		y1 := y0 + group
		if y1 > h {
			y1 = h
		}
		var acc uint64
		for yy := y0; yy < y1; yy++ {
			o := (y+yy)*p.Stride + x
			c := p.Pix[o : o+w]
			for xx := 0; xx+8 <= w; xx += 8 {
				a := load8(c[xx:])
				acc += absDiffLanes(a&laneLo, mub) + absDiffLanes((a>>8)&laneLo, mub)
			}
		}
		sum += foldLanes(acc)
	}
	return sum
}

// intraSADScalar is the scalar reference for IntraSAD.
func intraSADScalar(p *frame.Plane, x, y, w, h int) int {
	sum := 0
	mean := 0
	for yy := 0; yy < h; yy++ {
		row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
		for _, v := range row {
			mean += int(v)
		}
	}
	mu := (mean + w*h/2) / (w * h)
	for yy := 0; yy < h; yy++ {
		row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
		for _, v := range row {
			d := int(v) - mu
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}
