// Package metrics implements the block-matching distortion measures of the
// paper: the sum of absolute differences (SAD), the texture measure
// Intra_SAD (Σ|p−µ| over a block), the SAD_deviation statistic of the
// Fig. 4 study, and the Lagrangian cost J = D + λ·R used to compare motion
// estimators.
//
// The SAD family runs on word-parallel (SWAR) kernels that process 8
// pixels per uint64 load when the block width is a multiple of 8; other
// widths use the scalar loops, which also serve as the reference
// implementations for the differential tests in swar_test.go.
package metrics

import (
	"repro/internal/frame"
	"repro/internal/mvfield"
)

// swarRowGroup returns how many rows of width w can accumulate in the
// 16-bit SWAR lanes before a fold is required (worst case 255 per sample).
func swarRowGroup(w int) int {
	g := 256 / w
	if g < 1 {
		g = 1
	}
	return g
}

// SAD returns the sum of absolute differences between the w×h block of cur
// anchored at (cx, cy) and the block of ref anchored at (rx, ry). Both
// blocks must lie inside their planes.
func SAD(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	if w%8 != 0 || w > 256 {
		// Beyond 256 samples a single row overflows the 16-bit lane fold.
		return sadScalar(cur, cx, cy, ref, rx, ry, w, h)
	}
	sum := 0
	group := swarRowGroup(w)
	for y0 := 0; y0 < h; y0 += group {
		y1 := y0 + group
		if y1 > h {
			y1 = h
		}
		var acc uint64
		for y := y0; y < y1; y++ {
			co := (cy+y)*cur.Stride + cx
			ro := (ry+y)*ref.Stride + rx
			c := cur.Pix[co : co+w]
			r := ref.Pix[ro : ro+w]
			for x := 0; x+8 <= w; x += 8 {
				a := load8(c[x:])
				b := load8(r[x:])
				acc += absDiffLanes(a&laneLo, b&laneLo) +
					absDiffLanes((a>>8)&laneLo, (b>>8)&laneLo)
			}
		}
		sum += foldLanes(acc)
	}
	return sum
}

// sadScalar is the scalar reference for SAD.
func sadScalar(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	for y := 0; y < h; y++ {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx : (ry+y)*ref.Stride+rx+w]
		for x, cv := range c {
			d := int(cv) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// SADCapped is SAD with early termination: it returns a value > cap (not
// necessarily the exact SAD) as soon as the running sum exceeds cap after
// any row. Using it never changes which candidate wins a minimisation,
// only how much work losing candidates cost.
func SADCapped(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
	if w == 16 && h <= 16 {
		return sadCapped16(cur, cx, cy, ref, rx, ry, h, cap)
	}
	if w%8 != 0 || w*h > 256 {
		return sadCappedScalar(cur, cx, cy, ref, rx, ry, w, h, cap)
	}
	// The whole block fits one lane accumulator, so the running sum is one
	// fold away at every row — same early-exit points as the scalar code.
	var acc uint64
	sum := 0
	for y := 0; y < h; y++ {
		co := (cy+y)*cur.Stride + cx
		ro := (ry+y)*ref.Stride + rx
		c := cur.Pix[co : co+w]
		r := ref.Pix[ro : ro+w]
		for x := 0; x+8 <= w; x += 8 {
			a := load8(c[x:])
			b := load8(r[x:])
			acc += absDiffLanes(a&laneLo, b&laneLo) +
				absDiffLanes((a>>8)&laneLo, (b>>8)&laneLo)
		}
		sum = foldLanes(acc)
		if sum > cap {
			return sum
		}
	}
	return sum
}

// sadCapped16 is SADCapped for the dominant 16-wide macroblock case: the
// row is fully unrolled with hoisted offsets, so the motion-search inner
// loop spends its cycles in the lane arithmetic rather than slice and
// loop bookkeeping. Early-exit points and return values are identical to
// the generic path (fold + cap check after every row).
func sadCapped16(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, h, cap int) int {
	cp, rp := cur.Pix, ref.Pix
	co := cy*cur.Stride + cx
	ro := ry*ref.Stride + rx
	var acc uint64
	sum := 0
	for y := 0; y < h; y++ {
		c := cp[co : co+16]
		r := rp[ro : ro+16]
		a, b := load8(c), load8(r)
		acc += absDiffLanes(a&laneLo, b&laneLo) +
			absDiffLanes((a>>8)&laneLo, (b>>8)&laneLo)
		a, b = load8(c[8:]), load8(r[8:])
		acc += absDiffLanes(a&laneLo, b&laneLo) +
			absDiffLanes((a>>8)&laneLo, (b>>8)&laneLo)
		sum = foldLanes(acc)
		if sum > cap {
			return sum
		}
		co += cur.Stride
		ro += ref.Stride
	}
	return sum
}

// sadCappedScalar is the scalar reference for SADCapped.
func sadCappedScalar(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h, cap int) int {
	sum := 0
	for y := 0; y < h; y++ {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx : (ry+y)*ref.Stride+rx+w]
		for x, cv := range c {
			d := int(cv) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum > cap {
			return sum
		}
	}
	return sum
}

// SADHalfPel returns the SAD between the w×h block of cur anchored at
// (cx, cy) and the prediction taken from the half-pel interpolated
// reference at grid position (hx, hy) = full-pel anchor ×2 plus the motion
// vector in half-pel units.
func SADHalfPel(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	if hx >= 0 && hy >= 0 && hx+2*w-1 < ref.W && hy+2*h-1 < ref.H {
		if w%8 != 0 || w > 256 {
			return sadHalfPelInterior(cur, cx, cy, ref, hx, hy, w, h)
		}
		sum := 0
		group := swarRowGroup(w)
		for y0 := 0; y0 < h; y0 += group {
			y1 := y0 + group
			if y1 > h {
				y1 = h
			}
			var acc uint64
			for y := y0; y < y1; y++ {
				co := (cy+y)*cur.Stride + cx
				c := cur.Pix[co : co+w]
				r := ref.Pix[(hy+2*y)*ref.W+hx:]
				for x := 0; x+8 <= w; x += 8 {
					a := load8(c[x:])
					// Even bytes of the 16 reference bytes are already in
					// 16-bit lane layout.
					acc += absDiffLanes(unpack4(uint32(a)), load8(r[2*x:])&laneLo) +
						absDiffLanes(unpack4(uint32(a>>32)), load8(r[2*x+8:])&laneLo)
				}
			}
			sum += foldLanes(acc)
		}
		return sum
	}
	return sadHalfPelClamped(cur, cx, cy, ref, hx, hy, w, h)
}

// sadHalfPelInterior is the scalar fast path for fully interior positions.
func sadHalfPelInterior(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	sum := 0
	for y := 0; y < h; y++ {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(hy+2*y)*ref.W+hx:]
		for x, cv := range c {
			d := int(cv) - int(r[2*x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// sadHalfPelClamped handles positions that touch the border, with edge
// replication.
func sadHalfPelClamped(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	sum := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(cur.At(cx+x, cy+y)) - int(ref.AtClamped(hx+2*x, hy+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// sadHalfPelScalar is the scalar reference for SADHalfPel.
func sadHalfPelScalar(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	return sadHalfPelClamped(cur, cx, cy, ref, hx, hy, w, h)
}

// SADMV returns the SAD for candidate motion vector mv (half-pel units)
// applied to the w×h block of cur anchored at (bx, by), matching against
// the interpolated reference.
func SADMV(cur *frame.Plane, bx, by int, ref *frame.Interpolated, mv mvfield.MV, w, h int) int {
	return SADHalfPel(cur, bx, by, ref, 2*bx+mv.X, 2*by+mv.Y, w, h)
}

// SADDecimated returns the SAD over a 4:1 pixel-decimated grid (samples
// where x and y are both even), scaled by 4 to stay comparable with full
// SAD values — the pixel-decimation strategy of the fast-ME family the
// paper cites as [6–8]. Both blocks must lie inside their planes.
func SADDecimated(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	sum := 0
	for y := 0; y < h; y += 2 {
		c := cur.Pix[(cy+y)*cur.Stride+cx : (cy+y)*cur.Stride+cx+w]
		r := ref.Pix[(ry+y)*ref.Stride+rx : (ry+y)*ref.Stride+rx+w]
		for x := 0; x < w; x += 2 {
			d := int(c[x]) - int(r[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return 4 * sum
}

// SADHalfPelDecimated is SADDecimated against the interpolated reference.
func SADHalfPelDecimated(cur *frame.Plane, cx, cy int, ref *frame.Interpolated, hx, hy, w, h int) int {
	sum := 0
	for y := 0; y < h; y += 2 {
		for x := 0; x < w; x += 2 {
			d := int(cur.At(cx+x, cy+y)) - int(ref.AtClamped(hx+2*x, hy+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return 4 * sum
}

// Mean returns the average sample value of the w×h block of p anchored at
// (x, y), rounded to nearest.
func Mean(p *frame.Plane, x, y, w, h int) int {
	sum := 0
	if w%8 != 0 || w > 256 {
		for yy := 0; yy < h; yy++ {
			row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
			for _, v := range row {
				sum += int(v)
			}
		}
		return (sum + w*h/2) / (w * h)
	}
	group := swarRowGroup(w)
	for y0 := 0; y0 < h; y0 += group {
		y1 := y0 + group
		if y1 > h {
			y1 = h
		}
		var acc uint64
		for yy := y0; yy < y1; yy++ {
			o := (y+yy)*p.Stride + x
			c := p.Pix[o : o+w]
			for xx := 0; xx+8 <= w; xx += 8 {
				a := load8(c[xx:])
				acc += a&laneLo + (a>>8)&laneLo
			}
		}
		sum += foldLanes(acc)
	}
	return (sum + w*h/2) / (w * h)
}

// IntraSAD returns Σ|p−µ| over the w×h block of p anchored at (x, y),
// where µ is the block mean — the texture measure introduced in §3.1 of
// the paper. High values indicate highly textured blocks.
func IntraSAD(p *frame.Plane, x, y, w, h int) int {
	mu := Mean(p, x, y, w, h)
	sum := 0
	if w%8 != 0 || w > 256 {
		for yy := 0; yy < h; yy++ {
			row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
			for _, v := range row {
				d := int(v) - mu
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		return sum
	}
	mub := uint64(mu) * laneOnes
	group := swarRowGroup(w)
	for y0 := 0; y0 < h; y0 += group {
		y1 := y0 + group
		if y1 > h {
			y1 = h
		}
		var acc uint64
		for yy := y0; yy < y1; yy++ {
			o := (y+yy)*p.Stride + x
			c := p.Pix[o : o+w]
			for xx := 0; xx+8 <= w; xx += 8 {
				a := load8(c[xx:])
				acc += absDiffLanes(a&laneLo, mub) + absDiffLanes((a>>8)&laneLo, mub)
			}
		}
		sum += foldLanes(acc)
	}
	return sum
}

// intraSADScalar is the scalar reference for IntraSAD.
func intraSADScalar(p *frame.Plane, x, y, w, h int) int {
	sum := 0
	mean := 0
	for yy := 0; yy < h; yy++ {
		row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
		for _, v := range row {
			mean += int(v)
		}
	}
	mu := (mean + w*h/2) / (w * h)
	for yy := 0; yy < h; yy++ {
		row := p.Pix[(y+yy)*p.Stride+x : (y+yy)*p.Stride+x+w]
		for _, v := range row {
			d := int(v) - mu
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}
