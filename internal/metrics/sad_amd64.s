//go:build amd64

#include "textflag.h"

// amd64 SAD kernels. Conventions shared by every TEXT below:
//
//   - PSADBW computes Σ|a−b| over 16 byte pairs, folding into two
//     quadword sums (one per 8-byte half); accumulating with PADDQ can
//     never overflow at the block sizes the dispatch guards allow.
//   - w%8 == 0 and w ≥ 8, so rows split into 16-byte chunks plus at
//     most one 8-byte tail. 8-byte tails load with MOVQ (zero-extended
//     into the xmm register), so the high quadword contributes
//     |0−0| = 0 — rows are never over-read.
//   - Horizontal/vertical half-pel interpolation (a+b+1)>>1 is exactly
//     PAVGB (H.263 rounding). Diagonal (a+b+c+d+2)>>2 is NOT: the
//     diagonal kernels widen to 16-bit words (PUNPCKLBW/PUNPCKHBW with
//     zero), add, bias, shift, and PACKUSWB back before the PSADBW.
//   - Capped kernels fold the cumulative accumulator after every row
//     (PSHUFD $0xEE folds high qword onto low) and compare against the
//     cap — the same early-exit points and values as the scalar
//     reference, which the differential tests pin.

// func sadBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int
TEXT ·sadBlkSSE2(SB), NOSPLIT, $0-56
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	PXOR X7, X7

row:
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (DI)(AX*1), X0
	MOVOU (SI)(AX*1), X1
	PSADBW X1, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  rowdone
	MOVQ (DI)(AX*1), X0
	MOVQ (SI)(AX*1), X1
	PSADBW X1, X0
	PADDQ  X0, X7

rowdone:
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

	PSHUFD $0xEE, X7, X0
	PADDQ  X0, X7
	MOVQ X7, AX
	MOVQ AX, ret+48(FP)
	RET

// func sadCappedBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h, cap int) int
TEXT ·sadCappedBlkSSE2(SB), NOSPLIT, $0-64
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	MOVQ cap+48(FP), R14
	PXOR X7, X7
	XORQ R13, R13

row:
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (DI)(AX*1), X0
	MOVOU (SI)(AX*1), X1
	PSADBW X1, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  fold
	MOVQ (DI)(AX*1), X0
	MOVQ (SI)(AX*1), X1
	PSADBW X1, X0
	PADDQ  X0, X7

fold:
	// Cumulative running sum after this row; exit as soon as it
	// exceeds the cap (same value the scalar reference returns).
	PSHUFD $0xEE, X7, X0
	PADDQ  X7, X0
	MOVQ X0, R13
	CMPQ R13, R14
	JGT  done
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

done:
	MOVQ R13, ret+56(FP)
	RET

// func planeSumBlkSSE2(p *byte, stride, w, h int) int
TEXT ·planeSumBlkSSE2(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), DI
	MOVQ stride+8(FP), CX
	MOVQ w+16(FP), BX
	MOVQ h+24(FP), R9
	PXOR X7, X7
	PXOR X6, X6

row:
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (DI)(AX*1), X0
	PSADBW X6, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  rowdone
	MOVQ (DI)(AX*1), X0
	PSADBW X6, X0
	PADDQ  X0, X7

rowdone:
	ADDQ CX, DI
	DECQ R9
	JNZ  row

	PSHUFD $0xEE, X7, X0
	PADDQ  X0, X7
	MOVQ X7, AX
	MOVQ AX, ret+32(FP)
	RET

// func intraSADBlkSSE2(p *byte, stride, w, h, mu int) int
TEXT ·intraSADBlkSSE2(SB), NOSPLIT, $0-48
	MOVQ p+0(FP), DI
	MOVQ stride+8(FP), CX
	MOVQ w+16(FP), BX
	MOVQ h+24(FP), R9
	MOVQ mu+32(FP), AX
	MOVQ $0x0101010101010101, R8
	IMULQ R8, AX
	MOVQ AX, X5          // µ splat, low quadword only (for 8-byte tails)
	MOVO X5, X4
	PUNPCKLQDQ X4, X4    // µ splat, all 16 bytes
	PXOR X7, X7

row:
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (DI)(AX*1), X0
	PSADBW X4, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  rowdone
	MOVQ (DI)(AX*1), X0
	PSADBW X5, X0        // low-qword µ only: high lanes |0−0| = 0
	PADDQ  X0, X7

rowdone:
	ADDQ CX, DI
	DECQ R9
	JNZ  row

	PSHUFD $0xEE, X7, X0
	PADDQ  X0, X7
	MOVQ X7, AX
	MOVQ AX, ret+40(FP)
	RET

// func sadHpHBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int
TEXT ·sadHpHBlkSSE2(SB), NOSPLIT, $0-56
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	PXOR X7, X7

row:
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (SI)(AX*1), X1
	MOVOU 1(SI)(AX*1), X2
	PAVGB X2, X1
	MOVOU (DI)(AX*1), X0
	PSADBW X1, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  rowdone
	MOVQ (SI)(AX*1), X1
	MOVQ 1(SI)(AX*1), X2
	PAVGB X2, X1
	MOVQ (DI)(AX*1), X0
	PSADBW X1, X0
	PADDQ  X0, X7

rowdone:
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

	PSHUFD $0xEE, X7, X0
	PADDQ  X0, X7
	MOVQ X7, AX
	MOVQ AX, ret+48(FP)
	RET

// func sadHpVBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int
TEXT ·sadHpVBlkSSE2(SB), NOSPLIT, $0-56
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	PXOR X7, X7

row:
	LEAQ (SI)(DX*1), R12 // row below
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (SI)(AX*1), X1
	MOVOU (R12)(AX*1), X2
	PAVGB X2, X1
	MOVOU (DI)(AX*1), X0
	PSADBW X1, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  rowdone
	MOVQ (SI)(AX*1), X1
	MOVQ (R12)(AX*1), X2
	PAVGB X2, X1
	MOVQ (DI)(AX*1), X0
	PSADBW X1, X0
	PADDQ  X0, X7

rowdone:
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

	PSHUFD $0xEE, X7, X0
	PADDQ  X0, X7
	MOVQ X7, AX
	MOVQ AX, ret+48(FP)
	RET

// func sadHpDBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int
TEXT ·sadHpDBlkSSE2(SB), NOSPLIT, $0-56
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	PXOR X7, X7
	PXOR X6, X6          // zero, for byte→word widening
	MOVQ $0x0002000200020002, R8
	MOVQ R8, X5
	PUNPCKLQDQ X5, X5    // rounding bias +2 in every word lane

row:
	LEAQ (SI)(DX*1), R12 // row below
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (SI)(AX*1), X0   // a: top row, x
	MOVOU 1(SI)(AX*1), X1  // b: top row, x+1
	MOVOU (R12)(AX*1), X2  // c: bottom row, x
	MOVOU 1(R12)(AX*1), X3 // d: bottom row, x+1
	MOVO X0, X8
	PUNPCKLBW X6, X0       // a low words
	PUNPCKHBW X6, X8       // a high words
	MOVO X1, X9
	PUNPCKLBW X6, X9
	PADDW X9, X0
	PUNPCKHBW X6, X1
	PADDW X1, X8
	MOVO X2, X9
	PUNPCKLBW X6, X9
	PADDW X9, X0
	PUNPCKHBW X6, X2
	PADDW X2, X8
	MOVO X3, X9
	PUNPCKLBW X6, X9
	PADDW X9, X0
	PUNPCKHBW X6, X3
	PADDW X3, X8
	PADDW X5, X0
	PADDW X5, X8
	PSRLW $2, X0
	PSRLW $2, X8
	PACKUSWB X8, X0        // 16 diagonal half-pel bytes
	MOVOU (DI)(AX*1), X1
	PSADBW X1, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  rowdone
	MOVQ (SI)(AX*1), X0
	PUNPCKLBW X6, X0
	MOVQ 1(SI)(AX*1), X1
	PUNPCKLBW X6, X1
	PADDW X1, X0
	MOVQ (R12)(AX*1), X1
	PUNPCKLBW X6, X1
	PADDW X1, X0
	MOVQ 1(R12)(AX*1), X1
	PUNPCKLBW X6, X1
	PADDW X1, X0
	PADDW X5, X0
	PSRLW $2, X0
	PACKUSWB X6, X0        // low 8 probe bytes, high half zero
	MOVQ (DI)(AX*1), X1
	PSADBW X1, X0
	PADDQ  X0, X7

rowdone:
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

	PSHUFD $0xEE, X7, X0
	PADDQ  X0, X7
	MOVQ X7, AX
	MOVQ AX, ret+48(FP)
	RET

// func sadHpHCappedBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h, cap int) int
TEXT ·sadHpHCappedBlkSSE2(SB), NOSPLIT, $0-64
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	MOVQ cap+48(FP), R14
	PXOR X7, X7
	XORQ R13, R13

row:
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (SI)(AX*1), X1
	MOVOU 1(SI)(AX*1), X2
	PAVGB X2, X1
	MOVOU (DI)(AX*1), X0
	PSADBW X1, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  fold
	MOVQ (SI)(AX*1), X1
	MOVQ 1(SI)(AX*1), X2
	PAVGB X2, X1
	MOVQ (DI)(AX*1), X0
	PSADBW X1, X0
	PADDQ  X0, X7

fold:
	PSHUFD $0xEE, X7, X0
	PADDQ  X7, X0
	MOVQ X0, R13
	CMPQ R13, R14
	JGT  done
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

done:
	MOVQ R13, ret+56(FP)
	RET

// func sadHpVCappedBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h, cap int) int
TEXT ·sadHpVCappedBlkSSE2(SB), NOSPLIT, $0-64
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	MOVQ cap+48(FP), R14
	PXOR X7, X7
	XORQ R13, R13

row:
	LEAQ (SI)(DX*1), R12
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (SI)(AX*1), X1
	MOVOU (R12)(AX*1), X2
	PAVGB X2, X1
	MOVOU (DI)(AX*1), X0
	PSADBW X1, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  fold
	MOVQ (SI)(AX*1), X1
	MOVQ (R12)(AX*1), X2
	PAVGB X2, X1
	MOVQ (DI)(AX*1), X0
	PSADBW X1, X0
	PADDQ  X0, X7

fold:
	PSHUFD $0xEE, X7, X0
	PADDQ  X7, X0
	MOVQ X0, R13
	CMPQ R13, R14
	JGT  done
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

done:
	MOVQ R13, ret+56(FP)
	RET

// func sadHpDCappedBlkSSE2(cur *byte, curStride int, ref *byte, refStride int, w, h, cap int) int
TEXT ·sadHpDCappedBlkSSE2(SB), NOSPLIT, $0-64
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	MOVQ cap+48(FP), R14
	PXOR X7, X7
	PXOR X6, X6
	MOVQ $0x0002000200020002, R8
	MOVQ R8, X5
	PUNPCKLQDQ X5, X5
	XORQ R13, R13

row:
	LEAQ (SI)(DX*1), R12
	XORQ AX, AX

chunk16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	MOVOU (SI)(AX*1), X0
	MOVOU 1(SI)(AX*1), X1
	MOVOU (R12)(AX*1), X2
	MOVOU 1(R12)(AX*1), X3
	MOVO X0, X8
	PUNPCKLBW X6, X0
	PUNPCKHBW X6, X8
	MOVO X1, X9
	PUNPCKLBW X6, X9
	PADDW X9, X0
	PUNPCKHBW X6, X1
	PADDW X1, X8
	MOVO X2, X9
	PUNPCKLBW X6, X9
	PADDW X9, X0
	PUNPCKHBW X6, X2
	PADDW X2, X8
	MOVO X3, X9
	PUNPCKLBW X6, X9
	PADDW X9, X0
	PUNPCKHBW X6, X3
	PADDW X3, X8
	PADDW X5, X0
	PADDW X5, X8
	PSRLW $2, X0
	PSRLW $2, X8
	PACKUSWB X8, X0
	MOVOU (DI)(AX*1), X1
	PSADBW X1, X0
	PADDQ  X0, X7
	MOVQ R8, AX
	JMP  chunk16

tail8:
	CMPQ AX, BX
	JGE  fold
	MOVQ (SI)(AX*1), X0
	PUNPCKLBW X6, X0
	MOVQ 1(SI)(AX*1), X1
	PUNPCKLBW X6, X1
	PADDW X1, X0
	MOVQ (R12)(AX*1), X1
	PUNPCKLBW X6, X1
	PADDW X1, X0
	MOVQ 1(R12)(AX*1), X1
	PUNPCKLBW X6, X1
	PADDW X1, X0
	PADDW X5, X0
	PSRLW $2, X0
	PACKUSWB X6, X0
	MOVQ (DI)(AX*1), X1
	PSADBW X1, X0
	PADDQ  X0, X7

fold:
	PSHUFD $0xEE, X7, X0
	PADDQ  X7, X0
	MOVQ X0, R13
	CMPQ R13, R14
	JGT  done
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

done:
	MOVQ R13, ret+56(FP)
	RET

// func sadHpRingBlkSSE2(cur *byte, curStride int, refTop *byte, refStride int, w, h int, out *[9]int)
//
// All eight half-pel neighbours of the anchor in one pass. refTop points
// one row above and one column left of the anchor, so the three
// reference rows per block row are refTop (rm), refTop+stride (r0),
// refTop+2·stride (rp), with column offsets 0/1/2 = anchor−1/anchor/
// anchor+1. Everything runs in the 16-bit word domain on 8-byte chunks:
// horizontal pair sums are shared between the straight (PAVGB-equivalent
// (s+1)>>1) and diagonal ((s0+s1+2)>>2) probes. Eight xmm accumulators
// X8–X15 hold the ring in slot order TL,T,TR,L,R,BL,B,BR.
TEXT ·sadHpRingBlkSSE2(SB), NOSPLIT, $0-56
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ refTop+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	PXOR X0, X0          // zero (widening + packs)
	MOVQ $0x0001000100010001, R8
	MOVQ R8, X1
	PUNPCKLQDQ X1, X1    // +1 in every word lane
	PXOR X8, X8
	PXOR X9, X9
	PXOR X10, X10
	PXOR X11, X11
	PXOR X12, X12
	PXOR X13, X13
	PXOR X14, X14
	PXOR X15, X15

row:
	LEAQ (SI)(DX*1), R10 // r0: the anchor row
	LEAQ (SI)(DX*2), R11 // rp: the row below
	XORQ AX, AX

chunk:
	MOVQ (DI)(AX*1), X2  // current block, 8 bytes
	MOVQ 1(R10)(AX*1), X4
	PUNPCKLBW X0, X4     // r0[anchor] words (kept)
	MOVQ 1(SI)(AX*1), X3
	PUNPCKLBW X0, X3     // rm[anchor] words (kept)

	// T = (rm + r0 + 1) >> 1
	MOVO X3, X5
	PADDW X4, X5
	PADDW X1, X5
	PSRLW $1, X5
	PACKUSWB X0, X5
	PSADBW X2, X5
	PADDQ X5, X9

	MOVQ 1(R11)(AX*1), X5
	PUNPCKLBW X0, X5     // rp[anchor] words (kept)

	// B = (r0 + rp + 1) >> 1
	MOVO X4, X6
	PADDW X5, X6
	PADDW X1, X6
	PSRLW $1, X6
	PACKUSWB X0, X6
	PSADBW X2, X6
	PADDQ X6, X14

	// left horizontal pair sum h0 = r0[anchor−1] + r0[anchor]
	MOVQ (R10)(AX*1), X6
	PUNPCKLBW X0, X6
	PADDW X4, X6

	// L = (h0 + 1) >> 1
	MOVO X6, X7
	PADDW X1, X7
	PSRLW $1, X7
	PACKUSWB X0, X7
	PSADBW X2, X7
	PADDQ X7, X11

	// TL = (rm[anchor−1] + rm[anchor] + h0 + 2) >> 2
	MOVQ (SI)(AX*1), X7
	PUNPCKLBW X0, X7
	PADDW X3, X7
	PADDW X6, X7
	PADDW X1, X7
	PADDW X1, X7
	PSRLW $2, X7
	PACKUSWB X0, X7
	PSADBW X2, X7
	PADDQ X7, X8

	// BL = (rp[anchor−1] + rp[anchor] + h0 + 2) >> 2
	MOVQ (R11)(AX*1), X7
	PUNPCKLBW X0, X7
	PADDW X5, X7
	PADDW X6, X7
	PADDW X1, X7
	PADDW X1, X7
	PSRLW $2, X7
	PACKUSWB X0, X7
	PSADBW X2, X7
	PADDQ X7, X13

	// right horizontal pair sum h1 = r0[anchor] + r0[anchor+1]
	MOVQ 2(R10)(AX*1), X6
	PUNPCKLBW X0, X6
	PADDW X4, X6

	// R = (h1 + 1) >> 1
	MOVO X6, X7
	PADDW X1, X7
	PSRLW $1, X7
	PACKUSWB X0, X7
	PSADBW X2, X7
	PADDQ X7, X12

	// TR = (rm[anchor] + rm[anchor+1] + h1 + 2) >> 2
	MOVQ 2(SI)(AX*1), X7
	PUNPCKLBW X0, X7
	PADDW X3, X7
	PADDW X6, X7
	PADDW X1, X7
	PADDW X1, X7
	PSRLW $2, X7
	PACKUSWB X0, X7
	PSADBW X2, X7
	PADDQ X7, X10

	// BR = (rp[anchor] + rp[anchor+1] + h1 + 2) >> 2
	MOVQ 2(R11)(AX*1), X7
	PUNPCKLBW X0, X7
	PADDW X5, X7
	PADDW X6, X7
	PADDW X1, X7
	PADDW X1, X7
	PSRLW $2, X7
	PACKUSWB X0, X7
	PSADBW X2, X7
	PADDQ X7, X15

	ADDQ $8, AX
	CMPQ AX, BX
	JLT  chunk

	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

	// Every accumulator's high quadword is zero (all PSADBW inputs had
	// zero high halves), so the low quadword is the whole sum. Slot 4
	// (the centre) is deliberately skipped.
	MOVQ out+48(FP), R8
	MOVQ X8, AX
	MOVQ AX, 0(R8)
	MOVQ X9, AX
	MOVQ AX, 8(R8)
	MOVQ X10, AX
	MOVQ AX, 16(R8)
	MOVQ X11, AX
	MOVQ AX, 24(R8)
	MOVQ X12, AX
	MOVQ AX, 40(R8)
	MOVQ X13, AX
	MOVQ AX, 48(R8)
	MOVQ X14, AX
	MOVQ AX, 56(R8)
	MOVQ X15, AX
	MOVQ AX, 64(R8)
	RET

// func sadBlkAVX2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int
TEXT ·sadBlkAVX2(SB), NOSPLIT, $0-56
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	VPXOR Y7, Y7, Y7
	CMPQ BX, $16
	JEQ  w16

row:
	XORQ AX, AX

chunk32:
	LEAQ 32(AX), R8
	CMPQ R8, BX
	JGT  tail16
	VMOVDQU (DI)(AX*1), Y0
	VMOVDQU (SI)(AX*1), Y1
	VPSADBW Y1, Y0, Y0
	VPADDQ  Y0, Y7, Y7
	MOVQ R8, AX
	JMP  chunk32

tail16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	VMOVDQU (DI)(AX*1), X0
	VMOVDQU (SI)(AX*1), X1
	VPSADBW X1, X0, X0
	VPADDQ  Y0, Y7, Y7
	MOVQ R8, AX

tail8:
	CMPQ AX, BX
	JGE  rowdone
	VMOVQ (DI)(AX*1), X0
	VMOVQ (SI)(AX*1), X1
	VPSADBW X1, X0, X0
	VPADDQ  Y0, Y7, Y7

rowdone:
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row
	JMP  fold

	// Dominant macroblock shape: two 16-byte rows per 256-bit op.
w16:
	MOVQ R9, R10
	SHRQ $1, R10
	JZ   w16odd

w16pair:
	VMOVDQU (DI), X0
	VINSERTI128 $1, (DI)(CX*1), Y0, Y0
	VMOVDQU (SI), X1
	VINSERTI128 $1, (SI)(DX*1), Y1, Y1
	VPSADBW Y1, Y0, Y0
	VPADDQ  Y0, Y7, Y7
	LEAQ (DI)(CX*2), DI
	LEAQ (SI)(DX*2), SI
	DECQ R10
	JNZ  w16pair

w16odd:
	TESTQ $1, R9
	JZ    fold
	VMOVDQU (DI), X0
	VMOVDQU (SI), X1
	VPSADBW X1, X0, X0
	VPADDQ  Y0, Y7, Y7

fold:
	VEXTRACTI128 $1, Y7, X0
	VPADDQ  X7, X0, X0
	VPSHUFD $0xEE, X0, X1
	VPADDQ  X1, X0, X0
	VMOVQ X0, AX
	VZEROUPPER
	MOVQ AX, ret+48(FP)
	RET

// func intraSADBlkAVX2(p *byte, stride, w, h, mu int) int
TEXT ·intraSADBlkAVX2(SB), NOSPLIT, $0-48
	MOVQ p+0(FP), DI
	MOVQ stride+8(FP), CX
	MOVQ w+16(FP), BX
	MOVQ h+24(FP), R9
	MOVQ mu+32(FP), AX
	MOVQ $0x0101010101010101, R8
	IMULQ R8, AX
	VMOVQ AX, X5            // µ splat, low quadword (8-byte tails)
	VPBROADCASTQ X5, Y4     // µ splat, all 32 bytes (X4 = low 16)
	VPXOR Y7, Y7, Y7
	CMPQ BX, $16
	JEQ  w16

row:
	XORQ AX, AX

chunk32:
	LEAQ 32(AX), R8
	CMPQ R8, BX
	JGT  tail16
	VMOVDQU (DI)(AX*1), Y0
	VPSADBW Y4, Y0, Y0
	VPADDQ  Y0, Y7, Y7
	MOVQ R8, AX
	JMP  chunk32

tail16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	VMOVDQU (DI)(AX*1), X0
	VPSADBW X4, X0, X0
	VPADDQ  Y0, Y7, Y7
	MOVQ R8, AX

tail8:
	CMPQ AX, BX
	JGE  rowdone
	VMOVQ (DI)(AX*1), X0
	VPSADBW X5, X0, X0
	VPADDQ  Y0, Y7, Y7

rowdone:
	ADDQ CX, DI
	DECQ R9
	JNZ  row
	JMP  fold

w16:
	MOVQ R9, R10
	SHRQ $1, R10
	JZ   w16odd

w16pair:
	VMOVDQU (DI), X0
	VINSERTI128 $1, (DI)(CX*1), Y0, Y0
	VPSADBW Y4, Y0, Y0
	VPADDQ  Y0, Y7, Y7
	LEAQ (DI)(CX*2), DI
	DECQ R10
	JNZ  w16pair

w16odd:
	TESTQ $1, R9
	JZ    fold
	VMOVDQU (DI), X0
	VPSADBW X4, X0, X0
	VPADDQ  Y0, Y7, Y7

fold:
	VEXTRACTI128 $1, Y7, X0
	VPADDQ  X7, X0, X0
	VPSHUFD $0xEE, X0, X1
	VPADDQ  X1, X0, X0
	VMOVQ X0, AX
	VZEROUPPER
	MOVQ AX, ret+40(FP)
	RET

// func sadHpHBlkAVX2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int
TEXT ·sadHpHBlkAVX2(SB), NOSPLIT, $0-56
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	VPXOR Y7, Y7, Y7

row:
	XORQ AX, AX

chunk32:
	LEAQ 32(AX), R8
	CMPQ R8, BX
	JGT  tail16
	VMOVDQU (SI)(AX*1), Y1
	VPAVGB 1(SI)(AX*1), Y1, Y1
	VMOVDQU (DI)(AX*1), Y0
	VPSADBW Y1, Y0, Y0
	VPADDQ  Y0, Y7, Y7
	MOVQ R8, AX
	JMP  chunk32

tail16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	VMOVDQU (SI)(AX*1), X1
	VPAVGB 1(SI)(AX*1), X1, X1
	VMOVDQU (DI)(AX*1), X0
	VPSADBW X1, X0, X0
	VPADDQ  Y0, Y7, Y7
	MOVQ R8, AX

tail8:
	CMPQ AX, BX
	JGE  rowdone
	VMOVQ (SI)(AX*1), X1
	VMOVQ 1(SI)(AX*1), X2
	VPAVGB X2, X1, X1
	VMOVQ (DI)(AX*1), X0
	VPSADBW X1, X0, X0
	VPADDQ  Y0, Y7, Y7

rowdone:
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

	VEXTRACTI128 $1, Y7, X0
	VPADDQ  X7, X0, X0
	VPSHUFD $0xEE, X0, X1
	VPADDQ  X1, X0, X0
	VMOVQ X0, AX
	VZEROUPPER
	MOVQ AX, ret+48(FP)
	RET

// func sadHpVBlkAVX2(cur *byte, curStride int, ref *byte, refStride int, w, h int) int
TEXT ·sadHpVBlkAVX2(SB), NOSPLIT, $0-56
	MOVQ cur+0(FP), DI
	MOVQ curStride+8(FP), CX
	MOVQ ref+16(FP), SI
	MOVQ refStride+24(FP), DX
	MOVQ w+32(FP), BX
	MOVQ h+40(FP), R9
	VPXOR Y7, Y7, Y7

row:
	LEAQ (SI)(DX*1), R12
	XORQ AX, AX

chunk32:
	LEAQ 32(AX), R8
	CMPQ R8, BX
	JGT  tail16
	VMOVDQU (SI)(AX*1), Y1
	VPAVGB (R12)(AX*1), Y1, Y1
	VMOVDQU (DI)(AX*1), Y0
	VPSADBW Y1, Y0, Y0
	VPADDQ  Y0, Y7, Y7
	MOVQ R8, AX
	JMP  chunk32

tail16:
	LEAQ 16(AX), R8
	CMPQ R8, BX
	JGT  tail8
	VMOVDQU (SI)(AX*1), X1
	VPAVGB (R12)(AX*1), X1, X1
	VMOVDQU (DI)(AX*1), X0
	VPSADBW X1, X0, X0
	VPADDQ  Y0, Y7, Y7
	MOVQ R8, AX

tail8:
	CMPQ AX, BX
	JGE  rowdone
	VMOVQ (SI)(AX*1), X1
	VMOVQ (R12)(AX*1), X2
	VPAVGB X2, X1, X1
	VMOVQ (DI)(AX*1), X0
	VPSADBW X1, X0, X0
	VPADDQ  Y0, Y7, Y7

rowdone:
	ADDQ CX, DI
	ADDQ DX, SI
	DECQ R9
	JNZ  row

	VEXTRACTI128 $1, Y7, X0
	VPADDQ  X7, X0, X0
	VPSHUFD $0xEE, X0, X1
	VPADDQ  X1, X0, X0
	VMOVQ X0, AX
	VZEROUPPER
	MOVQ AX, ret+48(FP)
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
