package metrics

import (
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/mvfield"
)

func noisyPlane(w, h int, seed uint64) *frame.Plane {
	p := frame.NewPlane(w, h)
	s := seed | 1
	for i := range p.Pix {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		p.Pix[i] = uint8(s * 2685821657736338717 >> 56)
	}
	return p
}

func TestSADIdenticalBlocksIsZero(t *testing.T) {
	p := noisyPlane(32, 32, 7)
	if got := SAD(p, 4, 4, p, 4, 4, 16, 16); got != 0 {
		t.Fatalf("SAD of block with itself = %d", got)
	}
}

func TestSADKnownValue(t *testing.T) {
	a := frame.NewPlane(4, 4)
	b := frame.NewPlane(4, 4)
	a.Fill(10)
	b.Fill(13)
	if got := SAD(a, 0, 0, b, 0, 0, 4, 4); got != 3*16 {
		t.Fatalf("SAD = %d, want 48", got)
	}
}

func TestSADSymmetry(t *testing.T) {
	a := noisyPlane(24, 24, 3)
	b := noisyPlane(24, 24, 11)
	if SAD(a, 2, 2, b, 5, 6, 16, 16) != SAD(b, 5, 6, a, 2, 2, 16, 16) {
		t.Fatal("SAD not symmetric")
	}
}

func TestSADTriangleProperty(t *testing.T) {
	// SAD(a,c) <= SAD(a,b) + SAD(b,c) block-wise (it is an L1 metric).
	f := func(s1, s2, s3 uint64) bool {
		a := noisyPlane(16, 16, s1)
		b := noisyPlane(16, 16, s2)
		c := noisyPlane(16, 16, s3)
		ab := SAD(a, 0, 0, b, 0, 0, 16, 16)
		bc := SAD(b, 0, 0, c, 0, 0, 16, 16)
		ac := SAD(a, 0, 0, c, 0, 0, 16, 16)
		return ac <= ab+bc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSADCappedAgreesWhenUnderCap(t *testing.T) {
	a := noisyPlane(20, 20, 5)
	b := noisyPlane(20, 20, 9)
	full := SAD(a, 1, 1, b, 2, 3, 16, 16)
	if got := SADCapped(a, 1, 1, b, 2, 3, 16, 16, full); got != full {
		t.Fatalf("SADCapped under cap = %d, want %d", got, full)
	}
	// With a tiny cap the result must exceed the cap (signal to discard).
	if got := SADCapped(a, 1, 1, b, 2, 3, 16, 16, 0); got <= 0 && full > 0 {
		t.Fatalf("SADCapped with cap 0 = %d", got)
	}
}

func TestSADCappedNeverChangesWinner(t *testing.T) {
	cur := noisyPlane(48, 48, 21)
	ref := noisyPlane(48, 48, 22)
	// Exhaustive 5x5 search with and without capping must agree on argmin.
	bestFull, bestCapped := -1, -1
	var mvFull, mvCapped [2]int
	capv := 1 << 30
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			s := SAD(cur, 16, 16, ref, 16+dx, 16+dy, 16, 16)
			if bestFull < 0 || s < bestFull {
				bestFull, mvFull = s, [2]int{dx, dy}
			}
			sc := SADCapped(cur, 16, 16, ref, 16+dx, 16+dy, 16, 16, capv)
			if bestCapped < 0 || sc < bestCapped {
				bestCapped, mvCapped, capv = sc, [2]int{dx, dy}, sc
			}
		}
	}
	if mvFull != mvCapped || bestFull != bestCapped {
		t.Fatalf("capped argmin %v(%d) != full argmin %v(%d)", mvCapped, bestCapped, mvFull, bestFull)
	}
}

func TestSADHalfPelIntegerPositionsMatchSAD(t *testing.T) {
	cur := noisyPlane(48, 48, 13)
	ref := noisyPlane(48, 48, 17)
	ip := frame.Interpolate(ref)
	for _, mv := range []mvfield.MV{{X: 0, Y: 0}, {X: 2, Y: 4}, {X: -6, Y: 2}, {X: 8, Y: -8}} {
		fx, fy := mv.FullPel()
		want := SAD(cur, 16, 16, ref, 16+fx, 16+fy, 16, 16)
		got := SADMV(cur, 16, 16, ip, mv, 16, 16)
		if got != want {
			t.Fatalf("SADMV(%v) = %d, want %d", mv, got, want)
		}
	}
}

func TestSADHalfPelShiftRecovery(t *testing.T) {
	// A half-pel shifted pattern should match best at the true half-pel MV.
	ref := frame.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			ref.Set(x, y, uint8(((x/4)+(y/4))%2*200+20))
		}
	}
	ip := frame.Interpolate(ref)
	// Build cur as the half-pel interpolation at offset (+1, 0) half-pels.
	cur := frame.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			cur.Set(x, y, ip.AtClamped(2*x+1, 2*y))
		}
	}
	best, bestMV := 1<<30, mvfield.MV{}
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			mv := mvfield.MV{X: dx, Y: dy}
			s := SADMV(cur, 24, 24, ip, mv, 16, 16)
			if s < best {
				best, bestMV = s, mv
			}
		}
	}
	if bestMV != (mvfield.MV{X: 1, Y: 0}) {
		t.Fatalf("best half-pel MV = %v (SAD %d), want (1,0)", bestMV, best)
	}
	if best != 0 {
		t.Fatalf("best SAD = %d, want 0", best)
	}
}

func TestMeanAndIntraSAD(t *testing.T) {
	p := frame.NewPlane(4, 4)
	p.Fill(50)
	if Mean(p, 0, 0, 4, 4) != 50 {
		t.Fatal("Mean of constant block wrong")
	}
	if IntraSAD(p, 0, 0, 4, 4) != 0 {
		t.Fatal("IntraSAD of constant block must be 0")
	}
	// Half the block at 0, half at 100: mean 50, IntraSAD = 16*50.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if x < 2 {
				p.Set(x, y, 0)
			} else {
				p.Set(x, y, 100)
			}
		}
	}
	if got := IntraSAD(p, 0, 0, 4, 4); got != 16*50 {
		t.Fatalf("IntraSAD = %d, want 800", got)
	}
}

func TestIntraSADTextureOrdering(t *testing.T) {
	smooth := frame.NewPlane(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			smooth.Set(x, y, uint8(100+x)) // gentle ramp
		}
	}
	textured := noisyPlane(16, 16, 99)
	if IntraSAD(smooth, 0, 0, 16, 16) >= IntraSAD(textured, 0, 0, 16, 16) {
		t.Fatal("textured block should have higher IntraSAD than smooth ramp")
	}
}

func TestIntraSADNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := noisyPlane(16, 16, seed)
		return IntraSAD(p, 0, 0, 16, 16) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
