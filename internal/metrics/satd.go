package metrics

import "repro/internal/frame"

// SATD — the sum of absolute Hadamard-transformed differences — is the
// frequency-weighted matching criterion modern encoders use for sub-pel
// decisions. It is included as an alternative distortion for studies
// beyond the paper's SAD baseline.

// hadamard8 applies the 8-point Hadamard transform in place.
func hadamard8(v *[8]int32) {
	// Stage 1.
	a0, a1 := v[0]+v[4], v[0]-v[4]
	a2, a3 := v[1]+v[5], v[1]-v[5]
	a4, a5 := v[2]+v[6], v[2]-v[6]
	a6, a7 := v[3]+v[7], v[3]-v[7]
	// Stage 2.
	b0, b1 := a0+a4, a0-a4
	b2, b3 := a2+a6, a2-a6
	b4, b5 := a1+a5, a1-a5
	b6, b7 := a3+a7, a3-a7
	// Stage 3.
	v[0], v[1] = b0+b2, b0-b2
	v[2], v[3] = b1+b3, b1-b3
	v[4], v[5] = b4+b6, b4-b6
	v[6], v[7] = b5+b7, b5-b7
}

// satd8x8 computes the SATD of one 8×8 difference block, normalised by 8
// so magnitudes are comparable to SAD.
func satd8x8(diff *[64]int32) int {
	var col [8]int32
	// Rows.
	for r := 0; r < 8; r++ {
		var row [8]int32
		copy(row[:], diff[8*r:8*r+8])
		hadamard8(&row)
		copy(diff[8*r:8*r+8], row[:])
	}
	// Columns and absolute sum.
	sum := int64(0)
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			col[r] = diff[8*r+c]
		}
		hadamard8(&col)
		for r := 0; r < 8; r++ {
			v := col[r]
			if v < 0 {
				v = -v
			}
			sum += int64(v)
		}
	}
	return int((sum + 4) / 8)
}

// SATD returns the Hadamard-domain matching error between the w×h block
// of cur at (cx, cy) and the block of ref at (rx, ry). w and h must be
// multiples of 8; the result is the sum over the 8×8 sub-blocks.
func SATD(cur *frame.Plane, cx, cy int, ref *frame.Plane, rx, ry, w, h int) int {
	total := 0
	var diff [64]int32
	for by := 0; by < h; by += 8 {
		for bx := 0; bx < w; bx += 8 {
			for y := 0; y < 8; y++ {
				c := cur.Pix[(cy+by+y)*cur.Stride+cx+bx:]
				r := ref.Pix[(ry+by+y)*ref.Stride+rx+bx:]
				for x := 0; x < 8; x++ {
					diff[8*y+x] = int32(c[x]) - int32(r[x])
				}
			}
			total += satd8x8(&diff)
		}
	}
	return total
}
