package metrics

import (
	"testing"
	"testing/quick"

	"repro/internal/frame"
)

func TestSATDIdenticalBlocksIsZero(t *testing.T) {
	p := noisyPlane(32, 32, 3)
	if got := SATD(p, 0, 0, p, 0, 0, 16, 16); got != 0 {
		t.Fatalf("SATD of identical blocks = %d", got)
	}
}

func TestSATDDCDifference(t *testing.T) {
	// A constant difference d over an 8×8 block transforms to a single DC
	// coefficient of 64·d; with the /8 normalisation SATD = 8·d.
	a, b := frame.NewPlane(8, 8), frame.NewPlane(8, 8)
	a.Fill(100)
	b.Fill(97)
	got := SATD(a, 0, 0, b, 0, 0, 8, 8)
	if got != 8*3 {
		t.Fatalf("SATD of constant diff = %d, want %d", got, 8*3)
	}
}

func TestSATDNonNegativeAndSymmetric(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		a := noisyPlane(16, 16, s1)
		b := noisyPlane(16, 16, s2)
		ab := SATD(a, 0, 0, b, 0, 0, 16, 16)
		ba := SATD(b, 0, 0, a, 0, 0, 16, 16)
		return ab >= 0 && ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSATDPenalisesIncoherentError(t *testing.T) {
	// Equal-SAD errors: a pure pattern (compact in the Hadamard domain,
	// cheap to code) vs random noise (spread across all coefficients).
	// SATD must rank the noise error higher — this frequency awareness is
	// why encoders prefer SATD for sub-pel decisions.
	base := frame.NewPlane(8, 8)
	base.Fill(128)
	pattern, noise := base.Clone(), base.Clone()
	rng := uint64(5)
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 2685821657736338717
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			pattern.Set(x, y, 128+4) // constant +4: one DC coefficient
			if next()&1 == 0 {
				noise.Set(x, y, 128+4)
			} else {
				noise.Set(x, y, 128-4) // ±4 random signs
			}
		}
	}
	sadP := SAD(base, 0, 0, pattern, 0, 0, 8, 8)
	sadN := SAD(base, 0, 0, noise, 0, 0, 8, 8)
	if sadP != sadN {
		t.Fatalf("setup broken: SADs differ (%d vs %d)", sadP, sadN)
	}
	satdP := SATD(base, 0, 0, pattern, 0, 0, 8, 8)
	satdN := SATD(base, 0, 0, noise, 0, 0, 8, 8)
	if satdN <= satdP {
		t.Fatalf("SATD(noise)=%d not above SATD(pattern)=%d at equal SAD", satdN, satdP)
	}
}

func TestSADDecimatedExactOnGlobalShift(t *testing.T) {
	ref := noisyPlane(64, 64, 9)
	cur := ref.Shift(3, 2)
	// At the true displacement even the decimated SAD is exactly 0.
	if got := SADDecimated(cur, 24, 24, ref, 21, 22, 16, 16); got != 0 {
		t.Fatalf("decimated SAD at true MV = %d", got)
	}
	// And it is 4× the subsampled sum elsewhere.
	full := SADDecimated(cur, 24, 24, ref, 24, 24, 16, 16)
	if full <= 0 || full%4 != 0 {
		t.Fatalf("decimated SAD = %d, want positive multiple of 4", full)
	}
}

func TestSADHalfPelDecimatedMatchesIntegerPath(t *testing.T) {
	ref := noisyPlane(64, 64, 11)
	cur := noisyPlane(64, 64, 12)
	ip := frame.Interpolate(ref)
	want := SADDecimated(cur, 24, 24, ref, 26, 23, 16, 16)
	got := SADHalfPelDecimated(cur, 24, 24, ip, 2*26, 2*23, 16, 16)
	if got != want {
		t.Fatalf("half-pel decimated %d != integer decimated %d", got, want)
	}
}
