package metrics

import "encoding/binary"

// SWAR (SIMD-within-a-register) kernels for the SAD family: 8 pixels are
// processed per uint64 load by splitting the bytes into 16-bit lanes, so
// one ALU op acts on four samples at once. The scalar implementations in
// sad.go (sadScalar and friends) are the reference the differential and
// fuzz tests compare against; every kernel here returns bit-identical
// results, including SADCapped's per-row early-termination value.
//
// Lane layout: a uint64 holds four 16-bit lanes, each carrying one byte
// value in [0,255]. Per-lane |x−y| is computed borrow-free by biasing each
// lane with +256 before the subtraction, and lane sums are folded with one
// multiply (the classic Σ-via-0x0001000100010001 trick). Lane sums stay
// below 2^16 for any block up to 128 samples per fold, far above the 16×16
// macroblocks this codec uses; folds happen at least once per row.

const (
	laneLo   = 0x00ff00ff00ff00ff // low byte of each 16-bit lane
	laneOnes = 0x0001000100010001 // 1 in each 16-bit lane
	laneBias = 0x0100010001000100 // 256 in each 16-bit lane
)

// absDiffLanes returns the per-16-bit-lane |x−y| for lane values ≤ 0xff.
func absDiffLanes(x, y uint64) uint64 {
	// d lane = x − y + 256 ∈ [1,511]: bit 8 is set exactly when x ≥ y, and
	// no lane ever borrows from its neighbour. For x ≥ y the answer is
	// d−256; otherwise it is 256−d = (d XOR 0x1ff) − 255, since d fits in
	// 9 bits. Folding both cases: |x−y| = (d ^ 0x1ff·(1−m)) − 255 − m with
	// m the x≥y lane flag — branch-free and multiply-free.
	d := x + laneBias - y
	m := (d >> 8) & laneOnes
	nm := m ^ laneOnes
	return (d ^ (nm<<9 - nm)) - laneLo - m
}

// foldLanes sums the four 16-bit lanes. Valid while the true total < 2^16.
func foldLanes(v uint64) int {
	return int((v * laneOnes) >> 48)
}

// avgLanes returns the per-lane rounding-up average (x+y+1)>>1 for lane
// values ≤ 0xff — the H.263 half-pel rule. Sums fit 9 bits, so lanes never
// carry into their neighbours; the bit each lane leaks into the one below
// during the shift is cleared by the final mask.
func avgLanes(x, y uint64) uint64 {
	return ((x + y + laneOnes) >> 1) & laneLo
}

// quadLanes returns the per-lane (a+b+c+d+2)>>2 for lane values ≤ 0xff —
// the H.263 diagonal half-pel rule. Sums fit 10 bits per lane; shift leaks
// are masked off.
func quadLanes(a, b, c, d uint64) uint64 {
	return ((a + b + c + d + 2*laneOnes) >> 2) & laneLo
}

// unpack4 spreads the four bytes of v into the 16-bit lanes of a uint64.
func unpack4(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & laneLo
	return x
}

// load8 reads 8 bytes little-endian. binary.LittleEndian.Uint64 is an
// intrinsic (one MOVQ on amd64); the wrapper keeps call sites short enough
// for the inliner.
func load8(b []uint8) uint64 {
	return binary.LittleEndian.Uint64(b)
}
