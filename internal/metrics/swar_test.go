package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/frame"
)

// paddedPlane builds a w×h plane with a deliberately unaligned stride
// (stride = w + pad) filled from rng, so the SWAR loads hit every byte
// alignment.
func paddedPlane(rng *rand.Rand, w, h, pad int) *frame.Plane {
	p := &frame.Plane{W: w, H: h, Stride: w + pad, Pix: make([]uint8, (w+pad)*h)}
	rng.Read(p.Pix)
	return p
}

func TestAbsDiffLanesExhaustive(t *testing.T) {
	// Every byte pair, placed in every lane simultaneously.
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			x := uint64(a) * laneOnes
			y := uint64(b) * laneOnes
			want := a - b
			if want < 0 {
				want = -want
			}
			got := absDiffLanes(x, y)
			if got != uint64(want)*laneOnes {
				t.Fatalf("absDiffLanes(%#x, %#x) = %#x, want %#x per lane", x, y, got, want)
			}
		}
	}
}

// TestSWARMatchesScalar sweeps block widths 4/8/12/16/20, several heights,
// every block offset, and strides from tight to 17 bytes of padding,
// comparing all SWAR kernels against the scalar references.
func TestSWARMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, pad := range []int{0, 1, 3, 7, 17} {
		cur := paddedPlane(rng, 48, 24, pad)
		ref := paddedPlane(rng, 48, 24, 2*pad+1)
		ip := frame.Interpolate(ref)
		for _, w := range []int{4, 8, 12, 16, 20} {
			for _, h := range []int{4, 8, 16} {
				for cy := 0; cy+h <= cur.H; cy += 3 {
					for cx := 0; cx+w <= cur.W; cx++ {
						rx := (cx + 5) % (ref.W - w)
						ry := (cy + 2) % (ref.H - h)
						if got, want := SAD(cur, cx, cy, ref, rx, ry, w, h), sadScalar(cur, cx, cy, ref, rx, ry, w, h); got != want {
							t.Fatalf("SAD pad=%d w=%d h=%d (%d,%d)->(%d,%d): got %d want %d", pad, w, h, cx, cy, rx, ry, got, want)
						}
						for _, cap := range []int{0, 13, 200, 1 << 20} {
							if got, want := SADCapped(cur, cx, cy, ref, rx, ry, w, h, cap), sadCappedScalar(cur, cx, cy, ref, rx, ry, w, h, cap); got != want {
								t.Fatalf("SADCapped cap=%d pad=%d w=%d h=%d: got %d want %d", cap, pad, w, h, got, want)
							}
						}
						if got, want := IntraSAD(cur, cx, cy, w, h), intraSADScalar(cur, cx, cy, w, h); got != want {
							t.Fatalf("IntraSAD pad=%d w=%d h=%d (%d,%d): got %d want %d", pad, w, h, cx, cy, got, want)
						}
						// Half-pel: exercise both the aligned fast path and
						// the clamped fallback (odd phases, borders).
						for _, d := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {-3, -3}, {2*ref.W - 2*w - 1, 0}} {
							hx, hy := 2*rx+d[0], 2*ry+d[1]
							if got, want := SADHalfPel(cur, cx, cy, ip, hx, hy, w, h), sadHalfPelScalar(cur, cx, cy, ip, hx, hy, w, h); got != want {
								t.Fatalf("SADHalfPel pad=%d w=%d h=%d h(%d,%d): got %d want %d", pad, w, h, hx, hy, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestSWARWideBlocks pins the fold-overflow guard: widths beyond 256
// samples (where one row would saturate the 16-bit lane fold) must take
// the scalar path and still return exact values.
func TestSWARWideBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cur := paddedPlane(rng, 360, 4, 3)
	ref := paddedPlane(rng, 360, 4, 3)
	// Worst case: all-255 vs all-0 block.
	hot := paddedPlane(rng, 360, 4, 0)
	for i := range hot.Pix {
		hot.Pix[i] = 255
	}
	zero := paddedPlane(rng, 360, 4, 0)
	for i := range zero.Pix {
		zero.Pix[i] = 0
	}
	for _, pl := range [][2]*frame.Plane{{cur, ref}, {hot, zero}} {
		for _, w := range []int{264, 352} {
			if got, want := SAD(pl[0], 0, 0, pl[1], 0, 0, w, 2), sadScalar(pl[0], 0, 0, pl[1], 0, 0, w, 2); got != want {
				t.Errorf("SAD w=%d: got %d want %d", w, got, want)
			}
			if got, want := SADCapped(pl[0], 0, 0, pl[1], 0, 0, w, 2, 1<<30), sadCappedScalar(pl[0], 0, 0, pl[1], 0, 0, w, 2, 1<<30); got != want {
				t.Errorf("SADCapped w=%d: got %d want %d", w, got, want)
			}
			if got, want := IntraSAD(pl[0], 0, 0, w, 2), intraSADScalar(pl[0], 0, 0, w, 2); got != want {
				t.Errorf("IntraSAD w=%d: got %d want %d", w, got, want)
			}
		}
	}
}

// FuzzSADSWAR feeds arbitrary pixel data, block geometry and offsets
// through every SWAR kernel and cross-checks the scalar references.
func FuzzSADSWAR(f *testing.F) {
	f.Add([]byte("seedseedseedseedseedseedseedseed"), uint8(16), uint8(8), uint8(1), uint8(2), uint8(0), uint8(0), uint8(3))
	f.Add(make([]byte, 64), uint8(4), uint8(4), uint8(0), uint8(0), uint8(1), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, pix []byte, wSel, hSel, cxSel, cySel, rxSel, rySel, pad8 uint8) {
		widths := []int{4, 8, 12, 16, 20}
		w := widths[int(wSel)%len(widths)]
		h := 1 + int(hSel)%16
		pad := int(pad8) % 9
		pw, ph := w+8, h+8
		need := (pw + pad) * ph
		buf := make([]uint8, 2*need)
		for i := range buf {
			if len(pix) > 0 {
				buf[i] = pix[i%len(pix)]
			}
		}
		cur := &frame.Plane{W: pw, H: ph, Stride: pw + pad, Pix: buf[:need]}
		ref := &frame.Plane{W: pw, H: ph, Stride: pw + pad, Pix: buf[need:]}
		cx, cy := int(cxSel)%(pw-w+1), int(cySel)%(ph-h+1)
		rx, ry := int(rxSel)%(pw-w+1), int(rySel)%(ph-h+1)

		if got, want := SAD(cur, cx, cy, ref, rx, ry, w, h), sadScalar(cur, cx, cy, ref, rx, ry, w, h); got != want {
			t.Fatalf("SAD: got %d want %d", got, want)
		}
		cap := int(pad8) * 37
		if got, want := SADCapped(cur, cx, cy, ref, rx, ry, w, h, cap), sadCappedScalar(cur, cx, cy, ref, rx, ry, w, h, cap); got != want {
			t.Fatalf("SADCapped(cap=%d): got %d want %d", cap, got, want)
		}
		if got, want := IntraSAD(cur, cx, cy, w, h), intraSADScalar(cur, cx, cy, w, h); got != want {
			t.Fatalf("IntraSAD: got %d want %d", got, want)
		}
		ip := frame.Interpolate(ref)
		hx, hy := 2*rx+int(rySel)%3-1, 2*ry+int(rxSel)%3-1
		if got, want := SADHalfPel(cur, cx, cy, ip, hx, hy, w, h), sadHalfPelScalar(cur, cx, cy, ip, hx, hy, w, h); got != want {
			t.Fatalf("SADHalfPel(%d,%d): got %d want %d", hx, hy, got, want)
		}
	})
}
