package mvfield

import "fmt"

// Field is a motion vector per macroblock, in raster order. Fields for the
// previous and current frame together form the spatio-temporal
// neighbourhood PBM draws its predictors from (paper Fig. 2).
type Field struct {
	Cols, Rows int
	mv         []MV
	valid      []bool // set once a block's vector has been computed
}

// NewField returns an empty cols×rows field.
func NewField(cols, rows int) *Field {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("mvfield: invalid field size %dx%d", cols, rows))
	}
	return &Field{
		Cols:  cols,
		Rows:  rows,
		mv:    make([]MV, cols*rows),
		valid: make([]bool, cols*rows),
	}
}

// In reports whether (bx, by) is a valid block coordinate.
func (f *Field) In(bx, by int) bool {
	return bx >= 0 && by >= 0 && bx < f.Cols && by < f.Rows
}

// Set records the motion vector for block (bx, by) and marks it computed.
func (f *Field) Set(bx, by int, m MV) {
	f.mv[by*f.Cols+bx] = m
	f.valid[by*f.Cols+bx] = true
}

// At returns the motion vector for block (bx, by). Blocks that have not
// been Set yet report the zero vector, mirroring encoder behaviour where
// unavailable predictors default to (0,0).
func (f *Field) At(bx, by int) MV {
	if !f.In(bx, by) {
		return Zero
	}
	return f.mv[by*f.Cols+bx]
}

// Known reports whether block (bx, by) has a computed vector. Out-of-range
// blocks are unknown.
func (f *Field) Known(bx, by int) bool {
	if !f.In(bx, by) {
		return false
	}
	return f.valid[by*f.Cols+bx]
}

// Reset clears all vectors and computed marks for reuse on a new frame.
func (f *Field) Reset() {
	for i := range f.mv {
		f.mv[i] = Zero
		f.valid[i] = false
	}
}

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	g := NewField(f.Cols, f.Rows)
	copy(g.mv, f.mv)
	copy(g.valid, f.valid)
	return g
}

// MedianPredictor returns the H.263 median predictor for block (bx, by):
// the component-wise median of the left, above and above-right neighbours
// in the current field. Unavailable neighbours contribute the zero vector,
// which matches the standard's border rules closely enough for rate
// accounting purposes.
func (f *Field) MedianPredictor(bx, by int) MV {
	left := f.At(bx-1, by)
	up := f.At(bx, by-1)
	upRight := f.At(bx+1, by-1)
	if by == 0 {
		// First row: predictor is just the left neighbour.
		return left
	}
	return Median(left, up, upRight)
}

// Candidates returns the spatio-temporal predictor set for block (bx, by),
// following Fig. 2 of the paper: the causal spatial neighbours from the
// current frame (mv1..mv4 — left, up-left, up, up-right; mv5..mv8 are not
// yet computed), the collocated vector and its eight neighbours from the
// previous frame, and the zero vector. prev may be nil (first P-frame); the
// result is deduplicated and always non-empty.
func (f *Field) Candidates(prev *Field, bx, by int) []MV {
	return f.AppendCandidates(make([]MV, 0, 14), prev, bx, by)
}

// AppendCandidates is Candidates appending into dst, so per-block callers
// (the PBM inner loop runs once per macroblock) can reuse a
// stack-allocated buffer instead of allocating. The candidate set is at
// most 14 vectors, deduplicated by linear scan.
func (f *Field) AppendCandidates(dst []MV, prev *Field, bx, by int) []MV {
	out := dst
	add := func(m MV) {
		for _, v := range out {
			if v == m {
				return
			}
		}
		out = append(out, m)
	}
	add(Zero)
	// Spatial neighbours in the current frame (causal only).
	for _, d := range [][2]int{{-1, 0}, {-1, -1}, {0, -1}, {1, -1}} {
		nx, ny := bx+d[0], by+d[1]
		if f.Known(nx, ny) {
			add(f.At(nx, ny))
		}
	}
	// Temporal neighbours: collocated block and its 8-neighbourhood in the
	// previous frame's field.
	if prev != nil {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := bx+dx, by+dy
				if prev.Known(nx, ny) {
					add(prev.At(nx, ny))
				}
			}
		}
	}
	return out
}

// Smoothness returns the mean L1 difference (half-pel units) between
// horizontally and vertically adjacent vectors — a coherence measure for
// comparing the motion fields produced by FSBM and PBM/ACBM.
func (f *Field) Smoothness() float64 {
	var sum, n int
	for by := 0; by < f.Rows; by++ {
		for bx := 0; bx < f.Cols; bx++ {
			if bx+1 < f.Cols {
				sum += f.At(bx, by).Sub(f.At(bx+1, by)).L1()
				n++
			}
			if by+1 < f.Rows {
				sum += f.At(bx, by).Sub(f.At(bx, by+1)).L1()
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
