package mvfield

import "testing"

func TestFieldSetAtKnown(t *testing.T) {
	f := NewField(4, 3)
	if f.Known(0, 0) {
		t.Fatal("fresh field has known vectors")
	}
	f.Set(2, 1, MV{4, -2})
	if !f.Known(2, 1) || f.At(2, 1) != (MV{4, -2}) {
		t.Fatal("Set/At wrong")
	}
	if f.At(-1, 0) != Zero || f.At(0, 99) != Zero {
		t.Fatal("out-of-range At must return Zero")
	}
	if f.Known(-1, 0) || f.Known(4, 0) {
		t.Fatal("out-of-range blocks must be unknown")
	}
}

func TestFieldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewField(0, 3) did not panic")
		}
	}()
	NewField(0, 3)
}

func TestFieldResetAndClone(t *testing.T) {
	f := NewField(2, 2)
	f.Set(1, 1, MV{2, 2})
	g := f.Clone()
	f.Reset()
	if f.Known(1, 1) || f.At(1, 1) != Zero {
		t.Fatal("Reset did not clear")
	}
	if !g.Known(1, 1) || g.At(1, 1) != (MV{2, 2}) {
		t.Fatal("Clone shares state with original")
	}
}

func TestMedianPredictorFirstRow(t *testing.T) {
	f := NewField(4, 2)
	f.Set(0, 0, MV{6, 0})
	// First row: predictor for (1,0) is the left neighbour only.
	if got := f.MedianPredictor(1, 0); got != (MV{6, 0}) {
		t.Fatalf("first-row predictor = %v", got)
	}
	// Block (0,0) has no left neighbour: zero.
	if got := f.MedianPredictor(0, 0); got != Zero {
		t.Fatalf("origin predictor = %v", got)
	}
}

func TestMedianPredictorInterior(t *testing.T) {
	f := NewField(4, 3)
	f.Set(0, 1, MV{2, 2})  // left of (1,1)
	f.Set(1, 0, MV{4, 0})  // above
	f.Set(2, 0, MV{8, -2}) // above-right
	want := Median(MV{2, 2}, MV{4, 0}, MV{8, -2})
	if got := f.MedianPredictor(1, 1); got != want {
		t.Fatalf("interior predictor = %v, want %v", got, want)
	}
}

func TestCandidatesCausality(t *testing.T) {
	f := NewField(3, 3)
	prev := NewField(3, 3)
	// Mark every previous-frame vector known with distinct values.
	for by := 0; by < 3; by++ {
		for bx := 0; bx < 3; bx++ {
			prev.Set(bx, by, FromFullPel(bx, by))
		}
	}
	// Current frame: only blocks before (1,1) in raster order are known.
	f.Set(0, 0, FromFullPel(5, 5))
	f.Set(1, 0, FromFullPel(6, 6))
	f.Set(2, 0, FromFullPel(7, 7))
	f.Set(0, 1, FromFullPel(8, 8))

	got := f.Candidates(prev, 1, 1)
	seen := make(map[MV]bool)
	for _, m := range got {
		if seen[m] {
			t.Fatalf("duplicate candidate %v", m)
		}
		seen[m] = true
	}
	if !seen[Zero] {
		t.Fatal("zero vector missing from candidates")
	}
	// All four causal spatial neighbours must be present.
	for _, m := range []MV{FromFullPel(5, 5), FromFullPel(6, 6), FromFullPel(7, 7), FromFullPel(8, 8)} {
		if !seen[m] {
			t.Fatalf("causal spatial candidate %v missing", m)
		}
	}
	// All nine temporal neighbours must be present.
	for by := 0; by < 3; by++ {
		for bx := 0; bx < 3; bx++ {
			if !seen[FromFullPel(bx, by)] {
				t.Fatalf("temporal candidate (%d,%d) missing", bx, by)
			}
		}
	}
}

func TestCandidatesNoPrevAndFreshField(t *testing.T) {
	f := NewField(3, 3)
	got := f.Candidates(nil, 0, 0)
	if len(got) != 1 || got[0] != Zero {
		t.Fatalf("fresh field candidates = %v, want [Zero]", got)
	}
}

func TestSmoothness(t *testing.T) {
	f := NewField(2, 2)
	// All-zero field is perfectly smooth.
	if f.Smoothness() != 0 {
		t.Fatal("zero field smoothness != 0")
	}
	f.Set(0, 0, FromFullPel(1, 0)) // (2,0) half-pel
	// Pairs: (0,0)-(1,0): 2; (0,0)-(0,1): 2; (1,0)-(1,1): 0; (0,1)-(1,1): 0.
	if got := f.Smoothness(); got != 1.0 {
		t.Fatalf("smoothness = %v, want 1.0", got)
	}
}
