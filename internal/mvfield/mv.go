// Package mvfield defines motion vectors, per-macroblock motion vector
// fields and the spatio-temporal predictor neighbourhood of Fig. 2 in the
// paper, plus the median prediction used to rate differential MVs.
//
// Motion vectors are stored in half-pel units throughout the repository:
// MV{X: 2, Y: -3} means one pel right and one-and-a-half pels up. Block
// matching at integer precision uses even components only; the half-pel
// refinement step may set odd components.
package mvfield

import "fmt"

// MV is a motion vector in half-pel units. +X points right, +Y points down.
type MV struct {
	X, Y int
}

// Zero is the null displacement.
var Zero = MV{}

// FromFullPel builds an MV from full-pel components.
func FromFullPel(x, y int) MV { return MV{2 * x, 2 * y} }

// Add returns m + n.
func (m MV) Add(n MV) MV { return MV{m.X + n.X, m.Y + n.Y} }

// Sub returns m - n (the motion vector difference used for coding).
func (m MV) Sub(n MV) MV { return MV{m.X - n.X, m.Y - n.Y} }

// Neg returns -m.
func (m MV) Neg() MV { return MV{-m.X, -m.Y} }

// IsFullPel reports whether both components are on the integer-pel grid.
func (m MV) IsFullPel() bool { return m.X%2 == 0 && m.Y%2 == 0 }

// FullPel returns the components in full pels, truncating toward zero.
func (m MV) FullPel() (x, y int) { return m.X / 2, m.Y / 2 }

// L1 returns |X| + |Y| in half-pel units.
func (m MV) L1() int { return abs(m.X) + abs(m.Y) }

// Linf returns max(|X|, |Y|) in half-pel units.
func (m MV) Linf() int {
	ax, ay := abs(m.X), abs(m.Y)
	if ax > ay {
		return ax
	}
	return ay
}

// ErrFullPel returns the Chebyshev distance between m and n measured in
// full pels, rounding half-pel remainders up. It is the motion vector error
// metric of the Fig. 4 study (error = 0, 1, 2, ... pels).
func (m MV) ErrFullPel(n MV) int {
	d := m.Sub(n).Linf()
	return (d + 1) / 2
}

// Clamp limits both components to [-lim, lim] (half-pel units).
func (m MV) Clamp(lim int) MV {
	c := func(v int) int {
		if v < -lim {
			return -lim
		}
		if v > lim {
			return lim
		}
		return v
	}
	return MV{c(m.X), c(m.Y)}
}

// String formats the vector in full-pel units, e.g. "(+1.5,-2)".
func (m MV) String() string {
	f := func(h int) string {
		if h%2 == 0 {
			return fmt.Sprintf("%+d", h/2)
		}
		return fmt.Sprintf("%+.1f", float64(h)/2)
	}
	return "(" + f(m.X) + "," + f(m.Y) + ")"
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Median returns the component-wise median of three vectors, the H.263
// predictor used for differential motion vector coding.
func Median(a, b, c MV) MV {
	return MV{median3(a.X, b.X, c.X), median3(a.Y, b.Y, c.Y)}
}

func median3(a, b, c int) int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
