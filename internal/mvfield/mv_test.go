package mvfield

import (
	"testing"
	"testing/quick"
)

func TestMVArithmetic(t *testing.T) {
	a, b := MV{4, -2}, MV{-1, 3}
	if a.Add(b) != (MV{3, 1}) {
		t.Fatal("Add wrong")
	}
	if a.Sub(b) != (MV{5, -5}) {
		t.Fatal("Sub wrong")
	}
	if a.Neg() != (MV{-4, 2}) {
		t.Fatal("Neg wrong")
	}
}

func TestFromFullPel(t *testing.T) {
	m := FromFullPel(3, -4)
	if m != (MV{6, -8}) || !m.IsFullPel() {
		t.Fatalf("FromFullPel = %v", m)
	}
	x, y := m.FullPel()
	if x != 3 || y != -4 {
		t.Fatalf("FullPel = (%d,%d)", x, y)
	}
	if (MV{1, 0}).IsFullPel() {
		t.Fatal("half-pel vector reported as full-pel")
	}
}

func TestNorms(t *testing.T) {
	m := MV{-3, 2}
	if m.L1() != 5 {
		t.Fatalf("L1 = %d", m.L1())
	}
	if m.Linf() != 3 {
		t.Fatalf("Linf = %d", m.Linf())
	}
	if Zero.L1() != 0 || Zero.Linf() != 0 {
		t.Fatal("zero norms wrong")
	}
}

func TestErrFullPel(t *testing.T) {
	cases := []struct {
		a, b MV
		want int
	}{
		{MV{0, 0}, MV{0, 0}, 0},
		{FromFullPel(2, 1), FromFullPel(2, 1), 0},
		{FromFullPel(2, 1), FromFullPel(3, 1), 1},
		{FromFullPel(0, 0), FromFullPel(-5, 2), 5},
		{MV{1, 0}, MV{0, 0}, 1}, // half-pel residue rounds up
	}
	for _, c := range cases {
		if got := c.a.ErrFullPel(c.b); got != c.want {
			t.Errorf("ErrFullPel(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	m := MV{40, -40}
	c := m.Clamp(30)
	if c != (MV{30, -30}) {
		t.Fatalf("Clamp = %v", c)
	}
	if (MV{5, 5}).Clamp(30) != (MV{5, 5}) {
		t.Fatal("Clamp altered in-range vector")
	}
}

func TestString(t *testing.T) {
	if got := (MV{3, -4}).String(); got != "(+1.5,-2)" {
		t.Fatalf("String = %q", got)
	}
	if got := Zero.String(); got != "(+0,+0)" {
		t.Fatalf("String = %q", got)
	}
}

func TestMedian(t *testing.T) {
	a, b, c := MV{0, 10}, MV{4, 0}, MV{2, -6}
	if Median(a, b, c) != (MV{2, 0}) {
		t.Fatalf("Median = %v", Median(a, b, c))
	}
	// Median of identical vectors is that vector.
	if Median(a, a, a) != a {
		t.Fatal("Median of identical vectors wrong")
	}
}

func TestMedianPermutationInvariant(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := MV{int(ax), int(ay)}
		b := MV{int(bx), int(by)}
		c := MV{int(cx), int(cy)}
		m := Median(a, b, c)
		return m == Median(a, c, b) && m == Median(b, a, c) &&
			m == Median(b, c, a) && m == Median(c, a, b) && m == Median(c, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianBetweenExtremes(t *testing.T) {
	f := func(ax, bx, cx int8) bool {
		m := median3(int(ax), int(bx), int(cx))
		lo, hi := int(ax), int(ax)
		for _, v := range []int{int(bx), int(cx)} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
