package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count: power-of-two upper bounds from 1µs
// (bucket 0) through 2^(histBuckets-2) µs ≈ 33.6s (bucket
// histBuckets-2), plus the +Inf overflow bucket. Log bucketing keeps
// Observe at one bits.Len64 and one atomic add — cheap enough for every
// frame of every session — while spanning sub-millisecond entropy
// passes and multi-second stalls in one fixed slab.
const histBuckets = 27

// Histogram is a lock-free log-bucketed latency histogram exposed in
// the Prometheus text format. The zero value is NOT ready; use
// NewHistogram. All methods are safe for concurrent use.
type Histogram struct {
	name    string
	help    string
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// NewHistogram builds a histogram exposed under the given metric name
// (conventionally ending in _seconds).
func NewHistogram(name, help string) *Histogram {
	return &Histogram{name: name, help: help}
}

// Observe records one duration. Non-positive observations land in the
// first bucket (they happen: a clock step, or a sub-resolution phase).
func (h *Histogram) Observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for 0..1µs, k for (2^(k-1), 2^k] µs
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// bucketBoundSeconds is bucket b's upper bound in seconds.
func bucketBoundSeconds(b int) float64 {
	return float64(uint64(1)<<uint(b)) / 1e6
}

// WriteProm writes the histogram in Prometheus text exposition format
// 0.0.4: HELP/TYPE, cumulative le buckets in seconds, +Inf, _sum and
// _count. Bucket counts are loaded low-to-high, so a concurrent
// Observe can only make the rendered buckets conservatively cumulative
// (a higher bucket may include an observation a lower one missed),
// never decreasing.
func (h *Histogram) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum int64
	for b := 0; b < histBuckets-1; b++ {
		cum += h.buckets[b].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, fmtBound(bucketBoundSeconds(b)), cum)
	}
	cum += h.buckets[histBuckets-1].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
}

// fmtBound renders a bucket bound without exponent notation ambiguity
// ("1e-06" is valid Prometheus, but fixed-point reads better in tests
// and terminals).
func fmtBound(s float64) string {
	return fmt.Sprintf("%g", s)
}
