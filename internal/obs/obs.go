// Package obs is the serving stack's observability substrate: a
// frame-level flight recorder cheap enough to leave on for every
// session, log-bucketed latency histograms for the /metrics exposition,
// and the trace identity that ties a gateway session to the backend
// frame timeline it produced.
//
// Everything here observes and nothing actuates: no recorder state is
// ever read back into an encode decision, so turning observation on or
// off cannot change a single output bit — the invariant the codec's
// byte-identity tests pin with the recorder attached.
//
// The recorder's write path is designed for the per-macroblock and
// per-frame hot paths it instruments: preallocated slab of slots, one
// atomic store per field, no locks, no allocation after construction,
// and a nil *FlightRecorder is a valid no-op receiver (the
// "compiled-out" baseline the overhead guard benchmarks against).
package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// TraceIDHeader is the HTTP header (and trailer) carrying a session's
// trace identity across the gateway hop. The gateway mints an ID per
// session (honoring an inbound one), forwards it to the backend, and
// both sides report it in their trailers, so a load-test outlier is
// traceable to a specific backend, attempt and frame timeline.
const TraceIDHeader = "X-Vcodec-Trace"

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a valid (if shared) identity rather than a panic path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeTraceID validates an externally supplied trace ID: 1..64
// characters of [A-Za-z0-9_-]. Anything else returns "" and the caller
// mints a fresh ID — inbound headers never inject log or JSON content.
func SanitizeTraceID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}
