package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDFormat(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: want 16 hex chars", id)
		}
		if SanitizeTraceID(id) != id {
			t.Fatalf("minted trace ID %q does not survive sanitization", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q in 100 draws", id)
		}
		seen[id] = true
	}
}

func TestSanitizeTraceID(t *testing.T) {
	for _, ok := range []string{"abc", "A-b_9", strings.Repeat("x", 64)} {
		if SanitizeTraceID(ok) != ok {
			t.Errorf("sanitize rejected %q", ok)
		}
	}
	for _, bad := range []string{"", "a b", "x\n", "id\"}", strings.Repeat("x", 65), "é"} {
		if got := SanitizeTraceID(bad); got != "" {
			t.Errorf("sanitize accepted %q as %q", bad, got)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	h := NewHistogram("test_latency_seconds", "test latencies")
	durations := []time.Duration{
		0, 500 * time.Nanosecond, time.Microsecond, 3 * time.Microsecond,
		time.Millisecond, 20 * time.Millisecond, time.Second, 2 * time.Minute,
	}
	var sum time.Duration
	for _, d := range durations {
		h.Observe(d)
		sum += d
	}
	var b strings.Builder
	h.WriteProm(&b)
	out := b.String()

	if !strings.Contains(out, "# TYPE test_latency_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	// Buckets must be cumulative and non-decreasing, count == +Inf.
	var prev, inf, count int64 = -1, -1, -1
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "test_latency_seconds_bucket"):
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, "test_latency_seconds_count"):
			count, _ = strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		}
	}
	if inf != int64(len(durations)) {
		t.Fatalf("+Inf bucket %d, want %d", inf, len(durations))
	}
	if count != inf {
		t.Fatalf("_count %d != +Inf bucket %d", count, inf)
	}
	wantSum := fmt.Sprintf("%g", sum.Seconds())
	if !strings.Contains(out, "test_latency_seconds_sum "+wantSum) {
		t.Fatalf("sum line missing %s:\n%s", wantSum, out)
	}
}

func TestRecorderTimelineAndWrap(t *testing.T) {
	r := NewFlightRecorder("t1", Meta{Priority: "live", Searcher: "acbm", PinnedLevel: -1}, 8)
	const frames = 20 // 8-slot ring: only the last 8 survive
	for i := 0; i < frames; i++ {
		r.FrameRead(i, time.Millisecond)
		if i == 5 {
			r.FrameActuated(i, 2)
		}
		r.FrameAnalyzed(i, 2*time.Millisecond, 100*time.Microsecond, 40*time.Microsecond, i == 0, 16+i)
		r.FrameWritten(i, 300*time.Microsecond, 1000+i)
		r.FrameEmitted(i, 50*time.Microsecond)
	}
	r.Finish(nil)
	rec := r.Snapshot()
	if rec.Frames != frames {
		t.Fatalf("frames %d, want %d", rec.Frames, frames)
	}
	if rec.DroppedFrames != frames-8 {
		t.Fatalf("dropped %d, want %d", rec.DroppedFrames, frames-8)
	}
	if len(rec.Events) != 8 {
		t.Fatalf("%d events, want 8", len(rec.Events))
	}
	for i, ev := range rec.Events {
		want := frames - 8 + i
		if ev.Index != want {
			t.Fatalf("event %d has index %d, want %d", i, ev.Index, want)
		}
		if ev.Qp != 16+want || ev.Bits != 1000+want {
			t.Fatalf("event %d: qp %d bits %d, want %d/%d", i, ev.Qp, ev.Bits, 16+want, 1000+want)
		}
		if ev.QosLevel != 2 {
			t.Fatalf("event %d: qos level %d, want 2 (actuated at frame 5)", i, ev.QosLevel)
		}
		if ev.AnalysisMs != 2 || ev.ReadMs != 1 {
			t.Fatalf("event %d: analysis %v read %v", i, ev.AnalysisMs, ev.ReadMs)
		}
	}
	if !rec.Done || rec.Error != "" {
		t.Fatalf("record done=%v err=%q", rec.Done, rec.Error)
	}
}

// TestRecorderConcurrent is the -race hammer: analysis-side writes,
// writer-goroutine writes, and snapshot readers all running at once.
func TestRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder("hammer", Meta{PinnedLevel: -1}, 64)
	const frames = 2000
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // session goroutine: read + analysis
		defer wg.Done()
		for i := 0; i < frames; i++ {
			r.FrameRead(i, time.Microsecond)
			r.FrameAnalyzed(i, time.Millisecond, 0, 0, false, 16)
		}
	}()
	go func() { // pipeline writer goroutine: entropy + emit
		defer wg.Done()
		for i := 0; i < frames; i++ {
			r.FrameWritten(i, time.Microsecond, 500)
			r.FrameEmitted(i, time.Microsecond)
		}
	}()
	go func() { // debug endpoint reader
		defer wg.Done()
		for i := 0; i < 200; i++ {
			rec := r.Snapshot()
			for j := 1; j < len(rec.Events); j++ {
				if rec.Events[j].Index != rec.Events[j-1].Index+1 {
					t.Errorf("non-contiguous events: %d after %d", rec.Events[j].Index, rec.Events[j-1].Index)
					return
				}
			}
		}
	}()
	wg.Wait()
	r.Finish(nil)
	if got := r.Snapshot().Frames; got != frames {
		t.Fatalf("frames %d, want %d", got, frames)
	}
}

// TestNilRecorder pins the compiled-out baseline: every method of a nil
// recorder is a safe no-op.
func TestNilRecorder(t *testing.T) {
	var r *FlightRecorder
	r.FrameRead(0, time.Second)
	r.FrameActuated(0, 1)
	r.SetQosLevel(1)
	r.FrameAnalyzed(0, time.Second, 0, 0, true, 16)
	r.FrameWritten(0, time.Second, 1)
	r.FrameEmitted(0, time.Second)
	r.Finish(nil)
	if r.TraceID() != "" || r.Snapshot().Frames != 0 || r.Summarize().TraceID != "" {
		t.Fatal("nil recorder not a no-op")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	g := NewRegistry(2)
	mk := func(id string) *FlightRecorder { return NewFlightRecorder(id, Meta{}, 4) }
	a, b, c := mk("a"), mk("b"), mk("c")
	g.Add(a)
	g.Add(b)
	if g.Lookup("a") != a || g.Lookup("b") != b {
		t.Fatal("live lookup failed")
	}
	live, completed := g.Sessions()
	if len(live) != 2 || len(completed) != 0 {
		t.Fatalf("live %d completed %d, want 2/0", len(live), len(completed))
	}
	g.Complete(a)
	g.Complete(b)
	g.Add(c)
	g.Complete(c) // ring cap 2: "a" falls out
	if g.Lookup("a") != nil {
		t.Fatal("evicted session still resolvable")
	}
	if g.Lookup("b") != b || g.Lookup("c") != c {
		t.Fatal("completed lookup failed")
	}
	live, completed = g.Sessions()
	if len(live) != 0 || len(completed) != 2 {
		t.Fatalf("live %d completed %d, want 0/2", len(live), len(completed))
	}
	if completed[0].TraceID != "c" {
		t.Fatalf("completed not newest-first: %q", completed[0].TraceID)
	}
	if g.Lookup("nope") != nil {
		t.Fatal("unknown ID resolved")
	}
}
