package obs

import (
	"sync/atomic"
	"time"
)

// DefaultRingFrames is the per-session ring capacity (a power of two):
// long sessions keep their most recent frames, short ones keep all.
const DefaultRingFrames = 1024

// frameSlot is one frame's event record in the ring. Every field is an
// independent atomic: the analysis-side fields are written by the
// session goroutine, the entropy/emit fields by the pipeline's writer
// goroutine, and the debug endpoints read all of them concurrently. The
// index field is the slot's occupancy marker — a reader that observes a
// different index before and after its field loads discards the slot as
// a wrap-around mixture.
type frameSlot struct {
	index      atomic.Int64 // frame number occupying the slot, -1 empty
	readNs     atomic.Int64 // Y4M source-frame read
	queueNs    atomic.Int64 // summed shared-pool queue wait across MB tasks
	stallNs    atomic.Int64 // worst single MB task's queue wait (preemption stall)
	analysisNs atomic.Int64
	entropyNs  atomic.Int64
	emitNs     atomic.Int64 // packet write + client flush
	bits       atomic.Int64
	qp         atomic.Int64
	qosLevel   atomic.Int64
	flags      atomic.Int64 // bit 0 intra, bit 1 actuated this frame
}

const (
	flagIntra    = 1 << 0
	flagActuated = 1 << 1
)

// FrameEvent is one frame's readable flight record. For simulcast
// sessions (Meta.Rungs > 1) each rendition of a source frame is its own
// event, tagged with its rung index.
type FrameEvent struct {
	Index       int     `json:"index"`
	Rung        int     `json:"rung,omitempty"`
	ReadMs      float64 `json:"read_ms"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
	StallMs     float64 `json:"stall_ms"`
	AnalysisMs  float64 `json:"analysis_ms"`
	EntropyMs   float64 `json:"entropy_ms"`
	EmitMs      float64 `json:"emit_ms"`
	Bits        int     `json:"bits"`
	Qp          int     `json:"qp"`
	QosLevel    int     `json:"qos_level"`
	Intra       bool    `json:"intra,omitempty"`
	Actuated    bool    `json:"actuated,omitempty"`
}

// Record is a session's full flight record as the debug endpoints
// serve it: identity, summary, and the per-frame timeline still held in
// the ring.
type Record struct {
	TraceID  string `json:"trace_id"`
	Priority string `json:"priority,omitempty"`
	Searcher string `json:"searcher,omitempty"`
	// PinnedLevel is the session's pinned QoS level, -1 when adaptive.
	PinnedLevel int `json:"pinned_level"`
	// Rungs is the simulcast rung count (omitted for single renditions).
	Rungs     int    `json:"rungs,omitempty"`
	StartedAt string `json:"started_at"`
	Done      bool   `json:"done"`
	Frames    int    `json:"frames"`
	// DroppedFrames counts frames that aged out of the ring (the
	// timeline then covers only the most recent RingFrames frames).
	DroppedFrames int          `json:"dropped_frames,omitempty"`
	FirstPacketMs float64      `json:"first_packet_ms,omitempty"`
	WallMs        float64      `json:"wall_ms,omitempty"`
	Error         string       `json:"error,omitempty"`
	Events        []FrameEvent `json:"events"`
}

// Meta is the per-session identity captured at recorder construction.
type Meta struct {
	Priority string
	Searcher string
	// PinnedLevel is the pinned QoS level, -1 for adaptive sessions.
	PinnedLevel int
	// Rungs is the simulcast rung count (0 or 1 = single rendition).
	// When > 1 the recorder's slot keys are frame*Rungs + rung, and
	// Snapshot decodes them back into per-rung frame events.
	Rungs int
}

// FlightRecorder is one session's lock-free frame-event ring. All
// methods are safe on a nil receiver (no-ops) — that nil path is the
// compiled-out baseline the overhead guard compares against — and safe
// to call concurrently from the session goroutine, the pipeline writer
// goroutine, shared-pool workers, and debug-endpoint readers.
type FlightRecorder struct {
	traceID string
	meta    Meta
	start   time.Time

	frames   atomic.Int64 // frames whose analysis has been recorded
	qosLevel atomic.Int64 // level in force for the next analysed frame
	actuate  atomic.Bool  // next analysed frame carries an actuation
	firstNs  atomic.Int64 // request start → first frame packet emitted
	wallNs   atomic.Int64 // set once at Finish
	done     atomic.Bool
	errMu    atomic.Pointer[string]

	mask  int
	slots []frameSlot
}

// NewFlightRecorder builds a recorder with the given identity and ring
// capacity (rounded up to a power of two; <= 0 selects
// DefaultRingFrames). The slab is the recorder's only allocation.
func NewFlightRecorder(traceID string, meta Meta, ringFrames int) *FlightRecorder {
	if ringFrames <= 0 {
		ringFrames = DefaultRingFrames
	}
	n := 1
	for n < ringFrames {
		n <<= 1
	}
	r := &FlightRecorder{traceID: traceID, meta: meta, start: time.Now(), mask: n - 1, slots: make([]frameSlot, n)}
	for i := range r.slots {
		r.slots[i].index.Store(-1)
	}
	return r
}

// TraceID returns the session's trace identity ("" on nil).
func (r *FlightRecorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID
}

// slot claims the ring slot for frame index, stamping its occupancy.
func (r *FlightRecorder) slot(index int) *frameSlot {
	s := &r.slots[index&r.mask]
	if s.index.Load() != int64(index) {
		// First touch for this frame: stamp and clear the wrapped slot.
		s.index.Store(int64(index))
		s.readNs.Store(0)
		s.queueNs.Store(0)
		s.stallNs.Store(0)
		s.analysisNs.Store(0)
		s.entropyNs.Store(0)
		s.emitNs.Store(0)
		s.bits.Store(0)
		s.qp.Store(0)
		s.qosLevel.Store(0)
		s.flags.Store(0)
	}
	return s
}

// FrameRead records the Y4M source read preceding frame index.
func (r *FlightRecorder) FrameRead(index int, d time.Duration) {
	if r == nil {
		return
	}
	r.slot(index).readNs.Store(int64(d))
}

// FrameActuated marks that a QoS actuation to level was applied at the
// hand-off before frame index's analysis.
func (r *FlightRecorder) FrameActuated(index, level int) {
	if r == nil {
		return
	}
	r.qosLevel.Store(int64(level))
	r.actuate.Store(true)
}

// SetQosLevel records the level in force without marking an actuation
// (the admission-time level of pinned or pre-degraded sessions).
func (r *FlightRecorder) SetQosLevel(level int) {
	if r == nil {
		return
	}
	r.qosLevel.Store(int64(level))
}

// FrameAnalyzed records frame index's phase-1 outcome. It implements
// the analysis half of codec.FrameObserver; the codec calls it on the
// session goroutine at the end of each frame's analysis.
func (r *FlightRecorder) FrameAnalyzed(index int, wall, queueWait, maxStall time.Duration, intra bool, qp int) {
	if r == nil {
		return
	}
	s := r.slot(index)
	s.analysisNs.Store(int64(wall))
	s.queueNs.Store(int64(queueWait))
	s.stallNs.Store(int64(maxStall))
	s.qp.Store(int64(qp))
	s.qosLevel.Store(r.qosLevel.Load())
	var f int64
	if intra {
		f |= flagIntra
	}
	if r.actuate.Swap(false) {
		f |= flagActuated
	}
	s.flags.Store(f)
	// Monotonic max, not a plain store: a simulcast session's rungs run
	// pipelined, so a lower rung's (smaller) slot key can land after a
	// higher one and must not rewind the count.
	for {
		cur := r.frames.Load()
		if int64(index+1) <= cur || r.frames.CompareAndSwap(cur, int64(index+1)) {
			break
		}
	}
}

// FrameWritten records frame index's phase-2 (entropy) wall clock and
// encoded size. It implements the write half of codec.FrameObserver;
// in pipelined sessions the codec calls it on the writer goroutine.
func (r *FlightRecorder) FrameWritten(index int, wall time.Duration, bits int) {
	if r == nil {
		return
	}
	s := &r.slots[index&r.mask]
	s.entropyNs.Store(int64(wall))
	s.bits.Store(int64(bits))
}

// FrameEmitted records frame index's packet write + client flush time.
func (r *FlightRecorder) FrameEmitted(index int, d time.Duration) {
	if r == nil {
		return
	}
	r.slots[index&r.mask].emitNs.Store(int64(d))
	if index == 0 {
		r.firstNs.CompareAndSwap(0, int64(time.Since(r.start)))
	}
}

// Finish seals the record with the session outcome. Idempotent.
func (r *FlightRecorder) Finish(err error) {
	if r == nil {
		return
	}
	if r.done.Swap(true) {
		return
	}
	r.wallNs.Store(int64(time.Since(r.start)))
	if err != nil {
		msg := err.Error()
		r.errMu.Store(&msg)
	}
}

// Snapshot renders the current flight record. Safe while the session is
// still encoding; frames whose later phases have not landed yet simply
// show zero for those fields.
func (r *FlightRecorder) Snapshot() Record {
	if r == nil {
		return Record{}
	}
	rungs := r.meta.Rungs
	if rungs < 1 {
		rungs = 1
	}
	raw := int(r.frames.Load()) // slot keys recorded: frames × rungs
	rec := Record{
		TraceID:     r.traceID,
		Priority:    r.meta.Priority,
		Searcher:    r.meta.Searcher,
		PinnedLevel: r.meta.PinnedLevel,
		StartedAt:   r.start.UTC().Format(time.RFC3339Nano),
		Done:        r.done.Load(),
		Frames:      (raw + rungs - 1) / rungs,
	}
	if rungs > 1 {
		rec.Rungs = rungs
	}
	if e := r.errMu.Load(); e != nil {
		rec.Error = *e
	}
	if ns := r.firstNs.Load(); ns > 0 {
		rec.FirstPacketMs = float64(ns) / 1e6
	}
	if ns := r.wallNs.Load(); ns > 0 {
		rec.WallMs = float64(ns) / 1e6
	}
	lo := 0
	if n := raw - len(r.slots); n > 0 {
		lo = n
		rec.DroppedFrames = (n + rungs - 1) / rungs
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	for i := lo; i < raw; i++ {
		s := &r.slots[i&r.mask]
		if s.index.Load() != int64(i) {
			continue // being overwritten by a wrapping writer right now
		}
		ev := FrameEvent{
			Index:       i / rungs,
			Rung:        i % rungs,
			ReadMs:      ms(s.readNs.Load()),
			QueueWaitMs: ms(s.queueNs.Load()),
			StallMs:     ms(s.stallNs.Load()),
			AnalysisMs:  ms(s.analysisNs.Load()),
			EntropyMs:   ms(s.entropyNs.Load()),
			EmitMs:      ms(s.emitNs.Load()),
			Bits:        int(s.bits.Load()),
			Qp:          int(s.qp.Load()),
			QosLevel:    int(s.qosLevel.Load()),
		}
		f := s.flags.Load()
		ev.Intra = f&flagIntra != 0
		ev.Actuated = f&flagActuated != 0
		if s.index.Load() != int64(i) {
			continue // torn by a wrap between the loads; drop the mixture
		}
		rec.Events = append(rec.Events, ev)
	}
	return rec
}

// Summary is the one-line view of a session for the listing endpoint.
type Summary struct {
	TraceID       string  `json:"trace_id"`
	Priority      string  `json:"priority,omitempty"`
	Searcher      string  `json:"searcher,omitempty"`
	PinnedLevel   int     `json:"pinned_level"`
	StartedAt     string  `json:"started_at"`
	Done          bool    `json:"done"`
	Frames        int     `json:"frames"`
	FirstPacketMs float64 `json:"first_packet_ms,omitempty"`
	WallMs        float64 `json:"wall_ms,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// Summarize renders the listing view of the recorder.
func (r *FlightRecorder) Summarize() Summary {
	if r == nil {
		return Summary{}
	}
	rungs := r.meta.Rungs
	if rungs < 1 {
		rungs = 1
	}
	s := Summary{
		TraceID:     r.traceID,
		Priority:    r.meta.Priority,
		Searcher:    r.meta.Searcher,
		PinnedLevel: r.meta.PinnedLevel,
		StartedAt:   r.start.UTC().Format(time.RFC3339Nano),
		Done:        r.done.Load(),
		Frames:      (int(r.frames.Load()) + rungs - 1) / rungs,
	}
	if e := r.errMu.Load(); e != nil {
		s.Error = *e
	}
	if ns := r.firstNs.Load(); ns > 0 {
		s.FirstPacketMs = float64(ns) / 1e6
	}
	if ns := r.wallNs.Load(); ns > 0 {
		s.WallMs = float64(ns) / 1e6
	}
	return s
}
