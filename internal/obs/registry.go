package obs

import "sync"

// DefaultCompletedSessions is how many finished flight records a
// Registry retains for the debug endpoints.
const DefaultCompletedSessions = 32

// Registry tracks a server's live flight recorders and a bounded ring
// of recently completed ones, keyed by trace ID, for the
// /debug/vcodec/sessions and /debug/vcodec/trace endpoints.
type Registry struct {
	mu   sync.Mutex
	live map[string]*FlightRecorder
	done []*FlightRecorder // ring, next points at the oldest
	next int
}

// NewRegistry builds a registry retaining keep completed sessions
// (<= 0 selects DefaultCompletedSessions).
func NewRegistry(keep int) *Registry {
	if keep <= 0 {
		keep = DefaultCompletedSessions
	}
	return &Registry{live: make(map[string]*FlightRecorder), done: make([]*FlightRecorder, 0, keep)}
}

// Add registers a live session recorder. A duplicate trace ID replaces
// the previous entry (last writer wins; IDs are client-suppliable).
func (g *Registry) Add(r *FlightRecorder) {
	if g == nil || r == nil {
		return
	}
	g.mu.Lock()
	g.live[r.traceID] = r
	g.mu.Unlock()
}

// Complete moves a recorder from the live set to the completed ring.
func (g *Registry) Complete(r *FlightRecorder) {
	if g == nil || r == nil {
		return
	}
	g.mu.Lock()
	if g.live[r.traceID] == r {
		delete(g.live, r.traceID)
	}
	if len(g.done) < cap(g.done) {
		g.done = append(g.done, r)
	} else if cap(g.done) > 0 {
		g.done[g.next] = r
		g.next = (g.next + 1) % cap(g.done)
	}
	g.mu.Unlock()
}

// Lookup finds a recorder by trace ID, checking live sessions first,
// then the completed ring newest-first. Returns nil when unknown.
func (g *Registry) Lookup(id string) *FlightRecorder {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.live[id]; ok {
		return r
	}
	for i := len(g.done) - 1; i >= 0; i-- {
		// Scan in ring positions starting from the newest entry.
		r := g.done[(g.next+i)%len(g.done)]
		if r != nil && r.traceID == id {
			return r
		}
	}
	return nil
}

// Sessions lists the live and completed sessions (completed
// newest-first).
func (g *Registry) Sessions() (live, completed []Summary) {
	if g == nil {
		return nil, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.live {
		live = append(live, r.Summarize())
	}
	for i := len(g.done) - 1; i >= 0; i-- {
		if r := g.done[(g.next+i)%len(g.done)]; r != nil {
			completed = append(completed, r.Summarize())
		}
	}
	return live, completed
}
