package plot

import (
	"fmt"
	"math"
	"strings"
)

// densityRamp maps bin occupancy to characters, light to dark.
var densityRamp = []byte(" .:-=+*#%@")

// Density renders a 2-D scatter as an ASCII density grid — the terminal
// equivalent of the paper's Fig. 4 scatter panels. Axis ranges may be
// fixed (xmax/ymax > 0) so multiple panels share scales; zero means
// auto-scale.
func Density(title string, xs, ys []float64, width, height int, xmax, ymax float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(xs) != len(ys) || len(xs) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	if xmax <= 0 {
		for _, x := range xs {
			xmax = math.Max(xmax, x)
		}
	}
	if ymax <= 0 {
		for _, y := range ys {
			ymax = math.Max(ymax, y)
		}
	}
	if xmax == 0 {
		xmax = 1
	}
	if ymax == 0 {
		ymax = 1
	}
	bins := make([][]int, height)
	for i := range bins {
		bins[i] = make([]int, width)
	}
	peak := 0
	for i := range xs {
		cx := int(xs[i] / xmax * float64(width-1))
		cy := int(ys[i] / ymax * float64(height-1))
		if cx < 0 {
			cx = 0
		}
		if cx >= width {
			cx = width - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= height {
			cy = height - 1
		}
		row := height - 1 - cy // origin bottom-left
		bins[row][cx]++
		if bins[row][cx] > peak {
			peak = bins[row][cx]
		}
	}
	for r := 0; r < height; r++ {
		yv := ymax * float64(height-1-r) / float64(height-1)
		line := make([]byte, width)
		for c := 0; c < width; c++ {
			if bins[r][c] == 0 {
				line[c] = ' '
				continue
			}
			idx := 1 + bins[r][c]*(len(densityRamp)-2)/peak
			if idx >= len(densityRamp) {
				idx = len(densityRamp) - 1
			}
			line[c] = densityRamp[idx]
		}
		fmt.Fprintf(&b, "%10.3g |%s\n", yv, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  0%*s\n", "", width, fmt.Sprintf("%.3g", xmax))
	return b.String()
}
